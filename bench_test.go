// Package sfcsched's root benchmark suite regenerates every table and
// figure of the paper's evaluation (run `go test -bench=. -benchmem`) and
// measures the micro-costs of the building blocks. Experiment benches
// attach their headline metrics via b.ReportMetric so a bench run doubles
// as a results summary; cmd/schedbench prints the full tables.
package sfcsched

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/experiments"
	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// --- Table 1 ---

func BenchmarkTable1DiskModel(b *testing.B) {
	m := disk.MustModel(disk.QuantumXP32150Params())
	b.ReportMetric(m.MeanSeek()/1000, "mean-seek-ms")
	b.ReportMetric(float64(m.Capacity())/1e9, "capacity-GB")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ServiceTime(i%m.Cylinders, (i*37)%m.Cylinders, 64<<10)
	}
}

// --- Figure 5: priority inversion vs window size ---

func BenchmarkFig5PriorityInversion(b *testing.B) {
	cfg := experiments.DefaultSFC1Config()
	cfg.Requests = 1200
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(cfg, []float64{0, 5, 50})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, res, map[string]int{"peano-w0-pctFIFO": 0, "gray-w0-pctFIFO": 0})
		}
	}
}

// --- Figure 6: scalability with dimensionality ---

func BenchmarkFig6Scalability(b *testing.B) {
	cfg := experiments.DefaultSFC1Config()
	cfg.Requests = 1200
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg, []float64{4, 12}, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, res, map[string]int{"peano-12d-pctFIFO": 1, "sweep-12d-pctFIFO": 1})
		}
	}
}

// --- Figure 7: fairness ---

func BenchmarkFig7Fairness(b *testing.B) {
	cfg := experiments.DefaultSFC1Config()
	cfg.Requests = 1200
	for i := 0; i < b.N; i++ {
		a, fav, err := experiments.Fig7(cfg, []float64{0, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, a, map[string]int{"hilbert-stddev": 0, "sweep-stddev": 0})
			report(b, fav, map[string]int{"sweep-favored-pct": 0})
		}
	}
}

// --- Figure 8: deadline/priority balance ---

func BenchmarkFig8DeadlineBalance(b *testing.B) {
	cfg := experiments.DefaultSFC2Config()
	cfg.Requests = 2000
	for i := 0; i < b.N; i++ {
		_, misses, err := experiments.Fig8(cfg, []float64{0, 1, 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, misses, map[string]int{"sweep-f0-pctEDF": 0, "sweep-f8-pctEDF": 2})
		}
	}
}

// --- Figure 9: selectivity ---

func BenchmarkFig9Selectivity(b *testing.B) {
	cfg := experiments.DefaultSFC2Config()
	cfg.Requests = 2000
	cfg.Service = 26_000
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig9(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Selectivity headline: sweep's top-level misses in its
			// favored (last) dimension should be near zero.
			last := rs[len(rs)-1]
			for _, s := range last.Series {
				if s.Name == "sweep" {
					b.ReportMetric(s.Y[0], "sweep-favdim-toplevel-misses")
				}
			}
		}
	}
}

// --- Figure 10: seek optimization ---

func BenchmarkFig10SeekOptimization(b *testing.B) {
	cfg := experiments.DefaultSFC3Config()
	cfg.Requests = 2500
	for i := 0; i < b.N; i++ {
		_, misses, seek, err := experiments.Fig10(cfg, []float64{1, 3, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, misses, map[string]int{"cascaded-R3-xCSCAN": 1})
			report(b, seek, map[string]int{"cascaded-R1-seek-s": 0, "cascaded-R16-seek-s": 2})
		}
	}
}

// --- Figure 11: aggregate weighted losses ---

func BenchmarkFig11AggregateLosses(b *testing.B) {
	cfg := experiments.DefaultFig11Config()
	cfg.Users = []int{68, 91}
	cfg.Duration = 20_000_000
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, res, map[string]int{"fcfs-91u-cost": 1, "peano-91u-cost": 1})
		}
	}
}

// report attaches selected series points as bench metrics: keys map a
// metric name to the series point index; the series is identified by the
// name's prefix before the first '-'.
func report(b *testing.B, res *experiments.Result, keys map[string]int) {
	for name, idx := range keys {
		prefix := name
		for i := 0; i < len(name); i++ {
			if name[i] == '-' {
				prefix = name[:i]
				break
			}
		}
		for _, s := range res.Series {
			if s.Name == prefix && idx < len(s.Y) {
				b.ReportMetric(s.Y[idx], name)
			}
		}
	}
}

// --- Micro-benchmarks: curve index computation ---

func benchCurveIndex(b *testing.B, name string, dims int, side uint32) {
	c := sfc.MustNew(name, dims, side)
	p := make(sfc.Point, dims)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := range p {
			p[d] = uint32((i * (d + 7)) % int(c.Side()))
		}
		sink += c.Index(p)
	}
	_ = sink
}

// benchCurveIndexFast is benchCurveIndex on the unchecked scratch-carrying
// hot path (what the Encapsulator calls per request).
func benchCurveIndexFast(b *testing.B, name string, dims int, side uint32) {
	c := sfc.MustNew(name, dims, side)
	p := make(sfc.Point, dims)
	scratch := make([]uint32, c.ScratchLen())
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := range p {
			p[d] = uint32((i * (d + 7)) % int(c.Side()))
		}
		sink += c.IndexFast(p, scratch)
	}
	_ = sink
}

// benchCurveLUT measures the table-accelerated path on a grid small enough
// for sfc.Accelerate to wrap.
func benchCurveLUT(b *testing.B, name string, dims int, side uint32) {
	c := sfc.Accelerate(sfc.MustNew(name, dims, side))
	if _, ok := c.(*sfc.LUT); !ok {
		b.Fatalf("%s %dd/%d not LUT-accelerated", name, dims, side)
	}
	p := make(sfc.Point, dims)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := range p {
			p[d] = uint32((i * (d + 7)) % int(c.Side()))
		}
		sink += c.IndexFast(p, nil)
	}
	_ = sink
}

func BenchmarkSweepIndex4D(b *testing.B)    { benchCurveIndex(b, "sweep", 4, 16) }
func BenchmarkScanIndex4D(b *testing.B)     { benchCurveIndex(b, "scan", 4, 16) }
func BenchmarkGrayIndex4D(b *testing.B)     { benchCurveIndex(b, "gray", 4, 16) }
func BenchmarkHilbertIndex4D(b *testing.B)  { benchCurveIndex(b, "hilbert", 4, 16) }
func BenchmarkPeanoIndex4D(b *testing.B)    { benchCurveIndex(b, "peano", 4, 16) }
func BenchmarkSpiralIndex2D(b *testing.B)   { benchCurveIndex(b, "spiral", 2, 4095) }
func BenchmarkDiagonalIndex2D(b *testing.B) { benchCurveIndex(b, "diagonal", 2, 4096) }
func BenchmarkHilbertIndex12D(b *testing.B) { benchCurveIndex(b, "hilbert", 12, 16) }
func BenchmarkPeanoIndex12D(b *testing.B)   { benchCurveIndex(b, "peano", 12, 27) }

func BenchmarkHilbertIndexFast4D(b *testing.B)  { benchCurveIndexFast(b, "hilbert", 4, 16) }
func BenchmarkHilbertIndexFast12D(b *testing.B) { benchCurveIndexFast(b, "hilbert", 12, 16) }
func BenchmarkPeanoIndexFast4D(b *testing.B)    { benchCurveIndexFast(b, "peano", 4, 16) }
func BenchmarkHilbertLUT3D(b *testing.B)        { benchCurveLUT(b, "hilbert", 3, 8) }
func BenchmarkPeanoLUT3D(b *testing.B)          { benchCurveLUT(b, "peano", 3, 9) }

// --- Micro-benchmarks: encapsulation and dispatch ---

func BenchmarkEncapsulatorFullCascade(b *testing.B) {
	e := core.MustEncapsulator(core.EncapsulatorConfig{
		Curve1: sfc.MustNew("hilbert", 3, 8), Levels: 8,
		UseDeadline: true, F: 1, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: 3832,
	})
	r := &core.Request{Priorities: []int{3, 1, 6}, Deadline: 600_000, Cylinder: 1200}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += e.ValueAt(r, int64(i), i%3832, uint64(i))
	}
	_ = sink
}

func BenchmarkDispatcherAddNext(b *testing.B) {
	d := core.MustDispatcher(core.DispatcherConfig{
		Mode: core.ConditionallyPreemptive, Window: 1000, SP: true,
	})
	reqs := make([]*core.Request, 64)
	for i := range reqs {
		reqs[i] = &core.Request{ID: uint64(i)}
	}
	// Steady state: a standing queue of 4096 requests with one Add and one
	// Next per iteration, so queue depth is constant and any per-op heap
	// garbage shows up in the allocs column. (The seed version of this
	// bench computed `x % 1 << 20`, which is zero — every request carried
	// the same value — and let the queue grow without bound; the value
	// distribution below is the one it intended.)
	val := func(i int) uint64 { return uint64(i*2654435761) % (1 << 20) }
	for i := 0; i < 4096; i++ {
		d.Add(reqs[i%64], val(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(reqs[i%64], val(i))
		d.Next()
	}
}

func BenchmarkSchedulerAddBatch(b *testing.B) {
	s := core.MustScheduler("bench", core.EncapsulatorConfig{
		Curve1: sfc.MustNew("hilbert", 3, 8), Levels: 8,
		UseDeadline: true, F: 1, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: 3832,
	}, core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
	batch := make([]*core.Request, 256)
	for i := range batch {
		batch[i] = &core.Request{
			ID: uint64(i), Priorities: []int{i % 8, (i * 3) % 8, (i * 5) % 8},
			Deadline: int64(500_000 + i*300), Cylinder: (i * 37) % 3832,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddBatch(batch, int64(i), i%3832)
		for s.Next(int64(i), i%3832) != nil {
		}
	}
	b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "requests/s")
}

// BenchmarkConcurrentIngress measures sharded Add throughput as GOMAXPROCS
// grows: run with `-cpu 1,2,4` and a fixed `-benchtime=Nx` to compare the
// same total work. Ingress-only by design — Next is single-consumer, and the
// criterion under test is producer-side scaling.
func BenchmarkConcurrentIngress(b *testing.B) {
	s := core.MustShardedScheduler("bench", core.EncapsulatorConfig{
		Curve1: sfc.MustNew("hilbert", 3, 8), Levels: 8,
		UseDeadline: true, F: 1, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: 3832,
	}, 0)
	var worker atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		// Each worker owns a disjoint ID range so the Fibonacci shard hash
		// sees the full spread it would in a live system. Requests are
		// pre-built (a producer would hand over existing requests); all
		// producers observe the same head position, as they would between
		// two dispatches of the single arm.
		base := worker.Add(1) << 32
		ring := make([]core.Request, 1024)
		for j := range ring {
			ring[j] = core.Request{
				ID: base | uint64(j), Priorities: []int{j % 8, (j * 3) % 8, (j * 5) % 8},
				Deadline: int64(500_000 + j%4096), Cylinder: (j * 37) % 3832,
			}
		}
		i := 0
		for pb.Next() {
			s.Add(&ring[i&1023], int64(i), 1200)
			i++
		}
	})
}

// BenchmarkConcurrentIngressSingleLock is the contention baseline for
// BenchmarkConcurrentIngress: the same workload funneled through one mutex
// around the serial Scheduler. On a multi-core machine the gap between the
// two at -cpu 4 is the sharding win.
func BenchmarkConcurrentIngressSingleLock(b *testing.B) {
	s := core.MustScheduler("bench", core.EncapsulatorConfig{
		Curve1: sfc.MustNew("hilbert", 3, 8), Levels: 8,
		UseDeadline: true, F: 1, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: 3832,
	}, core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
	var mu sync.Mutex
	var worker atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		base := worker.Add(1) << 32
		ring := make([]core.Request, 1024)
		for j := range ring {
			ring[j] = core.Request{
				ID: base | uint64(j), Priorities: []int{j % 8, (j * 3) % 8, (j * 5) % 8},
				Deadline: int64(500_000 + j%4096), Cylinder: (j * 37) % 3832,
			}
		}
		i := 0
		for pb.Next() {
			mu.Lock()
			s.Add(&ring[i&1023], int64(i), 1200)
			mu.Unlock()
			i++
		}
	})
}

// BenchmarkSimulatorThroughput is the headline single-worker number: one
// recycled engine + scheduler replaying an arena-generated trace. The
// requests/s metric is per core; BenchmarkSweepAggregateThroughput
// measures the parallel aggregate.
func BenchmarkSimulatorThroughput(b *testing.B) {
	m := disk.MustModel(disk.QuantumXP32150Params())
	var arena workload.Arena
	trace := workload.Open{
		Seed: 1, Count: 2000, MeanInterarrival: 10_000,
		Dims: 3, Levels: 8, DeadlineMin: 500_000, DeadlineMax: 700_000,
		Cylinders: m.Cylinders, Size: 64 << 10,
	}.MustGenerateArena(&arena)
	var ru sim.Reuse
	cscan := sched.NewCSCAN()
	cfg := sim.Config{
		Disk: m, Scheduler: cscan, Reuse: &ru,
		Options: sim.Options{DropLate: true, Seed: 1},
	}
	sim.MustRun(cfg, trace) // warm the reused state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := sim.MustRun(cfg, trace); res.Arrived != 2000 {
			b.Fatal("lost requests")
		}
	}
	b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "requests/s")
}

// BenchmarkSweepAggregateThroughput drives a whole sweep grid — one cell
// per (seed, scheduler), each on its own arena + recycled engine — through
// the parallel runner and reports aggregate simulated requests/s across
// all workers. On a multi-core box this is the 10M+ req/s configuration;
// on a single core it degenerates to the per-core number.
func BenchmarkSweepAggregateThroughput(b *testing.B) {
	m := disk.MustModel(disk.QuantumXP32150Params())
	const cells = 16
	const count = 2000
	type cellState struct {
		ru    sim.Reuse
		trace []*core.Request
	}
	states := make([]*cellState, cells)
	for i := range states {
		var arena workload.Arena
		states[i] = &cellState{trace: workload.Open{
			Seed: uint64(i + 1), Count: count, MeanInterarrival: 10_000,
			Dims: 3, Levels: 8, DeadlineMin: 500_000, DeadlineMax: 700_000,
			Cylinders: m.Cylinders, Size: 64 << 10,
		}.MustGenerateArena(&arena)}
	}
	runCell := func(i int) (uint64, error) {
		st := states[i]
		res, err := sim.Run(sim.Config{
			Disk: m, Scheduler: sched.NewCSCAN(), Reuse: &st.ru,
			Options: sim.Options{DropLate: true, Seed: uint64(i + 1)},
		}, st.trace)
		if err != nil {
			return 0, err
		}
		return res.Arrived, nil
	}
	if _, err := runner.Map(0, cells, runCell); err != nil { // warm
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrived, err := runner.Map(0, cells, runCell)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range arrived {
			if a != count {
				b.Fatal("lost requests")
			}
		}
	}
	b.ReportMetric(float64(cells*count*b.N)/b.Elapsed().Seconds(), "requests/s")
	b.ReportMetric(float64(runner.Workers(0)), "workers")
}

// --- Ablation benches: the design choices DESIGN.md calls out ---

// BenchmarkAblationDeadlineMode compares the absolute-deadline axis
// (default) against the slack-at-enqueue ablation: the slack skew costs
// deadline misses at equal load.
func BenchmarkAblationDeadlineMode(b *testing.B) {
	trace := workload.Open{
		Seed: 1, Count: 4000, MeanInterarrival: 25_000,
		Dims: 1, Levels: 8, DeadlineMin: 500_000, DeadlineMax: 700_000,
	}.MustGenerate()
	run := func(slack bool) float64 {
		s := core.MustScheduler("x", core.EncapsulatorConfig{
			Levels: 8, UseDeadline: true, F: math.Inf(1), Tie: core.TiePriority,
			DeadlineHorizon: 210_000_000, DeadlineSpan: 700_000, DeadlineSlack: slack,
		}, core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
		res := sim.MustRun(sim.Config{Scheduler: s, FixedService: 24_000, Options: sim.Options{DropLate: true, Seed: 1}}, trace)
		return float64(res.TotalMisses())
	}
	var abs, slack float64
	for i := 0; i < b.N; i++ {
		abs = run(false)
		slack = run(true)
	}
	b.ReportMetric(abs, "misses-absolute")
	b.ReportMetric(slack, "misses-slack")
}

// BenchmarkAblationSP measures the Serve-and-Promote policy's effect on
// priority inversion at a fixed window.
func BenchmarkAblationSP(b *testing.B) {
	trace := workload.Open{
		Seed: 1, Count: 4000, MeanInterarrival: 25_000,
		Dims: 4, Levels: 16,
	}.MustGenerate()
	run := func(sp bool) float64 {
		s := core.MustScheduler("x", core.EncapsulatorConfig{
			Curve1: sfc.MustNew("peano", 4, 16), Levels: 16,
		}, core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: sp}, 0.05)
		res := sim.MustRun(sim.Config{
			Scheduler: s, FixedService: 24_000,
			Options: sim.Options{Dims: 4, Levels: 16, Seed: 1},
		}, trace)
		return float64(res.TotalInversions())
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(with, "inversions-sp")
	b.ReportMetric(without, "inversions-nosp")
}

// BenchmarkAblationER measures Expand-and-Reset's worst-case waiting time
// under an adversarial high-priority stream.
func BenchmarkAblationER(b *testing.B) {
	run := func(er bool) float64 {
		d := core.MustDispatcher(core.DispatcherConfig{
			Mode: core.ConditionallyPreemptive, Window: 5, ER: er, Expansion: 2,
		})
		d.Add(&core.Request{ID: 1}, 100_000)
		d.Next()
		d.Add(&core.Request{ID: 999}, 200_000)
		v := uint64(100_000)
		for i := 0; i < 512; i++ {
			v -= 6
			d.Add(&core.Request{ID: uint64(i + 2)}, v)
			if r := d.Next(); r != nil && r.ID == 999 {
				return float64(i)
			}
		}
		return 512
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(with, "victim-wait-er")
	b.ReportMetric(without, "victim-wait-noer")
}

// BenchmarkAblationWindow sweeps the blocking window and reports the
// preemption count at each size — the responsiveness/batching dial.
func BenchmarkAblationWindow(b *testing.B) {
	trace := workload.Open{
		Seed: 1, Count: 3000, MeanInterarrival: 25_000,
		Dims: 4, Levels: 16,
	}.MustGenerate()
	run := func(frac float64) float64 {
		s := core.MustScheduler("x", core.EncapsulatorConfig{
			Curve1: sfc.MustNew("peano", 4, 16), Levels: 16,
		}, core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true}, frac)
		sim.MustRun(sim.Config{
			Scheduler: s, FixedService: 24_000,
			Options: sim.Options{Dims: 4, Levels: 16, Seed: 1},
		}, trace)
		st := s.Dispatcher().Stats()
		return float64(st.Preemptions + st.Promotions)
	}
	var w0, w5, w50 float64
	for i := 0; i < b.N; i++ {
		w0 = run(0)
		w5 = run(0.05)
		w50 = run(0.5)
	}
	b.ReportMetric(w0, "preempts-w0")
	b.ReportMetric(w5, "preempts-w5pct")
	b.ReportMetric(w50, "preempts-w50pct")
}

// BenchmarkAblationCurve1 compares SFC1 curve choices on total priority
// inversion under identical load — the Fig. 5 result as a single number.
func BenchmarkAblationCurve1(b *testing.B) {
	trace := workload.Open{
		Seed: 1, Count: 3000, MeanInterarrival: 25_000,
		Dims: 4, Levels: 16,
	}.MustGenerate()
	run := func(curve string) float64 {
		s := core.MustScheduler("x", core.EncapsulatorConfig{
			Curve1: sfc.MustNew(curve, 4, 16), Levels: 16,
		}, core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true}, 0.02)
		res := sim.MustRun(sim.Config{
			Scheduler: s, FixedService: 24_000,
			Options: sim.Options{Dims: 4, Levels: 16, Seed: 1},
		}, trace)
		return float64(res.TotalInversions())
	}
	var peano, hilbert float64
	for i := 0; i < b.N; i++ {
		peano = run("peano")
		hilbert = run("hilbert")
	}
	b.ReportMetric(peano, "inversions-peano")
	b.ReportMetric(hilbert, "inversions-hilbert")
}
