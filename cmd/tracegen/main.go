// Command tracegen emits deterministic workload traces as CSV, so external
// tools (or other simulators) can replay the exact request streams the
// experiments use. workload.ReadCSV parses the format back.
//
// Usage:
//
//	tracegen -kind open -requests 5000 > open.csv
//	tracegen -kind streams -users 80 -duration 40s > streams.csv
//	tracegen -kind flash -requests 3000 > flash.csv
//
// Besides open and streams, every multi-client scenario from
// workload.Scenarios() (steady, flash, diurnal, mixed) is a valid -kind;
// the emitted CSV feeds straight into schedsim -replay.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"sfcsched/internal/core"
	"sfcsched/internal/workload"
)

func main() {
	var (
		kind         = flag.String("kind", "open", "workload kind: open, streams, or a scenario ("+strings.Join(workload.Scenarios(), ", ")+")")
		seed         = flag.Uint64("seed", 1, "workload seed")
		requests     = flag.Int("requests", 5000, "open: request count")
		interarrival = flag.Duration("interarrival", 25*time.Millisecond, "open: mean interarrival")
		dims         = flag.Int("dims", 3, "open: priority dimensions")
		levels       = flag.Int("levels", 8, "priority levels")
		deadlineMin  = flag.Duration("deadline-min", 500*time.Millisecond, "minimum relative deadline")
		deadlineMax  = flag.Duration("deadline-max", 700*time.Millisecond, "maximum relative deadline")
		cylinders    = flag.Int("cylinders", 3832, "disk cylinders")
		users        = flag.Int("users", 80, "streams: concurrent streams")
		duration     = flag.Duration("duration", 40*time.Second, "streams: simulated duration")
		bitrate      = flag.Float64("bitrate", 420_000, "streams: per-stream bits/s")
	)
	flag.Parse()

	var (
		trace []*core.Request
		err   error
	)
	outDims := *dims
	switch *kind {
	case "open":
		trace, err = workload.Open{
			Seed:             *seed,
			Count:            *requests,
			MeanInterarrival: interarrival.Microseconds(),
			Dims:             *dims,
			Levels:           *levels,
			DeadlineMin:      deadlineMin.Microseconds(),
			DeadlineMax:      deadlineMax.Microseconds(),
			Cylinders:        *cylinders,
			SizeMin:          4 << 10,
			SizeMax:          256 << 10,
		}.Generate()
	case "streams":
		outDims = 1
		trace, err = workload.Streams{
			Seed:        *seed,
			Users:       *users,
			Duration:    duration.Microseconds(),
			BitRate:     *bitrate,
			BlockSize:   64 << 10,
			Levels:      *levels,
			DeadlineMin: deadlineMin.Microseconds(),
			DeadlineMax: deadlineMax.Microseconds(),
			Cylinders:   *cylinders,
			WriteFrac:   0.2,
			Burst:       3,
		}.Generate()
	default:
		if slices.Contains(workload.Scenarios(), *kind) {
			var spec workload.Spec
			spec, err = workload.ScenarioSpec(*kind, *seed, *requests, *cylinders)
			if err == nil {
				outDims = spec.Dims()
				trace, err = spec.Generate()
			}
		} else {
			err = fmt.Errorf("unknown kind %q (known: open, streams, %s)",
				*kind, strings.Join(workload.Scenarios(), ", "))
		}
	}
	if err == nil {
		err = workload.WriteCSV(os.Stdout, trace, outDims)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
