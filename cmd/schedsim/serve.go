package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/serve"
)

// runServeCalib runs the observe-predict-calibrate loop on the generated
// trace: the simulator predicts per-request outcomes, the live dispatcher
// serves the identical trace on the dilated wall clock against the
// emulated disk, and the report scores how well the prediction held.
func runServeCalib(out io.Writer, opt options, m *disk.Model, trace []*core.Request) error {
	ecfg, err := cascadedConfig(m, opt.curve, opt.f, opt.r, opt.levels, opt.dims, opt.deadlineMax.Microseconds())
	if err != nil {
		return err
	}
	cal, err := serve.Calibrate(context.Background(), serve.CalibrationConfig{
		Sched:    ecfg,
		Service:  disk.ServiceModel{Disk: m},
		Dilation: opt.dilation,
		InFlight: opt.inflight,
		DropLate: opt.drop,
	}, trace)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "calibrate: %d requests, dilation %g, in-flight %d, drop=%v\n",
		len(trace), opt.dilation, opt.inflight, opt.drop)
	fmt.Fprintf(out, "  %-5s %8s %8s %10s %12s %12s\n",
		"side", "served", "dropped", "abandoned", "head-travel", "makespan(s)")
	fmt.Fprintf(out, "  %-5s %8d %8d %10d %12d %12.2f\n",
		"sim", cal.SimServed, cal.SimDropped, 0, cal.SimHeadTravel, float64(cal.SimMakespan)/1e6)
	fmt.Fprintf(out, "  %-5s %8d %8d %10d %12d %12.2f\n",
		"live", cal.LiveServed, cal.LiveDropped, cal.LiveAbandoned, cal.LiveHeadTravel, float64(cal.LiveMakespan)/1e6)
	fmt.Fprintf(out, "  aligned %d/%d, latency MAPE %s, order r %s (exact %v), head-travel delta %s, wall %v\n",
		cal.Aligned, cal.SimServed,
		fmtScore(cal.LatencyMAPE, "%.2f%%"), fmtScore(cal.OrderPearson, "%.4f"), cal.OrderExact,
		fmtScore(100*cal.HeadTravelDelta(), "%+.2f%%"), cal.Wall.Round(time.Millisecond))
	return nil
}

// fmtScore renders a calibration score, spelling out undefined ones.
func fmtScore(v float64, format string) string {
	if math.IsNaN(v) {
		return "undefined"
	}
	return fmt.Sprintf(format, v)
}
