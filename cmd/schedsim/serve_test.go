package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sfcsched/internal/disk"
	"sfcsched/internal/workload"
)

func TestRunServeCalibReport(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	o := parse(t, "-serve", "-requests", "80", "-dilation", "200")
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	m, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.Open{
		Seed:             o.seed,
		Count:            o.requests,
		MeanInterarrival: o.interarrival.Microseconds(),
		Dims:             o.dims,
		Levels:           o.levels,
		DeadlineMin:      o.deadlineMin.Microseconds(),
		DeadlineMax:      o.deadlineMax.Microseconds(),
		Cylinders:        m.Cylinders,
		SizeMin:          o.sizeMin,
		SizeMax:          o.sizeMax,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	start := time.Now()
	if err := runServeCalib(&buf, *o, m, trace); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"calibrate: 80 requests, dilation 200, in-flight 1, drop=true",
		"\n  sim ", "\n  live", "aligned ", "latency MAPE", "order r",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "aligned 0/") {
		t.Errorf("calibration aligned nothing:\n%s", out)
	}
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Errorf("calibration took %v; dilation should compress the run", elapsed)
	}
}
