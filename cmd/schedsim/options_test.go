package main

import (
	"flag"
	"strings"
	"testing"
	"time"
)

// parse runs args through a fresh FlagSet and returns the options with
// defaults applied, exactly as main sees them.
func parse(t *testing.T, args ...string) *options {
	t.Helper()
	var o options
	fs := flag.NewFlagSet("schedsim", flag.ContinueOnError)
	o.register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse failed: %v", err)
	}
	return &o
}

func TestValidateRejectsBadFlagCombinations(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the validation error
	}{
		{"fail-disk without array", []string{"-fail-disk", "0"}, "requires -array"},
		{"fail-disk out of range", []string{"-array", "5", "-fail-disk", "5"}, "out of range"},
		{"fail-disk negative fail-at", []string{"-array", "5", "-fail-disk", "1", "-fail-at", "-1s"}, "-fail-at"},
		{"rebuild without fail-disk", []string{"-rebuild"}, "requires -fail-disk"},
		{"rebuild without blocks", []string{"-array", "5", "-fail-disk", "1", "-rebuild", "-rebuild-blocks", "0"}, "-rebuild-blocks"},
		{"rebuild negative interval", []string{"-array", "5", "-fail-disk", "1", "-rebuild", "-rebuild-interval", "-1ms"}, "-rebuild-interval"},
		{"write-frac above one", []string{"-write-frac", "1.5"}, "-write-frac"},
		{"write-frac negative", []string{"-write-frac", "-0.1"}, "-write-frac"},
		{"fault-rate above one", []string{"-fault-rate", "2"}, "-fault-rate"},
		{"fault-rate negative", []string{"-fault-rate", "-0.5"}, "-fault-rate"},
		{"negative retries", []string{"-retries", "-1"}, "-retries"},
		{"negative retry base", []string{"-retry-base", "-5ms"}, "-retry-base"},
		{"two-disk array", []string{"-array", "2"}, "at least 3 disks"},
		{"negative array", []string{"-array", "-1"}, "-array"},
		{"array zero block size", []string{"-array", "5", "-block", "0"}, "-block"},
		{"zero requests", []string{"-requests", "0"}, "-requests"},
		{"zero interarrival", []string{"-interarrival", "0"}, "-interarrival"},
		{"zero dims", []string{"-dims", "0"}, "-dims"},
		{"deadline max below min", []string{"-deadline-min", "1s", "-deadline-max", "500ms"}, "-deadline-max"},
		{"negative deadline min", []string{"-deadline-min", "-1s"}, "-deadline-min"},
		{"size max below min", []string{"-size-min", "8192", "-size-max", "4096"}, "-size-min"},
		{"negative cluster", []string{"-cluster", "-1"}, "-cluster"},
		{"cluster zero disks", []string{"-cluster", "4", "-cluster-disks", "0"}, "-cluster-disks"},
		{"cluster with array", []string{"-cluster", "4", "-array", "5"}, "mutually exclusive"},
		{"cluster with shadow", []string{"-cluster", "4", "-shadow", "fcfs"}, "-shadow"},
		{"cluster with decision trace", []string{"-cluster", "4", "-decision-trace", "-"}, "-decision-trace"},
		{"cluster with fault rate", []string{"-cluster", "4", "-fault-rate", "0.1"}, "fault injection"},
		{"cluster unknown router", []string{"-cluster", "4", "-router", "random"}, "-router"},
		{"cluster unknown admit", []string{"-cluster", "4", "-admit", "priority"}, "-admit"},
		{"cluster zero admit rate", []string{"-cluster", "4", "-admit", "token", "-admit-rate", "0"}, "-admit-rate"},
		{"negative tenants", []string{"-tenants", "-2"}, "-tenants"},
		{"negative tenant skew", []string{"-tenants", "4", "-tenant-skew", "-1"}, "-tenant-skew"},
		{"zones without tenants", []string{"-tenant-zones"}, "-tenant-zones"},
		{"zero classes", []string{"-classes", "0"}, "-classes"},
		{"zero dilation", []string{"-serve", "-dilation", "0"}, "-dilation"},
		{"negative dilation", []string{"-dilation", "-5"}, "-dilation"},
		{"zero inflight", []string{"-inflight", "0"}, "-inflight"},
		{"serve with baseline sched", []string{"-serve", "-sched", "scan"}, "cascaded"},
		{"serve with all", []string{"-serve", "-sched", "all"}, "cascaded"},
		{"serve with array", []string{"-serve", "-array", "5"}, "-array"},
		{"serve with cluster", []string{"-serve", "-cluster", "4"}, "-cluster"},
		{"serve with fault rate", []string{"-serve", "-fault-rate", "0.1"}, "fault injection"},
		{"serve with shadow", []string{"-serve", "-shadow", "fcfs"}, "-shadow"},
		{"serve with decision trace", []string{"-serve", "-decision-trace", "-"}, "-decision-trace"},
		{"serve with telemetry", []string{"-serve", "-telemetry", "-"}, "-telemetry"},
		{"serve with dispatch trace", []string{"-serve", "-dispatch-trace", "-"}, "-dispatch-trace"},
		{"trace with replay", []string{"-trace", "run.csv", "-replay", "run.jsonl"}, "mutually exclusive"},
		{"replay with spec", []string{"-replay", "run.jsonl", "-spec", "mixed"}, "mutually exclusive"},
		{"unknown spec", []string{"-spec", "tsunami"}, "-spec"},
		{"spec zero requests", []string{"-spec", "flash", "-requests", "0"}, "-requests"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := parse(t, tc.args...).validate()
			if err == nil {
				t.Fatalf("validate(%v) accepted, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%v) = %q, want substring %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestValidateAcceptsGoodFlagCombinations(t *testing.T) {
	cases := [][]string{
		nil, // all defaults
		{"-sched", "all", "-fault-rate", "0.05", "-retries", "0"},
		{"-array", "5", "-fail-disk", "4", "-rebuild", "-write-frac", "1"},
		{"-fault-rate", "1", "-retry-base", "0"},
		// Trace replay skips the workload-shape checks entirely.
		{"-trace", "run.csv", "-requests", "0", "-dims", "0"},
		{"-replay", "run.jsonl", "-requests", "0", "-dims", "0"},
		{"-spec", "mixed", "-sched", "all"},
		{"-spec", "diurnal", "-requests", "2000", "-cluster", "2"},
		{"-cluster", "4", "-router", "least", "-admit", "token", "-tenants", "8", "-tenant-zones", "-classes", "3"},
		{"-cluster", "2", "-cluster-disks", "3", "-router", "affinity", "-telemetry", "t.csv"},
		{"-tenants", "5", "-tenant-skew", "0"},
		{"-serve"},
		{"-serve", "-dilation", "0.5", "-inflight", "4", "-drop=false"},
		{"-serve", "-curve", "zorder", "-r", "0", "-deadline-min", "0"},
	}
	for _, args := range cases {
		if err := parse(t, args...).validate(); err != nil {
			t.Errorf("validate(%v) = %v, want nil", args, err)
		}
	}
}

func TestFaultPlanTranslation(t *testing.T) {
	if plan := parse(t).faultPlan(); plan != nil {
		t.Fatalf("default flags built a fault plan: %+v", plan)
	}

	o := parse(t, "-fault-rate", "0.02", "-fault-seed", "7", "-retries", "2", "-retry-base", "3ms")
	plan := o.faultPlan()
	if plan == nil {
		t.Fatal("fault-rate flags produced no plan")
	}
	if plan.TransientRate != 0.02 || plan.Seed != 7 || plan.MaxRetries != 2 || plan.RetryBase != 3000 {
		t.Errorf("transient plan = %+v", plan)
	}
	if plan.FailAt != 0 || plan.Rebuild {
		t.Errorf("transient plan armed a disk failure: %+v", plan)
	}
	if err := plan.Validate(); err != nil {
		t.Errorf("translated plan does not validate: %v", err)
	}

	// Flag -retries 0 means "no retries", which the plan spells negative
	// (plan 0 selects the default retry budget).
	if p := parse(t, "-fault-rate", "0.5", "-retries", "0").faultPlan(); p.MaxRetries >= 0 {
		t.Errorf("-retries 0 translated to MaxRetries %d, want negative", p.MaxRetries)
	}

	o = parse(t, "-array", "5", "-fail-disk", "2", "-fail-at", "1s",
		"-rebuild", "-rebuild-blocks", "64", "-rebuild-interval", "2ms")
	if err := o.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	plan = o.faultPlan()
	if plan == nil || plan.FailDisk != 2 || plan.FailAt != 1_000_000 ||
		!plan.Rebuild || plan.RebuildBlocks != 64 || plan.RebuildInterval != 2_000 {
		t.Errorf("failure plan = %+v", plan)
	}
	if err := plan.Validate(); err != nil {
		t.Errorf("translated failure plan does not validate: %v", err)
	}
}

func TestDefaultsValidateAndStayFaultFree(t *testing.T) {
	o := parse(t)
	if err := o.validate(); err != nil {
		t.Fatalf("default flags do not validate: %v", err)
	}
	if o.failDisk != -1 {
		t.Errorf("default -fail-disk = %d, want -1 (disabled)", o.failDisk)
	}
	if o.retryBase != 5*time.Millisecond {
		t.Errorf("default -retry-base = %v", o.retryBase)
	}
}
