package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"sfcsched/internal/fault"
	"sfcsched/internal/workload"
)

// options collects every schedsim flag so the flag surface can be
// validated (and unit-tested) before any simulation work starts.
type options struct {
	sched        string
	curve        string
	f            float64
	r            int
	window       float64
	seed         uint64
	requests     int
	interarrival time.Duration
	dims         int
	levels       int
	deadlineMin  time.Duration
	deadlineMax  time.Duration
	sizeMin      int64
	sizeMax      int64
	drop         bool
	traceFile    string
	replayFile   string
	specName     string
	dispatchOut  string
	arrayDisks   int
	blockSize    int64
	writeFrac    float64

	// Decision observability (PR 7): per-dispatch decision records,
	// counterfactual shadow schedulers, and sim-time telemetry.
	decisionOut       string
	shadowList        string
	telemetryOut      string
	telemetryInterval time.Duration

	// Cluster mode (PR 8): N arrays behind a routing policy and per-class
	// admission control, with tenant- and class-tagged workloads.
	clusterNodes int
	clusterDisks int
	router       string
	admit        string
	admitRate    int64
	admitBurst   int64
	tenants      int
	tenantSkew   float64
	tenantZones  bool
	classes      int

	// Serving layer (PR 9): run the generated trace through the live
	// real-clock dispatcher alongside the simulator and report how well the
	// simulation predicted the serving path.
	serve    bool
	dilation float64
	inflight int

	// Fault injection (PR 5): transient errors on any topology, whole-disk
	// failure and rebuild on arrays only.
	faultRate       float64
	faultSeed       uint64
	retries         int
	retryBase       time.Duration
	failDisk        int
	failAt          time.Duration
	rebuild         bool
	rebuildBlocks   int
	rebuildInterval time.Duration
}

// register binds every option to fs with its default.
func (o *options) register(fs *flag.FlagSet) {
	fs.StringVar(&o.sched, "sched", "cascaded", "scheduler: cascaded, fcfs, sstf, scan, cscan, edf, scan-edf, fd-scan, scan-rt, ssedo, ssedv, multi-queue, bucket, kamel, or all")
	fs.StringVar(&o.curve, "curve", "hilbert", "cascaded: SFC1 curve")
	fs.Float64Var(&o.f, "f", 1, "cascaded: SFC2 balance factor")
	fs.IntVar(&o.r, "r", 3, "cascaded: SFC3 partitions (0 disables the seek stage)")
	fs.Float64Var(&o.window, "window", 0.02, "cascaded: blocking window as a fraction of the value space")
	fs.Uint64Var(&o.seed, "seed", 1, "workload seed")
	fs.IntVar(&o.requests, "requests", 5000, "request count")
	fs.DurationVar(&o.interarrival, "interarrival", 13*time.Millisecond, "mean interarrival time")
	fs.IntVar(&o.dims, "dims", 3, "priority dimensions")
	fs.IntVar(&o.levels, "levels", 8, "priority levels per dimension")
	fs.DurationVar(&o.deadlineMin, "deadline-min", 500*time.Millisecond, "minimum relative deadline (0 disables deadlines)")
	fs.DurationVar(&o.deadlineMax, "deadline-max", 700*time.Millisecond, "maximum relative deadline")
	fs.Int64Var(&o.sizeMin, "size-min", 4<<10, "transfer size of the highest priority, bytes")
	fs.Int64Var(&o.sizeMax, "size-max", 256<<10, "transfer size of the lowest priority, bytes")
	fs.BoolVar(&o.drop, "drop", true, "drop requests whose deadline passed before service")
	fs.StringVar(&o.traceFile, "trace", "", "replay a tracegen CSV file instead of generating a workload")
	fs.StringVar(&o.replayFile, "replay", "", "re-execute a recorded trace (a -dispatch-trace JSONL or a tracegen CSV) instead of generating a workload; pass the recording run's scheduler flags for a byte-identical replay")
	fs.StringVar(&o.specName, "spec", "", "generate a built-in multi-client scenario instead of the open Poisson workload: steady, flash, diurnal, mixed")
	fs.StringVar(&o.dispatchOut, "dispatch-trace", "", "write a JSONL stream of dispatch decisions to this file (- for stdout)")
	fs.StringVar(&o.decisionOut, "decision-trace", "", "write a JSONL stream of per-dispatch decision records (candidate set, slack distribution, window) to this file (- for stdout)")
	fs.StringVar(&o.shadowList, "shadow", "", "comma-separated shadow schedulers to ride the run counterfactually (e.g. scan-edf,fcfs); reports divergence after the run")
	fs.StringVar(&o.telemetryOut, "telemetry", "", "write sim-time telemetry rows (queue depth, utilization, value spread, slack) as CSV to this file (- for stdout)")
	fs.DurationVar(&o.telemetryInterval, "telemetry-interval", 50*time.Millisecond, "sim-time sampling period for -telemetry")
	fs.IntVar(&o.arrayDisks, "array", 0, "simulate a RAID-5 array with this many disks (0 = single disk)")
	fs.Int64Var(&o.blockSize, "block", 64<<10, "array: logical block size, bytes")
	fs.Float64Var(&o.writeFrac, "write-frac", 0, "array: fraction of logical writes (read-modify-write)")

	fs.IntVar(&o.clusterNodes, "cluster", 0, "simulate a storage cluster with this many arrays (0 = single disk / -array)")
	fs.IntVar(&o.clusterDisks, "cluster-disks", 1, "cluster: striped member disks per array")
	fs.StringVar(&o.router, "router", "rr", "cluster: routing policy: rr, least, affinity")
	fs.StringVar(&o.admit, "admit", "always", "cluster: admission policy: always, token")
	fs.Int64Var(&o.admitRate, "admit-rate", 200, "cluster: token-bucket refill per SLO class, tokens/s")
	fs.Int64Var(&o.admitBurst, "admit-burst", 50, "cluster: token-bucket burst per SLO class, tokens")
	fs.IntVar(&o.tenants, "tenants", 0, "tag generated requests with this many zipf-popular tenants (0 = untagged)")
	fs.Float64Var(&o.tenantSkew, "tenant-skew", 1.2, "tenant popularity skew (zipf s, 0 = uniform)")
	fs.BoolVar(&o.tenantZones, "tenant-zones", false, "pin each tenant's requests to its own contiguous block zone")
	fs.IntVar(&o.classes, "classes", 1, "SLO classes; generated requests get class = tenant mod classes")

	fs.BoolVar(&o.serve, "serve", false, "calibrate the simulator against the live real-clock dispatcher on the same trace (cascaded only)")
	fs.Float64Var(&o.dilation, "dilation", 100, "serve: model seconds covered per wall-clock second")
	fs.IntVar(&o.inflight, "inflight", 1, "serve: concurrent backend services (1 = single-arm semantics)")

	fs.Float64Var(&o.faultRate, "fault-rate", 0, "probability a completed dispatch hits a transient fault")
	fs.Uint64Var(&o.faultSeed, "fault-seed", 1, "fault injector seed (independent of the workload seed)")
	fs.IntVar(&o.retries, "retries", 3, "bounded retries per faulted request (0 drops on the first fault)")
	fs.DurationVar(&o.retryBase, "retry-base", 5*time.Millisecond, "first retry backoff; doubles per attempt")
	fs.IntVar(&o.failDisk, "fail-disk", -1, "array: fail this disk mid-run (-1 disables)")
	fs.DurationVar(&o.failAt, "fail-at", 2*time.Second, "array: simulated time of the disk failure")
	fs.BoolVar(&o.rebuild, "rebuild", false, "array: rebuild the failed disk through the foreground schedulers")
	fs.IntVar(&o.rebuildBlocks, "rebuild-blocks", 256, "array: per-disk blocks the rebuild reconstructs")
	fs.DurationVar(&o.rebuildInterval, "rebuild-interval", 5*time.Millisecond, "array: pacing gap between rebuild stripe reads")
}

// validate rejects inconsistent flag combinations with a specific error
// before any model or trace work begins.
func (o *options) validate() error {
	sources := 0
	for _, s := range []string{o.traceFile, o.replayFile, o.specName} {
		if s != "" {
			sources++
		}
	}
	if sources > 1 {
		return fmt.Errorf("-trace, -replay and -spec are mutually exclusive workload sources")
	}
	if o.specName != "" {
		known := false
		for _, n := range workload.Scenarios() {
			known = known || n == o.specName
		}
		if !known {
			return fmt.Errorf("unknown -spec %q (known: %s)", o.specName, strings.Join(workload.Scenarios(), ", "))
		}
		if o.requests <= 0 {
			return fmt.Errorf("-requests must be positive, got %d", o.requests)
		}
	}
	if sources == 0 {
		if o.requests <= 0 {
			return fmt.Errorf("-requests must be positive, got %d", o.requests)
		}
		if o.interarrival <= 0 {
			return fmt.Errorf("-interarrival must be positive, got %v", o.interarrival)
		}
		if o.dims < 1 || o.levels < 1 {
			return fmt.Errorf("-dims and -levels must be at least 1, got %d and %d", o.dims, o.levels)
		}
		if o.deadlineMin < 0 {
			return fmt.Errorf("-deadline-min must not be negative, got %v", o.deadlineMin)
		}
		if o.deadlineMin > 0 && o.deadlineMax < o.deadlineMin {
			return fmt.Errorf("-deadline-max (%v) must not be below -deadline-min (%v)", o.deadlineMax, o.deadlineMin)
		}
		if o.sizeMin < 1 || o.sizeMax < o.sizeMin {
			return fmt.Errorf("transfer sizes must satisfy 1 <= -size-min <= -size-max, got %d and %d", o.sizeMin, o.sizeMax)
		}
	}
	if o.writeFrac < 0 || o.writeFrac > 1 {
		return fmt.Errorf("-write-frac must be in [0,1], got %v", o.writeFrac)
	}
	if o.arrayDisks < 0 {
		return fmt.Errorf("-array must not be negative, got %d", o.arrayDisks)
	}
	if o.arrayDisks > 0 && o.arrayDisks < 3 {
		return fmt.Errorf("-array needs at least 3 disks for RAID-5, got %d", o.arrayDisks)
	}
	if o.arrayDisks > 0 && o.blockSize < 1 {
		return fmt.Errorf("-block must be positive, got %d", o.blockSize)
	}
	if o.shadowList != "" && o.arrayDisks > 0 {
		return fmt.Errorf("-shadow works on single-disk runs; array stations would need per-disk shadow sets")
	}
	if o.sched == "all" {
		for flagName, v := range map[string]string{
			"-decision-trace": o.decisionOut, "-shadow": o.shadowList, "-telemetry": o.telemetryOut,
		} {
			if v != "" {
				return fmt.Errorf("%s needs a single scheduler, not -sched all (outputs would interleave)", flagName)
			}
		}
	}
	if o.clusterNodes < 0 {
		return fmt.Errorf("-cluster must not be negative, got %d", o.clusterNodes)
	}
	if o.tenants < 0 {
		return fmt.Errorf("-tenants must not be negative, got %d", o.tenants)
	}
	if o.tenantSkew < 0 {
		return fmt.Errorf("-tenant-skew must not be negative, got %v", o.tenantSkew)
	}
	if o.tenantZones && o.tenants == 0 {
		return fmt.Errorf("-tenant-zones requires -tenants: there are no tenants to zone")
	}
	if o.classes < 1 {
		return fmt.Errorf("-classes must be at least 1, got %d", o.classes)
	}
	if o.clusterNodes > 0 {
		if o.clusterDisks < 1 {
			return fmt.Errorf("-cluster-disks must be at least 1, got %d", o.clusterDisks)
		}
		if o.arrayDisks > 0 {
			return fmt.Errorf("-cluster and -array are mutually exclusive topologies")
		}
		if o.shadowList != "" {
			return fmt.Errorf("-shadow works on single-disk runs; cluster stations would need per-disk shadow sets")
		}
		if o.decisionOut != "" {
			return fmt.Errorf("-decision-trace works on single-disk runs, not -cluster")
		}
		if o.faultRate > 0 || o.failDisk >= 0 {
			return fmt.Errorf("fault injection is not wired into the cluster layer; drop the fault flags or -cluster")
		}
		switch o.router {
		case "rr", "round-robin", "least", "least-loaded", "affinity":
		default:
			return fmt.Errorf("unknown -router %q (known: rr, least, affinity)", o.router)
		}
		switch o.admit {
		case "always", "token", "token-bucket":
		default:
			return fmt.Errorf("unknown -admit %q (known: always, token)", o.admit)
		}
		if o.admit != "always" && (o.admitRate < 1 || o.admitBurst < 1) {
			return fmt.Errorf("-admit-rate and -admit-burst must be at least 1, got %d and %d", o.admitRate, o.admitBurst)
		}
	}
	if !(o.dilation > 0) {
		return fmt.Errorf("-dilation must be positive, got %v", o.dilation)
	}
	if o.inflight < 1 {
		return fmt.Errorf("-inflight must be at least 1, got %d", o.inflight)
	}
	if o.serve {
		if o.sched != "cascaded" {
			return fmt.Errorf("-serve calibrates the cascaded scheduler; got -sched %s", o.sched)
		}
		if o.arrayDisks > 0 || o.clusterNodes > 0 {
			return fmt.Errorf("-serve runs the single-disk serving path; drop -array/-cluster")
		}
		if o.faultRate > 0 || o.failDisk >= 0 {
			return fmt.Errorf("fault injection is not wired into the serving path; drop the fault flags or -serve")
		}
		for flagName, v := range map[string]string{
			"-decision-trace": o.decisionOut, "-shadow": o.shadowList,
			"-telemetry": o.telemetryOut, "-dispatch-trace": o.dispatchOut,
		} {
			if v != "" {
				return fmt.Errorf("%s records the simulated run; it does not apply to -serve", flagName)
			}
		}
	}
	if o.telemetryOut != "" && o.telemetryInterval <= 0 {
		return fmt.Errorf("-telemetry-interval must be positive, got %v", o.telemetryInterval)
	}
	if o.faultRate < 0 || o.faultRate > 1 {
		return fmt.Errorf("-fault-rate must be in [0,1], got %v", o.faultRate)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must not be negative, got %d", o.retries)
	}
	if o.retryBase < 0 {
		return fmt.Errorf("-retry-base must not be negative, got %v", o.retryBase)
	}
	if o.failDisk >= 0 {
		if o.arrayDisks == 0 {
			return fmt.Errorf("-fail-disk requires -array: whole-disk failure needs RAID-5 redundancy")
		}
		if o.failDisk >= o.arrayDisks {
			return fmt.Errorf("-fail-disk %d out of range for a %d-disk array", o.failDisk, o.arrayDisks)
		}
		if o.failAt <= 0 {
			return fmt.Errorf("-fail-at must be positive, got %v", o.failAt)
		}
	}
	if o.rebuild {
		if o.failDisk < 0 {
			return fmt.Errorf("-rebuild requires -fail-disk: there is nothing to rebuild")
		}
		if o.rebuildBlocks <= 0 {
			return fmt.Errorf("-rebuild-blocks must be positive, got %d", o.rebuildBlocks)
		}
		if o.rebuildInterval < 0 {
			return fmt.Errorf("-rebuild-interval must not be negative, got %v", o.rebuildInterval)
		}
	}
	return nil
}

// faultPlan translates the fault flags into a plan, or nil when no fault
// source is armed (keeping fault-free runs on the zero-plan fast path).
func (o *options) faultPlan() *fault.Plan {
	if o.faultRate == 0 && o.failDisk < 0 {
		return nil
	}
	plan := &fault.Plan{
		Seed:          o.faultSeed,
		TransientRate: o.faultRate,
		MaxRetries:    o.retries,
		RetryBase:     o.retryBase.Microseconds(),
	}
	if o.retries == 0 {
		plan.MaxRetries = -1 // flag 0 means "no retries", plan 0 means default
	}
	if o.failDisk >= 0 {
		plan.FailDisk = o.failDisk
		plan.FailAt = o.failAt.Microseconds()
		if o.rebuild {
			plan.Rebuild = true
			plan.RebuildBlocks = o.rebuildBlocks
			plan.RebuildInterval = o.rebuildInterval.Microseconds()
		}
	}
	return plan
}
