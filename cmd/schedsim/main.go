// Command schedsim runs a single disk-scheduling simulation and prints a
// metrics report. It is the exploratory companion of schedbench: pick any
// scheduler (baseline or Cascaded-SFC), any workload shape, and compare.
//
// Usage:
//
//	schedsim -sched cascaded -curve hilbert -f 1 -r 3 -window 0.02
//	schedsim -sched edf -requests 8000 -interarrival 10ms
//	schedsim -sched all                 # every scheduler over the same trace
//	schedsim -trace open.csv -sched all # replay a tracegen CSV file
//	schedsim -sched cascaded -dispatch-trace run.jsonl  # JSONL dispatch log
//	schedsim -sched all -fault-rate 0.01                # transient faults
//	schedsim -array 5 -fail-disk 2 -rebuild             # degraded RAID-5
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sfcsched/internal/cluster"
	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/fault"
	"sfcsched/internal/metrics"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

func main() {
	var opt options
	opt.register(flag.CommandLine)
	flag.Parse()
	if err := opt.validate(); err != nil {
		fatal(err)
	}

	m, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		fatal(err)
	}
	var array *disk.RAID5
	cylinders := m.Cylinders
	if opt.arrayDisks > 0 {
		array, err = disk.NewRAID5(opt.arrayDisks, opt.blockSize, m)
		if err != nil {
			fatal(err)
		}
		// Array workloads address logical blocks, not cylinders.
		cylinders = int(array.MaxBlocks())
	}
	if opt.clusterNodes > 0 {
		// Cluster workloads address the flat logical block space striped
		// over every member disk.
		cylinders = opt.clusterNodes * opt.clusterDisks * m.Cylinders
	}
	var trace []*core.Request
	if opt.traceFile != "" {
		f, err := os.Open(opt.traceFile)
		if err != nil {
			fatal(err)
		}
		trace, err = workload.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sim.SortByArrival(trace)
		opt.dims = 0
		for _, r := range trace {
			if len(r.Priorities) > opt.dims {
				opt.dims = len(r.Priorities)
			}
		}
	} else if opt.replayFile != "" {
		rec, err := workload.LoadReplayFile(opt.replayFile)
		if err != nil {
			fatal(err)
		}
		trace = rec.Generate()
		// Schedulers must be built with the recorded dimensionality, as the
		// -trace path does, so a same-build replay reproduces the recording
		// byte for byte.
		opt.dims = rec.Dims()
	} else if opt.specName != "" {
		spec, err := workload.ScenarioSpec(opt.specName, opt.seed, opt.requests, cylinders)
		if err != nil {
			fatal(err)
		}
		trace, err = spec.Generate()
		if err != nil {
			fatal(err)
		}
		// The scenarios fix their own priority shape.
		opt.dims = spec.Dims()
		opt.levels = 8
	} else {
		trace, err = workload.Open{
			Seed:             opt.seed,
			Count:            opt.requests,
			MeanInterarrival: opt.interarrival.Microseconds(),
			Dims:             opt.dims,
			Levels:           opt.levels,
			DeadlineMin:      opt.deadlineMin.Microseconds(),
			DeadlineMax:      opt.deadlineMax.Microseconds(),
			Cylinders:        cylinders,
			SizeMin:          opt.sizeMin,
			SizeMax:          opt.sizeMax,
			WriteFrac:        opt.writeFrac,
			Tenants:          opt.tenants,
			TenantSkew:       opt.tenantSkew,
			TenantZones:      opt.tenantZones,
			Classes:          opt.classes,
		}.Generate()
		if err != nil {
			fatal(err)
		}
	}

	if opt.serve {
		if err := runServeCalib(os.Stdout, opt, m, trace); err != nil {
			fatal(err)
		}
		return
	}

	names := []string{opt.sched}
	if opt.sched == "all" {
		names = []string{"cascaded", "fcfs", "sstf", "scan", "cscan", "edf", "scan-edf",
			"fd-scan", "scan-rt", "ssedo", "ssedv", "multi-queue", "bucket", "kamel"}
	}
	var traceHook func(sim.TraceEvent)
	if opt.dispatchOut != "" {
		w, closeOut, err := outWriter(opt.dispatchOut)
		if err != nil {
			fatal(err)
		}
		defer closeOut()
		traceHook = sim.JSONLTrace(w)
	}
	var decisions *sim.DecisionTrace
	if opt.decisionOut != "" {
		w, closeOut, err := outWriter(opt.decisionOut)
		if err != nil {
			fatal(err)
		}
		defer closeOut()
		decisions = sim.NewDecisionTrace(1024)
		decisions.OnRecord = sim.DecisionJSONL(w)
	}
	var telemetry *sim.Telemetry
	if opt.telemetryOut != "" {
		telemetry = sim.NewTelemetry(opt.telemetryInterval.Microseconds())
	}
	plan := opt.faultPlan()
	opts := sim.Options{
		DropLate: opt.drop,
		Dims:     opt.dims, Levels: opt.levels, Seed: opt.seed,
		Trace:     traceHook,
		Fault:     plan,
		Decisions: decisions,
		Telemetry: telemetry,
	}
	fmt.Printf("%-12s %8s %8s %8s %10s %10s %12s",
		"scheduler", "served", "dropped", "late", "seek(s)", "busy(s)", "inversions")
	if plan != nil {
		fmt.Printf(" %8s %8s", "faults", "fdrop")
	}
	fmt.Println()
	for _, name := range names {
		if opt.clusterNodes > 0 {
			res, err := runCluster(opt, m, name, trace, traceHook, telemetry)
			if err != nil {
				fatal(err)
			}
			var served, dropped, late uint64
			for _, cs := range res.PerClass {
				served += cs.Served
				dropped += cs.AdmitDropped + cs.DispatchDropped
				late += cs.Late
			}
			var seek, busy int64
			for _, ns := range res.PerNode {
				seek += ns.SeekTime
				busy += ns.BusyTime
			}
			var inv uint64
			for _, c := range res.PerDisk {
				inv += c.TotalInversions()
			}
			fmt.Printf("%-12s %8d %8d %8d %10.2f %10.2f %12d\n",
				name, served, dropped, late, float64(seek)/1e6, float64(busy)/1e6, inv)
			printClusterReport(res)
			continue
		}
		if array != nil {
			ar, err := sim.RunArray(sim.ArrayConfig{
				Array: array,
				NewScheduler: func(int) (sched.Scheduler, error) {
					return build(name, m, opt.curve, opt.f, opt.r, opt.window, opt.levels, opt.dims, opt.deadlineMax.Microseconds())
				},
				Options: opts,
			}, trace)
			if err != nil {
				fatal(err)
			}
			inv := uint64(0)
			for _, c := range ar.PerDisk {
				inv += c.TotalInversions()
			}
			fmt.Printf("%-12s %8d %8d %8d %10.2f %10.2f %12d",
				name, ar.Logical.Served, ar.Logical.Dropped, ar.Logical.Late,
				float64(ar.SeekTime)/1e6, float64(ar.BusyTime)/1e6, inv)
			printFaultCols(plan, ar.Faults, ar.PerDisk)
			fmt.Println()
			continue
		}
		s, err := build(name, m, opt.curve, opt.f, opt.r, opt.window, opt.levels, opt.dims, opt.deadlineMax.Microseconds())
		if err != nil {
			fatal(err)
		}
		runOpts := opts
		runOpts.Shadows, err = buildShadows(opt, m)
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(sim.Config{Disk: m, Scheduler: s, Options: runOpts}, trace)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %8d %8d %8d %10.2f %10.2f %12d",
			name, res.Served, res.Dropped, res.Late,
			float64(res.SeekTime)/1e6, float64(res.ServiceTime)/1e6, res.TotalInversions())
		printFaultCols(plan, res.Faults, []*metrics.Collector{res.Collector})
		fmt.Println()
		printShadowReports(res)
	}
	if telemetry != nil {
		w, closeOut, err := outWriter(opt.telemetryOut)
		if err != nil {
			fatal(err)
		}
		err = telemetry.WriteCSV(w)
		closeOut()
		if err != nil {
			fatal(err)
		}
	}
}

// runCluster simulates one scheduler across the -cluster topology: every
// member disk runs its own instance, requests route and admit per the
// -router and -admit policies.
func runCluster(opt options, m *disk.Model, name string, trace []*core.Request,
	traceHook func(sim.TraceEvent), telemetry *sim.Telemetry) (*cluster.Result, error) {
	cfg := cluster.Config{
		Nodes: opt.clusterNodes, DisksPerNode: opt.clusterDisks, Disk: m,
		NewScheduler: func(int, int) (sched.Scheduler, error) {
			return build(name, m, opt.curve, opt.f, opt.r, opt.window, opt.levels, opt.dims, opt.deadlineMax.Microseconds())
		},
		Classes:  opt.classes,
		Seed:     opt.seed,
		DropLate: opt.drop,
		Dims:     opt.dims, Levels: opt.levels,
		Trace: traceHook, Telemetry: telemetry,
	}
	var err error
	if cfg.Router, err = cluster.NewRouter(opt.router); err != nil {
		return nil, err
	}
	if cfg.Admission, err = cluster.NewAdmitter(opt.admit, opt.classes, opt.admitRate, opt.admitBurst); err != nil {
		return nil, err
	}
	return cluster.Run(cfg, trace)
}

// printClusterReport renders the per-class SLO ledger, the per-node
// routing balance and the Jain fairness index of one cluster run.
func printClusterReport(res *cluster.Result) {
	fmt.Printf("  %-7s %8s %8s %8s %8s %8s %7s %9s %9s\n",
		"class", "arrived", "admitted", "a-drop", "d-drop", "served", "loss%", "p50(ms)", "p99(ms)")
	for _, cs := range res.PerClass {
		q := cs.Latency.Quantiles(0.5, 0.99)
		fmt.Printf("  %-7d %8d %8d %8d %8d %8d %7.2f %9.1f %9.1f\n",
			cs.Class, cs.Arrived, cs.Admitted, cs.AdmitDropped, cs.DispatchDropped,
			cs.Served, 100*cs.LossRate(), float64(q[0])/1e3, float64(q[1])/1e3)
	}
	fmt.Printf("  %-7s %8s %8s %8s %10s %10s\n",
		"node", "routed", "served", "dropped", "seek(s)", "busy(s)")
	for _, ns := range res.PerNode {
		fmt.Printf("  %-7d %8d %8d %8d %10.2f %10.2f\n",
			ns.Node, ns.Routed, ns.Served, ns.Dropped,
			float64(ns.SeekTime)/1e6, float64(ns.BusyTime)/1e6)
	}
	fmt.Printf("  router %s, admission %s; Jain fairness over %d tenants: %.3f\n",
		res.Router, res.Admission, len(res.Tenants), res.Jain())
}

// outWriter opens path for streaming output: "-" is stdout, anything else
// a buffered file. The returned func flushes and closes.
func outWriter(path string) (io.Writer, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(f)
	return bw, func() { bw.Flush(); f.Close() }, nil
}

// buildShadows constructs the counterfactual shadow schedulers of the
// -shadow flag, fresh per run (shadows are single-use).
func buildShadows(opt options, m *disk.Model) ([]*sim.Shadow, error) {
	if opt.shadowList == "" {
		return nil, nil
	}
	var shadows []*sim.Shadow
	for _, name := range strings.Split(opt.shadowList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := build(name, m, opt.curve, opt.f, opt.r, opt.window, opt.levels, opt.dims, opt.deadlineMax.Microseconds())
		if err != nil {
			return nil, fmt.Errorf("-shadow %s: %w", name, err)
		}
		shadows = append(shadows, sim.NewShadow(name, s))
	}
	return shadows, nil
}

// printShadowReports renders the divergence summary of each shadow that
// rode the run.
func printShadowReports(res *sim.Result) {
	if len(res.Shadows) == 0 {
		return
	}
	fmt.Printf("  %-12s %9s %7s %7s %7s %12s %9s\n",
		"shadow", "decisions", "agree%", "drops", "empty", "head-travel", "Δslack/ms")
	for _, rep := range res.Shadows {
		agree := 0.0
		if rep.Decisions > 0 {
			agree = 100 * float64(rep.Agreements) / float64(rep.Decisions)
		}
		slackMs := float64(rep.SlackDelta) / 1e3
		fmt.Printf("  %-12s %9d %7.2f %7d %7d %12d %9.1f\n",
			rep.Name, rep.Decisions, agree, rep.Drops, rep.Empty, rep.HeadTravel, slackMs)
	}
}

// printFaultCols appends the fault columns of one result row: total fault
// hits (transient + bad-sector + lost in flight) and fault-attributed
// drops summed over the physical collectors.
func printFaultCols(plan *fault.Plan, fs *fault.Stats, cols []*metrics.Collector) {
	if plan == nil {
		return
	}
	var hits, fdrop uint64
	if fs != nil {
		hits = fs.Transients + fs.BadSectorHits + fs.LostInFlight
	}
	for _, c := range cols {
		fdrop += c.FaultDropped
	}
	fmt.Printf(" %8d %8d", hits, fdrop)
}

// build constructs the named scheduler.
func build(name string, m *disk.Model, curve string, f float64, r int, window float64, levels, dims int, horizon int64) (sched.Scheduler, error) {
	est := m.ServiceTime
	switch name {
	case "cascaded":
		cfg, err := cascadedConfig(m, curve, f, r, levels, dims, horizon)
		if err != nil {
			return nil, err
		}
		return core.NewScheduler("cascaded", cfg,
			core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true}, window)
	case "fcfs":
		return sched.NewFCFS(), nil
	case "sstf":
		return sched.NewSSTF(), nil
	case "scan":
		return sched.NewSCAN(), nil
	case "cscan":
		return sched.NewCSCAN(), nil
	case "edf":
		return sched.NewEDF(), nil
	case "scan-edf":
		return sched.NewSCANEDF(50_000), nil
	case "fd-scan":
		return sched.NewFDSCAN(est), nil
	case "scan-rt":
		return sched.NewSCANRT(est), nil
	case "ssedo":
		return sched.NewSSEDO(0, 0), nil
	case "ssedv":
		return sched.NewSSEDV(0, 0), nil
	case "multi-queue":
		return sched.NewMultiQueue(levels), nil
	case "bucket":
		return sched.NewBUCKET(), nil
	case "kamel":
		return sched.NewKamel(est), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

// cascadedConfig translates the cascaded flags into the three-stage
// encapsulator configuration. It is shared between build (the simulated
// schedulers) and the -serve calibration path, so both sides of an
// observe-predict-calibrate run schedule with exactly the same policy.
func cascadedConfig(m *disk.Model, curve string, f float64, r int, levels, dims int, horizon int64) (core.EncapsulatorConfig, error) {
	cv, err := sfc.New(curve, dims, uint32(levels))
	if err != nil {
		return core.EncapsulatorConfig{}, err
	}
	cfg := core.EncapsulatorConfig{Curve1: cv, Levels: levels}
	if horizon > 0 {
		cfg.UseDeadline = true
		cfg.F = f
		cfg.DeadlineHorizon = horizon
		cfg.DeadlineSpan = horizon
		cfg.DeadlineSlack = true
	}
	if r > 0 {
		cfg.UseCylinder = true
		cfg.R = r
		cfg.Cylinders = m.Cylinders
	}
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "schedsim: %v\n", err)
	os.Exit(1)
}
