// Command schedsim runs a single disk-scheduling simulation and prints a
// metrics report. It is the exploratory companion of schedbench: pick any
// scheduler (baseline or Cascaded-SFC), any workload shape, and compare.
//
// Usage:
//
//	schedsim -sched cascaded -curve hilbert -f 1 -r 3 -window 0.02
//	schedsim -sched edf -requests 8000 -interarrival 10ms
//	schedsim -sched all                 # every scheduler over the same trace
//	schedsim -trace open.csv -sched all # replay a tracegen CSV file
//	schedsim -sched cascaded -dispatch-trace run.jsonl  # JSONL dispatch log
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

func main() {
	var (
		schedName    = flag.String("sched", "cascaded", "scheduler: cascaded, fcfs, sstf, scan, cscan, edf, scan-edf, fd-scan, scan-rt, ssedo, ssedv, multi-queue, bucket, kamel, or all")
		curve        = flag.String("curve", "hilbert", "cascaded: SFC1 curve")
		f            = flag.Float64("f", 1, "cascaded: SFC2 balance factor")
		r            = flag.Int("r", 3, "cascaded: SFC3 partitions (0 disables the seek stage)")
		window       = flag.Float64("window", 0.02, "cascaded: blocking window as a fraction of the value space")
		seed         = flag.Uint64("seed", 1, "workload seed")
		requests     = flag.Int("requests", 5000, "request count")
		interarrival = flag.Duration("interarrival", 13*time.Millisecond, "mean interarrival time")
		dims         = flag.Int("dims", 3, "priority dimensions")
		levels       = flag.Int("levels", 8, "priority levels per dimension")
		deadlineMin  = flag.Duration("deadline-min", 500*time.Millisecond, "minimum relative deadline (0 disables deadlines)")
		deadlineMax  = flag.Duration("deadline-max", 700*time.Millisecond, "maximum relative deadline")
		sizeMin      = flag.Int64("size-min", 4<<10, "transfer size of the highest priority, bytes")
		sizeMax      = flag.Int64("size-max", 256<<10, "transfer size of the lowest priority, bytes")
		drop         = flag.Bool("drop", true, "drop requests whose deadline passed before service")
		traceFile    = flag.String("trace", "", "replay a tracegen CSV file instead of generating a workload")
		dispatchOut  = flag.String("dispatch-trace", "", "write a JSONL stream of dispatch decisions to this file (- for stdout)")
		arrayDisks   = flag.Int("array", 0, "simulate a RAID-5 array with this many disks (0 = single disk)")
		blockSize    = flag.Int64("block", 64<<10, "array: logical block size, bytes")
		writeFrac    = flag.Float64("write-frac", 0, "array: fraction of logical writes (read-modify-write)")
	)
	flag.Parse()

	m, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		fatal(err)
	}
	var array *disk.RAID5
	cylinders := m.Cylinders
	if *arrayDisks > 0 {
		array, err = disk.NewRAID5(*arrayDisks, *blockSize, m)
		if err != nil {
			fatal(err)
		}
		// Array workloads address logical blocks, not cylinders.
		cylinders = int(array.MaxBlocks())
	}
	var trace []*core.Request
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		trace, err = workload.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sim.SortByArrival(trace)
		*dims = 0
		for _, r := range trace {
			if len(r.Priorities) > *dims {
				*dims = len(r.Priorities)
			}
		}
	} else {
		trace, err = workload.Open{
			Seed:             *seed,
			Count:            *requests,
			MeanInterarrival: interarrival.Microseconds(),
			Dims:             *dims,
			Levels:           *levels,
			DeadlineMin:      deadlineMin.Microseconds(),
			DeadlineMax:      deadlineMax.Microseconds(),
			Cylinders:        cylinders,
			SizeMin:          *sizeMin,
			SizeMax:          *sizeMax,
			WriteFrac:        *writeFrac,
		}.Generate()
		if err != nil {
			fatal(err)
		}
	}

	names := []string{*schedName}
	if *schedName == "all" {
		names = []string{"cascaded", "fcfs", "sstf", "scan", "cscan", "edf", "scan-edf",
			"fd-scan", "scan-rt", "ssedo", "ssedv", "multi-queue", "bucket", "kamel"}
	}
	var traceHook func(sim.TraceEvent)
	if *dispatchOut != "" {
		w := io.Writer(os.Stdout)
		if *dispatchOut != "-" {
			f, err := os.Create(*dispatchOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			bw := bufio.NewWriter(f)
			defer bw.Flush()
			w = bw
		}
		traceHook = sim.JSONLTrace(w)
	}
	opts := sim.Options{
		DropLate: *drop,
		Dims:     *dims, Levels: *levels, Seed: *seed,
		Trace: traceHook,
	}
	fmt.Printf("%-12s %8s %8s %8s %10s %10s %12s\n",
		"scheduler", "served", "dropped", "late", "seek(s)", "busy(s)", "inversions")
	for _, name := range names {
		if array != nil {
			ar, err := sim.RunArray(sim.ArrayConfig{
				Array: array,
				NewScheduler: func(int) (sched.Scheduler, error) {
					return build(name, m, *curve, *f, *r, *window, *levels, *dims, deadlineMax.Microseconds())
				},
				Options: opts,
			}, trace)
			if err != nil {
				fatal(err)
			}
			inv := uint64(0)
			for _, c := range ar.PerDisk {
				inv += c.TotalInversions()
			}
			fmt.Printf("%-12s %8d %8d %8d %10.2f %10.2f %12d\n",
				name, ar.Logical.Served, ar.Logical.Dropped, ar.Logical.Late,
				float64(ar.SeekTime)/1e6, float64(ar.BusyTime)/1e6, inv)
			continue
		}
		s, err := build(name, m, *curve, *f, *r, *window, *levels, *dims, deadlineMax.Microseconds())
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(sim.Config{Disk: m, Scheduler: s, Options: opts}, trace)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %8d %8d %8d %10.2f %10.2f %12d\n",
			name, res.Served, res.Dropped, res.Late,
			float64(res.SeekTime)/1e6, float64(res.ServiceTime)/1e6, res.TotalInversions())
	}
}

// build constructs the named scheduler.
func build(name string, m *disk.Model, curve string, f float64, r int, window float64, levels, dims int, horizon int64) (sched.Scheduler, error) {
	est := m.ServiceTime
	switch name {
	case "cascaded":
		cv, err := sfc.New(curve, dims, uint32(levels))
		if err != nil {
			return nil, err
		}
		cfg := core.EncapsulatorConfig{Curve1: cv, Levels: levels}
		if horizon > 0 {
			cfg.UseDeadline = true
			cfg.F = f
			cfg.DeadlineHorizon = horizon
			cfg.DeadlineSpan = horizon
			cfg.DeadlineSlack = true
		}
		if r > 0 {
			cfg.UseCylinder = true
			cfg.R = r
			cfg.Cylinders = m.Cylinders
		}
		return core.NewScheduler("cascaded", cfg,
			core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true}, window)
	case "fcfs":
		return sched.NewFCFS(), nil
	case "sstf":
		return sched.NewSSTF(), nil
	case "scan":
		return sched.NewSCAN(), nil
	case "cscan":
		return sched.NewCSCAN(), nil
	case "edf":
		return sched.NewEDF(), nil
	case "scan-edf":
		return sched.NewSCANEDF(50_000), nil
	case "fd-scan":
		return sched.NewFDSCAN(est), nil
	case "scan-rt":
		return sched.NewSCANRT(est), nil
	case "ssedo":
		return sched.NewSSEDO(0, 0), nil
	case "ssedv":
		return sched.NewSSEDV(0, 0), nil
	case "multi-queue":
		return sched.NewMultiQueue(levels), nil
	case "bucket":
		return sched.NewBUCKET(), nil
	case "kamel":
		return sched.NewKamel(est), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "schedsim: %v\n", err)
	os.Exit(1)
}
