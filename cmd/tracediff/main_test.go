package main

import (
	"strings"
	"testing"
)

func runDiff(t *testing.T, a, b string, context int) (bool, string) {
	t.Helper()
	var out strings.Builder
	same, err := diff(strings.NewReader(a), strings.NewReader(b), &out, context)
	if err != nil {
		t.Fatal(err)
	}
	return same, out.String()
}

func TestDiffIdentical(t *testing.T) {
	trace := "{\"seq\":0}\n{\"seq\":1}\n{\"seq\":2}\n"
	same, out := runDiff(t, trace, trace, 3)
	if !same {
		t.Fatalf("identical traces reported divergent:\n%s", out)
	}
	if !strings.Contains(out, "identical (3 lines)") {
		t.Fatalf("missing line count: %q", out)
	}
}

func TestDiffEmpty(t *testing.T) {
	if same, out := runDiff(t, "", "", 3); !same {
		t.Fatalf("two empty traces reported divergent:\n%s", out)
	}
}

func TestDiffFirstDivergence(t *testing.T) {
	a := "l1\nl2\nl3\nl4-a\nl5-a\n"
	b := "l1\nl2\nl3\nl4-b\nl5-b\n"
	same, out := runDiff(t, a, b, 2)
	if same {
		t.Fatal("divergent traces reported identical")
	}
	if !strings.Contains(out, "diverge at line 4") {
		t.Fatalf("wrong divergence line:\n%s", out)
	}
	// Only the first divergence is reported, with the requested context.
	if strings.Contains(out, "l5") {
		t.Fatalf("report continued past the first divergence:\n%s", out)
	}
	if !strings.Contains(out, "l2") || !strings.Contains(out, "l3") {
		t.Fatalf("missing context lines:\n%s", out)
	}
	if strings.Contains(out, "l1") {
		t.Fatalf("context exceeded -context 2:\n%s", out)
	}
	if !strings.Contains(out, "- l4-a") || !strings.Contains(out, "+ l4-b") {
		t.Fatalf("differing lines not tagged:\n%s", out)
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	a := "l1\nl2\n"
	b := "l1\nl2\nl3\n"
	same, out := runDiff(t, a, b, 3)
	if same {
		t.Fatal("prefix trace reported identical to longer trace")
	}
	if !strings.Contains(out, "diverge at line 3") {
		t.Fatalf("wrong divergence line:\n%s", out)
	}
	if !strings.Contains(out, "- <end of trace>") || !strings.Contains(out, "+ l3") {
		t.Fatalf("length mismatch not reported:\n%s", out)
	}
}

func TestDiffZeroContext(t *testing.T) {
	same, out := runDiff(t, "x\ny-a\n", "x\ny-b\n", 0)
	if same {
		t.Fatal("divergent traces reported identical")
	}
	if strings.Contains(out, "  ") && strings.Contains(out, "\n  ") {
		t.Fatalf("context printed despite -context 0:\n%s", out)
	}
}
