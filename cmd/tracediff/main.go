// Command tracediff compares two JSONL dispatch traces (schedsim
// -dispatch-trace or -decision-trace output) line by line and reports the
// first divergence with surrounding context. Two runs that should be
// deterministic twins — same seed across machines, a run with shadows
// attached versus one without — can be checked in one command:
//
//	tracediff golden.jsonl candidate.jsonl
//	tracediff -context 5 a.jsonl b.jsonl
//
// Exit status is 0 when the traces are identical, 1 at the first
// divergence, 2 on usage or I/O errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	context := flag.Int("context", 3, "matching lines to print before the divergence")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracediff [-context n] a.jsonl b.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 || *context < 0 {
		flag.Usage()
		os.Exit(2)
	}
	a, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer a.Close()
	b, err := os.Open(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	defer b.Close()
	same, err := diff(a, b, os.Stdout, *context)
	if err != nil {
		fatal(err)
	}
	if !same {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracediff: %v\n", err)
	os.Exit(2)
}

// diff streams both readers line by line and writes a report of the first
// divergence to w: up to context preceding common lines, then the two
// differing lines tagged with their source. It returns true when the
// streams are byte-identical. A stream ending early is a divergence; the
// longer side's next line is reported against "<end of trace>".
func diff(a, b io.Reader, w io.Writer, context int) (bool, error) {
	sa := bufio.NewScanner(a)
	sb := bufio.NewScanner(b)
	sa.Buffer(make([]byte, 0, 64<<10), 16<<20)
	sb.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var recent []string // ring of the last `context` common lines
	line := 0
	for {
		okA, okB := sa.Scan(), sb.Scan()
		if err := sa.Err(); err != nil {
			return false, fmt.Errorf("reading first trace: %w", err)
		}
		if err := sb.Err(); err != nil {
			return false, fmt.Errorf("reading second trace: %w", err)
		}
		if !okA && !okB {
			fmt.Fprintf(w, "traces identical (%d lines)\n", line)
			return true, nil
		}
		line++
		la, lb := "<end of trace>", "<end of trace>"
		if okA {
			la = sa.Text()
		}
		if okB {
			lb = sb.Text()
		}
		if okA && okB && la == lb {
			if context > 0 {
				if len(recent) == context {
					recent = append(recent[:0], recent[1:]...)
				}
				recent = append(recent, la)
			}
			continue
		}
		fmt.Fprintf(w, "traces diverge at line %d\n", line)
		for i, l := range recent {
			fmt.Fprintf(w, "  %6d   %s\n", line-len(recent)+i, l)
		}
		fmt.Fprintf(w, "a %6d - %s\nb %6d + %s\n", line, la, line, lb)
		return false, nil
	}
}
