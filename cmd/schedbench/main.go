// Command schedbench regenerates the paper's tables and figures, and —
// with -serve — lifts the scheduler out of the simulator onto a
// real-clock serving path against an emulated disk.
//
// Usage:
//
//	schedbench -exp all                # run every experiment
//	schedbench -exp fig5               # one experiment
//	schedbench -exp fig10 -requests 8000 -seed 7
//	schedbench -exp calibrate -dilations 10,50,250
//	schedbench -serve -dilation 100 -serve-for 2s -http :9090
//
// Output is a text table per figure: the shared x-axis followed by one
// column per series, matching the series of the corresponding plot in the
// paper. EXPERIMENTS.md records the expected shapes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sfcsched/internal/experiments"
)

func main() {
	var o options
	o.register(flag.CommandLine)
	flag.Parse()
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "schedbench: %v\n", err)
		os.Exit(2)
	}

	if o.httpAddr != "" {
		ln, err := serveObs(o.httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "schedbench: observability on http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
		defer func() {
			fmt.Fprintf(os.Stderr, "schedbench: work done; serving http://%s until interrupted\n", ln.Addr())
			select {}
		}()
	}

	if o.serve {
		if err := runServe(os.Stdout, &o); err != nil {
			fmt.Fprintf(os.Stderr, "schedbench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ids := experiments.All()
	if o.exp != "all" {
		ids = strings.Split(o.exp, ",")
	}
	for _, id := range ids {
		if err := run(os.Stdout, strings.TrimSpace(id), &o); err != nil {
			fmt.Fprintf(os.Stderr, "schedbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func run(out io.Writer, id string, o *options) error {
	render := func(r *experiments.Result) {
		if o.asCSV {
			r.RenderCSV(out)
		} else {
			r.Render(out)
		}
	}
	switch id {
	case "table1":
		return experiments.Table1(out)
	case "ablations":
		return experiments.Ablations(out, o.seed, o.workers)
	case "micro":
		return runMicro(out)
	case "fig5":
		cfg := experiments.DefaultSFC1Config()
		cfg.Seed = o.seed
		cfg.Workers = o.workers
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		res, err := experiments.Fig5(cfg, nil)
		if err != nil {
			return err
		}
		render(res)
	case "fig6":
		cfg := experiments.DefaultSFC1Config()
		cfg.Seed = o.seed
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		res, err := experiments.Fig6(cfg, nil, 0.05)
		if err != nil {
			return err
		}
		render(res)
	case "fig7":
		cfg := experiments.DefaultSFC1Config()
		cfg.Seed = o.seed
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		a, b, err := experiments.Fig7(cfg, nil)
		if err != nil {
			return err
		}
		render(a)
		render(b)
	case "fig8":
		cfg := experiments.DefaultSFC2Config()
		cfg.Seed = o.seed
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		a, b, err := experiments.Fig8(cfg, nil)
		if err != nil {
			return err
		}
		render(a)
		render(b)
	case "fig9":
		cfg := experiments.DefaultSFC2Config()
		cfg.Seed = o.seed
		cfg.Service = 26_000 // overload so every scheduler must sacrifice
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		rs, err := experiments.Fig9(cfg, 1)
		if err != nil {
			return err
		}
		for _, r := range rs {
			render(r)
		}
	case "fig10":
		cfg := experiments.DefaultSFC3Config()
		cfg.Seed = o.seed
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		a, b, c, err := experiments.Fig10(cfg, nil)
		if err != nil {
			return err
		}
		render(a)
		render(b)
		render(c)
	case "faultsweep":
		cfg := experiments.DefaultFaultSweepConfig()
		cfg.Seed = o.seed
		cfg.Workers = o.workers
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		a, b, err := experiments.FaultSweep(cfg)
		if err != nil {
			return err
		}
		render(a)
		render(b)
	case "divergence":
		cfg := experiments.DefaultDivergenceConfig()
		cfg.Seed = o.seed
		cfg.Workers = o.workers
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		a, b, err := experiments.Divergence(cfg)
		if err != nil {
			return err
		}
		render(a)
		render(b)
	case "cluster":
		cfg := experiments.DefaultClusterConfig()
		cfg.Seed = o.seed
		cfg.Workers = o.workers
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		a, b, c, err := experiments.Cluster(cfg)
		if err != nil {
			return err
		}
		render(a)
		render(b)
		render(c)
	case "replaydiff":
		cfg := experiments.DefaultReplayDiffConfig()
		cfg.Seed = o.seed
		cfg.Workers = o.workers
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		a, b, err := experiments.ReplayDiff(cfg)
		if err != nil {
			return err
		}
		render(a)
		render(b)
	case "calibrate":
		cfg := experiments.DefaultCalibrateConfig()
		cfg.Seed = o.seed
		if o.requests > 0 {
			cfg.Requests = o.requests
		}
		if dils, err := o.parseDilations(); err != nil {
			return err
		} else if len(dils) > 0 {
			cfg.Dilations = dils
		}
		res, err := experiments.Calibrate(cfg)
		if err != nil {
			return err
		}
		render(res)
	case "fig11", "fig11raid":
		cfg := experiments.DefaultFig11Config()
		cfg.Seed = o.seed
		cfg.Workers = o.workers
		if o.users != "" {
			cfg.Users = nil
			for _, f := range strings.Split(o.users, ",") {
				var u int
				if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &u); err != nil {
					return fmt.Errorf("bad user count %q: %v", f, err)
				}
				cfg.Users = append(cfg.Users, u)
			}
		}
		runner := experiments.Fig11
		if id == "fig11raid" {
			runner = experiments.Fig11RAID
		}
		res, err := runner(cfg)
		if err != nil {
			return err
		}
		render(res)
	default:
		return fmt.Errorf("unknown experiment (known: %s, ablations, micro)", strings.Join(experiments.All(), ", "))
	}
	return nil
}
