// Command schedbench regenerates the paper's tables and figures.
//
// Usage:
//
//	schedbench -exp all                # run every experiment
//	schedbench -exp fig5               # one experiment
//	schedbench -exp fig10 -requests 8000 -seed 7
//
// Output is a text table per figure: the shared x-axis followed by one
// column per series, matching the series of the corresponding plot in the
// paper. EXPERIMENTS.md records the expected shapes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sfcsched/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(experiments.All(), ", ")+", ablations, micro, or all")
		seed     = flag.Uint64("seed", 1, "workload seed")
		requests = flag.Int("requests", 0, "override request count (0 = experiment default)")
		users    = flag.String("users", "", "fig11 only: comma-separated user counts")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		workers  = flag.Int("workers", 0, "parallel simulation workers for sweep experiments (0 = GOMAXPROCS); output is identical for any value")
		httpAddr = flag.String("http", "", "serve /metrics (Prometheus), /debug/vars (expvar) and /debug/pprof/ on this address, and stay alive after the experiments finish (e.g. :9090)")
	)
	flag.Parse()

	if *httpAddr != "" {
		ln, err := serveObs(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "schedbench: observability on http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
		defer func() {
			fmt.Fprintf(os.Stderr, "schedbench: experiments done; serving http://%s until interrupted\n", ln.Addr())
			select {}
		}()
	}

	ids := experiments.All()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		if err := run(os.Stdout, strings.TrimSpace(id), *seed, *requests, *users, *asCSV, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "schedbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func run(out io.Writer, id string, seed uint64, requests int, users string, asCSV bool, workers int) error {
	render := func(r *experiments.Result) {
		if asCSV {
			r.RenderCSV(out)
		} else {
			r.Render(out)
		}
	}
	switch id {
	case "table1":
		return experiments.Table1(out)
	case "ablations":
		return experiments.Ablations(out, seed, workers)
	case "micro":
		return runMicro(out)
	case "fig5":
		cfg := experiments.DefaultSFC1Config()
		cfg.Seed = seed
		cfg.Workers = workers
		if requests > 0 {
			cfg.Requests = requests
		}
		res, err := experiments.Fig5(cfg, nil)
		if err != nil {
			return err
		}
		render(res)
	case "fig6":
		cfg := experiments.DefaultSFC1Config()
		cfg.Seed = seed
		if requests > 0 {
			cfg.Requests = requests
		}
		res, err := experiments.Fig6(cfg, nil, 0.05)
		if err != nil {
			return err
		}
		render(res)
	case "fig7":
		cfg := experiments.DefaultSFC1Config()
		cfg.Seed = seed
		if requests > 0 {
			cfg.Requests = requests
		}
		a, b, err := experiments.Fig7(cfg, nil)
		if err != nil {
			return err
		}
		render(a)
		render(b)
	case "fig8":
		cfg := experiments.DefaultSFC2Config()
		cfg.Seed = seed
		if requests > 0 {
			cfg.Requests = requests
		}
		a, b, err := experiments.Fig8(cfg, nil)
		if err != nil {
			return err
		}
		render(a)
		render(b)
	case "fig9":
		cfg := experiments.DefaultSFC2Config()
		cfg.Seed = seed
		cfg.Service = 26_000 // overload so every scheduler must sacrifice
		if requests > 0 {
			cfg.Requests = requests
		}
		rs, err := experiments.Fig9(cfg, 1)
		if err != nil {
			return err
		}
		for _, r := range rs {
			render(r)
		}
	case "fig10":
		cfg := experiments.DefaultSFC3Config()
		cfg.Seed = seed
		if requests > 0 {
			cfg.Requests = requests
		}
		a, b, c, err := experiments.Fig10(cfg, nil)
		if err != nil {
			return err
		}
		render(a)
		render(b)
		render(c)
	case "faultsweep":
		cfg := experiments.DefaultFaultSweepConfig()
		cfg.Seed = seed
		cfg.Workers = workers
		if requests > 0 {
			cfg.Requests = requests
		}
		a, b, err := experiments.FaultSweep(cfg)
		if err != nil {
			return err
		}
		render(a)
		render(b)
	case "divergence":
		cfg := experiments.DefaultDivergenceConfig()
		cfg.Seed = seed
		cfg.Workers = workers
		if requests > 0 {
			cfg.Requests = requests
		}
		a, b, err := experiments.Divergence(cfg)
		if err != nil {
			return err
		}
		render(a)
		render(b)
	case "cluster":
		cfg := experiments.DefaultClusterConfig()
		cfg.Seed = seed
		cfg.Workers = workers
		if requests > 0 {
			cfg.Requests = requests
		}
		a, b, c, err := experiments.Cluster(cfg)
		if err != nil {
			return err
		}
		render(a)
		render(b)
		render(c)
	case "fig11", "fig11raid":
		cfg := experiments.DefaultFig11Config()
		cfg.Seed = seed
		cfg.Workers = workers
		if users != "" {
			cfg.Users = nil
			for _, f := range strings.Split(users, ",") {
				var u int
				if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &u); err != nil {
					return fmt.Errorf("bad user count %q: %v", f, err)
				}
				cfg.Users = append(cfg.Users, u)
			}
		}
		runner := experiments.Fig11
		if id == "fig11raid" {
			runner = experiments.Fig11RAID
		}
		res, err := runner(cfg)
		if err != nil {
			return err
		}
		render(res)
	default:
		return fmt.Errorf("unknown experiment (known: %s, ablations, micro)", strings.Join(experiments.All(), ", "))
	}
	return nil
}
