package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// testOptions returns an options value with the flag defaults, tweaked by
// fn.
func testOptions(fn func(*options)) *options {
	o := &options{exp: "all", seed: 1, dilation: 100, inflight: 1}
	if fn != nil {
		fn(o)
	}
	return o
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table1", testOptions(nil)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3832") {
		t.Errorf("table1 output missing cylinder count:\n%s", buf.String())
	}
}

func TestRunEveryExperimentReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep")
	}
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		var buf bytes.Buffer
		if err := run(&buf, id, testOptions(func(o *options) { o.requests = 600 })); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "== "+id) {
			t.Errorf("%s: output missing header:\n%s", id, buf.String())
		}
	}
	var buf bytes.Buffer
	if err := run(&buf, "fig11", testOptions(func(o *options) {
		o.users = "68,72"
		o.asCSV = true
		o.workers = 2
	})); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# fig11") || !strings.Contains(out, "users,fcfs") {
		t.Errorf("fig11 CSV output wrong:\n%s", out)
	}
}

func TestRunCalibrateReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	var buf bytes.Buffer
	if err := run(&buf, "calibrate", testOptions(func(o *options) {
		o.requests = 120
		o.dilations = "40,80"
		o.asCSV = true
	})); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# calibrate") || !strings.Contains(out, "mape-pct") {
		t.Errorf("calibrate CSV output wrong:\n%s", out)
	}
	if !strings.Contains(out, "\n40,") || !strings.Contains(out, "\n80,") {
		t.Errorf("calibrate output missing sweep rows for -dilations override:\n%s", out)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99", testOptions(nil)); err == nil {
		t.Error("expected error for unknown experiment")
	}
	if err := run(&buf, "fig11", testOptions(func(o *options) { o.users = "abc" })); err == nil {
		t.Error("expected error for malformed user list")
	}
	if err := run(&buf, "calibrate", testOptions(func(o *options) { o.dilations = "10,-2" })); err == nil {
		t.Error("expected error for negative dilation in sweep")
	}
}

func TestRunServeOnePass(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	var buf bytes.Buffer
	o := testOptions(func(o *options) {
		o.serve = true
		o.requests = 60
		o.dilation = 5_000 // compress hard; accuracy is not under test here
	})
	if err := runServe(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "submitted 60 served 60") {
		t.Errorf("serve summary missing counts:\n%s", out)
	}
	if !strings.Contains(out, "1 cycles") {
		t.Errorf("serve summary should report one cycle without -serve-for:\n%s", out)
	}
}

func TestRunServeRepeats(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	var buf bytes.Buffer
	o := testOptions(func(o *options) {
		o.serve = true
		o.requests = 40
		o.dilation = 10_000
		o.serveFor = 300 * time.Millisecond
	})
	if err := runServe(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, " 1 cycles") || strings.Contains(out, " 0 cycles") {
		t.Errorf("serve with -serve-for should complete several cycles:\n%s", out)
	}
	if !strings.Contains(out, "rejected 0 abandoned 0") {
		t.Errorf("drain after feeding should lose nothing:\n%s", out)
	}
}
