package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table1", 1, 0, "", false, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3832") {
		t.Errorf("table1 output missing cylinder count:\n%s", buf.String())
	}
}

func TestRunEveryExperimentReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep")
	}
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		var buf bytes.Buffer
		if err := run(&buf, id, 1, 600, "", false, 0); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "== "+id) {
			t.Errorf("%s: output missing header:\n%s", id, buf.String())
		}
	}
	var buf bytes.Buffer
	if err := run(&buf, "fig11", 1, 0, "68,72", true, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# fig11") || !strings.Contains(out, "users,fcfs") {
		t.Errorf("fig11 CSV output wrong:\n%s", out)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99", 1, 0, "", false, 0); err == nil {
		t.Error("expected error for unknown experiment")
	}
	if err := run(&buf, "fig11", 1, 0, "abc", false, 0); err == nil {
		t.Error("expected error for malformed user list")
	}
}
