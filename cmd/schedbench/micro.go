package main

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"sfcsched/internal/core"
	"sfcsched/internal/sfc"
)

// runMicro reports the measured cost of the scheduler's hot-path building
// blocks: curve index computation (checked, unchecked, table-accelerated),
// the full three-stage value cascade, and a steady-state dispatch cycle.
// Each row is (ns/op, allocs/op) over a fixed iteration count, allocations
// counted from runtime.MemStats.
func runMicro(out io.Writer) error {
	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "micro\tns/op\tallocs/op")

	row := func(name string, iters int, fn func(i int)) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn(i)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		fmt.Fprintf(w, "%s\t%.1f\t%.3f\n",
			name,
			float64(elapsed.Nanoseconds())/float64(iters),
			float64(after.Mallocs-before.Mallocs)/float64(iters))
	}

	const iters = 1_000_000
	var sink uint64

	// Curve index paths: the checked reference, the scratch-carrying fast
	// path, and the LUT the Encapsulator swaps in for small grids.
	hil := sfc.MustNew("hilbert", 3, 8)
	lut := sfc.Accelerate(hil)
	scratch := make([]uint32, hil.ScratchLen())
	p := make(sfc.Point, 3)
	fill := func(i int) {
		p[0], p[1], p[2] = uint32(i)&7, uint32(i>>3)&7, uint32(i>>6)&7
	}
	row("hilbert-3d8.Index", iters, func(i int) { fill(i); sink += hil.Index(p) })
	row("hilbert-3d8.IndexFast", iters, func(i int) { fill(i); sink += hil.IndexFast(p, scratch) })
	row("hilbert-3d8.LUT", iters, func(i int) { fill(i); sink += lut.IndexFast(p, nil) })

	big := sfc.MustNew("hilbert", 12, 16)
	bscratch := make([]uint32, big.ScratchLen())
	bp := make(sfc.Point, 12)
	row("hilbert-12d16.IndexFast", iters/10, func(i int) {
		for d := range bp {
			bp[d] = uint32(i*(d+7)) & 15
		}
		sink += big.IndexFast(bp, bscratch)
	})

	// Full cascade: priorities through SFC1, deadline through SFC2,
	// cylinder through SFC3.
	enc := core.MustEncapsulator(core.EncapsulatorConfig{
		Curve1: sfc.MustNew("hilbert", 3, 8), Levels: 8,
		UseDeadline: true, F: 1, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: 3832,
	})
	r := &core.Request{Priorities: []int{3, 1, 6}, Deadline: 600_000, Cylinder: 1200}
	row("encapsulator.ValueAt", iters, func(i int) {
		sink += enc.ValueAt(r, int64(i), i%3832, uint64(i))
	})

	// Steady-state dispatch cycle over a standing queue of 4096.
	d := core.MustDispatcher(core.DispatcherConfig{
		Mode: core.ConditionallyPreemptive, Window: 1000, SP: true,
	})
	reqs := make([]*core.Request, 64)
	for i := range reqs {
		reqs[i] = &core.Request{ID: uint64(i)}
	}
	val := func(i int) uint64 { return uint64(i*2654435761) % (1 << 20) }
	for i := 0; i < 4096; i++ {
		d.Add(reqs[i%64], val(i))
	}
	row("dispatcher.Add+Next", iters, func(i int) {
		d.Add(reqs[i%64], val(i))
		d.Next()
	})

	_ = sink
	return w.Flush()
}
