package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"sfcsched/internal/experiments"
)

// options collects every schedbench flag so the flag surface can be
// validated (and unit-tested) before any experiment or serving work
// starts — the same pattern as cmd/schedsim.
type options struct {
	exp      string
	seed     uint64
	requests int
	users    string
	asCSV    bool
	workers  int
	httpAddr string

	// Serving layer (PR 9): serve the workload live on the wall clock
	// instead of running experiments, and the calibrate sweep override.
	serve     bool
	dilation  float64
	inflight  int
	serveFor  time.Duration
	dilations string
}

// register binds every option to fs with its default.
func (o *options) register(fs *flag.FlagSet) {
	fs.StringVar(&o.exp, "exp", "all", "experiment id: "+strings.Join(experiments.All(), ", ")+", ablations, micro, or all")
	fs.Uint64Var(&o.seed, "seed", 1, "workload seed")
	fs.IntVar(&o.requests, "requests", 0, "override request count (0 = experiment default)")
	fs.StringVar(&o.users, "users", "", "fig11 only: comma-separated user counts")
	fs.BoolVar(&o.asCSV, "csv", false, "emit CSV instead of aligned tables")
	fs.IntVar(&o.workers, "workers", 0, "parallel simulation workers for sweep experiments (0 = GOMAXPROCS); output is identical for any value")
	fs.StringVar(&o.httpAddr, "http", "", "serve /metrics (Prometheus), /debug/vars (expvar) and /debug/pprof/ on this address, and stay alive after the work finishes (e.g. :9090)")

	fs.BoolVar(&o.serve, "serve", false, "serve the generated workload live through the real-clock dispatcher (emulated disk) instead of running experiments")
	fs.Float64Var(&o.dilation, "dilation", 100, "serve: model seconds covered per wall-clock second")
	fs.IntVar(&o.inflight, "inflight", 1, "serve: concurrent backend services (1 = single-arm semantics)")
	fs.DurationVar(&o.serveFor, "serve-for", 0, "serve: repeat the workload until this wall-clock duration elapses (0 = one pass)")
	fs.StringVar(&o.dilations, "dilations", "", "calibrate experiment: comma-separated dilation-factor sweep override (e.g. 10,50,250)")
}

// validate rejects inconsistent flag combinations with a specific error
// before any work begins.
func (o *options) validate() error {
	if o.requests < 0 {
		return fmt.Errorf("-requests must not be negative, got %d", o.requests)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must not be negative, got %d", o.workers)
	}
	if o.serve && o.exp != "all" {
		return fmt.Errorf("-serve and -exp are mutually exclusive: serving replaces the experiment run")
	}
	if !(o.dilation > 0) {
		return fmt.Errorf("-dilation must be positive, got %v", o.dilation)
	}
	if o.inflight < 1 {
		return fmt.Errorf("-inflight must be at least 1, got %d", o.inflight)
	}
	if o.serveFor < 0 {
		return fmt.Errorf("-serve-for must not be negative, got %v", o.serveFor)
	}
	if o.serveFor > 0 && !o.serve {
		return fmt.Errorf("-serve-for requires -serve")
	}
	if o.dilations != "" {
		if o.serve {
			return fmt.Errorf("-dilations drives the calibrate experiment, not -serve (use -dilation)")
		}
		if _, err := o.parseDilations(); err != nil {
			return err
		}
	}
	return nil
}

// parseDilations parses the -dilations sweep list; empty means "use the
// experiment default".
func (o *options) parseDilations() ([]float64, error) {
	if o.dilations == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(o.dilations, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -dilations entry %q: %v", f, err)
		}
		if !(v > 0) {
			return nil, fmt.Errorf("-dilations entries must be positive, got %v", v)
		}
		out = append(out, v)
	}
	return out, nil
}
