package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sfcsched/internal/core"
)

func TestObsEndpoints(t *testing.T) {
	// Generate some scheduler traffic so /metrics shows non-zero counters.
	s := core.MustScheduler("t", core.EncapsulatorConfig{Levels: 8},
		core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
	for i := 0; i < 5; i++ {
		s.Add(&core.Request{ID: uint64(i), Priorities: []int{i % 8}}, int64(i), 0)
	}
	for s.Next(10, 0) != nil {
	}

	srv := httptest.NewServer(newObsMux())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE sfcsched_adds_total counter",
		"sfcsched_adds_total",
		"# TYPE sfcsched_dispatch_wait_us histogram",
		"sfcsched_dispatch_wait_us_count",
		"# TYPE sfcsched_decision_decisions_total counter",
		"sfcsched_decision_shadow_disagreements_total",
		"sfcsched_decision_candidate_depth_count",
		"# TYPE sfcsched_cluster_arrivals_total counter",
		"sfcsched_cluster_latency_us_count",
		"sfcsched_cluster_node_depth_max",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(body, `"sfcsched"`) {
		t.Errorf("/debug/vars missing sfcsched snapshot:\n%s", body)
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%s", body)
	}
}

func TestServeObsBindsAndServes(t *testing.T) {
	ln, err := serveObs("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics over -http listener: status %d", resp.StatusCode)
	}
}
