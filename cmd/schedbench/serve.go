package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/serve"
	"sfcsched/internal/workload"
)

// runServe lifts the Cascaded-SFC scheduler onto the wall clock: it
// generates the calibrate experiment's open workload and serves it live
// through the real-clock dispatcher against the emulated Quantum disk,
// repeating the trace (with shifted arrivals) until -serve-for elapses.
// All counts flow through serve.DefaultMetrics, so with -http a scrape of
// /metrics shows sfcsched_serve_* advancing while the run is in flight.
func runServe(out io.Writer, o *options) error {
	model, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return err
	}
	count := o.requests
	if count <= 0 {
		count = 2000
	}
	const meanGap = 4_000 // µs; the calibrate experiment's arrival rate
	trace, err := workload.Open{
		Seed:             o.seed,
		Count:            count,
		MeanInterarrival: meanGap,
		Dims:             1,
		Levels:           8,
		DeadlineMin:      400_000,
		DeadlineMax:      700_000,
		Cylinders:        model.Cylinders,
		SizeMin:          4 << 10,
		SizeMax:          128 << 10,
	}.Generate()
	if err != nil {
		return err
	}
	ecfg := core.EncapsulatorConfig{
		Levels:      8,
		UseDeadline: true, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: model.Cylinders,
	}
	sched, err := core.NewShardedScheduler("serve", ecfg, 0)
	if err != nil {
		return err
	}
	clock, err := serve.NewClock(o.dilation)
	if err != nil {
		return err
	}
	backend, err := serve.NewEmulatedDisk(disk.ServiceModel{Disk: model}, clock)
	if err != nil {
		return err
	}
	d, err := serve.New(serve.Config{
		Sched:    sched,
		Backend:  backend,
		Clock:    clock,
		InFlight: o.inflight,
		// The workload is deliberately overloaded (~15 ms mean service
		// against 4 ms arrivals), so an unbounded queue would grow for the
		// whole run and Drain would stall on the backlog. Backpressure
		// throttles the feed instead and bounds the drain tail.
		MaxQueue: 2 * count,
	})
	if err != nil {
		return err
	}

	before := snapshotServe()
	feedCtx := context.Background()
	cancel := context.CancelFunc(func() {})
	if o.serveFor > 0 {
		feedCtx, cancel = context.WithTimeout(feedCtx, o.serveFor)
	}
	defer cancel()

	fmt.Fprintf(out, "serve: %d requests/cycle, dilation %g, in-flight %d", count, o.dilation, o.inflight)
	if o.serveFor > 0 {
		fmt.Fprintf(out, ", repeating for %v wall", o.serveFor)
	}
	fmt.Fprintln(out)

	wallStart := time.Now()
	d.Start(context.Background())
	// One model-time period per pass through the trace; each cycle replays
	// the same access pattern shifted forward so arrivals stay monotonic
	// and IDs stay unique.
	period := trace[len(trace)-1].Arrival + meanGap
	cycles := 0
feed:
	for cycle := 0; ; cycle++ {
		offset := int64(cycle) * period
		for _, r := range trace {
			rr := *r
			rr.ID += uint64(cycle) * uint64(len(trace))
			rr.Arrival += offset
			if rr.Deadline > 0 {
				rr.Deadline += offset
			}
			if err := clock.SleepUntil(feedCtx, rr.Arrival); err != nil {
				break feed
			}
			if err := d.SubmitAt(feedCtx, &rr, rr.Arrival); err != nil {
				break feed
			}
		}
		cycles++
		if o.serveFor == 0 || feedCtx.Err() != nil {
			break
		}
	}
	if err := d.Drain(context.Background()); err != nil {
		return err
	}
	wall := time.Since(wallStart)

	after := snapshotServe()
	fmt.Fprintf(out, "serve: %d cycles, submitted %d served %d dropped %d rejected %d abandoned %d, backpressure waits %d\n",
		cycles,
		after.submitted-before.submitted,
		after.completed-before.completed,
		after.dropped-before.dropped,
		after.rejected-before.rejected,
		after.abandoned-before.abandoned,
		after.backpressure-before.backpressure)
	fmt.Fprintf(out, "serve: %v wall for %v model time, head travel %d cylinders, final head %d\n",
		wall.Round(time.Millisecond), (time.Duration(clock.Now()) * time.Microsecond).Round(time.Millisecond),
		d.HeadTravel(), d.Head())
	return nil
}

// serveCounts is a snapshot of the serve.DefaultMetrics counters, so the
// printed summary reports this run's deltas even when earlier runs in the
// same process already advanced the process-global aggregate.
type serveCounts struct {
	submitted, completed, dropped, rejected, abandoned, backpressure uint64
}

func snapshotServe() serveCounts {
	m := serve.DefaultMetrics
	return serveCounts{
		submitted:    m.Submitted.Load(),
		completed:    m.Completed.Load(),
		dropped:      m.Dropped.Load(),
		rejected:     m.Rejected.Load(),
		abandoned:    m.Abandoned.Load(),
		backpressure: m.BackpressureWaits.Load(),
	}
}
