package main

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// parseBench parses args through a fresh FlagSet, returning the options
// and the combined parse/validate error.
func parseBench(t *testing.T, args ...string) (*options, error) {
	t.Helper()
	fs := flag.NewFlagSet("schedbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var o options
	o.register(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return &o, o.validate()
}

func TestOptionsDefaultsValid(t *testing.T) {
	o, err := parseBench(t)
	if err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
	if o.exp != "all" || o.dilation != 100 || o.inflight != 1 {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestOptionsRejects(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative requests", []string{"-requests", "-5"}, "-requests"},
		{"negative workers", []string{"-workers", "-1"}, "-workers"},
		{"serve with exp", []string{"-serve", "-exp", "fig5"}, "mutually exclusive"},
		{"zero dilation", []string{"-serve", "-dilation", "0"}, "-dilation"},
		{"negative dilation", []string{"-dilation", "-3"}, "-dilation"},
		{"zero inflight", []string{"-inflight", "0"}, "-inflight"},
		{"negative serve-for", []string{"-serve", "-serve-for", "-1s"}, "-serve-for"},
		{"serve-for without serve", []string{"-serve-for", "2s"}, "requires -serve"},
		{"dilations with serve", []string{"-serve", "-dilations", "10,20"}, "-dilations"},
		{"malformed dilations", []string{"-dilations", "10,abc"}, "bad -dilations"},
		{"nonpositive dilations", []string{"-dilations", "10,0"}, "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseBench(t, tc.args...)
			if err == nil {
				t.Fatalf("args %v should be rejected", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestOptionsAccepts(t *testing.T) {
	cases := [][]string{
		{"-exp", "calibrate", "-dilations", " 10 , 50 ,250"},
		{"-serve", "-dilation", "0.5", "-inflight", "4"},
		{"-serve", "-serve-for", "2s", "-http", ":0"},
		{"-exp", "fig5", "-requests", "100", "-workers", "3", "-csv"},
	}
	for _, args := range cases {
		if _, err := parseBench(t, args...); err != nil {
			t.Errorf("args %v should be accepted: %v", args, err)
		}
	}
}

func TestParseDilations(t *testing.T) {
	o, err := parseBench(t, "-dilations", " 10 , 50 ,250")
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.parseDilations()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 50, 250}
	if len(got) != len(want) {
		t.Fatalf("parseDilations = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseDilations = %v, want %v", got, want)
		}
	}
	empty, err := parseBench(t)
	if err != nil {
		t.Fatal(err)
	}
	if dils, err := empty.parseDilations(); err != nil || dils != nil {
		t.Errorf("empty -dilations should parse to nil, got %v, %v", dils, err)
	}
}
