package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"sfcsched/internal/cluster"
	"sfcsched/internal/core"
	"sfcsched/internal/fault"
	"sfcsched/internal/obs"
	"sfcsched/internal/serve"
	"sfcsched/internal/sim"
)

// publishOnce guards the process-global expvar namespace: expvar.Publish
// panics on duplicates, and tests build more than one mux.
var publishOnce sync.Once

// newObsMux builds the observability endpoint: /metrics (Prometheus text
// format over the process-wide core.DefaultMetrics aggregate), /debug/vars
// (expvar, including the same snapshot under "sfcsched"), and the pprof
// suite under /debug/pprof/.
func newObsMux() *http.ServeMux {
	reg := obs.NewRegistry()
	core.DefaultMetrics.MustRegister(reg, "sfcsched")
	fault.DefaultMetrics.MustRegister(reg, "sfcsched_fault")
	sim.DefaultDecisionMetrics.MustRegister(reg, "sfcsched_decision")
	cluster.DefaultMetrics.MustRegister(reg, "sfcsched_cluster")
	serve.DefaultMetrics.MustRegister(reg, "sfcsched_serve")
	serve.DefaultCalibMetrics.MustRegister(reg, "sfcsched_calib")
	publishOnce.Do(func() { reg.PublishExpvar("sfcsched") })

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveObs starts the observability server on addr and returns the bound
// listener (so ":0" is usable). The server runs until the process exits.
func serveObs(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("schedbench: -http listen: %w", err)
	}
	srv := &http.Server{Handler: newObsMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
