// Command sfcviz renders space-filling curves as ASCII art and order
// tables, the runnable counterpart of the paper's Figure 1.
//
// Usage:
//
//	sfcviz                      # draw all seven paper curves on 8x8 grids
//	sfcviz -curve hilbert -side 16
//	sfcviz -curve peano -side 9 -order    # print the visiting order table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sfcsched/internal/sfc"
)

func main() {
	var (
		curve = flag.String("curve", "", "curve name (default: all paper curves)")
		side  = flag.Uint("side", 8, "grid side (rounded up to the curve's natural grid)")
		dims  = flag.Int("dims", 2, "dimensions (stats mode supports > 2)")
		order = flag.Bool("order", false, "print the index of every cell instead of arrows")
		stats = flag.Bool("stats", false, "print irregularity and locality statistics")
	)
	flag.Parse()

	names := sfc.PaperNames()
	if *curve != "" {
		names = []string{*curve}
	}
	if *stats {
		if err := printStats(os.Stdout, names, *dims, uint32(*side)); err != nil {
			fmt.Fprintf(os.Stderr, "sfcviz: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range names {
		c, err := sfc.New(name, 2, uint32(*side))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfcviz: %v\n", err)
			os.Exit(1)
		}
		if *order {
			printOrder(os.Stdout, c)
		} else {
			draw(os.Stdout, c)
		}
	}
}

// printStats tabulates each curve's analysis (the quantities behind the
// paper's Fig. 5 and Fig. 7 results).
func printStats(w io.Writer, names []string, dims int, side uint32) error {
	fmt.Fprintf(w, "%-9s %8s %10s %10s %8s %9s  %s\n",
		"curve", "cells", "pair-inv", "stepback", "jumps", "max-step", "per-dim pair inversions")
	for _, name := range names {
		c, err := sfc.New(name, dims, side)
		if err != nil {
			return err
		}
		inv, ok := c.(sfc.Inverter)
		if !ok || !c.Bijective() {
			fmt.Fprintf(w, "%-9s order-only generalization (no inverse to walk)\n", name)
			continue
		}
		a, err := sfc.Analyze(inv)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "%-9s %8d %10.4f %10d %8d %9d  %v\n",
			name, a.Cells, a.PairInversionRate(), a.TotalIrregularity(),
			a.Jumps, a.MaxStep, a.PairInversionsPerDim)
	}
	return nil
}

// printOrder writes the curve index of each grid cell, row by row with the
// y axis pointing up.
func printOrder(w io.Writer, c sfc.Curve) {
	fmt.Fprintf(w, "%s (%dx%d), cell values are visiting order:\n", c.Name(), c.Side(), c.Side())
	n := c.Side()
	width := len(fmt.Sprintf("%d", c.MaxIndex()-1))
	for y := int(n) - 1; y >= 0; y-- {
		var row []string
		for x := uint32(0); x < n; x++ {
			row = append(row, fmt.Sprintf("%*d", width, c.Index(sfc.Point{x, uint32(y)})))
		}
		fmt.Fprintln(w, "  "+strings.Join(row, " "))
	}
	fmt.Fprintln(w)
}

// draw renders the traversal as direction glyphs along the visiting order.
func draw(w io.Writer, c sfc.Curve) {
	inv, ok := c.(sfc.Inverter)
	if !ok {
		printOrder(w, c)
		return
	}
	fmt.Fprintf(w, "%s (%dx%d):\n", c.Name(), c.Side(), c.Side())
	n := int(c.Side())
	glyphs := make([][]rune, n)
	for i := range glyphs {
		glyphs[i] = []rune(strings.Repeat("·", n))
	}
	var prev sfc.Point
	for idx := uint64(0); idx < c.MaxIndex(); idx++ {
		p := inv.Point(idx, nil)
		g := '●'
		if idx > 0 {
			dx := int(p[0]) - int(prev[0])
			dy := int(p[1]) - int(prev[1])
			switch {
			case dx == 1 && dy == 0:
				g = '→'
			case dx == -1 && dy == 0:
				g = '←'
			case dx == 0 && dy == 1:
				g = '↑'
			case dx == 0 && dy == -1:
				g = '↓'
			default:
				g = '○' // non-adjacent jump landed here
			}
		}
		glyphs[p[1]][p[0]] = g
		prev = p.Clone()
	}
	for y := n - 1; y >= 0; y-- {
		fmt.Fprintln(w, "  "+string(glyphs[y]))
	}
	fmt.Fprintln(w)
}
