package main

import (
	"bytes"
	"strings"
	"testing"

	"sfcsched/internal/sfc"
)

func TestDrawContinuousCurveHasNoJumpGlyphs(t *testing.T) {
	var buf bytes.Buffer
	draw(&buf, sfc.MustNew("hilbert", 2, 8))
	out := buf.String()
	if strings.Contains(out, "○") {
		t.Errorf("continuous curve rendered a jump glyph:\n%s", out)
	}
	if !strings.Contains(out, "●") {
		t.Errorf("start glyph missing:\n%s", out)
	}
	// 8 rows of 8 cells, none left unvisited.
	if strings.Contains(out, "·") {
		t.Errorf("unvisited cells in a space-filling walk:\n%s", out)
	}
}

func TestDrawSweepShowsJumps(t *testing.T) {
	var buf bytes.Buffer
	draw(&buf, sfc.MustNew("sweep", 2, 8))
	if !strings.Contains(buf.String(), "○") {
		t.Error("sweep's line-wrap jumps should render as ○")
	}
}

func TestPrintOrderCoversGrid(t *testing.T) {
	var buf bytes.Buffer
	printOrder(&buf, sfc.MustNew("scan", 2, 4))
	out := buf.String()
	for _, want := range []string{"scan (4x4)", "15", " 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("order table missing %q:\n%s", want, out)
		}
	}
}

func TestPrintStats(t *testing.T) {
	var buf bytes.Buffer
	if err := printStats(&buf, []string{"hilbert", "spiral"}, 3, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hilbert") {
		t.Errorf("stats missing hilbert row:\n%s", out)
	}
	if !strings.Contains(out, "order-only") {
		t.Errorf("3-D spiral should report order-only:\n%s", out)
	}
	if err := printStats(&buf, []string{"nope"}, 2, 8); err == nil {
		t.Error("expected error for unknown curve")
	}
}
