// Package sfcsched is a from-scratch Go implementation of "Scalable
// Multimedia Disk Scheduling" (Mokbel, Aref, Elbassioni, Kamel — ICDE
// 2004).
//
// The Cascaded-SFC scheduler collapses multi-QoS disk requests (several
// priority dimensions, a real-time deadline, a disk cylinder) into one
// scalar through three cascaded space-filling-curve stages, then drains a
// conditionally-preemptive priority queue. The module contains:
//
//   - internal/sfc — the space-filling-curve library (Sweep, Scan, C-Scan,
//     Peano, Gray, Hilbert, Spiral, Diagonal, Z-order) in arbitrary
//     dimensions;
//   - internal/core — the paper's contribution: the three-stage
//     Encapsulator and the SP/ER dispatcher;
//   - internal/disk — the Table 1 Quantum XP32150 model and RAID-5 layout;
//   - internal/sched — thirteen baseline schedulers from the related work;
//   - internal/sim, internal/workload, internal/metrics — the evaluation
//     substrate;
//   - internal/experiments — one runner per paper table and figure;
//   - cmd/schedbench, cmd/schedsim, cmd/sfcviz, cmd/tracegen — tools;
//   - examples/ — four runnable scenarios.
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// design decisions, and EXPERIMENTS.md for paper-vs-measured results. This
// file also anchors the root benchmark suite (bench_test.go), which
// regenerates every figure under `go test -bench=.`.
package sfcsched
