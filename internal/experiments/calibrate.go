package experiments

import (
	"context"
	"fmt"
	"math"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/serve"
	"sfcsched/internal/workload"
)

// CalibrateConfig drives the observe-predict-calibrate experiment of the
// serving layer: one workload served live (emulated disk, dilated wall
// clock) at a sweep of time-dilation factors, each run scored against the
// simulator's prediction of the same trace.
type CalibrateConfig struct {
	Seed uint64
	// Dilations lists the model-seconds-per-wall-second factors to sweep.
	// Low factors sleep close to real time (accurate, slow); high factors
	// compress hard and let timer granularity bleed into the scores —
	// which is exactly the tradeoff the sweep exposes.
	Dilations []float64
	// Requests is the request count per point.
	Requests int
	// MeanInterarrival is the workload's mean arrival gap, µs.
	MeanInterarrival int64
	// Levels is the number of priority levels.
	Levels int
	// DeadlineMin/Max bound the relative deadlines, µs.
	DeadlineMin int64
	DeadlineMax int64
	// InFlight bounds the live dispatcher's concurrent services (0 = 1,
	// the single-arm semantics the simulator models).
	InFlight int
}

// DefaultCalibrateConfig sweeps from near-faithful pacing (2×, where the
// live path tracks the prediction essentially exactly) into aggressive
// compression (1000×, where residual timer error times the dilation factor
// visibly warps the queue) on a moderately overloaded disk (4 ms arrivals
// against ~15 ms services), where queue order dominates and prediction
// quality is actually exercised.
func DefaultCalibrateConfig() CalibrateConfig {
	return CalibrateConfig{
		Seed:             1,
		Dilations:        []float64{2, 25, 200, 1000},
		Requests:         400,
		MeanInterarrival: 4_000,
		Levels:           8,
		DeadlineMin:      400_000,
		DeadlineMax:      700_000,
		InFlight:         1,
	}
}

// Calibrate sweeps the dilation factor and reports, per point, the
// per-request latency MAPE, the dispatch-order Pearson correlation, the
// head-travel delta and the wall cost of the run. Unlike every other
// experiment in this package the numbers are wall-clock measurements:
// re-runs jitter, and the CSV is intentionally excluded from the
// determinism smokes.
func Calibrate(cfg CalibrateConfig) (*Result, error) {
	if len(cfg.Dilations) == 0 {
		cfg.Dilations = DefaultCalibrateConfig().Dilations
	}
	model, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return nil, err
	}
	trace, err := workload.Open{
		Seed:             cfg.Seed,
		Count:            cfg.Requests,
		MeanInterarrival: cfg.MeanInterarrival,
		Dims:             1,
		Levels:           cfg.Levels,
		DeadlineMin:      cfg.DeadlineMin,
		DeadlineMax:      cfg.DeadlineMax,
		Cylinders:        model.Cylinders,
		SizeMin:          4 << 10,
		SizeMax:          128 << 10,
	}.Generate()
	if err != nil {
		return nil, err
	}
	ecfg := core.EncapsulatorConfig{
		Levels:      cfg.Levels,
		UseDeadline: true, DeadlineHorizon: cfg.DeadlineMax, DeadlineSpan: cfg.DeadlineMax, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: model.Cylinders,
	}

	res := &Result{
		ID:     "calibrate",
		Title:  "Simulator vs live serving path across time-dilation factors",
		XLabel: "dilation (model s per wall s)",
		YLabel: "prediction accuracy (per-series units)",
		X:      make([]float64, len(cfg.Dilations)),
		Notes: []string{
			fmt.Sprintf("%d requests, %d µs mean interarrival, in-flight %d; identical trace through sim.Run and the live dispatcher",
				cfg.Requests, cfg.MeanInterarrival, max(1, cfg.InFlight)),
			"mape-pct = per-request latency MAPE; order-r = Pearson on dispatch ranks; travel-delta-pct = 100*(live-sim)/sim head travel",
			"wall-clock measurement: numbers jitter across runs and machines; excluded from the determinism smokes",
		},
	}
	mape := make([]float64, len(cfg.Dilations))
	orderR := make([]float64, len(cfg.Dilations))
	travel := make([]float64, len(cfg.Dilations))
	wallMs := make([]float64, len(cfg.Dilations))
	// Sequential on purpose: concurrent wall-clock runs would contend for
	// cores and distort each other's timing.
	for i, dil := range cfg.Dilations {
		res.X[i] = dil
		cal, err := serve.Calibrate(context.Background(), serve.CalibrationConfig{
			Sched:    ecfg,
			Service:  disk.ServiceModel{Disk: model},
			Dilation: dil,
			InFlight: cfg.InFlight,
		}, trace)
		if err != nil {
			return nil, err
		}
		if cal.Aligned != cal.SimServed || cal.Aligned != cal.LiveServed {
			return nil, fmt.Errorf("experiments: calibrate at dilation %v misaligned: sim %d live %d aligned %d",
				dil, cal.SimServed, cal.LiveServed, cal.Aligned)
		}
		mape[i] = nanToZero(cal.LatencyMAPE)
		orderR[i] = nanToZero(cal.OrderPearson)
		travel[i] = 100 * nanToZero(cal.HeadTravelDelta())
		wallMs[i] = float64(cal.Wall.Microseconds()) / 1e3
	}
	for _, s := range []struct {
		name string
		y    []float64
	}{
		{"mape-pct", mape}, {"order-r", orderR}, {"travel-delta-pct", travel}, {"wall-ms", wallMs},
	} {
		if err := res.AddSeries(s.name, s.y); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// nanToZero maps an undefined score onto 0 for rendering.
func nanToZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}
