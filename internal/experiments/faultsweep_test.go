package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// smallFaultSweep shrinks the default sweep so the shape and determinism
// checks stay fast while still crossing the disk failure and rebuild.
func smallFaultSweep() FaultSweepConfig {
	cfg := DefaultFaultSweepConfig()
	cfg.Requests = 600
	cfg.Rates = []float64{0, 0.02, 0.08}
	cfg.FailAt = 800_000
	cfg.RebuildBlocks = 16
	cfg.RebuildInterval = 2_000
	return cfg
}

func TestFaultSweepShape(t *testing.T) {
	drops, fdrops, err := FaultSweep(smallFaultSweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{drops, fdrops} {
		if len(res.X) != 3 {
			t.Fatalf("%s: x-axis has %d points, want 3", res.Title, len(res.X))
		}
		if len(res.Series) < 3 {
			t.Fatalf("%s: only %d schedulers, want at least 3", res.Title, len(res.Series))
		}
		for _, s := range res.Series {
			if len(s.Y) != len(res.X) {
				t.Fatalf("%s: series %q has %d points, want %d", res.Title, s.Name, len(s.Y), len(res.X))
			}
		}
	}
	// The retry traffic has to cost something: at the top rate at least one
	// scheduler must see fault-attributed drops, and every scheduler must
	// drop at least as much of the workload as it does fault-free.
	anyFaultDrop := false
	last := len(fdrops.X) - 1
	for _, s := range fdrops.Series {
		if s.Y[last] > 0 {
			anyFaultDrop = true
		}
		ds := series(t, drops, s.Name)
		if ds[last] < ds[0] {
			t.Errorf("%s: drop rate fell from %.2f%% to %.2f%% as the fault rate rose",
				s.Name, ds[0], ds[last])
		}
	}
	if !anyFaultDrop {
		t.Error("no scheduler recorded a fault-attributed drop at the top fault rate")
	}
}

func TestFaultSweepDeterministic(t *testing.T) {
	cfg := smallFaultSweep()
	a1, b1, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("fault sweep diverged between identical runs")
	}
}

func TestFaultSweepCSV(t *testing.T) {
	drops, _, err := FaultSweep(smallFaultSweep())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	drops.RenderCSV(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Comment header, column header, one row per fault rate.
	if len(lines) != 2+len(drops.X) {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), 2+len(drops.X), out)
	}
	if !strings.Contains(lines[1], "fault rate") || !strings.Contains(lines[1], "cascaded") {
		t.Errorf("CSV header missing columns: %q", lines[1])
	}
}
