package experiments

import (
	"fmt"

	"sfcsched/internal/cluster"
	"sfcsched/internal/disk"
	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/workload"
)

// ClusterConfig drives the fleet-level experiment: a cluster of identical
// arrays behind every (router, admission) pairing, swept over offered
// load under a skewed multi-tenant workload. The question is the paper's
// scalability story one level up — when tenants are Zipf-skewed across
// the block space, which routing policy keeps the stringent class inside
// its SLO, and what does admission control buy the survivors?
type ClusterConfig struct {
	Seed uint64
	// Interarrivals lists the mean arrival gaps to sweep, µs (the x-axis
	// renders as offered load in req/s across the whole cluster).
	Interarrivals []int64
	// Requests is the request count per point.
	Requests int
	// Nodes and DisksPerNode shape the cluster.
	Nodes        int
	DisksPerNode int
	// Tenants, TenantSkew and Classes shape the workload: Zipf-skewed
	// tenants pinned to block zones, class = tenant mod Classes.
	Tenants    int
	TenantSkew float64
	Classes    int
	// AdmitRate and AdmitBurst parameterize the per-class token bucket
	// (tokens/s and burst size) for the "token" admission series.
	AdmitRate  int64
	AdmitBurst int64
	// Workers bounds the parallel sweep cells (0 = GOMAXPROCS). Results
	// are identical for every worker count; see internal/runner.
	Workers int
}

// DefaultClusterConfig sweeps a 4-node cluster of single-disk arrays from
// comfortable load into saturation. Skew 1.3 over 8 tenants concentrates
// roughly half the traffic on two tenants' zones, which is what separates
// load-blind from load-aware routing.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Seed:          1,
		Interarrivals: []int64{8_000, 5_000, 3_500, 2_500, 2_000},
		Requests:      4000,
		Nodes:         4,
		DisksPerNode:  1,
		Tenants:       8,
		TenantSkew:    1.3,
		Classes:       3,
		AdmitRate:     150,
		AdmitBurst:    30,
	}
}

// clusterPolicies is the full routing × admission cross product swept per
// load point; series are named router+admission.
var clusterPolicies = []struct{ router, admit string }{
	{"rr", "always"},
	{"least", "always"},
	{"affinity", "always"},
	{"rr", "token"},
	{"least", "token"},
	{"affinity", "token"},
}

// Cluster sweeps offered load for every (router, admission) pairing and
// reports three views of the same runs: the stringent class-0 loss rate,
// class-0 mean completion latency of served requests, and the Jain
// fairness index over
// per-tenant goodput. Deterministic: the same config renders the same
// CSV for any worker count.
func Cluster(cfg ClusterConfig) (*Result, *Result, *Result, error) {
	if len(cfg.Interarrivals) == 0 {
		cfg.Interarrivals = DefaultClusterConfig().Interarrivals
	}
	model, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return nil, nil, nil, err
	}

	x := make([]float64, len(cfg.Interarrivals))
	for i, ia := range cfg.Interarrivals {
		x[i] = float64(int64(1_000_000 / ia))
	}
	notes := []string{
		fmt.Sprintf("%d nodes × %d disks, SCAN-EDF members; %d requests per point, %d tenants (zipf %.1f, zoned), %d classes",
			cfg.Nodes, cfg.DisksPerNode, cfg.Requests, cfg.Tenants, cfg.TenantSkew, cfg.Classes),
		fmt.Sprintf("token admission: per-class bucket, %d tokens/s, burst %d; always = no admission control",
			cfg.AdmitRate, cfg.AdmitBurst),
		"class 0 is the most stringent SLO class; loss = admission + dispatch drops over arrivals",
	}
	loss := &Result{
		ID:     "cluster",
		Title:  "Class-0 SLO loss vs offered load, by routing and admission policy",
		XLabel: "load (req/s)",
		YLabel: "class-0 arrivals lost (%)",
		X:      x,
		Notes:  notes,
	}
	lat := &Result{
		ID:     "cluster",
		Title:  "Class-0 mean completion latency vs offered load",
		XLabel: "load (req/s)",
		YLabel: "class-0 mean latency of served requests (ms)",
		X:      x,
	}
	jain := &Result{
		ID:     "cluster",
		Title:  "Jain fairness over per-tenant goodput vs offered load",
		XLabel: "load (req/s)",
		YLabel: "Jain index (1 = perfectly fair)",
		X:      x,
	}

	type cellOut struct{ loss, lat, jain float64 }
	nPol := len(clusterPolicies)
	cells, err := runner.Map(cfg.Workers, len(cfg.Interarrivals)*nPol, func(i int) (cellOut, error) {
		ia, pol := cfg.Interarrivals[i/nPol], clusterPolicies[i%nPol]
		ccfg := cluster.Config{
			Nodes: cfg.Nodes, DisksPerNode: cfg.DisksPerNode, Disk: model,
			NewScheduler: func(int, int) (sched.Scheduler, error) { return sched.NewSCANEDF(50_000), nil },
			DropLate:     true, Seed: cfg.Seed, Classes: cfg.Classes,
		}
		// Routers and buckets are stateful: built fresh per cell so cells
		// share nothing.
		var err error
		if ccfg.Router, err = cluster.NewRouter(pol.router); err != nil {
			return cellOut{}, err
		}
		if ccfg.Admission, err = cluster.NewAdmitter(pol.admit, cfg.Classes, cfg.AdmitRate, cfg.AdmitBurst); err != nil {
			return cellOut{}, err
		}
		var arena workload.Arena
		trace, err := workload.Open{
			Seed: cfg.Seed, Count: cfg.Requests, MeanInterarrival: ia,
			Dims: 1, Levels: 4,
			DeadlineMin: 50_000, DeadlineMax: 800_000,
			Cylinders: ccfg.MaxBlocks(), Size: 64 << 10,
			Tenants: cfg.Tenants, TenantSkew: cfg.TenantSkew,
			Classes: cfg.Classes, TenantZones: true,
		}.GenerateArena(&arena)
		if err != nil {
			return cellOut{}, err
		}
		res, err := cluster.Run(ccfg, trace)
		if err != nil {
			return cellOut{}, err
		}
		c0 := res.PerClass[0]
		out := cellOut{loss: 100 * c0.LossRate(), jain: res.Jain()}
		if c0.Served > 0 {
			out.lat = float64(c0.LatencySum) / float64(c0.Served) / 1000
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	for j, pol := range clusterPolicies {
		name := pol.router + "+" + pol.admit
		ly := make([]float64, len(x))
		py := make([]float64, len(x))
		jy := make([]float64, len(x))
		for i := range x {
			c := cells[i*nPol+j]
			ly[i], py[i], jy[i] = c.loss, c.lat, c.jain
		}
		if err := loss.AddSeries(name, ly); err != nil {
			return nil, nil, nil, err
		}
		if err := lat.AddSeries(name, py); err != nil {
			return nil, nil, nil, err
		}
		if err := jain.AddSeries(name, jy); err != nil {
			return nil, nil, nil, err
		}
	}
	return loss, lat, jain, nil
}
