package experiments

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/stats"
	"sfcsched/internal/workload"
)

// SFC1Config drives the stage-1 experiments (Figs. 5-7): relaxed deadlines
// and transfer-dominated service, so SFC2 and SFC3 are skipped and the
// priority curve is evaluated in isolation (paper §5.1).
type SFC1Config struct {
	Seed     uint64
	Requests int
	Dims     int
	Levels   int
	// MeanInterarrival is the Poisson mean, µs (paper: 25 ms).
	MeanInterarrival int64
	// Service is the constant transfer-dominated service time, µs. The
	// paper holds it implicit; near the interarrival mean keeps a live
	// queue without unbounded growth.
	Service int64
	// Workers bounds the parallel sweep cells (0 = GOMAXPROCS). The
	// results are identical for every worker count; see internal/runner.
	Workers int
}

// DefaultSFC1Config returns the §5.1 parameters.
func DefaultSFC1Config() SFC1Config {
	return SFC1Config{
		Seed:             1,
		Requests:         4000,
		Dims:             4,
		Levels:           16,
		MeanInterarrival: 25_000,
		Service:          24_000,
	}
}

// trace generates the experiment's workload into a (an optional) arena.
func (c SFC1Config) trace(a *workload.Arena) ([]*core.Request, error) {
	return workload.Open{
		Seed:             c.Seed,
		Count:            c.Requests,
		MeanInterarrival: c.MeanInterarrival,
		Dims:             c.Dims,
		Levels:           c.Levels,
	}.GenerateArena(a)
}

// simConfig is the stage-1 simulation configuration for scheduler s.
func (c SFC1Config) simConfig(s sched.Scheduler) sim.Config {
	return sim.Config{
		Scheduler:    s,
		FixedService: c.Service,
		Options:      sim.Options{Dims: c.Dims, Levels: c.Levels, Seed: c.Seed},
	}
}

// run simulates one scheduler over the stage-1 workload. The result is
// freshly allocated and stays valid indefinitely (unlike runReused).
func (c SFC1Config) run(s sched.Scheduler, trace []*core.Request) (*sim.Result, error) {
	return sim.Run(c.simConfig(s), trace)
}

// scheduler builds the Cascaded-SFC scheduler reduced to SFC1 only.
func (c SFC1Config) scheduler(curve string, dims int, windowFrac float64) (*core.Scheduler, error) {
	cv, err := sfc.New(curve, dims, uint32(c.Levels))
	if err != nil {
		return nil, err
	}
	return core.NewScheduler(
		fmt.Sprintf("%s-w%.0f%%", curve, windowFrac*100),
		core.EncapsulatorConfig{Curve1: cv, Levels: c.Levels},
		core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true},
		windowFrac,
	)
}

// Fig5 measures total priority inversion (as % of FIFO) against the
// blocking-window size for each of the paper's seven curves.
func Fig5(cfg SFC1Config, windowsPct []float64) (*Result, error) {
	if len(windowsPct) == 0 {
		windowsPct = []float64{0, 1, 2, 5, 10, 20, 40, 60, 80, 100}
	}
	var arena workload.Arena
	trace, err := cfg.trace(&arena)
	if err != nil {
		return nil, err
	}
	// The FIFO baseline runs first (and un-reused — cells read base while
	// it is retained); the (curve, window) grid then fans out, each cell
	// with its own scheduler and pooled per-run state.
	fifo, err := cfg.run(sched.NewFCFS(), trace)
	if err != nil {
		return nil, err
	}
	base := float64(fifo.TotalInversions())
	res := &Result{
		ID:     "fig5",
		Title:  "Priority inversion vs window size (percent of FIFO)",
		XLabel: "window%",
		YLabel: "total priority inversions, % of FIFO",
		X:      windowsPct,
		Notes: []string{
			fmt.Sprintf("dims=%d levels=%d interarrival=%dus service=%dus requests=%d",
				cfg.Dims, cfg.Levels, cfg.MeanInterarrival, cfg.Service, cfg.Requests),
			fmt.Sprintf("FIFO baseline inversions: %.0f", base),
		},
	}
	curves := sfc.PaperNames()
	nW := len(windowsPct)
	ys, err := runner.Map(cfg.Workers, len(curves)*nW, func(i int) (float64, error) {
		s, err := cfg.scheduler(curves[i/nW], cfg.Dims, windowsPct[i%nW]/100)
		if err != nil {
			return 0, err
		}
		var y float64
		err = runReused(cfg.simConfig(s), trace, func(r *sim.Result) error {
			y = percent(float64(r.TotalInversions()), base)
			return nil
		})
		return y, err
	})
	if err != nil {
		return nil, err
	}
	for j, curve := range curves {
		if err := res.AddSeries(curve, ys[j*nW:(j+1)*nW]); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig6 measures total priority inversion (% of FIFO) as the number of QoS
// dimensions grows — the scalability claim.
func Fig6(cfg SFC1Config, dims []float64, windowFrac float64) (*Result, error) {
	if len(dims) == 0 {
		dims = []float64{1, 2, 3, 4, 6, 8, 10, 12}
	}
	if windowFrac == 0 {
		windowFrac = 0.05
	}
	res := &Result{
		ID:     "fig6",
		Title:  "Scalability: priority inversion vs number of dimensions",
		XLabel: "dims",
		YLabel: "total priority inversions, % of FIFO",
		X:      dims,
		Notes: []string{
			fmt.Sprintf("levels=%d window=%.0f%% interarrival=%dus service=%dus requests=%d",
				cfg.Levels, windowFrac*100, cfg.MeanInterarrival, cfg.Service, cfg.Requests),
		},
	}
	type key struct{ curve string }
	ys := map[key][]float64{}
	var arena workload.Arena
	for _, df := range dims {
		d := int(df)
		dcfg := cfg
		dcfg.Dims = d
		// Each dimension count regenerates into the same arena: every run
		// of the previous point has finished by then.
		trace, err := dcfg.trace(&arena)
		if err != nil {
			return nil, err
		}
		fifo, err := dcfg.run(sched.NewFCFS(), trace)
		if err != nil {
			return nil, err
		}
		base := float64(fifo.TotalInversions())
		for _, curve := range sfc.PaperNames() {
			s, err := dcfg.scheduler(curve, d, windowFrac)
			if err != nil {
				return nil, err
			}
			r, err := dcfg.run(s, trace)
			if err != nil {
				return nil, err
			}
			ys[key{curve}] = append(ys[key{curve}], percent(float64(r.TotalInversions()), base))
		}
	}
	for _, curve := range sfc.PaperNames() {
		if err := res.AddSeries(curve, ys[key{curve}]); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig7 measures fairness: (a) the standard deviation of the per-dimension
// inversion percentages and (b) the most favored dimension's inversion
// percentage, both against window size. The two sub-figures are returned
// separately.
func Fig7(cfg SFC1Config, windowsPct []float64) (a, b *Result, err error) {
	if len(windowsPct) == 0 {
		windowsPct = []float64{0, 1, 2, 5, 10, 20, 40, 60, 80, 100}
	}
	var arena workload.Arena
	trace, err := cfg.trace(&arena)
	if err != nil {
		return nil, nil, err
	}
	fifo, err := cfg.run(sched.NewFCFS(), trace)
	if err != nil {
		return nil, nil, err
	}
	note := fmt.Sprintf("dims=%d levels=%d interarrival=%dus service=%dus requests=%d",
		cfg.Dims, cfg.Levels, cfg.MeanInterarrival, cfg.Service, cfg.Requests)
	a = &Result{
		ID: "fig7a", Title: "Fairness: stddev of per-dimension inversion (% of FIFO)",
		XLabel: "window%", YLabel: "stddev of per-dimension inversion percentages",
		X: windowsPct, Notes: []string{note},
	}
	b = &Result{
		ID: "fig7b", Title: "Favored dimension: lowest per-dimension inversion (% of FIFO)",
		XLabel: "window%", YLabel: "favored dimension inversion percentage",
		X: windowsPct, Notes: []string{note},
	}
	for _, curve := range sfc.PaperNames() {
		sds := make([]float64, len(windowsPct))
		favs := make([]float64, len(windowsPct))
		for i, wp := range windowsPct {
			s, err := cfg.scheduler(curve, cfg.Dims, wp/100)
			if err != nil {
				return nil, nil, err
			}
			r, err := cfg.run(s, trace)
			if err != nil {
				return nil, nil, err
			}
			pcts := make([]float64, cfg.Dims)
			fav := -1.0
			for k := 0; k < cfg.Dims; k++ {
				pcts[k] = percent(float64(r.InversionsPerDim[k]), float64(fifo.InversionsPerDim[k]))
				if fav < 0 || pcts[k] < fav {
					fav = pcts[k]
				}
			}
			sds[i] = stddev(pcts)
			favs[i] = fav
		}
		if err := a.AddSeries(curve, sds); err != nil {
			return nil, nil, err
		}
		if err := b.AddSeries(curve, favs); err != nil {
			return nil, nil, err
		}
	}
	return a, b, nil
}

func stddev(vs []float64) float64 {
	_, sd := stats.MeanStdDev(vs)
	return sd
}
