package experiments

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/fault"
	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// FaultSweepConfig drives the PR-5 robustness experiment: the RAID-5
// array rides through a mid-run disk failure (with rebuild) while the
// transient-fault rate sweeps, comparing how each scheduler's drop rate
// degrades. Every run is deterministic: the same config replays the same
// failure, the same retries, and the same CSV.
type FaultSweepConfig struct {
	Seed uint64
	// Rates lists the transient fault rates to sweep (x-axis).
	Rates []float64
	// Requests is the logical request count per point.
	Requests int
	// MeanInterarrival is the mean logical arrival gap, µs.
	MeanInterarrival int64
	// Levels is the number of priority levels.
	Levels int
	// DeadlineMin/Max bound the relative deadlines, µs.
	DeadlineMin int64
	DeadlineMax int64
	// WriteFrac is the fraction of logical writes (read-modify-write).
	WriteFrac float64
	// Array geometry.
	Disks     int
	BlockSize int64
	// Retry policy for transient faults.
	MaxRetries int
	RetryBase  int64
	// Whole-disk failure armed at every point: FailDisk dies at FailAt and
	// rebuild streams RebuildBlocks stripes through the foreground
	// schedulers, RebuildInterval apart.
	FailDisk        int
	FailAt          int64
	Rebuild         bool
	RebuildBlocks   int
	RebuildInterval int64
	// Workers bounds the parallel sweep cells (0 = GOMAXPROCS). The
	// results are identical for every worker count; see internal/runner.
	Workers int
}

// DefaultFaultSweepConfig returns a sweep that crosses the array's
// tolerance band: at rate 0 the failure alone is nearly free, at 2% the
// retry traffic visibly eats into deadline slack.
func DefaultFaultSweepConfig() FaultSweepConfig {
	return FaultSweepConfig{
		Seed:             1,
		Rates:            []float64{0, 0.005, 0.01, 0.02},
		Requests:         4000,
		MeanInterarrival: 9_000,
		Levels:           8,
		DeadlineMin:      400_000,
		DeadlineMax:      800_000,
		WriteFrac:        0.2,
		Disks:            5,
		BlockSize:        64 << 10,
		MaxRetries:       3,
		RetryBase:        5_000,
		FailDisk:         2,
		FailAt:           4_000_000,
		Rebuild:          true,
		RebuildBlocks:    128,
		RebuildInterval:  4_000,
	}
}

// faultSweepAlgorithms builds the compared schedulers: the cascaded SFC
// scheduler over the (deadline, priority) plane plus three baselines.
func faultSweepAlgorithms(levels int, horizon int64) (map[string]func() (sched.Scheduler, error), []string) {
	names := []string{"cascaded", "scan-edf", "edf", "cscan"}
	return map[string]func() (sched.Scheduler, error){
		"cascaded": func() (sched.Scheduler, error) {
			cv, err := sfc.New("hilbert", 2, uint32(levels))
			if err != nil {
				return nil, err
			}
			return core.NewScheduler("cascaded",
				core.EncapsulatorConfig{
					Levels:      levels,
					UseDeadline: true, Curve2: cv,
					DeadlineHorizon: horizon, DeadlineSlack: true,
				},
				core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true}, 0.02)
		},
		"scan-edf": func() (sched.Scheduler, error) { return sched.NewSCANEDF(50_000), nil },
		"edf":      func() (sched.Scheduler, error) { return sched.NewEDF(), nil },
		"cscan":    func() (sched.Scheduler, error) { return sched.NewCSCAN(), nil },
	}, names
}

// FaultSweep sweeps the transient-fault rate over the degraded RAID-5
// array. It returns two results on the same x-axis: the logical drop rate
// (percent of requests lost to deadlines or exhausted retries) and the
// fault-attributed share of the physical drops (retry exhaustion and
// deadline expiry during backoff, excluding pure load drops).
func FaultSweep(cfg FaultSweepConfig) (*Result, *Result, error) {
	if len(cfg.Rates) == 0 {
		cfg.Rates = DefaultFaultSweepConfig().Rates
	}
	model, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return nil, nil, err
	}
	array, err := disk.NewRAID5(cfg.Disks, cfg.BlockSize, model)
	if err != nil {
		return nil, nil, err
	}
	algs, names := faultSweepAlgorithms(cfg.Levels, cfg.DeadlineMax)

	failNote := "no disk failure armed"
	if cfg.FailAt > 0 {
		failNote = fmt.Sprintf("disk %d fails at t=%dms; rebuild=%v (%d blocks, %dms apart)",
			cfg.FailDisk, cfg.FailAt/1000, cfg.Rebuild, cfg.RebuildBlocks, cfg.RebuildInterval/1000)
	}
	notes := []string{
		fmt.Sprintf("array: %d disks RAID-5, block %d KB; %d requests, interarrival %dms, deadlines [%d,%d]ms, writes %.0f%%",
			array.Disks, cfg.BlockSize>>10, cfg.Requests, cfg.MeanInterarrival/1000,
			cfg.DeadlineMin/1000, cfg.DeadlineMax/1000, cfg.WriteFrac*100),
		fmt.Sprintf("retry policy: %d attempts, backoff %dms doubling; %s", cfg.MaxRetries, cfg.RetryBase/1000, failNote),
	}
	drops := &Result{
		ID:     "faultsweep",
		Title:  "Logical drop rate vs transient fault rate on the degraded RAID-5 array",
		XLabel: "fault rate",
		YLabel: "requests dropped (%)",
		X:      append([]float64(nil), cfg.Rates...),
		Notes:  notes,
	}
	faultShare := &Result{
		ID:     "faultsweep",
		Title:  "Fault-attributed physical drops vs transient fault rate",
		XLabel: "fault rate",
		YLabel: "physical ops dropped by retry exhaustion or backoff expiry",
		X:      append([]float64(nil), cfg.Rates...),
	}

	var arena workload.Arena
	trace, err := workload.Open{
		Seed:             cfg.Seed,
		Count:            cfg.Requests,
		MeanInterarrival: cfg.MeanInterarrival,
		Dims:             1,
		Levels:           cfg.Levels,
		DeadlineMin:      cfg.DeadlineMin,
		DeadlineMax:      cfg.DeadlineMax,
		Cylinders:        int(array.MaxBlocks()),
		SizeMin:          cfg.BlockSize,
		SizeMax:          cfg.BlockSize,
		WriteFrac:        cfg.WriteFrac,
	}.GenerateArena(&arena)
	if err != nil {
		return nil, nil, err
	}

	plans := make([]*fault.Plan, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		plan := &fault.Plan{
			Seed:          cfg.Seed,
			TransientRate: rate,
			MaxRetries:    cfg.MaxRetries,
			RetryBase:     cfg.RetryBase,
		}
		if cfg.FailAt > 0 {
			plan.FailDisk = cfg.FailDisk
			plan.FailAt = cfg.FailAt
			plan.Rebuild = cfg.Rebuild
			plan.RebuildBlocks = cfg.RebuildBlocks
			plan.RebuildInterval = cfg.RebuildInterval
		}
		plans[i] = plan
	}

	// One cell per (rate, scheduler), rate-major like the sequential loop
	// this replaces. Cells share only read-only inputs (trace, array,
	// plans); each RunArray builds its own schedulers and collectors.
	type cellOut struct{ drop, faultShare float64 }
	nAlg := len(names)
	cells, err := runner.Map(cfg.Workers, len(cfg.Rates)*nAlg, func(i int) (cellOut, error) {
		name := names[i%nAlg]
		ar, err := sim.RunArray(sim.ArrayConfig{
			Array: array,
			NewScheduler: func(int) (sched.Scheduler, error) {
				return algs[name]()
			},
			Options: sim.Options{
				DropLate: true, Dims: 1, Levels: cfg.Levels,
				Seed: cfg.Seed, Fault: plans[i/nAlg],
			},
		}, trace)
		if err != nil {
			return cellOut{}, err
		}
		total := ar.Logical.Served + ar.Logical.Dropped
		var fdrop uint64
		for _, c := range ar.PerDisk {
			fdrop += c.FaultDropped
		}
		return cellOut{
			drop:       percent(float64(ar.Logical.Dropped), float64(total)),
			faultShare: float64(fdrop),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	dropYs := map[string][]float64{}
	faultYs := map[string][]float64{}
	for i, c := range cells {
		name := names[i%nAlg]
		dropYs[name] = append(dropYs[name], c.drop)
		faultYs[name] = append(faultYs[name], c.faultShare)
	}
	for _, name := range names {
		if err := drops.AddSeries(name, dropYs[name]); err != nil {
			return nil, nil, err
		}
		if err := faultShare.AddSeries(name, faultYs[name]); err != nil {
			return nil, nil, err
		}
	}
	return drops, faultShare, nil
}
