package experiments

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/metrics"
	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// Fig11RAID is the §6 experiment on the full PanaViss storage stack: the
// 4-data + 1-parity RAID-5 array of Table 1 with true 1.5 Mbps MPEG-1
// streams. Logical blocks stripe across the array, recording streams pay
// the read-modify-write penalty, and each disk runs its own scheduler
// instance. Unlike Fig11 (single disk, scaled bit rate), no workload
// substitution is needed: 68-91 users at 1.5 Mbps span the array's
// capacity band naturally.
func Fig11RAID(cfg Fig11Config) (*Result, error) {
	if len(cfg.Users) == 0 {
		cfg.Users = DefaultFig11Config().Users
	}
	model, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return nil, err
	}
	array, err := disk.NewRAID5(5, cfg.BlockSize, model)
	if err != nil {
		return nil, err
	}
	algs, names := fig11Algorithms(cfg, cfg.DeadlineMax)
	weights := metrics.LinearWeights(cfg.Levels, cfg.CostRatio)

	xs := make([]float64, len(cfg.Users))
	for i, u := range cfg.Users {
		xs[i] = float64(u)
	}
	res := &Result{
		ID:     "fig11raid",
		Title:  "Aggregate weighted losses vs users on the RAID-5 array (true 1.5 Mbps)",
		XLabel: "users",
		YLabel: fmt.Sprintf("weighted loss cost (top:bottom weight %g:1)", cfg.CostRatio),
		X:      xs,
		Notes: []string{
			fmt.Sprintf("array: %d disks RAID-5, block %d KB; bitrate=1500kbps levels=%d deadlines=[%d,%d]ms writes=%.0f%% duration=%ds",
				array.Disks, cfg.BlockSize>>10, cfg.Levels,
				cfg.DeadlineMin/1000, cfg.DeadlineMax/1000, cfg.WriteFrac*100, cfg.Duration/1_000_000),
			"logical writes pay the read-modify-write penalty (4 physical ops on 2 disks)",
		},
	}
	blockSpace := int(array.MaxBlocks() / 4)
	// Traces are generated up front (into per-point arenas kept alive
	// below), then shared read-only by every cell of their sweep point.
	arenas := make([]workload.Arena, len(cfg.Users))
	traces := make([][]*core.Request, len(cfg.Users))
	for i, users := range cfg.Users {
		traces[i], err = workload.Streams{
			Seed:        cfg.Seed,
			Users:       users,
			Duration:    cfg.Duration,
			BitRate:     1_500_000, // the paper's MPEG-1 rate, unscaled
			BlockSize:   cfg.BlockSize,
			Levels:      cfg.Levels,
			DeadlineMin: cfg.DeadlineMin,
			DeadlineMax: cfg.DeadlineMax,
			Cylinders:   blockSpace, // logical block address space
			WriteFrac:   cfg.WriteFrac,
			Burst:       3,
		}.GenerateArena(&arenas[i])
		if err != nil {
			return nil, err
		}
	}
	// One cell per (users, scheduler), users-major like the sequential
	// loop this replaces.
	nAlg := len(names)
	costs, err := runner.Map(cfg.Workers, len(cfg.Users)*nAlg, func(i int) (float64, error) {
		name := names[i%nAlg]
		ar, err := sim.RunArray(sim.ArrayConfig{
			Array: array,
			NewScheduler: func(int) (sched.Scheduler, error) {
				return algs[name]()
			},
			Options: sim.Options{DropLate: true, Dims: 1, Levels: cfg.Levels, Seed: cfg.Seed},
		}, traces[i/nAlg])
		if err != nil {
			return 0, err
		}
		return ar.Logical.WeightedLossCost(0, weights)
	})
	if err != nil {
		return nil, err
	}
	for j, name := range names {
		ys := make([]float64, len(cfg.Users))
		for u := range cfg.Users {
			ys[u] = costs[u*nAlg+j]
		}
		if err := res.AddSeries(name, ys); err != nil {
			return nil, err
		}
	}
	return res, nil
}
