package experiments

import (
	"fmt"
	"io"

	"sfcsched/internal/disk"
)

// Table1 renders the disk model against the paper's Table 1, including the
// quantities derived by the calibration (mean seek, capacity, media rate)
// so a reader can confirm the model honours the published figures.
func Table1(w io.Writer) error {
	p := disk.QuantumXP32150Params()
	m, err := disk.NewModel(p)
	if err != nil {
		return err
	}
	r5, err := disk.NewRAID5(5, 64<<10, m)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== table1: Disk Model (Quantum XP32150, PanaViss server) ==")
	rows := [][]string{
		{"parameter", "paper", "model"},
		{"No. of Cylinders", "3832", fmt.Sprintf("%d", m.Cylinders)},
		{"Tracks/Cylinder", "10", fmt.Sprintf("%d", m.TracksPer)},
		{"No. of Zones", "16", fmt.Sprintf("%d", len(m.Zones))},
		{"Sector Size", "512", fmt.Sprintf("%d", m.SectorSize)},
		{"Rotation Speed", "7200 RPM", fmt.Sprintf("%d RPM", m.RPM)},
		{"Average Seek", "8.5 ms", fmt.Sprintf("%.2f ms (calibrated)", m.MeanSeek()/1000)},
		{"Max Seek", "18 ms", fmt.Sprintf("%.1f ms", float64(m.SeekTime(0, m.Cylinders-1))/1000)},
		{"Disk Size", "2.1 GB", fmt.Sprintf("%.2f GB", float64(m.Capacity())/1e9)},
		{"File Block Size", "64 KB", fmt.Sprintf("%d KB", r5.BlockSize>>10)},
		{"Transfer Speed", "~MB/s", fmt.Sprintf("%.2f MB/s avg media rate", m.AvgTransferRate()/1e6)},
		{"Disks / RAID 5", "4 data + 1 parity", fmt.Sprintf("%d data + 1 parity", r5.DataDisks())},
	}
	writeAligned(w, rows)
	fmt.Fprintln(w, "   note: seek curve seek(d) = min + (max-min)*(d/Dmax)^gamma, gamma")
	fmt.Fprintln(w, "   note: calibrated so the uniform-pair mean seek equals the paper's 8.5 ms")
	fmt.Fprintln(w)
	return nil
}
