package experiments

import (
	"sync"

	"sfcsched/internal/core"
	"sfcsched/internal/sim"
)

// reusePool hands sweep cells recycled per-run simulator state (event
// heap, collector, RNG — see sim.Reuse). Pooling instead of one Reuse per
// cell keeps the working set at one Reuse per live worker while letting
// any cell run on any worker.
var reusePool = sync.Pool{New: func() any { return new(sim.Reuse) }}

// runReused runs cfg over trace through a pooled sim.Reuse and hands the
// result to extract. The result is only valid inside extract: once
// runReused returns, the Reuse is back in the pool and another cell may
// reset the collector the result points at — extract must copy out every
// scalar the caller needs.
func runReused(cfg sim.Config, trace []*core.Request, extract func(*sim.Result) error) error {
	ru := reusePool.Get().(*sim.Reuse)
	cfg.Reuse = ru
	res, err := sim.Run(cfg, trace)
	if err == nil {
		err = extract(res)
	}
	reusePool.Put(ru)
	return err
}
