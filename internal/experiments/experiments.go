// Package experiments reproduces every table and figure of the paper's
// evaluation (§5 Performance Analysis, §6 Practical Considerations):
//
//	Table 1  — disk model parameters           (Table1)
//	Fig. 5   — priority inversion vs window    (Fig5)
//	Fig. 6   — scalability vs dimensionality   (Fig6)
//	Fig. 7   — fairness across dimensions      (Fig7)
//	Fig. 8   — deadline/priority balance (f)   (Fig8)
//	Fig. 9   — selectivity of deadline misses  (Fig9)
//	Fig. 10  — seek optimization (R)           (Fig10)
//	Fig. 11  — §6 aggregate weighted losses    (Fig11)
//
// Each experiment returns a Result holding labeled series that the
// cmd/schedbench tool renders as text tables. Absolute values differ from
// the paper (different hardware era, simulated substrate); the claims under
// test are the *shapes*: who wins, by what rough factor, and where the
// crossovers sit. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Series is one labeled line of an experiment plot.
type Series struct {
	Name string
	Y    []float64
}

// Result is a rendered experiment: a shared X axis and one or more series.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// Notes documents parameter substitutions and measurement caveats.
	Notes []string
}

// AddSeries appends a series, enforcing length consistency with X.
func (r *Result) AddSeries(name string, y []float64) error {
	if len(y) != len(r.X) {
		return fmt.Errorf("experiments: series %q has %d points, x-axis has %d", name, len(y), len(r.X))
	}
	r.Series = append(r.Series, Series{Name: name, Y: y})
	return nil
}

// RenderCSV writes the result as a CSV table: a comment header line with
// the experiment id and title, then the x column followed by one column
// per series.
func (r *Result) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", r.ID, r.Title)
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	fmt.Fprintln(w, strings.Join(header, ","))
	for i := range r.X {
		row := []string{formatNum(r.X[i])}
		for _, s := range r.Series {
			row = append(row, formatNum(s.Y[i]))
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
	fmt.Fprintln(w)
}

// Render writes the result as an aligned text table.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if r.YLabel != "" {
		fmt.Fprintf(w, "   y: %s\n", r.YLabel)
	}
	header := make([]string, 0, len(r.Series)+1)
	header = append(header, r.XLabel)
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for i := range r.X {
		row := []string{formatNum(r.X[i])}
		for _, s := range r.Series {
			row = append(row, formatNum(s.Y[i]))
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// formatNum renders a float compactly.
func formatNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e9 && v > -1e9:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// writeAligned prints rows as space-padded columns.
func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		b.WriteString("   ")
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			b.WriteString(cell)
		}
		fmt.Fprintln(w, b.String())
	}
}

// percent returns 100*num/den, or 0 when den is zero.
func percent(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * num / den
}

// ratio returns num/den, or 0 when den is zero.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// All lists the experiment IDs in paper order. fig11raid is the §6
// experiment on the full RAID-5 array at the paper's unscaled bit rate;
// faultsweep is the PR-5 robustness sweep over transient fault rates on
// the degraded array; divergence is the PR-7 counterfactual
// shadow-scheduler sweep; calibrate is the PR-9 sim-vs-live serving-path
// scoring sweep (wall-clock measurement — the one non-deterministic CSV).
func All() []string {
	return []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig11raid", "faultsweep", "divergence", "cluster", "replaydiff", "calibrate"}
}
