package experiments

import (
	"bytes"
	"testing"
)

// The parallel sweep runner must be invisible in the output: every
// experiment's rendered CSV — the exact bytes golden tests and downstream
// plots consume — must be identical for any worker count. Running these
// under -race (the CI race job covers ./internal/...) also checks the
// cells' share-nothing premise.

func faultSweepCSV(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := smallFaultSweep()
	cfg.Workers = workers
	drops, fdrops, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	drops.RenderCSV(&buf)
	fdrops.RenderCSV(&buf)
	return buf.Bytes()
}

func TestFaultSweepIdenticalAcrossWorkers(t *testing.T) {
	want := faultSweepCSV(t, 1)
	for _, w := range []int{2, 8} {
		if got := faultSweepCSV(t, w); !bytes.Equal(got, want) {
			t.Errorf("fault sweep CSV diverges at workers=%d:\nworkers=1:\n%s\nworkers=%d:\n%s",
				w, want, w, got)
		}
	}
}

func fig11RaidCSV(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := DefaultFig11Config()
	cfg.Users = []int{68, 76, 84}
	cfg.Duration = 8_000_000
	cfg.Workers = workers
	res, err := Fig11RAID(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.RenderCSV(&buf)
	return buf.Bytes()
}

func TestFig11RAIDIdenticalAcrossWorkers(t *testing.T) {
	want := fig11RaidCSV(t, 1)
	for _, w := range []int{2, 8} {
		if got := fig11RaidCSV(t, w); !bytes.Equal(got, want) {
			t.Errorf("fig11raid CSV diverges at workers=%d:\nworkers=1:\n%s\nworkers=%d:\n%s",
				w, want, w, got)
		}
	}
}
