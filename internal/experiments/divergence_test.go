package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// smallDivergence shrinks the default sweep for fast shape and
// determinism checks.
func smallDivergence() DivergenceConfig {
	cfg := DefaultDivergenceConfig()
	cfg.Requests = 500
	cfg.Interarrivals = []int64{24_000, 12_000, 7_000}
	return cfg
}

func TestDivergenceShape(t *testing.T) {
	disagree, travel, err := Divergence(smallDivergence())
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{disagree, travel} {
		if len(res.X) != 3 {
			t.Fatalf("%s: x-axis has %d points, want 3", res.Title, len(res.X))
		}
		if len(res.Series) != 3 {
			t.Fatalf("%s: %d shadow series, want 3", res.Title, len(res.Series))
		}
		for _, s := range res.Series {
			if len(s.Y) != len(res.X) {
				t.Fatalf("%s: series %q has %d points, want %d", res.Title, s.Name, len(s.Y), len(res.X))
			}
		}
	}
	// The load axis must render as offered rate, increasing.
	for i := 1; i < len(disagree.X); i++ {
		if disagree.X[i] <= disagree.X[i-1] {
			t.Fatalf("load axis not increasing: %v", disagree.X)
		}
	}
	// Genuinely different policies must disagree under load; rates live in
	// [0, 100].
	last := len(disagree.X) - 1
	for _, name := range []string{"scan-edf", "fcfs"} {
		ys := series(t, disagree, name)
		if ys[last] <= 0 {
			t.Errorf("%s never disagreed with the primary at top load", name)
		}
		for i, y := range ys {
			if y < 0 || y > 100 {
				t.Errorf("%s: disagreement %v%% at point %d outside [0,100]", name, y, i)
			}
		}
	}
}

func TestDivergenceDeterministic(t *testing.T) {
	cfg := smallDivergence()
	a1, b1, err := Divergence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := Divergence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("divergence sweep diverged between identical runs")
	}
}

func divergenceCSV(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := smallDivergence()
	cfg.Workers = workers
	disagree, travel, err := Divergence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	disagree.RenderCSV(&buf)
	travel.RenderCSV(&buf)
	return buf.Bytes()
}

func TestDivergenceIdenticalAcrossWorkers(t *testing.T) {
	want := divergenceCSV(t, 1)
	for _, w := range []int{2, 8} {
		if got := divergenceCSV(t, w); !bytes.Equal(got, want) {
			t.Errorf("divergence CSV diverges at workers=%d:\nworkers=1:\n%s\nworkers=%d:\n%s",
				w, want, w, got)
		}
	}
}
