package experiments

import (
	"bytes"
	"testing"
)

func smallReplayDiff() ReplayDiffConfig {
	cfg := DefaultReplayDiffConfig()
	cfg.Requests = 600
	return cfg
}

// The headline regression guarantee: every scenario × scheduler replays
// byte-identically on the same build, so the divergence result is all
// zeros.
func TestReplayDiffIsZeroDivergence(t *testing.T) {
	drops, diverged, err := ReplayDiff(smallReplayDiff())
	if err != nil {
		t.Fatal(err)
	}
	if len(drops.X) != 4 || len(diverged.Series) != 3 {
		t.Fatalf("unexpected shape: %d scenarios, %d scheduler series", len(drops.X), len(diverged.Series))
	}
	for _, s := range diverged.Series {
		for i, v := range s.Y {
			if v != 0 {
				t.Errorf("scheduler %s diverged on scenario %d", s.Name, i)
			}
		}
	}
	// The scenarios must actually stress the schedulers differently: the
	// flash crowd and diurnal peaks drop more than steady state.
	for _, s := range drops.Series {
		if s.Y[1] <= s.Y[0] {
			t.Errorf("scheduler %s: flash scenario dropped %.2f%%, steady %.2f%% — flash should be worse",
				s.Name, s.Y[1], s.Y[0])
		}
	}
}

func TestReplayDiffUnknownScenario(t *testing.T) {
	cfg := smallReplayDiff()
	cfg.Scenarios = []string{"bogus"}
	if _, _, err := ReplayDiff(cfg); err == nil {
		t.Error("unknown scenario did not error")
	}
}

func replayDiffCSV(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := smallReplayDiff()
	cfg.Workers = workers
	drops, diverged, err := ReplayDiff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	drops.RenderCSV(&buf)
	diverged.RenderCSV(&buf)
	return buf.Bytes()
}

func TestReplayDiffIdenticalAcrossWorkers(t *testing.T) {
	want := replayDiffCSV(t, 1)
	for _, w := range []int{2, 8} {
		if got := replayDiffCSV(t, w); !bytes.Equal(got, want) {
			t.Errorf("replaydiff CSV diverges at workers=%d:\nworkers=1:\n%s\nworkers=%d:\n%s",
				w, want, w, got)
		}
	}
}
