package experiments

import (
	"fmt"
	"io"
	"math"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// Ablations runs the design-choice experiments DESIGN.md §6 calls out and
// prints one table per ablation. These are the same comparisons as the
// Ablation* benchmarks, packaged for the CLI.
func Ablations(w io.Writer, seed uint64) error {
	if err := ablationDeadlineMode(w, seed); err != nil {
		return err
	}
	if err := ablationSP(w, seed); err != nil {
		return err
	}
	if err := ablationER(w); err != nil {
		return err
	}
	if err := ablationWindow(w, seed); err != nil {
		return err
	}
	return ablationCascadeVsSingle(w, seed)
}

// ablationCascadeVsSingle compares the three-stage cascade against the
// predecessor single-curve design (the paper's reference [2]): one
// Hilbert curve over (priorities, deadline, cylinder) as equal axes.
func ablationCascadeVsSingle(w io.Writer, seed uint64) error {
	m, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return err
	}
	trace, err := workload.Open{
		Seed: seed, Count: 5000, MeanInterarrival: 13_000,
		Dims: 2, Levels: 8, DeadlineMin: 500_000, DeadlineMax: 700_000,
		Cylinders: m.Cylinders, SizeMin: 4 << 10, SizeMax: 256 << 10,
	}.Generate()
	if err != nil {
		return err
	}
	horizon := 2*int64(5000)*13_000 + 700_000
	cv, err := sfc.New("hilbert", 2, 8)
	if err != nil {
		return err
	}
	cascaded, err := core.NewScheduler("cascaded", core.EncapsulatorConfig{
		Curve1: cv, Levels: 8,
		UseDeadline: true, F: 1, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: m.Cylinders,
	}, core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
	if err != nil {
		return err
	}
	single, err := core.NewSingleStageScheduler("single-hilbert", "hilbert", 2, 8,
		horizon, m.Cylinders, core.DispatcherConfig{Mode: core.FullyPreemptive})
	if err != nil {
		return err
	}
	rows := [][]string{{"design", "deadline misses", "inversions", "seek (s)"}}
	for _, s := range []sched.Scheduler{cascaded, single} {
		res, err := sim.Run(sim.Config{
			Disk: m, Scheduler: s,
			Options: sim.Options{DropLate: true, Dims: 2, Levels: 8, Seed: seed},
		}, trace)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			s.Name(),
			fmt.Sprintf("%d", res.TotalMisses()),
			fmt.Sprintf("%d", res.TotalInversions()),
			fmt.Sprintf("%.1f", float64(res.SeekTime)/1e6),
		})
	}
	fmt.Fprintln(w, "== ablation: three-stage cascade vs single (D+2)-dim curve [ref 2] ==")
	writeAligned(w, rows)
	fmt.Fprintln(w, "   note: a single curve cannot give the deadline axis EDF semantics or")
	fmt.Fprintln(w, "   note: the cylinder axis scan semantics; the cascade assigns each")
	fmt.Fprintln(w, "   note: parameter family a curve that fits it")
	fmt.Fprintln(w)
	return nil
}

// ablationDeadlineMode compares the absolute deadline axis against the
// slack-at-enqueue ablation.
func ablationDeadlineMode(w io.Writer, seed uint64) error {
	trace, err := workload.Open{
		Seed: seed, Count: 4000, MeanInterarrival: 25_000,
		Dims: 1, Levels: 8, DeadlineMin: 500_000, DeadlineMax: 700_000,
	}.Generate()
	if err != nil {
		return err
	}
	run := func(slack bool) (uint64, error) {
		s, err := core.NewScheduler("x", core.EncapsulatorConfig{
			Levels: 8, UseDeadline: true, F: math.Inf(1), Tie: core.TiePriority,
			DeadlineHorizon: 210_000_000, DeadlineSpan: 700_000, DeadlineSlack: slack,
		}, core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(sim.Config{Scheduler: s, FixedService: 24_000, Options: sim.Options{DropLate: true, Seed: seed}}, trace)
		if err != nil {
			return 0, err
		}
		return res.TotalMisses(), nil
	}
	abs, err := run(false)
	if err != nil {
		return err
	}
	slack, err := run(true)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== ablation: deadline axis (absolute vs slack-at-enqueue) ==")
	writeAligned(w, [][]string{
		{"axis", "deadline misses"},
		{"absolute (default)", fmt.Sprintf("%d", abs)},
		{"slack at enqueue", fmt.Sprintf("%d", slack)},
	})
	fmt.Fprintln(w, "   note: slack values computed at different arrival times are mutually")
	fmt.Fprintln(w, "   note: skewed by the arrival gap, which starves old requests under load")
	fmt.Fprintln(w)
	return nil
}

// ablationSP compares the Serve-and-Promote policy on and off.
func ablationSP(w io.Writer, seed uint64) error {
	trace, err := workload.Open{
		Seed: seed, Count: 4000, MeanInterarrival: 25_000, Dims: 4, Levels: 16,
	}.Generate()
	if err != nil {
		return err
	}
	run := func(sp bool) (uint64, error) {
		cv, err := sfc.New("peano", 4, 16)
		if err != nil {
			return 0, err
		}
		s, err := core.NewScheduler("x", core.EncapsulatorConfig{Curve1: cv, Levels: 16},
			core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: sp}, 0.05)
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(sim.Config{
			Scheduler: s, FixedService: 24_000,
			Options: sim.Options{Dims: 4, Levels: 16, Seed: seed},
		}, trace)
		if err != nil {
			return 0, err
		}
		return res.TotalInversions(), nil
	}
	with, err := run(true)
	if err != nil {
		return err
	}
	without, err := run(false)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== ablation: Serve-and-Promote (SP) at window 5% ==")
	writeAligned(w, [][]string{
		{"policy", "priority inversions"},
		{"SP on", fmt.Sprintf("%d", with)},
		{"SP off", fmt.Sprintf("%d", without)},
	})
	fmt.Fprintln(w)
	return nil
}

// ablationER measures the Expand-and-Reset starvation guard against an
// adversarial stream that always undercuts a fixed window.
func ablationER(w io.Writer) error {
	run := func(er bool) int {
		d, err := core.NewDispatcher(core.DispatcherConfig{
			Mode: core.ConditionallyPreemptive, Window: 5, ER: er, Expansion: 2,
		})
		if err != nil {
			return -1
		}
		d.Add(&core.Request{ID: 1}, 100_000)
		d.Next()
		d.Add(&core.Request{ID: 999}, 200_000)
		v := uint64(100_000)
		for i := 0; i < 512; i++ {
			v -= 6
			d.Add(&core.Request{ID: uint64(i + 2)}, v)
			if r := d.Next(); r != nil && r.ID == 999 {
				return i + 1
			}
		}
		return 512
	}
	fmt.Fprintln(w, "== ablation: Expand-and-Reset (ER) vs an adversarial stream ==")
	writeAligned(w, [][]string{
		{"policy", "dispatches until the blocked request is served"},
		{"ER on (e=2)", fmt.Sprintf("%d", run(true))},
		{"ER off", fmt.Sprintf(">= %d (stream length)", run(false))},
	})
	fmt.Fprintln(w)
	return nil
}

// ablationWindow sweeps the blocking window and reports preemption
// pressure.
func ablationWindow(w io.Writer, seed uint64) error {
	trace, err := workload.Open{
		Seed: seed, Count: 3000, MeanInterarrival: 25_000, Dims: 4, Levels: 16,
	}.Generate()
	if err != nil {
		return err
	}
	rows := [][]string{{"window", "preemptions+promotions", "inversions"}}
	for _, frac := range []float64{0, 0.02, 0.05, 0.2, 0.5} {
		cv, err := sfc.New("peano", 4, 16)
		if err != nil {
			return err
		}
		s, err := core.NewScheduler("x", core.EncapsulatorConfig{Curve1: cv, Levels: 16},
			core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true}, frac)
		if err != nil {
			return err
		}
		res, err := sim.Run(sim.Config{
			Scheduler: s, FixedService: 24_000,
			Options: sim.Options{Dims: 4, Levels: 16, Seed: seed},
		}, trace)
		if err != nil {
			return err
		}
		st := s.Dispatcher().Stats()
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprintf("%d", st.Preemptions+st.Promotions),
			fmt.Sprintf("%d", res.TotalInversions()),
		})
	}
	fmt.Fprintln(w, "== ablation: blocking window size (peano SFC1, 4 dims) ==")
	writeAligned(w, rows)
	fmt.Fprintln(w)
	return nil
}
