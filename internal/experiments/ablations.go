package experiments

import (
	"fmt"
	"io"
	"math"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// Ablations runs the design-choice experiments DESIGN.md §6 calls out and
// prints one table per ablation. These are the same comparisons as the
// Ablation* benchmarks, packaged for the CLI. The tables print in a fixed
// order; workers bounds the parallel simulation cells within each
// ablation (0 = GOMAXPROCS) and does not change any number printed.
func Ablations(w io.Writer, seed uint64, workers int) error {
	if err := ablationDeadlineMode(w, seed, workers); err != nil {
		return err
	}
	if err := ablationSP(w, seed, workers); err != nil {
		return err
	}
	if err := ablationER(w); err != nil {
		return err
	}
	if err := ablationWindow(w, seed, workers); err != nil {
		return err
	}
	return ablationCascadeVsSingle(w, seed, workers)
}

// ablationCascadeVsSingle compares the three-stage cascade against the
// predecessor single-curve design (the paper's reference [2]): one
// Hilbert curve over (priorities, deadline, cylinder) as equal axes.
func ablationCascadeVsSingle(w io.Writer, seed uint64, workers int) error {
	m, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return err
	}
	var arena workload.Arena
	trace, err := workload.Open{
		Seed: seed, Count: 5000, MeanInterarrival: 13_000,
		Dims: 2, Levels: 8, DeadlineMin: 500_000, DeadlineMax: 700_000,
		Cylinders: m.Cylinders, SizeMin: 4 << 10, SizeMax: 256 << 10,
	}.GenerateArena(&arena)
	if err != nil {
		return err
	}
	horizon := 2*int64(5000)*13_000 + 700_000
	cv, err := sfc.New("hilbert", 2, 8)
	if err != nil {
		return err
	}
	cascaded, err := core.NewScheduler("cascaded", core.EncapsulatorConfig{
		Curve1: cv, Levels: 8,
		UseDeadline: true, F: 1, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: m.Cylinders,
	}, core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
	if err != nil {
		return err
	}
	single, err := core.NewSingleStageScheduler("single-hilbert", "hilbert", 2, 8,
		horizon, m.Cylinders, core.DispatcherConfig{Mode: core.FullyPreemptive})
	if err != nil {
		return err
	}
	scheds := []sched.Scheduler{cascaded, single}
	cells, err := runner.Map(workers, len(scheds), func(i int) ([]string, error) {
		var row []string
		err := runReused(sim.Config{
			Disk: m, Scheduler: scheds[i],
			Options: sim.Options{DropLate: true, Dims: 2, Levels: 8, Seed: seed},
		}, trace, func(res *sim.Result) error {
			row = []string{
				scheds[i].Name(),
				fmt.Sprintf("%d", res.TotalMisses()),
				fmt.Sprintf("%d", res.TotalInversions()),
				fmt.Sprintf("%.1f", float64(res.SeekTime)/1e6),
			}
			return nil
		})
		return row, err
	})
	if err != nil {
		return err
	}
	rows := append([][]string{{"design", "deadline misses", "inversions", "seek (s)"}}, cells...)
	fmt.Fprintln(w, "== ablation: three-stage cascade vs single (D+2)-dim curve [ref 2] ==")
	writeAligned(w, rows)
	fmt.Fprintln(w, "   note: a single curve cannot give the deadline axis EDF semantics or")
	fmt.Fprintln(w, "   note: the cylinder axis scan semantics; the cascade assigns each")
	fmt.Fprintln(w, "   note: parameter family a curve that fits it")
	fmt.Fprintln(w)
	return nil
}

// ablationDeadlineMode compares the absolute deadline axis against the
// slack-at-enqueue ablation.
func ablationDeadlineMode(w io.Writer, seed uint64, workers int) error {
	var arena workload.Arena
	trace, err := workload.Open{
		Seed: seed, Count: 4000, MeanInterarrival: 25_000,
		Dims: 1, Levels: 8, DeadlineMin: 500_000, DeadlineMax: 700_000,
	}.GenerateArena(&arena)
	if err != nil {
		return err
	}
	misses, err := runner.Map(workers, 2, func(i int) (uint64, error) {
		s, err := core.NewScheduler("x", core.EncapsulatorConfig{
			Levels: 8, UseDeadline: true, F: math.Inf(1), Tie: core.TiePriority,
			DeadlineHorizon: 210_000_000, DeadlineSpan: 700_000, DeadlineSlack: i == 1,
		}, core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
		if err != nil {
			return 0, err
		}
		var m uint64
		err = runReused(sim.Config{Scheduler: s, FixedService: 24_000, Options: sim.Options{DropLate: true, Seed: seed}},
			trace, func(res *sim.Result) error {
				m = res.TotalMisses()
				return nil
			})
		return m, err
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== ablation: deadline axis (absolute vs slack-at-enqueue) ==")
	writeAligned(w, [][]string{
		{"axis", "deadline misses"},
		{"absolute (default)", fmt.Sprintf("%d", misses[0])},
		{"slack at enqueue", fmt.Sprintf("%d", misses[1])},
	})
	fmt.Fprintln(w, "   note: slack values computed at different arrival times are mutually")
	fmt.Fprintln(w, "   note: skewed by the arrival gap, which starves old requests under load")
	fmt.Fprintln(w)
	return nil
}

// ablationSP compares the Serve-and-Promote policy on and off.
func ablationSP(w io.Writer, seed uint64, workers int) error {
	var arena workload.Arena
	trace, err := workload.Open{
		Seed: seed, Count: 4000, MeanInterarrival: 25_000, Dims: 4, Levels: 16,
	}.GenerateArena(&arena)
	if err != nil {
		return err
	}
	inv, err := runner.Map(workers, 2, func(i int) (uint64, error) {
		cv, err := sfc.New("peano", 4, 16)
		if err != nil {
			return 0, err
		}
		s, err := core.NewScheduler("x", core.EncapsulatorConfig{Curve1: cv, Levels: 16},
			core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: i == 0}, 0.05)
		if err != nil {
			return 0, err
		}
		var v uint64
		err = runReused(sim.Config{
			Scheduler: s, FixedService: 24_000,
			Options: sim.Options{Dims: 4, Levels: 16, Seed: seed},
		}, trace, func(res *sim.Result) error {
			v = res.TotalInversions()
			return nil
		})
		return v, err
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== ablation: Serve-and-Promote (SP) at window 5% ==")
	writeAligned(w, [][]string{
		{"policy", "priority inversions"},
		{"SP on", fmt.Sprintf("%d", inv[0])},
		{"SP off", fmt.Sprintf("%d", inv[1])},
	})
	fmt.Fprintln(w)
	return nil
}

// ablationER measures the Expand-and-Reset starvation guard against an
// adversarial stream that always undercuts a fixed window.
func ablationER(w io.Writer) error {
	run := func(er bool) int {
		d, err := core.NewDispatcher(core.DispatcherConfig{
			Mode: core.ConditionallyPreemptive, Window: 5, ER: er, Expansion: 2,
		})
		if err != nil {
			return -1
		}
		d.Add(&core.Request{ID: 1}, 100_000)
		d.Next()
		d.Add(&core.Request{ID: 999}, 200_000)
		v := uint64(100_000)
		for i := 0; i < 512; i++ {
			v -= 6
			d.Add(&core.Request{ID: uint64(i + 2)}, v)
			if r := d.Next(); r != nil && r.ID == 999 {
				return i + 1
			}
		}
		return 512
	}
	fmt.Fprintln(w, "== ablation: Expand-and-Reset (ER) vs an adversarial stream ==")
	writeAligned(w, [][]string{
		{"policy", "dispatches until the blocked request is served"},
		{"ER on (e=2)", fmt.Sprintf("%d", run(true))},
		{"ER off", fmt.Sprintf(">= %d (stream length)", run(false))},
	})
	fmt.Fprintln(w)
	return nil
}

// ablationWindow sweeps the blocking window and reports preemption
// pressure.
func ablationWindow(w io.Writer, seed uint64, workers int) error {
	var arena workload.Arena
	trace, err := workload.Open{
		Seed: seed, Count: 3000, MeanInterarrival: 25_000, Dims: 4, Levels: 16,
	}.GenerateArena(&arena)
	if err != nil {
		return err
	}
	fracs := []float64{0, 0.02, 0.05, 0.2, 0.5}
	cells, err := runner.Map(workers, len(fracs), func(i int) ([]string, error) {
		cv, err := sfc.New("peano", 4, 16)
		if err != nil {
			return nil, err
		}
		s, err := core.NewScheduler("x", core.EncapsulatorConfig{Curve1: cv, Levels: 16},
			core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true}, fracs[i])
		if err != nil {
			return nil, err
		}
		var row []string
		err = runReused(sim.Config{
			Scheduler: s, FixedService: 24_000,
			Options: sim.Options{Dims: 4, Levels: 16, Seed: seed},
		}, trace, func(res *sim.Result) error {
			st := s.Dispatcher().Stats()
			row = []string{
				fmt.Sprintf("%.0f%%", fracs[i]*100),
				fmt.Sprintf("%d", st.Preemptions+st.Promotions),
				fmt.Sprintf("%d", res.TotalInversions()),
			}
			return nil
		})
		return row, err
	})
	if err != nil {
		return err
	}
	rows := append([][]string{{"window", "preemptions+promotions", "inversions"}}, cells...)
	fmt.Fprintln(w, "== ablation: blocking window size (peano SFC1, 4 dims) ==")
	writeAligned(w, rows)
	fmt.Fprintln(w)
	return nil
}
