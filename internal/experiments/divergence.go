package experiments

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// DivergenceConfig drives the counterfactual-divergence experiment: the
// cascaded SFC scheduler serves a single disk while shadow schedulers ride
// the same arrival stream, and the offered load sweeps. The shadows answer
// the operational question behind the observability layer — how different
// would the dispatch sequence be under another policy, and how much head
// travel would it cost — without running separate simulations per policy.
type DivergenceConfig struct {
	Seed uint64
	// Interarrivals lists the mean arrival gaps to sweep, µs (the x-axis
	// renders as offered load in req/s).
	Interarrivals []int64
	// Requests is the request count per point.
	Requests int
	// Levels is the number of priority levels.
	Levels int
	// DeadlineMin/Max bound the relative deadlines, µs.
	DeadlineMin int64
	DeadlineMax int64
	// Workers bounds the parallel sweep cells (0 = GOMAXPROCS). Results
	// are identical for every worker count; see internal/runner.
	Workers int
}

// DefaultDivergenceConfig sweeps from a lightly loaded disk (queues mostly
// empty, policies agree trivially) into saturation (deep queues, policy
// choices diverge hard).
func DefaultDivergenceConfig() DivergenceConfig {
	return DivergenceConfig{
		Seed:          1,
		Interarrivals: []int64{24_000, 16_000, 12_000, 9_000, 7_000},
		Requests:      3000,
		Levels:        8,
		DeadlineMin:   300_000,
		DeadlineMax:   700_000,
	}
}

// divergenceShadows lists the counterfactual policies ridden against the
// cascaded primary: the paper's strongest baseline, the naive baseline,
// and the cascaded scheduler itself with a 4x wider blocking window (the
// knob §5.1 sweeps).
func divergenceShadows(levels int, horizon int64) (map[string]func() (sched.Scheduler, error), []string) {
	names := []string{"scan-edf", "fcfs", "cascaded-w20"}
	return map[string]func() (sched.Scheduler, error){
		"scan-edf":     func() (sched.Scheduler, error) { return sched.NewSCANEDF(50_000), nil },
		"fcfs":         func() (sched.Scheduler, error) { return sched.NewFCFS(), nil },
		"cascaded-w20": func() (sched.Scheduler, error) { return divergencePrimary(levels, horizon, 0.20) },
	}, names
}

// divergencePrimary builds the cascaded scheduler of the faultsweep
// experiment: hilbert over the (deadline, priority) plane, conditionally
// preemptive, blocking window windowFrac of the value space.
func divergencePrimary(levels int, horizon int64, windowFrac float64) (sched.Scheduler, error) {
	cv, err := sfc.New("hilbert", 2, uint32(levels))
	if err != nil {
		return nil, err
	}
	return core.NewScheduler("cascaded",
		core.EncapsulatorConfig{
			Levels:      levels,
			UseDeadline: true, Curve2: cv,
			DeadlineHorizon: horizon, DeadlineSlack: true,
		},
		core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true}, 0.05)
}

// Divergence sweeps offered load and reports, per shadow policy, the
// choice-disagreement rate against the cascaded primary and the
// counterfactual head-travel delta. Deterministic: the same config renders
// the same CSV for any worker count.
func Divergence(cfg DivergenceConfig) (*Result, *Result, error) {
	if len(cfg.Interarrivals) == 0 {
		cfg.Interarrivals = DefaultDivergenceConfig().Interarrivals
	}
	model, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return nil, nil, err
	}
	shadows, names := divergenceShadows(cfg.Levels, cfg.DeadlineMax)

	x := make([]float64, len(cfg.Interarrivals))
	for i, ia := range cfg.Interarrivals {
		x[i] = float64(int64(1_000_000 / ia))
	}
	notes := []string{
		fmt.Sprintf("primary: cascaded hilbert (deadline, priority), window 5%%; %d requests per point, deadlines [%d,%d]ms",
			cfg.Requests, cfg.DeadlineMin/1000, cfg.DeadlineMax/1000),
		"shadows ride the primary's arrival stream and answer per-decision; they never perturb the run",
		"travel delta = 100*(shadow head travel - primary)/primary; negative means the shadow would seek less",
	}
	disagree := &Result{
		ID:     "divergence",
		Title:  "Shadow-scheduler choice disagreement vs offered load",
		XLabel: "load (req/s)",
		YLabel: "decisions disagreeing with the cascaded primary (%)",
		X:      x,
		Notes:  notes,
	}
	travel := &Result{
		ID:     "divergence",
		Title:  "Counterfactual head-travel delta vs offered load",
		XLabel: "load (req/s)",
		YLabel: "shadow head travel vs primary (%)",
		X:      x,
	}

	type cellOut struct{ disagree, travel []float64 }
	cells, err := runner.Map(cfg.Workers, len(cfg.Interarrivals), func(i int) (cellOut, error) {
		var arena workload.Arena
		trace, err := workload.Open{
			Seed:             cfg.Seed,
			Count:            cfg.Requests,
			MeanInterarrival: cfg.Interarrivals[i],
			Dims:             1,
			Levels:           cfg.Levels,
			DeadlineMin:      cfg.DeadlineMin,
			DeadlineMax:      cfg.DeadlineMax,
			Cylinders:        model.Cylinders,
			SizeMin:          4 << 10,
			SizeMax:          128 << 10,
		}.GenerateArena(&arena)
		if err != nil {
			return cellOut{}, err
		}
		primary, err := divergencePrimary(cfg.Levels, cfg.DeadlineMax, 0.05)
		if err != nil {
			return cellOut{}, err
		}
		shs := make([]*sim.Shadow, len(names))
		for j, name := range names {
			s, err := shadows[name]()
			if err != nil {
				return cellOut{}, err
			}
			shs[j] = sim.NewShadow(name, s)
		}
		out := cellOut{disagree: make([]float64, len(names)), travel: make([]float64, len(names))}
		err = runReused(sim.Config{
			Disk: model, Scheduler: primary,
			Options: sim.Options{
				DropLate: true, Dims: 1, Levels: cfg.Levels,
				Seed: cfg.Seed, Shadows: shs,
			},
		}, trace, func(res *sim.Result) error {
			for j, rep := range res.Shadows {
				out.disagree[j] = 100 * rep.DisagreementRate()
				out.travel[j] = percent(float64(rep.HeadTravel-res.HeadTravel), float64(res.HeadTravel))
			}
			return nil
		})
		return out, err
	})
	if err != nil {
		return nil, nil, err
	}
	for j, name := range names {
		dy := make([]float64, len(cells))
		ty := make([]float64, len(cells))
		for i, c := range cells {
			dy[i] = c.disagree[j]
			ty[i] = c.travel[j]
		}
		if err := disagree.AddSeries(name, dy); err != nil {
			return nil, nil, err
		}
		if err := travel.AddSeries(name, ty); err != nil {
			return nil, nil, err
		}
	}
	return disagree, travel, nil
}
