package experiments

import (
	"fmt"
	"math"

	"sfcsched/internal/core"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// SFC2Config drives the stage-2 experiments (Figs. 8-9): real-time
// multi-priority requests with transfer-dominated service, so SFC3 is
// skipped (paper §5.2).
type SFC2Config struct {
	Seed             uint64
	Requests         int
	Dims             int
	Levels           int
	MeanInterarrival int64
	Service          int64
	// DeadlineMin/Max bound the relative deadlines, µs (paper: 500-700 ms).
	DeadlineMin int64
	DeadlineMax int64
	// Curves are the SFC1 choices compared as series.
	Curves []string
}

// DefaultSFC2Config returns the §5.2 parameters.
func DefaultSFC2Config() SFC2Config {
	return SFC2Config{
		Seed:             1,
		Requests:         4000,
		Dims:             3,
		Levels:           8,
		MeanInterarrival: 25_000,
		Service:          24_500,
		DeadlineMin:      500_000,
		DeadlineMax:      700_000,
		Curves:           []string{"sweep", "hilbert", "peano"},
	}
}

func (c SFC2Config) trace() ([]*core.Request, error) {
	return workload.Open{
		Seed:             c.Seed,
		Count:            c.Requests,
		MeanInterarrival: c.MeanInterarrival,
		Dims:             c.Dims,
		Levels:           c.Levels,
		DeadlineMin:      c.DeadlineMin,
		DeadlineMax:      c.DeadlineMax,
	}.Generate()
}

func (c SFC2Config) run(s sched.Scheduler, trace []*core.Request) (*sim.Result, error) {
	return sim.Run(sim.Config{
		Scheduler:    s,
		FixedService: c.Service,
		Options:      sim.Options{DropLate: true, Dims: c.Dims, Levels: c.Levels, Seed: c.Seed},
	}, trace)
}

// horizon bounds the absolute deadlines of the whole run.
func (c SFC2Config) horizon() int64 {
	return 2*int64(c.Requests)*c.MeanInterarrival + c.DeadlineMax
}

// scheduler builds the SFC1+SFC2 cascade with balance factor f. Stage-2
// output feeds the priority queue directly (§5.2 skips SFC3), so the
// dispatcher is fully preemptive.
func (c SFC2Config) scheduler(curve string, f float64) (*core.Scheduler, error) {
	cv, err := sfc.New(curve, c.Dims, uint32(c.Levels))
	if err != nil {
		return nil, err
	}
	tie := core.TieNone
	if f == 0 {
		tie = core.TieDeadline
	}
	if math.IsInf(f, 1) {
		tie = core.TiePriority
	}
	return core.NewScheduler(
		fmt.Sprintf("%s-f%g", curve, f),
		core.EncapsulatorConfig{
			Curve1: cv, Levels: c.Levels,
			UseDeadline: true, F: f, Tie: tie,
			DeadlineHorizon: c.horizon(), DeadlineSpan: c.DeadlineMax,
		},
		core.DispatcherConfig{Mode: core.FullyPreemptive},
		0,
	)
}

// Fig8 measures the effect of the SFC2 balance factor f on (a) priority
// inversion and (b) deadline misses, both as percentages of the EDF
// scheduler's values. Small f favors priority order at the cost of
// deadlines; large f converges to EDF's miss count.
func Fig8(cfg SFC2Config, fs []float64) (a, b *Result, err error) {
	if len(fs) == 0 {
		fs = []float64{0, 0.25, 0.5, 1, 2, 4, 8}
	}
	trace, err := cfg.trace()
	if err != nil {
		return nil, nil, err
	}
	edf, err := cfg.run(sched.NewEDF(), trace)
	if err != nil {
		return nil, nil, err
	}
	baseInv := float64(edf.TotalInversions())
	baseMiss := float64(edf.TotalMisses())
	note := fmt.Sprintf("dims=%d levels=%d deadlines=[%d,%d]ms service=%dms; EDF: %0.f inversions, %.0f misses",
		cfg.Dims, cfg.Levels, cfg.DeadlineMin/1000, cfg.DeadlineMax/1000, cfg.Service/1000, baseInv, baseMiss)
	a = &Result{
		ID: "fig8a", Title: "Priority inversion vs balance factor f (% of EDF)",
		XLabel: "f", YLabel: "total priority inversions, % of EDF",
		X: fs, Notes: []string{note},
	}
	b = &Result{
		ID: "fig8b", Title: "Deadline misses vs balance factor f (% of EDF)",
		XLabel: "f", YLabel: "deadline misses, % of EDF",
		X: fs, Notes: []string{note},
	}
	for _, curve := range cfg.Curves {
		invs := make([]float64, len(fs))
		misses := make([]float64, len(fs))
		for i, f := range fs {
			s, err := cfg.scheduler(curve, f)
			if err != nil {
				return nil, nil, err
			}
			r, err := cfg.run(s, trace)
			if err != nil {
				return nil, nil, err
			}
			invs[i] = percent(float64(r.TotalInversions()), baseInv)
			misses[i] = percent(float64(r.TotalMisses()), baseMiss)
		}
		if err := a.AddSeries(curve, invs); err != nil {
			return nil, nil, err
		}
		if err := b.AddSeries(curve, misses); err != nil {
			return nil, nil, err
		}
	}
	return a, b, nil
}

// Fig9 measures selectivity: how deadline misses distribute over priority
// levels within each dimension, for EDF versus the Cascaded-SFC scheduler
// with different SFC1 curves at f = 1. It returns one Result per dimension
// (the paper's three sub-figures); the ideal scheduler concentrates all
// misses in the lowest-priority levels.
func Fig9(cfg SFC2Config, f float64) ([]*Result, error) {
	if f == 0 {
		f = 1
	}
	trace, err := cfg.trace()
	if err != nil {
		return nil, err
	}
	type runOut struct {
		name string
		res  *sim.Result
	}
	var runs []runOut
	edf, err := cfg.run(sched.NewEDF(), trace)
	if err != nil {
		return nil, err
	}
	runs = append(runs, runOut{"edf", edf})
	for _, curve := range cfg.Curves {
		s, err := cfg.scheduler(curve, f)
		if err != nil {
			return nil, err
		}
		r, err := cfg.run(s, trace)
		if err != nil {
			return nil, err
		}
		runs = append(runs, runOut{curve, r})
	}
	levels := make([]float64, cfg.Levels)
	for l := range levels {
		levels[l] = float64(l + 1)
	}
	out := make([]*Result, cfg.Dims)
	for k := 0; k < cfg.Dims; k++ {
		res := &Result{
			ID:     fmt.Sprintf("fig9-dim%d", k+1),
			Title:  fmt.Sprintf("Deadline misses per priority level, dimension %d of %d", k+1, cfg.Dims),
			XLabel: "level",
			YLabel: "deadline misses (level 1 = highest priority)",
			X:      levels,
			Notes: []string{
				fmt.Sprintf("f=%g; dims=%d levels=%d deadlines=[%d,%d]ms", f,
					cfg.Dims, cfg.Levels, cfg.DeadlineMin/1000, cfg.DeadlineMax/1000),
			},
		}
		for _, ro := range runs {
			ys := make([]float64, cfg.Levels)
			for l := 0; l < cfg.Levels; l++ {
				ys[l] = float64(ro.res.MissesPerDimLevel[k][l])
			}
			if err := res.AddSeries(ro.name, ys); err != nil {
				return nil, err
			}
		}
		out[k] = res
	}
	return out, nil
}
