package experiments

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// SFC3Config drives the stage-3 experiment (Fig. 10): small blocks make
// seek time matter, so the full three-stage cascade runs against the real
// disk model and the partition count R trades seek optimization against
// priority/deadline fidelity (paper §5.3).
type SFC3Config struct {
	Seed             uint64
	Requests         int
	Dims             int
	Levels           int
	MeanInterarrival int64
	DeadlineMin      int64
	DeadlineMax      int64
	// SizeMin/SizeMax bound the priority-correlated block sizes: §5.2's
	// assumption that high-priority requests (A/V chunks) are smaller than
	// low-priority ones (ftp transfers), carried into §5.3's small-block
	// regime where seek time matters.
	SizeMin int64
	SizeMax int64
	// Curve1 is the SFC1 choice for the cascade.
	Curve1 string
	// F is the SFC2 balance factor.
	F float64
}

// DefaultSFC3Config returns the §5.3 parameters.
func DefaultSFC3Config() SFC3Config {
	return SFC3Config{
		Seed:             1,
		Requests:         6000,
		Dims:             3,
		Levels:           8,
		MeanInterarrival: 13_000,
		DeadlineMin:      500_000,
		DeadlineMax:      700_000,
		SizeMin:          4 << 10,
		SizeMax:          256 << 10,
		Curve1:           "hilbert",
		F:                1,
	}
}

func (c SFC3Config) trace(cyls int) ([]*core.Request, error) {
	return workload.Open{
		Seed:             c.Seed,
		Count:            c.Requests,
		MeanInterarrival: c.MeanInterarrival,
		Dims:             c.Dims,
		Levels:           c.Levels,
		DeadlineMin:      c.DeadlineMin,
		DeadlineMax:      c.DeadlineMax,
		Cylinders:        cyls,
		SizeMin:          c.SizeMin,
		SizeMax:          c.SizeMax,
	}.Generate()
}

func (c SFC3Config) run(m *disk.Model, s sched.Scheduler, trace []*core.Request) (*sim.Result, error) {
	return sim.Run(sim.Config{
		Disk:      m,
		Scheduler: s,
		Options:   sim.Options{DropLate: true, Dims: c.Dims, Levels: c.Levels, Seed: c.Seed},
	}, trace)
}

// scheduler builds the full three-stage cascade with R partitions. The
// SFC3 seek dimension is insertion-relative (distance ahead of the head),
// so the deadline dimension uses the matching insertion-relative slack
// coordinate and the bounded window it implies.
func (c SFC3Config) scheduler(m *disk.Model, r int) (*core.Scheduler, error) {
	cv, err := sfc.New(c.Curve1, c.Dims, uint32(c.Levels))
	if err != nil {
		return nil, err
	}
	return core.NewScheduler(
		fmt.Sprintf("cascaded-R%d", r),
		core.EncapsulatorConfig{
			Curve1: cv, Levels: c.Levels,
			UseDeadline: true, F: c.F,
			DeadlineHorizon: c.DeadlineMax, DeadlineSpan: c.DeadlineMax,
			DeadlineSlack: true,
			UseCylinder:   true, R: r, Cylinders: m.Cylinders,
		},
		core.DispatcherConfig{Mode: core.FullyPreemptive},
		0,
	)
}

// Fig10 sweeps the SFC3 partition count R and reports, against the EDF and
// C-SCAN baselines: (a) priority inversion as % of C-SCAN, (b) deadline
// misses normalized to C-SCAN, and (c) total seek time in seconds.
func Fig10(cfg SFC3Config, rs []float64) (a, b, c *Result, err error) {
	if len(rs) == 0 {
		rs = []float64{1, 2, 3, 4, 6, 8, 12, 16}
	}
	m, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return nil, nil, nil, err
	}
	trace, err := cfg.trace(m.Cylinders)
	if err != nil {
		return nil, nil, nil, err
	}
	cscan, err := cfg.run(m, sched.NewCSCAN(), trace)
	if err != nil {
		return nil, nil, nil, err
	}
	edf, err := cfg.run(m, sched.NewEDF(), trace)
	if err != nil {
		return nil, nil, nil, err
	}
	note := fmt.Sprintf("curve1=%s f=%g dims=%d levels=%d blocks<=%dKB interarrival=%dms",
		cfg.Curve1, cfg.F, cfg.Dims, cfg.Levels, cfg.SizeMax>>10, cfg.MeanInterarrival/1000)
	base := fmt.Sprintf("C-SCAN: %d inversions, %d misses, %.1fs seek; EDF: %d inversions, %d misses, %.1fs seek",
		cscan.TotalInversions(), cscan.TotalMisses(), float64(cscan.SeekTime)/1e6,
		edf.TotalInversions(), edf.TotalMisses(), float64(edf.SeekTime)/1e6)

	a = &Result{
		ID: "fig10a", Title: "Priority inversion vs R (% of C-SCAN)",
		XLabel: "R", YLabel: "total priority inversions, % of C-SCAN",
		X: rs, Notes: []string{note, base},
	}
	b = &Result{
		ID: "fig10b", Title: "Deadline losses vs R (normalized to C-SCAN)",
		XLabel: "R", YLabel: "deadline misses / C-SCAN misses",
		X: rs, Notes: []string{note, base},
	}
	c = &Result{
		ID: "fig10c", Title: "Seek time vs R",
		XLabel: "R", YLabel: "total seek time, seconds",
		X: rs, Notes: []string{note, base},
	}
	var invs, misses, seeks []float64
	for _, rf := range rs {
		s, err := cfg.scheduler(m, int(rf))
		if err != nil {
			return nil, nil, nil, err
		}
		r, err := cfg.run(m, s, trace)
		if err != nil {
			return nil, nil, nil, err
		}
		invs = append(invs, percent(float64(r.TotalInversions()), float64(cscan.TotalInversions())))
		misses = append(misses, ratio(float64(r.TotalMisses()), float64(cscan.TotalMisses())))
		seeks = append(seeks, float64(r.SeekTime)/1e6)
	}
	if err := a.AddSeries("cascaded", invs); err != nil {
		return nil, nil, nil, err
	}
	if err := b.AddSeries("cascaded", misses); err != nil {
		return nil, nil, nil, err
	}
	if err := c.AddSeries("cascaded", seeks); err != nil {
		return nil, nil, nil, err
	}
	flat := func(v float64) []float64 {
		ys := make([]float64, len(rs))
		for i := range ys {
			ys[i] = v
		}
		return ys
	}
	if err := a.AddSeries("edf", flat(percent(float64(edf.TotalInversions()), float64(cscan.TotalInversions())))); err != nil {
		return nil, nil, nil, err
	}
	if err := b.AddSeries("edf", flat(ratio(float64(edf.TotalMisses()), float64(cscan.TotalMisses())))); err != nil {
		return nil, nil, nil, err
	}
	if err := c.AddSeries("edf", flat(float64(edf.SeekTime)/1e6)); err != nil {
		return nil, nil, nil, err
	}
	if err := a.AddSeries("cscan", flat(100)); err != nil {
		return nil, nil, nil, err
	}
	if err := b.AddSeries("cscan", flat(1)); err != nil {
		return nil, nil, nil, err
	}
	if err := c.AddSeries("cscan", flat(float64(cscan.SeekTime)/1e6)); err != nil {
		return nil, nil, nil, err
	}
	return a, b, c, nil
}
