package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Shape tests: each experiment is run at reduced scale and the paper's
// qualitative claims are asserted. Absolute values are not checked — the
// substrate is a simulator — but orderings and crossovers must hold.

// reduced returns a faster SFC1 config for tests.
func reducedSFC1() SFC1Config {
	cfg := DefaultSFC1Config()
	cfg.Requests = 1500
	return cfg
}

func series(t *testing.T, r *Result, name string) []float64 {
	t.Helper()
	for _, s := range r.Series {
		if s.Name == name {
			return s.Y
		}
	}
	t.Fatalf("%s: no series %q", r.ID, name)
	return nil
}

func mean(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(reducedSFC1(), []float64{0, 2, 5, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 7 {
		t.Fatalf("want 7 curves, got %d", len(res.Series))
	}
	peano := series(t, res, "peano")
	sweep := series(t, res, "sweep")
	gray := series(t, res, "gray")
	hilbert := series(t, res, "hilbert")
	// Small windows: Peano lowest; Gray and Hilbert markedly worse than
	// the lexicographic curves (the paper's §5.1 finding).
	for i := 0; i < 3; i++ {
		if peano[i] >= sweep[i] {
			t.Errorf("w=%v: peano %.1f >= sweep %.1f", res.X[i], peano[i], sweep[i])
		}
		if gray[i] <= sweep[i] || hilbert[i] <= sweep[i] {
			t.Errorf("w=%v: gray/hilbert should exceed sweep (%.1f/%.1f vs %.1f)",
				res.X[i], gray[i], hilbert[i], sweep[i])
		}
	}
	// Every curve beats FIFO (values below 100%... allow slack for noise).
	for _, s := range res.Series {
		if s.Y[0] >= 130 {
			t.Errorf("%s at w=0: %.1f%% of FIFO seems wrong", s.Name, s.Y[0])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	cfg := reducedSFC1()
	res, err := Fig6(cfg, []float64{2, 4, 8, 12}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// All seven curves must run at every dimensionality up to 12 — the
	// scalability claim is that nothing breaks or blows up.
	if len(res.Series) != 7 {
		t.Fatalf("want 7 curves, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		for i, v := range s.Y {
			if v <= 0 || v > 400 {
				t.Errorf("%s at dims=%v: %.1f%% of FIFO out of plausible range", s.Name, res.X[i], v)
			}
		}
	}
	// Peano stays at or below sweep on average in high dimensions.
	peano := series(t, res, "peano")
	sweep := series(t, res, "sweep")
	if mean(peano[2:]) > mean(sweep[2:])*1.1 {
		t.Errorf("peano high-dim mean %.1f should not exceed sweep %.1f", mean(peano[2:]), mean(sweep[2:]))
	}
}

func TestFig7Shape(t *testing.T) {
	a, b, err := Fig7(reducedSFC1(), []float64{0, 2, 5, 20})
	if err != nil {
		t.Fatal(err)
	}
	// Hilbert is the fairest (lowest inversion stddev across dimensions);
	// the lexicographic curves are the least fair but own the best favored
	// dimension.
	hil := series(t, a, "hilbert")
	sw := series(t, a, "sweep")
	cs := series(t, a, "cscan")
	if mean(hil) >= mean(sw) || mean(hil) >= mean(cs) {
		t.Errorf("hilbert stddev %.2f should be below sweep %.2f and cscan %.2f",
			mean(hil), mean(sw), mean(cs))
	}
	favSweep := series(t, b, "sweep")
	favHil := series(t, b, "hilbert")
	if mean(favSweep) >= mean(favHil) {
		t.Errorf("sweep favored dim %.2f should beat hilbert %.2f", mean(favSweep), mean(favHil))
	}
	// The lexicographic curves keep their favored dimension almost free of
	// inversions at small windows.
	if favSweep[0] > 20 {
		t.Errorf("sweep favored dimension at w=0: %.1f%%, want near zero", favSweep[0])
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := DefaultSFC2Config()
	cfg.Requests = 3000
	a, b, err := Fig8(cfg, []float64{0, 1, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, curve := range cfg.Curves {
		inv := series(t, a, curve)
		miss := series(t, b, curve)
		// f = 0 minimizes inversion at a large miss cost; growing f trades
		// the two monotonically toward EDF.
		if !(inv[0] < inv[1] && inv[1] < inv[2]) {
			t.Errorf("%s: inversions should rise with f: %v", curve, inv)
		}
		if !(miss[0] > miss[1] && miss[1] > miss[2]) {
			t.Errorf("%s: misses should fall with f: %v", curve, miss)
		}
		if miss[0] < 200 {
			t.Errorf("%s: f=0 misses %.0f%% of EDF, want well above EDF", curve, miss[0])
		}
		if miss[2] > 200 {
			t.Errorf("%s: f=8 misses %.0f%% of EDF, want near EDF", curve, miss[2])
		}
		if inv[0] > 70 {
			t.Errorf("%s: f=0 inversion %.0f%% of EDF, want well below EDF", curve, inv[0])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	cfg := DefaultSFC2Config()
	cfg.Requests = 3000
	cfg.Service = 26_000 // overload: every scheduler must sacrifice
	rs, err := Fig9(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != cfg.Dims {
		t.Fatalf("want %d per-dimension results, got %d", cfg.Dims, len(rs))
	}
	// EDF scatters misses roughly uniformly over levels in every dimension.
	for _, r := range rs {
		edf := series(t, r, "edf")
		lo, hi := edf[0], edf[0]
		for _, v := range edf {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == 0 || hi/lo > 6 {
			t.Errorf("%s: EDF misses not roughly uniform: %v", r.ID, edf)
		}
	}
	// Sweep protects its favored (most significant) dimension: top levels
	// of the last dimension see almost no misses, bottom levels absorb them.
	last := rs[len(rs)-1]
	sw := series(t, last, "sweep")
	top := sw[0] + sw[1] + sw[2]
	bottom := sw[len(sw)-1] + sw[len(sw)-2]
	if top > bottom/4 {
		t.Errorf("sweep selectivity in favored dim: top-level misses %v vs bottom %v", top, bottom)
	}
}

func TestFig10Shape(t *testing.T) {
	cfg := DefaultSFC3Config()
	cfg.Requests = 4000
	a, b, c, err := Fig10(cfg, []float64{1, 3, 16})
	if err != nil {
		t.Fatal(err)
	}
	inv := series(t, a, "cascaded")
	miss := series(t, b, "cascaded")
	seek := series(t, c, "cascaded")
	seekCSCAN := series(t, c, "cscan")[0]
	missEDF := series(t, b, "edf")[0]
	// R = 1 degenerates to one pure scan: same seek and misses as C-SCAN.
	if seek[0] != seekCSCAN {
		t.Errorf("R=1 seek %.2f != C-SCAN %.2f", seek[0], seekCSCAN)
	}
	if miss[0] < 0.98 || miss[0] > 1.02 {
		t.Errorf("R=1 misses %.3fx C-SCAN, want ~1.0", miss[0])
	}
	// R = 3 is the sweet spot: fewer misses than both baselines, fewer
	// inversions than C-SCAN.
	if miss[1] >= 1 {
		t.Errorf("R=3 misses %.3fx C-SCAN, want below 1", miss[1])
	}
	if miss[1] >= missEDF {
		t.Errorf("R=3 misses %.3f should beat EDF %.3f", miss[1], missEDF)
	}
	if inv[1] >= 100 {
		t.Errorf("R=3 inversions %.1f%% of C-SCAN, want below 100", inv[1])
	}
	// Large R abandons seek optimization: seek rises, misses rise again.
	if seek[2] <= seek[0] {
		t.Errorf("R=16 seek %.2f should exceed R=1 seek %.2f", seek[2], seek[0])
	}
	if miss[2] <= miss[1] {
		t.Errorf("R=16 misses %.3f should exceed R=3 misses %.3f", miss[2], miss[1])
	}
}

func TestFig11Shape(t *testing.T) {
	cfg := DefaultFig11Config()
	cfg.Users = []int{68, 80, 91}
	cfg.Duration = 25_000_000
	res, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfs := series(t, res, "fcfs")
	sweepY := series(t, res, "sweep-y")
	peano := series(t, res, "peano")
	diag := series(t, res, "diagonal")
	hilbert := series(t, res, "hilbert")
	moore := series(t, res, "moore")
	last := len(res.X) - 1
	// Losses grow with the number of users for every policy.
	for _, s := range res.Series {
		if s.Y[last] < s.Y[0] {
			t.Errorf("%s: losses should grow with load: %v", s.Name, s.Y)
		}
	}
	// Under heavy load the priority-aware curves beat FCFS on weighted cost.
	if sweepY[last] >= fcfs[last] {
		t.Errorf("sweep-y %.2f should beat fcfs %.2f at peak load", sweepY[last], fcfs[last])
	}
	if peano[last] >= fcfs[last] || diag[last] >= fcfs[last] {
		t.Errorf("peano %.2f / diagonal %.2f should beat fcfs %.2f at peak load",
			peano[last], diag[last], fcfs[last])
	}
	// Closing the Hilbert loop must cure the open curve's endpoint
	// pathology (EXPERIMENTS.md): Moore well below Hilbert at peak load.
	if moore[last] >= hilbert[last]*0.8 {
		t.Errorf("moore %.2f should be well below open hilbert %.2f", moore[last], hilbert[last])
	}
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"3832", "7200 RPM", "4 data + 1 parity", "18.0 ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestResultRenderAndValidation(t *testing.T) {
	r := &Result{ID: "x", Title: "t", XLabel: "n", X: []float64{1, 2}}
	if err := r.AddSeries("ok", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSeries("bad", []float64{1}); err == nil {
		t.Error("expected length-mismatch error")
	}
	var buf bytes.Buffer
	r.Notes = append(r.Notes, "hello")
	r.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "ok") || !strings.Contains(out, "note: hello") {
		t.Errorf("render output wrong:\n%s", out)
	}
}

func TestAllListsEveryExperiment(t *testing.T) {
	ids := All()
	if len(ids) != 14 {
		t.Errorf("want 14 experiments, got %v", ids)
	}
}

func TestFig11RAIDShape(t *testing.T) {
	cfg := DefaultFig11Config()
	cfg.Users = []int{68, 91}
	cfg.Duration = 20_000_000
	res, err := Fig11RAID(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfs := series(t, res, "fcfs")
	sweepY := series(t, res, "sweep-y")
	diag := series(t, res, "diagonal")
	moore := series(t, res, "moore")
	last := len(res.X) - 1
	// FCFS clearly worst at light load on the real array.
	if fcfs[0] <= sweepY[0] || fcfs[0] <= diag[0] {
		t.Errorf("fcfs %.3f should be worst at 68 users (sweep-y %.3f, diagonal %.3f)",
			fcfs[0], sweepY[0], diag[0])
	}
	// The balanced curves stay ahead of FCFS at peak load too.
	if moore[last] >= fcfs[last] || diag[last] >= fcfs[last] {
		t.Errorf("moore %.2f / diagonal %.2f should beat fcfs %.2f at 91 users",
			moore[last], diag[last], fcfs[last])
	}
}

func TestAblationsRender(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablations(&buf, 1, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"deadline axis", "Serve-and-Promote", "Expand-and-Reset", "blocking window"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations output missing %q", want)
		}
	}
}
