package experiments

import (
	"strings"
	"testing"
)

func TestCalibrateReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	cfg := DefaultCalibrateConfig()
	cfg.Requests = 100
	cfg.Dilations = []float64{60, 120}
	res, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "calibrate" || len(res.X) != 2 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	names := make([]string, 0, len(res.Series))
	for _, s := range res.Series {
		if len(s.Y) != len(res.X) {
			t.Errorf("series %s has %d points, want %d", s.Name, len(s.Y), len(res.X))
		}
		names = append(names, s.Name)
	}
	if got := strings.Join(names, ","); got != "mape-pct,order-r,travel-delta-pct,wall-ms" {
		t.Errorf("series = %s", got)
	}
	for i := range res.X {
		if r := res.Series[1].Y[i]; r < -1 || r > 1 {
			t.Errorf("order-r[%d] = %v out of [-1,1]", i, r)
		}
		if w := res.Series[3].Y[i]; w <= 0 {
			t.Errorf("wall-ms[%d] = %v, want positive", i, w)
		}
	}
}

func TestCalibrateEmptyDilationsUsesDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	cfg := DefaultCalibrateConfig()
	cfg.Requests = 40
	cfg.Dilations = nil
	// Keep the default sweep but on a tiny trace: just proves the default
	// substitution path works end to end.
	res, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != len(DefaultCalibrateConfig().Dilations) {
		t.Errorf("empty Dilations should use the default sweep, got %v", res.X)
	}
}
