package experiments

import (
	"bytes"
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// ReplayDiffConfig drives the record→replay regression experiment: every
// multi-client scenario runs under every scheduler, its JSONL dispatch
// trace is recorded, loaded back through workload.LoadReplay and
// re-executed on a fresh scheduler, and the two recordings are compared
// byte for byte. A non-zero divergence is a determinism regression — the
// standing gate the CI cmp step holds between builds.
type ReplayDiffConfig struct {
	Seed uint64
	// Requests is the total request count per scenario.
	Requests int
	// Scenarios lists the multi-client scenarios to run (default: all of
	// workload.Scenarios()).
	Scenarios []string
	// Workers bounds the parallel sweep cells (0 = GOMAXPROCS). Results
	// are identical for every worker count; see internal/runner.
	Workers int
}

// DefaultReplayDiffConfig runs every built-in scenario at a load that
// produces both services and deadline drops.
func DefaultReplayDiffConfig() ReplayDiffConfig {
	return ReplayDiffConfig{Seed: 1, Requests: 3000, Scenarios: workload.Scenarios()}
}

// replayDiffSchedulers lists the disciplines the round trip is checked
// under: the cascaded scheduler (stateful SFC stages, the hardest case),
// the paper's strongest baseline, and the naive baseline.
func replayDiffSchedulers() (map[string]func() (sched.Scheduler, error), []string) {
	names := []string{"cascaded", "scan-edf", "fcfs"}
	return map[string]func() (sched.Scheduler, error){
		"cascaded": func() (sched.Scheduler, error) {
			return core.NewScheduler("cascaded",
				core.EncapsulatorConfig{Levels: 8, UseDeadline: true, F: 1, DeadlineHorizon: 800_000},
				core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true}, 0.05)
		},
		"scan-edf": func() (sched.Scheduler, error) { return sched.NewSCANEDF(50_000), nil },
		"fcfs":     func() (sched.Scheduler, error) { return sched.NewFCFS(), nil },
	}, names
}

// ReplayDiff runs the scenarios and reports two results over the scenario
// axis: per-scheduler deadline-drop rates (the workload diversity the
// scenarios exist to produce) and per-scheduler replay divergence, which
// must be 0 everywhere — a recorded run replayed on the same build is
// byte-identical. Deterministic: the same config renders the same CSV for
// any worker count.
func ReplayDiff(cfg ReplayDiffConfig) (*Result, *Result, error) {
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = workload.Scenarios()
	}
	model, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return nil, nil, err
	}
	scheds, names := replayDiffSchedulers()

	x := make([]float64, len(cfg.Scenarios))
	notes := []string{fmt.Sprintf("%d requests per scenario; scenario axis:", cfg.Requests)}
	for i, name := range cfg.Scenarios {
		x[i] = float64(i)
		notes = append(notes, fmt.Sprintf("  x=%d: %s", i, name))
	}
	drops := &Result{
		ID:     "replaydiff",
		Title:  "Deadline drops per multi-client scenario",
		XLabel: "scenario",
		YLabel: "dropped requests (%)",
		X:      x,
		Notes:  notes,
	}
	diverged := &Result{
		ID:     "replaydiff",
		Title:  "Record→replay divergence per scenario (must be 0)",
		XLabel: "scenario",
		YLabel: "diverging replays (0 = byte-identical)",
		X:      x,
	}

	type cellOut struct{ drop, diverge []float64 }
	cells, err := runner.Map(cfg.Workers, len(cfg.Scenarios), func(i int) (cellOut, error) {
		spec, err := workload.ScenarioSpec(cfg.Scenarios[i], cfg.Seed, cfg.Requests, model.Cylinders)
		if err != nil {
			return cellOut{}, err
		}
		var arena, replayArena workload.Arena
		trace, err := spec.GenerateArena(&arena)
		if err != nil {
			return cellOut{}, err
		}
		out := cellOut{drop: make([]float64, len(names)), diverge: make([]float64, len(names))}
		for j, name := range names {
			record := func(reqs []*core.Request, buf *bytes.Buffer) error {
				s, err := scheds[name]()
				if err != nil {
					return err
				}
				return runReused(sim.Config{
					Disk: model, Scheduler: s,
					Options: sim.Options{
						DropLate: true, Dims: spec.Dims(), Levels: 8,
						Seed: cfg.Seed, Trace: sim.JSONLTrace(buf),
					},
				}, reqs, func(res *sim.Result) error {
					out.drop[j] = percent(float64(res.Dropped), float64(res.Served+res.Dropped))
					return nil
				})
			}
			var recA, recB bytes.Buffer
			if err := record(trace, &recA); err != nil {
				return cellOut{}, err
			}
			rec, err := workload.LoadReplay(bytes.NewReader(recA.Bytes()))
			if err != nil {
				return cellOut{}, err
			}
			if rec.Len() != len(trace) {
				return cellOut{}, fmt.Errorf("replaydiff: %s/%s: replay reconstructed %d of %d requests",
					cfg.Scenarios[i], name, rec.Len(), len(trace))
			}
			if err := record(rec.GenerateArena(&replayArena), &recB); err != nil {
				return cellOut{}, err
			}
			if !bytes.Equal(recA.Bytes(), recB.Bytes()) {
				out.diverge[j] = 1
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for j, name := range names {
		dy := make([]float64, len(cells))
		vy := make([]float64, len(cells))
		for i, c := range cells {
			dy[i] = c.drop[j]
			vy[i] = c.diverge[j]
		}
		if err := drops.AddSeries(name, dy); err != nil {
			return nil, nil, err
		}
		if err := diverged.AddSeries(name, vy); err != nil {
			return nil, nil, err
		}
	}
	return drops, diverged, nil
}
