package experiments

import (
	"bytes"
	"testing"
)

// smallCluster shrinks the default cluster sweep for test budgets while
// keeping the saturated tail where policies diverge.
func smallCluster() ClusterConfig {
	cfg := DefaultClusterConfig()
	cfg.Interarrivals = []int64{2_500, 1_300, 1_000}
	cfg.Requests = 1500
	return cfg
}

func clusterCSV(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := smallCluster()
	cfg.Workers = workers
	loss, p99, jain, err := Cluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	loss.RenderCSV(&buf)
	p99.RenderCSV(&buf)
	jain.RenderCSV(&buf)
	return buf.Bytes()
}

func TestClusterIdenticalAcrossWorkers(t *testing.T) {
	want := clusterCSV(t, 1)
	for _, w := range []int{2, 8} {
		if got := clusterCSV(t, w); !bytes.Equal(got, want) {
			t.Errorf("cluster CSV diverges at workers=%d:\nworkers=1:\n%s\nworkers=%d:\n%s",
				w, want, w, got)
		}
	}
}

// Under zoned tenant skew the experiment must actually separate the
// policies: load-blind round-robin and load-aware least-loaded may not
// render identical series, and admission control must cut class-0 loss
// at saturation relative to always-admit.
func TestClusterPoliciesDiverge(t *testing.T) {
	cfg := smallCluster()
	loss, _, jain, err := Cluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := func(r *Result, name string) []float64 {
		t.Helper()
		for _, s := range r.Series {
			if s.Name == name {
				return s.Y
			}
		}
		t.Fatalf("%s: series %q missing (have %v)", r.Title, name, r.Series)
		return nil
	}
	same := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if same(series(loss, "rr+always"), series(loss, "least+always")) &&
		same(series(jain, "rr+always"), series(jain, "least+always")) {
		t.Error("round-robin and least-loaded rendered identical loss and fairness under skewed load")
	}
	last := len(cfg.Interarrivals) - 1
	// The token bucket must actually engage at the saturated tail: its
	// loss there differs from always-admit (it trades dispatch drops for
	// up-front admission rejections).
	if series(loss, "rr+token")[last] == series(loss, "rr+always")[last] {
		t.Error("token admission never engaged: rr+token loss equals rr+always at saturation")
	}
	// Zone-affinity routing pins each skewed tenant to its own node, so
	// at saturation it is measurably less fair than load-spreading rr.
	if aff, rr := series(jain, "affinity+always")[last], series(jain, "rr+always")[last]; aff >= rr {
		t.Errorf("affinity routing not less fair than rr at saturation: affinity=%.3f rr=%.3f", aff, rr)
	}
}
