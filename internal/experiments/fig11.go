package experiments

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/metrics"
	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// Fig11Config drives the §6 NewsByte5 non-linear-editing experiment: a
// sweep over the number of concurrent editing streams, comparing FCFS and
// four 2-D space-filling-curve schedulers over the (priority, deadline)
// plane by the weighted aggregate-loss cost function.
type Fig11Config struct {
	Seed uint64
	// Users lists the stream counts to sweep (paper: 68-91).
	Users []int
	// Duration is the simulated time per point, µs.
	Duration int64
	// BitRate is the per-stream media rate, bits/s. The paper quotes
	// 1.5 Mbps MPEG-1 on the PanaViss RAID; a single simulated XP32150
	// saturates near 60 req/s, so the default scales the rate to place
	// 68-91 users across the same below-to-above capacity band (documented
	// substitution, see DESIGN.md).
	BitRate float64
	// BlockSize is the file block size, bytes.
	BlockSize int64
	// Levels is the number of user priority levels (paper: 8).
	Levels int
	// DeadlineMin/Max bound the relative deadlines, µs (paper: 750-1500 ms).
	DeadlineMin int64
	DeadlineMax int64
	// WriteFrac is the fraction of recording streams.
	WriteFrac float64
	// CostRatio is the highest:lowest loss-weight ratio (paper: 11).
	CostRatio float64
	// Workers bounds the parallel sweep cells (0 = GOMAXPROCS). The
	// results are identical for every worker count; see internal/runner.
	Workers int
}

// DefaultFig11Config returns the §6 parameters with the documented
// bit-rate substitution.
func DefaultFig11Config() Fig11Config {
	return Fig11Config{
		Seed:        1,
		Users:       []int{68, 72, 76, 80, 84, 88, 91},
		Duration:    40_000_000,
		BitRate:     420_000,
		BlockSize:   64 << 10,
		Levels:      8,
		DeadlineMin: 750_000,
		DeadlineMax: 1_500_000,
		WriteFrac:   0.2,
		CostRatio:   11,
	}
}

// fig11Algorithms builds the five §6 schedulers. The 2-D curves map the
// (priority, time-to-deadline) plane: Sweep-X puts priority on X so the
// sweep orders by deadline (EDF-like); Sweep-Y puts priority on Y so the
// sweep orders by priority (multi-queue-like); Hilbert and Peano balance
// both.
func fig11Algorithms(cfg Fig11Config, horizon int64) (map[string]func() (sched.Scheduler, error), []string) {
	mk2d := func(curve string, priorityOnY bool) func() (sched.Scheduler, error) {
		return func() (sched.Scheduler, error) {
			cv, err := sfc.New(curve, 2, uint32(cfg.Levels))
			if err != nil {
				return nil, err
			}
			// The 2-D grid is (time-to-deadline, priority) at enqueue: a
			// stationary square, so curves like Hilbert and Peano serve the
			// urgent-and-important corner first, which is the §6 trade-off
			// behavior. The horizon is the largest relative deadline.
			return core.NewScheduler(curve,
				core.EncapsulatorConfig{
					Levels:      cfg.Levels,
					UseDeadline: true, Curve2: cv, Curve2PriorityOnY: priorityOnY,
					DeadlineHorizon: horizon, DeadlineSlack: true,
				},
				core.DispatcherConfig{Mode: core.NonPreemptive}, 0)
		}
	}
	names := []string{"fcfs", "sweep-x", "sweep-y", "hilbert", "peano", "diagonal", "moore"}
	return map[string]func() (sched.Scheduler, error){
		"fcfs":     func() (sched.Scheduler, error) { return sched.NewFCFS(), nil },
		"sweep-x":  mk2d("sweep", false),
		"sweep-y":  mk2d("sweep", true),
		"hilbert":  mk2d("hilbert", false),
		"peano":    mk2d("peano", false),
		"diagonal": mk2d("diagonal", false),
		// moore closes the Hilbert loop, removing the open curve's
		// urgent-cell endpoint pathology (EXPERIMENTS.md).
		"moore": mk2d("moore", false),
	}, names
}

// Fig11 sweeps the number of concurrent editing streams and reports the
// weighted aggregate loss of each scheduler.
func Fig11(cfg Fig11Config) (*Result, error) {
	if len(cfg.Users) == 0 {
		cfg.Users = DefaultFig11Config().Users
	}
	m, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		return nil, err
	}
	algs, names := fig11Algorithms(cfg, cfg.DeadlineMax)
	weights := metrics.LinearWeights(cfg.Levels, cfg.CostRatio)

	xs := make([]float64, len(cfg.Users))
	for i, u := range cfg.Users {
		xs[i] = float64(u)
	}
	res := &Result{
		ID:     "fig11",
		Title:  "Aggregate weighted losses vs number of users (NewsByte5 workload)",
		XLabel: "users",
		YLabel: fmt.Sprintf("weighted loss cost (top:bottom weight %g:1)", cfg.CostRatio),
		X:      xs,
		Notes: []string{
			fmt.Sprintf("bitrate=%.0fkbps block=%dKB levels=%d deadlines=[%d,%d]ms writes=%.0f%% duration=%ds",
				cfg.BitRate/1000, cfg.BlockSize>>10, cfg.Levels,
				cfg.DeadlineMin/1000, cfg.DeadlineMax/1000, cfg.WriteFrac*100, cfg.Duration/1_000_000),
			"bitrate scaled from the paper's 1.5 Mbps so one simulated disk spans the same load band as the PanaViss RAID (see DESIGN.md)",
		},
	}
	// Traces are generated up front (into per-point arenas kept alive
	// below), then shared read-only by every cell of their sweep point.
	arenas := make([]workload.Arena, len(cfg.Users))
	traces := make([][]*core.Request, len(cfg.Users))
	for i, users := range cfg.Users {
		traces[i], err = workload.Streams{
			Seed:        cfg.Seed,
			Users:       users,
			Duration:    cfg.Duration,
			BitRate:     cfg.BitRate,
			BlockSize:   cfg.BlockSize,
			Levels:      cfg.Levels,
			DeadlineMin: cfg.DeadlineMin,
			DeadlineMax: cfg.DeadlineMax,
			Cylinders:   m.Cylinders,
			WriteFrac:   cfg.WriteFrac,
			Burst:       3,
		}.GenerateArena(&arenas[i])
		if err != nil {
			return nil, err
		}
	}
	// One cell per (users, scheduler), users-major like the sequential
	// loop this replaces.
	nAlg := len(names)
	costs, err := runner.Map(cfg.Workers, len(cfg.Users)*nAlg, func(i int) (float64, error) {
		s, err := algs[names[i%nAlg]]()
		if err != nil {
			return 0, err
		}
		var cost float64
		err = runReused(sim.Config{
			Disk: m, Scheduler: s,
			Options: sim.Options{DropLate: true, Dims: 1, Levels: cfg.Levels, Seed: cfg.Seed},
		}, traces[i/nAlg], func(r *sim.Result) error {
			cost, err = r.WeightedLossCost(0, weights)
			return err
		})
		return cost, err
	})
	if err != nil {
		return nil, err
	}
	for j, name := range names {
		ys := make([]float64, len(cfg.Users))
		for u := range cfg.Users {
			ys[u] = costs[u*nAlg+j]
		}
		if err := res.AddSeries(name, ys); err != nil {
			return nil, err
		}
	}
	return res, nil
}
