package sched

import "sfcsched/internal/core"

// FCFS serves requests strictly in arrival order. It is maximally fair to
// request order and indifferent to everything else; the paper normalizes
// priority-inversion counts against it.
type FCFS struct {
	queue
}

// NewFCFS returns a first-come-first-served scheduler.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Scheduler.
func (s *FCFS) Name() string { return "fcfs" }

// Add implements Scheduler.
func (s *FCFS) Add(r *core.Request, now int64, head int) { s.add(r) }

// Next implements Scheduler.
func (s *FCFS) Next(now int64, head int) *core.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	return s.removeAt(0)
}

// SSTF serves the request with the shortest seek distance from the current
// head position, recomputed at every dispatch.
type SSTF struct {
	queue
}

// NewSSTF returns a shortest-seek-time-first scheduler.
func NewSSTF() *SSTF { return &SSTF{} }

// Name implements Scheduler.
func (s *SSTF) Name() string { return "sstf" }

// Add implements Scheduler.
func (s *SSTF) Add(r *core.Request, now int64, head int) { s.add(r) }

// Next implements Scheduler.
func (s *SSTF) Next(now int64, head int) *core.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	best := 0
	for i, r := range s.reqs[1:] {
		if absDist(r.Cylinder, head) < absDist(s.reqs[best].Cylinder, head) {
			best = i + 1
		}
	}
	return s.removeAt(best)
}

// SCAN is the elevator algorithm (LOOK variant): the head sweeps in one
// direction serving requests in cylinder order and reverses when no
// requests remain ahead.
type SCAN struct {
	queue
	up bool
}

// NewSCAN returns an elevator scheduler sweeping upward first.
func NewSCAN() *SCAN { return &SCAN{up: true} }

// Name implements Scheduler.
func (s *SCAN) Name() string { return "scan" }

// Add implements Scheduler.
func (s *SCAN) Add(r *core.Request, now int64, head int) { s.add(r) }

// Next implements Scheduler.
func (s *SCAN) Next(now int64, head int) *core.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	if i := s.nearestAhead(head); i >= 0 {
		return s.removeAt(i)
	}
	s.up = !s.up
	if i := s.nearestAhead(head); i >= 0 {
		return s.removeAt(i)
	}
	return s.removeAt(0) // unreachable with a non-empty queue
}

// nearestAhead returns the index of the closest request at or beyond the
// head in the current direction, or -1.
func (s *SCAN) nearestAhead(head int) int {
	best, bestD := -1, int(^uint(0)>>1)
	for i, r := range s.reqs {
		var d int
		if s.up {
			d = r.Cylinder - head
		} else {
			d = head - r.Cylinder
		}
		if d >= 0 && d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// CSCAN is the circular elevator: the head sweeps upward only, wrapping to
// the lowest pending cylinder when none remain ahead. Service order within
// one sweep equals increasing cyclic distance ahead of the head.
type CSCAN struct {
	queue
}

// NewCSCAN returns a circular-scan scheduler.
func NewCSCAN() *CSCAN { return &CSCAN{} }

// Name implements Scheduler.
func (s *CSCAN) Name() string { return "cscan" }

// Add implements Scheduler.
func (s *CSCAN) Add(r *core.Request, now int64, head int) { s.add(r) }

// Next implements Scheduler.
func (s *CSCAN) Next(now int64, head int) *core.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	best, bestD := 0, int(^uint(0)>>1)
	for i, r := range s.reqs {
		d := r.Cylinder - head
		if d < 0 {
			d += 1 << 30 // behind the head: next sweep
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return s.removeAt(best)
}
