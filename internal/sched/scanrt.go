package sched

import "sfcsched/internal/core"

// SCANRT (Kamel & Ito) keeps the queue in scan order and inserts an
// arriving request at its scan position only when doing so would not push
// any already-queued request past its deadline; otherwise the arrival is
// appended to the tail. Dispatch simply pops the queue front.
type SCANRT struct {
	reqs []*core.Request
	est  Estimator
}

// NewSCANRT returns a SCAN-RT scheduler using est for deadline-feasibility
// estimates.
func NewSCANRT(est Estimator) *SCANRT { return &SCANRT{est: est} }

// Name implements Scheduler.
func (s *SCANRT) Name() string { return "scan-rt" }

// Len implements Scheduler.
func (s *SCANRT) Len() int { return len(s.reqs) }

// Each implements Scheduler.
func (s *SCANRT) Each(visit func(*core.Request)) {
	for _, r := range s.reqs {
		visit(r)
	}
}

// Add implements Scheduler.
func (s *SCANRT) Add(r *core.Request, now int64, head int) {
	pos := scanInsertPos(s.reqs, r, head)
	cand := make([]*core.Request, 0, len(s.reqs)+1)
	cand = append(cand, s.reqs[:pos]...)
	cand = append(cand, r)
	cand = append(cand, s.reqs[pos:]...)
	if s.feasible(cand, now, head) {
		s.reqs = cand
		return
	}
	s.reqs = append(s.reqs, r)
}

// feasible simulates serving reqs in order from (now, head) and reports
// whether every deadline is met at service start.
func (s *SCANRT) feasible(reqs []*core.Request, now int64, head int) bool {
	t := now
	h := head
	for _, r := range reqs {
		if t > effDeadline(r) {
			return false
		}
		t += s.est(h, r.Cylinder, r.Size)
		h = r.Cylinder
	}
	return true
}

// Next implements Scheduler.
func (s *SCANRT) Next(now int64, head int) *core.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	r := s.reqs[0]
	s.reqs = s.reqs[1:]
	return r
}
