package sched

import "sfcsched/internal/core"

// MultiQueue (Carey, Jauhari & Livny) keeps one queue per priority level
// and always serves the highest non-empty level; within a level requests
// are served in scan order. The request's Priorities[0] selects the level
// (0 = highest).
type MultiQueue struct {
	levels []queue
	n      int
	// Level extracts the queue level of a request (0 = highest priority).
	// Defaults to the first priority dimension; the §4.3 extension
	// replaces it with an SFC1 collapse of all dimensions.
	Level func(*core.Request) int
}

// NewMultiQueue returns a multi-queue scheduler with the given number of
// priority levels.
func NewMultiQueue(levels int) *MultiQueue {
	if levels < 1 {
		levels = 1
	}
	return &MultiQueue{levels: make([]queue, levels), Level: priorityOf}
}

// Name implements Scheduler.
func (s *MultiQueue) Name() string { return "multi-queue" }

// Len implements Scheduler.
func (s *MultiQueue) Len() int { return s.n }

// Each implements Scheduler.
func (s *MultiQueue) Each(visit func(*core.Request)) {
	for i := range s.levels {
		s.levels[i].Each(visit)
	}
}

// level clamps the configured level function's result into range.
func (s *MultiQueue) level(r *core.Request) int {
	l := s.Level(r)
	if l < 0 {
		l = 0
	}
	if l >= len(s.levels) {
		l = len(s.levels) - 1
	}
	return l
}

// Add implements Scheduler.
func (s *MultiQueue) Add(r *core.Request, now int64, head int) {
	s.levels[s.level(r)].add(r)
	s.n++
}

// Next implements Scheduler.
func (s *MultiQueue) Next(now int64, head int) *core.Request {
	for i := range s.levels {
		q := &s.levels[i]
		if q.Len() == 0 {
			continue
		}
		// Scan order within the level: nearest cyclically ahead.
		best, bestD := 0, int(^uint(0)>>1)
		for j, r := range q.reqs {
			d := r.Cylinder - head
			if d < 0 {
				d += 1 << 30
			}
			if d < bestD {
				best, bestD = j, d
			}
		}
		s.n--
		return q.removeAt(best)
	}
	return nil
}

// BUCKET (Haritsa, Carey & Livny) partitions requests into buckets by
// application value and serves the highest-value bucket first, EDF within a
// bucket. It ignores head position (it was designed for transaction
// scheduling), which is exactly the weakness the paper's SFC3 stage fixes.
type BUCKET struct {
	buckets map[int]*queue
	order   []int // distinct values, maintained sorted descending
	n       int
}

// NewBUCKET returns a value-bucket scheduler.
func NewBUCKET() *BUCKET { return &BUCKET{buckets: map[int]*queue{}} }

// Name implements Scheduler.
func (s *BUCKET) Name() string { return "bucket" }

// Len implements Scheduler.
func (s *BUCKET) Len() int { return s.n }

// Each implements Scheduler.
func (s *BUCKET) Each(visit func(*core.Request)) {
	for _, v := range s.order {
		s.buckets[v].Each(visit)
	}
}

// Add implements Scheduler.
func (s *BUCKET) Add(r *core.Request, now int64, head int) {
	q, ok := s.buckets[r.Value]
	if !ok {
		q = &queue{}
		s.buckets[r.Value] = q
		s.insertValue(r.Value)
	}
	q.add(r)
	s.n++
}

func (s *BUCKET) insertValue(v int) {
	i := 0
	for i < len(s.order) && s.order[i] > v {
		i++
	}
	s.order = append(s.order, 0)
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = v
}

// Next implements Scheduler.
func (s *BUCKET) Next(now int64, head int) *core.Request {
	for _, v := range s.order {
		q := s.buckets[v]
		if q.Len() == 0 {
			continue
		}
		best := 0
		for i, r := range q.reqs[1:] {
			if effDeadline(r) < effDeadline(q.reqs[best]) {
				best = i + 1
			}
		}
		s.n--
		return q.removeAt(best)
	}
	return nil
}
