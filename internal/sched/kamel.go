package sched

import "sfcsched/internal/core"

// Kamel implements the deadline-driven multi-priority algorithm of Kamel,
// Niranjan & Ghandeharizadeh (ICDE 2000), the paper's reference [12]: an
// arriving request is inserted at its scan position when that keeps every
// queued deadline feasible; otherwise the scheduler moves the lowest
// priority queued request to the tail and retries, so deadline pressure is
// absorbed by the least important work. Tail-parked requests stay out of
// the scan order and are served only after the active queue drains.
type Kamel struct {
	active []*core.Request // scan-ordered, feasibility-protected
	parked []*core.Request // sacrificed low-priority requests
	est    Estimator
	// MaxEvictions bounds the evict-and-retry loop per insertion.
	MaxEvictions int
	// Priority extracts the absolute priority level used to pick eviction
	// victims (0 = highest). Defaults to the request's first priority
	// dimension; the §4.3 extension replaces it with an SFC1 collapse.
	Priority func(*core.Request) int
}

// NewKamel returns the deadline-driven multi-priority scheduler.
func NewKamel(est Estimator) *Kamel {
	return &Kamel{est: est, MaxEvictions: 8, Priority: priorityOf}
}

// Name implements Scheduler.
func (s *Kamel) Name() string { return "kamel-ddmp" }

// Len implements Scheduler.
func (s *Kamel) Len() int { return len(s.active) + len(s.parked) }

// Each implements Scheduler.
func (s *Kamel) Each(visit func(*core.Request)) {
	for _, r := range s.active {
		visit(r)
	}
	for _, r := range s.parked {
		visit(r)
	}
}

// priorityOf returns the request's primary priority level (0 = highest).
func priorityOf(r *core.Request) int {
	if len(r.Priorities) == 0 {
		return 0
	}
	return r.Priorities[0]
}

// Add implements Scheduler.
func (s *Kamel) Add(r *core.Request, now int64, head int) {
	for ev := 0; ; ev++ {
		pos := scanInsertPos(s.active, r, head)
		cand := make([]*core.Request, 0, len(s.active)+1)
		cand = append(cand, s.active[:pos]...)
		cand = append(cand, r)
		cand = append(cand, s.active[pos:]...)
		if s.feasible(cand, now, head) || ev >= s.MaxEvictions || len(s.active) == 0 {
			s.active = cand
			return
		}
		// Park the lowest-priority active request at the tail and retry.
		low := 0
		for i, q := range s.active {
			if s.Priority(q) > s.Priority(s.active[low]) {
				low = i
			}
		}
		victim := s.active[low]
		s.active = append(s.active[:low], s.active[low+1:]...)
		s.parked = append(s.parked, victim)
	}
}

// scanInsertPos returns the insertion index keeping reqs in upward-sweep
// order (cyclic distance ahead of the head).
func scanInsertPos(reqs []*core.Request, r *core.Request, head int) int {
	key := func(c int) int {
		d := c - head
		if d < 0 {
			d += 1 << 30
		}
		return d
	}
	k := key(r.Cylinder)
	for i, q := range reqs {
		if key(q.Cylinder) > k {
			return i
		}
	}
	return len(reqs)
}

// feasible simulates serving reqs in order from (now, head) and reports
// whether every deadline is met at service start.
func (s *Kamel) feasible(reqs []*core.Request, now int64, head int) bool {
	t := now
	h := head
	for _, r := range reqs {
		if t > effDeadline(r) {
			return false
		}
		t += s.est(h, r.Cylinder, r.Size)
		h = r.Cylinder
	}
	return true
}

// Next implements Scheduler.
func (s *Kamel) Next(now int64, head int) *core.Request {
	if len(s.active) > 0 {
		r := s.active[0]
		s.active = s.active[1:]
		return r
	}
	if len(s.parked) > 0 {
		r := s.parked[0]
		s.parked = s.parked[1:]
		return r
	}
	return nil
}
