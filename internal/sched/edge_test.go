package sched

import (
	"testing"

	"sfcsched/internal/core"
)

func TestSCANEDFZeroQuantumIsEDFWithSeekTies(t *testing.T) {
	s := NewSCANEDF(0)
	s.Add(rq(1, 3000, 500_000), 0, 0)
	s.Add(rq(2, 100, 100_000), 0, 0)
	if r := s.Next(0, 0); r.ID != 2 {
		t.Fatalf("exact deadlines should order first: got %d", r.ID)
	}
	// Identical deadlines: scan order breaks the tie.
	s2 := NewSCANEDF(0)
	s2.Add(rq(1, 3000, 500_000), 0, 0)
	s2.Add(rq(2, 100, 500_000), 0, 0)
	if r := s2.Next(0, 0); r.ID != 2 {
		t.Fatalf("tie should break by scan position: got %d", r.ID)
	}
}

func TestSSEDOWindowLargerThanQueue(t *testing.T) {
	s := NewSSEDO(100, 1.5)
	s.Add(rq(1, 100, 900_000), 0, 0)
	s.Add(rq(2, 200, 100_000), 0, 0)
	if r := s.Next(0, 150); r == nil {
		t.Fatal("oversized window must still dispatch")
	}
	if s.Next(0, 150) == nil || s.Next(0, 150) != nil {
		t.Fatal("queue accounting broken")
	}
}

func TestSSEDODefaults(t *testing.T) {
	s := NewSSEDO(0, 0)
	if s.Window != 5 || s.Beta != 1.5 {
		t.Errorf("defaults = %d/%v, want 5/1.5", s.Window, s.Beta)
	}
	v := NewSSEDV(-3, 7)
	if v.Window != 5 || v.Alpha != 0.8 {
		t.Errorf("ssedv defaults = %d/%v, want 5/0.8", v.Window, v.Alpha)
	}
}

func TestSCANRTHonorsQueueFrontOrder(t *testing.T) {
	// Whatever the insert decisions, dispatch is strictly front-to-back;
	// re-adding after a partial drain keeps the scan structure coherent.
	s := NewSCANRT(testEstimator())
	for _, c := range []int{500, 1500, 1000} {
		s.Add(rq(uint64(c), c, 60_000_000), 0, 0)
	}
	first := s.Next(0, 0)
	if first.ID != 500 {
		t.Fatalf("scan front should be 500, got %d", first.ID)
	}
	s.Add(rq(700, 700, 60_000_000), 0, first.Cylinder)
	if r := s.Next(0, first.Cylinder); r.ID != 700 {
		t.Fatalf("want in-scan insertion 700, got %d", r.ID)
	}
}

func TestKamelMaxEvictionsBounds(t *testing.T) {
	s := NewKamel(testEstimator())
	s.MaxEvictions = 1
	// Flood with tight deadlines: the eviction loop must terminate and
	// conserve all requests even when feasibility is hopeless.
	for i := 0; i < 40; i++ {
		s.Add(&core.Request{
			ID: uint64(i + 1), Cylinder: (i * 379) % 3832,
			Deadline: 1_000, Size: 64 << 10,
			Priorities: []int{i % 8},
		}, 0, 0)
	}
	if s.Len() != 40 {
		t.Fatalf("Len = %d, want 40", s.Len())
	}
	seen := 0
	head := 0
	for r := s.Next(0, head); r != nil; r = s.Next(0, head) {
		seen++
		head = r.Cylinder
	}
	if seen != 40 {
		t.Errorf("dispatched %d of 40", seen)
	}
}

func TestFDSCANSingleRequest(t *testing.T) {
	s := NewFDSCAN(testEstimator())
	s.Add(rq(1, 2000, 0), 0, 0) // no deadline at all
	if r := s.Next(0, 0); r == nil || r.ID != 1 {
		t.Fatal("single deadline-less request must dispatch")
	}
}

func TestBUCKETSeekWindowInteraction(t *testing.T) {
	// BUCKETSeek's partitions defer whole value bands by sweeps; a
	// same-band later-cylinder arrival during the sweep slots in ahead of
	// lower bands.
	s, err := NewBUCKETSeek(4, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(&core.Request{ID: 1, Value: 1, Cylinder: 500}, 0, 0)
	s.Add(&core.Request{ID: 2, Value: 4, Cylinder: 900}, 0, 0)
	first := s.Next(0, 0)
	if first.ID != 2 {
		t.Fatalf("top band should lead, got %d", first.ID)
	}
	s.Add(&core.Request{ID: 3, Value: 4, Cylinder: 950}, 0, first.Cylinder)
	if r := s.Next(0, first.Cylinder); r.ID != 3 {
		t.Fatalf("same-band scan insertion should precede deferred bands, got %d", r.ID)
	}
}
