package sched

import (
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/sfc"
)

func TestSFC1PriorityCollapses(t *testing.T) {
	curve := sfc.MustNew("sweep", 2, 8)
	pf, err := SFC1Priority(curve, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep is lexicographic with dimension 1 most significant.
	hi := pf(&core.Request{Priorities: []int{7, 0}})
	lo := pf(&core.Request{Priorities: []int{0, 7}})
	if hi >= lo {
		t.Errorf("collapse not lexicographic: %d >= %d", hi, lo)
	}
	for _, p := range [][]int{{0, 0}, {7, 7}, {3, 4}} {
		if l := pf(&core.Request{Priorities: p}); l < 0 || l >= 8 {
			t.Errorf("level %d out of range for %v", l, p)
		}
	}
}

func TestSFC1PriorityValidation(t *testing.T) {
	if _, err := SFC1Priority(nil, 8, 8); err == nil {
		t.Error("expected error for nil curve")
	}
	if _, err := SFC1Priority(sfc.MustNew("sweep", 2, 8), 0, 8); err == nil {
		t.Error("expected error for zero levels")
	}
}

func TestKamelMultiEvictsBySFC1Order(t *testing.T) {
	curve := sfc.MustNew("sweep", 2, 8)
	k, err := NewKamelMulti(testEstimator(), curve, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Two requests whose single-dimension priorities tie but whose second
	// (most significant for sweep) dimension differs: the collapse must
	// pick the one with the worse second dimension as eviction victim.
	// The tight request is feasible behind one queued request but not two,
	// so exactly one eviction happens.
	keep := &core.Request{ID: 1, Priorities: []int{3, 0}, Cylinder: 1000, Deadline: 5_000_000, Size: 64 << 10}
	evict := &core.Request{ID: 2, Priorities: []int{3, 7}, Cylinder: 1500, Deadline: 5_000_000, Size: 64 << 10}
	tight := &core.Request{ID: 3, Priorities: []int{0, 0}, Cylinder: 3000, Deadline: 30_000, Size: 4 << 10}
	k.Add(keep, 0, 0)
	k.Add(evict, 0, 0)
	k.Add(tight, 0, 0) // forces the eviction
	var order []uint64
	head := 0
	for r := k.Next(0, head); r != nil; r = k.Next(0, head) {
		order = append(order, r.ID)
		head = r.Cylinder
	}
	want := []uint64{1, 3, 2} // scan order, SFC1-lowest victim parked last
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMultiQueueMultiUsesAllDimensions(t *testing.T) {
	curve := sfc.MustNew("sweep", 2, 4)
	m, err := NewMultiQueueMulti(curve, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	// With a native multi-queue on Priorities[0], these two requests tie.
	// The SFC1 extension separates them by the second dimension.
	a := &core.Request{ID: 1, Priorities: []int{2, 3}}
	b := &core.Request{ID: 2, Priorities: []int{2, 0}}
	m.Add(a, 0, 0)
	m.Add(b, 0, 0)
	if r := m.Next(0, 0); r.ID != 2 {
		t.Errorf("want request 2 (better second dimension) first, got %d", r.ID)
	}
}

func TestBUCKETSeekPartitionsByValue(t *testing.T) {
	s, err := NewBUCKETSeek(10, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// A far high-value request beats a near low-value one (different
	// partitions), but within a value band the scan order rules.
	s.Add(&core.Request{ID: 1, Value: 10, Cylinder: 900}, 0, 0)
	s.Add(&core.Request{ID: 2, Value: 1, Cylinder: 10}, 0, 0)
	s.Add(&core.Request{ID: 3, Value: 10, Cylinder: 500}, 0, 0)
	want := []uint64{3, 1, 2} // band 10 in scan order (500 then 900), band 1 last
	head := 0
	for _, id := range want {
		r := s.Next(0, head)
		if r == nil || r.ID != id {
			t.Fatalf("want %d, got %v", id, r)
		}
		head = r.Cylinder
	}
}

func TestBUCKETSeekScanWithinBand(t *testing.T) {
	s, err := NewBUCKETSeek(4, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// R = 1: one partition, pure cyclic scan regardless of value.
	s.Add(&core.Request{ID: 1, Value: 4, Cylinder: 800}, 0, 100)
	s.Add(&core.Request{ID: 2, Value: 1, Cylinder: 50}, 0, 100)
	s.Add(&core.Request{ID: 3, Value: 2, Cylinder: 400}, 0, 100)
	want := []uint64{3, 1, 2} // ahead of head 100: 400, 800, wrap to 50
	head := 100
	for _, id := range want {
		r := s.Next(0, head)
		if r.ID != id {
			t.Fatalf("want %d, got %d", id, r.ID)
		}
		head = r.Cylinder
	}
}

func TestBUCKETSeekContract(t *testing.T) {
	s, err := NewBUCKETSeek(8, 3, 3832)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "bucket-seek" {
		t.Errorf("name = %q", s.Name())
	}
	if s.Next(0, 0) != nil {
		t.Error("empty queue should return nil")
	}
	s.Add(&core.Request{ID: 1, Value: 99, Cylinder: -5}, 0, 0) // clamped
	s.Add(&core.Request{ID: 2, Value: 0, Cylinder: 9999}, 0, 0)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	seen := 0
	s.Each(func(*core.Request) { seen++ })
	if seen != 2 {
		t.Errorf("Each visited %d", seen)
	}
	if s.Next(0, 0) == nil || s.Next(0, 0) == nil {
		t.Error("both requests should dispatch")
	}
}

func TestBUCKETSeekValidation(t *testing.T) {
	for _, c := range [][3]int{{0, 1, 10}, {5, 0, 10}, {5, 1, 0}} {
		if _, err := NewBUCKETSeek(c[0], c[1], c[2]); err == nil {
			t.Errorf("expected error for %v", c)
		}
	}
}
