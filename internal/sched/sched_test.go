package sched

import (
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
)

// The Cascaded-SFC scheduler must satisfy the same contract as the
// baselines so the simulator can drive either.
var _ Scheduler = (*core.Scheduler)(nil)

var allConstructors = []func() Scheduler{
	func() Scheduler { return NewFCFS() },
	func() Scheduler { return NewSSTF() },
	func() Scheduler { return NewSCAN() },
	func() Scheduler { return NewCSCAN() },
	func() Scheduler { return NewEDF() },
	func() Scheduler { return NewSCANEDF(50_000) },
	func() Scheduler { return NewFDSCAN(testEstimator()) },
	func() Scheduler { return NewSCANRT(testEstimator()) },
	func() Scheduler { return NewSSEDO(0, 0) },
	func() Scheduler { return NewSSEDV(0, 0) },
	func() Scheduler { return NewMultiQueue(8) },
	func() Scheduler { return NewBUCKET() },
	func() Scheduler { return NewKamel(testEstimator()) },
}

func testEstimator() Estimator {
	m := disk.MustModel(disk.QuantumXP32150Params())
	return m.ServiceTime
}

func rq(id uint64, cyl int, deadline int64) *core.Request {
	return &core.Request{ID: id, Cylinder: cyl, Deadline: deadline, Size: 64 << 10}
}

func TestAllSchedulersBasicContract(t *testing.T) {
	for _, mk := range allConstructors {
		s := mk()
		if s.Name() == "" {
			t.Errorf("%T: empty name", s)
		}
		if s.Next(0, 0) != nil {
			t.Errorf("%s: Next on empty queue should be nil", s.Name())
		}
		reqs := []*core.Request{
			{ID: 1, Cylinder: 100, Deadline: 500_000, Priorities: []int{2}, Value: 3},
			{ID: 2, Cylinder: 2000, Deadline: 300_000, Priorities: []int{0}, Value: 9},
			{ID: 3, Cylinder: 700, Deadline: 900_000, Priorities: []int{5}, Value: 1},
		}
		for _, r := range reqs {
			s.Add(r, 0, 0)
		}
		if s.Len() != 3 {
			t.Errorf("%s: Len = %d, want 3", s.Name(), s.Len())
		}
		seen := map[uint64]bool{}
		s.Each(func(r *core.Request) { seen[r.ID] = true })
		if len(seen) != 3 {
			t.Errorf("%s: Each visited %d, want 3", s.Name(), len(seen))
		}
		got := map[uint64]bool{}
		head := 0
		for i := 0; i < 3; i++ {
			r := s.Next(int64(i)*10_000, head)
			if r == nil {
				t.Fatalf("%s: Next returned nil with %d queued", s.Name(), s.Len())
			}
			got[r.ID] = true
			head = r.Cylinder
		}
		if len(got) != 3 || s.Len() != 0 {
			t.Errorf("%s: dispatched %d distinct, Len now %d", s.Name(), len(got), s.Len())
		}
		if s.Next(0, head) != nil {
			t.Errorf("%s: drained queue should return nil", s.Name())
		}
	}
}

func TestFCFSOrder(t *testing.T) {
	s := NewFCFS()
	for i := uint64(1); i <= 4; i++ {
		s.Add(rq(i, int(i*500), 0), 0, 0)
	}
	for i := uint64(1); i <= 4; i++ {
		if r := s.Next(0, 0); r.ID != i {
			t.Fatalf("want %d, got %d", i, r.ID)
		}
	}
}

func TestSSTFPicksNearest(t *testing.T) {
	s := NewSSTF()
	s.Add(rq(1, 3000, 0), 0, 0)
	s.Add(rq(2, 1100, 0), 0, 0)
	s.Add(rq(3, 950, 0), 0, 0)
	if r := s.Next(0, 1000); r.ID != 3 {
		t.Fatalf("head 1000: want 3 (dist 50), got %d", r.ID)
	}
	if r := s.Next(0, 950); r.ID != 2 {
		t.Fatalf("head 950: want 2, got %d", r.ID)
	}
}

func TestSCANElevator(t *testing.T) {
	s := NewSCAN()
	for _, c := range []int{500, 1500, 800, 200} {
		s.Add(rq(uint64(c), c, 0), 0, 0)
	}
	head := 600
	var order []int
	for i := 0; i < 4; i++ {
		r := s.Next(0, head)
		order = append(order, r.Cylinder)
		head = r.Cylinder
	}
	want := []int{800, 1500, 500, 200} // up first, then reverse
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCSCANWrapsAround(t *testing.T) {
	s := NewCSCAN()
	for _, c := range []int{500, 1500, 800} {
		s.Add(rq(uint64(c), c, 0), 0, 0)
	}
	head := 600
	var order []int
	for i := 0; i < 3; i++ {
		r := s.Next(0, head)
		order = append(order, r.Cylinder)
		head = r.Cylinder
	}
	want := []int{800, 1500, 500} // upward sweep, wrap to lowest
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEDFOrder(t *testing.T) {
	s := NewEDF()
	s.Add(rq(1, 0, 900_000), 0, 0)
	s.Add(rq(2, 0, 100_000), 0, 0)
	s.Add(rq(3, 0, 0), 0, 0) // no deadline: last
	s.Add(rq(4, 0, 500_000), 0, 0)
	want := []uint64{2, 4, 1, 3}
	for _, id := range want {
		if r := s.Next(0, 0); r.ID != id {
			t.Fatalf("want %d, got %d", id, r.ID)
		}
	}
}

func TestSCANEDFBatchesByDeadline(t *testing.T) {
	s := NewSCANEDF(100_000)
	// Two deadline batches; within the first, scan order from head 0.
	s.Add(rq(1, 3000, 150_000), 0, 0)
	s.Add(rq(2, 1000, 160_000), 0, 0)
	s.Add(rq(3, 2000, 120_000), 0, 0)
	s.Add(rq(4, 100, 900_000), 0, 0)
	head := 0
	var order []uint64
	for i := 0; i < 4; i++ {
		r := s.Next(0, head)
		order = append(order, r.ID)
		head = r.Cylinder
	}
	want := []uint64{2, 3, 1, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFDSCANPrefersFeasible(t *testing.T) {
	s := NewFDSCAN(testEstimator())
	// Request 1's deadline is already hopeless; request 2 is feasible.
	s.Add(rq(1, 3000, 1_000), 0, 0)
	s.Add(rq(2, 500, 500_000), 0, 0)
	if r := s.Next(0, 0); r.ID != 2 {
		t.Fatalf("want feasible request 2, got %d", r.ID)
	}
}

func TestFDSCANServesEnRoute(t *testing.T) {
	s := NewFDSCAN(testEstimator())
	s.Add(rq(1, 3000, 200_000), 0, 0) // earliest feasible target
	s.Add(rq(2, 1000, 900_000), 0, 0) // en route to it
	if r := s.Next(0, 0); r.ID != 2 {
		t.Fatalf("want en-route request 2, got %d", r.ID)
	}
}

func TestFDSCANFallbackWhenNoneFeasible(t *testing.T) {
	s := NewFDSCAN(testEstimator())
	// Neither deadline is reachable; the sweep targets the earliest one
	// (request 2 at cylinder 3500) and serves request 1 en route to it.
	s.Add(rq(1, 3000, 2_000), 0, 0)
	s.Add(rq(2, 3500, 1_000), 0, 0)
	if r := s.Next(0, 0); r.ID != 1 {
		t.Fatalf("want en-route request 1, got %d", r.ID)
	}
	if r := s.Next(0, 3000); r.ID != 2 {
		t.Fatalf("want target request 2, got %d", r.ID)
	}
}

func TestSCANRTInsertsInScanOrder(t *testing.T) {
	s := NewSCANRT(testEstimator())
	s.Add(rq(1, 2000, 5_000_000), 0, 0)
	s.Add(rq(2, 1000, 5_000_000), 0, 0) // fits ahead of 1 in scan order
	if r := s.Next(0, 0); r.ID != 2 {
		t.Fatalf("want scan-ordered request 2, got %d", r.ID)
	}
}

func TestSCANRTAppendsWhenInfeasible(t *testing.T) {
	s := NewSCANRT(testEstimator())
	// Request 1 is tight: any insertion ahead of it would miss it.
	s.Add(rq(1, 2000, 16_000), 0, 0)
	s.Add(rq(2, 1000, 5_000_000), 0, 0)
	if r := s.Next(0, 0); r.ID != 1 {
		t.Fatalf("infeasible insertion should append: want 1 first, got %d", r.ID)
	}
}

func TestSSEDOBalancesSeekAndDeadline(t *testing.T) {
	s := NewSSEDO(5, 1.5)
	// Earliest deadline is far away; a slightly later deadline is at the
	// head. The close one should win under the rank penalty.
	s.Add(rq(1, 3800, 400_000), 0, 0)
	s.Add(rq(2, 10, 450_000), 0, 0)
	if r := s.Next(0, 0); r.ID != 2 {
		t.Fatalf("want near request 2, got %d", r.ID)
	}
	// But a much earlier deadline wins even when far.
	s2 := NewSSEDO(5, 1.5)
	s2.Add(rq(1, 3800, 50_000), 0, 0)
	s2.Add(rq(2, 3700, 450_000), 0, 0)
	if r := s2.Next(0, 3790); r.ID != 1 {
		t.Fatalf("similar seeks: want earlier deadline 1, got %d", r.ID)
	}
}

func TestSSEDVBlendsSlackAndSeek(t *testing.T) {
	s := NewSSEDV(5, 0.8)
	s.Add(rq(1, 2000, 100_000), 0, 0) // tight deadline, far
	s.Add(rq(2, 10, 2_000_000), 0, 0) // slack deadline, near
	if r := s.Next(0, 0); r.ID != 1 {
		t.Fatalf("alpha=0.8 should favor slack: want 1, got %d", r.ID)
	}
	s2 := NewSSEDV(5, 0.01)
	s2.Add(rq(1, 2000, 100_000), 0, 0)
	s2.Add(rq(2, 10, 2_000_000), 0, 0)
	if r := s2.Next(0, 0); r.ID != 2 {
		t.Fatalf("alpha~0 should favor seek: want 2, got %d", r.ID)
	}
}

func TestMultiQueueServesHighestLevel(t *testing.T) {
	s := NewMultiQueue(4)
	s.Add(&core.Request{ID: 1, Priorities: []int{3}, Cylinder: 10}, 0, 0)
	s.Add(&core.Request{ID: 2, Priorities: []int{1}, Cylinder: 3000}, 0, 0)
	s.Add(&core.Request{ID: 3, Priorities: []int{1}, Cylinder: 500}, 0, 0)
	// Level 1 first; within it, scan order from head 0: 500 then 3000.
	want := []uint64{3, 2, 1}
	head := 0
	for _, id := range want {
		r := s.Next(0, head)
		if r.ID != id {
			t.Fatalf("want %d, got %d", id, r.ID)
		}
		head = r.Cylinder
	}
}

func TestMultiQueueClampsLevels(t *testing.T) {
	s := NewMultiQueue(4)
	s.Add(&core.Request{ID: 1, Priorities: []int{99}}, 0, 0)
	s.Add(&core.Request{ID: 2}, 0, 0) // no priorities -> level 0
	if r := s.Next(0, 0); r.ID != 2 {
		t.Fatalf("want clamped level-0 request 2, got %d", r.ID)
	}
}

func TestBUCKETServesHighestValueThenEDF(t *testing.T) {
	s := NewBUCKET()
	s.Add(&core.Request{ID: 1, Value: 1, Deadline: 100}, 0, 0)
	s.Add(&core.Request{ID: 2, Value: 9, Deadline: 900}, 0, 0)
	s.Add(&core.Request{ID: 3, Value: 9, Deadline: 300}, 0, 0)
	want := []uint64{3, 2, 1}
	for _, id := range want {
		if r := s.Next(0, 0); r.ID != id {
			t.Fatalf("want %d, got %d", id, r.ID)
		}
	}
}

func TestKamelEvictsLowestPriority(t *testing.T) {
	s := NewKamel(testEstimator())
	// A low-priority request sits in the queue; a tight high-priority
	// arrival cannot fit behind it, so the low one is parked at the tail.
	lo := &core.Request{ID: 1, Priorities: []int{7}, Cylinder: 1000, Deadline: 5_000_000, Size: 64 << 10}
	hi := &core.Request{ID: 2, Priorities: []int{0}, Cylinder: 2000, Deadline: 16_000, Size: 64 << 10}
	s.Add(lo, 0, 0)
	s.Add(hi, 0, 0)
	if r := s.Next(0, 0); r.ID != 2 {
		t.Fatalf("want high-priority 2 first, got %d", r.ID)
	}
	if r := s.Next(0, 2000); r.ID != 1 {
		t.Fatalf("want parked 1 next, got %d", r.ID)
	}
}

func TestKamelKeepsScanOrderWhenFeasible(t *testing.T) {
	s := NewKamel(testEstimator())
	s.Add(&core.Request{ID: 1, Priorities: []int{0}, Cylinder: 2000, Deadline: 5_000_000, Size: 64 << 10}, 0, 0)
	s.Add(&core.Request{ID: 2, Priorities: []int{7}, Cylinder: 1000, Deadline: 5_000_000, Size: 64 << 10}, 0, 0)
	// Both feasible: scan order wins despite priorities.
	if r := s.Next(0, 0); r.ID != 2 {
		t.Fatalf("want scan-ordered 2 first, got %d", r.ID)
	}
}

// Regression: removeAt must nil out the vacated tail slot so the slice's
// spare capacity does not pin served requests in memory for the rest of a
// long trace.
func TestRemoveAtClearsVacatedSlot(t *testing.T) {
	q := &queue{}
	a, b, c := rq(1, 0, 0), rq(2, 0, 0), rq(3, 0, 0)
	q.add(a)
	q.add(b)
	q.add(c)
	if got := q.removeAt(1); got != b {
		t.Fatalf("removeAt(1) = %v, want request 2", got)
	}
	if q.Len() != 2 || q.reqs[0] != a || q.reqs[1] != c {
		t.Fatalf("queue after removal = %v, want [1 3]", q.reqs)
	}
	if tail := q.reqs[:3][2]; tail != nil {
		t.Errorf("vacated slot still references request %d", tail.ID)
	}
}
