package sched

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/sfc"
)

// This file implements the paper's §4.3 extensibility recipes: existing
// schedulers gain capabilities they were not designed for by borrowing one
// stage of the cascade.
//
//   - A single-priority scheduler (Kamel's deadline-driven algorithm [12],
//     the multi-queue scheduler [4]) handles multiple priority types by
//     collapsing them through SFC1 first.
//   - A seek-blind scheduler (BUCKET [9]) gains disk-utilization awareness
//     by passing its output through SFC3 with the cylinder position.

// SFC1Priority returns a function that collapses a request's D priority
// dimensions into one absolute priority level in [0, outLevels) using the
// given curve — §4.3's "the multiple priorities [are] entered to SFC1 and
// the output is considered the absolute priority of the disk request".
func SFC1Priority(curve sfc.Curve, levels, outLevels int) (func(*core.Request) int, error) {
	if curve == nil {
		return nil, fmt.Errorf("sched: SFC1Priority needs a curve")
	}
	if levels < 1 || outLevels < 1 {
		return nil, fmt.Errorf("sched: invalid level counts %d/%d", levels, outLevels)
	}
	enc, err := core.NewEncapsulator(core.EncapsulatorConfig{Curve1: curve, Levels: levels})
	if err != nil {
		return nil, err
	}
	max := enc.MaxValue()
	return func(r *core.Request) int {
		v := enc.Value(r, 0, 0)
		return int(v * uint64(outLevels) / max)
	}, nil
}

// NewKamelMulti returns Kamel's deadline-driven scheduler extended to
// multi-dimensional priorities: eviction victims are chosen by the SFC1
// collapse of their priority vector instead of a single native level.
func NewKamelMulti(est Estimator, curve sfc.Curve, levels, outLevels int) (*Kamel, error) {
	pf, err := SFC1Priority(curve, levels, outLevels)
	if err != nil {
		return nil, err
	}
	k := NewKamel(est)
	k.Priority = pf
	return k, nil
}

// NewMultiQueueMulti returns the multi-queue scheduler extended to
// multi-dimensional priorities via SFC1.
func NewMultiQueueMulti(curve sfc.Curve, levels, outLevels int) (*MultiQueue, error) {
	pf, err := SFC1Priority(curve, levels, outLevels)
	if err != nil {
		return nil, err
	}
	m := NewMultiQueue(outLevels)
	m.Level = pf
	return m, nil
}

// BUCKETSeek is the BUCKET value scheduler extended with the cascade's
// SFC3 stage: the bucket rank becomes the X coordinate of the
// R-partitioned cyclic scan, so each value band is served in sweep order
// instead of pure EDF — §4.3's "take the output of the BUCKET algorithm
// and enter it into SFC3 ... with the cylinder position".
type BUCKETSeek struct {
	disp      *core.Dispatcher
	r         int
	cylinders int
	values    int

	progress uint64
	lastHead int
}

// NewBUCKETSeek returns a seek-aware BUCKET over the given value range
// (requests carry Value in [1, values]) with R scan partitions.
func NewBUCKETSeek(values, r, cylinders int) (*BUCKETSeek, error) {
	if values < 1 || r < 1 || cylinders < 1 {
		return nil, fmt.Errorf("sched: invalid BUCKETSeek config values=%d r=%d cylinders=%d", values, r, cylinders)
	}
	return &BUCKETSeek{
		disp:      core.MustDispatcher(core.DispatcherConfig{Mode: core.FullyPreemptive}),
		r:         r,
		cylinders: cylinders,
		values:    values,
	}, nil
}

// Name implements Scheduler.
func (s *BUCKETSeek) Name() string { return "bucket-seek" }

// Len implements Scheduler.
func (s *BUCKETSeek) Len() int { return s.disp.Len() }

// Each implements Scheduler.
func (s *BUCKETSeek) Each(visit func(*core.Request)) { s.disp.Each(visit) }

// observe advances the absolute sweep timeline (see core.Scheduler).
func (s *BUCKETSeek) observe(head int) int {
	if head < 0 {
		head = 0
	}
	if head >= s.cylinders {
		head = s.cylinders - 1
	}
	s.progress += uint64((head - s.lastHead + s.cylinders) % s.cylinders)
	s.lastHead = head
	return head
}

// Add implements Scheduler. Higher Value means a more important request
// and therefore an earlier partition.
func (s *BUCKETSeek) Add(r *core.Request, now int64, head int) {
	head = s.observe(head)
	v := r.Value
	if v < 1 {
		v = 1
	}
	if v > s.values {
		v = s.values
	}
	pn := uint64(s.values-v) * uint64(s.r) / uint64(s.values)
	cyl := r.Cylinder
	if cyl < 0 {
		cyl = 0
	}
	if cyl >= s.cylinders {
		cyl = s.cylinders - 1
	}
	ahead := uint64((cyl - head + s.cylinders) % s.cylinders)
	yv := s.progress + ahead + pn*uint64(s.cylinders)
	s.disp.Add(r, yv*uint64(s.values)+uint64(s.values-v))
}

// Next implements Scheduler.
func (s *BUCKETSeek) Next(now int64, head int) *core.Request {
	s.observe(head)
	return s.disp.Next()
}
