package sched

import (
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/sfc"
	"sfcsched/internal/stats"
)

// allSchedulers builds one instance of every scheduler in the package,
// including the §4.3 extensions and the Cascaded-SFC scheduler itself.
func allSchedulers(t *testing.T) map[string]Scheduler {
	t.Helper()
	est := testEstimator()
	km, err := NewKamelMulti(est, sfc.MustNew("hilbert", 2, 8), 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	mqm, err := NewMultiQueueMulti(sfc.MustNew("peano", 2, 9), 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := NewBUCKETSeek(8, 3, 3832)
	if err != nil {
		t.Fatal(err)
	}
	cascaded := core.MustScheduler("cascaded", core.EncapsulatorConfig{
		Curve1: sfc.MustNew("hilbert", 2, 8), Levels: 8,
		UseDeadline: true, F: 1, DeadlineHorizon: 1 << 40, DeadlineSpan: 700_000,
		UseCylinder: true, R: 3, Cylinders: 3832,
	}, core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true, ER: true}, 0.05)
	return map[string]Scheduler{
		"fcfs":        NewFCFS(),
		"sstf":        NewSSTF(),
		"scan":        NewSCAN(),
		"cscan":       NewCSCAN(),
		"edf":         NewEDF(),
		"scan-edf":    NewSCANEDF(50_000),
		"fd-scan":     NewFDSCAN(est),
		"scan-rt":     NewSCANRT(est),
		"ssedo":       NewSSEDO(0, 0),
		"ssedv":       NewSSEDV(0, 0),
		"multi-queue": NewMultiQueue(8),
		"bucket":      NewBUCKET(),
		"kamel":       NewKamel(est),
		"kamel-multi": km,
		"mq-multi":    mqm,
		"bucket-seek": bs,
		"cascaded":    cascaded,
	}
}

// TestAllSchedulersConserveRequests drives every scheduler with random
// interleaved add/dispatch traffic and verifies no request is lost,
// duplicated, or invented, and that Len never lies.
func TestAllSchedulersConserveRequests(t *testing.T) {
	for name, s := range allSchedulers(t) {
		rng := stats.NewRNG(1234)
		added := map[uint64]bool{}
		got := map[uint64]bool{}
		var id uint64
		now := int64(0)
		head := 0
		for step := 0; step < 2000; step++ {
			now += int64(rng.Uint64n(5_000))
			if rng.Float64() < 0.55 {
				id++
				added[id] = true
				s.Add(&core.Request{
					ID:         id,
					Priorities: []int{rng.Intn(8), rng.Intn(8)},
					Deadline:   now + int64(rng.Uint64n(700_000)) + 1,
					Cylinder:   rng.Intn(3832),
					Size:       16 << 10,
					Value:      1 + rng.Intn(8),
					Arrival:    now,
				}, now, head)
			} else if r := s.Next(now, head); r != nil {
				if got[r.ID] {
					t.Fatalf("%s: request %d dispatched twice", name, r.ID)
				}
				if !added[r.ID] {
					t.Fatalf("%s: request %d never added", name, r.ID)
				}
				got[r.ID] = true
				head = clamp(r.Cylinder, 3832)
			}
			if want := len(added) - len(got); s.Len() != want {
				t.Fatalf("%s: Len = %d, want %d at step %d", name, s.Len(), want, step)
			}
		}
		for r := s.Next(now, head); r != nil; r = s.Next(now, head) {
			if got[r.ID] {
				t.Fatalf("%s: request %d dispatched twice in drain", name, r.ID)
			}
			got[r.ID] = true
		}
		if len(got) != len(added) {
			t.Errorf("%s: added %d, dispatched %d", name, len(added), len(got))
		}
	}
}

func clamp(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// TestAllSchedulersEachMatchesLen: Each must visit exactly Len requests,
// each at most once.
func TestAllSchedulersEachMatchesLen(t *testing.T) {
	for name, s := range allSchedulers(t) {
		rng := stats.NewRNG(77)
		for i := uint64(1); i <= 50; i++ {
			s.Add(&core.Request{
				ID: i, Priorities: []int{rng.Intn(8)}, Cylinder: rng.Intn(3832),
				Deadline: int64(rng.Uint64n(1_000_000)) + 1, Value: 1 + rng.Intn(8),
			}, 0, 0)
		}
		s.Next(0, 0)
		s.Next(0, 0)
		seen := map[uint64]int{}
		s.Each(func(r *core.Request) { seen[r.ID]++ })
		if len(seen) != s.Len() {
			t.Errorf("%s: Each visited %d, Len %d", name, len(seen), s.Len())
		}
		for id, n := range seen {
			if n != 1 {
				t.Errorf("%s: request %d visited %d times", name, id, n)
			}
		}
	}
}

// TestSCANNeverPassesPendingInDirection: the elevator property — between
// two consecutive dispatches moving upward, no pending request's cylinder
// lies strictly between them (it would have been served on the way).
func TestSCANNeverPassesPendingInDirection(t *testing.T) {
	s := NewSCAN()
	rng := stats.NewRNG(42)
	for i := uint64(1); i <= 64; i++ {
		s.Add(&core.Request{ID: i, Cylinder: rng.Intn(3832)}, 0, 0)
	}
	head := 0
	prev := -1
	for r := s.Next(0, head); r != nil; r = s.Next(0, head) {
		if prev >= 0 && r.Cylinder > prev {
			// Upward move: nothing pending strictly inside (prev, cyl).
			s.Each(func(q *core.Request) {
				if q.Cylinder > prev && q.Cylinder < r.Cylinder {
					t.Fatalf("elevator passed cylinder %d moving %d -> %d", q.Cylinder, prev, r.Cylinder)
				}
			})
		}
		prev = r.Cylinder
		head = r.Cylinder
	}
}

// TestCSCANServesOneSweep: with a static queue, C-SCAN serves cylinders in
// strictly increasing cyclic-distance order from the initial head.
func TestCSCANServesOneSweep(t *testing.T) {
	s := NewCSCAN()
	rng := stats.NewRNG(9)
	for i := uint64(1); i <= 100; i++ {
		s.Add(&core.Request{ID: i, Cylinder: rng.Intn(3832)}, 0, 0)
	}
	start := 1700
	head := start
	prev := -1
	for r := s.Next(0, head); r != nil; r = s.Next(0, head) {
		d := (r.Cylinder - start + 3832) % 3832
		if d < prev {
			t.Fatalf("cyclic order violated: distance %d after %d", d, prev)
		}
		prev = d
		head = r.Cylinder
	}
}

// TestEDFDispatchesInDeadlineOrder on a static queue.
func TestEDFDispatchesInDeadlineOrder(t *testing.T) {
	s := NewEDF()
	rng := stats.NewRNG(10)
	for i := uint64(1); i <= 100; i++ {
		s.Add(&core.Request{ID: i, Deadline: int64(rng.Uint64n(1 << 30))}, 0, 0)
	}
	prev := int64(-1)
	for r := s.Next(0, 0); r != nil; r = s.Next(0, 0) {
		if r.Deadline < prev {
			t.Fatalf("deadline order violated: %d after %d", r.Deadline, prev)
		}
		prev = r.Deadline
	}
}

// TestMultiQueueNeverInvertsLevels on a static queue.
func TestMultiQueueNeverInvertsLevels(t *testing.T) {
	s := NewMultiQueue(8)
	rng := stats.NewRNG(11)
	for i := uint64(1); i <= 100; i++ {
		s.Add(&core.Request{ID: i, Priorities: []int{rng.Intn(8)}, Cylinder: rng.Intn(3832)}, 0, 0)
	}
	prev := -1
	head := 0
	for r := s.Next(0, head); r != nil; r = s.Next(0, head) {
		if r.Priorities[0] < prev {
			t.Fatalf("level order violated: %d after %d", r.Priorities[0], prev)
		}
		prev = r.Priorities[0]
		head = r.Cylinder
	}
}

// TestBUCKETNeverInvertsValues on a static queue.
func TestBUCKETNeverInvertsValues(t *testing.T) {
	s := NewBUCKET()
	rng := stats.NewRNG(12)
	for i := uint64(1); i <= 100; i++ {
		s.Add(&core.Request{ID: i, Value: rng.Intn(10), Deadline: int64(rng.Uint64n(1 << 20))}, 0, 0)
	}
	prev := 1 << 30
	for r := s.Next(0, 0); r != nil; r = s.Next(0, 0) {
		if r.Value > prev {
			t.Fatalf("value order violated: %d after %d", r.Value, prev)
		}
		prev = r.Value
	}
}
