package sched

import (
	"math"
	"sort"

	"sfcsched/internal/core"
)

// SSEDO (Chen, Stankovic, Kurose & Towsley: Shortest Seek and Earliest
// Deadline by Ordering) considers the m earliest-deadline requests and
// serves the one minimizing seek distance weighted by deadline rank:
// candidates with later deadlines must be substantially closer to win.
//
// The 1991 paper leaves the weight schedule as a tunable; this
// reconstruction uses weight Beta^rank with Beta > 1, which preserves the
// published behavior (rank 0 wins unless a later candidate is much closer).
type SSEDO struct {
	queue
	// Window is m, the number of earliest-deadline candidates considered.
	Window int
	// Beta is the per-rank seek-distance penalty (> 1).
	Beta float64
}

// NewSSEDO returns an SSEDO scheduler with window m and penalty beta.
// Zero values default to m = 5, beta = 1.5.
func NewSSEDO(m int, beta float64) *SSEDO {
	if m <= 0 {
		m = 5
	}
	if beta <= 1 {
		beta = 1.5
	}
	return &SSEDO{Window: m, Beta: beta}
}

// Name implements Scheduler.
func (s *SSEDO) Name() string { return "ssedo" }

// Add implements Scheduler.
func (s *SSEDO) Add(r *core.Request, now int64, head int) { s.add(r) }

// Next implements Scheduler.
func (s *SSEDO) Next(now int64, head int) *core.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	cand := deadlineWindow(s.reqs, s.Window)
	best, bestScore := cand[0], math.Inf(1)
	for rank, i := range cand {
		r := s.reqs[i]
		// +1 keeps zero-distance requests comparable across ranks.
		score := float64(absDist(r.Cylinder, head)+1) * math.Pow(s.Beta, float64(rank))
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return s.removeAt(best)
}

// SSEDV (Shortest Seek and Earliest Deadline by Value) scores the same
// candidate window by a linear blend of deadline slack and seek distance:
// score = Alpha*slack + (1-Alpha)*seek, both normalized to their window
// maxima. Alpha = 1 is pure EDF over the window; Alpha = 0 pure SSTF.
type SSEDV struct {
	queue
	Window int
	Alpha  float64
}

// NewSSEDV returns an SSEDV scheduler; zero values default to m = 5,
// alpha = 0.8.
func NewSSEDV(m int, alpha float64) *SSEDV {
	if m <= 0 {
		m = 5
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.8
	}
	return &SSEDV{Window: m, Alpha: alpha}
}

// Name implements Scheduler.
func (s *SSEDV) Name() string { return "ssedv" }

// Add implements Scheduler.
func (s *SSEDV) Add(r *core.Request, now int64, head int) { s.add(r) }

// Next implements Scheduler.
func (s *SSEDV) Next(now int64, head int) *core.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	cand := deadlineWindow(s.reqs, s.Window)
	maxSlack, maxSeek := int64(1), 1
	for _, i := range cand {
		r := s.reqs[i]
		if sl := r.Slack(now); sl > 0 && sl < 1<<61 && sl > maxSlack {
			maxSlack = sl
		}
		if d := absDist(r.Cylinder, head); d > maxSeek {
			maxSeek = d
		}
	}
	best, bestScore := cand[0], math.Inf(1)
	for _, i := range cand {
		r := s.reqs[i]
		sl := r.Slack(now)
		if sl < 0 {
			sl = 0
		}
		if sl > maxSlack {
			sl = maxSlack
		}
		score := s.Alpha*float64(sl)/float64(maxSlack) +
			(1-s.Alpha)*float64(absDist(r.Cylinder, head))/float64(maxSeek)
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return s.removeAt(best)
}

// deadlineWindow returns the indices of the m earliest-deadline requests,
// ordered by deadline.
func deadlineWindow(reqs []*core.Request, m int) []int {
	idx := make([]int, len(reqs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return effDeadline(reqs[idx[a]]) < effDeadline(reqs[idx[b]])
	})
	if len(idx) > m {
		idx = idx[:m]
	}
	return idx
}
