package sched

import "sfcsched/internal/core"

// FDSCAN (Abbott & Garcia-Molina) aims the sweep at the request with the
// earliest *feasible* deadline — one the head can still reach in time — and
// serves requests encountered en route. When no deadline is feasible it
// degrades to serving the earliest deadline.
type FDSCAN struct {
	queue
	est Estimator
}

// NewFDSCAN returns a feasible-deadline-scan scheduler using est to decide
// whether a deadline can still be met.
func NewFDSCAN(est Estimator) *FDSCAN { return &FDSCAN{est: est} }

// Name implements Scheduler.
func (s *FDSCAN) Name() string { return "fd-scan" }

// Add implements Scheduler.
func (s *FDSCAN) Add(r *core.Request, now int64, head int) { s.add(r) }

// Next implements Scheduler.
func (s *FDSCAN) Next(now int64, head int) *core.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	target := s.earliestFeasible(now, head)
	if target < 0 {
		// No feasible deadline: fall back to the earliest one.
		target = 0
		for i, r := range s.reqs[1:] {
			if effDeadline(r) < effDeadline(s.reqs[target]) {
				target = i + 1
			}
		}
	}
	// Serve the pending request closest to the head on the way to the
	// target (the target itself qualifies).
	tc := s.reqs[target].Cylinder
	best, bestD := target, absDist(tc, head)
	for i, r := range s.reqs {
		c := r.Cylinder
		onRoute := (head <= c && c <= tc) || (tc <= c && c <= head)
		if onRoute && absDist(c, head) < bestD {
			best, bestD = i, absDist(c, head)
		}
	}
	return s.removeAt(best)
}

// earliestFeasible returns the index of the request with the earliest
// deadline that the head can still meet, or -1.
func (s *FDSCAN) earliestFeasible(now int64, head int) int {
	best := -1
	for i, r := range s.reqs {
		if now+s.est(head, r.Cylinder, r.Size) > effDeadline(r) {
			continue
		}
		if best < 0 || effDeadline(r) < effDeadline(s.reqs[best]) {
			best = i
		}
	}
	return best
}
