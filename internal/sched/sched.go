// Package sched implements the baseline disk schedulers the paper compares
// against (and generalizes): FCFS, SSTF, SCAN, C-SCAN, EDF, SCAN-EDF,
// FD-SCAN, SCAN-RT, SSEDO, SSEDV, the multi-queue priority scheduler, the
// BUCKET value scheduler, and the deadline-driven multi-priority algorithm
// of Kamel et al. (ICDE 2000).
//
// All schedulers share the Scheduler interface, which core.Scheduler (the
// Cascaded-SFC scheduler) also satisfies, so the simulator can drive any of
// them interchangeably.
package sched

import (
	"sfcsched/internal/core"
)

// Scheduler is a disk-request queue discipline. Add and Next receive the
// current simulation time (microseconds) and head cylinder so schedulers
// can make position- and deadline-aware decisions.
type Scheduler interface {
	// Name returns a display name.
	Name() string
	// Add enqueues a request.
	Add(r *core.Request, now int64, head int)
	// Next removes and returns the next request to serve, or nil if empty.
	Next(now int64, head int) *core.Request
	// Len returns the number of queued requests.
	Len() int
	// Each visits every queued request in unspecified order.
	Each(visit func(*core.Request))
}

// Estimator predicts the service time of a request at cylinder cyl of the
// given size with the head at cylinder head. Feasibility-testing schedulers
// (FD-SCAN, SCAN-RT, Kamel) need one; disk.Model.ServiceTime satisfies it.
type Estimator func(head, cyl int, size int64) int64

// queue is the shared slice-backed request store used by the schedulers
// that scan their queue at dispatch time. For the queue depths the paper
// simulates (tens to a few hundred requests) linear scans beat the constant
// factors of heap bookkeeping and keep every policy trivially auditable.
type queue struct {
	reqs []*core.Request
}

func (q *queue) add(r *core.Request) { q.reqs = append(q.reqs, r) }
func (q *queue) Len() int            { return len(q.reqs) }
func (q *queue) Each(visit func(r *core.Request)) {
	for _, r := range q.reqs {
		visit(r)
	}
}

// removeAt removes and returns the request at index i. The vacated tail
// slot is nilled out so served requests become collectible under long
// traces instead of being pinned by the slice's spare capacity.
func (q *queue) removeAt(i int) *core.Request {
	r := q.reqs[i]
	last := len(q.reqs) - 1
	copy(q.reqs[i:], q.reqs[i+1:])
	q.reqs[last] = nil
	q.reqs = q.reqs[:last]
	return r
}

// effDeadline treats "no deadline" as infinitely far away.
func effDeadline(r *core.Request) int64 {
	if r.Deadline == 0 {
		return 1 << 62
	}
	return r.Deadline
}

// absDist returns |a - b|.
func absDist(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
