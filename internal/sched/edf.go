package sched

import "sfcsched/internal/core"

// EDF serves the request with the earliest deadline first (Liu & Layland),
// ignoring head position entirely. Ties break by arrival order.
type EDF struct {
	queue
}

// NewEDF returns an earliest-deadline-first scheduler.
func NewEDF() *EDF { return &EDF{} }

// Name implements Scheduler.
func (s *EDF) Name() string { return "edf" }

// Add implements Scheduler.
func (s *EDF) Add(r *core.Request, now int64, head int) { s.add(r) }

// Next implements Scheduler.
func (s *EDF) Next(now int64, head int) *core.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	best := 0
	for i, r := range s.reqs[1:] {
		if effDeadline(r) < effDeadline(s.reqs[best]) {
			best = i + 1
		}
	}
	return s.removeAt(best)
}

// SCANEDF (Reddy & Wyllie) serves requests in deadline order, breaking
// deadline ties in scan order. Deadlines are quantized into batches of
// Quantum microseconds so that the tie-break has requests to work with;
// Quantum = 0 compares exact deadlines (degenerating to EDF with a seek
// tie-break).
type SCANEDF struct {
	queue
	// Quantum groups deadlines into batches; requests whose deadlines fall
	// in the same batch are served in scan order.
	Quantum int64
}

// NewSCANEDF returns a SCAN-EDF scheduler with the given deadline quantum.
func NewSCANEDF(quantum int64) *SCANEDF { return &SCANEDF{Quantum: quantum} }

// Name implements Scheduler.
func (s *SCANEDF) Name() string { return "scan-edf" }

// Add implements Scheduler.
func (s *SCANEDF) Add(r *core.Request, now int64, head int) { s.add(r) }

// batch returns the quantized deadline of r.
func (s *SCANEDF) batch(r *core.Request) int64 {
	d := effDeadline(r)
	if s.Quantum <= 0 {
		return d
	}
	return d / s.Quantum
}

// Next implements Scheduler.
func (s *SCANEDF) Next(now int64, head int) *core.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	// Find the earliest deadline batch, then the request within it that is
	// nearest ahead of the head (upward sweep), falling back to nearest
	// overall when the sweep has passed every batch member.
	minBatch := s.batch(s.reqs[0])
	for _, r := range s.reqs[1:] {
		if b := s.batch(r); b < minBatch {
			minBatch = b
		}
	}
	best, bestKey := -1, int(^uint(0)>>1)
	for i, r := range s.reqs {
		if s.batch(r) != minBatch {
			continue
		}
		key := r.Cylinder - head
		if key < 0 {
			key += 1 << 30 // behind the head: serve after the ones ahead
		}
		if key < bestKey {
			best, bestKey = i, key
		}
	}
	return s.removeAt(best)
}
