package sfc

import "fmt"

// Peano is the d-dimensional Peano curve over a (3^order)^dims grid,
// built from Peano's original base-3 digit construction: the index digits
// are the coordinate digits taken level by level (dimension Dims()-1 first
// within each level), with a digit complemented (t -> 2-t) whenever the sum
// of the index digits already emitted for the *other* dimensions is odd.
// The resulting curve is continuous: consecutive cells are grid neighbors,
// which the adjacency property tests verify.
type Peano struct {
	dims  int
	order int // digits per dimension
	side  uint32
	max   uint64
	p3    []uint32 // p3[k] = 3^k, k in [0, order)
}

// NewPeano returns a Peano curve over a (3^order)^dims grid. The total cell
// count 3^(order*dims) must fit in uint64.
func NewPeano(dims, order int) (*Peano, error) {
	if dims < 1 {
		return nil, fmt.Errorf("sfc: dims must be >= 1, got %d", dims)
	}
	if order < 1 {
		return nil, fmt.Errorf("sfc: order must be >= 1, got %d", order)
	}
	side, ok := pow(3, order)
	if !ok || side > 1<<32-1 {
		return nil, fmt.Errorf("sfc: side 3^%d too large", order)
	}
	max, ok := pow(3, order*dims)
	if !ok {
		return nil, fmt.Errorf("sfc: grid 3^(%d*%d) overflows uint64", order, dims)
	}
	p3 := make([]uint32, order)
	p3[0] = 1
	for k := 1; k < order; k++ {
		p3[k] = p3[k-1] * 3
	}
	return &Peano{dims: dims, order: order, side: uint32(side), max: max, p3: p3}, nil
}

// Name implements Curve.
func (c *Peano) Name() string { return "peano" }

// Dims implements Curve.
func (c *Peano) Dims() int { return c.dims }

// Side implements Curve.
func (c *Peano) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *Peano) MaxIndex() uint64 { return c.max }

// Bijective implements Curve.
func (c *Peano) Bijective() bool { return true }

// Index implements Curve.
func (c *Peano) Index(p Point) uint64 {
	checkPoint(p, c.dims, c.side)
	return c.IndexFast(p, nil)
}

// IndexFast implements Curve.
//
// Index digits are emitted level-major, dimension Dims()-1 most significant
// within each level; a digit is complemented (t -> 2-t) when the sum of the
// index digits already emitted for the other dimensions is odd. Instead of
// materializing per-dimension digit arrays, each level's coordinate digit is
// extracted with a precomputed power-of-3 divide, and the flip parities are
// tracked as (total emitted) - (emitted by this dimension) using one scratch
// counter per dimension.
func (c *Peano) IndexFast(p Point, scratch []uint32) uint64 {
	own := scratchFor(scratch, c.dims)
	for i := range own {
		own[i] = 0
	}
	var sum uint32
	var idx uint64
	for j := 0; j < c.order; j++ {
		div := c.p3[c.order-1-j]
		for i := c.dims - 1; i >= 0; i-- {
			t := p[i] / div % 3
			if (sum-own[i])&1 == 1 {
				t = 2 - t
			}
			idx = idx*3 + uint64(t)
			own[i] += t
			sum += t
		}
	}
	return idx
}

// ScratchLen implements Curve.
func (c *Peano) ScratchLen() int { return c.dims }

// Point implements Inverter.
func (c *Peano) Point(idx uint64, dst Point) Point {
	checkIndex(idx, c.max)
	dst = ensure(dst, c.dims)
	// Index digits base 3, most significant first.
	n := c.dims * c.order
	ts := make([]uint8, n)
	for k := n - 1; k >= 0; k-- {
		ts[k] = uint8(idx % 3)
		idx /= 3
	}
	flips := make([]uint8, c.dims)
	for i := range dst {
		dst[i] = 0
	}
	k := 0
	for j := 0; j < c.order; j++ {
		for i := c.dims - 1; i >= 0; i-- {
			t := ts[k]
			k++
			d := t
			if flips[i]&1 == 1 {
				d = 2 - t
			}
			dst[i] = dst[i]*3 + uint32(d)
			for m := 0; m < c.dims; m++ {
				if m != i {
					flips[m] += t
				}
			}
		}
	}
	return dst
}
