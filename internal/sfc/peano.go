package sfc

import "fmt"

// Peano is the d-dimensional Peano curve over a (3^order)^dims grid,
// built from Peano's original base-3 digit construction: the index digits
// are the coordinate digits taken level by level (dimension Dims()-1 first
// within each level), with a digit complemented (t -> 2-t) whenever the sum
// of the index digits already emitted for the *other* dimensions is odd.
// The resulting curve is continuous: consecutive cells are grid neighbors,
// which the adjacency property tests verify.
type Peano struct {
	dims  int
	order int // digits per dimension
	side  uint32
	max   uint64
}

// NewPeano returns a Peano curve over a (3^order)^dims grid. The total cell
// count 3^(order*dims) must fit in uint64.
func NewPeano(dims, order int) (*Peano, error) {
	if dims < 1 {
		return nil, fmt.Errorf("sfc: dims must be >= 1, got %d", dims)
	}
	if order < 1 {
		return nil, fmt.Errorf("sfc: order must be >= 1, got %d", order)
	}
	side, ok := pow(3, order)
	if !ok || side > 1<<32-1 {
		return nil, fmt.Errorf("sfc: side 3^%d too large", order)
	}
	max, ok := pow(3, order*dims)
	if !ok {
		return nil, fmt.Errorf("sfc: grid 3^(%d*%d) overflows uint64", order, dims)
	}
	return &Peano{dims: dims, order: order, side: uint32(side), max: max}, nil
}

// Name implements Curve.
func (c *Peano) Name() string { return "peano" }

// Dims implements Curve.
func (c *Peano) Dims() int { return c.dims }

// Side implements Curve.
func (c *Peano) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *Peano) MaxIndex() uint64 { return c.max }

// Bijective implements Curve.
func (c *Peano) Bijective() bool { return true }

// Index implements Curve.
func (c *Peano) Index(p Point) uint64 {
	checkPoint(p, c.dims, c.side)
	// Coordinate digits base 3, most significant first.
	digits := make([][]uint8, c.dims)
	buf := make([]uint8, c.dims*c.order)
	for i := 0; i < c.dims; i++ {
		digits[i] = buf[i*c.order : (i+1)*c.order]
		v := p[i]
		for j := c.order - 1; j >= 0; j-- {
			digits[i][j] = uint8(v % 3)
			v /= 3
		}
	}
	// Emit index digits level-major, dimension Dims()-1 most significant
	// within each level; flips[i] counts index digits of other dimensions.
	flips := make([]uint8, c.dims)
	var idx uint64
	for j := 0; j < c.order; j++ {
		for i := c.dims - 1; i >= 0; i-- {
			t := digits[i][j]
			if flips[i]&1 == 1 {
				t = 2 - t
			}
			idx = idx*3 + uint64(t)
			for k := 0; k < c.dims; k++ {
				if k != i {
					flips[k] += t
				}
			}
		}
	}
	return idx
}

// Point implements Inverter.
func (c *Peano) Point(idx uint64, dst Point) Point {
	checkIndex(idx, c.max)
	dst = ensure(dst, c.dims)
	// Index digits base 3, most significant first.
	n := c.dims * c.order
	ts := make([]uint8, n)
	for k := n - 1; k >= 0; k-- {
		ts[k] = uint8(idx % 3)
		idx /= 3
	}
	flips := make([]uint8, c.dims)
	for i := range dst {
		dst[i] = 0
	}
	k := 0
	for j := 0; j < c.order; j++ {
		for i := c.dims - 1; i >= 0; i-- {
			t := ts[k]
			k++
			d := t
			if flips[i]&1 == 1 {
				d = 2 - t
			}
			dst[i] = dst[i]*3 + uint32(d)
			for m := 0; m < c.dims; m++ {
				if m != i {
					flips[m] += t
				}
			}
		}
	}
	return dst
}
