package sfc

import (
	"testing"
	"testing/quick"
)

// bijectiveConfigs enumerates grid shapes exercised by the generic
// bijection and round-trip tests.
type config struct {
	name string
	dims int
	side uint32
}

func bijectiveConfigs() []config {
	return []config{
		{"sweep", 1, 7}, {"sweep", 2, 5}, {"sweep", 3, 4}, {"sweep", 4, 3},
		{"scan", 1, 7}, {"scan", 2, 5}, {"scan", 2, 4}, {"scan", 3, 3}, {"scan", 3, 4}, {"scan", 4, 3},
		{"cscan", 2, 5}, {"cscan", 2, 4}, {"cscan", 3, 3}, {"cscan", 4, 3},
		{"peano", 1, 9}, {"peano", 2, 3}, {"peano", 2, 9}, {"peano", 3, 3}, {"peano", 3, 9}, {"peano", 4, 3},
		{"gray", 1, 8}, {"gray", 2, 4}, {"gray", 2, 8}, {"gray", 3, 4}, {"gray", 4, 2},
		{"hilbert", 1, 8}, {"hilbert", 2, 4}, {"hilbert", 2, 16}, {"hilbert", 3, 4}, {"hilbert", 3, 8}, {"hilbert", 4, 4},
		{"zorder", 2, 8}, {"zorder", 3, 4},
		{"spiral", 2, 5}, {"spiral", 2, 9},
		{"diagonal", 2, 5}, {"diagonal", 2, 8},
	}
}

// continuousConfigs lists the curves whose consecutive cells must be grid
// neighbors (Manhattan distance exactly 1).
func continuousConfigs() []config {
	return []config{
		{"scan", 2, 4}, {"scan", 2, 5}, {"scan", 3, 3}, {"scan", 3, 4}, {"scan", 4, 3},
		{"peano", 2, 3}, {"peano", 2, 9}, {"peano", 2, 27}, {"peano", 3, 3}, {"peano", 3, 9}, {"peano", 4, 3},
		{"hilbert", 2, 4}, {"hilbert", 2, 16}, {"hilbert", 2, 32}, {"hilbert", 3, 4}, {"hilbert", 3, 8}, {"hilbert", 4, 4},
		{"spiral", 2, 5}, {"spiral", 2, 11},
	}
}

// enumerate walks every cell of the curve's grid in coordinate order.
func enumerate(c Curve, visit func(Point)) {
	p := make(Point, c.Dims())
	var rec func(i int)
	rec = func(i int) {
		if i == c.Dims() {
			visit(p)
			return
		}
		for v := uint32(0); v < c.Side(); v++ {
			p[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

func TestBijection(t *testing.T) {
	for _, cfg := range bijectiveConfigs() {
		c, err := New(cfg.name, cfg.dims, cfg.side)
		if err != nil {
			t.Fatalf("New(%v): %v", cfg, err)
		}
		if !c.Bijective() {
			t.Fatalf("%s dims=%d: expected bijective", cfg.name, cfg.dims)
		}
		total := uint64(1)
		for i := 0; i < c.Dims(); i++ {
			total *= uint64(c.Side())
		}
		if got := c.MaxIndex(); got != total {
			t.Errorf("%s dims=%d side=%d: MaxIndex = %d, want %d", cfg.name, cfg.dims, c.Side(), got, total)
		}
		seen := make(map[uint64]bool, total)
		enumerate(c, func(p Point) {
			idx := c.Index(p)
			if idx >= c.MaxIndex() {
				t.Fatalf("%s: Index(%v) = %d >= MaxIndex %d", cfg.name, p, idx, c.MaxIndex())
			}
			if seen[idx] {
				t.Fatalf("%s dims=%d side=%d: duplicate index %d at %v", cfg.name, cfg.dims, c.Side(), idx, p)
			}
			seen[idx] = true
		})
		if uint64(len(seen)) != total {
			t.Errorf("%s: covered %d of %d cells", cfg.name, len(seen), total)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, cfg := range bijectiveConfigs() {
		c, err := New(cfg.name, cfg.dims, cfg.side)
		if err != nil {
			t.Fatalf("New(%v): %v", cfg, err)
		}
		inv, ok := c.(Inverter)
		if !ok {
			t.Fatalf("%s dims=%d: bijective curve must implement Inverter", cfg.name, cfg.dims)
		}
		var p Point
		for idx := uint64(0); idx < c.MaxIndex(); idx++ {
			p = inv.Point(idx, p)
			if got := c.Index(p); got != idx {
				t.Fatalf("%s dims=%d side=%d: Index(Point(%d)) = %d", cfg.name, cfg.dims, c.Side(), idx, got)
			}
		}
	}
}

func TestContinuity(t *testing.T) {
	for _, cfg := range continuousConfigs() {
		c := MustNew(cfg.name, cfg.dims, cfg.side)
		inv := c.(Inverter)
		prev := inv.Point(0, nil).Clone()
		for idx := uint64(1); idx < c.MaxIndex(); idx++ {
			cur := inv.Point(idx, nil)
			dist := 0
			for i := range cur {
				d := int64(cur[i]) - int64(prev[i])
				if d < 0 {
					d = -d
				}
				dist += int(d)
			}
			if dist != 1 {
				t.Fatalf("%s dims=%d side=%d: cells %d->%d jump from %v to %v (distance %d)",
					cfg.name, cfg.dims, c.Side(), idx-1, idx, prev, cur, dist)
			}
			copy(prev, cur)
		}
	}
}

// TestLexicographicDominance verifies that sweep, scan and c-scan never
// invert two points that differ in the most significant dimension — the
// property behind the paper's "favored dimension" fairness findings.
func TestLexicographicDominance(t *testing.T) {
	for _, name := range []string{"sweep", "scan", "cscan"} {
		c := MustNew(name, 3, 4)
		last := c.Dims() - 1
		enumerate(c, func(p Point) {
			if p[last]+1 >= c.Side() {
				return
			}
			q := p.Clone()
			q[last]++
			if c.Index(p) >= c.Index(q) {
				t.Fatalf("%s: Index(%v) >= Index(%v)", name, p, q)
			}
		})
	}
}

func TestSweepKnownOrder(t *testing.T) {
	c := MustNew("sweep", 2, 3)
	// Row-major: dimension 1 is most significant.
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {1, 0}: 1, {2, 0}: 2,
		{0, 1}: 3, {1, 1}: 4, {2, 1}: 5,
		{0, 2}: 6, {1, 2}: 7, {2, 2}: 8,
	}
	for p, idx := range want {
		if got := c.Index(Point{p[0], p[1]}); got != idx {
			t.Errorf("sweep Index(%v) = %d, want %d", p, got, idx)
		}
	}
}

func TestScanKnownOrder(t *testing.T) {
	c := MustNew("scan", 2, 3)
	// Serpentine: row 1 runs right-to-left.
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {1, 0}: 1, {2, 0}: 2,
		{2, 1}: 3, {1, 1}: 4, {0, 1}: 5,
		{0, 2}: 6, {1, 2}: 7, {2, 2}: 8,
	}
	for p, idx := range want {
		if got := c.Index(Point{p[0], p[1]}); got != idx {
			t.Errorf("scan Index(%v) = %d, want %d", p, got, idx)
		}
	}
}

func TestCScanKnownOrder(t *testing.T) {
	c := MustNew("cscan", 2, 3)
	// Every row runs forward in dimension 0 (cyclic return).
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {1, 0}: 1, {2, 0}: 2,
		{0, 1}: 3, {1, 1}: 4, {2, 1}: 5,
	}
	for p, idx := range want {
		if got := c.Index(Point{p[0], p[1]}); got != idx {
			t.Errorf("cscan Index(%v) = %d, want %d", p, got, idx)
		}
	}
}

func TestDiagonalKnownOrder(t *testing.T) {
	c := MustNew("diagonal", 2, 3)
	// Cantor zigzag: diagonal sums 0,1,2,... with alternating direction.
	want := map[[2]uint32]uint64{
		{0, 0}: 0,
		{1, 0}: 1, {0, 1}: 2, // odd diagonal: decreasing x
		{0, 2}: 3, {1, 1}: 4, {2, 0}: 5,
		{2, 1}: 6, {1, 2}: 7,
		{2, 2}: 8,
	}
	for p, idx := range want {
		if got := c.Index(Point{p[0], p[1]}); got != idx {
			t.Errorf("diagonal Index(%v) = %d, want %d", p, got, idx)
		}
	}
}

func TestSpiralCenterFirst(t *testing.T) {
	c := MustNew("spiral", 2, 5)
	if got := c.Index(Point{2, 2}); got != 0 {
		t.Errorf("spiral center index = %d, want 0", got)
	}
	// Ring 1 occupies indices 1..8, ring 2 occupies 9..24.
	ring1 := [][2]uint32{{3, 2}, {3, 3}, {2, 3}, {1, 3}, {1, 2}, {1, 1}, {2, 1}, {3, 1}}
	for _, p := range ring1 {
		idx := c.Index(Point{p[0], p[1]})
		if idx < 1 || idx > 8 {
			t.Errorf("spiral Index(%v) = %d, want within ring 1 (1..8)", p, idx)
		}
	}
}

func TestSpiralRoundsUpToOdd(t *testing.T) {
	c := MustNew("spiral", 2, 4)
	if c.Side() != 5 {
		t.Errorf("spiral side = %d, want 5 (rounded up to odd)", c.Side())
	}
}

func TestGrayNeighborsDifferInOneBit(t *testing.T) {
	c := MustNew("gray", 2, 8).(*Gray)
	inv := Inverter(c)
	prev := inv.Point(0, nil).Clone()
	for idx := uint64(1); idx < c.MaxIndex(); idx++ {
		cur := inv.Point(idx, nil)
		diff := interleave(cur, c.bits) ^ interleave(prev, c.bits)
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("gray: cells %d and %d differ in bits %b", idx-1, idx, diff)
		}
		copy(prev, cur)
	}
}

func TestGrayCodeRoundTrip(t *testing.T) {
	f := func(n uint64) bool { return grayRank(grayCode(n)) == n }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHilbertQuickRoundTrip(t *testing.T) {
	c := MustNew("hilbert", 4, 16).(*Hilbert)
	f := func(raw [4]uint16) bool {
		p := Point{uint32(raw[0] % 16), uint32(raw[1] % 16), uint32(raw[2] % 16), uint32(raw[3] % 16)}
		got := c.Point(c.Index(p), nil)
		for i := range p {
			if got[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeanoQuickRoundTrip(t *testing.T) {
	c := MustNew("peano", 3, 27).(*Peano)
	f := func(raw [3]uint16) bool {
		p := Point{uint32(raw[0] % 27), uint32(raw[1] % 27), uint32(raw[2] % 27)}
		got := c.Point(c.Index(p), nil)
		for i := range p {
			if got[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistryRejectsUnknown(t *testing.T) {
	if _, err := New("nope", 2, 4); err == nil {
		t.Error("expected error for unknown curve")
	}
	if _, err := New("sweep", 0, 4); err == nil {
		t.Error("expected error for zero dims")
	}
	if _, err := New("sweep", 2, 0); err == nil {
		t.Error("expected error for zero side")
	}
}

func TestRegistryRoundsSides(t *testing.T) {
	cases := []struct {
		name string
		min  uint32
		want uint32
	}{
		{"hilbert", 16, 16},
		{"hilbert", 17, 32},
		{"gray", 5, 8},
		{"peano", 16, 27},
		{"peano", 3, 3},
		{"spiral", 6, 7},
		{"sweep", 13, 13},
	}
	for _, tc := range cases {
		c := MustNew(tc.name, 2, tc.min)
		if c.Side() != tc.want {
			t.Errorf("%s minSide=%d: side = %d, want %d", tc.name, tc.min, c.Side(), tc.want)
		}
	}
}

func TestOverflowRejected(t *testing.T) {
	if _, err := NewSweep(5, 1<<20); err == nil {
		t.Error("expected overflow error for 2^100 cells")
	}
	if _, err := NewHilbert(9, 8); err == nil {
		t.Error("expected error for dims*bits > 64")
	}
	if _, err := NewPeano(9, 5); err == nil {
		t.Error("expected overflow error for 3^45 cells")
	}
}

func TestIndexPanicsOnBadPoint(t *testing.T) {
	c := MustNew("hilbert", 2, 4)
	for _, p := range []Point{{1}, {1, 2, 3}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Index(%v) did not panic", p)
				}
			}()
			c.Index(p)
		}()
	}
}

func TestAllNamesConstructible(t *testing.T) {
	for _, name := range Names() {
		c, err := New(name, 2, 8)
		if err != nil {
			t.Errorf("New(%s): %v", name, err)
			continue
		}
		if c.Name() != name {
			t.Errorf("curve %s reports name %s", name, c.Name())
		}
	}
	for _, name := range PaperNames() {
		if _, err := New(name, 2, 8); err != nil {
			t.Errorf("paper curve %s: %v", name, err)
		}
	}
}

// TestOrderOnlyCurvesMonotoneInShell checks the documented d>2 spiral
// generalization: points in an inner Chebyshev shell always order before
// points in an outer shell.
func TestOrderOnlyCurvesMonotoneInShell(t *testing.T) {
	c := MustNew("spiral", 3, 5)
	if c.Bijective() {
		t.Fatal("3-D spiral should be order-only")
	}
	center := c.Index(Point{2, 2, 2})
	inner := c.Index(Point{3, 2, 2})
	outer := c.Index(Point{0, 0, 0})
	if !(center < inner && inner < outer) {
		t.Errorf("shell order violated: center=%d inner=%d outer=%d", center, inner, outer)
	}
}

// TestDiagonalNDOrderBySum checks the d>2 diagonal generalization orders by
// coordinate sum.
func TestDiagonalNDOrderBySum(t *testing.T) {
	c := MustNew("diagonal", 3, 4)
	if c.Bijective() {
		t.Fatal("3-D diagonal should be order-only")
	}
	low := c.Index(Point{1, 1, 0})
	high := c.Index(Point{3, 3, 3})
	if low >= high {
		t.Errorf("sum order violated: %d >= %d", low, high)
	}
}

func TestMooreBijectionAndContinuity(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 4} {
		c, err := NewMoore(bits)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool, c.MaxIndex())
		enumerate(c, func(p Point) {
			idx := c.Index(p)
			if seen[idx] {
				t.Fatalf("bits=%d: duplicate index %d at %v", bits, idx, p)
			}
			seen[idx] = true
		})
		if uint64(len(seen)) != c.MaxIndex() {
			t.Fatalf("bits=%d: covered %d of %d", bits, len(seen), c.MaxIndex())
		}
		var prev Point
		for idx := uint64(0); idx < c.MaxIndex(); idx++ {
			cur := c.Point(idx, nil)
			if got := c.Index(cur); got != idx {
				t.Fatalf("bits=%d: round trip %d -> %v -> %d", bits, idx, cur, got)
			}
			if idx > 0 && manhattan(prev, cur) != 1 {
				t.Fatalf("bits=%d: jump at %d: %v -> %v", bits, idx, prev, cur)
			}
			prev = cur.Clone()
		}
	}
}

// TestMooreIsClosed: the defining property — the last cell is adjacent to
// the first, unlike Hilbert.
func TestMooreIsClosed(t *testing.T) {
	c, _ := NewMoore(3)
	first := c.Point(0, nil).Clone()
	last := c.Point(c.MaxIndex()-1, nil)
	if manhattan(first, last) != 1 {
		t.Errorf("moore endpoints %v and %v not adjacent", first, last)
	}
	h := MustNew("hilbert", 2, 8).(Inverter)
	hFirst := h.Point(0, nil).Clone()
	hLast := h.Point(h.MaxIndex()-1, nil)
	if manhattan(hFirst, hLast) == 1 {
		t.Error("hilbert endpoints unexpectedly adjacent; moore would be redundant")
	}
}

func manhattan(a, b Point) int {
	d := 0
	for i := range a {
		v := int(a[i]) - int(b[i])
		if v < 0 {
			v = -v
		}
		d += v
	}
	return d
}

func TestMooreRegistry(t *testing.T) {
	c := MustNew("moore", 2, 8)
	if c.Name() != "moore" || c.Side() != 8 {
		t.Errorf("registry moore: %s side %d", c.Name(), c.Side())
	}
	if _, err := New("moore", 3, 8); err == nil {
		t.Error("expected error for 3-D moore")
	}
}
