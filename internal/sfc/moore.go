package sfc

// Moore is the 2-D Moore curve: a closed Hilbert loop. Four Hilbert
// sub-curves of half the side are rotated so the traversal's last cell is
// adjacent to its first.
//
// The reproduction adds it beyond the paper's seven curves because the
// open Hilbert curve's endpoint lands on an urgent cell of the
// (priority, deadline) scheduling plane — fresh high-priority requests
// then serve last (see EXPERIMENTS.md, Fig. 11). Closing the loop removes
// the pathological endpoint while preserving Hilbert's locality.
type Moore struct {
	bits int
	side uint32
	max  uint64
	sub  *Hilbert // side/2 Hilbert sub-curve
}

// NewMoore returns a Moore curve over a (2^bits)^2 grid.
func NewMoore(bits int) (*Moore, error) {
	if err := checkBinary(2, bits); err != nil {
		return nil, err
	}
	m := &Moore{bits: bits, side: 1 << bits, max: 1 << (2 * bits)}
	if bits > 1 {
		sub, err := NewHilbert(2, bits-1)
		if err != nil {
			return nil, err
		}
		m.sub = sub
	}
	return m, nil
}

// Name implements Curve.
func (c *Moore) Name() string { return "moore" }

// Dims implements Curve.
func (c *Moore) Dims() int { return 2 }

// Side implements Curve.
func (c *Moore) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *Moore) MaxIndex() uint64 { return c.max }

// Bijective implements Curve.
func (c *Moore) Bijective() bool { return true }

// half returns the sub-grid side.
func (c *Moore) half() uint32 { return c.side / 2 }

// subPoint handles the bits == 1 degenerate case, where each quadrant is a
// single cell.
func (c *Moore) subPoint(idx uint64) Point {
	if c.sub == nil {
		return Point{0, 0}
	}
	return c.sub.Point(idx, nil)
}

// Quadrant traversal. The sub-curve runs corner to corner along its left
// edge, (0,0) to (0, half-1), so each quadrant holds a reflected copy
// whose endpoints land on the junction corners: the left column is walked
// upward (BL then TL, each mirrored across the vertical axis), the right
// column downward (TR then BR, each mirrored across the horizontal axis),
// and BR's exit cell is adjacent to BL's entry cell — a closed loop.

// Index implements Curve.
func (c *Moore) Index(p Point) uint64 {
	checkPoint(p, 2, c.side)
	return c.IndexFast(p, nil)
}

// IndexFast implements Curve.
func (c *Moore) IndexFast(p Point, scratch []uint32) uint64 {
	m := c.half()
	x, y := p[0], p[1]
	var q uint64
	var hx, hy uint32 // sub-grid coordinates after undoing the reflection
	switch {
	case x < m && y < m: // BL: (x,y) = (m-1-hx, hy)
		q, hx, hy = 0, m-1-x, y
	case x < m: // TL: (x,y) = (m-1-hx, hy+m)
		q, hx, hy = 1, m-1-x, y-m
	case y >= m: // TR: (x,y) = (hx+m, 2m-1-hy)
		q, hx, hy = 2, x-m, m-1-(y-m)
	default: // BR: (x,y) = (hx+m, m-1-hy)
		q, hx, hy = 3, x-m, m-1-y
	}
	quarter := c.max / 4
	var sub uint64
	if c.sub != nil {
		s := scratchFor(scratch, 4)
		s[0], s[1] = hx, hy
		sub = c.sub.IndexFast(Point(s[:2]), s[2:4])
	}
	return q*quarter + sub
}

// ScratchLen implements Curve.
func (c *Moore) ScratchLen() int { return 4 }

// Point implements Inverter.
func (c *Moore) Point(idx uint64, dst Point) Point {
	checkIndex(idx, c.max)
	dst = ensure(dst, 2)
	m := c.half()
	quarter := c.max / 4
	q := idx / quarter
	h := c.subPoint(idx % quarter)
	hx, hy := h[0], h[1]
	switch q {
	case 0: // BL
		dst[0], dst[1] = m-1-hx, hy
	case 1: // TL
		dst[0], dst[1] = m-1-hx, hy+m
	case 2: // TR
		dst[0], dst[1] = hx+m, m-1-hy+m
	default: // BR
		dst[0], dst[1] = hx+m, m-1-hy
	}
	return dst
}
