package sfc

// Hilbert is the d-dimensional Hilbert curve, implemented with John
// Skilling's transform ("Programming the Hilbert curve", AIP Conf. Proc.
// 707, 2004). The curve is continuous — consecutive cells are always grid
// neighbors — and is the most "fair" of the curves studied in the paper:
// no dimension dominates the order.
type Hilbert struct {
	dims int
	bits int
	side uint32
	max  uint64
}

// NewHilbert returns a Hilbert curve over a (2^bits)^dims grid.
// dims*bits must be at most 64.
func NewHilbert(dims, bits int) (*Hilbert, error) {
	if err := checkBinary(dims, bits); err != nil {
		return nil, err
	}
	return &Hilbert{
		dims: dims,
		bits: bits,
		side: 1 << bits,
		max:  shiftMax(dims * bits),
	}, nil
}

// Name implements Curve.
func (c *Hilbert) Name() string { return "hilbert" }

// Dims implements Curve.
func (c *Hilbert) Dims() int { return c.dims }

// Side implements Curve.
func (c *Hilbert) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *Hilbert) MaxIndex() uint64 { return c.max }

// Bijective implements Curve.
func (c *Hilbert) Bijective() bool { return true }

// Index implements Curve.
func (c *Hilbert) Index(p Point) uint64 {
	checkPoint(p, c.dims, c.side)
	return c.IndexFast(p, nil)
}

// IndexFast implements Curve.
func (c *Hilbert) IndexFast(p Point, scratch []uint32) uint64 {
	// Work on a copy in Skilling's "transpose" layout: X[0] carries the
	// most significant interleaved bits.
	x := scratchFor(scratch, c.dims)
	for i := range x {
		x[i] = p[c.dims-1-i]
	}
	axesToTranspose(x, c.bits)
	// Interleave the transposed words into the scalar index.
	var idx uint64
	for b := c.bits - 1; b >= 0; b-- {
		for i := 0; i < c.dims; i++ {
			idx = idx<<1 | uint64(x[i]>>b&1)
		}
	}
	return idx
}

// ScratchLen implements Curve.
func (c *Hilbert) ScratchLen() int { return c.dims }

// Point implements Inverter.
func (c *Hilbert) Point(idx uint64, dst Point) Point {
	checkIndex(idx, c.max)
	dst = ensure(dst, c.dims)
	x := make([]uint32, c.dims)
	// De-interleave the scalar index into the transpose layout.
	for b := 0; b < c.bits; b++ {
		for i := c.dims - 1; i >= 0; i-- {
			x[i] |= uint32(idx&1) << b
			idx >>= 1
		}
	}
	transposeToAxes(x, c.bits)
	for i := range x {
		dst[c.dims-1-i] = x[i]
	}
	return dst
}

// axesToTranspose converts grid coordinates (in transpose layout) into the
// transposed Hilbert index in place. Skilling 2004, figure 2.
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << (bits - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts a transposed Hilbert index into grid coordinates
// in place. Skilling 2004, figure 2 (reverse direction).
func transposeToAxes(x []uint32, bits int) {
	n := len(x)
	side := uint32(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != side; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}
