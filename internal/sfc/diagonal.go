package sfc

import "fmt"

// Diagonal is the anti-diagonal zigzag order: cells are sorted by the sum
// of their coordinates, with alternating traversal direction within each
// diagonal (the Cantor zigzag). Section 5.2 of the paper identifies the
// balance factor f = 1 of the SFC2 stage with this curve.
//
// In two dimensions the order is an exact bijection with a computable
// inverse. For dims > 2 the curve defines a total order (sum of coordinates
// major, alternating lexicographic minor) but not a contiguous bijection,
// so Bijective() reports false.
type Diagonal struct {
	dims int
	side uint32
	max  uint64
}

// NewDiagonal returns a diagonal order over a (side)^dims grid.
func NewDiagonal(dims int, side uint32) (*Diagonal, error) {
	n, err := gridCells(dims, side)
	if err != nil {
		return nil, err
	}
	if dims != 2 {
		// Order values are sum*side^dims + lexicographic rank; the sum can
		// reach dims*(side-1), so bound the product.
		if _, ok := pow(uint64(side), dims+1); !ok {
			return nil, fmt.Errorf("sfc: diagonal order values for %d^%d grid overflow uint64", side, dims)
		}
	}
	return &Diagonal{dims: dims, side: side, max: n}, nil
}

// Name implements Curve.
func (c *Diagonal) Name() string { return "diagonal" }

// Dims implements Curve.
func (c *Diagonal) Dims() int { return c.dims }

// Side implements Curve.
func (c *Diagonal) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *Diagonal) MaxIndex() uint64 {
	if c.dims == 2 {
		return c.max
	}
	cells, _ := pow(uint64(c.side), c.dims)
	return cells * uint64(c.dims)
}

// Bijective implements Curve.
func (c *Diagonal) Bijective() bool { return c.dims == 2 }

// Index implements Curve.
func (c *Diagonal) Index(p Point) uint64 {
	checkPoint(p, c.dims, c.side)
	return c.IndexFast(p, nil)
}

// IndexFast implements Curve.
func (c *Diagonal) IndexFast(p Point, _ []uint32) uint64 {
	if c.dims == 2 {
		return c.index2(int64(p[0]), int64(p[1]))
	}
	var sum uint64
	for _, v := range p {
		sum += uint64(v)
	}
	var lex uint64
	for i := c.dims - 1; i >= 0; i-- {
		d := uint64(p[i])
		if sum&1 == 1 {
			d = uint64(c.side) - 1 - d
		}
		lex = lex*uint64(c.side) + d
	}
	cells, _ := pow(uint64(c.side), c.dims)
	return sum*cells + lex
}

// ScratchLen implements Curve.
func (c *Diagonal) ScratchLen() int { return 0 }

// diagLen returns the number of cells on diagonal t of an n-by-n grid.
func diagLen(t, n int64) int64 {
	l := t + 1
	if m := 2*n - 1 - t; m < l {
		l = m
	}
	if l > n {
		l = n
	}
	return l
}

// index2 returns the exact 2-D zigzag diagonal index.
func (c *Diagonal) index2(x, y int64) uint64 {
	n := int64(c.side)
	t := x + y
	// Cells on diagonals before t.
	var before int64
	if t <= n {
		before = t * (t + 1) / 2
	} else {
		r := 2*n - 1 - t // diagonals from t (inclusive) to the corner
		before = n*n - r*(r+1)/2
	}
	// Rank within diagonal t: x runs over [max(0,t-n+1), min(t,n-1)].
	lo := int64(0)
	if t-n+1 > lo {
		lo = t - n + 1
	}
	rank := x - lo
	if t&1 == 1 { // odd diagonals run in decreasing x
		rank = diagLen(t, n) - 1 - rank
	}
	return uint64(before + rank)
}

// Point implements Inverter for the exact 2-D diagonal order.
// It panics for dims != 2, where the order is order-only.
func (c *Diagonal) Point(idx uint64, dst Point) Point {
	if c.dims != 2 {
		panic("sfc: diagonal inverse is only defined for 2 dimensions")
	}
	checkIndex(idx, c.max)
	dst = ensure(dst, 2)
	n := int64(c.side)
	rest := int64(idx)
	var t int64
	for {
		l := diagLen(t, n)
		if rest < l {
			break
		}
		rest -= l
		t++
	}
	lo := int64(0)
	if t-n+1 > lo {
		lo = t - n + 1
	}
	rank := rest
	if t&1 == 1 {
		rank = diagLen(t, n) - 1 - rank
	}
	x := lo + rank
	dst[0] = uint32(x)
	dst[1] = uint32(t - x)
	return dst
}
