package sfc

// This file implements the three lexicographic ("line-by-line") curves:
//
//   Sweep  — every line traversed in the same direction; the curve jumps
//            back to the start of the next line.
//   Scan   — boustrophedon (serpentine): each line reverses direction, so
//            consecutive cells are always grid neighbors.
//   C-Scan — cyclic scan: serpentine in every dimension except the lowest,
//            which is always traversed forward, modeling the return sweep
//            of the disk C-SCAN algorithm.
//
// All three order points primarily by dimension Dims()-1, which is why the
// paper finds them maximally unfair: the most significant dimension never
// sees a priority inversion while the others absorb all of them.

// Sweep is the row-major curve.
type Sweep struct {
	dims int
	side uint32
	max  uint64
}

// NewSweep returns a Sweep curve over a (side)^dims grid.
func NewSweep(dims int, side uint32) (*Sweep, error) {
	n, err := gridCells(dims, side)
	if err != nil {
		return nil, err
	}
	return &Sweep{dims: dims, side: side, max: n}, nil
}

// Name implements Curve.
func (c *Sweep) Name() string { return "sweep" }

// Dims implements Curve.
func (c *Sweep) Dims() int { return c.dims }

// Side implements Curve.
func (c *Sweep) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *Sweep) MaxIndex() uint64 { return c.max }

// Bijective implements Curve.
func (c *Sweep) Bijective() bool { return true }

// Index implements Curve.
func (c *Sweep) Index(p Point) uint64 {
	checkPoint(p, c.dims, c.side)
	return c.IndexFast(p, nil)
}

// IndexFast implements Curve.
func (c *Sweep) IndexFast(p Point, _ []uint32) uint64 {
	var idx uint64
	for i := c.dims - 1; i >= 0; i-- {
		idx = idx*uint64(c.side) + uint64(p[i])
	}
	return idx
}

// ScratchLen implements Curve.
func (c *Sweep) ScratchLen() int { return 0 }

// Point implements Inverter.
func (c *Sweep) Point(idx uint64, dst Point) Point {
	checkIndex(idx, c.max)
	dst = ensure(dst, c.dims)
	for i := 0; i < c.dims; i++ {
		dst[i] = uint32(idx % uint64(c.side))
		idx /= uint64(c.side)
	}
	return dst
}

// Scan is the boustrophedon (serpentine) curve.
type Scan struct {
	dims int
	side uint32
	max  uint64
}

// NewScan returns a Scan curve over a (side)^dims grid.
func NewScan(dims int, side uint32) (*Scan, error) {
	n, err := gridCells(dims, side)
	if err != nil {
		return nil, err
	}
	return &Scan{dims: dims, side: side, max: n}, nil
}

// Name implements Curve.
func (c *Scan) Name() string { return "scan" }

// Dims implements Curve.
func (c *Scan) Dims() int { return c.dims }

// Side implements Curve.
func (c *Scan) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *Scan) MaxIndex() uint64 { return c.max }

// Bijective implements Curve.
func (c *Scan) Bijective() bool { return true }

// Index implements Curve.
func (c *Scan) Index(p Point) uint64 {
	checkPoint(p, c.dims, c.side)
	return c.IndexFast(p, nil)
}

// IndexFast implements Curve.
func (c *Scan) IndexFast(p Point, _ []uint32) uint64 {
	// A dimension's traversal reverses whenever the sum of the original
	// coordinates of the more significant dimensions is odd (the n-ary
	// reflected Gray construction), which keeps consecutive cells adjacent.
	var idx, sum uint64
	for i := c.dims - 1; i >= 0; i-- {
		d := uint64(p[i])
		adj := d
		if sum&1 == 1 {
			adj = uint64(c.side) - 1 - d
		}
		idx = idx*uint64(c.side) + adj
		sum += d
	}
	return idx
}

// ScratchLen implements Curve.
func (c *Scan) ScratchLen() int { return 0 }

// Point implements Inverter.
func (c *Scan) Point(idx uint64, dst Point) Point {
	checkIndex(idx, c.max)
	dst = ensure(dst, c.dims)
	div := c.max
	var sum uint64
	for i := c.dims - 1; i >= 0; i-- {
		div /= uint64(c.side)
		adj := idx / div
		idx %= div
		v := adj
		if sum&1 == 1 {
			v = uint64(c.side) - 1 - adj
		}
		dst[i] = uint32(v)
		sum += v
	}
	return dst
}

// CScan is the cyclic-scan curve: serpentine above the lowest dimension,
// always-forward in the lowest dimension.
type CScan struct {
	dims int
	side uint32
	max  uint64
}

// NewCScan returns a C-Scan curve over a (side)^dims grid.
func NewCScan(dims int, side uint32) (*CScan, error) {
	n, err := gridCells(dims, side)
	if err != nil {
		return nil, err
	}
	return &CScan{dims: dims, side: side, max: n}, nil
}

// Name implements Curve.
func (c *CScan) Name() string { return "cscan" }

// Dims implements Curve.
func (c *CScan) Dims() int { return c.dims }

// Side implements Curve.
func (c *CScan) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *CScan) MaxIndex() uint64 { return c.max }

// Bijective implements Curve.
func (c *CScan) Bijective() bool { return true }

// Index implements Curve.
func (c *CScan) Index(p Point) uint64 {
	checkPoint(p, c.dims, c.side)
	return c.IndexFast(p, nil)
}

// IndexFast implements Curve.
func (c *CScan) IndexFast(p Point, _ []uint32) uint64 {
	var idx, sum uint64
	for i := c.dims - 1; i >= 0; i-- {
		d := uint64(p[i])
		adj := d
		if sum&1 == 1 && i != 0 {
			adj = uint64(c.side) - 1 - d
		}
		idx = idx*uint64(c.side) + adj
		sum += d
	}
	return idx
}

// ScratchLen implements Curve.
func (c *CScan) ScratchLen() int { return 0 }

// Point implements Inverter.
func (c *CScan) Point(idx uint64, dst Point) Point {
	checkIndex(idx, c.max)
	dst = ensure(dst, c.dims)
	div := c.max
	var sum uint64
	for i := c.dims - 1; i >= 0; i-- {
		div /= uint64(c.side)
		adj := idx / div
		idx %= div
		v := adj
		if sum&1 == 1 && i != 0 {
			v = uint64(c.side) - 1 - adj
		}
		dst[i] = uint32(v)
		sum += v
	}
	return dst
}

// ensure returns dst if it has the right length, else a fresh Point.
func ensure(dst Point, dims int) Point {
	if len(dst) == dims {
		return dst
	}
	return make(Point, dims)
}
