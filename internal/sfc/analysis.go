package sfc

import "fmt"

// Analysis quantifies the order-preservation and locality properties that
// drive the scheduling results, following the irregularity analysis of the
// authors' companion papers (Mokbel & Aref, CIKM 2001; Mokbel, Aref &
// Kamel, GeoInformatica 2003).
type Analysis struct {
	// Cells is the number of grid cells walked.
	Cells uint64
	// IrregularityPerDim[k] counts steps that move backward in dimension
	// k — the local (per-step) reversal tendency.
	IrregularityPerDim []uint64
	// PairInversionsPerDim[k] counts pairs of cells served out of
	// dimension-k coordinate order: cells (i, j) with i before j on the
	// curve but i's k-coordinate strictly greater than j's. This is the
	// companion papers' irregularity measure, and a scheduler built on the
	// curve inherits priority inversions in dimension k roughly in
	// proportion to it.
	PairInversionsPerDim []uint64
	// Jumps counts steps between non-adjacent cells (Manhattan distance
	// greater than 1); zero for the continuous curves (Scan, Peano,
	// Hilbert, 2-D Spiral).
	Jumps uint64
	// MeanStep and MaxStep summarize the Manhattan step lengths.
	MeanStep float64
	MaxStep  uint64
}

// maxAnalysisCells bounds exhaustive curve walks; a 16^4 grid (65536
// cells) walks in well under a millisecond, and no analysis needs more
// resolution than that to rank curves.
const maxAnalysisCells = 1 << 22

// Analyze walks the whole curve and tabulates its irregularity and step
// statistics. The curve must be invertible (all bijective curves are) and
// its grid must have at most 2^22 cells.
func Analyze(c Inverter) (*Analysis, error) {
	if !c.Bijective() {
		return nil, fmt.Errorf("sfc: %s over %d dims is order-only and cannot be walked", c.Name(), c.Dims())
	}
	n := c.MaxIndex()
	if n > maxAnalysisCells {
		return nil, fmt.Errorf("sfc: grid of %d cells exceeds analysis bound %d", n, maxAnalysisCells)
	}
	a := &Analysis{
		Cells:                n,
		IrregularityPerDim:   make([]uint64, c.Dims()),
		PairInversionsPerDim: make([]uint64, c.Dims()),
	}
	if n == 0 {
		return a, nil
	}
	// Per-dimension pair inversions via one Fenwick tree per dimension:
	// walking the curve, each cell contributes the number of already-seen
	// cells with a strictly larger coordinate.
	trees := make([]fenwick, c.Dims())
	for k := range trees {
		trees[k] = newFenwick(int(c.Side()))
	}
	prev := c.Point(0, nil).Clone()
	for k, v := range prev {
		a.PairInversionsPerDim[k] += trees[k].countGreater(v)
		trees[k].add(v)
	}
	var totalStep uint64
	for idx := uint64(1); idx < n; idx++ {
		cur := c.Point(idx, nil)
		var step uint64
		for k := range cur {
			d := int64(cur[k]) - int64(prev[k])
			if d < 0 {
				a.IrregularityPerDim[k]++
				d = -d
			}
			step += uint64(d)
			a.PairInversionsPerDim[k] += trees[k].countGreater(cur[k])
			trees[k].add(cur[k])
		}
		if step > 1 {
			a.Jumps++
		}
		if step > a.MaxStep {
			a.MaxStep = step
		}
		totalStep += step
		copy(prev, cur)
	}
	a.MeanStep = float64(totalStep) / float64(n-1)
	return a, nil
}

// fenwick is a binary indexed tree over coordinate values.
type fenwick struct {
	tree []uint64
	n    int
}

func newFenwick(n int) fenwick { return fenwick{tree: make([]uint64, n+1), n: n} }

// add records one occurrence of coordinate v.
func (f fenwick) add(v uint32) {
	for i := int(v) + 1; i <= f.n; i += i & (-i) {
		f.tree[i]++
	}
}

// countGreater returns how many recorded coordinates exceed v.
func (f fenwick) countGreater(v uint32) uint64 {
	// total - count(<= v)
	var le uint64
	for i := int(v) + 1; i > 0; i -= i & (-i) {
		le += f.tree[i]
	}
	var total uint64
	for i := f.n; i > 0; i -= i & (-i) {
		total += f.tree[i]
	}
	return total - le
}

// TotalIrregularity sums the per-dimension irregularity counts.
func (a *Analysis) TotalIrregularity() uint64 {
	var t uint64
	for _, v := range a.IrregularityPerDim {
		t += v
	}
	return t
}

// TotalPairInversions sums the per-dimension pair-inversion counts.
func (a *Analysis) TotalPairInversions() uint64 {
	var t uint64
	for _, v := range a.PairInversionsPerDim {
		t += v
	}
	return t
}

// PairInversionRate normalizes the total pair inversions by the number of
// cell pairs, giving a curve-size-independent figure in [0, 1] per
// dimension on average.
func (a *Analysis) PairInversionRate() float64 {
	if a.Cells < 2 || len(a.PairInversionsPerDim) == 0 {
		return 0
	}
	pairs := float64(a.Cells) * float64(a.Cells-1) / 2
	return float64(a.TotalPairInversions()) / pairs / float64(len(a.PairInversionsPerDim))
}

// Continuous reports whether every step moves to a grid neighbor.
func (a *Analysis) Continuous() bool { return a.Jumps == 0 }
