package sfc

import (
	"math/rand"
	"testing"
)

// fastCases returns one small and one larger configuration per registered
// curve; the small one is verified exhaustively.
func fastCases(t testing.TB) []Curve {
	var cs []Curve
	for _, name := range Names() {
		dims := []int{2, 3}
		if name == "moore" {
			dims = []int{2}
		}
		for _, d := range dims {
			for _, side := range []uint32{4, 16} {
				c, err := New(name, d, side)
				if err != nil {
					t.Fatalf("New(%s, %d, %d): %v", name, d, side, err)
				}
				cs = append(cs, c)
			}
		}
	}
	// High-dimensional stress for the scratch-carrying curves.
	cs = append(cs, MustNew("hilbert", 12, 16), MustNew("peano", 8, 9))
	return cs
}

// eachCell enumerates all cells of c when the grid is small, and a random
// sample otherwise.
func eachCell(c Curve, rng *rand.Rand, visit func(Point)) {
	cells, _ := pow(uint64(c.Side()), c.Dims())
	p := make(Point, c.Dims())
	if cells <= 1<<14 {
		for n := uint64(0); n < cells; n++ {
			visit(p)
			for i := range p {
				p[i]++
				if p[i] < c.Side() {
					break
				}
				p[i] = 0
			}
		}
		return
	}
	for n := 0; n < 4096; n++ {
		for i := range p {
			p[i] = uint32(rng.Intn(int(c.Side())))
		}
		visit(p)
	}
}

func TestIndexFastMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range fastCases(t) {
		scratch := make([]uint32, c.ScratchLen())
		eachCell(c, rng, func(p Point) {
			want := c.Index(p)
			if got := c.IndexFast(p, scratch); got != want {
				t.Fatalf("%s(%dd,%d): IndexFast(%v) = %d, Index = %d", c.Name(), c.Dims(), c.Side(), p, got, want)
			}
			// nil scratch must agree too (allocating fallback).
			if got := c.IndexFast(p, nil); got != want {
				t.Fatalf("%s(%dd,%d): IndexFast(%v, nil) = %d, Index = %d", c.Name(), c.Dims(), c.Side(), p, got, want)
			}
		})
	}
}

func TestIndexFastNoAllocsWithScratch(t *testing.T) {
	for _, c := range fastCases(t) {
		c := c
		scratch := make([]uint32, c.ScratchLen())
		p := make(Point, c.Dims())
		for i := range p {
			p[i] = uint32(i) % c.Side()
		}
		allocs := testing.AllocsPerRun(100, func() {
			_ = c.IndexFast(p, scratch)
		})
		if allocs != 0 {
			t.Errorf("%s(%dd,%d): IndexFast allocates %v per op with scratch", c.Name(), c.Dims(), c.Side(), allocs)
		}
	}
}

func TestLUTMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range fastCases(t) {
		cells, _ := pow(uint64(c.Side()), c.Dims())
		l, err := NewLUT(c)
		if cells > MaxLUTCells {
			if err == nil {
				t.Errorf("%s(%dd,%d): NewLUT accepted %d cells", c.Name(), c.Dims(), c.Side(), cells)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s(%dd,%d): NewLUT: %v", c.Name(), c.Dims(), c.Side(), err)
		}
		if l.Name() != c.Name() || l.MaxIndex() != c.MaxIndex() || l.Bijective() != c.Bijective() {
			t.Errorf("%s: LUT metadata mismatch", c.Name())
		}
		eachCell(c, rng, func(p Point) {
			if got, want := l.Index(p), c.Index(p); got != want {
				t.Fatalf("%s(%dd,%d): LUT.Index(%v) = %d, Index = %d", c.Name(), c.Dims(), c.Side(), p, got, want)
			}
		})
	}
}

func TestAccelerate(t *testing.T) {
	small := MustNew("hilbert", 3, 16) // 4096 cells: accelerated
	if _, ok := Accelerate(small).(*LUT); !ok {
		t.Error("small grid not accelerated")
	}
	// Accelerating twice must not stack LUTs.
	a := Accelerate(small)
	if Accelerate(a) != a {
		t.Error("double acceleration re-wrapped the LUT")
	}
	big := MustNew("hilbert", 3, 256) // 2^24 cells: passthrough
	if Accelerate(big) != big {
		t.Error("oversized grid should pass through unchanged")
	}
}

func FuzzIndexFastEquivalence(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint16(0))
	f.Add(uint16(13), uint16(200), uint16(31))
	hil := MustNew("hilbert", 3, 256)
	pea := MustNew("peano", 3, 27)
	moo := MustNew("moore", 2, 64)
	curves := []Curve{hil, pea, moo}
	scratch := make([]uint32, 8)
	f.Fuzz(func(t *testing.T, a, b, c uint16) {
		for _, cv := range curves {
			p := Point{uint32(a) % cv.Side(), uint32(b) % cv.Side(), uint32(c) % cv.Side()}[:cv.Dims()]
			if got, want := cv.IndexFast(p, scratch), cv.Index(p); got != want {
				t.Fatalf("%s: IndexFast(%v) = %d, Index = %d", cv.Name(), p, got, want)
			}
		}
	})
}
