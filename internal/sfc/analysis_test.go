package sfc

import "testing"

func analyze(t *testing.T, name string, dims int, side uint32) *Analysis {
	t.Helper()
	c := MustNew(name, dims, side)
	inv, ok := c.(Inverter)
	if !ok {
		t.Fatalf("%s is not invertible", name)
	}
	a, err := Analyze(inv)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestContinuousCurvesHaveNoJumps(t *testing.T) {
	for _, name := range []string{"scan", "peano", "hilbert"} {
		a := analyze(t, name, 3, 8)
		if !a.Continuous() {
			t.Errorf("%s: %d jumps, want 0", name, a.Jumps)
		}
		if a.MeanStep != 1 || a.MaxStep != 1 {
			t.Errorf("%s: step stats %v/%v, want 1/1", name, a.MeanStep, a.MaxStep)
		}
	}
	if a := analyze(t, "spiral", 2, 9); !a.Continuous() {
		t.Errorf("2-D spiral: %d jumps, want 0", a.Jumps)
	}
}

func TestDiscontinuousCurvesJump(t *testing.T) {
	for _, name := range []string{"sweep", "cscan", "gray", "zorder"} {
		a := analyze(t, name, 2, 8)
		if a.Continuous() {
			t.Errorf("%s should have jumps", name)
		}
	}
}

func TestSweepNeverBackwardInMajorDimension(t *testing.T) {
	for _, name := range []string{"sweep", "scan", "cscan"} {
		a := analyze(t, name, 3, 8)
		last := len(a.IrregularityPerDim) - 1
		if a.IrregularityPerDim[last] != 0 {
			t.Errorf("%s: %d backward steps in major dimension, want 0",
				name, a.IrregularityPerDim[last])
		}
		// ... at the cost of many backward steps in the minor dimensions.
		if a.IrregularityPerDim[0] == 0 {
			t.Errorf("%s: minor dimension should absorb irregularity", name)
		}
	}
}

// TestPairInversionsPredictFig5 ties the static analysis to the Fig. 5
// ranking where the global measure is predictive: Gray and Hilbert carry
// the highest pair-inversion rates, Peano sits below them, and the
// lexicographic curves are lowest. (Dynamically Peano beats even the
// lexicographic curves, because a running scheduler only compares
// co-pending requests near the serving frontier, where Peano's serpentine
// is locally order-respecting — the global Kendall-style measure cannot
// see that.)
func TestPairInversionsPredictFig5(t *testing.T) {
	rate := func(name string, side uint32) float64 {
		return analyze(t, name, 3, side).PairInversionRate()
	}
	peano := rate("peano", 9)
	sweep := rate("sweep", 8)
	gray := rate("gray", 8)
	hilbert := rate("hilbert", 8)
	if gray <= peano || hilbert <= peano {
		t.Errorf("gray %.4f / hilbert %.4f should exceed peano %.4f", gray, hilbert, peano)
	}
	if gray <= sweep || hilbert <= sweep {
		t.Errorf("gray %.4f / hilbert %.4f should exceed sweep %.4f", gray, hilbert, sweep)
	}
}

// TestPairInversionsZeroInMajorDimension: the lexicographic curves never
// invert a pair in their most significant dimension — the Fig. 7b favored
// dimension, exactly.
func TestPairInversionsZeroInMajorDimension(t *testing.T) {
	for _, name := range []string{"sweep", "scan", "cscan"} {
		a := analyze(t, name, 3, 8)
		if got := a.PairInversionsPerDim[2]; got != 0 {
			t.Errorf("%s: %d pair inversions in major dimension, want 0", name, got)
		}
	}
}

func TestPairInversionsBruteForceAgreement(t *testing.T) {
	c := MustNew("hilbert", 2, 8).(Inverter)
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force on the small grid.
	var pts []Point
	for i := uint64(0); i < c.MaxIndex(); i++ {
		pts = append(pts, c.Point(i, nil).Clone())
	}
	want := make([]uint64, 2)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			for k := 0; k < 2; k++ {
				if pts[i][k] > pts[j][k] {
					want[k]++
				}
			}
		}
	}
	for k := 0; k < 2; k++ {
		if a.PairInversionsPerDim[k] != want[k] {
			t.Errorf("dim %d: fenwick %d != brute force %d", k, a.PairInversionsPerDim[k], want[k])
		}
	}
}

// TestHilbertIrregularityBalanced mirrors Fig. 7: Hilbert spreads its
// irregularity nearly evenly over dimensions, while sweep concentrates it.
func TestHilbertIrregularityBalanced(t *testing.T) {
	h := analyze(t, "hilbert", 3, 8)
	min, max := h.IrregularityPerDim[0], h.IrregularityPerDim[0]
	for _, v := range h.IrregularityPerDim {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == 0 || float64(max)/float64(min) > 1.5 {
		t.Errorf("hilbert irregularity should be balanced, got %v", h.IrregularityPerDim)
	}
}

func TestAnalyzeBounds(t *testing.T) {
	big := MustNew("hilbert", 4, 256).(Inverter)
	if _, err := Analyze(big); err == nil {
		t.Error("expected error for oversized grid")
	}
	one := MustNew("sweep", 1, 1).(Inverter)
	a, err := Analyze(one)
	if err != nil || a.Cells != 1 || a.TotalIrregularity() != 0 {
		t.Errorf("degenerate grid: %+v, err %v", a, err)
	}
}
