package sfc

import "fmt"

// MaxLUTCells bounds the grids NewLUT accepts: 2^16 cells keep the table
// inside 512 KiB, small enough to live in L2 for the hot 2-D/3-D SFC1
// configurations (e.g. 3 dims x 4 bits = 4096 cells).
const MaxLUTCells = 1 << 16

// LUT wraps a curve with a precomputed cell -> index table, turning Index
// into a row-major rank computation plus one table load. It is built once
// at construction (one reference Index call per grid cell) and is
// worthwhile for curves whose Index walks bit or digit levels (Hilbert,
// Peano, Gray) on grids small enough for MaxLUTCells.
//
// LUT implements Curve with the base curve's name and bounds, so it can be
// dropped in anywhere the base curve is accepted. It intentionally does NOT
// implement Inverter even when the base curve does: callers that need the
// inverse should keep a reference to the base curve (see Base).
type LUT struct {
	base Curve
	dims int
	side uint32
	tab  []uint64
}

// NewLUT precomputes the index table of c. It fails when the grid has more
// than MaxLUTCells cells.
func NewLUT(c Curve) (*LUT, error) {
	cells, err := gridCells(c.Dims(), c.Side())
	if err != nil {
		return nil, err
	}
	if cells > MaxLUTCells {
		return nil, fmt.Errorf("sfc: %d-cell grid exceeds the %d-cell LUT limit", cells, MaxLUTCells)
	}
	l := &LUT{base: c, dims: c.Dims(), side: c.Side(), tab: make([]uint64, cells)}
	// Enumerate cells in row-major (rank) order with an odometer.
	p := make(Point, l.dims)
	for rank := uint64(0); rank < cells; rank++ {
		l.tab[rank] = c.Index(p)
		for i := 0; i < l.dims; i++ {
			p[i]++
			if p[i] < l.side {
				break
			}
			p[i] = 0
		}
	}
	return l, nil
}

// Base returns the wrapped curve.
func (l *LUT) Base() Curve { return l.base }

// Name implements Curve. It reports the base curve's name so experiment
// labels stay stable when a LUT is swapped in.
func (l *LUT) Name() string { return l.base.Name() }

// Dims implements Curve.
func (l *LUT) Dims() int { return l.dims }

// Side implements Curve.
func (l *LUT) Side() uint32 { return l.side }

// MaxIndex implements Curve.
func (l *LUT) MaxIndex() uint64 { return l.base.MaxIndex() }

// Bijective implements Curve.
func (l *LUT) Bijective() bool { return l.base.Bijective() }

// Index implements Curve.
func (l *LUT) Index(p Point) uint64 {
	checkPoint(p, l.dims, l.side)
	return l.IndexFast(p, nil)
}

// IndexFast implements Curve.
func (l *LUT) IndexFast(p Point, _ []uint32) uint64 {
	rank := uint64(p[l.dims-1])
	for i := l.dims - 2; i >= 0; i-- {
		rank = rank*uint64(l.side) + uint64(p[i])
	}
	return l.tab[rank]
}

// ScratchLen implements Curve.
func (l *LUT) ScratchLen() int { return 0 }

// Accelerate returns a LUT over c when its grid fits MaxLUTCells, and c
// itself otherwise. Already-accelerated curves pass through unchanged.
func Accelerate(c Curve) Curve {
	if _, ok := c.(*LUT); ok {
		return c
	}
	if l, err := NewLUT(c); err == nil {
		return l
	}
	return c
}
