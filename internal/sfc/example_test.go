package sfc_test

import (
	"fmt"

	"sfcsched/internal/sfc"
)

// ExampleCurve shows the 4x4 Hilbert traversal: every cell visited once,
// consecutive cells adjacent.
func ExampleCurve() {
	c := sfc.MustNew("hilbert", 2, 4)
	inv := c.(sfc.Inverter)
	for idx := uint64(0); idx < 8; idx++ {
		fmt.Println(inv.Point(idx, nil))
	}
	// Output:
	// [0 0]
	// [0 1]
	// [1 1]
	// [1 0]
	// [2 0]
	// [3 0]
	// [3 1]
	// [2 1]
}

// ExampleNew demonstrates natural-grid rounding: binary curves need a
// power-of-two side, Peano a power of three.
func ExampleNew() {
	h, _ := sfc.New("hilbert", 2, 20)
	p, _ := sfc.New("peano", 2, 20)
	fmt.Println(h.Side(), p.Side())
	// Output: 32 27
}

// ExampleAnalyze compares curve fairness: Hilbert spreads its pair
// inversions over the dimensions, sweep protects the last one completely.
func ExampleAnalyze() {
	for _, name := range []string{"sweep", "hilbert"} {
		c := sfc.MustNew(name, 2, 8).(sfc.Inverter)
		a, _ := sfc.Analyze(c)
		fmt.Printf("%s: continuous=%v per-dim inversions=%v\n",
			name, a.Continuous(), a.PairInversionsPerDim)
	}
	// Output:
	// sweep: continuous=false per-dim inversions=[784 0]
	// hilbert: continuous=true per-dim inversions=[896 312]
}
