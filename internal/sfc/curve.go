// Package sfc implements multi-dimensional space-filling curves.
//
// A space-filling curve visits every cell of a finite d-dimensional grid
// exactly once, defining a linear order over the grid. The Cascaded-SFC
// scheduler (Mokbel et al., ICDE 2004) uses these orders to reduce
// multi-parameter disk scheduling to one-dimensional priority-queue
// dispatch. The package provides the seven curves of the paper's Figure 1
// (Sweep, Scan, C-Scan, Peano, Gray, Hilbert, Spiral) plus the Diagonal and
// Z-order curves used by companion constructions.
//
// All curves map points to uint64 order values via Index. Curves that are
// true bijections onto [0, MaxIndex()) additionally implement Inverter and
// report Bijective() == true; generalizations that only define a total
// order (the d>2 Spiral and Diagonal) report false.
package sfc

import (
	"fmt"
	"math"
)

// Point is a grid cell: one coordinate per dimension. Coordinates must be
// in [0, Side()) of the curve they are used with.
type Point []uint32

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Curve is a linear order over the cells of a d-dimensional grid with
// Side() cells per dimension. Lower Index values come earlier in the order.
//
// By library convention, dimension Dims()-1 is the most significant
// dimension for the lexicographic curves (Sweep, Scan, C-Scan): those
// curves never invert the order of two points that differ in it.
type Curve interface {
	// Name returns the curve's registry name (e.g. "hilbert").
	Name() string
	// Dims returns the dimensionality of the grid.
	Dims() int
	// Side returns the number of cells per dimension of the natural grid.
	Side() uint32
	// MaxIndex returns an exclusive upper bound on Index results.
	MaxIndex() uint64
	// Bijective reports whether Index is a bijection onto [0, MaxIndex()).
	Bijective() bool
	// Index returns the position of p along the curve. It panics if p has
	// the wrong number of dimensions or an out-of-range coordinate.
	Index(p Point) uint64
	// IndexFast returns Index(p) without validating p. When scratch has at
	// least ScratchLen() elements it is used as working memory and the call
	// performs no heap allocation; a nil or short scratch falls back to
	// allocating. Behavior on a point with the wrong dimensionality or an
	// out-of-range coordinate is undefined.
	IndexFast(p Point, scratch []uint32) uint64
	// ScratchLen returns the scratch length IndexFast needs to run
	// allocation-free; 0 when it needs no working memory.
	ScratchLen() int
}

// Inverter is implemented by bijective curves that can also map an index
// back to its grid cell.
type Inverter interface {
	Curve
	// Point returns the cell at position idx along the curve. If dst is
	// non-nil and has capacity Dims(), it is reused. It panics if
	// idx >= MaxIndex().
	Point(idx uint64, dst Point) Point
}

// scratchFor returns a scratch slice of at least n elements, reusing s
// when its capacity allows.
func scratchFor(s []uint32, n int) []uint32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint32, n)
}

// checkPoint panics unless p is a valid cell of a (dims, side) grid.
func checkPoint(p Point, dims int, side uint32) {
	if len(p) != dims {
		panic(fmt.Sprintf("sfc: point has %d dims, curve has %d", len(p), dims))
	}
	for i, c := range p {
		if c >= side {
			panic(fmt.Sprintf("sfc: coordinate %d = %d out of range [0,%d)", i, c, side))
		}
	}
}

// checkIndex panics unless idx < max.
func checkIndex(idx, max uint64) {
	if idx >= max {
		panic(fmt.Sprintf("sfc: index %d out of range [0,%d)", idx, max))
	}
}

// pow returns base**exp, reporting overflow of uint64.
func pow(base uint64, exp int) (uint64, bool) {
	v := uint64(1)
	for i := 0; i < exp; i++ {
		if base != 0 && v > math.MaxUint64/base {
			return 0, false
		}
		v *= base
	}
	return v, true
}

// gridCells validates (dims, side) and returns side**dims, or an error when
// the cell count does not fit in uint64.
func gridCells(dims int, side uint32) (uint64, error) {
	if dims < 1 {
		return 0, fmt.Errorf("sfc: dims must be >= 1, got %d", dims)
	}
	if side < 1 {
		return 0, fmt.Errorf("sfc: side must be >= 1, got %d", side)
	}
	n, ok := pow(uint64(side), dims)
	if !ok {
		return 0, fmt.Errorf("sfc: grid %d^%d overflows uint64", side, dims)
	}
	return n, nil
}

// log2Ceil returns the smallest b with 2^b >= v (v >= 1).
func log2Ceil(v uint32) int {
	b := 0
	for uint32(1)<<b < v {
		b++
	}
	return b
}

// pow3Ceil returns the smallest m with 3^m >= v (v >= 1).
func pow3Ceil(v uint32) int {
	m := 0
	s := uint64(1)
	for s < uint64(v) {
		s *= 3
		m++
	}
	return m
}
