package sfc

import (
	"fmt"
	"math"
)

// Spiral is the center-out spiral order. In two dimensions it is an exact
// space-filling curve over an odd-sided grid: ring s (Chebyshev distance s
// from the center) occupies indices [(2s-1)^2, (2s+1)^2), traversed
// counter-clockwise starting just above the ring's bottom-right corner, so
// consecutive cells are always grid neighbors.
//
// For dims > 2 the spiral generalizes to an L-infinity shell order: cells
// are sorted by Chebyshev distance from the grid center, ties broken
// lexicographically. That generalization defines a total order but not a
// bijection onto a contiguous index range, so Bijective() reports false and
// the curve does not implement Inverter.
type Spiral struct {
	dims int
	side uint32 // odd for dims == 2
	max  uint64
}

// NewSpiral returns a spiral order over a (side)^dims grid. For dims == 2
// the side is rounded up to the next odd number so the spiral has a center
// cell; callers should treat Side() as authoritative.
func NewSpiral(dims int, side uint32) (*Spiral, error) {
	if dims == 2 && side%2 == 0 {
		side++
	}
	n, err := gridCells(dims, side)
	if err != nil {
		return nil, err
	}
	if dims != 2 {
		// Order values are shell*side^dims + lexicographic rank.
		if _, ok := pow(uint64(side), dims+1); !ok {
			return nil, fmt.Errorf("sfc: spiral order values for %d^%d grid overflow uint64", side, dims)
		}
	}
	return &Spiral{dims: dims, side: side, max: n}, nil
}

// Name implements Curve.
func (c *Spiral) Name() string { return "spiral" }

// Dims implements Curve.
func (c *Spiral) Dims() int { return c.dims }

// Side implements Curve.
func (c *Spiral) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *Spiral) MaxIndex() uint64 {
	if c.dims == 2 {
		return c.max
	}
	// Shell-order values are not contiguous; bound them instead.
	v, _ := pow(uint64(c.side), c.dims)
	return v * uint64(c.side)
}

// Bijective implements Curve.
func (c *Spiral) Bijective() bool { return c.dims == 2 }

// Index implements Curve.
func (c *Spiral) Index(p Point) uint64 {
	checkPoint(p, c.dims, c.side)
	return c.IndexFast(p, nil)
}

// IndexFast implements Curve.
func (c *Spiral) IndexFast(p Point, _ []uint32) uint64 {
	if c.dims == 2 {
		return c.index2(p)
	}
	// L-infinity shell from the center, ties lexicographic.
	center := int64(c.side-1) / 2
	var shell int64
	for _, v := range p {
		d := int64(v) - center
		if d < 0 {
			d = -d
		}
		if d > shell {
			shell = d
		}
	}
	var lex uint64
	for i := c.dims - 1; i >= 0; i-- {
		lex = lex*uint64(c.side) + uint64(p[i])
	}
	cells, _ := pow(uint64(c.side), c.dims)
	return uint64(shell)*cells + lex
}

// ScratchLen implements Curve.
func (c *Spiral) ScratchLen() int { return 0 }

// index2 returns the exact 2-D spiral index.
func (c *Spiral) index2(p Point) uint64 {
	center := int64(c.side-1) / 2
	dx := int64(p[0]) - center
	dy := int64(p[1]) - center
	s := dx
	if s < 0 {
		s = -s
	}
	if dy > s {
		s = dy
	}
	if -dy > s {
		s = -dy
	}
	if s == 0 {
		return 0
	}
	base := uint64(2*s-1) * uint64(2*s-1)
	var rank int64
	switch {
	case dx == s && dy > -s: // right edge, moving up
		rank = dy + s - 1
	case dy == s && dx < s: // top edge, moving left
		rank = 2*s + (s - 1 - dx)
	case dx == -s && dy < s: // left edge, moving down
		rank = 4*s + (s - 1 - dy)
	default: // bottom edge, moving right
		rank = 6*s + (dx + s - 1)
	}
	return base + uint64(rank)
}

// Point implements Inverter for the exact 2-D spiral.
// It panics for dims != 2, where the spiral is order-only.
func (c *Spiral) Point(idx uint64, dst Point) Point {
	if c.dims != 2 {
		panic("sfc: spiral inverse is only defined for 2 dimensions")
	}
	checkIndex(idx, c.max)
	dst = ensure(dst, 2)
	center := int64(c.side-1) / 2
	if idx == 0 {
		dst[0], dst[1] = uint32(center), uint32(center)
		return dst
	}
	// Ring s covers [(2s-1)^2, (2s+1)^2): s = ceil((sqrt(idx) + 1) / 2).
	s := int64(math.Sqrt(float64(idx))+1) / 2
	for uint64(2*s+1)*uint64(2*s+1) <= idx {
		s++
	}
	for uint64(2*s-1)*uint64(2*s-1) > idx {
		s--
	}
	rank := int64(idx - uint64(2*s-1)*uint64(2*s-1))
	var dx, dy int64
	switch {
	case rank < 2*s: // right edge
		dx, dy = s, rank-s+1
	case rank < 4*s: // top edge
		dx, dy = s-1-(rank-2*s), s
	case rank < 6*s: // left edge
		dx, dy = -s, s-1-(rank-4*s)
	default: // bottom edge
		dx, dy = rank-6*s-s+1, -s
	}
	dst[0] = uint32(dx + center)
	dst[1] = uint32(dy + center)
	return dst
}
