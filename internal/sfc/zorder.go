package sfc

import "fmt"

// ZOrder is the Morton (bit-interleaving) curve. It is not continuous, but
// serves as the substrate for the Gray-coded curve and as a cheap locality
// order in its own right. Dimension Dims()-1 contributes the most
// significant bit at every level.
type ZOrder struct {
	dims int
	bits int
	side uint32
	max  uint64
}

// NewZOrder returns a Z-order curve over a (2^bits)^dims grid.
// dims*bits must be at most 64.
func NewZOrder(dims, bits int) (*ZOrder, error) {
	if err := checkBinary(dims, bits); err != nil {
		return nil, err
	}
	return &ZOrder{
		dims: dims,
		bits: bits,
		side: 1 << bits,
		max:  shiftMax(dims * bits),
	}, nil
}

// checkBinary validates a binary-grid configuration.
func checkBinary(dims, bits int) error {
	if dims < 1 {
		return fmt.Errorf("sfc: dims must be >= 1, got %d", dims)
	}
	if bits < 1 || bits > 32 {
		return fmt.Errorf("sfc: bits must be in [1,32], got %d", bits)
	}
	if dims*bits > 64 {
		return fmt.Errorf("sfc: dims*bits = %d exceeds 64", dims*bits)
	}
	return nil
}

// shiftMax returns 2^n as an exclusive index bound, saturating at n == 64.
func shiftMax(n int) uint64 {
	if n >= 64 {
		return 1<<63 + (1<<63 - 1) // MaxUint64; 2^64 cells need the full range
	}
	return 1 << n
}

// Name implements Curve.
func (c *ZOrder) Name() string { return "zorder" }

// Dims implements Curve.
func (c *ZOrder) Dims() int { return c.dims }

// Side implements Curve.
func (c *ZOrder) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *ZOrder) MaxIndex() uint64 { return c.max }

// Bijective implements Curve.
func (c *ZOrder) Bijective() bool { return true }

// Index implements Curve.
func (c *ZOrder) Index(p Point) uint64 {
	checkPoint(p, c.dims, c.side)
	return interleave(p, c.bits)
}

// IndexFast implements Curve.
func (c *ZOrder) IndexFast(p Point, _ []uint32) uint64 {
	return interleave(p, c.bits)
}

// ScratchLen implements Curve.
func (c *ZOrder) ScratchLen() int { return 0 }

// Point implements Inverter.
func (c *ZOrder) Point(idx uint64, dst Point) Point {
	checkIndex(idx, c.max)
	dst = ensure(dst, c.dims)
	deinterleave(idx, c.bits, dst)
	return dst
}

// interleave packs the bits of p into one word, most significant bit level
// first; within a level, higher dimensions are more significant.
func interleave(p Point, bits int) uint64 {
	var w uint64
	for b := bits - 1; b >= 0; b-- {
		for i := len(p) - 1; i >= 0; i-- {
			w = w<<1 | uint64(p[i]>>b&1)
		}
	}
	return w
}

// deinterleave is the inverse of interleave.
func deinterleave(w uint64, bits int, dst Point) {
	for i := range dst {
		dst[i] = 0
	}
	for b := 0; b < bits; b++ {
		for i := 0; i < len(dst); i++ {
			dst[i] |= uint32(w&1) << b
			w >>= 1
		}
	}
}
