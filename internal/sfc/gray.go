package sfc

// Gray is the Gray-coded curve (Faloutsos): the bit-interleaved coordinate
// word of a cell is interpreted as a reflected-binary Gray codeword, and the
// cell's index is the codeword's rank in Gray-code order. Consecutive cells
// therefore differ in exactly one interleaved bit — one coordinate changes
// by a power of two — which gives the curve better clustering than Z-order
// but, as the paper observes, poor priority-inversion behavior.
type Gray struct {
	dims int
	bits int
	side uint32
	max  uint64
}

// NewGray returns a Gray-coded curve over a (2^bits)^dims grid.
// dims*bits must be at most 64.
func NewGray(dims, bits int) (*Gray, error) {
	if err := checkBinary(dims, bits); err != nil {
		return nil, err
	}
	return &Gray{
		dims: dims,
		bits: bits,
		side: 1 << bits,
		max:  shiftMax(dims * bits),
	}, nil
}

// Name implements Curve.
func (c *Gray) Name() string { return "gray" }

// Dims implements Curve.
func (c *Gray) Dims() int { return c.dims }

// Side implements Curve.
func (c *Gray) Side() uint32 { return c.side }

// MaxIndex implements Curve.
func (c *Gray) MaxIndex() uint64 { return c.max }

// Bijective implements Curve.
func (c *Gray) Bijective() bool { return true }

// Index implements Curve.
func (c *Gray) Index(p Point) uint64 {
	checkPoint(p, c.dims, c.side)
	return grayRank(interleave(p, c.bits))
}

// IndexFast implements Curve.
func (c *Gray) IndexFast(p Point, _ []uint32) uint64 {
	return grayRank(interleave(p, c.bits))
}

// ScratchLen implements Curve.
func (c *Gray) ScratchLen() int { return 0 }

// Point implements Inverter.
func (c *Gray) Point(idx uint64, dst Point) Point {
	checkIndex(idx, c.max)
	dst = ensure(dst, c.dims)
	deinterleave(grayCode(idx), c.bits, dst)
	return dst
}

// grayCode returns the n-th reflected-binary Gray codeword.
func grayCode(n uint64) uint64 { return n ^ n>>1 }

// grayRank returns the rank of Gray codeword g (inverse of grayCode).
func grayRank(g uint64) uint64 {
	n := g
	for shift := uint(1); shift < 64; shift <<= 1 {
		n ^= n >> shift
	}
	return n
}
