package sfc

import "testing"

// Fuzz targets double as regression tests on their seed corpus and can be
// driven with `go test -fuzz` for deeper exploration.

func FuzzHilbertRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint16(0))
	f.Add(uint16(31), uint16(17), uint16(5))
	f.Add(uint16(65535), uint16(1), uint16(32768))
	c, err := NewHilbert(3, 16)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, a, b, d uint16) {
		p := Point{uint32(a), uint32(b), uint32(d)}
		got := c.Point(c.Index(p), nil)
		for i := range p {
			if got[i] != p[i] {
				t.Fatalf("round trip %v -> %v", p, got)
			}
		}
	})
}

func FuzzPeanoRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint16(0))
	f.Add(uint16(242), uint16(170))
	c, err := NewPeano(2, 5) // side 243
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, a, b uint16) {
		p := Point{uint32(a) % c.Side(), uint32(b) % c.Side()}
		got := c.Point(c.Index(p), nil)
		if got[0] != p[0] || got[1] != p[1] {
			t.Fatalf("round trip %v -> %v", p, got)
		}
	})
}

func FuzzMooreRoundTripAndAdjacency(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(1000))
	c, err := NewMoore(6) // side 64
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, idx uint32) {
		i := uint64(idx) % c.MaxIndex()
		p := c.Point(i, nil)
		if got := c.Index(p); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, p, got)
		}
		next := c.Point((i+1)%c.MaxIndex(), nil)
		if manhattan(p, next) != 1 {
			t.Fatalf("cells %d and %d not adjacent (closed loop)", i, i+1)
		}
	})
}

func FuzzSpiralRoundTrip(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(120))
	c, err := NewSpiral(2, 101)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, idx uint32) {
		i := uint64(idx) % c.MaxIndex()
		p := c.Point(i, nil)
		if got := c.Index(p); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, p, got)
		}
	})
}

func FuzzDiagonalRoundTrip(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(77))
	c, err := NewDiagonal(2, 100)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, idx uint32) {
		i := uint64(idx) % c.MaxIndex()
		p := c.Point(i, nil)
		if got := c.Index(p); got != i {
			t.Fatalf("round trip %d -> %v -> %d", i, p, got)
		}
	})
}
