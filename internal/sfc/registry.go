package sfc

import (
	"fmt"
	"sort"
)

// Names returns the registry names of all supported curves, sorted.
func Names() []string {
	names := []string{"sweep", "scan", "cscan", "peano", "gray", "hilbert", "moore", "spiral", "diagonal", "zorder"}
	sort.Strings(names)
	return names
}

// PaperNames returns the seven curves of the paper's Figure 1, in the
// paper's presentation order.
func PaperNames() []string {
	return []string{"sweep", "cscan", "scan", "gray", "hilbert", "spiral", "peano"}
}

// New constructs the named curve over dims dimensions with at least minSide
// cells per dimension. Curves with granularity constraints (binary curves
// need a power-of-two side, Peano a power of three, the 2-D spiral an odd
// side) round the side up to their natural grid; callers must consult
// Side() on the result rather than assume minSide.
func New(name string, dims int, minSide uint32) (Curve, error) {
	if minSide < 1 {
		return nil, fmt.Errorf("sfc: minSide must be >= 1, got %d", minSide)
	}
	switch name {
	case "sweep":
		return NewSweep(dims, minSide)
	case "scan":
		return NewScan(dims, minSide)
	case "cscan":
		return NewCScan(dims, minSide)
	case "peano":
		return NewPeano(dims, pow3Ceil(minSide))
	case "gray":
		return NewGray(dims, maxInt(1, log2Ceil(minSide)))
	case "hilbert":
		return NewHilbert(dims, maxInt(1, log2Ceil(minSide)))
	case "moore":
		if dims != 2 {
			return nil, fmt.Errorf("sfc: moore curve is 2-dimensional, got %d dims", dims)
		}
		return NewMoore(maxInt(1, log2Ceil(minSide)))
	case "zorder":
		return NewZOrder(dims, maxInt(1, log2Ceil(minSide)))
	case "spiral":
		return NewSpiral(dims, minSide)
	case "diagonal":
		return NewDiagonal(dims, minSide)
	default:
		return nil, fmt.Errorf("sfc: unknown curve %q", name)
	}
}

// MustNew is New for static configurations; it panics on error.
func MustNew(name string, dims int, minSide uint32) Curve {
	c, err := New(name, dims, minSide)
	if err != nil {
		panic(err)
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
