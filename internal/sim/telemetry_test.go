package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sfcsched/internal/sched"
)

func runTelemetry(t *testing.T, seed uint64) *Telemetry {
	t.Helper()
	tel := NewTelemetry(50_000)
	tel.SetMetrics(&DecisionMetrics{})
	MustRun(Config{
		Disk: xp(), Scheduler: cascadedScheduler(),
		Options: Options{DropLate: true, Telemetry: tel},
	}, decisionWorkload(seed))
	return tel
}

func TestTelemetrySampling(t *testing.T) {
	tel := runTelemetry(t, 20)
	if tel.Rows() == 0 {
		t.Fatal("no telemetry rows sampled")
	}
	for i := 0; i < tel.Rows(); i++ {
		if i > 0 && tel.Time[i] < tel.Time[i-1] {
			t.Fatalf("row %d: time %d before previous %d", i, tel.Time[i], tel.Time[i-1])
		}
		// The final row closes the run at the completion time and may
		// share the last sampled row's interval; every other boundary
		// lands at most one row per interval.
		if i > 0 && i < tel.Rows()-1 && tel.Time[i]/tel.Interval == tel.Time[i-1]/tel.Interval {
			t.Fatalf("row %d: two rows in one interval (%d, %d)", i, tel.Time[i-1], tel.Time[i])
		}
		if b := tel.Busy[i]; b < 0 || b > 1 {
			t.Fatalf("row %d: utilization %v outside [0,1]", i, b)
		}
		if tel.Depth[i] < 0 || tel.VMin[i] > tel.VMax[i] {
			t.Fatalf("row %d: malformed depth/value columns", i)
		}
		if tel.Deadlined[i] > 0 {
			if tel.SlackP50[i] < tel.SlackMin[i] || tel.SlackP50[i] > tel.SlackMax[i] {
				t.Fatalf("row %d: slack p50 outside [min, max]", i)
			}
		}
	}
	sawBusy, sawDepth := false, false
	for i := 0; i < tel.Rows(); i++ {
		if tel.Busy[i] > 0 {
			sawBusy = true
		}
		if tel.Depth[i] > 0 {
			sawDepth = true
		}
	}
	if !sawBusy || !sawDepth {
		t.Errorf("telemetry never saw activity (busy seen: %v, depth seen: %v)", sawBusy, sawDepth)
	}
}

// The engine emits one closing row per station at completion, so the
// final partial interval is covered: the last row must be stamped at the
// run's makespan and the per-row utilization must integrate to the
// collector's total service time. Pre-fix, sampling stopped at the last
// interval boundary an event happened to cross and the tail was lost.
func TestTelemetryClosingRow(t *testing.T) {
	tel := NewTelemetry(50_000)
	tel.SetMetrics(&DecisionMetrics{})
	res := MustRun(Config{
		Disk: xp(), Scheduler: cascadedScheduler(),
		Options: Options{DropLate: true, Telemetry: tel},
	}, decisionWorkload(20))
	if tel.Rows() == 0 {
		t.Fatal("no telemetry rows sampled")
	}
	last := tel.Rows() - 1
	if tel.Time[last] != res.Makespan {
		t.Fatalf("last row at %d µs, want run makespan %d µs", tel.Time[last], res.Makespan)
	}
	// Utilization rows now tile the full run. Σ busy·dt can undercount
	// (service credited at completion clamps to 1.0 within one row) but
	// never overcount, and with the tail covered it must land close.
	var covered float64
	prev := int64(0)
	for i := 0; i < tel.Rows(); i++ {
		covered += tel.Busy[i] * float64(tel.Time[i]-prev)
		prev = tel.Time[i]
	}
	want := float64(res.ServiceTime)
	if covered > want+1 || covered < 0.85*want {
		t.Fatalf("utilization integrates to %.1f µs of service, collector says %d µs", covered, res.ServiceTime)
	}
}

// An empty run produces no closing rows.
func TestTelemetryEmptyRunNoRows(t *testing.T) {
	tel := NewTelemetry(50_000)
	tel.SetMetrics(&DecisionMetrics{})
	MustRun(Config{
		Disk: xp(), Scheduler: cascadedScheduler(),
		Options: Options{Telemetry: tel},
	}, nil)
	if tel.Rows() != 0 {
		t.Fatalf("empty run sampled %d rows", tel.Rows())
	}
}

func TestTelemetryCSVDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := runTelemetry(t, 21).WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := runTelemetry(t, 21).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("telemetry CSV not byte-identical across identical runs")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if lines[0] != strings.TrimRight(telemetryHeader, "\n") {
		t.Errorf("CSV header = %q", lines[0])
	}
	wantCols := strings.Count(telemetryHeader, ",") + 1
	for i, line := range lines {
		if got := strings.Count(line, ",") + 1; got != wantCols {
			t.Fatalf("line %d has %d columns, want %d: %s", i, got, wantCols, line)
		}
	}
}

func TestTelemetryJSONL(t *testing.T) {
	tel := runTelemetry(t, 22)
	var buf bytes.Buffer
	if err := tel.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != tel.Rows() {
		t.Fatalf("%d JSONL lines for %d rows", len(lines), tel.Rows())
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("row %d is not valid JSON: %v", i, err)
		}
		for _, key := range []string{"time_us", "disk", "depth", "busy", "v_min", "v_max", "slack_p50"} {
			if _, ok := obj[key]; !ok {
				t.Fatalf("row %d missing %q", i, key)
			}
		}
	}
}

// Reset must clear rows and sampling state so one sampler serves a sweep.
func TestTelemetryReset(t *testing.T) {
	tel := runTelemetry(t, 23)
	var first bytes.Buffer
	if err := tel.WriteCSV(&first); err != nil {
		t.Fatal(err)
	}
	tel.Reset()
	if tel.Rows() != 0 {
		t.Fatalf("rows after Reset = %d", tel.Rows())
	}
	MustRun(Config{
		Disk: xp(), Scheduler: cascadedScheduler(),
		Options: Options{DropLate: true, Telemetry: tel},
	}, decisionWorkload(23))
	var second bytes.Buffer
	if err := tel.WriteCSV(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("reset sampler diverged from fresh sampler on the identical run")
	}
}

// Telemetry with a non-value scheduler records zero value columns.
func TestTelemetryNonValueScheduler(t *testing.T) {
	tel := NewTelemetry(50_000)
	tel.SetMetrics(&DecisionMetrics{})
	MustRun(Config{
		Disk: xp(), Scheduler: sched.NewFCFS(),
		Options: Options{Telemetry: tel},
	}, decisionWorkload(24))
	for i := 0; i < tel.Rows(); i++ {
		if tel.VMin[i] != 0 || tel.VMax[i] != 0 {
			t.Fatalf("row %d: FCFS exposes no values, got v_min=%d v_max=%d",
				i, tel.VMin[i], tel.VMax[i])
		}
	}
}
