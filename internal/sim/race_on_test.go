//go:build race

package sim

// raceEnabled reports whether the race detector is active; allocation
// gates skip under it (instrumentation defeats sync.Pool caching).
const raceEnabled = true
