package sim

// Record→replay round trip: a run recorded through JSONLTrace, loaded by
// workload.LoadReplay, and re-executed on a fresh scheduler of the same
// build must reproduce the original byte for byte — same JSONL, same
// trace-event stream, same collectors. This is the regression gate the
// replaydiff experiment and the CI tracediff smoke rest on.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"sfcsched/internal/workload"
)

func TestReplayRoundTripGolden(t *testing.T) {
	m := xp()
	for name, mk := range goldenSchedulers(m) {
		for _, seed := range []uint64{1, 7} {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				trace := goldenTrace(seed, m)

				var bufA, bufB bytes.Buffer
				var evA, evB []flatEvent
				record := JSONLTrace(&bufA)
				resA, err := Run(Config{
					Disk: m, Scheduler: mk(),
					Options: Options{DropLate: true, Trace: func(ev TraceEvent) {
						record(ev)
						evA = append(evA, flatten(ev))
					}},
				}, smallTraceCopy(trace))
				if err != nil {
					t.Fatal(err)
				}

				rec, err := workload.LoadReplay(bytes.NewReader(bufA.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if rec.Len() != len(trace) {
					t.Fatalf("replay reconstructed %d requests, recorded run had %d", rec.Len(), len(trace))
				}
				replayed := rec.Generate()
				for i := range trace {
					if !reflect.DeepEqual(*trace[i], *replayed[i]) {
						t.Fatalf("request %d did not survive the round trip:\noriginal: %+v\nreplayed: %+v",
							i, *trace[i], *replayed[i])
					}
				}

				replay := JSONLTrace(&bufB)
				resB, err := Run(Config{
					Disk: m, Scheduler: mk(),
					Options: Options{DropLate: true, Trace: func(ev TraceEvent) {
						replay(ev)
						evB = append(evB, flatten(ev))
					}},
				}, replayed)
				if err != nil {
					t.Fatal(err)
				}

				if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
					t.Error("replayed JSONL diverges from the recorded run")
				}
				if !reflect.DeepEqual(evA, evB) {
					t.Error("replayed trace-event stream diverges from the recorded run")
				}
				if !reflect.DeepEqual(resA.Collector, resB.Collector) {
					t.Errorf("collectors diverged:\nrecorded: %+v\nreplayed: %+v", resA.Collector, resB.Collector)
				}
				if resA.HeadTravel != resB.HeadTravel {
					t.Errorf("head travel %d, recorded %d", resB.HeadTravel, resA.HeadTravel)
				}
			})
		}
	}
}

// A CSV-recorded workload replays to the same run as the generator that
// produced it (the schedsim -trace path and the -replay path agree).
func TestReplayFromCSVMatchesGenerator(t *testing.T) {
	m := xp()
	trace := goldenTrace(3, m)
	var csv bytes.Buffer
	if err := workload.WriteCSV(&csv, trace, 2); err != nil {
		t.Fatal(err)
	}
	rec, err := workload.LoadReplay(&csv)
	if err != nil {
		t.Fatal(err)
	}

	var bufA, bufB bytes.Buffer
	mk := goldenSchedulers(m)["cascaded"]
	if _, err := Run(Config{Disk: m, Scheduler: mk(),
		Options: Options{DropLate: true, Trace: JSONLTrace(&bufA)}}, smallTraceCopy(trace)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Disk: m, Scheduler: mk(),
		Options: Options{DropLate: true, Trace: JSONLTrace(&bufB)}}, rec.Generate()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("CSV replay diverges from the generated run")
	}
}
