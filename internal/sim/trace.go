package sim

import (
	"io"
	"strconv"

	"sfcsched/internal/core"
)

// TraceEvent describes one dispatch decision of a run: either a service
// (Seek/Service filled) or a drop (Dropped set). It is handed to
// Options.Trace synchronously, before the modeled service completes, so a
// hook sees decisions in dispatch order.
type TraceEvent struct {
	// Now is the simulation clock at the decision, microseconds.
	Now int64
	// DiskID is the station the decision happened on: always 0 for
	// single-disk runs, the disk index for array runs (where Request is
	// the physical operation, not the logical block request).
	DiskID int
	// Request is the dispatched request. Hooks must not retain or mutate
	// it; copy what they need.
	Request *core.Request
	// Head is the head cylinder at dispatch (services only).
	Head int
	// Seek and Service are the modeled seek and total service time of this
	// dispatch, microseconds. Zero for drops.
	Seek    int64
	Service int64
	// Dropped marks a §6 deadline drop: the request was dequeued past its
	// deadline and never occupied the disk.
	Dropped bool
	// Faulted marks a fault-injection decision: a failed service attempt.
	// With Dropped false the request will retry; with Dropped true it was
	// abandoned (retry budget exhausted or stranded on a failed disk).
	// Unlike deadline drops, a faulted attempt did occupy the disk.
	Faulted bool
	// QueueLen is the number of requests still queued after this decision.
	QueueLen int
}

// traceRecord is the flattened JSONL form of a TraceEvent. It is the
// declarative spec of the line format: JSONLTrace appends the same fields
// by hand, and the equivalence test in trace_test.go checks the two ways
// byte for byte.
type traceRecord struct {
	Now      int64  `json:"now"`
	Disk     int    `json:"disk,omitempty"`
	ID       uint64 `json:"id"`
	Cylinder int    `json:"cyl"`
	Arrival  int64  `json:"arrival"`
	Wait     int64  `json:"wait"`
	Deadline int64  `json:"deadline,omitempty"`
	Prio     []int  `json:"prio,omitempty"`
	Size     int64  `json:"size,omitempty"`
	Write    bool   `json:"write,omitempty"`
	Value    int    `json:"value,omitempty"`
	Tenant   int    `json:"tenant,omitempty"`
	Class    int    `json:"class,omitempty"`
	Head     int    `json:"head"`
	Seek     int64  `json:"seek,omitempty"`
	Service  int64  `json:"service,omitempty"`
	Dropped  bool   `json:"dropped,omitempty"`
	Faulted  bool   `json:"faulted,omitempty"`
	Queue    int    `json:"queue"`
}

// JSONLTrace adapts w into an Options.Trace hook that writes one JSON object
// per line per dispatch decision. The first write error silences the hook
// for the rest of the run (the simulation result is unaffected); wrap w in
// a bufio.Writer for long traces and flush it after Run returns.
//
// Lines are appended by hand into one buffer reused across events instead
// of reflecting through encoding/json per dispatch; the bytes are
// identical to a json.Encoder over traceRecord (the equivalence is pinned
// by a test), at zero allocations per event once the buffer has grown.
func JSONLTrace(w io.Writer) func(TraceEvent) {
	var buf []byte
	failed := false
	return func(ev TraceEvent) {
		if failed {
			return
		}
		r := ev.Request
		b := buf[:0]
		b = append(b, `{"now":`...)
		b = strconv.AppendInt(b, ev.Now, 10)
		if ev.DiskID != 0 {
			b = append(b, `,"disk":`...)
			b = strconv.AppendInt(b, int64(ev.DiskID), 10)
		}
		b = append(b, `,"id":`...)
		b = strconv.AppendUint(b, r.ID, 10)
		b = append(b, `,"cyl":`...)
		b = strconv.AppendInt(b, int64(r.Cylinder), 10)
		b = append(b, `,"arrival":`...)
		b = strconv.AppendInt(b, r.Arrival, 10)
		b = append(b, `,"wait":`...)
		b = strconv.AppendInt(b, ev.Now-r.Arrival, 10)
		if r.Deadline != 0 {
			b = append(b, `,"deadline":`...)
			b = strconv.AppendInt(b, r.Deadline, 10)
		}
		if len(r.Priorities) > 0 {
			b = append(b, `,"prio":[`...)
			for i, p := range r.Priorities {
				if i > 0 {
					b = append(b, ',')
				}
				b = strconv.AppendInt(b, int64(p), 10)
			}
			b = append(b, ']')
		}
		if r.Size != 0 {
			b = append(b, `,"size":`...)
			b = strconv.AppendInt(b, r.Size, 10)
		}
		if r.Write {
			b = append(b, `,"write":true`...)
		}
		if r.Value != 0 {
			b = append(b, `,"value":`...)
			b = strconv.AppendInt(b, int64(r.Value), 10)
		}
		if r.Tenant != 0 {
			b = append(b, `,"tenant":`...)
			b = strconv.AppendInt(b, int64(r.Tenant), 10)
		}
		if r.Class != 0 {
			b = append(b, `,"class":`...)
			b = strconv.AppendInt(b, int64(r.Class), 10)
		}
		b = append(b, `,"head":`...)
		b = strconv.AppendInt(b, int64(ev.Head), 10)
		if ev.Seek != 0 {
			b = append(b, `,"seek":`...)
			b = strconv.AppendInt(b, ev.Seek, 10)
		}
		if ev.Service != 0 {
			b = append(b, `,"service":`...)
			b = strconv.AppendInt(b, ev.Service, 10)
		}
		if ev.Dropped {
			b = append(b, `,"dropped":true`...)
		}
		if ev.Faulted {
			b = append(b, `,"faulted":true`...)
		}
		b = append(b, `,"queue":`...)
		b = strconv.AppendInt(b, int64(ev.QueueLen), 10)
		b = append(b, '}', '\n')
		buf = b
		if _, err := w.Write(b); err != nil {
			failed = true
		}
	}
}
