package sim

import (
	"encoding/json"
	"io"

	"sfcsched/internal/core"
)

// TraceEvent describes one dispatch decision of a run: either a service
// (Seek/Service filled) or a drop (Dropped set). It is handed to
// Options.Trace synchronously, before the modeled service completes, so a
// hook sees decisions in dispatch order.
type TraceEvent struct {
	// Now is the simulation clock at the decision, microseconds.
	Now int64
	// DiskID is the station the decision happened on: always 0 for
	// single-disk runs, the disk index for array runs (where Request is
	// the physical operation, not the logical block request).
	DiskID int
	// Request is the dispatched request. Hooks must not retain or mutate
	// it; copy what they need.
	Request *core.Request
	// Head is the head cylinder at dispatch (services only).
	Head int
	// Seek and Service are the modeled seek and total service time of this
	// dispatch, microseconds. Zero for drops.
	Seek    int64
	Service int64
	// Dropped marks a §6 deadline drop: the request was dequeued past its
	// deadline and never occupied the disk.
	Dropped bool
	// Faulted marks a fault-injection decision: a failed service attempt.
	// With Dropped false the request will retry; with Dropped true it was
	// abandoned (retry budget exhausted or stranded on a failed disk).
	// Unlike deadline drops, a faulted attempt did occupy the disk.
	Faulted bool
	// QueueLen is the number of requests still queued after this decision.
	QueueLen int
}

// traceRecord is the flattened JSONL form of a TraceEvent.
type traceRecord struct {
	Now      int64  `json:"now"`
	Disk     int    `json:"disk,omitempty"`
	ID       uint64 `json:"id"`
	Cylinder int    `json:"cyl"`
	Arrival  int64  `json:"arrival"`
	Wait     int64  `json:"wait"`
	Deadline int64  `json:"deadline,omitempty"`
	Prio     []int  `json:"prio,omitempty"`
	Head     int    `json:"head"`
	Seek     int64  `json:"seek,omitempty"`
	Service  int64  `json:"service,omitempty"`
	Dropped  bool   `json:"dropped,omitempty"`
	Faulted  bool   `json:"faulted,omitempty"`
	Queue    int    `json:"queue"`
}

// JSONLTrace adapts w into an Options.Trace hook that writes one JSON object
// per line per dispatch decision. The first write error silences the hook
// for the rest of the run (the simulation result is unaffected); wrap w in
// a bufio.Writer for long traces and flush it after Run returns.
func JSONLTrace(w io.Writer) func(TraceEvent) {
	enc := json.NewEncoder(w)
	failed := false
	return func(ev TraceEvent) {
		if failed {
			return
		}
		r := ev.Request
		rec := traceRecord{
			Now:      ev.Now,
			Disk:     ev.DiskID,
			ID:       r.ID,
			Cylinder: r.Cylinder,
			Arrival:  r.Arrival,
			Wait:     ev.Now - r.Arrival,
			Deadline: r.Deadline,
			Prio:     r.Priorities,
			Head:     ev.Head,
			Seek:     ev.Seek,
			Service:  ev.Service,
			Dropped:  ev.Dropped,
			Faulted:  ev.Faulted,
			Queue:    ev.QueueLen,
		}
		if enc.Encode(rec) != nil {
			failed = true
		}
	}
}
