package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/sched"
)

func TestJSONLTraceStream(t *testing.T) {
	trace := []*core.Request{
		{ID: 0, Arrival: 0, Priorities: []int{1}, Cylinder: 100},
		{ID: 1, Arrival: 1, Priorities: []int{3}, Deadline: 10, Cylinder: 200},
		{ID: 2, Arrival: 2, Priorities: []int{0}, Cylinder: 300},
	}
	var buf bytes.Buffer
	res := MustRun(Config{
		Scheduler: sched.NewFCFS(), FixedService: 100_000,
		Options: Options{DropLate: true, Dims: 1, Levels: 4, Trace: JSONLTrace(&buf)},
	}, trace)

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if want := int(res.Served + res.Dropped); len(lines) != want {
		t.Fatalf("trace has %d lines, want %d (served %d + dropped %d)",
			len(lines), want, res.Served, res.Dropped)
	}
	type rec struct {
		Now     int64  `json:"now"`
		ID      uint64 `json:"id"`
		Arrival int64  `json:"arrival"`
		Wait    int64  `json:"wait"`
		Prio    []int  `json:"prio"`
		Service int64  `json:"service"`
		Dropped bool   `json:"dropped"`
		Queue   int    `json:"queue"`
	}
	var prev int64
	drops := 0
	for i, ln := range lines {
		var r rec
		if err := json.Unmarshal(ln, &r); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
		if r.Now < prev {
			t.Errorf("line %d: clock went backwards (%d -> %d)", i, prev, r.Now)
		}
		prev = r.Now
		if r.Wait != r.Now-r.Arrival {
			t.Errorf("line %d: wait = %d, want %d", i, r.Wait, r.Now-r.Arrival)
		}
		if r.Dropped {
			drops++
			if r.Service != 0 {
				t.Errorf("line %d: dropped event has service time %d", i, r.Service)
			}
		} else if r.Service == 0 {
			t.Errorf("line %d: served event missing service time", i)
		}
	}
	if drops != int(res.Dropped) {
		t.Errorf("trace has %d drops, result says %d", drops, res.Dropped)
	}
}

// JSONLTrace hand-appends its lines; every byte must match what a
// json.Encoder over traceRecord would have produced, across every
// omitempty combination.
func TestJSONLTraceMatchesEncodingJSON(t *testing.T) {
	events := []TraceEvent{
		{Now: 0, Request: &core.Request{}},
		{Now: 123, DiskID: 3, Request: &core.Request{ID: 7, Cylinder: 42, Arrival: 100, Deadline: 999, Priorities: []int{0, 5, 2}, Size: 64, Write: true, Value: 12, Tenant: 3, Class: 1}, Head: 17, Seek: 4, Service: 9, QueueLen: 2},
		{Now: 50, Request: &core.Request{ID: 1, Arrival: 75, Priorities: []int{}, Size: 128}, Dropped: true},
		{Now: 1 << 40, Request: &core.Request{ID: ^uint64(0), Cylinder: -1, Arrival: -5, Deadline: -3, Priorities: []int{-2}, Size: -7, Value: -8, Tenant: -1, Class: -2}, Head: -9, Seek: -1, Service: -1, Faulted: true, QueueLen: -4},
		{Now: 10, DiskID: 1, Request: &core.Request{ID: 2, Arrival: 10, Deadline: 20, Write: true, Class: 2}, Dropped: true, Faulted: true, QueueLen: 6},
	}
	var got bytes.Buffer
	hook := JSONLTrace(&got)
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	for _, ev := range events {
		hook(ev)
		r := ev.Request
		if err := enc.Encode(traceRecord{
			Now: ev.Now, Disk: ev.DiskID, ID: r.ID, Cylinder: r.Cylinder,
			Arrival: r.Arrival, Wait: ev.Now - r.Arrival, Deadline: r.Deadline,
			Prio: r.Priorities, Size: r.Size, Write: r.Write, Value: r.Value,
			Tenant: r.Tenant, Class: r.Class,
			Head: ev.Head, Seek: ev.Seek, Service: ev.Service,
			Dropped: ev.Dropped, Faulted: ev.Faulted, Queue: ev.QueueLen,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("hand-marshaled trace diverges from encoding/json:\ngot:\n%s\nwant:\n%s", got.Bytes(), want.Bytes())
	}
}

// A hook that fails mid-stream must not affect the simulation result.
func TestJSONLTraceWriterFailureIsIsolated(t *testing.T) {
	trace := smallTrace()
	plain := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS()}, trace)
	traced := MustRun(Config{
		Disk: xp(), Scheduler: sched.NewFCFS(),
		Options: Options{Trace: JSONLTrace(&failAfter{n: 3})},
	}, smallTrace())
	if plain.Makespan != traced.Makespan || plain.Served != traced.Served {
		t.Error("trace hook changed simulation outcome")
	}
}

// failAfter errors every write after the first n.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWriter
	}
	f.n--
	return len(p), nil
}

var errWriter = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "sink failed" }
