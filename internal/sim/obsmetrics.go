package sim

import "sfcsched/internal/obs"

// DecisionMetrics aggregates the decision-observability counters of the
// package: decision-trace captures, shadow-scheduler divergence and
// telemetry sampling activity. It mirrors core.Metrics: atomic fields, a
// process-wide default, per-instance override via the owning object
// (DecisionTrace.SetMetrics, Shadow.SetMetrics, Telemetry.SetMetrics).
//
// Nothing here is touched while decision tracing, shadows and telemetry
// are all disabled, so the zero-overhead guarantee of the plain simulation
// path is unaffected.
type DecisionMetrics struct {
	// Decisions counts captured dispatch decisions (served or dropped).
	Decisions obs.Counter
	// Drops counts captured decisions that were deadline drops.
	Drops obs.Counter
	// CandidateDepth is the distribution of candidate-set sizes at
	// decision time (the queue depth the dispatcher chose from).
	CandidateDepth obs.Histogram
	// ChoiceSlack is the distribution of the chosen request's deadline
	// slack at dispatch, µs (negative slack clamps to 0; requests without
	// deadlines are not recorded).
	ChoiceSlack obs.Histogram
	// ShadowDecisions counts primary dispatches observed by shadows.
	ShadowDecisions obs.Counter
	// ShadowDisagreements counts shadow decisions that picked a different
	// request than the primary scheduler.
	ShadowDisagreements obs.Counter
	// TelemetrySamples counts telemetry rows recorded (one per station per
	// sampling boundary).
	TelemetrySamples obs.Counter
}

// DefaultDecisionMetrics is the process-wide aggregate every DecisionTrace,
// Shadow and Telemetry reports into unless overridden.
var DefaultDecisionMetrics = &DecisionMetrics{}

// Register registers every field of m under prefix (e.g.
// "sfcsched_decision") in reg.
func (m *DecisionMetrics) Register(reg *obs.Registry, prefix string) error {
	type entry struct {
		name, help string
		v          any
	}
	for _, e := range []entry{
		{"decisions", "dispatch decisions captured by decision tracing", &m.Decisions},
		{"drops", "captured decisions that were deadline drops", &m.Drops},
		{"candidate_depth", "candidate-set size at decision time", &m.CandidateDepth},
		{"choice_slack_us", "deadline slack of the chosen request at dispatch, microseconds", &m.ChoiceSlack},
		{"shadow_decisions", "primary dispatches observed by shadow schedulers", &m.ShadowDecisions},
		{"shadow_disagreements", "shadow choices that differed from the primary", &m.ShadowDisagreements},
		{"telemetry_samples", "telemetry rows recorded", &m.TelemetrySamples},
	} {
		if err := reg.Register(prefix+"_"+e.name, e.help, e.v); err != nil {
			return err
		}
	}
	return nil
}

// MustRegister is Register for static wiring.
func (m *DecisionMetrics) MustRegister(reg *obs.Registry, prefix string) {
	if err := m.Register(reg, prefix); err != nil {
		panic(err)
	}
}
