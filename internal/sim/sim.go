// Package sim is the event-driven simulator driving every experiment: it
// feeds a pre-generated trace to one or more schedulers, models service
// times with the disk model, and reports the metrics of the paper's §5-6.
//
// Both public entry points run on the same deterministic event-heap
// Engine: Run drives a single Station (one disk, one scheduler) and
// RunArray drives one Station per disk of a RAID-5 array with the
// logical/physical mapping layered on top. Events are ordered by
// (time, seq), so identical configurations replay identically.
package sim

import (
	"fmt"
	"sort"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/fault"
	"sfcsched/internal/metrics"
	"sfcsched/internal/sched"
	"sfcsched/internal/stats"
)

// Options is the configuration core shared by Config and ArrayConfig: the
// knobs that mean the same thing on every topology.
type Options struct {
	// Seed drives the rotational-latency sampling.
	Seed uint64
	// DropLate drops requests whose deadline has passed at dispatch time
	// (the §6 semantics: a request not serviced prior to its deadline is
	// lost). When false, expired requests are still serviced and counted
	// late.
	DropLate bool
	// Dims and Levels size the metrics collectors. For single-disk runs,
	// Dims defaults to the widest priority vector in the trace.
	Dims   int
	Levels int
	// SampleRotation draws rotational latency uniformly instead of using
	// the average. Averaged runs are deterministic given the trace.
	SampleRotation bool
	// Trace, when non-nil, receives one TraceEvent per dispatch decision
	// (served or dropped) — the debugging stream behind policy-bug hunts.
	// On array runs every physical dispatch is reported with its DiskID.
	// JSONLTrace adapts an io.Writer into a hook. The hook runs inline with
	// the simulation; a slow sink slows the run, not the modeled clock.
	Trace func(TraceEvent)
	// Fault, when non-nil and non-zero, injects the deterministic fault
	// plan (transient errors with bounded retry, bad-sector remap, and —
	// on arrays — whole-disk failure with degraded reads and optional
	// rebuild). A nil or zero plan leaves the run byte-identical to one
	// without fault support.
	Fault *fault.Plan
	// Decisions, when non-nil, captures one DecisionRecord per dispatch
	// decision (candidate set, chosen request, slack distribution, window
	// state) into the trace's ring. Nil costs nothing.
	Decisions *DecisionTrace
	// Telemetry, when non-nil, samples per-station queue depth,
	// utilization, value spread and slack distribution at the sampler's
	// interval. Sampling is non-perturbing: the simulated trajectory is
	// identical with or without it.
	Telemetry *Telemetry
	// Shadows attaches counterfactual schedulers that observe the same
	// arrival stream and record what they would have dispatched, without
	// perturbing the run. Each Shadow is single-use and attaches to the
	// station of its Station index (0 on single-disk runs). Reports land
	// in Result.Shadows in the same order.
	Shadows []*Shadow
}

// Config configures one single-disk simulation run.
type Config struct {
	// Disk models service times. Required unless FixedService is set.
	Disk *disk.Model
	// Scheduler is the queue discipline under test. Required.
	Scheduler sched.Scheduler
	// TransferOnly charges only media transfer time (the §5.1-5.2
	// assumption that "the transfer time dominates the seek time").
	TransferOnly bool
	// FixedService, when positive, overrides the disk model with a
	// constant service time (useful for pure queueing experiments).
	FixedService int64

	// Reuse, when non-nil, recycles the collector, station, event heap and
	// RNG of previous runs through the same Reuse instead of allocating
	// fresh ones — see Reuse for the ownership and concurrency rules. The
	// simulated trajectory is identical either way.
	Reuse *Reuse

	Options
}

// Result is the outcome of a run.
type Result struct {
	*metrics.Collector
	// HeadTravel is the total cylinders traveled.
	HeadTravel int64
	// Scheduler echoes the scheduler's name.
	Scheduler string
	// Faults snapshots the fault injector's counters; nil when the run
	// had no (or a zero) fault plan.
	Faults *fault.Stats
	// Shadows holds one divergence report per attached shadow, in
	// Options.Shadows order; empty when the run had none.
	Shadows []ShadowReport
}

// Run simulates trace (sorted by arrival time) under cfg as a one-station
// Engine.
func Run(cfg Config, trace []*core.Request) (*Result, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("sim: Scheduler is required")
	}
	if cfg.Disk == nil && cfg.FixedService <= 0 {
		return nil, fmt.Errorf("sim: need a Disk model or FixedService")
	}
	dims, levels := inferShape(cfg.Dims, cfg.Levels, trace)
	var col *metrics.Collector
	var st *Station
	var eng *Engine
	if cfg.Reuse != nil {
		col = cfg.Reuse.collector(dims, levels)
		eng, st = cfg.Reuse.engine(cfg, col)
	} else {
		col = metrics.NewCollector(dims, levels)
		st = &Station{
			Sched:          cfg.Scheduler,
			Disk:           cfg.Disk,
			Col:            col,
			TransferOnly:   cfg.TransferOnly,
			FixedService:   cfg.FixedService,
			SampleRotation: cfg.SampleRotation,
			HeadAtDispatch: true,
			IdleProbe:      true,
		}
		eng = &Engine{
			Stations: []*Station{st},
			DropLate: cfg.DropLate,
			RNG:      stats.NewRNG(cfg.Seed),
			Trace:    cfg.Trace,
		}
	}
	eng.Decisions = cfg.Decisions
	eng.Telemetry = cfg.Telemetry
	for _, sh := range cfg.Shadows {
		if sh.Station != 0 {
			return nil, fmt.Errorf("sim: shadow %q targets station %d on a single-disk run", sh.name, sh.Station)
		}
		if sh.used {
			return nil, fmt.Errorf("sim: shadow %q already rode a run; shadows are single-use", sh.name)
		}
		sh.bind(st, cfg.DropLate)
	}
	st.shadows = cfg.Shadows
	if !cfg.Fault.Zero() {
		if cfg.Fault.FailAt > 0 {
			return nil, fmt.Errorf("sim: whole-disk failure requires an array run")
		}
		cyls := 0
		if cfg.Disk != nil {
			cyls = cfg.Disk.Cylinders
		}
		inj, err := fault.New(*cfg.Fault, cyls)
		if err != nil {
			return nil, err
		}
		eng.Faults = inj
	}
	col.Makespan = eng.Run(trace, func(r *core.Request, _ int64) {
		col.OnArrival(r)
		// Arrivals carry their true timestamps even when they land during
		// a service window; the head is en route to (then at) the target.
		st.Enqueue(r, r.Arrival)
	})
	res := &Result{Collector: col, HeadTravel: st.HeadTravel(), Scheduler: cfg.Scheduler.Name()}
	if eng.Faults != nil {
		fs := eng.Faults.Stats()
		res.Faults = &fs
	}
	if len(cfg.Shadows) > 0 {
		res.Shadows = make([]ShadowReport, len(cfg.Shadows))
		for i, sh := range cfg.Shadows {
			res.Shadows[i] = sh.Report()
		}
	}
	return res, nil
}

// MustRun is Run for static configurations.
func MustRun(cfg Config, trace []*core.Request) *Result {
	res, err := Run(cfg, trace)
	if err != nil {
		panic(err)
	}
	return res
}

// inferShape fills zero Dims/Levels from the widest priority vector and
// the highest level present in the trace.
func inferShape(dims, levels int, trace []*core.Request) (int, int) {
	if dims == 0 {
		for _, r := range trace {
			if len(r.Priorities) > dims {
				dims = len(r.Priorities)
			}
		}
	}
	if levels == 0 {
		levels = 1
		for _, r := range trace {
			for _, p := range r.Priorities {
				if p+1 > levels {
					levels = p + 1
				}
			}
		}
	}
	return dims, levels
}

// SortByArrival orders a trace in place by arrival time (stable), the
// precondition of Run and RunArray.
func SortByArrival(trace []*core.Request) {
	sort.SliceStable(trace, func(i, j int) bool {
		return trace[i].Arrival < trace[j].Arrival
	})
}

func clampCyl(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
