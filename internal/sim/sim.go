// Package sim is the event-driven single-disk simulator driving every
// experiment: it feeds a pre-generated trace to a scheduler, models service
// times with the disk model, and reports the metrics of the paper's §5-6.
//
// Service is non-interruptible (a dispatched request occupies the disk
// until completion), so the engine is a simple sequential loop rather than
// a general event heap: arrivals that occur during a service are delivered
// with their true arrival timestamps before the next dispatch decision.
package sim

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/metrics"
	"sfcsched/internal/sched"
	"sfcsched/internal/stats"
)

// Config configures one simulation run.
type Config struct {
	// Disk models service times. Required unless FixedService is set.
	Disk *disk.Model
	// Scheduler is the queue discipline under test. Required.
	Scheduler sched.Scheduler
	// Seed drives the rotational-latency sampling.
	Seed uint64
	// DropLate drops requests whose deadline has passed at dispatch time
	// (the §6 semantics: a request not serviced prior to its deadline is
	// lost). When false, expired requests are still serviced and counted
	// late.
	DropLate bool
	// TransferOnly charges only media transfer time (the §5.1-5.2
	// assumption that "the transfer time dominates the seek time").
	TransferOnly bool
	// FixedService, when positive, overrides the disk model with a
	// constant service time (useful for pure queueing experiments).
	FixedService int64
	// Dims and Levels size the metrics collector. Dims defaults to the
	// widest priority vector in the trace.
	Dims   int
	Levels int
	// SampleRotation draws rotational latency uniformly instead of using
	// the average. Averaged runs are deterministic given the trace.
	SampleRotation bool
	// Trace, when non-nil, receives one TraceEvent per dispatch decision
	// (served or dropped) — the debugging stream behind policy-bug hunts.
	// JSONLTrace adapts an io.Writer into a hook. The hook runs inline with
	// the simulation; a slow sink slows the run, not the modeled clock.
	Trace func(TraceEvent)
}

// Result is the outcome of a run.
type Result struct {
	*metrics.Collector
	// HeadTravel is the total cylinders traveled.
	HeadTravel int64
	// Scheduler echoes the scheduler's name.
	Scheduler string
}

// Run simulates trace (sorted by arrival time) under cfg.
func Run(cfg Config, trace []*core.Request) (*Result, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("sim: Scheduler is required")
	}
	if cfg.Disk == nil && cfg.FixedService <= 0 {
		return nil, fmt.Errorf("sim: need a Disk model or FixedService")
	}
	dims, levels := cfg.Dims, cfg.Levels
	if dims == 0 {
		for _, r := range trace {
			if len(r.Priorities) > dims {
				dims = len(r.Priorities)
			}
		}
	}
	if levels == 0 {
		levels = 1
		for _, r := range trace {
			for _, p := range r.Priorities {
				if p+1 > levels {
					levels = p + 1
				}
			}
		}
	}
	col := metrics.NewCollector(dims, levels)
	res := &Result{Collector: col, Scheduler: cfg.Scheduler.Name()}
	rng := stats.NewRNG(cfg.Seed)

	s := cfg.Scheduler
	now := int64(0)
	head := 0
	i := 0 // next arrival index

	deliver := func(until int64, head int) {
		for i < len(trace) && trace[i].Arrival <= until {
			r := trace[i]
			col.OnArrival(r)
			s.Add(r, r.Arrival, head)
			i++
		}
	}

	for {
		deliver(now, head)
		r := s.Next(now, head)
		if r == nil {
			if i >= len(trace) {
				break
			}
			now = trace[i].Arrival
			continue
		}
		if cfg.DropLate && r.Deadline > 0 && now > r.Deadline {
			// Dropped requests never occupy the disk, so serving others
			// "ahead" of them costs nothing: they must not contribute to
			// the §5.1 inversion counts. OnDispatch therefore runs only
			// after the expiry check.
			col.OnDropped(r)
			if cfg.Trace != nil {
				cfg.Trace(TraceEvent{Now: now, Request: r, Dropped: true, QueueLen: s.Len()})
			}
			continue
		}
		col.OnDispatch(r, s.Each)
		seek, svc := cfg.serviceTime(head, r, rng)
		start := now
		if cfg.Disk != nil {
			res.HeadTravel += int64(absInt(r.Cylinder - head))
		}
		if cfg.Trace != nil {
			cfg.Trace(TraceEvent{Now: now, Request: r, Head: head, Seek: seek, Service: svc, QueueLen: s.Len()})
		}
		// Arrivals during the service window are delivered with their true
		// timestamps; the head is en route to (then at) the target.
		deliver(start+svc, r.Cylinder)
		now = start + svc
		head = targetCylinder(cfg, r)
		col.OnServed(r, seek, svc, start)
		// A deadline is met when service starts in time (the convention of
		// SCAN-EDF and §6's "serviced prior to the deadline"). Without
		// DropLate, expired requests are still serviced but counted late.
		if r.Deadline > 0 && start > r.Deadline {
			col.OnLate(r)
		}
	}
	col.Makespan = now
	return res, nil
}

// MustRun is Run for static configurations.
func MustRun(cfg Config, trace []*core.Request) *Result {
	res, err := Run(cfg, trace)
	if err != nil {
		panic(err)
	}
	return res
}

// serviceTime returns (seekTime, totalServiceTime) for serving r from head.
func (cfg Config) serviceTime(head int, r *core.Request, rng *stats.RNG) (int64, int64) {
	if cfg.FixedService > 0 {
		return 0, cfg.FixedService
	}
	cyl := clampCyl(r.Cylinder, cfg.Disk.Cylinders)
	if cfg.TransferOnly {
		return 0, cfg.Disk.TransferTime(cyl, r.Size)
	}
	seek := cfg.Disk.SeekTime(clampCyl(head, cfg.Disk.Cylinders), cyl)
	rot := cfg.Disk.AvgRotationalLatency()
	if cfg.SampleRotation {
		rot = cfg.Disk.RotationalLatency(rng)
	}
	return seek, seek + rot + cfg.Disk.TransferTime(cyl, r.Size)
}

// targetCylinder returns where the head rests after serving r.
func targetCylinder(cfg Config, r *core.Request) int {
	if cfg.Disk == nil {
		return r.Cylinder
	}
	return clampCyl(r.Cylinder, cfg.Disk.Cylinders)
}

func clampCyl(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
