package sim

import (
	"sfcsched/internal/metrics"
	"sfcsched/internal/stats"
)

// Reuse recycles the per-run state Run rebuilds on every call — the
// metrics collector (and its waiting-time sample buffer), the Station,
// the Engine's event heap and the rotational-latency RNG — across
// successive runs. A sweep that runs thousands of simulations through one
// Reuse performs a small run-constant number of allocations per run
// instead of re-growing every buffer (pinned by the allocation gate in
// alloc_test.go).
//
// The zero value is ready to use; install it via Config.Reuse. A Reuse is
// NOT safe for concurrent use — parallel sweeps give each worker cell its
// own Reuse (see internal/runner).
//
// Ownership: with a Reuse installed, the collector inside the returned
// Result belongs to the Reuse and is reset by the next Run through it.
// Read (or copy) the metrics you need before starting the next run.
//
// Trajectory identity: a reused run is byte-identical to a fresh one —
// the collector is zeroed, the engine clock and heap restart empty, and
// the RNG is reseeded to the exact NewRNG stream. The scheduler is still
// the caller's: pass a fresh (or fully drained, state-free) scheduler per
// run when comparing trajectories.
type Reuse struct {
	col      *metrics.Collector
	st       Station
	stations [1]*Station
	eng      Engine
	rng      stats.RNG
}

// collector returns the recycled collector reset for a new run, or a new
// one when the requested shape differs from the cached one.
func (ru *Reuse) collector(dims, levels int) *metrics.Collector {
	if ru.col == nil || ru.col.Dims() != dims || ru.col.Levels() != levels {
		ru.col = metrics.NewCollector(dims, levels)
		return ru.col
	}
	ru.col.Reset()
	return ru.col
}

// engine rebinds the recycled engine and station for a new run under cfg
// and returns them. All previous-run state (event heap contents, clock,
// hooks, head position, in-flight service) is discarded; the event heap's
// backing array and the RNG object are retained.
func (ru *Reuse) engine(cfg Config, col *metrics.Collector) (*Engine, *Station) {
	ru.st = Station{
		Sched:          cfg.Scheduler,
		Disk:           cfg.Disk,
		Col:            col,
		TransferOnly:   cfg.TransferOnly,
		FixedService:   cfg.FixedService,
		SampleRotation: cfg.SampleRotation,
		HeadAtDispatch: true,
		IdleProbe:      true,
	}
	ru.stations[0] = &ru.st
	ru.rng.Seed(cfg.Seed)
	ru.eng.Reset()
	ru.eng.Stations = ru.stations[:]
	ru.eng.DropLate = cfg.DropLate
	ru.eng.RNG = &ru.rng
	ru.eng.Trace = cfg.Trace
	ru.eng.Faults = nil
	ru.eng.OnServed, ru.eng.OnDropped = nil, nil
	ru.eng.OnLateStart, ru.eng.OnFaulted = nil, nil
	return &ru.eng, &ru.st
}
