package sim

import (
	"io"
	"slices"
	"strconv"

	"sfcsched/internal/core"
)

// Telemetry samples per-station state at fixed sim-time intervals into a
// compact columnar buffer: queue depth, completed-service utilization,
// characterization-value spread and the deadline-slack distribution of
// the queued requests. Install one via Options.Telemetry.
//
// Sampling is driven from inside the engine's run loop: after each event
// round, if the clock has crossed the next interval boundary, one row per
// station is recorded stamped at the actual event time. The sampler never
// schedules events of its own, so it is provably non-perturbing — the
// event sequence with telemetry attached is identical to one without.
// (The cost is that rows land at event times at-or-after each boundary,
// not exactly on it.) When the engine completes, one closing row per
// station is recorded at the final event time, so the last partial
// interval is covered and per-station utilization sums span the whole
// run; only an entirely empty run produces no rows.
//
// All columns have one entry per row; row i describes station Disk[i] at
// time Time[i]. Scratch buffers are reused, so steady-state sampling
// allocates only for column growth.
type Telemetry struct {
	// Interval is the sampling period, µs. Set by NewTelemetry.
	Interval int64

	// Columns, one entry per sampled row.
	Time      []int64   // sim time of the row, µs
	Disk      []int32   // station ID
	Depth     []int32   // queue depth (excluding the in-service request)
	Busy      []float64 // completed-service utilization since the last row, [0,1]
	VMin      []uint64  // min candidate value (0 when no ValueRanker or empty)
	VMax      []uint64  // max candidate value
	Deadlined []int32   // queued requests carrying a deadline
	SlackMin  []int64   // slack distribution over the Deadlined requests, µs
	SlackP50  []int64
	SlackMax  []int64

	next     int64
	prevTime int64
	prevBusy []int64
	m        *DecisionMetrics

	// Queue-walk scratch, reused across rows.
	visit      func(*core.Request)
	vr         ValueRanker
	now        int64
	head       int
	vmin, vmax uint64
	slacks     []int64
}

// NewTelemetry returns a sampler with the given period (µs); interval < 1
// is raised to 1.
func NewTelemetry(interval int64) *Telemetry {
	if interval < 1 {
		interval = 1
	}
	t := &Telemetry{Interval: interval, m: DefaultDecisionMetrics}
	t.visit = func(r *core.Request) {
		if t.vr != nil {
			v := t.vr.RequestValue(r, t.now, t.head)
			if v < t.vmin {
				t.vmin = v
			}
			if v > t.vmax {
				t.vmax = v
			}
		}
		if s := r.Slack(t.now); s != NoDeadlineSlack {
			t.slacks = append(t.slacks, s)
		}
	}
	return t
}

// SetMetrics redirects the sampler's counters to m instead of the
// process-wide DefaultDecisionMetrics. Call before the run starts.
func (tel *Telemetry) SetMetrics(m *DecisionMetrics) { tel.m = m }

// Rows returns the number of sampled rows.
func (tel *Telemetry) Rows() int { return len(tel.Time) }

// Reset clears the sampled rows and sampling state, keeping column
// capacity, so one sampler can serve successive runs in a sweep.
func (tel *Telemetry) Reset() {
	tel.Time = tel.Time[:0]
	tel.Disk = tel.Disk[:0]
	tel.Depth = tel.Depth[:0]
	tel.Busy = tel.Busy[:0]
	tel.VMin = tel.VMin[:0]
	tel.VMax = tel.VMax[:0]
	tel.Deadlined = tel.Deadlined[:0]
	tel.SlackMin = tel.SlackMin[:0]
	tel.SlackP50 = tel.SlackP50[:0]
	tel.SlackMax = tel.SlackMax[:0]
	tel.next = 0
	tel.prevTime = 0
	for i := range tel.prevBusy {
		tel.prevBusy[i] = 0
	}
}

// sample records one row per station when the clock has crossed the next
// interval boundary. Called from the engine run loop after each event
// round; read-only with respect to simulation state.
func (tel *Telemetry) sample(e *Engine, t int64) {
	if t < tel.next {
		return
	}
	for _, st := range e.Stations {
		tel.sampleStation(st, t)
	}
	tel.prevTime = t
	tel.next = (t/tel.Interval + 1) * tel.Interval
	tel.m.TelemetrySamples.Add(uint64(len(e.Stations)))
}

// closeRun records the final partial interval: one closing row per
// station stamped at the engine's completion time. Called once from
// Engine.Run after the event loop drains; a no-op when the run already
// ended exactly on a sampled row, or when the run was empty, so rows are
// never duplicated.
func (tel *Telemetry) closeRun(e *Engine, t int64) {
	if t <= tel.prevTime {
		return
	}
	for _, st := range e.Stations {
		tel.sampleStation(st, t)
	}
	tel.prevTime = t
	tel.next = (t/tel.Interval + 1) * tel.Interval
	tel.m.TelemetrySamples.Add(uint64(len(e.Stations)))
}

func (tel *Telemetry) sampleStation(st *Station, t int64) {
	for len(tel.prevBusy) <= st.ID {
		tel.prevBusy = append(tel.prevBusy, 0)
	}
	busy := 0.0
	if dt := t - tel.prevTime; dt > 0 {
		busy = float64(st.Col.ServiceTime-tel.prevBusy[st.ID]) / float64(dt)
		if busy < 0 {
			busy = 0
		}
		if busy > 1 {
			busy = 1
		}
	}
	tel.prevBusy[st.ID] = st.Col.ServiceTime

	// Walk the queue for value spread and slack distribution.
	tel.vr, _ = st.Sched.(ValueRanker)
	tel.now, tel.head = t, st.head
	tel.vmin, tel.vmax = ^uint64(0), 0
	tel.slacks = tel.slacks[:0]
	st.Sched.Each(tel.visit)
	vmin, vmax := tel.vmin, tel.vmax
	if tel.vr == nil || vmin > vmax { // no ranker, or empty queue
		vmin, vmax = 0, 0
	}
	var smin, sp50, smax int64
	if n := len(tel.slacks); n > 0 {
		slices.Sort(tel.slacks)
		smin, sp50, smax = tel.slacks[0], tel.slacks[n/2], tel.slacks[n-1]
	}

	tel.Time = append(tel.Time, t)
	tel.Disk = append(tel.Disk, int32(st.ID))
	tel.Depth = append(tel.Depth, int32(st.Sched.Len()))
	tel.Busy = append(tel.Busy, busy)
	tel.VMin = append(tel.VMin, vmin)
	tel.VMax = append(tel.VMax, vmax)
	tel.Deadlined = append(tel.Deadlined, int32(len(tel.slacks)))
	tel.SlackMin = append(tel.SlackMin, smin)
	tel.SlackP50 = append(tel.SlackP50, sp50)
	tel.SlackMax = append(tel.SlackMax, smax)
}

// telemetryHeader is the CSV column order of WriteCSV.
const telemetryHeader = "time_us,disk,depth,busy,v_min,v_max,deadlined,slack_min,slack_p50,slack_max\n"

// WriteCSV writes the sampled rows as CSV with a header line. Output is
// deterministic for a deterministic run.
func (tel *Telemetry) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, telemetryHeader); err != nil {
		return err
	}
	var buf []byte
	for i := range tel.Time {
		b := buf[:0]
		b = strconv.AppendInt(b, tel.Time[i], 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(tel.Disk[i]), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(tel.Depth[i]), 10)
		b = append(b, ',')
		b = strconv.AppendFloat(b, tel.Busy[i], 'f', 4, 64)
		b = append(b, ',')
		b = strconv.AppendUint(b, tel.VMin[i], 10)
		b = append(b, ',')
		b = strconv.AppendUint(b, tel.VMax[i], 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(tel.Deadlined[i]), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, tel.SlackMin[i], 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, tel.SlackP50[i], 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, tel.SlackMax[i], 10)
		b = append(b, '\n')
		buf = b
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes one JSON object per sampled row, matching the CSV
// column names.
func (tel *Telemetry) WriteJSONL(w io.Writer) error {
	var buf []byte
	for i := range tel.Time {
		b := buf[:0]
		b = append(b, `{"time_us":`...)
		b = strconv.AppendInt(b, tel.Time[i], 10)
		b = append(b, `,"disk":`...)
		b = strconv.AppendInt(b, int64(tel.Disk[i]), 10)
		b = append(b, `,"depth":`...)
		b = strconv.AppendInt(b, int64(tel.Depth[i]), 10)
		b = append(b, `,"busy":`...)
		b = strconv.AppendFloat(b, tel.Busy[i], 'f', 4, 64)
		b = append(b, `,"v_min":`...)
		b = strconv.AppendUint(b, tel.VMin[i], 10)
		b = append(b, `,"v_max":`...)
		b = strconv.AppendUint(b, tel.VMax[i], 10)
		b = append(b, `,"deadlined":`...)
		b = strconv.AppendInt(b, int64(tel.Deadlined[i]), 10)
		b = append(b, `,"slack_min":`...)
		b = strconv.AppendInt(b, tel.SlackMin[i], 10)
		b = append(b, `,"slack_p50":`...)
		b = strconv.AppendInt(b, tel.SlackP50[i], 10)
		b = append(b, `,"slack_max":`...)
		b = strconv.AppendInt(b, tel.SlackMax[i], 10)
		b = append(b, '}', '\n')
		buf = b
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
