package sim

// FuzzEngineDeterminism: two runs with identical Options + seed + fault
// plan must produce byte-identical TraceEvent streams, collectors and
// fault metrics — the replay-identity guarantee behind every golden test
// and the failure-replay harness, extended over the fault path. A second
// arm records the run's JSONL, loads it back through workload.LoadReplay
// and re-executes it, demanding a byte-identical recording; a third arm
// replays the same run in parallel cells (fuzzed worker count, each cell
// on its own Reuse) and demands the identical event stream from every
// cell.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/fault"
	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/workload"
)

// fuzzPlan derives a fault plan from the fuzz arguments. rateB scales the
// transient rate in [0, 0.31]; failB arms bad sectors (bit 0), a scripted
// event (bit 1) and — on arrays — a mid-run disk failure with rebuild
// (bit 2).
func fuzzPlan(seed uint64, rateB, failB byte, array bool) *fault.Plan {
	plan := &fault.Plan{
		Seed:          seed ^ 0x9e3779b97f4a7c15,
		TransientRate: float64(rateB%32) / 100,
		RetryBase:     2_000,
		Metrics:       &fault.Metrics{},
	}
	if failB&1 != 0 {
		plan.Bad = []fault.BadRange{{Disk: 0, From: 500, To: 900}}
	}
	if failB&2 != 0 {
		plan.Scripted = []fault.Event{{Time: 200_000, Disk: 0, Cylinder: -1}}
	}
	if array && failB&4 != 0 {
		plan.FailDisk = int(failB) % 5
		plan.FailAt = 400_000
		plan.Rebuild = true
		plan.RebuildBlocks = 5
		plan.RebuildInterval = 3_000
	}
	return plan
}

func FuzzEngineDeterminism(f *testing.F) {
	f.Add(uint64(1), uint16(120), byte(10), byte(0), false, false, byte(0))
	f.Add(uint64(7), uint16(200), byte(25), byte(3), true, false, byte(2))
	f.Add(uint64(3), uint16(150), byte(5), byte(7), true, true, byte(8))
	f.Add(uint64(11), uint16(90), byte(0), byte(4), false, true, byte(1))
	f.Add(uint64(42), uint16(250), byte(31), byte(6), true, true, byte(5))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, rateB, failB byte, drop, array bool, workersB byte) {
		m := disk.MustModel(disk.QuantumXP32150Params())
		count := 50 + int(n)%250
		if array {
			fuzzArrayRun(t, m, seed, count, rateB, failB, drop)
			return
		}
		plan := fuzzPlan(seed, rateB, failB, false)
		trace := workload.Open{
			Seed: seed, Count: count, MeanInterarrival: 15_000,
			Dims: 2, Levels: 8, DeadlineMin: 100_000, DeadlineMax: 400_000,
			Cylinders: m.Cylinders, SizeMin: 4 << 10, SizeMax: 128 << 10,
		}.MustGenerate()
		run := func() ([]flatEvent, *Result) {
			var events []flatEvent
			res, err := Run(Config{Disk: m, Scheduler: sched.NewSCANEDF(50_000),
				Options: Options{DropLate: drop, Seed: seed, SampleRotation: true,
					Fault: plan,
					Trace: func(ev TraceEvent) { events = append(events, flatten(ev)) }}},
				smallTraceCopy(trace))
			if err != nil {
				t.Fatal(err)
			}
			return events, res
		}
		ev1, res1 := run()
		ev2, res2 := run()
		if !reflect.DeepEqual(ev1, ev2) {
			t.Fatal("trace streams diverged between identical runs")
		}
		if !reflect.DeepEqual(res1.Collector, res2.Collector) {
			t.Fatal("collectors diverged between identical runs")
		}
		if !reflect.DeepEqual(res1.Faults, res2.Faults) {
			t.Fatalf("fault stats diverged: %+v vs %+v", res1.Faults, res2.Faults)
		}
		if res1.HeadTravel != res2.HeadTravel {
			t.Fatal("head travel diverged between identical runs")
		}

		// Record→replay arm: the JSONL the run emits, loaded back as a
		// workload and re-executed, must reproduce the recording byte for
		// byte. Fault retries log the same request ID on every attempt, so
		// a non-zero transient rate exercises the reader's dedupe.
		record := func(reqs []*core.Request) *bytes.Buffer {
			var buf bytes.Buffer
			if _, err := Run(Config{Disk: m, Scheduler: sched.NewSCANEDF(50_000),
				Options: Options{DropLate: drop, Seed: seed, SampleRotation: true,
					Fault: plan, Trace: JSONLTrace(&buf)}}, reqs); err != nil {
				t.Fatal(err)
			}
			return &buf
		}
		recA := record(smallTraceCopy(trace))
		rec, err := workload.LoadReplay(bytes.NewReader(recA.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if rec.Len() != len(trace) {
			t.Fatalf("replay reconstructed %d requests from the recording, want %d", rec.Len(), len(trace))
		}
		if recB := record(rec.Generate()); !bytes.Equal(recA.Bytes(), recB.Bytes()) {
			t.Fatal("replayed run diverged from its own recording")
		}

		// Parallel arm: the same run fanned out as independent cells, each
		// on its own Reuse, must replay the sequential event stream exactly
		// for any worker count. Cells return errors rather than calling
		// t.Fatal (wrong goroutine).
		workers := 1 + int(workersB)%8
		cells, err := runner.Map(workers, 3, func(i int) ([]flatEvent, error) {
			var events []flatEvent
			var ru Reuse
			res, err := Run(Config{Disk: m, Scheduler: sched.NewSCANEDF(50_000), Reuse: &ru,
				Options: Options{DropLate: drop, Seed: seed, SampleRotation: true,
					Fault: plan,
					Trace: func(ev TraceEvent) { events = append(events, flatten(ev)) }}},
				smallTraceCopy(trace))
			if err != nil {
				return nil, err
			}
			if res.HeadTravel != res1.HeadTravel {
				return nil, fmt.Errorf("cell %d: head travel %d, sequential %d",
					i, res.HeadTravel, res1.HeadTravel)
			}
			return events, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, ev := range cells {
			if !reflect.DeepEqual(ev, ev1) {
				t.Fatalf("parallel cell %d (workers=%d) trace diverged from sequential run", i, workers)
			}
		}
	})
}

func fuzzArrayRun(t *testing.T, m *disk.Model, seed uint64, count int, rateB, failB byte, drop bool) {
	array, err := disk.NewRAID5(5, 64<<10, m)
	if err != nil {
		t.Fatal(err)
	}
	plan := fuzzPlan(seed, rateB, failB, true)
	rng := seed
	next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng >> 33 }
	var trace []*core.Request
	for i := 0; i < count; i++ {
		trace = append(trace, &core.Request{
			ID:       uint64(i + 1),
			Arrival:  int64(i) * 6_000,
			Cylinder: int(next() % uint64(array.MaxBlocks())),
			Size:     64 << 10,
			Write:    next()%4 == 0,
			Deadline: int64(i)*6_000 + 300_000,
		})
	}
	run := func() ([]flatEvent, *ArrayResult) {
		var events []flatEvent
		res, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk,
			Options: Options{DropLate: drop, Seed: seed, Fault: plan,
				Trace: func(ev TraceEvent) { events = append(events, flatten(ev)) }}},
			smallTraceCopy(trace))
		if err != nil {
			t.Fatal(err)
		}
		return events, res
	}
	ev1, res1 := run()
	ev2, res2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("array trace streams diverged between identical runs")
	}
	if !reflect.DeepEqual(res1.Logical, res2.Logical) || !reflect.DeepEqual(res1.PerDisk, res2.PerDisk) {
		t.Fatal("array collectors diverged between identical runs")
	}
	if !reflect.DeepEqual(res1.Faults, res2.Faults) {
		t.Fatalf("array fault stats diverged: %+v vs %+v", res1.Faults, res2.Faults)
	}
	if res1.Reconstructions != res2.Reconstructions ||
		res1.AbsorbedWrites != res2.AbsorbedWrites ||
		res1.RebuildReads != res2.RebuildReads ||
		res1.Makespan != res2.Makespan {
		t.Fatal("array degraded-operation counters diverged between identical runs")
	}
}

// FuzzShadowGoldenIdentity pins the observability layer's non-perturbation
// guarantee under fuzzing: a run with shadow schedulers, a decision trace
// and telemetry attached must replay the byte-identical TraceEvent stream,
// collector and head travel of a bare run, for any workload, drop mode and
// shadow combination.
func FuzzShadowGoldenIdentity(f *testing.F) {
	f.Add(uint64(1), uint16(100), false, byte(0))
	f.Add(uint64(7), uint16(200), true, byte(1))
	f.Add(uint64(13), uint16(300), true, byte(2))
	f.Add(uint64(42), uint16(50), false, byte(3))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, drop bool, shadowSel byte) {
		m := disk.MustModel(disk.QuantumXP32150Params())
		trace := workload.Open{
			Seed: seed, Count: 50 + int(n)%300, MeanInterarrival: 15_000,
			Dims: 2, Levels: 8, DeadlineMin: 100_000, DeadlineMax: 400_000,
			Cylinders: m.Cylinders, SizeMin: 4 << 10, SizeMax: 128 << 10,
		}.MustGenerate()
		mkShadow := [](func() sched.Scheduler){
			func() sched.Scheduler { return sched.NewSCANEDF(50_000) },
			func() sched.Scheduler { return sched.NewFCFS() },
			func() sched.Scheduler { return sched.NewSSTF() },
			func() sched.Scheduler { return sched.NewEDF() },
		}
		run := func(attach bool) ([]flatEvent, *Result) {
			var events []flatEvent
			cfg := Config{Disk: m, Scheduler: sched.NewCSCAN(),
				Options: Options{DropLate: drop, Seed: seed, SampleRotation: true,
					Trace: func(ev TraceEvent) { events = append(events, flatten(ev)) }}}
			if attach {
				dt := NewDecisionTrace(128)
				dt.SetMetrics(&DecisionMetrics{})
				cfg.Decisions = dt
				cfg.Telemetry = NewTelemetry(40_000)
				cfg.Telemetry.SetMetrics(&DecisionMetrics{})
				a := NewShadow("a", mkShadow[int(shadowSel)%len(mkShadow)]())
				b := NewShadow("b", mkShadow[int(shadowSel+1)%len(mkShadow)]())
				a.SetMetrics(&DecisionMetrics{})
				b.SetMetrics(&DecisionMetrics{})
				cfg.Shadows = []*Shadow{a, b}
			}
			res, err := Run(cfg, smallTraceCopy(trace))
			if err != nil {
				t.Fatal(err)
			}
			return events, res
		}
		evPlain, resPlain := run(false)
		evShadowed, resShadowed := run(true)
		if !reflect.DeepEqual(evPlain, evShadowed) {
			t.Fatal("trace stream diverged with observability attached")
		}
		if !reflect.DeepEqual(resPlain.Collector, resShadowed.Collector) {
			t.Fatal("collector diverged with observability attached")
		}
		if resPlain.HeadTravel != resShadowed.HeadTravel {
			t.Fatal("head travel diverged with observability attached")
		}
		if len(resShadowed.Shadows) != 2 {
			t.Fatalf("got %d shadow reports, want 2", len(resShadowed.Shadows))
		}
		for _, rep := range resShadowed.Shadows {
			if rep.Agreements > rep.Decisions {
				t.Fatalf("shadow %q: agreements %d > decisions %d", rep.Name, rep.Agreements, rep.Decisions)
			}
		}
	})
}
