package sim

// Fault-injection tests: zero-fault byte-identity, transient retry and
// exhaustion semantics, bad-sector remap, fault-attributed drops, and the
// degraded-mode RAID-5 acceptance scenario (fail disk k mid-run, serve
// its reads by reconstruction, rebuild in the background through the
// foreground schedulers, and return to non-degraded service afterwards).

import (
	"reflect"
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/fault"
	"sfcsched/internal/sched"
)

// quietMetrics gives each test plan its own obs sink so parallel tests
// never race on fault.DefaultMetrics.
func quietMetrics() *fault.Metrics { return &fault.Metrics{} }

func TestZeroFaultPlanByteIdenticalSingle(t *testing.T) {
	m := xp()
	trace := goldenTrace(3, m)
	run := func(plan *fault.Plan) ([]flatEvent, *Result) {
		var events []flatEvent
		cfg := Config{Disk: m, Scheduler: sched.NewSCAN(),
			Options: Options{DropLate: true, Fault: plan,
				Trace: func(ev TraceEvent) { events = append(events, flatten(ev)) }}}
		res, err := Run(cfg, smallTraceCopy(trace))
		if err != nil {
			t.Fatal(err)
		}
		return events, res
	}
	baseEvents, baseRes := run(nil)
	for name, plan := range map[string]*fault.Plan{
		"zero-plan": {Seed: 99, Metrics: quietMetrics()},
		// A plan that can never fire: the injector is installed and rules
		// on every completion, yet must not perturb a single byte.
		"armed-but-silent": {Seed: 99, Bad: []fault.BadRange{{Disk: 5, From: 0, To: 1}}, Metrics: quietMetrics()},
	} {
		events, res := run(plan)
		if !reflect.DeepEqual(events, baseEvents) {
			t.Errorf("%s: trace stream diverged from fault-free run", name)
		}
		if !reflect.DeepEqual(res.Collector, baseRes.Collector) {
			t.Errorf("%s: collector diverged from fault-free run", name)
		}
		if res.HeadTravel != baseRes.HeadTravel {
			t.Errorf("%s: head travel %d != %d", name, res.HeadTravel, baseRes.HeadTravel)
		}
	}
}

func TestZeroFaultPlanByteIdenticalArray(t *testing.T) {
	array := testArray(t)
	var trace []*core.Request
	for i := 0; i < 120; i++ {
		trace = append(trace, &core.Request{
			ID: uint64(i + 1), Arrival: int64(i) * 7_000,
			Cylinder: i * 53 % 4000, Size: 64 << 10, Write: i%4 == 0,
		})
	}
	run := func(plan *fault.Plan) ([]flatEvent, *ArrayResult) {
		var events []flatEvent
		cfg := ArrayConfig{Array: array, NewScheduler: fcfsPerDisk,
			Options: Options{Fault: plan,
				Trace: func(ev TraceEvent) { events = append(events, flatten(ev)) }}}
		res, err := RunArray(cfg, smallTraceCopy(trace))
		if err != nil {
			t.Fatal(err)
		}
		return events, res
	}
	baseEvents, baseRes := run(nil)
	events, res := run(&fault.Plan{Seed: 4, Bad: []fault.BadRange{{Disk: 99, From: 0, To: 1}}, Metrics: quietMetrics()})
	if !reflect.DeepEqual(events, baseEvents) {
		t.Error("armed-but-silent plan: array trace stream diverged")
	}
	if !reflect.DeepEqual(res.PerDisk, baseRes.PerDisk) || !reflect.DeepEqual(res.Logical, baseRes.Logical) {
		t.Error("armed-but-silent plan: array collectors diverged")
	}
}

func TestScriptedTransientRetriesThenServes(t *testing.T) {
	trace := []*core.Request{{ID: 1, Arrival: 0, Cylinder: 100, Size: 4 << 10}}
	res, err := Run(Config{FixedService: 10_000, Scheduler: sched.NewFCFS(),
		Options: Options{Fault: &fault.Plan{
			Scripted:  []fault.Event{{Time: 0, Disk: 0, Cylinder: -1}},
			RetryBase: 1_000, Metrics: quietMetrics(),
		}}}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 1 || res.Dropped != 0 {
		t.Fatalf("served=%d dropped=%d, want 1/0", res.Served, res.Dropped)
	}
	if res.FaultAttempts != 1 {
		t.Errorf("FaultAttempts = %d, want 1", res.FaultAttempts)
	}
	// The failed attempt occupied the disk: two attempts of busy time.
	if res.ServiceTime != 20_000 {
		t.Errorf("ServiceTime = %d, want 20000", res.ServiceTime)
	}
	if res.Faults == nil || res.Faults.Transients != 1 || res.Faults.Retries != 1 {
		t.Errorf("fault stats = %+v, want 1 transient, 1 retry", res.Faults)
	}
	// Completion: 10000 (failed) + 1000 backoff + 10000 (served).
	if res.Makespan != 21_000 {
		t.Errorf("Makespan = %d, want 21000", res.Makespan)
	}
}

func TestTransientRetryExhausted(t *testing.T) {
	trace := []*core.Request{{ID: 1, Arrival: 0, Cylinder: 5, Size: 4 << 10}}
	res, err := Run(Config{FixedService: 10_000, Scheduler: sched.NewFCFS(),
		Options: Options{Fault: &fault.Plan{
			TransientRate: 1, MaxRetries: 2, RetryBase: 1_000, Metrics: quietMetrics(),
		}}}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 0 || res.Dropped != 1 || res.FaultDropped != 1 {
		t.Fatalf("served=%d dropped=%d faultDropped=%d, want 0/1/1",
			res.Served, res.Dropped, res.FaultDropped)
	}
	if res.FaultAttempts != 3 {
		t.Errorf("FaultAttempts = %d, want 3 (initial + 2 retries)", res.FaultAttempts)
	}
	fs := res.Faults
	if fs.Transients != 3 || fs.Retries != 2 || fs.Exhausted != 1 {
		t.Errorf("fault stats = %+v, want 3 transients, 2 retries, 1 exhausted", fs)
	}
	// Exponential backoff: 10000 + 1000 + 10000 + 2000 + 10000 = 33000.
	if res.Makespan != 33_000 {
		t.Errorf("Makespan = %d, want 33000", res.Makespan)
	}
}

func TestDeadlineExpiresDuringBackoff(t *testing.T) {
	trace := []*core.Request{{ID: 1, Arrival: 0, Cylinder: 5, Size: 4 << 10, Deadline: 15_000}}
	res, err := Run(Config{FixedService: 10_000, Scheduler: sched.NewFCFS(),
		Options: Options{DropLate: true, Fault: &fault.Plan{
			Scripted:  []fault.Event{{Time: 0, Disk: 0, Cylinder: -1}},
			RetryBase: 10_000, Metrics: quietMetrics(),
		}}}, trace)
	if err != nil {
		t.Fatal(err)
	}
	// The only attempt faulted; the retry re-enqueued at 20000, past the
	// 15000 deadline — a drop attributable to the fault, not to load.
	if res.Served != 0 || res.Dropped != 1 || res.FaultDropped != 1 {
		t.Fatalf("served=%d dropped=%d faultDropped=%d, want 0/1/1",
			res.Served, res.Dropped, res.FaultDropped)
	}
}

func TestBadSectorRemap(t *testing.T) {
	m := xp()
	trace := []*core.Request{
		{ID: 1, Arrival: 0, Cylinder: 150, Size: 4 << 10},
		{ID: 2, Arrival: 500_000, Cylinder: 160, Size: 4 << 10},
	}
	var heads []int
	res, err := Run(Config{Disk: m, Scheduler: sched.NewFCFS(),
		Options: Options{
			Trace: func(ev TraceEvent) {
				if !ev.Faulted {
					heads = append(heads, ev.Head)
				}
			},
			Fault: &fault.Plan{
				Bad: []fault.BadRange{{Disk: 0, From: 100, To: 200}}, Metrics: quietMetrics(),
			}}}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 2 {
		t.Fatalf("served = %d, want 2", res.Served)
	}
	fs := res.Faults
	if fs.BadSectorHits != 1 || fs.Remaps != 1 {
		t.Errorf("fault stats = %+v, want 1 bad-sector hit remapping 1 range", fs)
	}
	// Request 1's retry and request 2 both redirect into the spare area.
	if fs.RemapHits != 2 {
		t.Errorf("RemapHits = %d, want 2", fs.RemapHits)
	}
	// After the remapped retry the head sits on the spare (innermost)
	// cylinder, where request 2 finds it.
	last := heads[len(heads)-1]
	if last != m.Cylinders-1 {
		t.Errorf("head before final dispatch = %d, want spare cylinder %d", last, m.Cylinders-1)
	}
}

func TestRunRejectsDiskFailureWithoutArray(t *testing.T) {
	_, err := Run(Config{FixedService: 1000, Scheduler: sched.NewFCFS(),
		Options: Options{Fault: &fault.Plan{FailDisk: 0, FailAt: 1}}}, nil)
	if err == nil {
		t.Fatal("expected error: whole-disk failure needs an array")
	}
}

func TestArrayRejectsFailDiskOutOfRange(t *testing.T) {
	array := testArray(t)
	_, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk,
		Options: Options{Fault: &fault.Plan{FailDisk: 7, FailAt: 1, Metrics: quietMetrics()}}}, nil)
	if err == nil {
		t.Fatal("expected error: FailDisk outside the array")
	}
}

// blocksOnDisk returns n logical blocks whose data unit lives on disk d,
// scanning upward from block from.
func blocksOnDisk(array *disk.RAID5, d int, from int64, n int) []int64 {
	var out []int64
	for b := from; int64(len(out)) < int64(n); b++ {
		if _, dd, _ := array.Layout(b); dd == d {
			out = append(out, b)
		}
	}
	return out
}

// degradedEvent is the comparison tuple of the post-rebuild identity
// check: everything that defines a dispatch except the physical request
// ID (reconstruction fan-outs shift the ID sequence between runs).
type degradedEvent struct {
	Now      int64
	DiskID   int
	Cylinder int
	Head     int
	Seek     int64
	Service  int64
}

// TestDegradedModeCorrectness is the acceptance scenario: disk k fails
// mid-run; every subsequent read of a block on disk k is served by
// reconstruction from the surviving disks (no dispatch ever lands on
// disk k while it is down); the background rebuild completes through the
// foreground schedulers; and post-rebuild service is byte-identical to
// the non-degraded run on the same trace.
func TestDegradedModeCorrectness(t *testing.T) {
	array := testArray(t)
	const k = 2
	const failAt = int64(1_000_000)

	kBlocks := blocksOnDisk(array, k, 0, 8)
	otherBlocks := blocksOnDisk(array, 0, 0, 8)
	// Head-reset blocks (one per disk) and probe blocks for the
	// post-rebuild phase, far from the earlier blocks so cylinders differ.
	var resetBlocks []int64
	for d := 0; d < array.Disks; d++ {
		resetBlocks = append(resetBlocks, blocksOnDisk(array, d, 0, 1)[0])
	}
	probeBlocks := append(blocksOnDisk(array, k, 40_000, 3), blocksOnDisk(array, 1, 40_000, 3)...)

	var trace []*core.Request
	var id uint64
	add := func(at int64, block int64) {
		id++
		trace = append(trace, &core.Request{ID: id, Arrival: at, Cylinder: int(block), Size: 64 << 10})
	}
	// Phase 1: healthy operation, draining well before the failure.
	for i := 0; i < 8; i++ {
		add(int64(i)*40_000, kBlocks[i%len(kBlocks)])
		add(int64(i)*40_000+10_000, otherBlocks[i%len(otherBlocks)])
	}
	// Phase 2: inside the degraded window (the rebuild below takes ~1.2s).
	degradedKReads := 0
	for i := 0; i < 6; i++ {
		at := failAt + 10_000 + int64(i)*30_000
		if i%2 == 0 {
			add(at, kBlocks[i%len(kBlocks)])
			degradedKReads++
		} else {
			add(at, otherBlocks[i%len(otherBlocks)])
		}
	}
	// Phase 3: long after the rebuild — head resets, then probes.
	const phase3 = int64(6_000_000)
	for i, b := range resetBlocks {
		add(phase3+int64(i)*50_000, b)
	}
	probeStart := phase3 + int64(len(resetBlocks))*50_000 + 100_000
	for i, b := range probeBlocks {
		add(probeStart+int64(i)*50_000, b)
	}

	plan := &fault.Plan{
		FailDisk: k, FailAt: failAt,
		Rebuild: true, RebuildBlocks: 30, RebuildInterval: 10_000,
		Metrics: quietMetrics(),
	}
	var faultedAt, rebuiltAt int64
	var events []TraceEvent
	cfg := ArrayConfig{
		Array: array, NewScheduler: fcfsPerDisk,
		OnFaulted: func(d int, now int64) {
			if d == k {
				faultedAt = now
			}
		},
		OnRebuilt: func(d int, now int64) {
			if d == k {
				rebuiltAt = now
			}
		},
		Options: Options{Fault: plan, Trace: func(ev TraceEvent) { events = append(events, ev) }},
	}
	res, err := RunArray(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}

	if faultedAt != failAt {
		t.Fatalf("OnFaulted at %d, want %d", faultedAt, failAt)
	}
	if rebuiltAt <= failAt {
		t.Fatalf("rebuild never completed (OnRebuilt at %d)", rebuiltAt)
	}
	if rebuiltAt >= phase3 {
		t.Fatalf("rebuild finished at %d, after the post-rebuild phase %d — retune the test", rebuiltAt, phase3)
	}
	fs := res.Faults
	if fs == nil || fs.FailedAt != failAt || fs.RebuiltAt != rebuiltAt {
		t.Fatalf("fault stats = %+v, want FailedAt=%d RebuiltAt=%d", fs, failAt, rebuiltAt)
	}
	if got, want := fs.DegradedWindow(res.Makespan), rebuiltAt-failAt; got != want {
		t.Errorf("DegradedWindow = %d, want %d", got, want)
	}

	// No dispatch may land on disk k while it is down.
	for _, ev := range events {
		if ev.DiskID == k && ev.Now > failAt && ev.Now <= rebuiltAt {
			t.Fatalf("dispatch on failed disk %d at t=%d (degraded window (%d,%d])",
				k, ev.Now, failAt, rebuiltAt)
		}
	}
	// Every degraded read of disk k reconstructed from the survivors.
	if res.Reconstructions != uint64(degradedKReads) {
		t.Errorf("Reconstructions = %d, want %d", res.Reconstructions, degradedKReads)
	}
	// The rebuild read every stripe row once from each survivor.
	if want := uint64(plan.RebuildBlocks * (array.Disks - 1)); res.RebuildReads != want {
		t.Errorf("RebuildReads = %d, want %d", res.RebuildReads, want)
	}
	// Disk k serves again after the rebuild.
	served := false
	for _, ev := range events {
		if ev.DiskID == k && ev.Now > rebuiltAt {
			served = true
			break
		}
	}
	if !served {
		t.Error("no dispatch on disk k after the rebuild")
	}
	// Nothing was lost: every logical request completed.
	if res.Logical.Served != uint64(len(trace)) {
		t.Errorf("Logical.Served = %d, want %d", res.Logical.Served, len(trace))
	}

	// Post-rebuild identity: the probe dispatches must match the
	// non-degraded run on the same trace exactly (the head resets pin
	// every disk to the same cylinder in both runs first).
	probes := func(evs []TraceEvent) []degradedEvent {
		var out []degradedEvent
		for _, ev := range evs {
			if ev.Now >= probeStart {
				out = append(out, degradedEvent{ev.Now, ev.DiskID, ev.Request.Cylinder, ev.Head, ev.Seek, ev.Service})
			}
		}
		return out
	}
	var goldenEvents []TraceEvent
	goldenCfg := ArrayConfig{Array: array, NewScheduler: fcfsPerDisk,
		Options: Options{Trace: func(ev TraceEvent) { goldenEvents = append(goldenEvents, ev) }}}
	if _, err := RunArray(goldenCfg, smallTraceCopy(trace)); err != nil {
		t.Fatal(err)
	}
	got, want := probes(events), probes(goldenEvents)
	if len(want) == 0 {
		t.Fatal("no probe events in the golden run — retune the test")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-rebuild service diverged from the non-degraded run:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestDegradedWritesAbsorbed checks the degraded write paths: with the
// data disk down the parity is updated from the other data units and the
// data write is absorbed; with the parity disk down the data is written
// unprotected.
func TestDegradedWritesAbsorbed(t *testing.T) {
	array := testArray(t)
	const k = 2
	kBlocks := blocksOnDisk(array, k, 0, 2)
	var trace []*core.Request
	// Write to a block whose data disk is down, after the failure.
	trace = append(trace, &core.Request{ID: 1, Arrival: 200_000, Cylinder: int(kBlocks[0]), Size: 64 << 10, Write: true})
	res, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk,
		Options: Options{Fault: &fault.Plan{FailDisk: k, FailAt: 100_000, Metrics: quietMetrics()}}}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Logical.Served != 1 {
		t.Fatalf("Logical.Served = %d, want 1", res.Logical.Served)
	}
	if res.AbsorbedWrites != 1 {
		t.Errorf("AbsorbedWrites = %d, want 1", res.AbsorbedWrites)
	}
	// Degraded RMW with the data disk down: N-2 reads + 1 parity write.
	var ops uint64
	for _, n := range res.PerDiskOps {
		ops += n
	}
	if want := uint64(array.Disks - 2 + 1); ops != want {
		t.Errorf("physical ops = %d, want %d", ops, want)
	}
}

// TestFailureReroutesQueuedAndInFlight drains the dead disk's queue and
// re-routes the in-flight operation through reconstruction.
func TestFailureReroutesQueuedAndInFlight(t *testing.T) {
	array := testArray(t)
	const k = 2
	kBlocks := blocksOnDisk(array, k, 0, 4)
	var trace []*core.Request
	// Burst of reads on disk k just before the failure: one is in flight
	// and the rest are queued when the disk dies.
	for i, b := range kBlocks {
		trace = append(trace, &core.Request{ID: uint64(i + 1), Arrival: int64(i) * 100, Cylinder: int(b), Size: 64 << 10})
	}
	res, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk,
		Options: Options{Fault: &fault.Plan{FailDisk: k, FailAt: 5_000, Metrics: quietMetrics()}}}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Logical.Served != uint64(len(trace)) {
		t.Fatalf("Logical.Served = %d, want %d (all reads must reconstruct)", res.Logical.Served, len(trace))
	}
	if res.Reconstructions != uint64(len(trace)) {
		t.Errorf("Reconstructions = %d, want %d", res.Reconstructions, len(trace))
	}
	if res.Faults.LostInFlight != 1 {
		t.Errorf("LostInFlight = %d, want 1", res.Faults.LostInFlight)
	}
}
