package sim

import (
	"fmt"
	"sort"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/metrics"
	"sfcsched/internal/sched"
	"sfcsched/internal/stats"
)

// ArrayConfig configures a RAID-5 array simulation: logical block requests
// are mapped to physical per-disk operations (reads hit one disk; writes
// perform read-modify-write on the data and parity disks), each disk runs
// its own scheduler instance, and the disks proceed in parallel on a
// shared event timeline.
type ArrayConfig struct {
	// Array maps logical blocks to physical operations. Required.
	Array *disk.RAID5
	// NewScheduler builds the per-disk queue discipline. Required.
	NewScheduler func(diskID int) (sched.Scheduler, error)
	// Seed drives rotational-latency sampling when SampleRotation is set.
	Seed uint64
	// DropLate drops physical operations whose logical deadline passed
	// before service; the logical request counts as missed.
	DropLate bool
	// Dims and Levels size the logical metrics collector.
	Dims   int
	Levels int
	// SampleRotation draws rotational latencies instead of averaging.
	SampleRotation bool
}

// ArrayResult reports a RAID array run.
type ArrayResult struct {
	// Logical accounts whole block requests: a logical request is served
	// when every physical operation completed on time, missed when any
	// operation was dropped or started late.
	Logical *metrics.Collector
	// SeekTime and BusyTime aggregate over all disks, µs.
	SeekTime int64
	BusyTime int64
	// PerDiskOps counts physical operations dispatched to each disk.
	PerDiskOps []uint64
	// Makespan is the completion time of the run, µs.
	Makespan int64
}

// logicalState tracks one in-flight logical request.
type logicalState struct {
	req     *core.Request
	pending int  // physical ops still outstanding
	missed  bool // any op dropped or started late
	// writeOps holds the deferred write phase of a read-modify-write;
	// enqueued when the read phase drains.
	writeOps  []disk.PhysOp
	readsLeft int
}

// physReq is a physical operation queued on one disk.
type physReq struct {
	req    *core.Request // what the disk scheduler sees
	parent *logicalState
}

// arrayState is the per-disk runtime state.
type arrayState struct {
	sched  sched.Scheduler
	head   int
	freeAt int64
	inSvc  *physReq
}

// RunArray simulates the logical trace (sorted by arrival) on the array.
func RunArray(cfg ArrayConfig, logical []*core.Request) (*ArrayResult, error) {
	if cfg.Array == nil || cfg.NewScheduler == nil {
		return nil, fmt.Errorf("sim: ArrayConfig needs Array and NewScheduler")
	}
	model := cfg.Array.Model
	disks := make([]*arrayState, cfg.Array.Disks)
	for d := range disks {
		s, err := cfg.NewScheduler(d)
		if err != nil {
			return nil, fmt.Errorf("sim: disk %d scheduler: %w", d, err)
		}
		disks[d] = &arrayState{sched: s}
	}
	res := &ArrayResult{
		Logical:    metrics.NewCollector(cfg.Dims, cfg.Levels),
		PerDiskOps: make([]uint64, cfg.Array.Disks),
	}
	rng := stats.NewRNG(cfg.Seed)
	byPhys := make(map[*core.Request]*physReq)
	var nextPhysID uint64

	enqueue := func(st *logicalState, ops []disk.PhysOp, now int64) {
		for _, op := range ops {
			nextPhysID++
			pr := &physReq{
				req: &core.Request{
					ID:         nextPhysID,
					Priorities: st.req.Priorities,
					Deadline:   st.req.Deadline,
					Cylinder:   op.Cylinder,
					Size:       op.Size,
					Arrival:    now,
					Write:      op.Write,
					Value:      st.req.Value,
				},
				parent: st,
			}
			byPhys[pr.req] = pr
			ds := disks[op.Disk]
			ds.sched.Add(pr.req, now, ds.head)
			res.PerDiskOps[op.Disk]++
		}
	}

	finish := func(st *logicalState, now int64) {
		if st.missed {
			res.Logical.OnDropped(st.req)
		} else {
			res.Logical.OnServed(st.req, 0, 0, now)
		}
	}

	// opDone accounts one completed or dropped physical op and fires the
	// deferred write phase or the logical completion when due.
	var opDone func(st *logicalState, now int64, wasRead bool)
	opDone = func(st *logicalState, now int64, wasRead bool) {
		st.pending--
		if wasRead && len(st.writeOps) > 0 {
			st.readsLeft--
			if st.readsLeft == 0 {
				if st.missed {
					// The read phase failed; the write phase is abandoned.
					st.pending -= len(st.writeOps)
					st.writeOps = nil
				} else {
					ops := st.writeOps
					st.writeOps = nil
					enqueue(st, ops, now) // pending already counts them
				}
			}
		}
		if st.pending == 0 {
			finish(st, now)
		}
	}

	// dispatch starts service on every idle disk with pending work.
	dispatch := func(now int64) {
		for _, ds := range disks {
			for ds.inSvc == nil && ds.sched.Len() > 0 {
				r := ds.sched.Next(now, ds.head)
				if r == nil {
					break
				}
				pr := byPhys[r]
				delete(byPhys, r)
				if cfg.DropLate && r.Deadline > 0 && now > r.Deadline {
					pr.parent.missed = true
					opDone(pr.parent, now, !r.Write)
					continue
				}
				seek := model.SeekTime(ds.head, r.Cylinder)
				rot := model.AvgRotationalLatency()
				if cfg.SampleRotation {
					rot = model.RotationalLatency(rng)
				}
				svc := seek + rot + model.TransferTime(r.Cylinder, r.Size)
				if r.Deadline > 0 && now > r.Deadline {
					pr.parent.missed = true
				}
				res.SeekTime += seek
				res.BusyTime += svc
				ds.inSvc = pr
				ds.freeAt = now + svc
			}
		}
	}

	i := 0 // next logical arrival
	now := int64(0)
	for {
		// Earliest pending event: a logical arrival or a disk completion.
		next := int64(-1)
		if i < len(logical) {
			next = logical[i].Arrival
		}
		for _, ds := range disks {
			if ds.inSvc != nil && (next < 0 || ds.freeAt < next) {
				next = ds.freeAt
			}
		}
		if next < 0 {
			break // no arrivals left, no disk busy: queues are drained
		}
		now = next
		// Completions first so freed disks can take the new arrivals.
		for _, ds := range disks {
			if ds.inSvc != nil && ds.freeAt <= now {
				pr := ds.inSvc
				ds.inSvc = nil
				ds.head = pr.req.Cylinder
				opDone(pr.parent, now, !pr.req.Write)
			}
		}
		for i < len(logical) && logical[i].Arrival <= now {
			lr := logical[i]
			i++
			res.Logical.OnArrival(lr)
			st := &logicalState{req: lr}
			var phase1 []disk.PhysOp
			if lr.Write {
				ops := cfg.Array.Write(blockOf(lr))
				for _, op := range ops {
					if op.Write {
						st.writeOps = append(st.writeOps, op)
					} else {
						phase1 = append(phase1, op)
					}
				}
				st.readsLeft = len(phase1)
			} else {
				phase1 = cfg.Array.Read(blockOf(lr))
			}
			st.pending = len(phase1) + len(st.writeOps)
			enqueue(st, phase1, now)
		}
		dispatch(now)
	}
	res.Makespan = now
	return res, nil
}

// blockOf returns the logical block number of a request; array workloads
// carry it in the Cylinder field (the array, not the request, decides the
// physical cylinder).
func blockOf(r *core.Request) int64 {
	if r.Cylinder < 0 {
		return 0
	}
	return int64(r.Cylinder)
}

// SortByArrival orders a trace in place by arrival time (stable), the
// precondition of Run and RunArray.
func SortByArrival(trace []*core.Request) {
	sort.SliceStable(trace, func(i, j int) bool {
		return trace[i].Arrival < trace[j].Arrival
	})
}
