package sim

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/fault"
	"sfcsched/internal/metrics"
	"sfcsched/internal/sched"
	"sfcsched/internal/stats"
)

// ArrayConfig configures a RAID-5 array simulation: logical block requests
// are mapped to physical per-disk operations (reads hit one disk; writes
// perform read-modify-write on the data and parity disks), each disk runs
// its own scheduler instance on its own Station, and the stations proceed
// in parallel on the shared engine timeline.
type ArrayConfig struct {
	// Array maps logical blocks to physical operations. Required.
	Array *disk.RAID5
	// NewScheduler builds the per-disk queue discipline. Required.
	NewScheduler func(diskID int) (sched.Scheduler, error)

	// OnFaulted fires when the planned disk failure (Options.Fault) takes
	// effect; OnRebuilt when the background rebuild completes and the disk
	// rejoins. Both run inline at the exact event time.
	OnFaulted func(diskID int, now int64)
	OnRebuilt func(diskID int, now int64)

	Options
}

// ArrayResult reports a RAID array run.
type ArrayResult struct {
	// Logical accounts whole block requests: a logical request is served
	// when every physical operation completed on time, missed when any
	// operation was dropped or started late.
	Logical *metrics.Collector
	// PerDisk holds one physical collector per disk, fed by the shared
	// engine dispatch path: per-disk inversions, served/dropped/late
	// physical operations, seek and busy time.
	PerDisk []*metrics.Collector
	// SeekTime and BusyTime aggregate over all disks, µs.
	SeekTime int64
	BusyTime int64
	// PerDiskOps counts physical operations enqueued on each disk.
	PerDiskOps []uint64
	// Makespan is the completion time of the run, µs.
	Makespan int64

	// Faults snapshots the fault injector's counters; nil when the run
	// had no (or a zero) fault plan. The degraded-operation counters
	// below are only nonzero with a planned disk failure.
	Faults *fault.Stats
	// Reconstructions counts logical reads of the failed disk served by
	// reconstruction from the surviving disks while it was down.
	Reconstructions uint64
	// AbsorbedWrites counts physical writes to the failed disk that were
	// absorbed (the data is recoverable from parity and rewritten by the
	// rebuild).
	AbsorbedWrites uint64
	// RebuildReads counts survivor reads issued by the background rebuild
	// through the foreground schedulers.
	RebuildReads uint64
	// Shadows holds one divergence report per attached shadow, in
	// Options.Shadows order; empty when the run had none.
	Shadows []ShadowReport
}

// logicalState tracks one in-flight logical request.
type logicalState struct {
	req      *core.Request
	pending  int  // physical ops still outstanding
	missed   bool // any op dropped or started late
	finished bool // logical completion already recorded
	// writeOps holds the deferred write phase of a read-modify-write;
	// enqueued when the read phase drains.
	writeOps  []disk.PhysOp
	readsLeft int
}

// RunArray simulates the logical trace (sorted by arrival) on the array:
// an N-station Engine with the RAID-5 logical/physical mapping layered
// above it through the engine hooks. Physical dispatches flow through the
// same drop/late/service/metrics path as single-disk runs, so array runs
// emit the TraceEvent stream (with DiskID set) and per-disk collectors.
//
// With a fault plan carrying a whole-disk failure, the run degrades at
// FailAt: queued and in-flight operations of the failed disk are
// re-routed (reads reconstruct from the surviving N-1 disks via the
// PhysOp fan-out, writes are absorbed), later arrivals map through
// DegradedRead/DegradedWrite, and the optional background rebuild pushes
// its reconstruction reads through the same per-disk schedulers as
// foreground requests, so rebuild-vs-QoS interference is measurable.
func RunArray(cfg ArrayConfig, logical []*core.Request) (*ArrayResult, error) {
	if cfg.Array == nil || cfg.NewScheduler == nil {
		return nil, fmt.Errorf("sim: ArrayConfig needs Array and NewScheduler")
	}
	model := cfg.Array.Model
	stations := make([]*Station, cfg.Array.Disks)
	perDisk := make([]*metrics.Collector, cfg.Array.Disks)
	for d := range stations {
		s, err := cfg.NewScheduler(d)
		if err != nil {
			return nil, fmt.Errorf("sim: disk %d scheduler: %w", d, err)
		}
		perDisk[d] = metrics.NewCollector(cfg.Dims, cfg.Levels)
		stations[d] = &Station{
			ID:             d,
			Sched:          s,
			Disk:           model,
			Col:            perDisk[d],
			SampleRotation: cfg.SampleRotation,
			// The array models the head position at rest: schedulers see
			// the last completed cylinder until the next completion.
		}
	}
	res := &ArrayResult{
		Logical:    metrics.NewCollector(cfg.Dims, cfg.Levels),
		PerDisk:    perDisk,
		PerDiskOps: make([]uint64, cfg.Array.Disks),
	}
	eng := &Engine{
		Stations:  stations,
		DropLate:  cfg.DropLate,
		RNG:       stats.NewRNG(cfg.Seed),
		Trace:     cfg.Trace,
		Decisions: cfg.Decisions,
		Telemetry: cfg.Telemetry,
	}
	for _, sh := range cfg.Shadows {
		if sh.Station < 0 || sh.Station >= len(stations) {
			return nil, fmt.Errorf("sim: shadow %q targets station %d outside array of %d disks", sh.name, sh.Station, len(stations))
		}
		if sh.used {
			return nil, fmt.Errorf("sim: shadow %q already rode a run; shadows are single-use", sh.name)
		}
		st := stations[sh.Station]
		sh.bind(st, cfg.DropLate)
		st.shadows = append(st.shadows, sh)
	}
	var inj *fault.Injector
	if !cfg.Fault.Zero() {
		if cfg.Fault.FailAt > 0 && (cfg.Fault.FailDisk < 0 || cfg.Fault.FailDisk >= cfg.Array.Disks) {
			return nil, fmt.Errorf("sim: FailDisk %d outside array of %d disks", cfg.Fault.FailDisk, cfg.Array.Disks)
		}
		var err error
		inj, err = fault.New(*cfg.Fault, model.Cylinders)
		if err != nil {
			return nil, err
		}
		eng.Faults = inj
	}

	byPhys := make(map[*core.Request]*logicalState)
	var nextPhysID uint64

	createPhys := func(st *logicalState, op disk.PhysOp, now int64) {
		nextPhysID++
		pr := &core.Request{
			ID:         nextPhysID,
			Priorities: st.req.Priorities,
			Deadline:   st.req.Deadline,
			Cylinder:   op.Cylinder,
			Size:       op.Size,
			Arrival:    now,
			Write:      op.Write,
			Value:      st.req.Value,
		}
		byPhys[pr] = st
		eng.Stations[op.Disk].Enqueue(pr, now)
		res.PerDiskOps[op.Disk]++
	}

	// enqueue issues physical ops, transparently degrading any op that
	// targets the failed disk: writes are absorbed (recoverable from
	// parity), reads fan out into same-cylinder reconstruction reads on
	// every survivor. Callers account pending as one completion per op;
	// enqueue adjusts it for absorbed and fanned-out ops.
	enqueue := func(st *logicalState, ops []disk.PhysOp, now int64) {
		for _, op := range ops {
			if fd, down := downDisk(inj); down && op.Disk == fd {
				if op.Write {
					res.AbsorbedWrites++
					st.pending--
					continue
				}
				res.Reconstructions++
				if inj != nil {
					inj.Metrics().ReconstructReads.Add(uint64(cfg.Array.Disks - 1))
				}
				st.pending += cfg.Array.Disks - 2
				if len(st.writeOps) > 0 {
					st.readsLeft += cfg.Array.Disks - 2
				}
				for d := 0; d < cfg.Array.Disks; d++ {
					if d == fd {
						continue
					}
					createPhys(st, disk.PhysOp{Disk: d, Cylinder: op.Cylinder, Size: op.Size}, now)
				}
				continue
			}
			createPhys(st, op, now)
		}
	}

	finish := func(st *logicalState, now int64) {
		if st.finished {
			return
		}
		st.finished = true
		if st.missed {
			res.Logical.OnDropped(st.req)
		} else {
			res.Logical.OnServed(st.req, 0, 0, now)
		}
	}

	// opDone accounts one completed, dropped or absorbed physical op and
	// fires the deferred write phase or the logical completion when due.
	var opDone func(st *logicalState, now int64, wasRead bool)
	opDone = func(st *logicalState, now int64, wasRead bool) {
		st.pending--
		if wasRead && len(st.writeOps) > 0 {
			st.readsLeft--
			if st.readsLeft == 0 {
				if st.missed {
					// The read phase failed; the write phase is abandoned.
					st.pending -= len(st.writeOps)
					st.writeOps = nil
				} else {
					ops := st.writeOps
					st.writeOps = nil
					enqueue(st, ops, now) // pending already counts them
				}
			}
		}
		if st.pending == 0 {
			finish(st, now)
		}
	}

	// reroute re-issues a physical op stranded on the failed disk
	// (queued at failure time, in flight, or returning from a retry
	// backoff) through the degraded path.
	reroute := func(pr *core.Request, now int64) {
		st := byPhys[pr]
		delete(byPhys, pr)
		op := disk.PhysOp{Disk: cfg.Fault.FailDisk, Cylinder: pr.Cylinder, Size: pr.Size, Write: pr.Write}
		wasRead := !pr.Write
		// An absorbed write completes the op; a read fans out into
		// survivor reads that replace it (pending gains the fan-out and
		// loses the original).
		st.pending++
		if wasRead && len(st.writeOps) > 0 {
			st.readsLeft++
		}
		enqueue(st, []disk.PhysOp{op}, now)
		opDone(st, now, wasRead)
	}

	eng.OnDropped = func(_ *Station, r *core.Request, now int64) {
		st := byPhys[r]
		delete(byPhys, r)
		st.missed = true
		opDone(st, now, !r.Write)
	}
	eng.OnLateStart = func(_ *Station, r *core.Request, _ int64) {
		byPhys[r].missed = true
	}
	eng.OnServed = func(_ *Station, r *core.Request, now int64) {
		st := byPhys[r]
		delete(byPhys, r)
		opDone(st, now, !r.Write)
	}

	if inj != nil && cfg.Fault.FailAt > 0 {
		armFailure(cfg, eng, inj, res, reroute)
	}

	res.Makespan = eng.Run(logical, func(lr *core.Request, now int64) {
		res.Logical.OnArrival(lr)
		st := &logicalState{req: lr}
		block := blockOf(lr)
		var ops []disk.PhysOp
		fd, down := downDisk(inj)
		if lr.Write {
			if down {
				ops = cfg.Array.DegradedWrite(block, fd)
				if s, d, _ := cfg.Array.Layout(block); fd == d || fd == cfg.Array.ParityDisk(s) {
					res.AbsorbedWrites++
				}
			} else {
				ops = cfg.Array.Write(block)
			}
		} else if down {
			ops = cfg.Array.DegradedRead(block, fd)
			if len(ops) > 1 {
				res.Reconstructions++
				inj.Metrics().ReconstructReads.Add(uint64(len(ops)))
			}
		} else {
			ops = cfg.Array.Read(block)
		}
		var phase1 []disk.PhysOp
		for _, op := range ops {
			if op.Write {
				st.writeOps = append(st.writeOps, op)
			} else {
				phase1 = append(phase1, op)
			}
		}
		st.readsLeft = len(phase1)
		st.pending = len(phase1) + len(st.writeOps)
		if len(phase1) == 0 && len(st.writeOps) > 0 {
			// Degraded write with the data disk's read phase absent
			// (parity-only update): no reads gate the write phase.
			w := st.writeOps
			st.writeOps = nil
			enqueue(st, w, now)
		} else {
			enqueue(st, phase1, now)
		}
		if st.pending == 0 {
			finish(st, now)
		}
	})
	for _, c := range perDisk {
		res.SeekTime += c.SeekTime
		res.BusyTime += c.ServiceTime
	}
	if inj != nil {
		fs := inj.Stats()
		res.Faults = &fs
	}
	if len(cfg.Shadows) > 0 {
		res.Shadows = make([]ShadowReport, len(cfg.Shadows))
		for i, sh := range cfg.Shadows {
			res.Shadows[i] = sh.Report()
		}
	}
	return res, nil
}

// armFailure schedules the planned whole-disk failure and, when enabled,
// the background rebuild pump.
func armFailure(cfg ArrayConfig, eng *Engine, inj *fault.Injector, res *ArrayResult,
	reroute func(*core.Request, int64)) {
	k := cfg.Fault.FailDisk
	plan := inj.Plan()

	// Rebuild pump: one stripe row at a time, its survivor reads competing
	// in the same per-disk scheduler queues as foreground requests.
	isRebuild := make(map[*core.Request]bool)
	var nextRebuildID uint64
	rebuildPending := 0
	rebuiltBlocks := 0
	var issueRebuild func(now int64)
	issueRebuild = func(now int64) {
		if rebuiltBlocks >= plan.RebuildBlocks {
			inj.MarkRebuilt(now)
			if cfg.OnRebuilt != nil {
				cfg.OnRebuilt(k, now)
			}
			return
		}
		ops := cfg.Array.RebuildStripe(int64(rebuiltBlocks), k)
		rebuildPending = len(ops)
		for _, op := range ops {
			nextRebuildID++
			// Rebuild reads carry no deadline and no priorities: they are
			// background traffic contending purely on the disk layer.
			pr := &core.Request{ID: 1<<63 | nextRebuildID, Cylinder: op.Cylinder, Size: op.Size, Arrival: now}
			isRebuild[pr] = true
			eng.Stations[op.Disk].Enqueue(pr, now)
			res.PerDiskOps[op.Disk]++
			res.RebuildReads++
			inj.Metrics().RebuildReads.Inc()
		}
	}
	rebuildOpDone := func(now int64) {
		rebuildPending--
		if rebuildPending > 0 {
			return
		}
		rebuiltBlocks++
		inj.Metrics().RebuildProgress.Set(int64(rebuiltBlocks))
		if plan.RebuildInterval > 0 {
			eng.At(now+plan.RebuildInterval, issueRebuild)
		} else {
			issueRebuild(now)
		}
	}

	// Rebuild reads bypass the logical bookkeeping: intercept them before
	// the foreground hooks run.
	onServed, onDropped := eng.OnServed, eng.OnDropped
	eng.OnServed = func(st *Station, r *core.Request, now int64) {
		if isRebuild[r] {
			delete(isRebuild, r)
			rebuildOpDone(now)
			return
		}
		onServed(st, r, now)
	}
	eng.OnDropped = func(st *Station, r *core.Request, now int64) {
		if isRebuild[r] {
			// A rebuild read abandoned by the retry budget: the stripe row
			// proceeds without it (the pump must not stall).
			delete(isRebuild, r)
			rebuildOpDone(now)
			return
		}
		onDropped(st, r, now)
	}
	eng.OnFaulted = func(_ *Station, r *core.Request, now int64) {
		if isRebuild[r] {
			delete(isRebuild, r)
			rebuildOpDone(now)
			return
		}
		reroute(r, now)
	}

	eng.At(plan.FailAt, func(now int64) {
		inj.FailNow(now)
		if cfg.OnFaulted != nil {
			cfg.OnFaulted(k, now)
		}
		// Drain the dead disk's queue, re-routing every stranded op; the
		// in-flight one (if any) is re-routed by its Lost completion.
		st := eng.Stations[k]
		for st.Sched.Len() > 0 {
			pr := st.Sched.Next(now, st.Head())
			if pr == nil {
				break
			}
			if isRebuild[pr] {
				delete(isRebuild, pr)
				rebuildOpDone(now)
				continue
			}
			reroute(pr, now)
		}
		if plan.Rebuild {
			issueRebuild(now)
		}
	})
}

// downDisk returns the currently failed disk of inj, if any.
func downDisk(inj *fault.Injector) (int, bool) {
	if inj == nil {
		return 0, false
	}
	return inj.DownDisk()
}

// blockOf returns the logical block number of a request; array workloads
// carry it in the Cylinder field (the array, not the request, decides the
// physical cylinder).
func blockOf(r *core.Request) int64 {
	if r.Cylinder < 0 {
		return 0
	}
	return int64(r.Cylinder)
}
