package sim

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/metrics"
	"sfcsched/internal/sched"
	"sfcsched/internal/stats"
)

// ArrayConfig configures a RAID-5 array simulation: logical block requests
// are mapped to physical per-disk operations (reads hit one disk; writes
// perform read-modify-write on the data and parity disks), each disk runs
// its own scheduler instance on its own Station, and the stations proceed
// in parallel on the shared engine timeline.
type ArrayConfig struct {
	// Array maps logical blocks to physical operations. Required.
	Array *disk.RAID5
	// NewScheduler builds the per-disk queue discipline. Required.
	NewScheduler func(diskID int) (sched.Scheduler, error)

	Options
}

// ArrayResult reports a RAID array run.
type ArrayResult struct {
	// Logical accounts whole block requests: a logical request is served
	// when every physical operation completed on time, missed when any
	// operation was dropped or started late.
	Logical *metrics.Collector
	// PerDisk holds one physical collector per disk, fed by the shared
	// engine dispatch path: per-disk inversions, served/dropped/late
	// physical operations, seek and busy time.
	PerDisk []*metrics.Collector
	// SeekTime and BusyTime aggregate over all disks, µs.
	SeekTime int64
	BusyTime int64
	// PerDiskOps counts physical operations enqueued on each disk.
	PerDiskOps []uint64
	// Makespan is the completion time of the run, µs.
	Makespan int64
}

// logicalState tracks one in-flight logical request.
type logicalState struct {
	req     *core.Request
	pending int  // physical ops still outstanding
	missed  bool // any op dropped or started late
	// writeOps holds the deferred write phase of a read-modify-write;
	// enqueued when the read phase drains.
	writeOps  []disk.PhysOp
	readsLeft int
}

// RunArray simulates the logical trace (sorted by arrival) on the array:
// an N-station Engine with the RAID-5 logical/physical mapping layered
// above it through the engine hooks. Physical dispatches flow through the
// same drop/late/service/metrics path as single-disk runs, so array runs
// emit the TraceEvent stream (with DiskID set) and per-disk collectors.
func RunArray(cfg ArrayConfig, logical []*core.Request) (*ArrayResult, error) {
	if cfg.Array == nil || cfg.NewScheduler == nil {
		return nil, fmt.Errorf("sim: ArrayConfig needs Array and NewScheduler")
	}
	model := cfg.Array.Model
	stations := make([]*Station, cfg.Array.Disks)
	perDisk := make([]*metrics.Collector, cfg.Array.Disks)
	for d := range stations {
		s, err := cfg.NewScheduler(d)
		if err != nil {
			return nil, fmt.Errorf("sim: disk %d scheduler: %w", d, err)
		}
		perDisk[d] = metrics.NewCollector(cfg.Dims, cfg.Levels)
		stations[d] = &Station{
			ID:             d,
			Sched:          s,
			Disk:           model,
			Col:            perDisk[d],
			SampleRotation: cfg.SampleRotation,
			// The array models the head position at rest: schedulers see
			// the last completed cylinder until the next completion.
		}
	}
	res := &ArrayResult{
		Logical:    metrics.NewCollector(cfg.Dims, cfg.Levels),
		PerDisk:    perDisk,
		PerDiskOps: make([]uint64, cfg.Array.Disks),
	}
	eng := &Engine{
		Stations: stations,
		DropLate: cfg.DropLate,
		RNG:      stats.NewRNG(cfg.Seed),
		Trace:    cfg.Trace,
	}

	byPhys := make(map[*core.Request]*logicalState)
	var nextPhysID uint64

	enqueue := func(st *logicalState, ops []disk.PhysOp, now int64) {
		for _, op := range ops {
			nextPhysID++
			pr := &core.Request{
				ID:         nextPhysID,
				Priorities: st.req.Priorities,
				Deadline:   st.req.Deadline,
				Cylinder:   op.Cylinder,
				Size:       op.Size,
				Arrival:    now,
				Write:      op.Write,
				Value:      st.req.Value,
			}
			byPhys[pr] = st
			eng.Stations[op.Disk].Enqueue(pr, now)
			res.PerDiskOps[op.Disk]++
		}
	}

	finish := func(st *logicalState, now int64) {
		if st.missed {
			res.Logical.OnDropped(st.req)
		} else {
			res.Logical.OnServed(st.req, 0, 0, now)
		}
	}

	// opDone accounts one completed or dropped physical op and fires the
	// deferred write phase or the logical completion when due.
	var opDone func(st *logicalState, now int64, wasRead bool)
	opDone = func(st *logicalState, now int64, wasRead bool) {
		st.pending--
		if wasRead && len(st.writeOps) > 0 {
			st.readsLeft--
			if st.readsLeft == 0 {
				if st.missed {
					// The read phase failed; the write phase is abandoned.
					st.pending -= len(st.writeOps)
					st.writeOps = nil
				} else {
					ops := st.writeOps
					st.writeOps = nil
					enqueue(st, ops, now) // pending already counts them
				}
			}
		}
		if st.pending == 0 {
			finish(st, now)
		}
	}

	eng.OnDropped = func(_ *Station, r *core.Request, now int64) {
		st := byPhys[r]
		delete(byPhys, r)
		st.missed = true
		opDone(st, now, !r.Write)
	}
	eng.OnLateStart = func(_ *Station, r *core.Request, _ int64) {
		byPhys[r].missed = true
	}
	eng.OnServed = func(_ *Station, r *core.Request, now int64) {
		st := byPhys[r]
		delete(byPhys, r)
		opDone(st, now, !r.Write)
	}

	res.Makespan = eng.Run(logical, func(lr *core.Request, now int64) {
		res.Logical.OnArrival(lr)
		st := &logicalState{req: lr}
		var phase1 []disk.PhysOp
		if lr.Write {
			ops := cfg.Array.Write(blockOf(lr))
			for _, op := range ops {
				if op.Write {
					st.writeOps = append(st.writeOps, op)
				} else {
					phase1 = append(phase1, op)
				}
			}
			st.readsLeft = len(phase1)
		} else {
			phase1 = cfg.Array.Read(blockOf(lr))
		}
		st.pending = len(phase1) + len(st.writeOps)
		enqueue(st, phase1, now)
	})
	for _, c := range perDisk {
		res.SeekTime += c.SeekTime
		res.BusyTime += c.ServiceTime
	}
	return res, nil
}

// blockOf returns the logical block number of a request; array workloads
// carry it in the Cylinder field (the array, not the request, decides the
// physical cylinder).
func blockOf(r *core.Request) int64 {
	if r.Cylinder < 0 {
		return 0
	}
	return int64(r.Cylinder)
}
