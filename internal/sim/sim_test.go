package sim

import (
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/sched"
	"sfcsched/internal/workload"
)

func xp() *disk.Model { return disk.MustModel(disk.QuantumXP32150Params()) }

func smallTrace() []*core.Request {
	return workload.Open{
		Seed: 7, Count: 500, MeanInterarrival: 25_000,
		Dims: 2, Levels: 8, DeadlineMin: 200_000, DeadlineMax: 400_000,
		Cylinders: 3832, Size: 64 << 10,
	}.MustGenerate()
}

func TestRunServesEverythingFCFS(t *testing.T) {
	trace := smallTrace()
	res := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS()}, trace)
	if res.Arrived != uint64(len(trace)) {
		t.Errorf("arrived = %d, want %d", res.Arrived, len(trace))
	}
	if res.Served != uint64(len(trace)) {
		t.Errorf("served = %d, want %d (no dropping configured)", res.Served, len(trace))
	}
	if res.Makespan <= 0 || res.ServiceTime <= 0 {
		t.Error("makespan/service time not recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	trace := smallTrace()
	a := MustRun(Config{Disk: xp(), Scheduler: sched.NewSSTF(), Options: Options{Seed: 3}}, trace)
	b := MustRun(Config{Disk: xp(), Scheduler: sched.NewSSTF(), Options: Options{Seed: 3}}, smallTrace())
	if a.Makespan != b.Makespan || a.SeekTime != b.SeekTime || a.TotalInversions() != b.TotalInversions() {
		t.Error("identical runs diverged")
	}
}

func TestFCFSHasNoDropUnlessConfigured(t *testing.T) {
	trace := smallTrace()
	res := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS(), Options: Options{DropLate: true}}, trace)
	if res.Served+res.Dropped != uint64(len(trace)) {
		t.Errorf("served %d + dropped %d != %d", res.Served, res.Dropped, len(trace))
	}
}

func TestSSTFBeatsFCFSOnSeek(t *testing.T) {
	trace := workload.Open{
		Seed: 11, Count: 2000, MeanInterarrival: 5_000,
		Dims: 1, Levels: 8, Cylinders: 3832, Size: 16 << 10,
	}.MustGenerate()
	fcfs := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS()}, trace)
	sstf := MustRun(Config{Disk: xp(), Scheduler: sched.NewSSTF()}, trace)
	if sstf.SeekTime >= fcfs.SeekTime {
		t.Errorf("SSTF seek %d >= FCFS seek %d", sstf.SeekTime, fcfs.SeekTime)
	}
}

func TestEDFBeatsFCFSOnMisses(t *testing.T) {
	// Moderate overload: EDF's triage matters when the disk can almost
	// keep up; under extreme overload every policy drops at capacity.
	trace := workload.Open{
		Seed: 13, Count: 2000, MeanInterarrival: 25_000,
		Dims: 1, Levels: 8, DeadlineMin: 30_000, DeadlineMax: 300_000,
		Cylinders: 3832, Size: 64 << 10,
	}.MustGenerate()
	fcfs := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS(), Options: Options{DropLate: true}}, trace)
	edf := MustRun(Config{Disk: xp(), Scheduler: sched.NewEDF(), Options: Options{DropLate: true}}, trace)
	if fcfs.TotalMisses() == 0 {
		t.Fatal("workload not overloaded enough to test misses")
	}
	if edf.TotalMisses() >= fcfs.TotalMisses() {
		t.Errorf("EDF misses %d >= FCFS misses %d", edf.TotalMisses(), fcfs.TotalMisses())
	}
}

func TestDropLateSemantics(t *testing.T) {
	// Two requests with the same arrival; serving the first makes the
	// second hopeless. With DropLate the second is dropped unserved.
	trace := []*core.Request{
		{ID: 1, Arrival: 0, Deadline: 60_000, Cylinder: 100, Size: 64 << 10},
		{ID: 2, Arrival: 0, Deadline: 5_000, Cylinder: 3000, Size: 64 << 10},
	}
	res := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS(), Options: Options{DropLate: true}}, trace)
	if res.Served != 1 || res.Dropped != 1 {
		t.Errorf("served=%d dropped=%d, want 1/1", res.Served, res.Dropped)
	}
	// Without DropLate it is served anyway and counted late.
	res2 := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS()}, trace)
	if res2.Served != 2 || res2.Late != 1 {
		t.Errorf("served=%d late=%d, want 2/1", res2.Served, res2.Late)
	}
}

func TestTransferOnlyIgnoresSeek(t *testing.T) {
	trace := smallTrace()
	res := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS(), TransferOnly: true}, trace)
	if res.SeekTime != 0 {
		t.Errorf("transfer-only run recorded seek time %d", res.SeekTime)
	}
	if res.ServiceTime == 0 {
		t.Error("transfer-only run should still accumulate service time")
	}
}

func TestFixedServiceNeedsNoDisk(t *testing.T) {
	trace := []*core.Request{
		{ID: 1, Arrival: 0},
		{ID: 2, Arrival: 10},
	}
	res := MustRun(Config{Scheduler: sched.NewFCFS(), FixedService: 1000}, trace)
	if res.ServiceTime != 2000 {
		t.Errorf("service time = %d, want 2000", res.ServiceTime)
	}
	if res.Makespan != 2000 {
		t.Errorf("makespan = %d, want 2000", res.Makespan)
	}
}

func TestIdleGapsAdvanceClock(t *testing.T) {
	trace := []*core.Request{
		{ID: 1, Arrival: 0},
		{ID: 2, Arrival: 1_000_000}, // long idle gap
	}
	res := MustRun(Config{Scheduler: sched.NewFCFS(), FixedService: 100}, trace)
	if res.Makespan != 1_000_100 {
		t.Errorf("makespan = %d, want 1000100", res.Makespan)
	}
}

func TestInversionSampling(t *testing.T) {
	// Low priority request served while a higher-priority one waits:
	// exactly one inversion in one dimension.
	trace := []*core.Request{
		{ID: 1, Arrival: 0, Priorities: []int{5}},
		{ID: 2, Arrival: 0, Priorities: []int{1}},
		{ID: 3, Arrival: 0, Priorities: []int{7}},
	}
	res := MustRun(Config{Scheduler: sched.NewFCFS(), FixedService: 1000, Options: Options{Dims: 1, Levels: 8}}, trace)
	// Dispatch 1: pending {2,3}: 2 is higher -> 1 inversion.
	// Dispatch 2: pending {3}: lower -> 0. Dispatch 3: none.
	if res.TotalInversions() != 1 {
		t.Errorf("inversions = %d, want 1", res.TotalInversions())
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("expected error without scheduler")
	}
	if _, err := Run(Config{Scheduler: sched.NewFCFS()}, nil); err == nil {
		t.Error("expected error without disk or fixed service")
	}
}

func TestCascadedSchedulerRunsInSim(t *testing.T) {
	trace := smallTrace()
	cs := core.MustScheduler("cascaded",
		core.EncapsulatorConfig{Levels: 8, UseDeadline: true, F: 1, DeadlineHorizon: 400_000},
		core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true},
		0.05)
	res := MustRun(Config{Disk: xp(), Scheduler: cs, Options: Options{DropLate: true}}, trace)
	if res.Served+res.Dropped != uint64(len(trace)) {
		t.Errorf("cascaded run lost requests: %d + %d != %d", res.Served, res.Dropped, len(trace))
	}
}

func TestHeadTravelAccumulates(t *testing.T) {
	trace := []*core.Request{
		{ID: 1, Arrival: 0, Cylinder: 100},
		{ID: 2, Arrival: 0, Cylinder: 300},
	}
	res := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS()}, trace)
	if res.HeadTravel != 100+200 {
		t.Errorf("head travel = %d, want 300", res.HeadTravel)
	}
}
