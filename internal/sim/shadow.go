package sim

import (
	"sfcsched/internal/core"
	"sfcsched/internal/sched"
)

// A Shadow is a counterfactual scheduler riding along a run: it receives
// exactly the arrival stream the primary station's scheduler receives
// (including fault retries) and is asked, at every primary service
// dispatch, what it would have dispatched — tracking its own hypothetical
// head position, head travel, drop count and deadline-slack deltas. It
// never enqueues events, never touches the engine RNG, never moves the
// real head and never writes to the primary collectors, so a run with
// shadows attached is byte-identical to one without (pinned by
// TestShadowsDoNotPerturb and the golden-identity fuzz target).
//
// Divergence semantics: the shadow maintains its own queue on the shared
// arrival stream. When the primary dispatches, the shadow pops its own
// choice — which may be a request the primary served earlier or will
// serve later; each request is dispatched at most once per queue. An
// agreement is the shadow choosing the same request (pointer identity)
// the primary chose at the same decision point. The queues therefore
// measure per-decision policy divergence under identical load, not a full
// re-simulation with re-timed completions — for that, run the policy as
// the primary.
type Shadow struct {
	// Station is the station index the shadow attaches to; leave 0 for
	// single-disk runs.
	Station int

	name      string
	sched     sched.Scheduler
	dropLate  bool
	cylinders int
	head      int
	travel    int64

	decisions    uint64
	agreements   uint64
	drops        uint64
	empty        uint64
	slackDelta   int64
	slackSamples uint64

	used bool
	m    *DecisionMetrics
}

// metricsRedirector is implemented by schedulers whose observability
// counters can be pointed away from the process-wide defaults
// (core.Scheduler). Shadows redirect theirs to a throwaway sink so
// counterfactual activity never pollutes the primary metrics.
type metricsRedirector interface {
	SetMetrics(*core.Metrics)
}

// NewShadow wraps s as a counterfactual shadow named name. The scheduler
// must be fresh (empty queue) and is owned by the shadow for one run; its
// core metrics, when redirectable, are pointed at a throwaway sink.
func NewShadow(name string, s sched.Scheduler) *Shadow {
	if mr, ok := s.(metricsRedirector); ok {
		mr.SetMetrics(&core.Metrics{})
	}
	return &Shadow{name: name, sched: s, m: DefaultDecisionMetrics}
}

// SetMetrics redirects the shadow's decision counters to m instead of the
// process-wide DefaultDecisionMetrics. Call before the run starts.
func (sh *Shadow) SetMetrics(m *DecisionMetrics) { sh.m = m }

// Name returns the shadow's display name.
func (sh *Shadow) Name() string { return sh.name }

// bind attaches the shadow to its station at run start. A Shadow is
// single-use: its scheduler and divergence state carry one run's history.
func (sh *Shadow) bind(st *Station, dropLate bool) {
	sh.used = true
	sh.dropLate = dropLate
	sh.head = st.head
	if st.Disk != nil {
		sh.cylinders = st.Disk.Cylinders
	}
}

// add mirrors a primary enqueue into the shadow's queue, with the
// shadow's own head position.
func (sh *Shadow) add(r *core.Request, now int64) {
	sh.sched.Add(r, now, sh.head)
}

// observe is called when the primary station starts a service on primary:
// the shadow pops its own choice, applies the same drop-late rule, and
// accounts divergence against the primary's choice.
func (sh *Shadow) observe(primary *core.Request, now int64) {
	sh.decisions++
	sh.m.ShadowDecisions.Inc()
	for {
		r := sh.sched.Next(now, sh.head)
		if r == nil {
			sh.empty++
			return
		}
		if sh.dropLate && r.Deadline > 0 && now > r.Deadline {
			sh.drops++
			continue
		}
		if r == primary {
			sh.agreements++
		} else {
			sh.m.ShadowDisagreements.Inc()
		}
		target := r.Cylinder
		if sh.cylinders > 0 {
			target = clampCyl(target, sh.cylinders)
		}
		sh.travel += int64(absInt(target - sh.head))
		sh.head = target
		if r.Deadline > 0 && primary.Deadline > 0 {
			sh.slackDelta += r.Deadline - primary.Deadline
			sh.slackSamples++
		}
		return
	}
}

// ShadowReport is the divergence summary of one shadow after a run.
type ShadowReport struct {
	// Name is the shadow's display name; Station the station it rode.
	Name    string
	Station int
	// Decisions counts primary service dispatches the shadow observed.
	Decisions uint64
	// Agreements counts decisions where the shadow chose the same request
	// as the primary.
	Agreements uint64
	// Drops counts requests the shadow's queue dropped expired (DropLate
	// runs only); Empty counts decisions where the shadow's queue had
	// nothing eligible.
	Drops uint64
	Empty uint64
	// HeadTravel is the hypothetical cylinders traveled by the shadow's
	// head; compare against Result.HeadTravel for the travel delta.
	HeadTravel int64
	// SlackDelta sums (shadow choice deadline − primary choice deadline)
	// over the SlackSamples decisions where both carried deadlines:
	// negative means the shadow favored more urgent requests.
	SlackDelta   int64
	SlackSamples uint64
	// QueueLeft is the shadow queue's length at run end (requests the
	// shadow never got to dispatch).
	QueueLeft int
}

// DisagreementRate returns the fraction of observed decisions where the
// shadow chose differently (empty-queue observations count as
// disagreements; they mean the shadow had already served everything).
func (r ShadowReport) DisagreementRate() float64 {
	if r.Decisions == 0 {
		return 0
	}
	return 1 - float64(r.Agreements)/float64(r.Decisions)
}

// Report summarizes the shadow after its run.
func (sh *Shadow) Report() ShadowReport {
	return ShadowReport{
		Name:         sh.name,
		Station:      sh.Station,
		Decisions:    sh.decisions,
		Agreements:   sh.agreements,
		Drops:        sh.drops,
		Empty:        sh.empty,
		HeadTravel:   sh.travel,
		SlackDelta:   sh.slackDelta,
		SlackSamples: sh.slackSamples,
		QueueLeft:    sh.sched.Len(),
	}
}
