package sim

import (
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/sched"
	"sfcsched/internal/sfc"
	"sfcsched/internal/workload"
)

// invariantSchedulers builds the policies exercised by the cross-cutting
// invariant tests.
func invariantSchedulers() map[string]func() sched.Scheduler {
	est := xp().ServiceTime
	return map[string]func() sched.Scheduler{
		"fcfs":     func() sched.Scheduler { return sched.NewFCFS() },
		"sstf":     func() sched.Scheduler { return sched.NewSSTF() },
		"scan":     func() sched.Scheduler { return sched.NewSCAN() },
		"cscan":    func() sched.Scheduler { return sched.NewCSCAN() },
		"edf":      func() sched.Scheduler { return sched.NewEDF() },
		"scan-edf": func() sched.Scheduler { return sched.NewSCANEDF(50_000) },
		"fd-scan":  func() sched.Scheduler { return sched.NewFDSCAN(est) },
		"scan-rt":  func() sched.Scheduler { return sched.NewSCANRT(est) },
		"kamel":    func() sched.Scheduler { return sched.NewKamel(est) },
		"cascaded": func() sched.Scheduler {
			return core.MustScheduler("cascaded", core.EncapsulatorConfig{
				Curve1: sfc.MustNew("peano", 2, 9), Levels: 8,
				UseDeadline: true, F: 1, DeadlineHorizon: 700_000,
				DeadlineSpan: 700_000, DeadlineSlack: true,
				UseCylinder: true, R: 3, Cylinders: 3832,
			}, core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true}, 0.02)
		},
	}
}

// TestRunInvariants checks, for every scheduler under both drop modes:
// request conservation, non-negative times, busy time within makespan,
// and seek accounted within service.
func TestRunInvariants(t *testing.T) {
	trace := workload.Open{
		Seed: 3, Count: 1500, MeanInterarrival: 12_000,
		Dims: 2, Levels: 8, DeadlineMin: 200_000, DeadlineMax: 700_000,
		Cylinders: 3832, SizeMin: 4 << 10, SizeMax: 64 << 10,
	}.MustGenerate()
	for name, mk := range invariantSchedulers() {
		for _, drop := range []bool{false, true} {
			res := MustRun(Config{
				Disk: xp(), Scheduler: mk(),
				Options: Options{DropLate: drop, Dims: 2, Levels: 8, Seed: 3},
			}, trace)
			if res.Arrived != uint64(len(trace)) {
				t.Errorf("%s drop=%v: arrived %d != %d", name, drop, res.Arrived, len(trace))
			}
			if res.Served+res.Dropped != res.Arrived {
				t.Errorf("%s drop=%v: served %d + dropped %d != arrived %d",
					name, drop, res.Served, res.Dropped, res.Arrived)
			}
			if !drop && res.Dropped != 0 {
				t.Errorf("%s: dropped %d without DropLate", name, res.Dropped)
			}
			if res.ServiceTime > res.Makespan {
				t.Errorf("%s drop=%v: busy %d exceeds makespan %d", name, drop, res.ServiceTime, res.Makespan)
			}
			if res.SeekTime > res.ServiceTime {
				t.Errorf("%s drop=%v: seek %d exceeds service %d", name, drop, res.SeekTime, res.ServiceTime)
			}
			if res.WaitingTimes.Min() < 0 {
				t.Errorf("%s drop=%v: negative waiting time", name, drop)
			}
		}
	}
}

// TestWorkConservation: the disk never idles while requests are pending —
// so total idle time must not exceed the idle implied by arrival gaps.
// A simple sufficient check: with a saturating workload (arrivals faster
// than service), makespan ~= first arrival + total service time.
func TestWorkConservation(t *testing.T) {
	trace := workload.Open{
		Seed: 4, Count: 800, MeanInterarrival: 1_000,
		Dims: 1, Levels: 8, Cylinders: 3832, Size: 64 << 10,
	}.MustGenerate()
	res := MustRun(Config{Disk: xp(), Scheduler: sched.NewSSTF(), Options: Options{Seed: 4}}, trace)
	idle := res.Makespan - res.ServiceTime
	if idle > trace[0].Arrival+1000 {
		t.Errorf("disk idled %d us with a saturating queue", idle)
	}
}

// TestPerfectPriorityOrderHasZeroInversions: a single-dimension cascade
// with a huge service gap between arrivals dispatches strictly by level,
// so dispatch-time inversions must be zero when all requests are present
// before the first dispatch.
func TestPerfectPriorityOrderHasZeroInversions(t *testing.T) {
	var trace []*core.Request
	for i := 0; i < 64; i++ {
		trace = append(trace, &core.Request{
			ID: uint64(i + 1), Arrival: 0, Priorities: []int{i % 8},
		})
	}
	s := core.MustScheduler("strict", core.EncapsulatorConfig{Levels: 8},
		core.DispatcherConfig{Mode: core.FullyPreemptive}, 0)
	res := MustRun(Config{Scheduler: s, FixedService: 100, Options: Options{Dims: 1, Levels: 8}}, trace)
	if res.TotalInversions() != 0 {
		t.Errorf("strict priority order produced %d inversions", res.TotalInversions())
	}
}

// TestFIFOMatchesArrivalOrderWaits: under FCFS with fixed service, waiting
// times are non-decreasing in arrival order within a busy period.
func TestFIFOMatchesArrivalOrderWaits(t *testing.T) {
	trace := []*core.Request{
		{ID: 1, Arrival: 0},
		{ID: 2, Arrival: 10},
		{ID: 3, Arrival: 20},
	}
	res := MustRun(Config{Scheduler: sched.NewFCFS(), FixedService: 1000}, trace)
	// Waits: 0, 990, 1980.
	if res.WaitingTimes.Min() != 0 || res.WaitingTimes.Max() != 1980 {
		t.Errorf("waits = [%v, %v], want [0, 1980]", res.WaitingTimes.Min(), res.WaitingTimes.Max())
	}
}

// TestCascadedFullStackAgainstBaselines: integration — the full cascade
// must land between the specialists on their own turf: no more misses
// than FCFS, no more seek than EDF, under the mixed workload.
func TestCascadedFullStackAgainstBaselines(t *testing.T) {
	trace := workload.Open{
		Seed: 5, Count: 3000, MeanInterarrival: 13_000,
		Dims: 3, Levels: 8, DeadlineMin: 500_000, DeadlineMax: 700_000,
		Cylinders: 3832, SizeMin: 4 << 10, SizeMax: 256 << 10,
	}.MustGenerate()
	run := func(s sched.Scheduler, drop bool) *Result {
		return MustRun(Config{Disk: xp(), Scheduler: s, Options: Options{DropLate: drop, Dims: 3, Levels: 8, Seed: 5}}, trace)
	}
	cascaded := run(invariantSchedulers()["cascaded"](), true)
	fcfs := run(sched.NewFCFS(), true)
	edf := run(sched.NewEDF(), true)
	if cascaded.TotalMisses() >= fcfs.TotalMisses() {
		t.Errorf("cascaded misses %d >= FCFS %d", cascaded.TotalMisses(), fcfs.TotalMisses())
	}
	if cascaded.SeekTime >= edf.SeekTime {
		t.Errorf("cascaded seek %d >= EDF %d", cascaded.SeekTime, edf.SeekTime)
	}
	// Inversions are compared under the §5 semantics (no dropping): with
	// DropLate each scheduler serves a different request subset, so raw
	// counts are not comparable — only the shared served set is.
	cascadedND := run(invariantSchedulers()["cascaded"](), false)
	fcfsND := run(sched.NewFCFS(), false)
	if cascadedND.TotalInversions() >= fcfsND.TotalInversions() {
		t.Errorf("cascaded inversions %d >= FCFS %d", cascadedND.TotalInversions(), fcfsND.TotalInversions())
	}
}
