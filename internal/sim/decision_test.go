package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/sched"
	"sfcsched/internal/workload"
)

// decisionWorkload generates the standard small workload used by the
// decision-layer tests.
func decisionWorkload(seed uint64) []*core.Request {
	return workload.Open{
		Seed: seed, Count: 400, MeanInterarrival: 12_000,
		Dims: 2, Levels: 8, DeadlineMin: 100_000, DeadlineMax: 500_000,
		Cylinders: 3832, SizeMin: 4 << 10, SizeMax: 128 << 10,
	}.MustGenerate()
}

func cascadedScheduler() sched.Scheduler {
	return core.MustScheduler("cascaded",
		core.EncapsulatorConfig{Levels: 8, UseDeadline: true, F: 1, DeadlineHorizon: 800_000},
		core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true},
		0.05)
}

func TestDecisionTraceCapturesDecisions(t *testing.T) {
	dt := NewDecisionTrace(10_000)
	dt.SetMetrics(&DecisionMetrics{})
	res := MustRun(Config{
		Disk: xp(), Scheduler: cascadedScheduler(),
		Options: Options{DropLate: true, Decisions: dt},
	}, decisionWorkload(1))

	if dt.Total() == 0 {
		t.Fatal("no decisions captured")
	}
	if got, want := dt.Total(), res.Served+res.Dropped; got != want {
		t.Errorf("decisions captured = %d, want served+dropped = %d", got, want)
	}
	sawWindow, sawMultiCandidate := false, false
	for i, rec := range dt.Records() {
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d has Seq %d, want dense sequence", i, rec.Seq)
		}
		if rec.Depth < 1 {
			t.Fatalf("record %d has depth %d; the chosen request is a candidate", i, rec.Depth)
		}
		if rec.Chosen.V == NoValue {
			t.Fatalf("record %d: cascaded scheduler is a ValueRanker, chosen V missing", i)
		}
		if rec.K != min(rec.Depth, MaxTopK) {
			t.Fatalf("record %d: K = %d with depth %d", i, rec.K, rec.Depth)
		}
		for k := 1; k < rec.K; k++ {
			if candByV(rec.TopK[k-1], rec.TopK[k]) > 0 {
				t.Fatalf("record %d: TopK not in (V, ID) rank order at %d", i, k)
			}
		}
		if rec.Deadlined > 0 {
			if rec.SlackP50 < rec.SlackMin || rec.SlackP50 > rec.SlackMax {
				t.Fatalf("record %d: slack p50 %d outside [%d, %d]",
					i, rec.SlackP50, rec.SlackMin, rec.SlackMax)
			}
		}
		if rec.Window != 0 {
			sawWindow = true
		}
		if rec.Depth > 1 {
			sawMultiCandidate = true
		}
	}
	if !sawWindow {
		t.Error("no record carried a blocking-window state from the cascaded dispatcher")
	}
	if !sawMultiCandidate {
		t.Error("no record had more than one candidate; workload too light to be meaningful")
	}
}

func TestDecisionTraceRingWrap(t *testing.T) {
	dt := NewDecisionTrace(16)
	dt.SetMetrics(&DecisionMetrics{})
	MustRun(Config{
		Disk: xp(), Scheduler: sched.NewCSCAN(),
		Options: Options{DropLate: true, Decisions: dt},
	}, decisionWorkload(2))

	if dt.Total() <= 16 {
		t.Fatalf("run produced only %d decisions; wrap not exercised", dt.Total())
	}
	if dt.Len() != 16 {
		t.Fatalf("ring holds %d records, want capacity 16", dt.Len())
	}
	recs := dt.Records()
	if want := dt.Total() - 1; recs[len(recs)-1].Seq != want {
		t.Errorf("last retained Seq = %d, want %d", recs[len(recs)-1].Seq, want)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("retained records not chronological at %d: %d then %d",
				i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}

// Non-value schedulers still produce records: candidates rank by (Slack,
// ID) and values read NoValue.
func TestDecisionTraceNonValueScheduler(t *testing.T) {
	dt := NewDecisionTrace(1 << 16)
	dt.SetMetrics(&DecisionMetrics{})
	MustRun(Config{
		Disk: xp(), Scheduler: sched.NewFCFS(),
		Options: Options{DropLate: true, Decisions: dt},
	}, decisionWorkload(3))
	for i, rec := range dt.Records() {
		if rec.Chosen.V != NoValue || rec.VSpread != 0 {
			t.Fatalf("record %d: FCFS exposes no values, got V=%d spread=%d",
				i, rec.Chosen.V, rec.VSpread)
		}
		for k := 1; k < rec.K; k++ {
			if candBySlack(rec.TopK[k-1], rec.TopK[k]) > 0 {
				t.Fatalf("record %d: TopK not in (Slack, ID) rank order at %d", i, k)
			}
		}
	}
}

// Every decision JSONL line must be valid JSON with the schema fields, one
// line per captured decision, and byte-identical across identical runs.
func TestDecisionJSONL(t *testing.T) {
	run := func() (*bytes.Buffer, uint64) {
		var buf bytes.Buffer
		dt := NewDecisionTrace(64)
		dt.SetMetrics(&DecisionMetrics{})
		dt.OnRecord = DecisionJSONL(&buf)
		MustRun(Config{
			Disk: xp(), Scheduler: cascadedScheduler(),
			Options: Options{DropLate: true, Decisions: dt},
		}, decisionWorkload(4))
		return &buf, dt.Total()
	}
	buf, total := run()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if uint64(len(lines)) != total {
		t.Fatalf("%d JSONL lines for %d decisions", len(lines), total)
	}
	var prevSeq int64 = -1
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		for _, key := range []string{"seq", "now", "head", "depth", "chosen", "topk"} {
			if _, ok := obj[key]; !ok {
				t.Fatalf("line %d missing %q: %s", i, key, line)
			}
		}
		if seq := int64(obj["seq"].(float64)); seq != prevSeq+1 {
			t.Fatalf("line %d: seq %d after %d", i, seq, prevSeq)
		} else {
			prevSeq = seq
		}
		if topk := obj["topk"].([]any); len(topk) == 0 || len(topk) > MaxTopK {
			t.Fatalf("line %d: topk has %d entries", i, len(topk))
		}
	}
	buf2, _ := run()
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("decision JSONL not byte-identical across identical runs")
	}
}

// Decision metrics must flow to the configured sink, not the global one.
func TestDecisionMetricsSink(t *testing.T) {
	var m DecisionMetrics
	dt := NewDecisionTrace(8)
	dt.SetMetrics(&m)
	MustRun(Config{
		Disk: xp(), Scheduler: sched.NewCSCAN(),
		Options: Options{DropLate: true, Decisions: dt},
	}, decisionWorkload(5))
	if got := m.Decisions.Load(); got != dt.Total() {
		t.Errorf("metrics sink saw %d decisions, trace captured %d", got, dt.Total())
	}
	if m.CandidateDepth.Count() != dt.Total() {
		t.Errorf("candidate depth observations = %d, want %d", m.CandidateDepth.Count(), dt.Total())
	}
}

// A run with a decision trace attached must replay the exact trajectory of
// a run without one: capture is read-only.
func TestDecisionTraceDoesNotPerturb(t *testing.T) {
	trace := decisionWorkload(6)
	run := func(dt *DecisionTrace) ([]flatEvent, *Result) {
		var events []flatEvent
		res := MustRun(Config{
			Disk: xp(), Scheduler: cascadedScheduler(),
			Options: Options{DropLate: true, SampleRotation: true, Seed: 9,
				Decisions: dt,
				Trace:     func(ev TraceEvent) { events = append(events, flatten(ev)) }},
		}, smallTraceCopy(trace))
		return events, res
	}
	evPlain, resPlain := run(nil)
	dt := NewDecisionTrace(128)
	dt.SetMetrics(&DecisionMetrics{})
	evTraced, resTraced := run(dt)
	if !reflect.DeepEqual(evPlain, evTraced) {
		t.Error("TraceEvent stream diverged with a decision trace attached")
	}
	if !reflect.DeepEqual(resPlain.Collector, resTraced.Collector) {
		t.Error("collector diverged with a decision trace attached")
	}
	if resPlain.HeadTravel != resTraced.HeadTravel {
		t.Error("head travel diverged with a decision trace attached")
	}
}
