package sim

// Golden differential tests: the unified event-heap Engine must reproduce
// the metrics of the two deleted pre-engine loops (preserved verbatim in
// legacy_test.go) exactly — same collectors, same head travel, same trace
// stream — on fuzzed traces across every scheduler and option combination.

import (
	"fmt"
	"reflect"
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/sched"
	"sfcsched/internal/workload"
)

// goldenSchedulers builds every queue discipline the simulator can drive:
// the 13 baselines plus the Cascaded-SFC scheduler.
func goldenSchedulers(m *disk.Model) map[string]func() sched.Scheduler {
	est := m.ServiceTime
	return map[string]func() sched.Scheduler{
		"fcfs":        func() sched.Scheduler { return sched.NewFCFS() },
		"sstf":        func() sched.Scheduler { return sched.NewSSTF() },
		"scan":        func() sched.Scheduler { return sched.NewSCAN() },
		"cscan":       func() sched.Scheduler { return sched.NewCSCAN() },
		"edf":         func() sched.Scheduler { return sched.NewEDF() },
		"scan-edf":    func() sched.Scheduler { return sched.NewSCANEDF(50_000) },
		"fd-scan":     func() sched.Scheduler { return sched.NewFDSCAN(est) },
		"scan-rt":     func() sched.Scheduler { return sched.NewSCANRT(est) },
		"ssedo":       func() sched.Scheduler { return sched.NewSSEDO(0, 0) },
		"ssedv":       func() sched.Scheduler { return sched.NewSSEDV(0, 0) },
		"multi-queue": func() sched.Scheduler { return sched.NewMultiQueue(8) },
		"bucket":      func() sched.Scheduler { return sched.NewBUCKET() },
		"kamel":       func() sched.Scheduler { return sched.NewKamel(est) },
		"cascaded": func() sched.Scheduler {
			return core.MustScheduler("cascaded",
				core.EncapsulatorConfig{Levels: 8, UseDeadline: true, F: 1, DeadlineHorizon: 800_000},
				core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true},
				0.05)
		},
		// The SFC3 stage tracks cumulative head progress across Add/Next
		// calls, so it is sensitive to the exact scheduler call sequence
		// (including the idle probe after a queue drain).
		"cascaded-sfc3": func() sched.Scheduler {
			return core.MustScheduler("cascaded-sfc3",
				core.EncapsulatorConfig{
					Levels: 8, UseDeadline: true, F: 1, DeadlineHorizon: 800_000,
					UseCylinder: true, R: 3, Cylinders: 3832,
				},
				core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true},
				0.05)
		},
	}
}

// dispatcherStats digs the internal dispatcher counters out of a cascaded
// scheduler; the engine must reproduce even these (preemptions, promotions,
// swaps depend on the exact Add/Next call sequence, nil probes included).
func dispatcherStats(s sched.Scheduler) (core.DispatchStats, bool) {
	cs, ok := s.(*core.Scheduler)
	if !ok {
		return core.DispatchStats{}, false
	}
	return cs.Dispatcher().Stats(), true
}

// goldenTrace fuzzes an arrival-sorted trace with in-range cylinders (the
// legacy loop briefly exposed unclamped cylinders to schedulers — a bug the
// engine fixed — so out-of-range cylinders would be a semantic difference,
// not a regression).
func goldenTrace(seed uint64, m *disk.Model) []*core.Request {
	return workload.Open{
		Seed: seed, Count: 600, MeanInterarrival: 20_000,
		Dims: 2, Levels: 8, DeadlineMin: 100_000, DeadlineMax: 500_000,
		Cylinders: m.Cylinders, SizeMin: 4 << 10, SizeMax: 128 << 10,
	}.MustGenerate()
}

// flatEvent is a TraceEvent with the Request pointer flattened to its ID so
// streams from independent runs (cloned traces) compare by value.
type flatEvent struct {
	Now      int64
	DiskID   int
	ReqID    uint64
	Head     int
	Seek     int64
	Service  int64
	Dropped  bool
	Faulted  bool
	QueueLen int
}

func flatten(ev TraceEvent) flatEvent {
	return flatEvent{
		Now: ev.Now, DiskID: ev.DiskID, ReqID: ev.Request.ID,
		Head: ev.Head, Seek: ev.Seek, Service: ev.Service,
		Dropped: ev.Dropped, Faulted: ev.Faulted, QueueLen: ev.QueueLen,
	}
}

func TestEngineMatchesLegacySingle(t *testing.T) {
	m := xp()
	scenarios := []struct {
		name string
		cfg  Config
	}{
		{"disk", Config{Disk: m}},
		{"disk-drop", Config{Disk: m, Options: Options{DropLate: true}}},
		{"transfer-only", Config{TransferOnly: true, Disk: m, Options: Options{DropLate: true}}},
		{"fixed-service", Config{FixedService: 12_000, Options: Options{DropLate: true}}},
		{"sampled-rotation", Config{Disk: m, Options: Options{DropLate: true, SampleRotation: true}}},
	}
	for name, mk := range goldenSchedulers(m) {
		for _, sc := range scenarios {
			for _, seed := range []uint64{1, 7} {
				t.Run(fmt.Sprintf("%s/%s/seed%d", name, sc.name, seed), func(t *testing.T) {
					trace := goldenTrace(seed, m)

					var wantEvents, gotEvents []flatEvent
					wantCfg := sc.cfg
					wantCfg.Scheduler = mk()
					wantCfg.Seed = seed
					wantCfg.Trace = func(ev TraceEvent) { wantEvents = append(wantEvents, flatten(ev)) }
					want, err := legacyRun(wantCfg, smallTraceCopy(trace))
					if err != nil {
						t.Fatal(err)
					}

					gotCfg := sc.cfg
					gotCfg.Scheduler = mk()
					gotCfg.Seed = seed
					gotCfg.Trace = func(ev TraceEvent) { gotEvents = append(gotEvents, flatten(ev)) }
					got, err := Run(gotCfg, smallTraceCopy(trace))
					if err != nil {
						t.Fatal(err)
					}

					if !reflect.DeepEqual(got.Collector, want.Collector) {
						t.Errorf("collector diverged from legacy loop:\n got %+v\nwant %+v", got.Collector, want.Collector)
					}
					if got.HeadTravel != want.HeadTravel {
						t.Errorf("head travel = %d, legacy %d", got.HeadTravel, want.HeadTravel)
					}
					if got.Scheduler != want.Scheduler {
						t.Errorf("scheduler name = %q, legacy %q", got.Scheduler, want.Scheduler)
					}
					if wantStats, ok := dispatcherStats(wantCfg.Scheduler); ok {
						gotStats, _ := dispatcherStats(gotCfg.Scheduler)
						if gotStats != wantStats {
							t.Errorf("dispatcher stats diverged:\n got %+v\nwant %+v", gotStats, wantStats)
						}
					}
					if !reflect.DeepEqual(gotEvents, wantEvents) {
						t.Errorf("trace stream diverged: %d events vs legacy %d", len(gotEvents), len(wantEvents))
						for i := range gotEvents {
							if i < len(wantEvents) && gotEvents[i] != wantEvents[i] {
								t.Errorf("first divergence at event %d:\n got %+v\nwant %+v", i, gotEvents[i], wantEvents[i])
								break
							}
						}
					}
				})
			}
		}
	}
}

// goldenArrayTrace fuzzes a logical block trace with writes, so the RAID-5
// read-modify-write path (deferred write phase, abandonment on miss) is
// exercised by the differential run.
func goldenArrayTrace(seed uint64, array *disk.RAID5) []*core.Request {
	return workload.Streams{
		Seed: seed, Users: 24, Duration: 4_000_000,
		BitRate: 1_200_000, BlockSize: array.BlockSize, Levels: 8,
		DeadlineMin: 300_000, DeadlineMax: 700_000,
		Cylinders: int(array.MaxBlocks()), WriteFrac: 0.3, Burst: 3,
	}.MustGenerate()
}

func TestEngineMatchesLegacyArray(t *testing.T) {
	m := xp()
	array, err := disk.NewRAID5(5, 64<<10, m)
	if err != nil {
		t.Fatal(err)
	}
	factories := map[string]func(int) (sched.Scheduler, error){
		"fcfs": func(int) (sched.Scheduler, error) { return sched.NewFCFS(), nil },
		"edf":  func(int) (sched.Scheduler, error) { return sched.NewEDF(), nil },
		"scan": func(int) (sched.Scheduler, error) { return sched.NewSCAN(), nil },
		"cascaded": func(int) (sched.Scheduler, error) {
			return core.NewScheduler("cascaded",
				core.EncapsulatorConfig{Levels: 8, UseDeadline: true, F: 1, DeadlineHorizon: 800_000},
				core.DispatcherConfig{Mode: core.ConditionallyPreemptive, SP: true},
				0.05)
		},
	}
	scenarios := []struct {
		name string
		opts Options
	}{
		{"plain", Options{Dims: 1, Levels: 8}},
		{"drop", Options{DropLate: true, Dims: 1, Levels: 8}},
		{"sampled-drop", Options{DropLate: true, SampleRotation: true, Dims: 1, Levels: 8, Seed: 5}},
	}
	for name, mk := range factories {
		for _, sc := range scenarios {
			t.Run(fmt.Sprintf("%s/%s", name, sc.name), func(t *testing.T) {
				trace := goldenArrayTrace(3, array)
				cfg := ArrayConfig{Array: array, NewScheduler: mk, Options: sc.opts}

				want, err := legacyRunArray(cfg, smallTraceCopy(trace))
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunArray(cfg, smallTraceCopy(trace))
				if err != nil {
					t.Fatal(err)
				}

				if !reflect.DeepEqual(got.Logical, want.Logical) {
					t.Errorf("logical collector diverged:\n got %+v\nwant %+v", got.Logical, want.Logical)
				}
				if got.SeekTime != want.SeekTime || got.BusyTime != want.BusyTime {
					t.Errorf("seek/busy = %d/%d, legacy %d/%d",
						got.SeekTime, got.BusyTime, want.SeekTime, want.BusyTime)
				}
				if !reflect.DeepEqual(got.PerDiskOps, want.PerDiskOps) {
					t.Errorf("per-disk ops = %v, legacy %v", got.PerDiskOps, want.PerDiskOps)
				}
				if got.Makespan != want.Makespan {
					t.Errorf("makespan = %d, legacy %d", got.Makespan, want.Makespan)
				}
			})
		}
	}
}

// TestArrayTraceEventsCarryDiskID asserts array runs feed the TraceEvent
// stream (a single-disk-only feature before the engine) and stamp every
// physical dispatch with the disk it happened on.
func TestArrayTraceEventsCarryDiskID(t *testing.T) {
	m := xp()
	array, err := disk.NewRAID5(5, 64<<10, m)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	events := 0
	_, err = RunArray(ArrayConfig{
		Array:        array,
		NewScheduler: fcfsPerDisk,
		Options: Options{
			DropLate: true, Dims: 1, Levels: 8,
			Trace: func(ev TraceEvent) {
				events++
				if ev.DiskID < 0 || ev.DiskID >= array.Disks {
					t.Fatalf("event with out-of-range DiskID %d", ev.DiskID)
				}
				seen[ev.DiskID]++
			},
		},
	}, goldenArrayTrace(9, array))
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("array run emitted no trace events")
	}
	if len(seen) < 2 {
		t.Errorf("dispatches observed on %d disks, want several: %v", len(seen), seen)
	}
}

// TestArrayPerDiskCollectors asserts array runs populate the per-disk
// physical collectors through the shared engine path.
func TestArrayPerDiskCollectors(t *testing.T) {
	m := xp()
	array, err := disk.NewRAID5(5, 64<<10, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunArray(ArrayConfig{
		Array:        array,
		NewScheduler: fcfsPerDisk,
		Options:      Options{DropLate: true, Dims: 1, Levels: 8},
	}, goldenArrayTrace(11, array))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDisk) != array.Disks {
		t.Fatalf("PerDisk has %d collectors, want %d", len(res.PerDisk), array.Disks)
	}
	var served, seek int64
	for d, c := range res.PerDisk {
		if c.Served+c.Dropped != res.PerDiskOps[d] {
			t.Errorf("disk %d: served %d + dropped %d != enqueued ops %d",
				d, c.Served, c.Dropped, res.PerDiskOps[d])
		}
		served += int64(c.Served)
		seek += c.SeekTime
	}
	if served == 0 {
		t.Fatal("no physical services recorded")
	}
	if seek != res.SeekTime {
		t.Errorf("per-disk seek sum %d != aggregate %d", seek, res.SeekTime)
	}
}

// headProbe records every head position the simulator exposes to the
// scheduler, both on Add and on Next.
type headProbe struct {
	sched.Scheduler
	heads []int
}

func (p *headProbe) Add(r *core.Request, now int64, head int) {
	p.heads = append(p.heads, head)
	p.Scheduler.Add(r, now, head)
}

func (p *headProbe) Next(now int64, head int) *core.Request {
	p.heads = append(p.heads, head)
	return p.Scheduler.Next(now, head)
}

// TestSchedulersNeverSeeUnclampedHead is the regression test for the
// pre-engine inconsistency where arrivals landing during a service window
// observed the raw (unclamped) target cylinder while the resting head was
// clamped. Every head position handed to a scheduler must be a valid
// cylinder even when the in-flight request's cylinder is out of range.
func TestSchedulersNeverSeeUnclampedHead(t *testing.T) {
	m := xp()
	probe := &headProbe{Scheduler: sched.NewFCFS()}
	trace := []*core.Request{
		{ID: 1, Arrival: 0, Cylinder: 1 << 20, Size: 64 << 10}, // out of range, clamped at dispatch
		{ID: 2, Arrival: 1, Cylinder: 100, Size: 64 << 10},     // arrives mid-service of #1
	}
	if _, err := Run(Config{Disk: m, Scheduler: probe}, trace); err != nil {
		t.Fatal(err)
	}
	if len(probe.heads) == 0 {
		t.Fatal("probe saw no head positions")
	}
	for i, h := range probe.heads {
		if h < 0 || h >= m.Cylinders {
			t.Errorf("scheduler call %d observed out-of-range head %d (disk has %d cylinders)",
				i, h, m.Cylinders)
		}
	}
}
