package sim

import (
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/sched"
	"sfcsched/internal/workload"
)

func testArray(t *testing.T) *disk.RAID5 {
	t.Helper()
	r, err := disk.NewRAID5(5, 64<<10, xp())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func fcfsPerDisk(int) (sched.Scheduler, error) { return sched.NewFCFS(), nil }

func TestArrayServesAllReads(t *testing.T) {
	array := testArray(t)
	var trace []*core.Request
	for i := 0; i < 200; i++ {
		trace = append(trace, &core.Request{
			ID: uint64(i + 1), Arrival: int64(i) * 5_000,
			Cylinder: i * 37 % 5000, Size: 64 << 10,
		})
	}
	res, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Logical.Arrived != 200 || res.Logical.Served != 200 {
		t.Errorf("arrived=%d served=%d, want 200/200", res.Logical.Arrived, res.Logical.Served)
	}
	var totalOps uint64
	for _, n := range res.PerDiskOps {
		totalOps += n
	}
	if totalOps != 200 {
		t.Errorf("reads should map to exactly one op each, got %d", totalOps)
	}
}

func TestArrayWritesAreRMW(t *testing.T) {
	array := testArray(t)
	trace := []*core.Request{
		{ID: 1, Arrival: 0, Cylinder: 7, Size: 64 << 10, Write: true},
	}
	res, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk}, trace)
	if err != nil {
		t.Fatal(err)
	}
	var totalOps uint64
	busyDisks := 0
	for _, n := range res.PerDiskOps {
		totalOps += n
		if n > 0 {
			busyDisks++
		}
	}
	if totalOps != 4 || busyDisks != 2 {
		t.Errorf("RMW should issue 4 ops on 2 disks, got %d on %d", totalOps, busyDisks)
	}
	if res.Logical.Served != 1 {
		t.Errorf("logical write not completed: %+v", res.Logical)
	}
}

func TestArrayWritePhaseOrdering(t *testing.T) {
	// The write phase must not start before the read phase completes, so
	// a lone write takes at least two service times of wall clock.
	array := testArray(t)
	trace := []*core.Request{
		{ID: 1, Arrival: 0, Cylinder: 3, Size: 64 << 10, Write: true},
	}
	res, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk}, trace)
	if err != nil {
		t.Fatal(err)
	}
	minSvc := array.Model.AvgRotationalLatency() + array.Model.TransferTime(0, 64<<10)
	if res.Makespan < 2*minSvc {
		t.Errorf("makespan %d < two service phases %d: write overlapped its read", res.Makespan, 2*minSvc)
	}
}

func TestArrayParallelismBeatsSingleDisk(t *testing.T) {
	// The same read-only trace on the array should finish far sooner than
	// serialized on one disk, because blocks stripe across four data disks.
	array := testArray(t)
	var trace []*core.Request
	for i := 0; i < 400; i++ {
		trace = append(trace, &core.Request{
			ID: uint64(i + 1), Arrival: 0, Cylinder: i, Size: 64 << 10,
		})
	}
	res, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk}, trace)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of service times across disks vs wall clock: parallel speedup.
	if res.Makespan >= res.BusyTime {
		t.Errorf("no parallelism: makespan %d >= total busy %d", res.Makespan, res.BusyTime)
	}
	if float64(res.BusyTime)/float64(res.Makespan) < 2 {
		t.Errorf("speedup %.2f < 2 on a 4-data-disk stripe", float64(res.BusyTime)/float64(res.Makespan))
	}
}

func TestArrayDropsExpired(t *testing.T) {
	array := testArray(t)
	trace := []*core.Request{
		{ID: 1, Arrival: 0, Deadline: 100_000, Cylinder: 0, Size: 64 << 10},
		{ID: 2, Arrival: 0, Deadline: 1, Cylinder: 4, Size: 64 << 10}, // same disk lane, hopeless
	}
	res, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk, Options: Options{DropLate: true}}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Logical.Served+res.Logical.Dropped != 2 {
		t.Errorf("accounting: served=%d dropped=%d", res.Logical.Served, res.Logical.Dropped)
	}
	if res.Logical.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", res.Logical.Dropped)
	}
}

func TestArrayAbandonsWritePhaseAfterMiss(t *testing.T) {
	array := testArray(t)
	// The write arrives with its deadline already expired, so both
	// read-phase ops are dropped at dispatch and the write phase must
	// never be enqueued.
	trace := []*core.Request{
		{ID: 1, Arrival: 10, Deadline: 1, Cylinder: 7, Size: 64 << 10, Write: true},
	}
	res, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk, Options: Options{DropLate: true}}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Logical.Dropped != 1 {
		t.Errorf("logical write should be dropped, got %+v", res.Logical)
	}
	// Only the read phase was ever enqueued.
	var totalOps uint64
	for _, n := range res.PerDiskOps {
		totalOps += n
	}
	if totalOps != 2 {
		t.Errorf("abandoned write should enqueue only the 2 read ops, got %d", totalOps)
	}
}

func TestArrayDeterministic(t *testing.T) {
	array := testArray(t)
	mk := func() []*core.Request {
		trace := workload.Streams{
			Seed: 3, Users: 20, Duration: 5_000_000,
			BitRate: 1e6, BlockSize: 64 << 10, Levels: 8,
			DeadlineMin: 500_000, DeadlineMax: 900_000,
			Cylinders: 10000, WriteFrac: 0.3, Burst: 2,
		}.MustGenerate()
		return trace
	}
	cfg := ArrayConfig{Array: array, NewScheduler: fcfsPerDisk, Options: Options{DropLate: true, Dims: 1, Levels: 8}}
	a, err := RunArray(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunArray(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.SeekTime != b.SeekTime ||
		a.Logical.Served != b.Logical.Served || a.Logical.Dropped != b.Logical.Dropped {
		t.Error("identical array runs diverged")
	}
}

func TestArrayValidation(t *testing.T) {
	if _, err := RunArray(ArrayConfig{}, nil); err == nil {
		t.Error("expected error without array and scheduler factory")
	}
	array := testArray(t)
	bad := ArrayConfig{Array: array, NewScheduler: func(int) (sched.Scheduler, error) {
		return nil, errTest
	}}
	if _, err := RunArray(bad, nil); err == nil {
		t.Error("expected scheduler factory error to propagate")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestSortByArrival(t *testing.T) {
	trace := []*core.Request{
		{ID: 1, Arrival: 30},
		{ID: 2, Arrival: 10},
		{ID: 3, Arrival: 10},
		{ID: 4, Arrival: 20},
	}
	SortByArrival(trace)
	want := []uint64{2, 3, 4, 1} // stable for equal arrivals
	for i, id := range want {
		if trace[i].ID != id {
			t.Fatalf("position %d: got %d, want %d", i, trace[i].ID, id)
		}
	}
}
