package sim

import (
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/sched"
	"sfcsched/internal/workload"
)

func TestSampledRotationStillDeterministic(t *testing.T) {
	trace := smallTrace()
	run := func() *Result {
		return MustRun(Config{
			Disk: xp(), Scheduler: sched.NewSSTF(),
			Options: Options{Seed: 11, SampleRotation: true},
		}, smallTraceCopy(trace))
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.ServiceTime != b.ServiceTime {
		t.Error("sampled-rotation runs with equal seeds diverged")
	}
	c := MustRun(Config{
		Disk: xp(), Scheduler: sched.NewSSTF(),
		Options: Options{Seed: 12, SampleRotation: true},
	}, smallTraceCopy(trace))
	if c.ServiceTime == a.ServiceTime {
		t.Error("different seeds should sample different latencies")
	}
}

// smallTraceCopy clones a trace so scheduler runs cannot alias requests.
func smallTraceCopy(trace []*core.Request) []*core.Request {
	out := make([]*core.Request, len(trace))
	for i, r := range trace {
		c := *r
		out[i] = &c
	}
	return out
}

func TestSampledRotationWithinBounds(t *testing.T) {
	trace := smallTrace()
	avg := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS(), Options: Options{Seed: 1}}, smallTraceCopy(trace))
	smp := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS(), Options: Options{Seed: 1, SampleRotation: true}}, smallTraceCopy(trace))
	// Sampled rotational latencies average out near the half-revolution
	// the deterministic mode charges.
	ratio := float64(smp.ServiceTime) / float64(avg.ServiceTime)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("sampled/averaged service ratio = %.3f, want ~1", ratio)
	}
}

func TestOutOfRangeCylindersClamped(t *testing.T) {
	trace := []*core.Request{
		{ID: 1, Arrival: 0, Cylinder: -100},
		{ID: 2, Arrival: 0, Cylinder: 1 << 20},
	}
	res := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS()}, trace)
	if res.Served != 2 {
		t.Errorf("clamped cylinders should still serve: %d", res.Served)
	}
}

func TestZeroLengthTrace(t *testing.T) {
	res := MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS()}, nil)
	if res.Arrived != 0 || res.Makespan != 0 {
		t.Errorf("empty trace: %+v", res)
	}
}

func TestCollectorSizingFromTrace(t *testing.T) {
	trace := []*core.Request{
		{ID: 1, Arrival: 0, Priorities: []int{2, 5}},
		{ID: 2, Arrival: 0, Priorities: []int{7}},
	}
	res := MustRun(Config{Scheduler: sched.NewFCFS(), FixedService: 10}, trace)
	if res.Dims() != 2 {
		t.Errorf("inferred dims = %d, want 2", res.Dims())
	}
	if res.Levels() != 8 {
		t.Errorf("inferred levels = %d, want 8 (max level 7)", res.Levels())
	}
}

func TestArrayMixedWorkloadConservation(t *testing.T) {
	array := testArray(t)
	trace, err := workload.Streams{
		Seed: 5, Users: 30, Duration: 8_000_000,
		BitRate: 1.5e6, BlockSize: 64 << 10, Levels: 8,
		DeadlineMin: 400_000, DeadlineMax: 900_000,
		Cylinders: int(array.MaxBlocks() / 4), WriteFrac: 0.4, Burst: 2,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunArray(ArrayConfig{
		Array: array, NewScheduler: fcfsPerDisk,
		Options: Options{DropLate: true, Dims: 1, Levels: 8},
	}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Logical.Served+res.Logical.Dropped != uint64(len(trace)) {
		t.Errorf("logical conservation: %d + %d != %d",
			res.Logical.Served, res.Logical.Dropped, len(trace))
	}
	if res.SeekTime > res.BusyTime {
		t.Errorf("seek %d exceeds busy %d", res.SeekTime, res.BusyTime)
	}
}
