package sim

import (
	"reflect"
	"testing"

	"sfcsched/internal/sched"
	"sfcsched/internal/workload"
)

// skipUnderRace skips allocation gates under the race detector, whose
// instrumentation forces sync.Pool to allocate on every Get.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
}

// A popped event's fn closure and station pointer must not stay reachable
// through the heap slice's spare capacity (the same leak queue.removeAt
// guards against): a retained timer closure can pin a whole station's
// object graph across runs of a recycled engine.
func TestEventHeapPopZeroesSlot(t *testing.T) {
	var h eventHeap
	st := &Station{}
	for i := 0; i < 8; i++ {
		h.push(event{time: int64(i), seq: uint64(i), station: st, fn: func(int64) {}})
	}
	for len(h) > 0 {
		h.pop()
	}
	spare := h[:cap(h)]
	for i := range spare {
		if spare[i].fn != nil || spare[i].station != nil {
			t.Fatalf("heap slot %d retains pointers after pop: %+v", i, spare[i])
		}
	}
}

func reuseBenchWorkload() workload.Open {
	return workload.Open{
		Seed: 1, Count: 2000, MeanInterarrival: 10_000,
		Dims: 3, Levels: 8, DeadlineMin: 500_000, DeadlineMax: 700_000,
		Cylinders: 3832, Size: 64 << 10,
	}
}

// The full Run path through a Reuse must stay at a small run-constant
// allocation count — not O(requests) — so sweeps can run millions of
// simulated requests per second without GC pressure. The gate is
// deliberately loose (16) against Go-version drift; the pre-arena
// figure was ~1250 allocs per run on this workload.
func TestRunReuseSteadyStateAllocs(t *testing.T) {
	skipUnderRace(t)
	var arena workload.Arena
	trace := reuseBenchWorkload().MustGenerateArena(&arena)
	var ru Reuse
	cfg := Config{
		Disk: xp(), Scheduler: sched.NewCSCAN(), Reuse: &ru,
		Options: Options{DropLate: true, Seed: 1, Dims: 3, Levels: 8},
	}
	MustRun(cfg, trace) // warm: grows the event heap, collector, samples
	allocs := testing.AllocsPerRun(10, func() {
		if res := MustRun(cfg, trace); res.Arrived != 2000 {
			t.Fatal("lost requests")
		}
	})
	if allocs > 16 {
		t.Errorf("reused Run allocates %v per run, want <= 16", allocs)
	}
}

// A run through a recycled Reuse must replay the exact trajectory of a
// fresh run — same collector (DeepEqual, including the waiting-time
// samples), same head travel — even after the Reuse has served a
// different configuration in between. SampleRotation exercises the
// reseeded RNG stream.
func TestReuseMatchesFreshRun(t *testing.T) {
	var arena workload.Arena
	trace := reuseBenchWorkload().MustGenerateArena(&arena)
	opts := Options{DropLate: true, Seed: 7, Dims: 3, Levels: 8, SampleRotation: true}
	fresh := MustRun(Config{Disk: xp(), Scheduler: sched.NewCSCAN(), Options: opts}, trace)

	var ru Reuse
	// Dirty the Reuse with a different shape, seed, and scheduler first.
	other := workload.Open{Seed: 2, Count: 500, MeanInterarrival: 8_000, Dims: 1, Levels: 4, Cylinders: 3832, Size: 4 << 10}.MustGenerate()
	MustRun(Config{Disk: xp(), Scheduler: sched.NewFCFS(), Reuse: &ru,
		Options: Options{Seed: 99, Dims: 1, Levels: 4, SampleRotation: true}}, other)

	// First pass swaps the collector shape in; second pass exercises the
	// reset-and-recycle path that parallel sweeps live on.
	MustRun(Config{Disk: xp(), Scheduler: sched.NewCSCAN(), Reuse: &ru, Options: opts}, trace)
	reused := MustRun(Config{Disk: xp(), Scheduler: sched.NewCSCAN(), Reuse: &ru, Options: opts}, trace)
	if !reflect.DeepEqual(fresh.Collector, reused.Collector) {
		t.Errorf("reused collector diverges from fresh run:\nfresh:  %+v\nreused: %+v",
			fresh.Collector, reused.Collector)
	}
	if fresh.HeadTravel != reused.HeadTravel || fresh.Scheduler != reused.Scheduler {
		t.Errorf("reused run head travel/name diverge: %d/%s vs %d/%s",
			fresh.HeadTravel, fresh.Scheduler, reused.HeadTravel, reused.Scheduler)
	}
}

// The observability layer must be free when disabled: a Config with every
// observability hook explicitly nil costs exactly what the baseline gate
// above allows. This is the regression gate for the nil-check-only
// contract of Engine.dispatch.
func TestRunObservabilityDisabledAllocs(t *testing.T) {
	skipUnderRace(t)
	var arena workload.Arena
	trace := reuseBenchWorkload().MustGenerateArena(&arena)
	var ru Reuse
	cfg := Config{
		Disk: xp(), Scheduler: sched.NewCSCAN(), Reuse: &ru,
		Options: Options{DropLate: true, Seed: 1, Dims: 3, Levels: 8,
			Decisions: nil, Telemetry: nil, Shadows: nil},
	}
	MustRun(cfg, trace)
	allocs := testing.AllocsPerRun(10, func() { MustRun(cfg, trace) })
	if allocs > 16 {
		t.Errorf("Run with observability disabled allocates %v per run, want <= 16", allocs)
	}
}

// With decision tracing and telemetry enabled, steady-state allocations
// stay run-constant: the ring is pre-filled after warmup, the candidate
// and slack scratch have grown to the deepest queue, and the telemetry
// columns are recycled by Reset — so captures cost no per-decision
// allocations.
func TestRunObservabilityEnabledBoundedAllocs(t *testing.T) {
	skipUnderRace(t)
	var arena workload.Arena
	trace := reuseBenchWorkload().MustGenerateArena(&arena)
	var ru Reuse
	dt := NewDecisionTrace(512)
	dt.SetMetrics(&DecisionMetrics{})
	tel := NewTelemetry(50_000)
	tel.SetMetrics(&DecisionMetrics{})
	cfg := Config{
		Disk: xp(), Scheduler: sched.NewCSCAN(), Reuse: &ru,
		Options: Options{DropLate: true, Seed: 1, Dims: 3, Levels: 8,
			Decisions: dt, Telemetry: tel},
	}
	MustRun(cfg, trace) // warm: fills the ring, grows scratch and columns
	tel.Reset()
	MustRun(cfg, trace)
	allocs := testing.AllocsPerRun(10, func() {
		tel.Reset()
		MustRun(cfg, trace)
	})
	if allocs > 32 {
		t.Errorf("Run with decision trace + telemetry allocates %v per run, want <= 32", allocs)
	}
}
