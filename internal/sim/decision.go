package sim

import (
	"io"
	"slices"
	"strconv"

	"sfcsched/internal/core"
)

// This file is the decision-observability layer of the simulator: a
// per-dispatch capture of the context the scheduler decided in — the
// candidate set it chose from, the chosen request, the deadline-slack
// distribution across the queue, the head position and (for the
// Cascaded-SFC scheduler) the blocking-window state. ROADMAP item 4's
// knob tuner and the counterfactual shadow schedulers (shadow.go) both
// consume this record stream.
//
// Cost contract: with Options.Decisions nil the engine's dispatch path is
// untouched (no captures, no allocations — pinned by the alloc gates).
// With tracing enabled, records land in a fixed-capacity ring and every
// per-decision buffer (candidate scratch, slack scratch, JSONL buffer) is
// reused, so steady-state capture performs no per-decision allocations
// once the scratch has grown to the deepest queue observed.

// MaxTopK is the number of head-of-queue candidates retained per decision
// record. Fixed-size so records are flat copyable values with no
// per-record allocation.
const MaxTopK = 8

// NoValue marks a candidate whose scheduler does not expose
// characterization values (it does not implement ValueRanker).
const NoValue = ^uint64(0)

// NoDeadlineSlack is the slack reported for requests without a deadline
// (matching core.Request.Slack).
const NoDeadlineSlack = int64(1) << 62

// ValueRanker is implemented by schedulers that can report the scalar
// value they order requests by — lower is served earlier. core.Scheduler
// implements it with the encapsulator's v_c. The call must be read-only:
// decision tracing invokes it per queued candidate on live queues.
type ValueRanker interface {
	RequestValue(r *core.Request, now int64, head int) uint64
}

// WindowStater is implemented by schedulers exposing a blocking-window
// state (core.Scheduler reports the dispatcher's current — possibly
// ER-expanded — window).
type WindowStater interface {
	Window() uint64
}

// DecisionCandidate is one queued request inside a decision record.
type DecisionCandidate struct {
	// ID is the request ID.
	ID uint64
	// Cylinder is the request's target cylinder (logical block on arrays).
	Cylinder int
	// Slack is the deadline slack at decision time, µs (negative when
	// expired, NoDeadlineSlack when the request has no deadline).
	Slack int64
	// V is the scheduler's characterization value for the candidate at
	// decision time, or NoValue when the scheduler exposes none.
	V uint64
}

// DecisionRecord captures the context of one dispatch decision.
type DecisionRecord struct {
	// Seq is the decision's index in the run, dense from 0 across all
	// stations.
	Seq uint64
	// Now is the simulation clock at the decision, µs.
	Now int64
	// DiskID is the station the decision happened on.
	DiskID int
	// Head is the station's head cylinder when the scheduler decided.
	Head int
	// Depth is the candidate-set size the scheduler chose from (including
	// the chosen request).
	Depth int
	// Deadlined is the number of candidates carrying a deadline; the slack
	// distribution below is over exactly these.
	Deadlined int
	// Window is the blocking-window state of a WindowStater scheduler at
	// the decision, 0 otherwise.
	Window uint64
	// Chosen is the dispatched (or dropped) request.
	Chosen DecisionCandidate
	// Dropped marks a §6 deadline drop rather than a service start.
	Dropped bool
	// VSpread is the max-min spread of candidate values when the
	// scheduler is a ValueRanker, 0 otherwise.
	VSpread uint64
	// SlackMin, SlackP50 and SlackMax summarize the deadline-slack
	// distribution over the Deadlined candidates, µs. All zero when no
	// candidate has a deadline.
	SlackMin int64
	SlackP50 int64
	SlackMax int64
	// K is the number of valid entries in TopK.
	K int
	// TopK holds the K head-of-queue candidates in rank order: by (V, ID)
	// when the scheduler is a ValueRanker, by (Slack, ID) otherwise. The
	// ranking is a consistent decision-time snapshot — for value
	// schedulers the values are recomputed at the decision's (now, head),
	// which may differ from the enqueue-time values the dispatcher
	// actually sorted by.
	TopK [MaxTopK]DecisionCandidate
}

// DecisionTrace captures decision records into a fixed-capacity ring.
// Install one via Options.Decisions; it is not safe for concurrent use
// across simultaneous runs (one per run, like a collector).
type DecisionTrace struct {
	// OnRecord, when non-nil, receives every record as it is captured.
	// The pointer aliases the ring slot and is overwritten after capacity
	// more decisions: hooks must copy what they retain. DecisionJSONL
	// adapts an io.Writer into a streaming hook.
	OnRecord func(*DecisionRecord)

	cap   int
	recs  []DecisionRecord
	total uint64
	m     *DecisionMetrics

	// Per-snapshot scratch, reused across decisions.
	cands  []DecisionCandidate
	slacks []int64
	visit  func(*core.Request)
	vr     ValueRanker
	now    int64
	head   int
}

// NewDecisionTrace returns a trace retaining the last capacity decision
// records (capacity < 1 is raised to 1). Records beyond the capacity
// overwrite the oldest; Total still counts them and OnRecord still sees
// them.
func NewDecisionTrace(capacity int) *DecisionTrace {
	if capacity < 1 {
		capacity = 1
	}
	t := &DecisionTrace{cap: capacity, m: DefaultDecisionMetrics}
	t.visit = func(r *core.Request) {
		v := NoValue
		if t.vr != nil {
			v = t.vr.RequestValue(r, t.now, t.head)
		}
		t.cands = append(t.cands, DecisionCandidate{
			ID: r.ID, Cylinder: r.Cylinder, Slack: r.Slack(t.now), V: v,
		})
	}
	return t
}

// SetMetrics redirects the trace's observability counters to m instead of
// the process-wide DefaultDecisionMetrics. Call before the run starts.
func (t *DecisionTrace) SetMetrics(m *DecisionMetrics) { t.m = m }

// Total returns the number of decisions captured over the trace's
// lifetime (across ring wraps).
func (t *DecisionTrace) Total() uint64 { return t.total }

// Len returns the number of records currently retained (≤ capacity).
func (t *DecisionTrace) Len() int { return len(t.recs) }

// Records returns the retained records in chronological order, copied out
// of the ring.
func (t *DecisionTrace) Records() []DecisionRecord {
	out := make([]DecisionRecord, 0, len(t.recs))
	if t.total > uint64(t.cap) {
		start := int(t.total % uint64(t.cap))
		out = append(out, t.recs[start:]...)
		out = append(out, t.recs[:start]...)
		return out
	}
	return append(out, t.recs...)
}

// snapshot walks the station's queue into the candidate scratch before the
// scheduler is asked to decide. The walk is read-only.
func (t *DecisionTrace) snapshot(st *Station, now int64) {
	t.cands = t.cands[:0]
	t.vr, _ = st.Sched.(ValueRanker)
	t.now, t.head = now, st.head
	st.Sched.Each(t.visit)
}

// candByV ranks candidates by (V, ID); candBySlack by (Slack, ID). Both
// are total orders, so rankings are deterministic.
func candByV(a, b DecisionCandidate) int {
	if a.V != b.V {
		if a.V < b.V {
			return -1
		}
		return 1
	}
	return cmpU64(a.ID, b.ID)
}

func candBySlack(a, b DecisionCandidate) int {
	if a.Slack != b.Slack {
		if a.Slack < b.Slack {
			return -1
		}
		return 1
	}
	return cmpU64(a.ID, b.ID)
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// commit turns the pending snapshot plus the scheduler's choice into a
// record. Called once per decision, for serves and deadline drops alike.
func (t *DecisionTrace) commit(st *Station, r *core.Request, now int64, dropped bool) {
	var rec DecisionRecord
	rec.Seq = t.total
	rec.Now = now
	rec.DiskID = st.ID
	rec.Head = t.head
	rec.Depth = len(t.cands)
	rec.Dropped = dropped
	rec.Chosen = DecisionCandidate{ID: r.ID, Cylinder: r.Cylinder, Slack: r.Slack(now), V: NoValue}
	if t.vr != nil {
		rec.Chosen.V = t.vr.RequestValue(r, now, t.head)
	}
	if ws, ok := st.Sched.(WindowStater); ok {
		rec.Window = ws.Window()
	}

	// Slack distribution over the deadline-carrying candidates.
	t.slacks = t.slacks[:0]
	for _, c := range t.cands {
		if c.Slack != NoDeadlineSlack {
			t.slacks = append(t.slacks, c.Slack)
		}
	}
	rec.Deadlined = len(t.slacks)
	if n := len(t.slacks); n > 0 {
		slices.Sort(t.slacks)
		rec.SlackMin = t.slacks[0]
		rec.SlackP50 = t.slacks[n/2]
		rec.SlackMax = t.slacks[n-1]
	}

	// Rank the candidate set and retain the head of the queue.
	if t.vr != nil {
		slices.SortFunc(t.cands, candByV)
		if n := len(t.cands); n > 0 {
			rec.VSpread = t.cands[n-1].V - t.cands[0].V
		}
	} else {
		slices.SortFunc(t.cands, candBySlack)
	}
	rec.K = min(len(t.cands), MaxTopK)
	copy(rec.TopK[:], t.cands[:rec.K])

	// Ring store: append until capacity, then overwrite the oldest.
	if len(t.recs) < t.cap {
		t.recs = append(t.recs, rec)
	} else {
		t.recs[t.total%uint64(t.cap)] = rec
	}
	stored := &t.recs[t.total%uint64(t.cap)]
	t.total++

	t.m.Decisions.Inc()
	if dropped {
		t.m.Drops.Inc()
	}
	t.m.CandidateDepth.Observe(uint64(rec.Depth))
	if r.Deadline > 0 {
		if s := rec.Chosen.Slack; s > 0 {
			t.m.ChoiceSlack.Observe(uint64(s))
		} else {
			t.m.ChoiceSlack.Observe(0)
		}
	}
	if t.OnRecord != nil {
		t.OnRecord(stored)
	}
}

// appendCandidate appends one candidate as a JSON object, omitting v when
// the scheduler exposes no values.
func appendCandidate(b []byte, c DecisionCandidate) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendUint(b, c.ID, 10)
	b = append(b, `,"cyl":`...)
	b = strconv.AppendInt(b, int64(c.Cylinder), 10)
	if c.Slack != NoDeadlineSlack {
		b = append(b, `,"slack":`...)
		b = strconv.AppendInt(b, c.Slack, 10)
	}
	if c.V != NoValue {
		b = append(b, `,"v":`...)
		b = strconv.AppendUint(b, c.V, 10)
	}
	return append(b, '}')
}

// DecisionJSONL adapts w into an OnRecord hook writing one JSON object per
// line per decision, into a buffer reused across records (zero allocations
// per record once grown). The first write error silences the hook for the
// rest of the run.
func DecisionJSONL(w io.Writer) func(*DecisionRecord) {
	var buf []byte
	failed := false
	return func(rec *DecisionRecord) {
		if failed {
			return
		}
		b := buf[:0]
		b = append(b, `{"seq":`...)
		b = strconv.AppendUint(b, rec.Seq, 10)
		b = append(b, `,"now":`...)
		b = strconv.AppendInt(b, rec.Now, 10)
		if rec.DiskID != 0 {
			b = append(b, `,"disk":`...)
			b = strconv.AppendInt(b, int64(rec.DiskID), 10)
		}
		b = append(b, `,"head":`...)
		b = strconv.AppendInt(b, int64(rec.Head), 10)
		b = append(b, `,"depth":`...)
		b = strconv.AppendInt(b, int64(rec.Depth), 10)
		if rec.Window != 0 {
			b = append(b, `,"window":`...)
			b = strconv.AppendUint(b, rec.Window, 10)
		}
		b = append(b, `,"chosen":`...)
		b = appendCandidate(b, rec.Chosen)
		if rec.Dropped {
			b = append(b, `,"dropped":true`...)
		}
		if rec.VSpread != 0 {
			b = append(b, `,"v_spread":`...)
			b = strconv.AppendUint(b, rec.VSpread, 10)
		}
		if rec.Deadlined > 0 {
			b = append(b, `,"deadlined":`...)
			b = strconv.AppendInt(b, int64(rec.Deadlined), 10)
			b = append(b, `,"slack_min":`...)
			b = strconv.AppendInt(b, rec.SlackMin, 10)
			b = append(b, `,"slack_p50":`...)
			b = strconv.AppendInt(b, rec.SlackP50, 10)
			b = append(b, `,"slack_max":`...)
			b = strconv.AppendInt(b, rec.SlackMax, 10)
		}
		b = append(b, `,"topk":[`...)
		for i := 0; i < rec.K; i++ {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendCandidate(b, rec.TopK[i])
		}
		b = append(b, ']', '}', '\n')
		buf = b
		if _, err := w.Write(b); err != nil {
			failed = true
		}
	}
}
