package sim

import (
	"reflect"
	"testing"

	"sfcsched/internal/disk"
	"sfcsched/internal/sched"
)

// The non-perturbation guarantee of the whole observability layer: a run
// with shadows, a decision trace and telemetry attached must produce the
// byte-identical TraceEvent stream, collector and head travel of a bare
// run. This is the test the ISSUE's acceptance criteria pin.
func TestShadowsDoNotPerturb(t *testing.T) {
	trace := decisionWorkload(10)
	run := func(attach bool) ([]flatEvent, *Result) {
		var events []flatEvent
		cfg := Config{
			Disk: xp(), Scheduler: cascadedScheduler(),
			Options: Options{DropLate: true, SampleRotation: true, Seed: 3,
				Trace: func(ev TraceEvent) { events = append(events, flatten(ev)) }},
		}
		if attach {
			dt := NewDecisionTrace(256)
			dt.SetMetrics(&DecisionMetrics{})
			cfg.Decisions = dt
			cfg.Telemetry = NewTelemetry(50_000)
			cfg.Telemetry.SetMetrics(&DecisionMetrics{})
			sh1 := NewShadow("scan-edf", sched.NewSCANEDF(50_000))
			sh2 := NewShadow("fcfs", sched.NewFCFS())
			sh1.SetMetrics(&DecisionMetrics{})
			sh2.SetMetrics(&DecisionMetrics{})
			cfg.Shadows = []*Shadow{sh1, sh2}
		}
		return events, MustRun(cfg, smallTraceCopy(trace))
	}
	evPlain, resPlain := run(false)
	evShadowed, resShadowed := run(true)
	if !reflect.DeepEqual(evPlain, evShadowed) {
		t.Error("TraceEvent stream diverged with shadows attached")
	}
	if !reflect.DeepEqual(resPlain.Collector, resShadowed.Collector) {
		t.Error("collector diverged with shadows attached")
	}
	if resPlain.HeadTravel != resShadowed.HeadTravel {
		t.Error("head travel diverged with shadows attached")
	}

	if len(resShadowed.Shadows) != 2 {
		t.Fatalf("got %d shadow reports, want 2", len(resShadowed.Shadows))
	}
	for _, rep := range resShadowed.Shadows {
		if rep.Decisions == 0 {
			t.Errorf("shadow %q observed no decisions", rep.Name)
		}
		if rep.Agreements > rep.Decisions {
			t.Errorf("shadow %q: agreements %d > decisions %d", rep.Name, rep.Agreements, rep.Decisions)
		}
		if r := rep.DisagreementRate(); r < 0 || r > 1 {
			t.Errorf("shadow %q: disagreement rate %v outside [0,1]", rep.Name, r)
		}
	}
}

// A shadow running the primary's own policy must agree on every decision
// and replay the primary's head travel exactly — the self-consistency
// anchor for the divergence metrics. FCFS pops in strict arrival order,
// so the counterfactual queue tracks the primary queue perfectly.
func TestShadowSelfAgreement(t *testing.T) {
	trace := decisionWorkload(11)
	sh := NewShadow("fcfs-twin", sched.NewFCFS())
	res := MustRun(Config{
		Disk: xp(), Scheduler: sched.NewFCFS(),
		Options: Options{DropLate: true, Shadows: []*Shadow{sh}},
	}, trace)
	rep := res.Shadows[0]
	if rep.Decisions == 0 {
		t.Fatal("shadow observed no decisions")
	}
	if rep.Agreements != rep.Decisions {
		t.Errorf("identical-policy shadow agreed on %d of %d decisions", rep.Agreements, rep.Decisions)
	}
	if rep.DisagreementRate() != 0 {
		t.Errorf("identical-policy disagreement rate = %v, want 0", rep.DisagreementRate())
	}
	if rep.HeadTravel != res.HeadTravel {
		t.Errorf("identical-policy shadow head travel %d, primary %d", rep.HeadTravel, res.HeadTravel)
	}
	if rep.QueueLeft != 0 {
		t.Errorf("identical-policy shadow left %d requests queued", rep.QueueLeft)
	}
}

// A seek-optimizing shadow under an FCFS primary must report less
// hypothetical head travel — the counterfactual the shadow layer exists
// to expose.
func TestShadowSSTFBeatsFCFSTravel(t *testing.T) {
	trace := decisionWorkload(12)
	sh := NewShadow("sstf", sched.NewSSTF())
	res := MustRun(Config{
		Disk: xp(), Scheduler: sched.NewFCFS(),
		Options: Options{Shadows: []*Shadow{sh}},
	}, trace)
	rep := res.Shadows[0]
	if rep.HeadTravel >= res.HeadTravel {
		t.Errorf("SSTF shadow travel %d not below FCFS primary %d", rep.HeadTravel, res.HeadTravel)
	}
	if rep.Agreements == rep.Decisions {
		t.Error("SSTF shadow never disagreed with FCFS; workload too trivial")
	}
}

func TestShadowSingleUse(t *testing.T) {
	trace := decisionWorkload(13)
	sh := NewShadow("fcfs", sched.NewFCFS())
	MustRun(Config{Disk: xp(), Scheduler: sched.NewCSCAN(),
		Options: Options{Shadows: []*Shadow{sh}}}, trace)
	if _, err := Run(Config{Disk: xp(), Scheduler: sched.NewCSCAN(),
		Options: Options{Shadows: []*Shadow{sh}}}, trace); err == nil {
		t.Fatal("reusing a shadow across runs must error")
	}
}

func TestShadowStationValidation(t *testing.T) {
	sh := NewShadow("fcfs", sched.NewFCFS())
	sh.Station = 1
	if _, err := Run(Config{Disk: xp(), Scheduler: sched.NewCSCAN(),
		Options: Options{Shadows: []*Shadow{sh}}}, decisionWorkload(14)); err == nil {
		t.Fatal("single-disk run must reject a shadow targeting station 1")
	}
}

// Array runs attach shadows per station and leave the run unperturbed.
func TestArrayShadows(t *testing.T) {
	m := xp()
	array, err := disk.NewRAID5(5, 64<<10, m)
	if err != nil {
		t.Fatal(err)
	}
	trace := goldenArrayTrace(15, array)
	run := func(shadows []*Shadow) ([]flatEvent, *ArrayResult) {
		var events []flatEvent
		res, err := RunArray(ArrayConfig{
			Array: array, NewScheduler: fcfsPerDisk,
			Options: Options{DropLate: true, Dims: 1, Levels: 8, Shadows: shadows,
				Trace: func(ev TraceEvent) { events = append(events, flatten(ev)) }},
		}, smallTraceCopy(trace))
		if err != nil {
			t.Fatal(err)
		}
		return events, res
	}
	evPlain, resPlain := run(nil)
	sh0 := NewShadow("fcfs-twin", sched.NewFCFS())
	sh0.SetMetrics(&DecisionMetrics{})
	sh2 := NewShadow("sstf", sched.NewSSTF())
	sh2.SetMetrics(&DecisionMetrics{})
	sh2.Station = 2
	evShadowed, resShadowed := run([]*Shadow{sh0, sh2})
	if !reflect.DeepEqual(evPlain, evShadowed) {
		t.Error("array TraceEvent stream diverged with shadows attached")
	}
	if !reflect.DeepEqual(resPlain.Logical, resShadowed.Logical) {
		t.Error("array logical collector diverged with shadows attached")
	}
	if resShadowed.Shadows[0].Decisions == 0 || resShadowed.Shadows[1].Decisions == 0 {
		t.Errorf("array shadows observed no decisions: %+v", resShadowed.Shadows)
	}
	if rep := resShadowed.Shadows[0]; rep.Agreements != rep.Decisions {
		t.Errorf("identical-policy array shadow agreed on %d of %d", rep.Agreements, rep.Decisions)
	}

	outOfRange := NewShadow("bad", sched.NewFCFS())
	outOfRange.Station = 99
	if _, err := RunArray(ArrayConfig{Array: array, NewScheduler: fcfsPerDisk,
		Options: Options{Dims: 1, Levels: 8, Shadows: []*Shadow{outOfRange}}},
		smallTraceCopy(trace)); err == nil {
		t.Fatal("array run must reject a shadow station outside the array")
	}
}
