package sim

// This file preserves the two pre-engine simulation loops verbatim (the
// sequential single-disk loop and the separately-structured array loop) as
// reference implementations for the golden differential tests. The old
// results are the contract: the unified Engine must reproduce these
// metrics exactly on randomized traces. Do not "fix" or modernize this
// code — its job is to stay byte-for-byte faithful to the deleted loops.

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/metrics"
	"sfcsched/internal/sched"
	"sfcsched/internal/stats"
)

// legacyRun is the pre-engine sim.Run.
func legacyRun(cfg Config, trace []*core.Request) (*Result, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("sim: Scheduler is required")
	}
	if cfg.Disk == nil && cfg.FixedService <= 0 {
		return nil, fmt.Errorf("sim: need a Disk model or FixedService")
	}
	dims, levels := cfg.Dims, cfg.Levels
	if dims == 0 {
		for _, r := range trace {
			if len(r.Priorities) > dims {
				dims = len(r.Priorities)
			}
		}
	}
	if levels == 0 {
		levels = 1
		for _, r := range trace {
			for _, p := range r.Priorities {
				if p+1 > levels {
					levels = p + 1
				}
			}
		}
	}
	col := metrics.NewCollector(dims, levels)
	res := &Result{Collector: col, Scheduler: cfg.Scheduler.Name()}
	rng := stats.NewRNG(cfg.Seed)

	s := cfg.Scheduler
	now := int64(0)
	head := 0
	i := 0 // next arrival index

	deliver := func(until int64, head int) {
		for i < len(trace) && trace[i].Arrival <= until {
			r := trace[i]
			col.OnArrival(r)
			s.Add(r, r.Arrival, head)
			i++
		}
	}

	for {
		deliver(now, head)
		r := s.Next(now, head)
		if r == nil {
			if i >= len(trace) {
				break
			}
			now = trace[i].Arrival
			continue
		}
		if cfg.DropLate && r.Deadline > 0 && now > r.Deadline {
			col.OnDropped(r)
			if cfg.Trace != nil {
				cfg.Trace(TraceEvent{Now: now, Request: r, Dropped: true, QueueLen: s.Len()})
			}
			continue
		}
		col.OnDispatch(r, s.Each)
		seek, svc := legacyServiceTime(cfg, head, r, rng)
		start := now
		if cfg.Disk != nil {
			res.HeadTravel += int64(absInt(r.Cylinder - head))
		}
		if cfg.Trace != nil {
			cfg.Trace(TraceEvent{Now: now, Request: r, Head: head, Seek: seek, Service: svc, QueueLen: s.Len()})
		}
		// Arrivals during the service window are delivered with their true
		// timestamps; the head is en route to (then at) the target. Note
		// the historical head-position inconsistency kept here on purpose:
		// the unclamped cylinder is fed to the scheduler during the window
		// while the resting head below is clamped. The engine fixed this;
		// the golden tests therefore fuzz with in-range cylinders only.
		deliver(start+svc, r.Cylinder)
		now = start + svc
		head = legacyTargetCylinder(cfg, r)
		col.OnServed(r, seek, svc, start)
		if r.Deadline > 0 && start > r.Deadline {
			col.OnLate(r)
		}
	}
	col.Makespan = now
	return res, nil
}

// legacyServiceTime is the pre-engine Config.serviceTime.
func legacyServiceTime(cfg Config, head int, r *core.Request, rng *stats.RNG) (int64, int64) {
	if cfg.FixedService > 0 {
		return 0, cfg.FixedService
	}
	cyl := clampCyl(r.Cylinder, cfg.Disk.Cylinders)
	if cfg.TransferOnly {
		return 0, cfg.Disk.TransferTime(cyl, r.Size)
	}
	seek := cfg.Disk.SeekTime(clampCyl(head, cfg.Disk.Cylinders), cyl)
	rot := cfg.Disk.AvgRotationalLatency()
	if cfg.SampleRotation {
		rot = cfg.Disk.RotationalLatency(rng)
	}
	return seek, seek + rot + cfg.Disk.TransferTime(cyl, r.Size)
}

// legacyTargetCylinder is the pre-engine targetCylinder.
func legacyTargetCylinder(cfg Config, r *core.Request) int {
	if cfg.Disk == nil {
		return r.Cylinder
	}
	return clampCyl(r.Cylinder, cfg.Disk.Cylinders)
}

// legacyLogicalState tracks one in-flight logical request.
type legacyLogicalState struct {
	req       *core.Request
	pending   int
	missed    bool
	writeOps  []disk.PhysOp
	readsLeft int
}

// legacyPhysReq is a physical operation queued on one disk.
type legacyPhysReq struct {
	req    *core.Request
	parent *legacyLogicalState
}

// legacyArrayState is the per-disk runtime state.
type legacyArrayState struct {
	sched  sched.Scheduler
	head   int
	freeAt int64
	inSvc  *legacyPhysReq
}

// legacyRunArray is the pre-engine sim.RunArray.
func legacyRunArray(cfg ArrayConfig, logical []*core.Request) (*ArrayResult, error) {
	if cfg.Array == nil || cfg.NewScheduler == nil {
		return nil, fmt.Errorf("sim: ArrayConfig needs Array and NewScheduler")
	}
	model := cfg.Array.Model
	disks := make([]*legacyArrayState, cfg.Array.Disks)
	for d := range disks {
		s, err := cfg.NewScheduler(d)
		if err != nil {
			return nil, fmt.Errorf("sim: disk %d scheduler: %w", d, err)
		}
		disks[d] = &legacyArrayState{sched: s}
	}
	res := &ArrayResult{
		Logical:    metrics.NewCollector(cfg.Dims, cfg.Levels),
		PerDiskOps: make([]uint64, cfg.Array.Disks),
	}
	rng := stats.NewRNG(cfg.Seed)
	byPhys := make(map[*core.Request]*legacyPhysReq)
	var nextPhysID uint64

	enqueue := func(st *legacyLogicalState, ops []disk.PhysOp, now int64) {
		for _, op := range ops {
			nextPhysID++
			pr := &legacyPhysReq{
				req: &core.Request{
					ID:         nextPhysID,
					Priorities: st.req.Priorities,
					Deadline:   st.req.Deadline,
					Cylinder:   op.Cylinder,
					Size:       op.Size,
					Arrival:    now,
					Write:      op.Write,
					Value:      st.req.Value,
				},
				parent: st,
			}
			byPhys[pr.req] = pr
			ds := disks[op.Disk]
			ds.sched.Add(pr.req, now, ds.head)
			res.PerDiskOps[op.Disk]++
		}
	}

	finish := func(st *legacyLogicalState, now int64) {
		if st.missed {
			res.Logical.OnDropped(st.req)
		} else {
			res.Logical.OnServed(st.req, 0, 0, now)
		}
	}

	var opDone func(st *legacyLogicalState, now int64, wasRead bool)
	opDone = func(st *legacyLogicalState, now int64, wasRead bool) {
		st.pending--
		if wasRead && len(st.writeOps) > 0 {
			st.readsLeft--
			if st.readsLeft == 0 {
				if st.missed {
					st.pending -= len(st.writeOps)
					st.writeOps = nil
				} else {
					ops := st.writeOps
					st.writeOps = nil
					enqueue(st, ops, now)
				}
			}
		}
		if st.pending == 0 {
			finish(st, now)
		}
	}

	dispatch := func(now int64) {
		for _, ds := range disks {
			for ds.inSvc == nil && ds.sched.Len() > 0 {
				r := ds.sched.Next(now, ds.head)
				if r == nil {
					break
				}
				pr := byPhys[r]
				delete(byPhys, r)
				if cfg.DropLate && r.Deadline > 0 && now > r.Deadline {
					pr.parent.missed = true
					opDone(pr.parent, now, !r.Write)
					continue
				}
				seek := model.SeekTime(ds.head, r.Cylinder)
				rot := model.AvgRotationalLatency()
				if cfg.SampleRotation {
					rot = model.RotationalLatency(rng)
				}
				svc := seek + rot + model.TransferTime(r.Cylinder, r.Size)
				if r.Deadline > 0 && now > r.Deadline {
					pr.parent.missed = true
				}
				res.SeekTime += seek
				res.BusyTime += svc
				ds.inSvc = pr
				ds.freeAt = now + svc
			}
		}
	}

	i := 0
	now := int64(0)
	for {
		next := int64(-1)
		if i < len(logical) {
			next = logical[i].Arrival
		}
		for _, ds := range disks {
			if ds.inSvc != nil && (next < 0 || ds.freeAt < next) {
				next = ds.freeAt
			}
		}
		if next < 0 {
			break
		}
		now = next
		for _, ds := range disks {
			if ds.inSvc != nil && ds.freeAt <= now {
				pr := ds.inSvc
				ds.inSvc = nil
				ds.head = pr.req.Cylinder
				opDone(pr.parent, now, !pr.req.Write)
			}
		}
		for i < len(logical) && logical[i].Arrival <= now {
			lr := logical[i]
			i++
			res.Logical.OnArrival(lr)
			st := &legacyLogicalState{req: lr}
			var phase1 []disk.PhysOp
			if lr.Write {
				ops := cfg.Array.Write(blockOf(lr))
				for _, op := range ops {
					if op.Write {
						st.writeOps = append(st.writeOps, op)
					} else {
						phase1 = append(phase1, op)
					}
				}
				st.readsLeft = len(phase1)
			} else {
				phase1 = cfg.Array.Read(blockOf(lr))
			}
			st.pending = len(phase1) + len(st.writeOps)
			enqueue(st, phase1, now)
		}
		dispatch(now)
	}
	res.Makespan = now
	return res, nil
}
