package sim

import (
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/sched"
)

// Regression for the §5.1 inversion over-count: a request dropped at
// dispatch time (DropLate) never occupies the disk, so the higher-priority
// requests still queued behind it are not inverted by it. The accounting
// used to run before the expiry check and charged them anyway.
func TestDroppedDispatchCountsNoInversions(t *testing.T) {
	trace := []*core.Request{
		// Served first (FCFS), occupying the disk until t = 100_000.
		{ID: 0, Arrival: 0, Priorities: []int{1}},
		// Expired long before its dispatch at t = 100_000: dropped.
		{ID: 1, Arrival: 1, Priorities: []int{3}, Deadline: 10},
		// Higher priority (level 0 < 3), pending while 1 is dropped.
		{ID: 2, Arrival: 2, Priorities: []int{0}},
	}
	res := MustRun(Config{
		Scheduler: sched.NewFCFS(), FixedService: 100_000,
		Options: Options{DropLate: true, Dims: 1, Levels: 4},
	}, trace)
	if res.Dropped != 1 || res.Served != 2 {
		t.Fatalf("dropped/served = %d/%d, want 1/2", res.Dropped, res.Served)
	}
	if got := res.TotalInversions(); got != 0 {
		t.Errorf("inversions = %d, want 0: the dropped dispatch must not count", got)
	}
}

// The companion sanity check: a request actually served ahead of a
// higher-priority one still counts, so the fix moved the accounting, not
// removed it.
func TestServedDispatchStillCountsInversions(t *testing.T) {
	trace := []*core.Request{
		{ID: 0, Arrival: 0, Priorities: []int{1}},
		{ID: 1, Arrival: 1, Priorities: []int{3}}, // no deadline: served late
		{ID: 2, Arrival: 2, Priorities: []int{0}},
	}
	res := MustRun(Config{
		Scheduler: sched.NewFCFS(), FixedService: 100_000,
		Options: Options{DropLate: true, Dims: 1, Levels: 4},
	}, trace)
	if res.Served != 3 {
		t.Fatalf("served = %d, want 3", res.Served)
	}
	// Dispatching 0 inverts nothing (queue empty at t=0); dispatching 1
	// inverts pending 2; dispatching 2 inverts nothing.
	if got := res.TotalInversions(); got != 1 {
		t.Errorf("inversions = %d, want 1", got)
	}
}
