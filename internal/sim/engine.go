package sim

import (
	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/fault"
	"sfcsched/internal/metrics"
	"sfcsched/internal/sched"
	"sfcsched/internal/stats"
)

// This file is the unified event-driven engine behind both public entry
// points: Run drives a one-station Engine, RunArray an N-station Engine
// with the RAID-5 logical/physical mapping layered on top through the
// Engine hooks. There is exactly one dispatch/drop/service/metrics code
// path — the Station methods below — so every topology observes identical
// semantics and emits the same TraceEvent stream and metrics.

// Station is one service point of the engine: a disk model (or a fixed
// service time) plus the queue discipline feeding it. Service is
// non-interruptible — a dispatched request occupies the station until its
// completion event fires.
type Station struct {
	// ID is the station index; it doubles as TraceEvent.DiskID and as the
	// deterministic tie-break for same-time completion events.
	ID int
	// Sched is the queue discipline under test. Required.
	Sched sched.Scheduler
	// Disk models seek/rotation/transfer times. Nil requires FixedService.
	Disk *disk.Model
	// Col accumulates this station's physical metrics (dispatch inversions,
	// served/dropped/late counts, seek and service time). Required.
	Col *metrics.Collector
	// TransferOnly charges only media transfer time (the §5.1-5.2
	// assumption that "the transfer time dominates the seek time").
	TransferOnly bool
	// FixedService, when positive, overrides the disk model with a
	// constant service time (pure queueing experiments).
	FixedService int64
	// SampleRotation draws rotational latency from the engine RNG instead
	// of charging the deterministic average.
	SampleRotation bool
	// HeadAtDispatch moves the head to the target cylinder the moment a
	// service starts, so arrivals during the service window observe the
	// position the head is en route to (the single-disk semantics). When
	// false the head stays at its previous resting position until the
	// completion event fires (the array semantics).
	HeadAtDispatch bool
	// IdleProbe calls Next once more when the station drains to idle with
	// an empty queue, letting stateful schedulers observe the empty point:
	// the Dispatcher clears its current-serving value (so later arrivals
	// cannot "preempt" a stale blocking window) and sweep-tracking stages
	// observe the resting head. Single-disk semantics; the array loop has
	// never probed.
	IdleProbe bool

	head       int
	target     int
	headTravel int64
	inSvc      *core.Request
	svcStart   int64
	svcSeek    int64
	svcTime    int64
	shadows    []*Shadow
}

// Head returns the station's current head cylinder.
func (s *Station) Head() int { return s.head }

// HeadTravel returns the total cylinders traveled so far.
func (s *Station) HeadTravel() int64 { return s.headTravel }

// Busy reports whether a service is in flight.
func (s *Station) Busy() bool { return s.inSvc != nil }

// Enqueue hands r to the station's scheduler with the station's current
// head position. The head is always a valid (clamped) cylinder, so
// schedulers never observe a position outside the disk. Attached shadow
// schedulers receive the same request (with their own head positions), so
// counterfactual queues see every arrival and fault retry the primary
// queue sees.
func (s *Station) Enqueue(r *core.Request, now int64) {
	s.Sched.Add(r, now, s.head)
	for _, sh := range s.shadows {
		sh.add(r, now)
	}
}

// serviceTimeAt returns (seekTime, totalServiceTime) for a service of
// size bytes at the (already clamped, possibly remapped) cylinder cyl.
// The computation lives in disk.ServiceModel — the same code path the
// real-clock backends of internal/serve charge — so simulated and served
// requests can never disagree on what a service costs. Exactly one RNG
// draw happens per sampled-rotation service, in dispatch order, which
// keeps runs reproducible.
func (s *Station) serviceTimeAt(cyl int, size int64, rng *stats.RNG) (int64, int64) {
	m := disk.ServiceModel{
		Disk:           s.Disk,
		TransferOnly:   s.TransferOnly,
		FixedService:   s.FixedService,
		SampleRotation: s.SampleRotation,
	}
	return m.Times(s.head, cyl, size, rng)
}

// timerSeqBase offsets timer-event sequence numbers above every station
// ID, so at equal times completion events always fire before timers.
const timerSeqBase = uint64(1) << 32

// event is one pending engine event: a service completion (station set)
// or a timer callback (fn set). The heap orders events by (time, seq):
// seq is a deterministic tie-break — completion events use the station
// ID, timers a monotone counter above timerSeqBase — so identical
// configurations replay identically.
type event struct {
	time    int64
	seq     uint64
	station *Station
	fn      func(now int64)
}

func (a event) before(b event) bool {
	return a.time < b.time || (a.time == b.time && a.seq < b.seq)
}

// eventHeap is a minimal binary min-heap of events ordered by before.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !s[i].before(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	// Zero the vacated tail slot: a popped timer's fn closure and station
	// pointer must not stay reachable through the slice's spare capacity
	// until the slot happens to be overwritten (mirrors queue.removeAt).
	s[last] = event{}
	s = s[:last]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l].before(s[min]) {
			min = l
		}
		if r < len(s) && s[r].before(s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Engine is the deterministic event-driven simulator core. Configure the
// fields, then call Run with an arrival-sorted trace and a delivery
// callback that routes each arriving request onto a station.
type Engine struct {
	// Stations are the service points, indexed by Station.ID. At each
	// event time idle stations dispatch in index order, which fixes the
	// RNG draw order and makes runs reproducible.
	Stations []*Station
	// DropLate drops requests whose deadline has passed at dispatch time
	// (the §6 semantics). When false, expired requests are still serviced
	// and counted late.
	DropLate bool
	// RNG is the single rotational-latency stream shared by all stations.
	RNG *stats.RNG
	// Trace, when non-nil, receives one TraceEvent per dispatch decision
	// (served or dropped) on any station, with DiskID set to the station
	// ID. The hook runs inline; a slow sink slows the run, not the clock.
	Trace func(TraceEvent)
	// Faults, when non-nil, injects the deterministic fault plan: every
	// service completion is ruled on (OK/Retry/Exhausted/Lost), retried
	// requests re-enter their scheduler after a backoff timer, and
	// dispatches follow sector remaps. The injector draws from its own
	// RNG stream, so a nil (or zero-plan) injector leaves runs
	// byte-identical.
	Faults *fault.Injector
	// Decisions, when non-nil, captures a DecisionRecord per dispatch
	// decision: the candidate set is snapshotted (read-only) just before
	// the scheduler's Next and committed with the choice. Nil costs
	// nothing on the dispatch path.
	Decisions *DecisionTrace
	// Telemetry, when non-nil, samples per-station queue/utilization
	// state at fixed sim-time intervals. Sampling happens inside the run
	// loop at event times — it schedules no events of its own, so it can
	// never perturb the simulation.
	Telemetry *Telemetry

	// OnServed fires when a station completes a service; OnDropped when a
	// station drops an expired request; OnLateStart when a service starts
	// past its deadline without DropLate. Multi-stage topologies (RAID
	// read-modify-write) layer their logical bookkeeping here — the hooks
	// run inline at the exact event time, so follow-up work they enqueue
	// participates in the same dispatch round.
	OnServed    func(st *Station, r *core.Request, now int64)
	OnDropped   func(st *Station, r *core.Request, now int64)
	OnLateStart func(st *Station, r *core.Request, now int64)
	// OnFaulted fires when a request is lost to a failed disk (in flight
	// at failure time, or its retry timer landed on the dead station).
	// Array runs re-route it through reconstruction; without a handler
	// the request is dropped and attributed to faults.
	OnFaulted func(st *Station, r *core.Request, now int64)

	events   eventHeap
	now      int64
	timerSeq uint64
}

// Now returns the engine clock, µs.
func (e *Engine) Now() int64 { return e.now }

// Reset returns the engine to its pre-run state while keeping the event
// heap's capacity, so a recycled engine's next run pushes events into the
// memory the previous run grew (sim.Reuse). Configuration fields
// (Stations, hooks, RNG, …) are the caller's to reassign.
func (e *Engine) Reset() {
	for i := range e.events {
		e.events[i] = event{}
	}
	e.events = e.events[:0]
	e.now = 0
	e.timerSeq = 0
}

// At schedules fn to run at time t (e.g. a planned disk failure or a
// retry re-enqueue). At equal times timers run after completions and
// before arrivals, in scheduling order.
func (e *Engine) At(t int64, fn func(now int64)) {
	e.timerSeq++
	e.events.push(event{time: t, seq: timerSeqBase + e.timerSeq, fn: fn})
}

// Run drives the engine until every event has fired and the trace is
// exhausted, returning the completion time of the run (the makespan).
//
// The trace must be sorted by arrival time (see SortByArrival). deliver is
// called once per request at its arrival time and must route it onto a
// station (Station.Enqueue) after any per-arrival accounting.
//
// Determinism rules: the clock advances to the earliest pending event
// time; at each time all completion events fire first in (time, seq)
// order, then timers in scheduling order, then arrivals in trace order,
// then idle stations dispatch in station-index order. Identical
// configurations therefore replay identically, including the RNG draw
// sequence.
func (e *Engine) Run(trace []*core.Request, deliver func(r *core.Request, now int64)) int64 {
	i := 0 // next arrival index
	for {
		t := int64(-1)
		if len(e.events) > 0 {
			t = e.events[0].time
		}
		if i < len(trace) && (t < 0 || trace[i].Arrival < t) {
			t = trace[i].Arrival
		}
		if t < 0 {
			break // no pending events, no arrivals left
		}
		e.now = t
		// Completions first, so freed stations (and any follow-up work the
		// OnServed hook enqueues) can take this round's arrivals.
		for len(e.events) > 0 && e.events[0].time == t {
			ev := e.events.pop()
			if ev.fn != nil {
				ev.fn(t)
				continue
			}
			e.complete(ev.station, t)
		}
		for i < len(trace) && trace[i].Arrival <= t {
			deliver(trace[i], t)
			i++
		}
		for _, st := range e.Stations {
			e.dispatch(st, t)
		}
		if e.Telemetry != nil {
			e.Telemetry.sample(e, t)
		}
	}
	if e.Telemetry != nil {
		e.Telemetry.closeRun(e, e.now)
	}
	return e.now
}

// dispatch starts service on st if it is idle and has pending work,
// dropping expired requests first under DropLate. This is the single
// drop/late/service-time/metrics code path of the package.
func (e *Engine) dispatch(st *Station, now int64) {
	if e.Faults != nil && e.Faults.Down(st.ID) {
		// A failed disk serves nothing; the array layer drains and
		// re-routes its queue at failure time.
		return
	}
	for st.inSvc == nil && st.Sched.Len() > 0 {
		if e.Decisions != nil {
			// Snapshot the candidate set before the scheduler decides; the
			// walk is read-only, so the decision itself is unperturbed.
			e.Decisions.snapshot(st, now)
		}
		r := st.Sched.Next(now, st.head)
		if r == nil {
			return
		}
		if e.DropLate && r.Deadline > 0 && now > r.Deadline {
			// Dropped requests never occupy the station, so serving others
			// "ahead" of them costs nothing: they must not contribute to
			// the §5.1 inversion counts. OnDispatch therefore runs only
			// after the expiry check.
			st.Col.OnDropped(r)
			if e.Faults != nil && e.Faults.Attempted(r) {
				// The deadline expired while the request sat out a retry
				// backoff: a drop attributable to faults, not load.
				st.Col.OnFaultDropped()
				e.Faults.Forget(r)
			}
			if e.Trace != nil {
				e.Trace(TraceEvent{Now: now, DiskID: st.ID, Request: r, Dropped: true, QueueLen: st.Sched.Len()})
			}
			if e.Decisions != nil {
				e.Decisions.commit(st, r, now, true)
			}
			if e.OnDropped != nil {
				e.OnDropped(st, r, now)
			}
			continue
		}
		st.Col.OnDispatch(r, st.Sched.Each)
		target := r.Cylinder
		if st.Disk != nil {
			target = clampCyl(r.Cylinder, st.Disk.Cylinders)
			if e.Faults != nil {
				target = e.Faults.Redirect(st.ID, target)
			}
		}
		seek, svc := st.serviceTimeAt(target, r.Size, e.RNG)
		if st.Disk != nil {
			st.headTravel += int64(absInt(target - st.head))
		}
		if e.Trace != nil {
			e.Trace(TraceEvent{Now: now, DiskID: st.ID, Request: r, Head: st.head, Seek: seek, Service: svc, QueueLen: st.Sched.Len()})
		}
		if e.Decisions != nil {
			e.Decisions.commit(st, r, now, false)
		}
		for _, sh := range st.shadows {
			sh.observe(r, now)
		}
		st.inSvc, st.target = r, target
		st.svcStart, st.svcSeek, st.svcTime = now, seek, svc
		if st.HeadAtDispatch {
			// The head is en route to (then at) the clamped target, so
			// arrivals during the service window observe a valid cylinder.
			st.head = target
		}
		// A deadline is met when service starts in time (the convention of
		// SCAN-EDF and §6's "serviced prior to the deadline"). Without
		// DropLate, expired requests are still serviced but counted late.
		if r.Deadline > 0 && now > r.Deadline {
			st.Col.OnLate(r)
			if e.OnLateStart != nil {
				e.OnLateStart(st, r, now)
			}
		}
		e.events.push(event{time: now + svc, seq: uint64(st.ID), station: st})
	}
	if st.IdleProbe && st.inSvc == nil && st.Sched.Len() == 0 {
		st.Sched.Next(now, st.head)
	}
}

// complete fires the completion of st's in-flight service. With a fault
// injector installed the completion is ruled on first: a faulted attempt
// still consumed the station (its seek and busy time are charged), but
// the request is re-enqueued after a backoff (Retry), abandoned
// (Exhausted) or re-routed (Lost) instead of completing.
func (e *Engine) complete(st *Station, now int64) {
	r := st.inSvc
	st.inSvc = nil
	if !st.HeadAtDispatch {
		st.head = st.target
	}
	if e.Faults != nil {
		verdict, delay := e.Faults.Outcome(st.ID, st.target, r, now)
		if verdict != fault.OK {
			e.faulted(st, r, verdict, delay, now)
			return
		}
	}
	st.Col.OnServed(r, st.svcSeek, st.svcTime, st.svcStart)
	if e.OnServed != nil {
		e.OnServed(st, r, now)
	}
}

// faulted handles a non-OK verdict on the completed service of r.
func (e *Engine) faulted(st *Station, r *core.Request, verdict fault.Verdict, delay, now int64) {
	st.Col.OnFaultAttempt(st.svcSeek, st.svcTime)
	if e.Trace != nil {
		e.Trace(TraceEvent{Now: now, DiskID: st.ID, Request: r, Head: st.head,
			Faulted: true, Dropped: verdict == fault.Exhausted, QueueLen: st.Sched.Len()})
	}
	switch verdict {
	case fault.Retry:
		e.At(now+delay, func(t int64) {
			if e.Faults.Down(st.ID) {
				// The disk died during the backoff; the retry has nowhere
				// to land.
				e.lose(st, r, t)
				return
			}
			st.Enqueue(r, t)
		})
	case fault.Exhausted:
		st.Col.OnDropped(r)
		st.Col.OnFaultDropped()
		if e.OnDropped != nil {
			e.OnDropped(st, r, now)
		}
	case fault.Lost:
		e.lose(st, r, now)
	}
}

// lose hands a request stranded on a failed disk to OnFaulted (arrays
// re-route it through reconstruction); without a handler it is dropped
// and attributed to faults.
func (e *Engine) lose(st *Station, r *core.Request, now int64) {
	e.Faults.Forget(r)
	if e.OnFaulted != nil {
		e.OnFaulted(st, r, now)
		return
	}
	st.Col.OnDropped(r)
	st.Col.OnFaultDropped()
	if e.OnDropped != nil {
		e.OnDropped(st, r, now)
	}
}
