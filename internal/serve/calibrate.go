package serve

import (
	"context"
	"fmt"
	"math"
	"time"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/sim"
	"sfcsched/internal/stats"
)

// CalibrationConfig describes one observe-predict-calibrate run: the same
// scheduler configuration and service model instantiated twice — once
// under the simulator's virtual clock, once under the live dispatcher on
// the dilated wall clock — and fed the identical trace.
type CalibrationConfig struct {
	// Sched is the Cascaded-SFC configuration both sides schedule with.
	Sched core.EncapsulatorConfig
	// Shards is the sharded scheduler's shard count (0 picks the default).
	Shards int
	// Service is the service-time model both sides charge. Rotational
	// sampling is forced off: calibration needs both sides deterministic
	// so every divergence is attributable to the serving path.
	Service disk.ServiceModel
	// Dilation is the live clock's model-seconds-per-wall-second factor.
	Dilation float64
	// InFlight bounds the live dispatcher's concurrent services (0 = 1).
	InFlight int
	// MaxQueue bounds the live dispatcher's backpressure quota (0 =
	// unbounded; must be 0 or ≥ len(trace) with Preload).
	MaxQueue int
	// DropLate applies the §6 drop semantics on both sides.
	DropLate bool
	// Preload submits the whole trace before the dispatcher starts instead
	// of replaying arrivals on the clock. Meaningful for arrival-at-zero
	// traces, where it makes the live dispatch order provably identical to
	// the simulator's (see Preload); a trace with spread arrivals would
	// desynchronize the two sides' enqueue points.
	Preload bool
	// Metrics overrides the live dispatcher's sink (default
	// DefaultMetrics); Calib overrides the score sink (default
	// DefaultCalibMetrics).
	Metrics *Metrics
	Calib   *CalibMetrics
}

// Calibration is the scored outcome of one run: how well the simulator
// predicted what the live serving path measured.
type Calibration struct {
	// SimServed/SimDropped and LiveServed/LiveDropped/LiveAbandoned count
	// per-request outcomes on each side.
	SimServed, SimDropped   int
	LiveServed, LiveDropped int
	LiveAbandoned           int
	// Aligned counts requests served on both sides — the population the
	// scores below are computed over.
	Aligned int
	// LatencyMAPE is the mean absolute percentage error of the simulator's
	// per-request response times against the live ones, percent. NaN when
	// undefined (no aligned requests).
	LatencyMAPE float64
	// OrderPearson is the Pearson correlation between each aligned
	// request's dispatch rank on the two sides (a Spearman rank
	// correlation of the dispatch orders). NaN when undefined.
	OrderPearson float64
	// OrderExact reports that both sides served exactly the same requests
	// in exactly the same order.
	OrderExact bool
	// SimHeadTravel/LiveHeadTravel are total emulated head movement,
	// cylinders.
	SimHeadTravel, LiveHeadTravel int64
	// SimMakespan/LiveMakespan are the completion times of the two runs,
	// model microseconds.
	SimMakespan, LiveMakespan int64
	// Wall is the live run's wall-clock duration.
	Wall time.Duration
}

// HeadTravelDelta returns (live-sim)/sim as a signed fraction, or NaN when
// the simulated run moved the head nowhere.
func (c *Calibration) HeadTravelDelta() float64 {
	if c.SimHeadTravel == 0 {
		return math.NaN()
	}
	return float64(c.LiveHeadTravel-c.SimHeadTravel) / float64(c.SimHeadTravel)
}

// simRec is the simulator's per-request prediction.
type simRec struct {
	done int64
	rank int
}

// Calibrate runs trace (sorted by arrival) through the simulator and
// through a live dispatcher with identical scheduler and service-time
// configuration, aligns the per-request records by ID, and scores the
// simulator's predictive accuracy. The scores land in the returned
// Calibration and in the sfcsched_calib_* metrics.
func Calibrate(ctx context.Context, cfg CalibrationConfig, trace []*core.Request) (*Calibration, error) {
	cfg.Service.SampleRotation = false

	// Predict: the simulator's run, with per-request completion times and
	// dispatch ranks captured off the trace hook.
	simSched, err := core.NewShardedScheduler("calib-sim", cfg.Sched, cfg.Shards)
	if err != nil {
		return nil, err
	}
	simSched.SetMetrics(&core.Metrics{})
	cal := &Calibration{}
	simRecs := make(map[uint64]simRec, len(trace))
	simRank := 0
	res, err := sim.Run(sim.Config{
		Disk:         cfg.Service.Disk,
		TransferOnly: cfg.Service.TransferOnly,
		FixedService: cfg.Service.FixedService,
		Scheduler:    simSched,
		Options: sim.Options{
			DropLate: cfg.DropLate,
			Trace: func(ev sim.TraceEvent) {
				if ev.Dropped {
					cal.SimDropped++
					return
				}
				simRecs[ev.Request.ID] = simRec{done: ev.Now + ev.Service, rank: simRank}
				simRank++
			},
		},
	}, trace)
	if err != nil {
		return nil, err
	}
	cal.SimServed = simRank
	cal.SimHeadTravel = res.HeadTravel
	cal.SimMakespan = res.Makespan

	// Observe: the identical configuration served live on the dilated
	// clock.
	clock, err := NewClock(cfg.Dilation)
	if err != nil {
		return nil, err
	}
	backend, err := NewEmulatedDisk(cfg.Service, clock)
	if err != nil {
		return nil, err
	}
	liveSched, err := core.NewShardedScheduler("calib-live", cfg.Sched, cfg.Shards)
	if err != nil {
		return nil, err
	}
	liveSched.SetMetrics(&core.Metrics{})
	d, err := New(Config{
		Sched: liveSched, Backend: backend, Clock: clock,
		InFlight: cfg.InFlight, MaxQueue: cfg.MaxQueue, DropLate: cfg.DropLate,
		Metrics: cfg.Metrics, KeepRecords: true,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Preload && cfg.MaxQueue != 0 && cfg.MaxQueue < len(trace) {
		return nil, fmt.Errorf("serve: preload of %d requests cannot fit a queue bound of %d", len(trace), cfg.MaxQueue)
	}
	wallStart := time.Now()
	if cfg.Preload {
		if err := Preload(ctx, d, trace); err != nil {
			return nil, err
		}
		d.Start(ctx)
	} else {
		d.Start(ctx)
		if err := Replay(ctx, d, trace); err != nil {
			d.Stop()
			return nil, err
		}
	}
	if err := d.Drain(ctx); err != nil {
		return nil, err
	}
	cal.Wall = time.Since(wallStart)
	cal.LiveHeadTravel = d.HeadTravel()

	// Calibrate: align by request ID and score.
	live := d.Records()
	var pred, actual []float64
	var simRanks, liveRanks []float64
	exact := true
	liveRank := 0
	for _, rec := range live {
		switch {
		case rec.Dropped:
			cal.LiveDropped++
			continue
		case rec.Abandoned:
			cal.LiveAbandoned++
			continue
		}
		rank := liveRank
		liveRank++
		if rec.Done > cal.LiveMakespan {
			cal.LiveMakespan = rec.Done
		}
		sr, ok := simRecs[rec.ID]
		if !ok {
			exact = false
			continue
		}
		cal.Aligned++
		pred = append(pred, float64(sr.done-rec.Arrival))
		actual = append(actual, float64(rec.Done-rec.Arrival))
		simRanks = append(simRanks, float64(sr.rank))
		liveRanks = append(liveRanks, float64(rank))
		if sr.rank != rank {
			exact = false
		}
	}
	cal.LiveServed = liveRank
	cal.LatencyMAPE = stats.MAPE(pred, actual)
	cal.OrderPearson = stats.Pearson(simRanks, liveRanks)
	cal.OrderExact = exact && cal.SimServed == cal.LiveServed && cal.Aligned == cal.SimServed && cal.Aligned > 0

	cm := cfg.Calib
	if cm == nil {
		cm = DefaultCalibMetrics
	}
	cm.Runs.Inc()
	cm.AlignedRequests.Add(uint64(cal.Aligned))
	cm.LatencyMAPEPpm.Set(ratioPpm(cal.LatencyMAPE/100, -1))
	cm.OrderPearsonPpm.Set(ratioPpm(cal.OrderPearson, -2_000_000))
	cm.HeadTravelDeltaPpm.Set(ratioPpm(cal.HeadTravelDelta(), 0))
	return cal, nil
}

// ratioPpm scales a float ratio into a parts-per-million gauge value,
// substituting sentinel for NaN (the obs gauges are integral).
func ratioPpm(v float64, sentinel int64) int64 {
	if math.IsNaN(v) {
		return sentinel
	}
	return int64(math.Round(v * 1e6))
}
