package serve

import (
	"context"

	"sfcsched/internal/core"
)

// Replay feeds trace (sorted by arrival time) into d on the dilated clock:
// it sleeps until each request's arrival time, then submits it stamped
// with that nominal arrival. The scheduler therefore computes the same
// characterization values a simulator run of the trace computes at its
// enqueue points, up to the head-position drift the calibrator exists to
// measure. Replay returns on the first submission error or when ctx is
// done; it does not drain — pair it with Drain.
func Replay(ctx context.Context, d *Dispatcher, trace []*core.Request) error {
	for _, r := range trace {
		if err := d.cfg.Clock.SleepUntil(ctx, r.Arrival); err != nil {
			return err
		}
		if err := d.SubmitAt(ctx, r, r.Arrival); err != nil {
			return err
		}
	}
	return nil
}

// Preload submits every request of trace immediately, stamped with its
// nominal arrival, without waiting for the clock. Called before Start on
// an arrival-at-zero trace, every characterization value anchors on the
// initial head and sweep state — exactly what a simulator run of the same
// trace computes before its first dispatch — so the dispatch order of the
// queued set is fully determined by the stored (value, sequence) pairs
// and provably identical to the simulator's, independent of wall-clock
// jitter or the in-flight bound. The exact-order calibration mode and its
// test are built on this.
//
// The dispatcher must have MaxQueue ≥ len(trace) (or 0, unbounded) when
// preloading before Start; see SubmitAt.
func Preload(ctx context.Context, d *Dispatcher, trace []*core.Request) error {
	for _, r := range trace {
		if err := d.SubmitAt(ctx, r, r.Arrival); err != nil {
			return err
		}
	}
	return nil
}
