package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sfcsched/internal/core"
)

// Errors returned by the submission path.
var (
	// ErrClosed reports a submission refused because the scheduler ingress
	// was closed (Drain or Stop has begun).
	ErrClosed = errors.New("serve: scheduler ingress closed")
	// ErrNotStarted reports a submission before Start.
	ErrNotStarted = errors.New("serve: dispatcher not started")
	// ErrStopped reports a submission interrupted by Stop.
	ErrStopped = errors.New("serve: dispatcher stopped")
)

// Config configures a Dispatcher.
type Config struct {
	// Sched is the concurrent scheduler the dispatcher consumes. Required.
	// The dispatcher owns the consumer side (Next/Close/Drain); any number
	// of goroutines may feed it through Submit.
	Sched *core.ShardedScheduler
	// Backend executes dispatched requests. Required.
	Backend Backend
	// Clock is the dilated model clock submissions and dispatches are
	// timestamped with. Required.
	Clock *Clock
	// InFlight bounds concurrently running backend services; 0 means 1
	// (single-disk semantics — one arm, one service at a time).
	InFlight int
	// MaxQueue bounds the number of submitted-but-incomplete requests;
	// Submit blocks (backpressure) once the bound is reached. 0 means
	// unbounded.
	MaxQueue int
	// DropLate discards requests whose deadline has passed at dispatch
	// time, mirroring the simulator's §6 semantics.
	DropLate bool
	// Metrics overrides the process-wide DefaultMetrics sink.
	Metrics *Metrics
	// KeepRecords accumulates a Record per dispatch decision for later
	// retrieval via Records — calibration runs need them; long-running
	// servers should leave this off (the slice grows without bound) and
	// use OnRecord or the metrics instead.
	KeepRecords bool
	// OnRecord, when non-nil, receives each Record as it is produced.
	// Calls are serialized.
	OnRecord func(Record)
}

// Record is the per-request outcome of one dispatch decision, the serving
// counterpart of the simulator's TraceEvent. Times are model microseconds.
type Record struct {
	// ID is the request's ID.
	ID uint64
	// Seq is the dispatch-order index (0-based) across the run; drops
	// consume a sequence number too, matching the simulator's trace.
	Seq int
	// Arrival is the request's nominal arrival time.
	Arrival int64
	// Dispatch is the model time the dispatch decision was made.
	Dispatch int64
	// Done is the model time the service completed (0 for drops).
	Done int64
	// Head is the head cylinder the service departed from; Target the
	// (clamped) cylinder it seeked to.
	Head, Target int
	// Seek and Service are the backend-reported costs.
	Seek, Service int64
	// Dropped marks a request discarded past its deadline (DropLate).
	Dropped bool
	// Abandoned marks a service cut short by Stop or cancellation.
	Abandoned bool
}

// Dispatcher is the real-clock serving loop: it pops requests from a
// core.ShardedScheduler in characterization-value order and executes them
// against a Backend, with a bounded number in flight. The zero value is
// not usable; construct with New, then Start, Submit from any number of
// goroutines, and shut down with Drain (graceful) or Stop (immediate).
type Dispatcher struct {
	cfg Config
	m   *Metrics

	ctx     context.Context
	cancel  context.CancelFunc
	started atomic.Bool
	startMu sync.Mutex
	stopped chan struct{} // closed when the dispatch loop exits
	stop    sync.Once

	// slots is the in-flight semaphore: the loop takes a slot before each
	// dispatch, the worker returns it at completion.
	slots chan struct{}
	// quota is the MaxQueue backpressure semaphore (nil when unbounded):
	// Submit takes, completion/drop/rejection returns.
	quota chan struct{}
	// kick wakes the loop when new work or a completion changes what Next
	// can see; capacity 1, senders never block.
	kick chan struct{}

	// outstanding counts submitted-but-not-yet-finished requests (queued +
	// in flight). The drain handshake keys off it reaching zero. Producers
	// increment it before kicking, so a consumed kick always observes an
	// up-to-date count.
	outstanding atomic.Int64
	draining    atomic.Bool

	head    atomic.Int64
	travel  atomic.Int64
	dispSeq int // loop-local dispatch sequence

	workers sync.WaitGroup

	recMu sync.Mutex
	recs  []Record
}

// New validates cfg and builds a dispatcher.
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Sched == nil {
		return nil, fmt.Errorf("serve: dispatcher requires a scheduler")
	}
	if cfg.Backend == nil {
		return nil, fmt.Errorf("serve: dispatcher requires a backend")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("serve: dispatcher requires a clock")
	}
	if cfg.InFlight < 0 {
		return nil, fmt.Errorf("serve: in-flight bound must be >= 0, got %d", cfg.InFlight)
	}
	if cfg.InFlight == 0 {
		cfg.InFlight = 1
	}
	if cfg.MaxQueue < 0 {
		return nil, fmt.Errorf("serve: queue bound must be >= 0, got %d", cfg.MaxQueue)
	}
	m := cfg.Metrics
	if m == nil {
		m = DefaultMetrics
	}
	d := &Dispatcher{
		cfg:     cfg,
		m:       m,
		stopped: make(chan struct{}),
		slots:   make(chan struct{}, cfg.InFlight),
		kick:    make(chan struct{}, 1),
	}
	for i := 0; i < cfg.InFlight; i++ {
		d.slots <- struct{}{}
	}
	if cfg.MaxQueue > 0 {
		d.quota = make(chan struct{}, cfg.MaxQueue)
	}
	return d, nil
}

// Start launches the dispatch loop. The loop runs until Drain completes,
// Stop is called, or ctx is canceled. Start is idempotent; it must precede
// the first Submit.
func (d *Dispatcher) Start(ctx context.Context) {
	d.startMu.Lock()
	defer d.startMu.Unlock()
	if d.started.Load() {
		return
	}
	d.ctx, d.cancel = context.WithCancel(ctx)
	d.started.Store(true)
	go d.loop()
}

// Head returns the current emulated head cylinder.
func (d *Dispatcher) Head() int { return int(d.head.Load()) }

// HeadTravel returns the cumulative emulated head movement, cylinders.
func (d *Dispatcher) HeadTravel() int64 { return d.travel.Load() }

// Outstanding returns the number of submitted-but-unfinished requests.
func (d *Dispatcher) Outstanding() int { return int(d.outstanding.Load()) }

// Submit enqueues r at the current model time. It blocks while the
// MaxQueue backpressure bound is reached and returns ErrClosed once
// shutdown has begun.
func (d *Dispatcher) Submit(ctx context.Context, r *core.Request) error {
	return d.SubmitAt(ctx, r, d.cfg.Clock.Now())
}

// SubmitAt enqueues r with an explicit model timestamp for the scheduler's
// value computation. Replay feeds use the request's nominal arrival time
// here so characterization values match a simulator run of the same trace
// exactly, leaving dispatch interleaving as the only divergence the
// calibrator measures.
//
// SubmitAt works before Start too — Preload stages a whole trace that way
// so every value anchors on the initial head and sweep state — but a
// pre-Start submission must not depend on the loop for progress: with a
// MaxQueue smaller than the staged trace it would block on quota no
// dispatch can ever free.
func (d *Dispatcher) SubmitAt(ctx context.Context, r *core.Request, now int64) error {
	if d.quota != nil {
		// A nil stop channel blocks forever, which is right before Start:
		// only the caller's ctx can interrupt the quota wait then.
		var stopc <-chan struct{}
		if d.started.Load() {
			stopc = d.ctx.Done()
		}
		select {
		case d.quota <- struct{}{}:
		default:
			d.m.BackpressureWaits.Inc()
			select {
			case d.quota <- struct{}{}:
			case <-ctx.Done():
				return ctx.Err()
			case <-stopc:
				return ErrStopped
			}
		}
	}
	if !d.cfg.Sched.TryAdd(r, now, d.Head()) {
		if d.quota != nil {
			<-d.quota
		}
		d.m.Rejected.Inc()
		return ErrClosed
	}
	d.outstanding.Add(1)
	d.m.Submitted.Inc()
	d.wake()
	return nil
}

// Drain shuts the ingress and serves out everything already accepted:
// subsequent submissions are rejected, queued requests are dispatched and
// completed, and Drain returns once the dispatcher is quiescent. If ctx
// expires first the remaining work is abandoned via Stop and ctx's error
// is returned.
func (d *Dispatcher) Drain(ctx context.Context) error {
	if !d.started.Load() {
		d.cfg.Sched.Close()
		return ErrNotStarted
	}
	d.cfg.Sched.Close()
	d.draining.Store(true)
	d.wake()
	select {
	case <-d.stopped:
	case <-ctx.Done():
		d.Stop()
		return ctx.Err()
	}
	d.workers.Wait()
	d.m.Drains.Inc()
	return nil
}

// Stop halts the dispatcher immediately: the ingress closes, in-flight
// backend services are canceled and recorded as abandoned, and requests
// still queued are counted abandoned as well. Stop blocks until the loop
// and all workers have exited. Idempotent.
func (d *Dispatcher) Stop() {
	if !d.started.Load() {
		d.cfg.Sched.Close()
		return
	}
	d.stop.Do(func() {
		d.cfg.Sched.Close()
		d.cancel()
	})
	<-d.stopped
	d.workers.Wait()
	if n := d.cfg.Sched.Drain(nil); n > 0 {
		d.m.Abandoned.Add(uint64(n))
		d.outstanding.Add(int64(-n))
	}
}

// Records returns a copy of the accumulated dispatch records in dispatch
// order. Empty unless Config.KeepRecords was set.
func (d *Dispatcher) Records() []Record {
	d.recMu.Lock()
	out := make([]Record, len(d.recs))
	copy(out, d.recs)
	d.recMu.Unlock()
	// Workers append at completion, so the raw slice is in completion
	// order; hand back dispatch order, which is what callers align on.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// wake nudges the dispatch loop; never blocks.
func (d *Dispatcher) wake() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

// loop is the single consumer of the scheduler: take a slot, pop the next
// request, hand it to a worker. Runs until shutdown.
func (d *Dispatcher) loop() {
	defer close(d.stopped)
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-d.slots:
		}
		r, ok := d.take()
		if !ok {
			return
		}
		now := d.cfg.Clock.Now()
		head := d.Head()
		target := clampCyl(r.Cylinder, d.cfg.Backend.Cylinders())
		// Single-disk HeadAtDispatch semantics: the head is en route to the
		// target for the whole service window, so submissions arriving
		// mid-service anchor their values on the position being seeked to —
		// exactly what the simulator's stations expose to the scheduler.
		d.head.Store(int64(target))
		d.travel.Add(int64(absInt(target - head)))
		d.m.HeadTravelCylinders.Add(uint64(absInt(target - head)))
		seq := d.dispSeq
		d.dispSeq++
		d.m.Dispatched.Inc()
		d.m.InFlight.Add(1)
		d.workers.Add(1)
		go d.serveOne(r, head, target, seq, now)
	}
}

// take pops the next dispatchable request, blocking until one is
// available, shutdown begins, or — while draining — the dispatcher goes
// quiescent. Expired requests are dropped here under DropLate without
// consuming the held slot. The second return is false on shutdown.
func (d *Dispatcher) take() (*core.Request, bool) {
	for {
		now := d.cfg.Clock.Now()
		if r := d.cfg.Sched.Next(now, d.Head()); r != nil {
			if d.cfg.DropLate && r.Deadline > 0 && now > r.Deadline {
				d.drop(r, now)
				continue
			}
			return r, true
		}
		// Workers decrement outstanding before kicking, so after consuming
		// a kick this check never misses a finished request.
		if d.draining.Load() && d.outstanding.Load() == 0 {
			return nil, false
		}
		select {
		case <-d.kick:
		case <-d.ctx.Done():
			return nil, false
		}
	}
}

// drop records the discard of an expired request. Drops consume a dispatch
// sequence number (the decision was made) but no backend service.
func (d *Dispatcher) drop(r *core.Request, now int64) {
	seq := d.dispSeq
	d.dispSeq++
	d.m.Dispatched.Inc()
	d.m.Dropped.Inc()
	d.record(Record{
		ID: r.ID, Seq: seq, Arrival: r.Arrival, Dispatch: now,
		Head: d.Head(), Target: d.Head(), Dropped: true,
	})
	d.finishOne()
}

// serveOne runs one backend service on its own goroutine and does the
// completion accounting.
func (d *Dispatcher) serveOne(r *core.Request, head, target, seq int, dispatchAt int64) {
	defer d.workers.Done()
	wallStart := time.Now()
	comp, err := d.cfg.Backend.Serve(d.ctx, r, head)
	d.m.WallService.Observe(uint64(time.Since(wallStart).Microseconds()))
	done := d.cfg.Clock.Now()
	rec := Record{
		ID: r.ID, Seq: seq, Arrival: r.Arrival, Dispatch: dispatchAt, Done: done,
		Head: head, Target: target, Seek: comp.Seek, Service: comp.Service,
	}
	if err != nil {
		rec.Abandoned = true
		rec.Done = 0
		d.m.Abandoned.Inc()
	} else {
		d.m.Completed.Inc()
		if lat := done - r.Arrival; lat >= 0 {
			d.m.ModelLatency.Observe(uint64(lat))
		}
	}
	d.record(rec)
	d.m.InFlight.Add(-1)
	d.finishOne()
	d.slots <- struct{}{}
	d.wake()
}

// finishOne retires one outstanding request: releases its backpressure
// quota and lets a drain observe quiescence.
func (d *Dispatcher) finishOne() {
	d.outstanding.Add(-1)
	if d.quota != nil {
		<-d.quota
	}
	d.wake()
}

// record appends/forwards one Record; calls to OnRecord are serialized.
func (d *Dispatcher) record(rec Record) {
	d.recMu.Lock()
	if d.cfg.KeepRecords {
		d.recs = append(d.recs, rec)
	}
	cb := d.cfg.OnRecord
	if cb != nil {
		cb(rec)
	}
	d.recMu.Unlock()
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
