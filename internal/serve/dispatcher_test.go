package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/sim"
)

// serveConfig is the cascaded configuration the serving tests schedule
// with: deadline and cylinder stages over the Table 1 geometry.
func serveConfig() core.EncapsulatorConfig {
	return core.EncapsulatorConfig{
		Levels:      8,
		UseDeadline: true, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: 3832,
	}
}

// reqAt builds one test request with a far-off deadline.
func reqAt(id uint64, cyl int, size int64) *core.Request {
	return &core.Request{
		ID:         id,
		Priorities: []int{int(id) % 8},
		Deadline:   600_000 + int64(id),
		Cylinder:   cyl,
		Size:       size,
	}
}

// zeroArrivalTrace builds n requests all arriving at model time 0, spread
// over the cylinder space — the preloadable trace shape of the exact-order
// guarantee.
func zeroArrivalTrace(n int) []*core.Request {
	trace := make([]*core.Request, n)
	for i := range trace {
		trace[i] = reqAt(uint64(i+1), ((i+1)*311)%3832, 65536)
	}
	return trace
}

// fakeBackend serves instantly (a fixed 10 µs model cost), optionally
// blocking on gate until it is closed or ctx is canceled.
type fakeBackend struct {
	gate   chan struct{}
	served atomic.Int64
}

func (f *fakeBackend) Cylinders() int { return 0 }

func (f *fakeBackend) Serve(ctx context.Context, r *core.Request, head int) (Completion, error) {
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return Completion{}, ctx.Err()
		}
	}
	f.served.Add(1)
	return Completion{Seek: 0, Service: 10}, nil
}

func newTestDispatcher(t *testing.T, cfg Config) (*Dispatcher, *Metrics) {
	t.Helper()
	m := &Metrics{}
	cfg.Metrics = m
	if cfg.Sched == nil {
		s := core.MustShardedScheduler("", serveConfig(), 8)
		s.SetMetrics(&core.Metrics{})
		cfg.Sched = s
	}
	if cfg.Clock == nil {
		c, err := NewClock(10_000)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Clock = c
	}
	if cfg.Backend == nil {
		cfg.Backend = &fakeBackend{}
	}
	cfg.KeepRecords = true
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, m
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestNewValidation(t *testing.T) {
	s := core.MustShardedScheduler("", serveConfig(), 4)
	s.SetMetrics(&core.Metrics{})
	clock, _ := NewClock(100)
	be := &fakeBackend{}
	bad := []Config{
		{Backend: be, Clock: clock},
		{Sched: s, Clock: clock},
		{Sched: s, Backend: be},
		{Sched: s, Backend: be, Clock: clock, InFlight: -1},
		{Sched: s, Backend: be, Clock: clock, MaxQueue: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestDispatcherServesAllConcurrentSubmitters is the serving layer's bread
// and butter: many producers, bounded in-flight dispatch, graceful drain,
// nothing lost and nothing served twice.
func TestDispatcherServesAllConcurrentSubmitters(t *testing.T) {
	d, m := newTestDispatcher(t, Config{InFlight: 4})
	d.Start(context.Background())

	const producers = 4
	const perProducer = 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := uint64(p*perProducer + i + 1)
				if err := d.Submit(context.Background(), reqAt(id, int(id*37)%3832, 4096)); err != nil {
					t.Errorf("Submit %d: %v", id, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := d.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	const total = producers * perProducer
	if got := m.Submitted.Load(); got != total {
		t.Errorf("Submitted = %d, want %d", got, total)
	}
	if got := m.Completed.Load(); got != total {
		t.Errorf("Completed = %d, want %d", got, total)
	}
	if got := m.Dispatched.Load(); got != total {
		t.Errorf("Dispatched = %d, want %d", got, total)
	}
	if got := m.InFlight.Load(); got != 0 {
		t.Errorf("InFlight = %d after drain, want 0", got)
	}
	if d.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after drain, want 0", d.Outstanding())
	}
	recs := d.Records()
	if len(recs) != total {
		t.Fatalf("got %d records, want %d", len(recs), total)
	}
	seen := make(map[uint64]bool, total)
	for i, rec := range recs {
		if rec.Seq != i {
			t.Fatalf("record %d has seq %d: dispatch sequence not dense", i, rec.Seq)
		}
		if seen[rec.ID] {
			t.Fatalf("request %d recorded twice", rec.ID)
		}
		seen[rec.ID] = true
		if rec.Dropped || rec.Abandoned {
			t.Fatalf("request %d marked dropped/abandoned on a clean run", rec.ID)
		}
		if rec.Done < rec.Dispatch {
			t.Fatalf("request %d completed at %d before its dispatch at %d", rec.ID, rec.Done, rec.Dispatch)
		}
	}

	// The ingress stays closed after a drain.
	if err := d.Submit(context.Background(), reqAt(9999, 0, 4096)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Drain = %v, want ErrClosed", err)
	}
	if got := m.Rejected.Load(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
}

// TestDispatcherExactSimOrder is the acceptance-criteria pin: on a
// preloaded arrival-at-zero trace the live dispatcher's dispatch order is
// bit-identical to sim.Run's, because every characterization value anchors
// on the initial head/sweep state and Next pops a fixed queued set in pure
// (value, sequence) order — wall-clock jitter has nothing left to perturb.
// The guarantee is independent of the in-flight bound.
func TestDispatcherExactSimOrder(t *testing.T) {
	for _, inflight := range []int{1, 3} {
		trace := zeroArrivalTrace(96)
		model := disk.MustModel(disk.QuantumXP32150Params())
		sm := disk.ServiceModel{Disk: model}

		simSched := core.MustShardedScheduler("", serveConfig(), 8)
		simSched.SetMetrics(&core.Metrics{})
		var simOrder []uint64
		if _, err := sim.Run(sim.Config{
			Disk: model, Scheduler: simSched,
			Options: sim.Options{Trace: func(ev sim.TraceEvent) {
				if !ev.Dropped {
					simOrder = append(simOrder, ev.Request.ID)
				}
			}},
		}, trace); err != nil {
			t.Fatalf("sim.Run: %v", err)
		}

		clock, _ := NewClock(50_000)
		be, err := NewEmulatedDisk(sm, clock)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := newTestDispatcher(t, Config{Backend: be, Clock: clock, InFlight: inflight})
		if err := Preload(context.Background(), d, trace); err != nil {
			t.Fatalf("Preload: %v", err)
		}
		d.Start(context.Background())
		if err := d.Drain(context.Background()); err != nil {
			t.Fatalf("Drain: %v", err)
		}

		recs := d.Records()
		if len(recs) != len(simOrder) {
			t.Fatalf("inflight %d: live served %d, sim served %d", inflight, len(recs), len(simOrder))
		}
		for i, rec := range recs {
			if rec.ID != simOrder[i] {
				t.Fatalf("inflight %d: dispatch order diverges at %d: live %d, sim %d",
					inflight, i, rec.ID, simOrder[i])
			}
		}
	}
}

func TestDispatcherBackpressure(t *testing.T) {
	gate := make(chan struct{})
	be := &fakeBackend{gate: gate}
	d, m := newTestDispatcher(t, Config{Backend: be, InFlight: 1, MaxQueue: 2})
	d.Start(context.Background())

	if err := d.Submit(context.Background(), reqAt(1, 100, 4096)); err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	waitFor(t, "first dispatch", func() bool { return m.Dispatched.Load() == 1 })
	if err := d.Submit(context.Background(), reqAt(2, 200, 4096)); err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	// Quota is now exhausted (one serving, one queued): the third submit
	// must block until a completion frees it.
	third := make(chan error, 1)
	go func() { third <- d.Submit(context.Background(), reqAt(3, 300, 4096)) }()
	waitFor(t, "backpressure wait", func() bool { return m.BackpressureWaits.Load() == 1 })
	select {
	case err := <-third:
		t.Fatalf("third Submit returned early: %v", err)
	default:
	}
	close(gate)
	if err := <-third; err != nil {
		t.Fatalf("third Submit after release: %v", err)
	}
	if err := d.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := m.Completed.Load(); got != 3 {
		t.Fatalf("Completed = %d, want 3", got)
	}
}

// TestDispatcherBackpressureSubmitCancel pins that a submitter blocked on
// the quota can bail out via its own context.
func TestDispatcherBackpressureSubmitCancel(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	be := &fakeBackend{gate: gate}
	d, m := newTestDispatcher(t, Config{Backend: be, InFlight: 1, MaxQueue: 1})
	d.Start(context.Background())
	if err := d.Submit(context.Background(), reqAt(1, 100, 4096)); err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	go func() { blocked <- d.Submit(ctx, reqAt(2, 200, 4096)) }()
	waitFor(t, "backpressure wait", func() bool { return m.BackpressureWaits.Load() == 1 })
	cancel()
	if err := <-blocked; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Submit = %v, want context.Canceled", err)
	}
	d.Stop()
}

func TestDispatcherStopAbandons(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	be := &fakeBackend{gate: gate}
	d, m := newTestDispatcher(t, Config{Backend: be, InFlight: 1})
	d.Start(context.Background())
	for i := 1; i <= 3; i++ {
		if err := d.Submit(context.Background(), reqAt(uint64(i), i*100, 4096)); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	// One request reaches the backend and parks on the gate; two stay
	// queued. Stop must cancel the former and account all three.
	waitFor(t, "dispatch", func() bool { return m.Dispatched.Load() == 1 })
	d.Stop()
	if got := m.Abandoned.Load(); got != 3 {
		t.Fatalf("Abandoned = %d, want 3", got)
	}
	if got := m.Completed.Load(); got != 0 {
		t.Fatalf("Completed = %d, want 0", got)
	}
	var abandoned int
	for _, rec := range d.Records() {
		if rec.Abandoned {
			abandoned++
		}
	}
	if abandoned != 1 {
		t.Fatalf("%d abandoned records, want 1 (the in-flight service)", abandoned)
	}
	// Stop is idempotent and the ingress stays shut.
	d.Stop()
	if err := d.Submit(context.Background(), reqAt(99, 0, 4096)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Stop = %v, want ErrClosed", err)
	}
}

func TestDispatcherDropLate(t *testing.T) {
	trace := []*core.Request{}
	for i := 1; i <= 8; i++ {
		r := reqAt(uint64(i), i*400, 4096)
		if i%2 == 0 {
			// The model clock is well past 1 µs by the time the loop runs.
			r.Deadline = 1
		}
		trace = append(trace, r)
	}
	// Dilation 100: the 1 ms warm-up below puts the model clock at ~100 ms —
	// past the 1 µs deadlines, far from the ~600 ms ones.
	clock, _ := NewClock(100)
	d, m := newTestDispatcher(t, Config{DropLate: true, Clock: clock})
	if err := Preload(context.Background(), d, trace); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	time.Sleep(time.Millisecond)
	d.Start(context.Background())
	if err := d.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := m.Dropped.Load(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	if got := m.Completed.Load(); got != 4 {
		t.Fatalf("Completed = %d, want 4", got)
	}
	for _, rec := range d.Records() {
		if want := rec.ID%2 == 0; rec.Dropped != want {
			t.Fatalf("request %d: dropped = %v, want %v", rec.ID, rec.Dropped, want)
		}
	}
}

func TestDispatcherHeadTracking(t *testing.T) {
	model := disk.MustModel(disk.QuantumXP32150Params())
	clock, _ := NewClock(50_000)
	be, _ := NewEmulatedDisk(disk.ServiceModel{Disk: model}, clock)
	d, m := newTestDispatcher(t, Config{Backend: be, Clock: clock, InFlight: 1})
	trace := []*core.Request{reqAt(1, 1000, 4096), reqAt(2, 3000, 4096), reqAt(3, 2000, 4096)}
	if err := Preload(context.Background(), d, trace); err != nil {
		t.Fatal(err)
	}
	d.Start(context.Background())
	if err := d.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Whatever order the scheduler chose, total travel is the sum of the
	// per-record head-to-target distances starting from cylinder 0.
	var travel int64
	head := 0
	for _, rec := range d.Records() {
		if rec.Head != head {
			t.Fatalf("record %d departs from head %d, dispatcher head was %d", rec.ID, rec.Head, head)
		}
		travel += int64(absInt(rec.Target - rec.Head))
		head = rec.Target
	}
	if d.HeadTravel() != travel {
		t.Fatalf("HeadTravel = %d, records sum to %d", d.HeadTravel(), travel)
	}
	if got := int64(m.HeadTravelCylinders.Load()); got != travel {
		t.Fatalf("HeadTravelCylinders = %d, want %d", got, travel)
	}
	if d.Head() != head {
		t.Fatalf("Head = %d, want %d", d.Head(), head)
	}
}
