package serve

import (
	"context"
	"testing"
	"time"

	"sfcsched/internal/disk"
)

func TestNewClockValidation(t *testing.T) {
	for _, d := range []float64{0, -1} {
		if _, err := NewClock(d); err == nil {
			t.Errorf("NewClock(%v) accepted an invalid dilation", d)
		}
	}
	c, err := NewClock(100)
	if err != nil {
		t.Fatalf("NewClock(100): %v", err)
	}
	if c.Dilation() != 100 {
		t.Fatalf("Dilation() = %v, want 100", c.Dilation())
	}
}

func TestClockWallConversion(t *testing.T) {
	cases := []struct {
		dilation float64
		model    int64
		want     time.Duration
	}{
		{1, 1_000_000, time.Second},             // real time
		{100, 1_000_000, 10 * time.Millisecond}, // compressed
		{0.5, 1_000_000, 2 * time.Second},       // stretched
		{100, 0, 0},
	}
	for _, tc := range cases {
		c, _ := NewClock(tc.dilation)
		if got := c.Wall(tc.model); got != tc.want {
			t.Errorf("dilation %v: Wall(%d) = %v, want %v", tc.dilation, tc.model, got, tc.want)
		}
	}
}

func TestClockNowAdvances(t *testing.T) {
	c, _ := NewClock(1000)
	t0 := c.Now()
	time.Sleep(2 * time.Millisecond)
	t1 := c.Now()
	// 2 ms wall at dilation 1000 is at least 2 s of model time; leave slack
	// for coarse clocks but require the dilated advance.
	if t1-t0 < 1_000_000 {
		t.Fatalf("model clock advanced %d µs over 2 ms wall at dilation 1000", t1-t0)
	}
}

func TestClockSleepUntilPastReturnsImmediately(t *testing.T) {
	c, _ := NewClock(1)
	done := make(chan error, 1)
	go func() { done <- c.SleepUntil(context.Background(), -1) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SleepUntil(past): %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("SleepUntil(past) blocked")
	}
}

func TestClockSleepCancel(t *testing.T) {
	c, _ := NewClock(0.001) // 1 model µs costs 1 wall ms: a long sleep
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.SleepFor(ctx, 60_000_000) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled SleepFor returned nil")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled SleepFor did not return")
	}
}

func TestEmulatedDiskMatchesServiceModel(t *testing.T) {
	model := disk.MustModel(disk.QuantumXP32150Params())
	sm := disk.ServiceModel{Disk: model}
	clock, _ := NewClock(100_000) // model time nearly free in wall time
	be, err := NewEmulatedDisk(sm, clock)
	if err != nil {
		t.Fatalf("NewEmulatedDisk: %v", err)
	}
	if be.Cylinders() != model.Cylinders {
		t.Fatalf("Cylinders() = %d, want %d", be.Cylinders(), model.Cylinders)
	}
	r := reqAt(7, 2048, 65536)
	comp, err := be.Serve(context.Background(), r, 100)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	seek, svc := sm.Times(100, 2048, 65536, nil)
	if comp.Seek != seek || comp.Service != svc {
		t.Fatalf("Serve = %+v, want seek %d service %d", comp, seek, svc)
	}
	// Out-of-range targets clamp to the geometry like the simulator's
	// stations.
	comp, err = be.Serve(context.Background(), reqAt(8, model.Cylinders+50, 4096), 0)
	if err != nil {
		t.Fatalf("Serve(clamped): %v", err)
	}
	seek, svc = sm.Times(0, model.Cylinders-1, 4096, nil)
	if comp.Seek != seek || comp.Service != svc {
		t.Fatalf("clamped Serve = %+v, want seek %d service %d", comp, seek, svc)
	}
}

func TestEmulatedDiskCancel(t *testing.T) {
	model := disk.MustModel(disk.QuantumXP32150Params())
	clock, _ := NewClock(0.001)
	be, _ := NewEmulatedDisk(disk.ServiceModel{Disk: model}, clock)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := be.Serve(ctx, reqAt(1, 3000, 65536), 0)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled Serve returned nil")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled Serve did not return")
	}
}

func TestEmulatedDiskValidation(t *testing.T) {
	model := disk.MustModel(disk.QuantumXP32150Params())
	clock, _ := NewClock(1)
	if _, err := NewEmulatedDisk(disk.ServiceModel{Disk: model}, nil); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewEmulatedDisk(disk.ServiceModel{}, clock); err == nil {
		t.Error("empty service model accepted")
	}
}
