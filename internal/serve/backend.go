package serve

import (
	"context"
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
)

// Completion reports what one backend service cost, in model microseconds.
type Completion struct {
	// Seek is the head-positioning component of the service.
	Seek int64
	// Service is the total service time (seek + rotation + transfer, or
	// whatever the backend's policy charges).
	Service int64
}

// Backend executes one request with the head at the given cylinder and
// returns its cost. Serve blocks for however long the service takes on
// this backend's clock and must return promptly (with ctx.Err) when ctx is
// canceled. Serve is called concurrently up to the dispatcher's in-flight
// bound.
type Backend interface {
	// Serve executes r with the head currently at cylinder head.
	Serve(ctx context.Context, r *core.Request, head int) (Completion, error)
	// Cylinders returns the cylinder count targets are clamped to, or 0
	// when the backend has no geometry (fixed-service backends).
	Cylinders() int
}

// EmulatedDisk is a Backend that charges the analytical disk model
// (disk.ServiceModel — the same code path the simulator's stations use) by
// sleeping the dilated wall-clock equivalent of each service. Rotational
// latency is always the deterministic average: a wall-clock run has real
// jitter of its own, and keeping the model side deterministic is what lets
// Calibrate attribute any divergence to the serving path rather than to
// RNG draw-order differences.
type EmulatedDisk struct {
	model disk.ServiceModel
	clock *Clock
}

// NewEmulatedDisk validates the service model and binds it to a clock.
func NewEmulatedDisk(m disk.ServiceModel, c *Clock) (*EmulatedDisk, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("serve: emulated disk requires a clock")
	}
	return &EmulatedDisk{model: m, clock: c}, nil
}

// Cylinders returns the disk geometry's cylinder count (0 for a diskless
// fixed-service model).
func (e *EmulatedDisk) Cylinders() int { return e.model.Cylinders() }

// Serve charges the model's service time for r by sleeping it out on the
// emulated disk's dilated clock.
func (e *EmulatedDisk) Serve(ctx context.Context, r *core.Request, head int) (Completion, error) {
	seek, svc := e.model.Times(head, clampCyl(r.Cylinder, e.Cylinders()), r.Size, nil)
	if err := e.clock.SleepFor(ctx, svc); err != nil {
		return Completion{}, err
	}
	return Completion{Seek: seek, Service: svc}, nil
}

// clampCyl clamps a target cylinder into [0, cylinders); cylinders <= 0
// means no geometry and leaves the target untouched.
func clampCyl(cyl, cylinders int) int {
	if cylinders <= 0 {
		return cyl
	}
	if cyl < 0 {
		return 0
	}
	if cyl >= cylinders {
		return cylinders - 1
	}
	return cyl
}
