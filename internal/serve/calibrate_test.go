package serve

import (
	"context"
	"math"
	"testing"

	"sfcsched/internal/disk"
	"sfcsched/internal/workload"
)

// TestCalibrateExactOrderPreloaded is the calibration half of the
// exact-order acceptance pin: a preloaded arrival-at-zero trace must score
// a perfect order correlation, full alignment, and identical head travel —
// the live run made exactly the dispatch decisions the simulator
// predicted, so every residual is timing.
func TestCalibrateExactOrderPreloaded(t *testing.T) {
	trace := zeroArrivalTrace(96)
	cal, err := Calibrate(context.Background(), CalibrationConfig{
		Sched:    serveConfig(),
		Shards:   8,
		Service:  disk.ServiceModel{Disk: disk.MustModel(disk.QuantumXP32150Params())},
		Dilation: 20_000,
		InFlight: 1,
		Preload:  true,
	}, trace)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if !cal.OrderExact {
		t.Errorf("OrderExact = false on a preloaded contention-free run")
	}
	if cal.SimServed != len(trace) || cal.LiveServed != len(trace) || cal.Aligned != len(trace) {
		t.Errorf("served sim %d live %d aligned %d, want all %d",
			cal.SimServed, cal.LiveServed, cal.Aligned, len(trace))
	}
	if cal.OrderPearson != 1 {
		t.Errorf("OrderPearson = %v, want 1", cal.OrderPearson)
	}
	if cal.LiveHeadTravel != cal.SimHeadTravel {
		t.Errorf("head travel diverged: live %d, sim %d (identical dispatch order must travel identically)",
			cal.LiveHeadTravel, cal.SimHeadTravel)
	}
	if math.IsNaN(cal.LatencyMAPE) || cal.LatencyMAPE < 0 {
		t.Errorf("LatencyMAPE = %v, want a finite non-negative score", cal.LatencyMAPE)
	}
	if cal.SimMakespan <= 0 || cal.LiveMakespan <= 0 {
		t.Errorf("makespans sim %d live %d, want positive", cal.SimMakespan, cal.LiveMakespan)
	}
	if delta := cal.HeadTravelDelta(); delta != 0 {
		t.Errorf("HeadTravelDelta = %v, want 0", delta)
	}
}

// TestCalibrateReplay runs the realistic mode: spread arrivals replayed on
// the dilated clock. Order and latency are allowed to drift (that is the
// point of the measurement) but every request must be served on both sides
// and the scores must be sane.
func TestCalibrateReplay(t *testing.T) {
	trace := workload.Open{
		Seed: 42, Count: 120, MeanInterarrival: 4_000,
		Dims: 1, Levels: 8,
		DeadlineMin: 400_000, DeadlineMax: 700_000,
		Cylinders: 3832, Size: 65536,
	}.MustGenerate()
	cm := &CalibMetrics{}
	cal, err := Calibrate(context.Background(), CalibrationConfig{
		Sched:    serveConfig(),
		Shards:   8,
		Service:  disk.ServiceModel{Disk: disk.MustModel(disk.QuantumXP32150Params())},
		Dilation: 50,
		InFlight: 1,
		Calib:    cm,
	}, trace)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if cal.SimServed != len(trace) || cal.LiveServed != len(trace) || cal.Aligned != len(trace) {
		t.Fatalf("served sim %d live %d aligned %d, want all %d",
			cal.SimServed, cal.LiveServed, cal.Aligned, len(trace))
	}
	if math.IsNaN(cal.LatencyMAPE) || cal.LatencyMAPE < 0 {
		t.Errorf("LatencyMAPE = %v, want a finite non-negative score", cal.LatencyMAPE)
	}
	// The workload overloads the disk (4 ms arrivals vs ~15 ms services),
	// so the queue order dominates and the rank correlation must be
	// strongly positive even under wall-clock jitter.
	if math.IsNaN(cal.OrderPearson) || cal.OrderPearson < 0.5 {
		t.Errorf("OrderPearson = %v, want >= 0.5", cal.OrderPearson)
	}
	if cal.Wall <= 0 {
		t.Errorf("Wall = %v, want positive", cal.Wall)
	}
	if cm.Runs.Load() != 1 {
		t.Errorf("calib Runs = %d, want 1", cm.Runs.Load())
	}
	if got := int(cm.AlignedRequests.Load()); got != cal.Aligned {
		t.Errorf("calib AlignedRequests = %d, want %d", got, cal.Aligned)
	}
	if cm.OrderPearsonPpm.Load() < 500_000 {
		t.Errorf("OrderPearsonPpm = %d, want >= 500000", cm.OrderPearsonPpm.Load())
	}
}

func TestCalibrateValidation(t *testing.T) {
	sm := disk.ServiceModel{Disk: disk.MustModel(disk.QuantumXP32150Params())}
	trace := zeroArrivalTrace(4)
	if _, err := Calibrate(context.Background(), CalibrationConfig{
		Sched: serveConfig(), Service: sm, Dilation: 0,
	}, trace); err == nil {
		t.Error("zero dilation accepted")
	}
	if _, err := Calibrate(context.Background(), CalibrationConfig{
		Sched: serveConfig(), Service: sm, Dilation: 100, Preload: true, MaxQueue: 2,
	}, trace); err == nil {
		t.Error("preload larger than the queue bound accepted")
	}
	if _, err := Calibrate(context.Background(), CalibrationConfig{
		Sched: serveConfig(), Service: disk.ServiceModel{}, Dilation: 100,
	}, trace); err == nil {
		t.Error("empty service model accepted")
	}
}
