package serve

import "sfcsched/internal/obs"

// Metrics aggregates the serving layer's observability counters, exported
// under the sfcsched_serve_* prefix. Every Dispatcher reports into
// DefaultMetrics unless Config.Metrics overrides it, mirroring the
// core.Metrics wiring.
type Metrics struct {
	// Submitted counts requests accepted into the scheduler by Submit.
	Submitted obs.Counter
	// Rejected counts submissions refused because the ingress was closed.
	Rejected obs.Counter
	// Dispatched counts requests the dispatch loop handed to the backend
	// (plus drops: every dequeue is a dispatch decision).
	Dispatched obs.Counter
	// Completed counts services the backend finished successfully.
	Completed obs.Counter
	// Dropped counts requests discarded at dispatch because their deadline
	// had already passed (Config.DropLate).
	Dropped obs.Counter
	// Abandoned counts requests whose service was cut short by Stop or
	// context cancellation, plus requests still queued at Stop.
	Abandoned obs.Counter
	// BackpressureWaits counts Submit calls that blocked on the MaxQueue
	// quota before entering the scheduler.
	BackpressureWaits obs.Counter
	// Drains counts completed graceful shutdowns.
	Drains obs.Counter
	// HeadTravelCylinders accumulates emulated head movement.
	HeadTravelCylinders obs.Counter
	// InFlight is the number of services currently running on the backend.
	InFlight obs.Gauge
	// ModelLatency is the distribution of arrival-to-completion time on the
	// model clock, microseconds — directly comparable with the simulator's
	// response times.
	ModelLatency obs.Histogram
	// WallService is the distribution of wall-clock time spent per backend
	// service, microseconds: what the dilated sleep actually cost.
	WallService obs.Histogram
}

// DefaultMetrics is the process-wide aggregate every Dispatcher reports
// into unless overridden via Config.Metrics.
var DefaultMetrics = &Metrics{}

// Register registers every field of m under prefix (conventionally
// "sfcsched_serve") in reg.
func (m *Metrics) Register(reg *obs.Registry, prefix string) error {
	type entry struct {
		name, help string
		v          any
	}
	for _, e := range []entry{
		{"submitted", "requests accepted into the serving scheduler", &m.Submitted},
		{"rejected", "submissions refused by a closed ingress", &m.Rejected},
		{"dispatched", "dispatch decisions (services plus drops)", &m.Dispatched},
		{"completed", "services completed by the backend", &m.Completed},
		{"dropped", "requests dropped at dispatch past their deadline", &m.Dropped},
		{"abandoned", "requests abandoned by Stop or cancellation", &m.Abandoned},
		{"backpressure_waits", "Submit calls that blocked on the queue quota", &m.BackpressureWaits},
		{"drains", "completed graceful shutdowns", &m.Drains},
		{"head_travel_cylinders", "cumulative emulated head movement", &m.HeadTravelCylinders},
		{"inflight", "services currently running on the backend", &m.InFlight},
		{"model_latency_us", "arrival-to-completion time on the model clock, microseconds", &m.ModelLatency},
		{"wall_service_us", "wall-clock time per backend service, microseconds", &m.WallService},
	} {
		if err := reg.Register(prefix+"_"+e.name, e.help, e.v); err != nil {
			return err
		}
	}
	return nil
}

// MustRegister is Register for static wiring.
func (m *Metrics) MustRegister(reg *obs.Registry, prefix string) {
	if err := m.Register(reg, prefix); err != nil {
		panic(err)
	}
}

// CalibMetrics exposes the latest calibration scores under the
// sfcsched_calib_* prefix. Scores are float ratios stored in gauges as
// parts per million (the obs gauges are integral): 1_000_000 ppm = a MAPE
// of 100% or a correlation of 1.0.
type CalibMetrics struct {
	// Runs counts completed calibration runs.
	Runs obs.Counter
	// AlignedRequests counts requests matched between the simulated and
	// live records across all runs.
	AlignedRequests obs.Counter
	// LatencyMAPEPpm is the last run's per-request latency MAPE, ppm
	// (1e6 = 100%). -1 when the score was undefined.
	LatencyMAPEPpm obs.Gauge
	// OrderPearsonPpm is the last run's Pearson correlation between
	// simulated and live dispatch ranks, ppm (1e6 = r of 1.0). -2e6 when
	// the score was undefined.
	OrderPearsonPpm obs.Gauge
	// HeadTravelDeltaPpm is the last run's live-vs-sim head-travel
	// difference relative to sim, ppm.
	HeadTravelDeltaPpm obs.Gauge
}

// DefaultCalibMetrics is the process-wide aggregate Calibrate reports into
// unless overridden via CalibrationConfig.CalibMetrics.
var DefaultCalibMetrics = &CalibMetrics{}

// Register registers every field of m under prefix (conventionally
// "sfcsched_calib") in reg.
func (m *CalibMetrics) Register(reg *obs.Registry, prefix string) error {
	type entry struct {
		name, help string
		v          any
	}
	for _, e := range []entry{
		{"runs", "completed calibration runs", &m.Runs},
		{"aligned_requests", "requests matched between sim and live records", &m.AlignedRequests},
		{"latency_mape_ppm", "last run's per-request latency MAPE, ppm (1e6 = 100%)", &m.LatencyMAPEPpm},
		{"order_pearson_ppm", "last run's dispatch-order Pearson r, ppm (1e6 = 1.0)", &m.OrderPearsonPpm},
		{"head_travel_delta_ppm", "last run's (live-sim)/sim head-travel delta, ppm", &m.HeadTravelDeltaPpm},
	} {
		if err := reg.Register(prefix+"_"+e.name, e.help, e.v); err != nil {
			return err
		}
	}
	return nil
}

// MustRegister is Register for static wiring.
func (m *CalibMetrics) MustRegister(reg *obs.Registry, prefix string) {
	if err := m.Register(reg, prefix); err != nil {
		panic(err)
	}
}
