// Package serve lifts the Cascaded-SFC scheduler out of the simulator's
// virtual clock and stands it up as a real concurrent service: goroutines
// submit requests into a core.ShardedScheduler, a dispatcher pops them in
// characterization-value order and executes each against a pluggable
// Backend on the wall clock.
//
// The layer split is policy / clock / backend:
//
//   - Policy: core.ShardedScheduler — the identical scheduler code the
//     simulator drives, fed concurrently instead of from an event loop.
//   - Clock: Clock — wall time scaled by a dilation factor into the model's
//     microsecond timeline, so a 65-second workload can be served in under
//     a second (or stretched out for debugging) without touching policy or
//     backend code.
//   - Backend: Backend — what a service physically costs. EmulatedDisk
//     charges the Table 1 disk model (the same disk.ServiceModel the
//     simulator's stations use) by sleeping the scaled real time; a
//     file- or blockdev-backed implementation slots in behind the same
//     interface.
//
// The package closes the observe-predict-calibrate loop: Calibrate feeds
// one request stream through sim.Run and through the live dispatcher,
// aligns the per-request records, and scores how well the simulator
// predicts real service behavior (per-request latency MAPE, Pearson
// correlation on dispatch order, head-travel delta). The simulator thereby
// becomes a measurable capacity-planning tool for the serving path rather
// than an article of faith.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// Clock maps the wall clock onto the model's microsecond timeline. A
// dilation factor of d means one wall-clock second covers d seconds of
// model time: d > 1 compresses (a calibration run finishes quickly),
// d = 1 serves in real time, d < 1 stretches (useful when watching a run
// live). The zero value is invalid; use NewClock.
type Clock struct {
	start    time.Time
	dilation float64
}

// NewClock starts a clock at model time 0 with the given dilation factor.
func NewClock(dilation float64) (*Clock, error) {
	if !(dilation > 0) {
		return nil, fmt.Errorf("serve: dilation factor must be positive, got %v", dilation)
	}
	return &Clock{start: time.Now(), dilation: dilation}, nil
}

// Dilation returns the model-seconds-per-wall-second factor.
func (c *Clock) Dilation() float64 { return c.dilation }

// Now returns the current model time in microseconds.
func (c *Clock) Now() int64 {
	return int64(float64(time.Since(c.start).Microseconds()) * c.dilation)
}

// Wall converts a model duration (µs) into the wall-clock duration that
// represents it under the dilation factor.
func (c *Clock) Wall(modelMicros int64) time.Duration {
	return time.Duration(float64(modelMicros) / c.dilation * float64(time.Microsecond))
}

// SleepUntil blocks until the clock reads at least model time t, or ctx is
// done. Times already in the past return immediately.
func (c *Clock) SleepUntil(ctx context.Context, t int64) error {
	return c.sleep(ctx, time.Until(c.start.Add(c.Wall(t))))
}

// SleepFor blocks for the wall-time equivalent of the model duration d,
// or until ctx is done.
func (c *Clock) SleepFor(ctx context.Context, d int64) error {
	return c.sleep(ctx, c.Wall(d))
}

// spinTail is the final stretch of every sleep served by yield-spinning
// instead of a timer. Sub-millisecond timer wakeups overshoot by ~1 ms on
// 1000 Hz kernels, and the dilation factor multiplies that overshoot into
// model time (1 ms wall at 200× is 200 ms of model error — enough to flip
// deadline outcomes). Spinning the tail trades a bounded sliver of CPU for
// tens-of-microseconds accuracy; ctx stays responsive throughout.
const spinTail = 1500 * time.Microsecond

func (c *Clock) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	deadline := time.Now().Add(d)
	if d > spinTail {
		timer := time.NewTimer(d - spinTail)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
	}
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		runtime.Gosched()
	}
	return nil
}
