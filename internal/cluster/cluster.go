// Package cluster simulates a multi-array storage cluster: N striped
// arrays (nodes) behind a pluggable routing policy and per-class
// admission control, every request tagged with a tenant and an SLO
// class. It is the fleet-level layer above sim.Engine — the "scalable"
// half of Scalable Multimedia Disk Scheduling — where policy choice
// shows up as per-class deadline losses, latency percentiles and
// cross-tenant fairness rather than per-disk seek time.
//
// # Topology and addressing
//
// The cluster is one sim.Engine whose stations are the member disks of
// every node: station ID = node·DisksPerNode + member, so at each event
// time idle disks dispatch in (node, member) order and the engine's
// (time, seq) determinism carries over unchanged. Requests address a
// flat logical block space of Nodes × DisksPerNode × Cylinders blocks
// (workload.Open with Cylinders = MaxBlocks). Admission and routing
// happen in the engine's delivery callback — the router hook on enqueue
// — then the block maps onto the routed node's stripe: member =
// block % DisksPerNode, cylinder = block / DisksPerNode. One physical
// op serves one request; RAID-5 parity fan-out stays in sim.RunArray.
//
// # Determinism
//
// Routing reads queue depths at the arrival instant, which the engine
// orders deterministically; admission is exact integer token
// arithmetic; the rotational-latency RNG is drawn in station-index
// dispatch order. Identical configurations therefore replay
// byte-identically, including across runner.Map worker counts — pinned
// by the cross-worker CSV tests and FuzzClusterDeterminism.
package cluster

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/metrics"
	"sfcsched/internal/obs"
	"sfcsched/internal/sched"
	"sfcsched/internal/sim"
	"sfcsched/internal/stats"
)

// Config describes one cluster run.
type Config struct {
	// Nodes is the number of arrays; DisksPerNode the striped member
	// disks per array (1 = a cluster of single disks).
	Nodes        int
	DisksPerNode int
	// Disk models every member disk. Required.
	Disk *disk.Model
	// NewScheduler builds the queue discipline of member disk member of
	// node node. Required.
	NewScheduler func(node, member int) (sched.Scheduler, error)
	// Router picks a node per admitted request; nil defaults to
	// round-robin.
	Router Router
	// Admission rules on each arrival; nil defaults to AlwaysAdmit.
	Admission Admitter
	// Classes is the number of SLO classes accounted. Zero infers the
	// highest class present in the trace.
	Classes int

	// Seed drives rotational-latency sampling (SampleRotation).
	Seed           uint64
	DropLate       bool
	SampleRotation bool
	// Dims and Levels size the per-disk collectors; zero infers from the
	// trace.
	Dims   int
	Levels int
	// Trace, when non-nil, receives every physical dispatch with DiskID
	// set to the global member index (node·DisksPerNode + member).
	Trace func(sim.TraceEvent)
	// Telemetry, when non-nil, samples every member station.
	Telemetry *sim.Telemetry
	// Metrics overrides the process-wide DefaultMetrics aggregate.
	Metrics *Metrics
}

// MaxBlocks returns the cluster's logical block capacity. Workloads
// address blocks in [0, MaxBlocks); out-of-range blocks clamp.
func (c Config) MaxBlocks() int {
	return c.Nodes * c.DisksPerNode * c.Disk.Cylinders
}

func (c Config) validate() error {
	if c.Nodes < 1 || c.DisksPerNode < 1 {
		return fmt.Errorf("cluster: need Nodes >= 1 and DisksPerNode >= 1, got %d×%d", c.Nodes, c.DisksPerNode)
	}
	if c.Disk == nil {
		return fmt.Errorf("cluster: Disk model is required")
	}
	if c.NewScheduler == nil {
		return fmt.Errorf("cluster: NewScheduler is required")
	}
	if c.Classes < 0 {
		return fmt.Errorf("cluster: Classes must be non-negative, got %d", c.Classes)
	}
	return nil
}

// ClassStats is the per-SLO-class ledger of one run. Every arrival lands
// in exactly one of AdmitDropped, DispatchDropped or Served (+Late marks
// served-but-late starts when DropLate is off).
type ClassStats struct {
	Class int
	// Arrived counts arrivals of this class; Admitted those past
	// admission control.
	Arrived  uint64
	Admitted uint64
	// AdmitDropped counts admission rejections; DispatchDropped deadline
	// drops at dispatch time (DropLate).
	AdmitDropped    uint64
	DispatchDropped uint64
	// Served counts completions; Late services that started past their
	// deadline (only without DropLate).
	Served uint64
	Late   uint64
	// Latency is the completion-latency distribution (completion −
	// arrival, µs) of served requests. Percentiles via Quantiles.
	Latency obs.Histogram
	// LatencySum is the exact sum of those latencies, µs, for mean
	// latency without bucketing error: LatencySum / Served.
	LatencySum int64
}

// LossRate returns the fraction of this class's arrivals that missed
// their SLO: rejected at admission, dropped at dispatch, or started
// late.
func (c *ClassStats) LossRate() float64 {
	if c.Arrived == 0 {
		return 0
	}
	return float64(c.AdmitDropped+c.DispatchDropped+c.Late) / float64(c.Arrived)
}

// NodeStats aggregates one node's activity over its member disks.
type NodeStats struct {
	Node int
	// Routed counts requests the router sent here; Served and Dropped
	// their dispatch outcomes.
	Routed  uint64
	Served  uint64
	Dropped uint64
	// SeekTime and BusyTime sum the member disks' seek and total service
	// time, µs. HeadTravel sums cylinders traveled.
	SeekTime   int64
	BusyTime   int64
	HeadTravel int64
}

// TenantStats is one tenant's goodput ledger.
type TenantStats struct {
	Tenant   int
	Arrived  uint64
	Admitted uint64
	Served   uint64
}

// Result is the outcome of a cluster run.
type Result struct {
	// PerClass has one entry per SLO class, indexed by class.
	PerClass []*ClassStats
	// PerNode has one entry per node, indexed by node ID.
	PerNode []NodeStats
	// Tenants has one entry per tenant ID in [0, maxTenant]; tenants
	// that never arrived have zero ledgers.
	Tenants []TenantStats
	// PerDisk holds each member disk's physical collector, indexed by
	// global member index.
	PerDisk []*metrics.Collector
	// Makespan is the completion time of the run, µs.
	Makespan int64
	// Router and Admission echo the policies' names.
	Router    string
	Admission string
}

// Jain returns the Jain fairness index over per-tenant goodput ratios
// (served/arrived): (Σx)² / (n·Σx²), 1 when every tenant with traffic
// got the same fraction of its requests served, approaching 1/n when one
// tenant took everything. Runs with fewer than two active tenants score
// 1 by convention.
func (r *Result) Jain() float64 {
	var sum, sumSq float64
	n := 0
	for _, t := range r.Tenants {
		if t.Arrived == 0 {
			continue
		}
		x := float64(t.Served) / float64(t.Arrived)
		sum += x
		sumSq += x * x
		n++
	}
	if n < 2 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// Run simulates trace (sorted by arrival time) on the cluster. The trace
// is read-only: physical ops are per-request copies carrying the mapped
// member cylinder, so one generated trace can back any number of cells.
func Run(cfg Config, trace []*core.Request) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	router := cfg.Router
	if router == nil {
		router = &RoundRobin{}
	}
	admit := cfg.Admission
	if admit == nil {
		admit = AlwaysAdmit{}
	}
	m := cfg.Metrics
	if m == nil {
		m = DefaultMetrics
	}
	dims, levels, classes, maxTenant := inferShapes(cfg, trace)

	dpn := cfg.DisksPerNode
	blocksPerNode := dpn * cfg.Disk.Cylinders
	nDisks := cfg.Nodes * dpn
	stations := make([]*sim.Station, nDisks)
	perDisk := make([]*metrics.Collector, nDisks)
	nodes := make([]*Node, cfg.Nodes)
	for n := range nodes {
		nodes[n] = &Node{ID: n, Blocks: blocksPerNode, stations: make([]*sim.Station, dpn)}
		for d := 0; d < dpn; d++ {
			s, err := cfg.NewScheduler(n, d)
			if err != nil {
				return nil, fmt.Errorf("cluster: node %d disk %d: %w", n, d, err)
			}
			id := n*dpn + d
			col := metrics.NewCollector(dims, levels)
			st := &sim.Station{
				ID:             id,
				Sched:          s,
				Disk:           cfg.Disk,
				Col:            col,
				SampleRotation: cfg.SampleRotation,
			}
			stations[id] = st
			perDisk[id] = col
			nodes[n].stations[d] = st
		}
	}

	res := &Result{
		PerClass:  make([]*ClassStats, classes),
		PerNode:   make([]NodeStats, cfg.Nodes),
		Tenants:   make([]TenantStats, maxTenant+1),
		PerDisk:   perDisk,
		Router:    router.Name(),
		Admission: admit.Name(),
	}
	for c := range res.PerClass {
		res.PerClass[c] = &ClassStats{Class: c}
	}
	for n := range res.PerNode {
		res.PerNode[n].Node = n
	}
	for t := range res.Tenants {
		res.Tenants[t].Tenant = t
	}

	eng := &sim.Engine{
		Stations:  stations,
		DropLate:  cfg.DropLate,
		RNG:       stats.NewRNG(cfg.Seed),
		Trace:     cfg.Trace,
		Telemetry: cfg.Telemetry,
	}
	eng.OnServed = func(st *sim.Station, r *core.Request, now int64) {
		cs := res.PerClass[r.Class]
		cs.Served++
		lat := now - r.Arrival
		if lat < 0 {
			lat = 0
		}
		cs.Latency.Observe(uint64(lat))
		cs.LatencySum += lat
		res.PerNode[st.ID/dpn].Served++
		res.Tenants[r.Tenant].Served++
		m.Served.Inc()
		m.LatencyUS.Observe(uint64(lat))
	}
	eng.OnDropped = func(st *sim.Station, r *core.Request, now int64) {
		res.PerClass[r.Class].DispatchDropped++
		res.PerNode[st.ID/dpn].Dropped++
		m.DispatchDropped.Inc()
	}
	eng.OnLateStart = func(st *sim.Station, r *core.Request, now int64) {
		res.PerClass[r.Class].Late++
		m.LateStarts.Inc()
	}

	res.Makespan = eng.Run(trace, func(r *core.Request, now int64) {
		class := clampInt(r.Class, classes)
		cs := res.PerClass[class]
		cs.Arrived++
		ten := &res.Tenants[clampInt(r.Tenant, len(res.Tenants))]
		ten.Arrived++
		m.Arrivals.Inc()
		if !admit.Admit(class, now) {
			cs.AdmitDropped++
			m.AdmitDropped.Inc()
			return
		}
		cs.Admitted++
		ten.Admitted++
		n := clampInt(router.Route(r, nodes, now), cfg.Nodes)
		res.PerNode[n].Routed++
		m.Routed.Inc()
		m.NodeDepthMax.Observe(int64(nodes[n].Depth()))

		block := clampInt(r.Cylinder, cfg.MaxBlocks()) % blocksPerNode
		st := stations[n*dpn+block%dpn]
		phys := &core.Request{
			ID: r.ID, Priorities: r.Priorities, Deadline: r.Deadline,
			Cylinder: block / dpn, Size: r.Size, Arrival: r.Arrival,
			Write: r.Write, Value: r.Value,
			Tenant: clampInt(r.Tenant, len(res.Tenants)), Class: class,
		}
		st.Col.OnArrival(phys)
		st.Enqueue(phys, now)
	})

	for i, st := range stations {
		ns := &res.PerNode[i/dpn]
		ns.SeekTime += st.Col.SeekTime
		ns.BusyTime += st.Col.ServiceTime
		ns.HeadTravel += st.HeadTravel()
	}
	return res, nil
}

// MustRun is Run for static configurations.
func MustRun(cfg Config, trace []*core.Request) *Result {
	res, err := Run(cfg, trace)
	if err != nil {
		panic(err)
	}
	return res
}

// inferShapes fills zero Dims/Levels/Classes from the trace and finds the
// highest tenant ID, so per-class and per-tenant ledgers are sized before
// the run starts.
func inferShapes(cfg Config, trace []*core.Request) (dims, levels, classes, maxTenant int) {
	dims, levels, classes = cfg.Dims, cfg.Levels, cfg.Classes
	for _, r := range trace {
		if cfg.Dims == 0 && len(r.Priorities) > dims {
			dims = len(r.Priorities)
		}
		if cfg.Levels == 0 {
			for _, p := range r.Priorities {
				if p+1 > levels {
					levels = p + 1
				}
			}
		}
		if cfg.Classes == 0 && r.Class+1 > classes {
			classes = r.Class + 1
		}
		if r.Tenant > maxTenant {
			maxTenant = r.Tenant
		}
	}
	if levels < 1 {
		levels = 1
	}
	if classes < 1 {
		classes = 1
	}
	return dims, levels, classes, maxTenant
}

// clampInt clamps v to [0, n).
func clampInt(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
