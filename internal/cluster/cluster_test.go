package cluster

import (
	"testing"

	"sfcsched/internal/core"
	"sfcsched/internal/disk"
	"sfcsched/internal/obs"
	"sfcsched/internal/sched"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

func testDisk(t testing.TB) *disk.Model {
	t.Helper()
	m, err := disk.NewModel(disk.QuantumXP32150Params())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testConfig(t testing.TB, nodes, dpn int) Config {
	return Config{
		Nodes: nodes, DisksPerNode: dpn, Disk: testDisk(t),
		NewScheduler: func(int, int) (sched.Scheduler, error) { return sched.NewSCANEDF(50_000), nil },
		DropLate:     true,
		Seed:         7,
		Metrics:      &Metrics{},
	}
}

func testTrace(t testing.TB, cfg Config, seed uint64, count int, inter int64, skew float64) []*core.Request {
	t.Helper()
	reqs, err := workload.Open{
		Seed: seed, Count: count, MeanInterarrival: inter,
		Dims: 1, Levels: 4,
		DeadlineMin: 100_000, DeadlineMax: 400_000,
		Cylinders: cfg.MaxBlocks(), Size: 64 << 10,
		Tenants: 8, TenantSkew: skew, Classes: 3, TenantZones: true,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// Every arrival must land in exactly one outcome bucket of its class, and
// the per-class, per-node and per-disk ledgers must tie out against each
// other and the trace.
func TestClusterAccountingInvariants(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	tb, err := NewTokenBucket(3, 120, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Admission = tb
	trace := testTrace(t, cfg, 11, 4000, 2000, 1.2)
	res := MustRun(cfg, trace)

	var arrived, admitted, admitDropped, served, dispatchDropped uint64
	for _, cs := range res.PerClass {
		if cs.Arrived != cs.Admitted+cs.AdmitDropped {
			t.Errorf("class %d: arrived %d != admitted %d + admit-dropped %d",
				cs.Class, cs.Arrived, cs.Admitted, cs.AdmitDropped)
		}
		if cs.Admitted != cs.Served+cs.DispatchDropped {
			t.Errorf("class %d: admitted %d != served %d + dispatch-dropped %d",
				cs.Class, cs.Admitted, cs.Served, cs.DispatchDropped)
		}
		if cs.Latency.Count() != cs.Served {
			t.Errorf("class %d: %d latency observations for %d served",
				cs.Class, cs.Latency.Count(), cs.Served)
		}
		arrived += cs.Arrived
		admitted += cs.Admitted
		admitDropped += cs.AdmitDropped
		served += cs.Served
		dispatchDropped += cs.DispatchDropped
	}
	if arrived != uint64(len(trace)) {
		t.Errorf("classes saw %d arrivals, trace has %d", arrived, len(trace))
	}
	if admitDropped == 0 {
		t.Error("token bucket at 120 req/s per class against this load never rejected — test is not exercising admission")
	}

	var routed, nodeServed, nodeDropped uint64
	for _, ns := range res.PerNode {
		routed += ns.Routed
		nodeServed += ns.Served
		nodeDropped += ns.Dropped
	}
	if routed != admitted {
		t.Errorf("nodes saw %d routed, classes admitted %d", routed, admitted)
	}
	if nodeServed != served || nodeDropped != dispatchDropped {
		t.Errorf("node outcomes (%d served, %d dropped) disagree with class outcomes (%d, %d)",
			nodeServed, nodeDropped, served, dispatchDropped)
	}

	var diskServed uint64
	for _, col := range res.PerDisk {
		diskServed += col.Served
	}
	if diskServed != served {
		t.Errorf("disks served %d, classes say %d", diskServed, served)
	}

	var tenantArrived, tenantServed uint64
	for _, ts := range res.Tenants {
		tenantArrived += ts.Arrived
		tenantServed += ts.Served
	}
	if tenantArrived != arrived || tenantServed != served {
		t.Errorf("tenant ledger (%d arrived, %d served) disagrees with class ledger (%d, %d)",
			tenantArrived, tenantServed, arrived, served)
	}
}

// Identical configurations must replay identically: scalar ledgers,
// makespan and latency percentiles.
func TestClusterDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := testConfig(t, 3, 2)
		cfg.Router = &RoundRobin{}
		cfg.SampleRotation = true
		return MustRun(cfg, testTrace(t, cfg, 5, 2000, 3000, 1.0))
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %d vs %d", a.Makespan, b.Makespan)
	}
	for c := range a.PerClass {
		x, y := a.PerClass[c], b.PerClass[c]
		if x.Served != y.Served || x.DispatchDropped != y.DispatchDropped {
			t.Fatalf("class %d outcomes differ", c)
		}
		qx := x.Latency.Quantiles(0.5, 0.99)
		qy := y.Latency.Quantiles(0.5, 0.99)
		if qx[0] != qy[0] || qx[1] != qy[1] {
			t.Fatalf("class %d latency percentiles differ", c)
		}
	}
	if a.Jain() != b.Jain() {
		t.Fatalf("fairness differs: %v vs %v", a.Jain(), b.Jain())
	}
}

// Round-robin must spread admitted requests evenly; affinity must send
// every request to the node owning its block range.
func TestClusterRoutingPlacement(t *testing.T) {
	cfg := testConfig(t, 4, 2)
	trace := testTrace(t, cfg, 9, 2000, 4000, 0.5)

	rrCfg := cfg
	rrCfg.Router = &RoundRobin{}
	res := MustRun(rrCfg, trace)
	var lo, hi uint64 = ^uint64(0), 0
	for _, ns := range res.PerNode {
		if ns.Routed < lo {
			lo = ns.Routed
		}
		if ns.Routed > hi {
			hi = ns.Routed
		}
	}
	if hi-lo > 1 {
		t.Errorf("round-robin spread %d..%d across nodes, want within 1", lo, hi)
	}

	afCfg := cfg
	afCfg.Router = Affinity{}
	blocksPerNode := cfg.DisksPerNode * cfg.Disk.Cylinders
	want := make([]uint64, cfg.Nodes)
	for _, r := range trace {
		n := r.Cylinder / blocksPerNode
		if n >= cfg.Nodes {
			n = cfg.Nodes - 1
		}
		want[n]++
	}
	res = MustRun(afCfg, trace)
	for n, ns := range res.PerNode {
		if ns.Routed != want[n] {
			t.Errorf("affinity routed %d to node %d, block ownership says %d", ns.Routed, n, want[n])
		}
	}
}

// Direct router unit behavior on fabricated nodes.
func TestRouterUnitBehavior(t *testing.T) {
	mkNode := func(id, queued int) *Node {
		st := &sim.Station{ID: id, Sched: sched.NewFCFS()}
		for i := 0; i < queued; i++ {
			st.Sched.Add(&core.Request{ID: uint64(i + 1), Cylinder: i}, 0, 0)
		}
		return &Node{ID: id, Blocks: 100, stations: []*sim.Station{st}}
	}
	nodes := []*Node{mkNode(0, 3), mkNode(1, 1), mkNode(2, 1)}

	var rr RoundRobin
	for i := 0; i < 6; i++ {
		if got := rr.Route(nil, nodes, 0); got != i%3 {
			t.Fatalf("round-robin pick %d = node %d, want %d", i, got, i%3)
		}
	}
	// Least-loaded: nodes 1 and 2 tie at depth 1; lowest index wins.
	if got := (LeastLoaded{}).Route(nil, nodes, 0); got != 1 {
		t.Errorf("least-loaded picked node %d, want 1 (shallowest, lowest-index tie-break)", got)
	}
	for _, tc := range []struct{ block, want int }{
		{0, 0}, {99, 0}, {100, 1}, {250, 2}, {299, 2}, {1000, 2}, {-5, 0},
	} {
		if got := (Affinity{}).Route(&core.Request{Cylinder: tc.block}, nodes, 0); got != tc.want {
			t.Errorf("affinity(block %d) = node %d, want %d", tc.block, got, tc.want)
		}
	}
}

func TestNewRouterAndAdmitterNames(t *testing.T) {
	for name, want := range map[string]string{
		"rr": "rr", "round-robin": "rr",
		"least": "least", "least-loaded": "least",
		"affinity": "affinity",
	} {
		r, err := NewRouter(name)
		if err != nil || r.Name() != want {
			t.Errorf("NewRouter(%q) = %v, %v", name, r, err)
		}
	}
	if _, err := NewRouter("nope"); err == nil {
		t.Error("NewRouter accepted an unknown policy")
	}
	for name, want := range map[string]string{
		"always": "always", "token": "token", "token-bucket": "token",
	} {
		a, err := NewAdmitter(name, 2, 100, 10)
		if err != nil || a.Name() != want {
			t.Errorf("NewAdmitter(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := NewAdmitter("nope", 1, 1, 1); err == nil {
		t.Error("NewAdmitter accepted an unknown policy")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	good := testConfig(t, 2, 2)
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.DisksPerNode = 0 },
		func(c *Config) { c.Disk = nil },
		func(c *Config) { c.NewScheduler = nil },
		func(c *Config) { c.Classes = -1 },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := Run(cfg, nil); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := Run(good, nil); err != nil {
		t.Errorf("empty-trace run on a good config failed: %v", err)
	}
}

// The Jain index must be 1 for perfectly even goodput and strictly lower
// when tenants' goodput diverges.
func TestJainFairness(t *testing.T) {
	even := &Result{Tenants: []TenantStats{
		{Arrived: 100, Served: 90}, {Arrived: 50, Served: 45}, {Arrived: 10, Served: 9},
	}}
	if j := even.Jain(); j < 0.999 || j > 1.001 {
		t.Errorf("even goodput ratios gave Jain %v, want 1", j)
	}
	skewed := &Result{Tenants: []TenantStats{
		{Arrived: 100, Served: 100}, {Arrived: 100, Served: 0}, {Arrived: 100, Served: 0},
	}}
	if j := skewed.Jain(); j > 0.34 || j < 0.32 {
		t.Errorf("one-of-three goodput gave Jain %v, want ~1/3", j)
	}
	if j := (&Result{}).Jain(); j != 1 {
		t.Errorf("no active tenants gave Jain %v, want 1 by convention", j)
	}
	one := &Result{Tenants: []TenantStats{{Arrived: 10, Served: 2}}}
	if j := one.Jain(); j != 1 {
		t.Errorf("single tenant gave Jain %v, want 1 by convention", j)
	}
}

// Under skewed tenant load, least-loaded routing must not lose to
// round-robin on overall goodput — the divergence the cluster experiment
// plots — and the per-class latency histograms must be populated and
// ordered (p50 <= p99).
func TestClusterPolicyDivergenceUnderSkew(t *testing.T) {
	base := testConfig(t, 4, 1)
	trace := testTrace(t, base, 42, 6000, 1100, 1.4)

	run := func(r Router) *Result {
		cfg := base
		cfg.Router = r
		return MustRun(cfg, trace)
	}
	rr := run(&RoundRobin{})
	ll := run(LeastLoaded{})
	var rrServed, llServed uint64
	for c := range rr.PerClass {
		rrServed += rr.PerClass[c].Served
		llServed += ll.PerClass[c].Served
	}
	if llServed < rrServed {
		t.Errorf("least-loaded served %d < round-robin's %d under skewed overload", llServed, rrServed)
	}
	for c, cs := range ll.PerClass {
		if cs.Served == 0 {
			continue
		}
		q := cs.Latency.Quantiles(0.5, 0.99)
		if q[0] == 0 || q[0] > q[1] {
			t.Errorf("class %d latency percentiles malformed: p50=%d p99=%d", c, q[0], q[1])
		}
	}
}

// Cluster metrics must reflect run outcomes when a per-run Metrics
// aggregate is attached.
func TestClusterMetrics(t *testing.T) {
	cfg := testConfig(t, 2, 2)
	m := &Metrics{}
	cfg.Metrics = m
	tb, err := NewTokenBucket(3, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Admission = tb
	trace := testTrace(t, cfg, 3, 2000, 2000, 1.0)
	res := MustRun(cfg, trace)

	if got := m.Arrivals.Load(); got != uint64(len(trace)) {
		t.Errorf("metrics arrivals = %d, want %d", got, len(trace))
	}
	var served, admitDropped uint64
	for _, cs := range res.PerClass {
		served += cs.Served
		admitDropped += cs.AdmitDropped
	}
	if got := m.Served.Load(); got != served {
		t.Errorf("metrics served = %d, result says %d", got, served)
	}
	if got := m.AdmitDropped.Load(); got != admitDropped {
		t.Errorf("metrics admit_dropped = %d, result says %d", got, admitDropped)
	}
	if m.LatencyUS.Count() != served {
		t.Errorf("latency histogram has %d observations for %d served", m.LatencyUS.Count(), served)
	}
	if served > 0 && m.NodeDepthMax.Load() < 0 {
		t.Error("node depth high-water never observed")
	}

	// The aggregate registers cleanly under a prefix, and double
	// registration (duplicate names) is rejected.
	reg := obs.NewRegistry()
	m.MustRegister(reg, "cluster_test")
	if err := m.Register(reg, "cluster_test"); err == nil {
		t.Error("duplicate metric registration accepted")
	}

	// LossRate ties out against the raw ledger; a class with no arrivals
	// reports zero loss rather than dividing by zero.
	for _, cs := range res.PerClass {
		want := float64(cs.AdmitDropped+cs.DispatchDropped+cs.Late) / float64(cs.Arrived)
		if got := cs.LossRate(); got != want {
			t.Errorf("class %d LossRate = %v, want %v", cs.Class, got, want)
		}
	}
	if (&ClassStats{}).LossRate() != 0 {
		t.Error("empty class reported nonzero loss")
	}
}

// A trace generated for one logical block space must map onto member
// disks without ever leaving the modeled cylinder range: the per-disk
// collectors account every admitted request exactly once.
func TestClusterBlockMapping(t *testing.T) {
	cfg := testConfig(t, 3, 3)
	trace := testTrace(t, cfg, 17, 1500, 4000, 0.0)
	res := MustRun(cfg, trace)
	var perDiskArrived uint64
	for _, col := range res.PerDisk {
		perDiskArrived += col.Arrived
	}
	var admitted uint64
	for _, cs := range res.PerClass {
		admitted += cs.Admitted
	}
	if perDiskArrived != admitted {
		t.Errorf("disks saw %d physical arrivals for %d admitted requests", perDiskArrived, admitted)
	}
}
