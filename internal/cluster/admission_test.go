package cluster

import "testing"

// Boundary: a bucket drained to exactly zero must refuse the next
// request at the same instant — exactly-empty is empty.
func TestTokenBucketExactlyEmpty(t *testing.T) {
	tb, err := NewTokenBucket(1, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Admit(0, 0) || !tb.Admit(0, 0) {
		t.Fatal("burst-2 bucket refused within its burst")
	}
	if tb.Admit(0, 0) {
		t.Error("exactly-empty bucket admitted a third request at t=0")
	}
}

// Boundary: after a long idle the bucket holds exactly its burst — the
// burst+1-th request at one instant is refused, so idle time never
// banks beyond the cap.
func TestTokenBucketExactlyFull(t *testing.T) {
	tb, err := NewTokenBucket(1, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Admit(0, 0) {
		t.Fatal("fresh bucket refused")
	}
	const idle = int64(10_000_000) // 10 s at 1000 tok/s banks far beyond burst 3
	for i := 0; i < 3; i++ {
		if !tb.Admit(0, idle) {
			t.Fatalf("refill-capped bucket refused request %d of its burst", i+1)
		}
	}
	if tb.Admit(0, idle) {
		t.Error("exactly-full bucket admitted burst+1 requests at one instant")
	}
}

// Boundary: refill is exact integer arithmetic — at 1000 tokens/s a
// token completes exactly every 1000 µs. One µs before the edge the
// request is refused; at the edge it is admitted; the bucket is then
// empty again.
func TestTokenBucketRefillAtTickEdge(t *testing.T) {
	tb, err := NewTokenBucket(1, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Admit(0, 0) {
		t.Fatal("fresh bucket refused")
	}
	if tb.Admit(0, 999) {
		t.Error("bucket admitted 1 µs before the token completed")
	}
	if !tb.Admit(0, 1000) {
		t.Error("bucket refused exactly at the token's completion edge")
	}
	if tb.Admit(0, 1000) {
		t.Error("spent token still admitted at the same instant")
	}
	// The partial refill consumed by the early probe must not be lost:
	// the next token still completes at t=2000.
	if tb.Admit(0, 1999) {
		t.Error("bucket admitted 1 µs before the second token")
	}
	if !tb.Admit(0, 2000) {
		t.Error("bucket refused the second token at its edge")
	}
}

// Each class owns an independent bucket; out-of-range classes clamp.
func TestTokenBucketPerClassIsolation(t *testing.T) {
	tb, err := NewTokenBucket(2, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Admit(0, 0) {
		t.Fatal("class 0 refused its burst")
	}
	if !tb.Admit(1, 0) {
		t.Error("class 1's bucket was drained by class 0")
	}
	if tb.Admit(0, 0) || tb.Admit(1, 0) {
		t.Error("drained class bucket admitted")
	}
	// Classes outside [0, classes) clamp to the nearest bucket.
	if tb.Admit(-3, 0) {
		t.Error("negative class admitted from drained bucket 0")
	}
	if tb.Admit(99, 0) {
		t.Error("overflow class admitted from drained last bucket")
	}
}

func TestTokenBucketValidation(t *testing.T) {
	for i, c := range []struct {
		classes     int
		rate, burst int64
	}{{0, 100, 10}, {1, 0, 10}, {1, 100, 0}, {-1, 100, 10}, {1, -5, 10}} {
		if _, err := NewTokenBucket(c.classes, c.rate, c.burst); err == nil {
			t.Errorf("case %d: NewTokenBucket(%d, %d, %d) accepted", i, c.classes, c.rate, c.burst)
		}
	}
}

func TestAlwaysAdmit(t *testing.T) {
	a := AlwaysAdmit{}
	for i := 0; i < 100; i++ {
		if !a.Admit(i%3, int64(i)) {
			t.Fatal("AlwaysAdmit refused")
		}
	}
}
