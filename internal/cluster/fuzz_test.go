package cluster

import (
	"reflect"
	"testing"

	"sfcsched/internal/runner"
	"sfcsched/internal/sched"
	"sfcsched/internal/sim"
	"sfcsched/internal/workload"
)

// flatEvent is a comparable copy of one TraceEvent (the Request pointer
// is flattened to its identity fields).
type flatEvent struct {
	Now      int64
	Disk     int
	ID       uint64
	Tenant   int
	Class    int
	Head     int
	Seek     int64
	Service  int64
	Dropped  bool
	QueueLen int
}

// clusterSummary captures everything a divergent replay could disagree
// on: the full physical event stream plus the per-class, per-node and
// fairness ledgers.
type clusterSummary struct {
	Events   []flatEvent
	PerClass []ClassLedger
	Routed   []uint64
	Makespan int64
	Jain     float64
}

// ClassLedger is ClassStats minus the histogram (copied as quantiles so
// the summary is directly comparable).
type ClassLedger struct {
	Arrived, Admitted, AdmitDropped, Served, DispatchDropped, Late uint64
	P50, P99                                                       uint64
}

// FuzzClusterDeterminism extends the engine-determinism fuzzing across
// the cluster layer: fuzzed topology, router, admission and tenant skew
// must replay byte-identically run-to-run and across runner.Map worker
// counts (stateful routers and token buckets are rebuilt per cell, as
// sweeps do).
func FuzzClusterDeterminism(f *testing.F) {
	f.Add(uint64(1), uint16(300), byte(0), byte(0), true, byte(12))
	f.Add(uint64(2), uint16(500), byte(1), byte(1), true, byte(0))
	f.Add(uint64(3), uint16(200), byte(2), byte(0), false, byte(20))
	f.Add(uint64(4), uint16(800), byte(1), byte(1), false, byte(5))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, routerB, admitB byte, drop bool, skew byte) {
		count := int(n)%1200 + 50
		routers := []string{"rr", "least", "affinity"}
		rname := routers[int(routerB)%len(routers)]
		aname := []string{"always", "token"}[int(admitB)%2]

		run := func() (clusterSummary, error) {
			cfg := Config{
				Nodes: 3, DisksPerNode: 2, Disk: testDisk(t),
				NewScheduler: func(int, int) (sched.Scheduler, error) { return sched.NewSCANEDF(50_000), nil },
				DropLate:     drop, Seed: seed, SampleRotation: true,
				Metrics: &Metrics{},
			}
			var err error
			if cfg.Router, err = NewRouter(rname); err != nil {
				return clusterSummary{}, err
			}
			if cfg.Admission, err = NewAdmitter(aname, 3, 150, 20); err != nil {
				return clusterSummary{}, err
			}
			var sum clusterSummary
			cfg.Trace = func(ev sim.TraceEvent) {
				sum.Events = append(sum.Events, flatEvent{
					Now: ev.Now, Disk: ev.DiskID, ID: ev.Request.ID,
					Tenant: ev.Request.Tenant, Class: ev.Request.Class,
					Head: ev.Head, Seek: ev.Seek, Service: ev.Service,
					Dropped: ev.Dropped, QueueLen: ev.QueueLen,
				})
			}
			trace, err := workload.Open{
				Seed: seed, Count: count, MeanInterarrival: 2500,
				Dims: 1, Levels: 4,
				DeadlineMin: 100_000, DeadlineMax: 400_000,
				Cylinders: cfg.MaxBlocks(), Size: 64 << 10,
				Tenants: 6, TenantSkew: float64(skew) / 10, Classes: 3, TenantZones: true,
			}.Generate()
			if err != nil {
				return clusterSummary{}, err
			}
			res, err := Run(cfg, trace)
			if err != nil {
				return clusterSummary{}, err
			}
			sum.Makespan = res.Makespan
			sum.Jain = res.Jain()
			for _, ns := range res.PerNode {
				sum.Routed = append(sum.Routed, ns.Routed)
			}
			for _, cs := range res.PerClass {
				q := cs.Latency.Quantiles(0.5, 0.99)
				sum.PerClass = append(sum.PerClass, ClassLedger{
					Arrived: cs.Arrived, Admitted: cs.Admitted, AdmitDropped: cs.AdmitDropped,
					Served: cs.Served, DispatchDropped: cs.DispatchDropped, Late: cs.Late,
					P50: q[0], P99: q[1],
				})
			}
			return sum, nil
		}

		golden, err := run()
		if err != nil {
			t.Fatal(err)
		}
		// Sequential replay and a 4-worker parallel sweep of 3 cells must
		// all reproduce the golden summary exactly.
		cells, err := runner.Map(4, 3, func(int) (clusterSummary, error) { return run() })
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range cells {
			if !reflect.DeepEqual(golden, got) {
				t.Fatalf("router=%s admit=%s drop=%v: cell %d diverged from golden replay", rname, aname, drop, i)
			}
		}
		// Sanity: every arrival is accounted for.
		var arrived uint64
		for _, cl := range golden.PerClass {
			arrived += cl.Arrived
		}
		if arrived != uint64(count) {
			t.Fatalf("ledgers saw %d arrivals for a %d-request trace", arrived, count)
		}
	})
}
