package cluster

import (
	"testing"

	"sfcsched/internal/sched"
	"sfcsched/internal/workload"
)

// BenchmarkClusterDispatch measures the cluster dispatch path end to end:
// admission ruling, routing over live queue depths, block→stripe mapping
// and the engine's dispatch/completion cycle, reported as simulated
// requests per second.
func BenchmarkClusterDispatch(b *testing.B) {
	base := Config{
		Nodes: 4, DisksPerNode: 2, Disk: testDisk(b),
		NewScheduler: func(int, int) (sched.Scheduler, error) { return sched.NewSCANEDF(50_000), nil },
		DropLate:     true, Seed: 7, Metrics: &Metrics{},
	}
	trace := workload.Open{
		Seed: 1, Count: 10_000, MeanInterarrival: 1500,
		Dims: 1, Levels: 4,
		DeadlineMin: 100_000, DeadlineMax: 400_000,
		Cylinders: base.MaxBlocks(), Size: 64 << 10,
		Tenants: 8, TenantSkew: 1.2, Classes: 3, TenantZones: true,
	}.MustGenerate()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := base
		cfg.Router = &RoundRobin{} // stateful: fresh per run, as sweeps do
		tb, err := NewTokenBucket(3, 400, 50)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Admission = tb
		MustRun(cfg, trace)
	}
	b.StopTimer()
	reqs := float64(len(trace)) * float64(b.N)
	b.ReportMetric(reqs/b.Elapsed().Seconds(), "req/s")
}
