package cluster

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/sim"
)

// Node is the router's view of one array: the member stations it feeds
// and its slice of the logical block space.
type Node struct {
	// ID is the node index, [0, Nodes).
	ID int
	// Blocks is the node's logical block capacity: DisksPerNode × the
	// member disk's cylinders. Every node has the same capacity, so
	// node ID = block / Blocks under affinity placement.
	Blocks int

	stations []*sim.Station
}

// Depth returns the node's total backlog: queued requests summed over the
// member disks, plus one per in-flight service. Routers read it at
// arrival time; the engine's deterministic event ordering makes the
// reading — and therefore the routing decision — reproducible.
func (n *Node) Depth() int {
	d := 0
	for _, st := range n.stations {
		d += st.Sched.Len()
		if st.Busy() {
			d++
		}
	}
	return d
}

// Router picks the destination node for each admitted request. Route must
// be deterministic in (r, nodes, now) and its own prior calls: the
// cluster replays byte-identically only if its routers do.
type Router interface {
	Name() string
	// Route returns the destination node index for r. Out-of-range
	// returns are clamped by the cluster. nodes is read-only state at the
	// arrival instant.
	Route(r *core.Request, nodes []*Node, now int64) int
}

// RoundRobin cycles through the nodes in arrival order, blind to load.
type RoundRobin struct {
	next int
}

// Name implements Router.
func (rr *RoundRobin) Name() string { return "rr" }

// Route implements Router.
func (rr *RoundRobin) Route(_ *core.Request, nodes []*Node, _ int64) int {
	n := rr.next % len(nodes)
	rr.next++
	return n
}

// LeastLoaded routes to the node with the smallest backlog (queued +
// in-service over its member disks), breaking ties toward the lowest
// node index so the choice is deterministic.
type LeastLoaded struct{}

// Name implements Router.
func (LeastLoaded) Name() string { return "least" }

// Route implements Router.
func (LeastLoaded) Route(_ *core.Request, nodes []*Node, _ int64) int {
	best, bestDepth := 0, nodes[0].Depth()
	for i := 1; i < len(nodes); i++ {
		if d := nodes[i].Depth(); d < bestDepth {
			best, bestDepth = i, d
		}
	}
	return best
}

// Affinity places each request on the node that owns its logical block
// range (block / Node.Blocks): stripe/zone-affine placement, so a
// tenant whose workload lives in one zone always lands on the same
// node. Under skewed tenant load this concentrates hotspots — the
// trade-off the cluster experiment measures against rr/least.
type Affinity struct{}

// Name implements Router.
func (Affinity) Name() string { return "affinity" }

// Route implements Router.
func (Affinity) Route(r *core.Request, nodes []*Node, _ int64) int {
	if r.Cylinder < 0 {
		return 0
	}
	n := r.Cylinder / nodes[0].Blocks
	if n >= len(nodes) {
		n = len(nodes) - 1
	}
	return n
}

// NewRouter builds the named routing policy: "rr" (round-robin),
// "least" (least-loaded) or "affinity" (block-range affinity).
func NewRouter(name string) (Router, error) {
	switch name {
	case "rr", "round-robin":
		return &RoundRobin{}, nil
	case "least", "least-loaded":
		return LeastLoaded{}, nil
	case "affinity":
		return Affinity{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown router %q (want rr, least or affinity)", name)
	}
}
