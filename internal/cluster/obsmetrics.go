package cluster

import "sfcsched/internal/obs"

// Metrics aggregates the cluster-layer counters: admission outcomes,
// routing activity and per-request completion latency. It mirrors
// core.Metrics: atomic fields, a process-wide default, per-run override
// via Config.Metrics.
type Metrics struct {
	// Arrivals counts requests offered to the cluster.
	Arrivals obs.Counter
	// AdmitDropped counts requests rejected by admission control.
	AdmitDropped obs.Counter
	// Routed counts admitted requests handed to a node.
	Routed obs.Counter
	// Served counts completed services.
	Served obs.Counter
	// DispatchDropped counts requests dropped at dispatch time (deadline
	// expired under DropLate).
	DispatchDropped obs.Counter
	// LateStarts counts services that started past their deadline
	// (without DropLate).
	LateStarts obs.Counter
	// LatencyUS is the completion latency distribution of served
	// requests (completion − arrival), µs.
	LatencyUS obs.Histogram
	// NodeDepthMax is the high-water backlog of the routed node observed
	// at routing time.
	NodeDepthMax obs.MaxGauge
}

// DefaultMetrics is the process-wide aggregate every cluster run reports
// into unless overridden via Config.Metrics.
var DefaultMetrics = &Metrics{}

// Register registers every field of m under prefix (e.g.
// "sfcsched_cluster") in reg.
func (m *Metrics) Register(reg *obs.Registry, prefix string) error {
	type entry struct {
		name, help string
		v          any
	}
	for _, e := range []entry{
		{"arrivals", "requests offered to the cluster", &m.Arrivals},
		{"admit_dropped", "requests rejected by admission control", &m.AdmitDropped},
		{"routed", "admitted requests handed to a node", &m.Routed},
		{"served", "completed services", &m.Served},
		{"dispatch_dropped", "requests dropped at dispatch (deadline expired)", &m.DispatchDropped},
		{"late_starts", "services started past their deadline", &m.LateStarts},
		{"latency_us", "completion latency of served requests, microseconds", &m.LatencyUS},
		{"node_depth_max", "high-water backlog of the routed node", &m.NodeDepthMax},
	} {
		if err := reg.Register(prefix+"_"+e.name, e.help, e.v); err != nil {
			return err
		}
	}
	return nil
}

// MustRegister is Register for static wiring.
func (m *Metrics) MustRegister(reg *obs.Registry, prefix string) {
	if err := m.Register(reg, prefix); err != nil {
		panic(err)
	}
}
