package cluster

import "fmt"

// Admitter rules on each arriving request before routing: a rejected
// request is counted as an admission drop for its class and never touches
// a queue. Admit must be deterministic in (class, now) and its own prior
// calls.
type Admitter interface {
	Name() string
	// Admit rules on one arrival of SLO class class at time now (µs).
	// Calls arrive in non-decreasing now order (the engine clock).
	Admit(class int, now int64) bool
}

// AlwaysAdmit is the no-op admission policy: every request is admitted.
type AlwaysAdmit struct{}

// Name implements Admitter.
func (AlwaysAdmit) Name() string { return "always" }

// Admit implements Admitter.
func (AlwaysAdmit) Admit(int, int64) bool { return true }

// microToken is the integer sub-unit of one token: token-bucket levels
// are kept in micro-tokens so refill is exact integer arithmetic — a rate
// of R tokens/second is exactly R micro-tokens/µs — and replay is
// byte-identical with no float drift.
const microToken = 1_000_000

// TokenBucket is per-class token-bucket admission control: class c admits
// at most Burst requests instantaneously and Rate requests per second
// sustained. Each class owns an independent bucket; buckets start full.
type TokenBucket struct {
	rate  int64 // micro-tokens per µs == tokens per second
	cap   int64 // micro-tokens
	level []int64
	last  []int64
}

// NewTokenBucket builds per-class buckets: classes independent buckets,
// each refilling at ratePerSec tokens/second up to a burst capacity.
func NewTokenBucket(classes int, ratePerSec, burst int64) (*TokenBucket, error) {
	if classes < 1 {
		return nil, fmt.Errorf("cluster: token bucket needs at least one class, got %d", classes)
	}
	if ratePerSec < 1 || burst < 1 {
		return nil, fmt.Errorf("cluster: token bucket rate and burst must be positive, got rate=%d burst=%d", ratePerSec, burst)
	}
	tb := &TokenBucket{
		rate:  ratePerSec,
		cap:   burst * microToken,
		level: make([]int64, classes),
		last:  make([]int64, classes),
	}
	for i := range tb.level {
		tb.level[i] = tb.cap
	}
	return tb, nil
}

// Name implements Admitter.
func (tb *TokenBucket) Name() string { return "token" }

// Admit implements Admitter: refill the class's bucket for the time since
// its last ruling, then spend one token if a whole one is available.
// Refill is incremental integer arithmetic, so a token that completes
// exactly at now is spendable at now and one µs earlier it is not.
func (tb *TokenBucket) Admit(class int, now int64) bool {
	if class < 0 {
		class = 0
	}
	if class >= len(tb.level) {
		class = len(tb.level) - 1
	}
	if dt := now - tb.last[class]; dt > 0 {
		lvl := tb.level[class] + dt*tb.rate
		if lvl > tb.cap || lvl < 0 { // cap, and guard dt·rate overflow
			lvl = tb.cap
		}
		tb.level[class] = lvl
		tb.last[class] = now
	}
	if tb.level[class] < microToken {
		return false
	}
	tb.level[class] -= microToken
	return true
}

// NewAdmitter builds the named admission policy: "always", or "token"
// with classes per-class buckets of ratePerSec tokens/second and burst
// capacity.
func NewAdmitter(name string, classes int, ratePerSec, burst int64) (Admitter, error) {
	switch name {
	case "always":
		return AlwaysAdmit{}, nil
	case "token", "token-bucket":
		return NewTokenBucket(classes, ratePerSec, burst)
	default:
		return nil, fmt.Errorf("cluster: unknown admission policy %q (want always or token)", name)
	}
}
