package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"sfcsched/internal/core"
)

// Replay is a workload source reconstructed from a recorded trace: either
// a per-dispatch JSONL stream written by sim.JSONLTrace, or a request CSV
// written by WriteCSV. It holds one canonical copy of every request and
// regenerates the identical trace on demand, draw-free — no RNG is
// consumed, so a replay is deterministic by construction and can be fed to
// a different build, scheduler, or knob setting and diffed
// dispatch-by-dispatch against the original run (cmd/tracediff).
//
// A dispatch trace is recorded in *dispatch* order, which is not arrival
// order, and fault-injected runs log one line per service attempt of the
// same request. Loading therefore dedupes by request ID (first occurrence
// wins; every occurrence carries the same request fields) and re-sorts by
// (arrival, ID) — exactly the generator order, because every generator
// assigns dense IDs in stable arrival order before the run.
type Replay struct {
	reqs []core.Request
	prio []int // compacted backing for all priority vectors
	dims int
}

// replayLine is the subset of the sim.JSONLTrace line format needed to
// reconstruct the dispatched request. Decision fields (now, wait, head,
// seek, service, dropped, faulted, queue) are ignored: they belong to the
// recorded run, not the workload, and are re-derived by re-simulating.
type replayLine struct {
	Disk     int    `json:"disk"`
	ID       uint64 `json:"id"`
	Cylinder int    `json:"cyl"`
	Arrival  int64  `json:"arrival"`
	Deadline int64  `json:"deadline"`
	Prio     []int  `json:"prio"`
	Size     int64  `json:"size"`
	Write    bool   `json:"write"`
	Value    int    `json:"value"`
	Tenant   int    `json:"tenant"`
	Class    int    `json:"class"`
}

// LoadReplay reads a recorded trace from r. The format is sniffed from the
// first non-blank byte: '{' selects the JSONL dispatch-trace format,
// anything else the WriteCSV request CSV.
func LoadReplay(r io.Reader) (*Replay, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("workload: replay source is empty: %w", err)
		}
		if b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r' {
			br.Discard(1)
			continue
		}
		if b[0] == '{' {
			return loadReplayJSONL(br)
		}
		return loadReplayCSV(br)
	}
}

// LoadReplayFile is LoadReplay over a file path.
func LoadReplayFile(path string) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: opening replay trace: %w", err)
	}
	defer f.Close()
	return LoadReplay(f)
}

func loadReplayJSONL(br *bufio.Reader) (*Replay, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var lines []replayLine
	seen := make(map[uint64]bool)
	for n := 1; sc.Scan(); n++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ln replayLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			return nil, fmt.Errorf("workload: replay line %d: %w", n, err)
		}
		if ln.Disk != 0 {
			return nil, fmt.Errorf("workload: replay line %d: disk %d — array traces record physical per-disk operations, not the logical request stream, and cannot be replayed", n, ln.Disk)
		}
		if seen[ln.ID] {
			// A fault retry: the same request logged again on a later
			// attempt. The request fields are identical; keep the first.
			continue
		}
		seen[ln.ID] = true
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading replay trace: %w", err)
	}
	dims := 0
	for i := range lines {
		if d := len(lines[i].Prio); d > 0 {
			if dims == 0 {
				dims = d
			} else if d != dims {
				return nil, fmt.Errorf("workload: replay trace mixes priority dimensionalities %d and %d", dims, d)
			}
		}
	}
	p := &Replay{
		reqs: make([]core.Request, len(lines)),
		prio: make([]int, len(lines)*dims),
		dims: dims,
	}
	for i, ln := range lines {
		r := &p.reqs[i]
		r.ID = ln.ID
		r.Cylinder = ln.Cylinder
		r.Arrival = ln.Arrival
		r.Deadline = ln.Deadline
		r.Size = ln.Size
		r.Write = ln.Write
		r.Value = ln.Value
		r.Tenant = ln.Tenant
		r.Class = ln.Class
		if dims > 0 {
			v := p.prio[i*dims : (i+1)*dims : (i+1)*dims]
			copy(v, ln.Prio)
			r.Priorities = v
		}
	}
	p.sortCanonical()
	return p, nil
}

func loadReplayCSV(br *bufio.Reader) (*Replay, error) {
	trace, err := ReadCSV(br)
	if err != nil {
		return nil, err
	}
	dims := 0
	if len(trace) > 0 {
		dims = len(trace[0].Priorities)
	}
	p := &Replay{
		reqs: make([]core.Request, 0, len(trace)),
		prio: make([]int, 0, len(trace)*dims),
		dims: dims,
	}
	seen := make(map[uint64]bool)
	for _, r := range trace {
		if seen[r.ID] {
			continue
		}
		seen[r.ID] = true
		p.reqs = append(p.reqs, *r)
	}
	p.prio = p.prio[:len(p.reqs)*dims]
	for i := range p.reqs {
		if dims > 0 {
			v := p.prio[i*dims : (i+1)*dims : (i+1)*dims]
			copy(v, p.reqs[i].Priorities)
			p.reqs[i].Priorities = v
		}
	}
	p.sortCanonical()
	return p, nil
}

// sortCanonical restores generator order: stable by arrival, ties by ID.
// The priority views move with their requests; the backing slab need not
// be re-compacted.
func (p *Replay) sortCanonical() {
	sort.SliceStable(p.reqs, func(i, j int) bool {
		if p.reqs[i].Arrival != p.reqs[j].Arrival {
			return p.reqs[i].Arrival < p.reqs[j].Arrival
		}
		return p.reqs[i].ID < p.reqs[j].ID
	})
}

// Len returns the number of distinct requests in the recorded trace.
func (p *Replay) Len() int { return len(p.reqs) }

// Dims returns the priority dimensionality of the recorded requests (0 if
// none carried priorities).
func (p *Replay) Dims() int { return p.dims }

// Generate returns a fresh copy of the recorded trace in arrival order.
// Like the generator forms it allocates every request; unlike them it
// consumes no RNG draws — the same Replay always yields the same trace.
func (p *Replay) Generate() []*core.Request {
	reqs := make([]*core.Request, len(p.reqs))
	for i := range p.reqs {
		r := &core.Request{}
		*r = p.reqs[i]
		if p.dims > 0 {
			r.Priorities = make([]int, p.dims)
			copy(r.Priorities, p.reqs[i].Priorities)
		}
		reqs[i] = r
	}
	return reqs
}

// GenerateArena builds the same trace as Generate into a's slabs,
// allocation-free once the slabs have grown to size. A nil arena falls
// back to Generate.
func (p *Replay) GenerateArena(a *Arena) []*core.Request {
	if a == nil {
		return p.Generate()
	}
	n := len(p.reqs)
	reqs := a.requests(n)
	prio := a.priorities(n * p.dims)
	ptrs := a.pointers(n)
	for i := range reqs {
		reqs[i] = p.reqs[i]
		if p.dims > 0 {
			// The canonical sort moved requests but not the backing slab,
			// so vectors are copied per request, not slab to slab.
			v := prio[i*p.dims : (i+1)*p.dims : (i+1)*p.dims]
			copy(v, p.reqs[i].Priorities)
			reqs[i].Priorities = v
		}
		ptrs[i] = &reqs[i]
	}
	return ptrs
}
