package workload

import (
	"sfcsched/internal/core"
	"sfcsched/internal/stats"
)

// Arena is a recyclable backing store for generated traces: one
// contiguous request slab, one shared priority-level backing and the
// pointer view handed to the simulator. Generating a 100k-request trace
// through an arena costs a handful of slab (re)allocations instead of one
// per request, and regenerating into the same arena costs none once the
// slabs have grown to size.
//
// The trace returned by a GenerateArena call is a view into the arena:
// the next generation through the same arena overwrites it. Simulations
// never mutate requests, so one generation can back any number of
// sequential runs; parallel sweep cells each use their own arena (see
// internal/runner). The zero value is ready to use.
type Arena struct {
	reqs []core.Request
	prio []int
	ptrs []*core.Request
}

// requests returns the request slab resized to n and zeroed.
func (a *Arena) requests(n int) []core.Request {
	if cap(a.reqs) < n {
		a.reqs = make([]core.Request, n)
	} else {
		a.reqs = a.reqs[:n]
		clear(a.reqs)
	}
	return a.reqs
}

// priorities returns the priority backing resized to n. Slots are not
// zeroed; callers overwrite every one.
func (a *Arena) priorities(n int) []int {
	if cap(a.prio) < n {
		a.prio = make([]int, n)
	} else {
		a.prio = a.prio[:n]
	}
	return a.prio
}

// pointers returns the pointer view resized to n. Slots are not zeroed;
// callers overwrite every one.
func (a *Arena) pointers(n int) []*core.Request {
	if cap(a.ptrs) < n {
		a.ptrs = make([]*core.Request, n)
	} else {
		a.ptrs = a.ptrs[:n]
	}
	return a.ptrs
}

// GenerateArena builds the same trace as Generate — identical requests in
// identical order — into a's slabs. A nil arena falls back to Generate.
func (w Open) GenerateArena(a *Arena) ([]*core.Request, error) {
	if a == nil {
		return w.Generate()
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	var rng stats.RNG
	rng.Seed(w.Seed)
	var zipf *stats.Zipf
	if w.Dist == Zipf {
		zipf = stats.NewZipf(rng.Split(), w.Levels, 1.0)
	}
	tzipf := w.tenantZipf()
	reqs := a.requests(w.Count)
	prio := a.priorities(w.Count * w.Dims)
	ptrs := a.pointers(w.Count)
	now := int64(0)
	for i := range reqs {
		r := &reqs[i]
		if w.Dims > 0 {
			// Three-index views pin each vector's capacity, so an append
			// by a caller can never bleed into its neighbor's levels.
			r.Priorities = prio[i*w.Dims : (i+1)*w.Dims : (i+1)*w.Dims]
		}
		w.genOne(i, &now, &rng, zipf, tzipf, r)
		ptrs[i] = r
	}
	return ptrs, nil
}

// MustGenerateArena is GenerateArena for static configurations.
func (w Open) MustGenerateArena(a *Arena) []*core.Request {
	reqs, err := w.GenerateArena(a)
	if err != nil {
		panic(err)
	}
	return reqs
}

// GenerateArena builds the same trace as Generate — identical requests in
// identical order — into a's slabs. A nil arena falls back to Generate.
func (s Streams) GenerateArena(a *Arena) ([]*core.Request, error) {
	if a == nil {
		return s.Generate()
	}
	burst, err := s.validate()
	if err != nil {
		return nil, err
	}
	a.reqs = a.reqs[:0]
	a.prio = a.prio[:0]
	s.generate(burst, func(r core.Request, level int) {
		a.reqs = append(a.reqs, r)
		a.prio = append(a.prio, level)
	})
	// Views are taken only now: during the append loop both slabs may
	// relocate as they grow, so mid-loop pointers or subslices into them
	// would dangle.
	ptrs := a.pointers(len(a.reqs))
	for i := range a.reqs {
		a.reqs[i].Priorities = a.prio[i : i+1 : i+1]
		ptrs[i] = &a.reqs[i]
	}
	sortAndRenumber(ptrs)
	return ptrs, nil
}

// MustGenerateArena is GenerateArena for static configurations.
func (s Streams) MustGenerateArena(a *Arena) []*core.Request {
	reqs, err := s.GenerateArena(a)
	if err != nil {
		panic(err)
	}
	return reqs
}
