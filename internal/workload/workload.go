// Package workload generates the deterministic request traces driving the
// paper's experiments: open Poisson arrivals with multi-dimensional
// priorities (§5) and the NewsByte5 non-linear-editing stream mix (§6).
//
// A trace is a slice of requests sorted by arrival time; every scheduler
// in a comparison is fed the identical trace, so differences in outcomes
// are attributable to scheduling alone.
//
// Each generator has two forms: Generate allocates every request (and its
// priority vector) individually, GenerateArena packs them into an Arena's
// contiguous slabs for allocation-free regeneration across sweep cells.
// Both replay the same RNG draw sequence, so they produce identical
// traces.
package workload

import (
	"fmt"
	"sort"

	"sfcsched/internal/core"
	"sfcsched/internal/stats"
)

// PriorityDist selects how priority levels are drawn.
type PriorityDist int

const (
	// Uniform draws each level with equal probability.
	Uniform PriorityDist = iota
	// Normal draws from a clamped discretized normal centered mid-range
	// (the §6 "normal distribution of requests across the levels").
	Normal
	// Zipf draws level k with probability proportional to 1/(k+1).
	Zipf
)

// Open describes an open-arrival Poisson workload (§5 experiments).
type Open struct {
	Seed uint64
	// Count is the number of requests to generate.
	Count int
	// MeanInterarrival is the exponential inter-arrival mean, µs.
	// The paper's §5 experiments use 25 ms.
	MeanInterarrival int64
	// Dims and Levels shape the priority vector of each request.
	Dims   int
	Levels int
	// Dist selects the priority level distribution.
	Dist PriorityDist
	// DeadlineMin/Max bound the uniformly drawn relative deadline, µs.
	// Zero disables deadlines ("relaxed deadlines").
	DeadlineMin int64
	DeadlineMax int64
	// Cylinders spreads requests uniformly over [0, Cylinders).
	Cylinders int
	// Size is the transfer size per request, bytes.
	Size int64
	// SizeMin/SizeMax, when both positive, override Size with a transfer
	// size that grows linearly with the request's mean priority level
	// across dimensions: the paper's §5.2 assumption that high-priority
	// requests (audio/video chunks) are smaller than low-priority ones
	// (ftp transfers).
	SizeMin int64
	SizeMax int64
	// WriteFrac is the fraction of write requests.
	WriteFrac float64
	// ValueLevels, when positive, assigns a uniform application value in
	// [1, ValueLevels] (for value-based baselines).
	ValueLevels int
	// Tenants, when positive, tags each request with a tenant drawn
	// Zipf(TenantSkew) over [0, Tenants) from a private RNG stream, and an
	// SLO class (tenant mod Classes). Zero leaves tenant tagging off and
	// consumes no extra RNG draws, so existing traces are unchanged.
	Tenants int
	// TenantSkew is the Zipf exponent of the tenant draw: 0 is uniform,
	// larger values concentrate traffic on low-numbered tenants (the
	// skewed-tenant overload scenarios of the cluster experiments).
	TenantSkew float64
	// Classes is the number of SLO classes when Tenants > 0; values < 1
	// are treated as 1 (every request in class 0).
	Classes int
	// TenantZones, when set (with Tenants > 0), confines tenant t's
	// requests to its own contiguous cylinder/block zone
	// [t·Cylinders/Tenants, (t+1)·Cylinders/Tenants) instead of the whole
	// range — data locality per tenant, which makes affinity routing
	// meaningful.
	TenantZones bool
}

func (w Open) validate() error {
	if w.Count <= 0 {
		return fmt.Errorf("workload: Count must be positive, got %d", w.Count)
	}
	if w.MeanInterarrival <= 0 {
		return fmt.Errorf("workload: MeanInterarrival must be positive")
	}
	if w.Dims < 0 || w.Levels < 1 {
		return fmt.Errorf("workload: invalid priority shape dims=%d levels=%d", w.Dims, w.Levels)
	}
	if w.DeadlineMax < w.DeadlineMin {
		return fmt.Errorf("workload: DeadlineMax < DeadlineMin")
	}
	if w.Tenants < 0 || w.TenantSkew < 0 {
		return fmt.Errorf("workload: Tenants and TenantSkew must be non-negative")
	}
	if w.TenantZones && w.Tenants > 0 && w.Cylinders > 0 && w.Cylinders < w.Tenants {
		return fmt.Errorf("workload: TenantZones needs Cylinders >= Tenants, got %d < %d", w.Cylinders, w.Tenants)
	}
	return nil
}

// tenantZipf builds the private tenant-draw stream when tenant tagging is
// on. The stream is derived from the seed with a fixed offset rather than
// split off the main RNG, so enabling tagging consumes no draw from the
// main stream and an otherwise identical configuration generates the same
// arrivals, priorities, deadlines, sizes and writes. With Tenants == 0 it
// returns nil.
func (w Open) tenantZipf() *stats.Zipf {
	if w.Tenants <= 0 {
		return nil
	}
	return stats.NewZipf(stats.NewRNG(w.Seed^0x9E3779B97F4A7C15), w.Tenants, w.TenantSkew)
}

// genOne fills the i-th request into r, advancing the arrival clock. The
// caller provides r zeroed except for Priorities, which must already have
// length w.Dims (backed by an arena slab or a fresh allocation); both
// Generate forms funnel through here, so they consume the RNG stream
// identically draw for draw. tzipf is non-nil iff Tenants > 0; the tenant
// draws come from its private stream, so tagging never perturbs the main
// stream of an otherwise identical configuration.
func (w Open) genOne(i int, now *int64, rng *stats.RNG, zipf, tzipf *stats.Zipf, r *core.Request) {
	*now += int64(rng.Exponential(float64(w.MeanInterarrival)))
	r.ID = uint64(i + 1)
	r.Arrival = *now
	r.Size = w.Size
	for k := range r.Priorities {
		r.Priorities[k] = w.drawLevel(rng, zipf)
	}
	if w.DeadlineMax > 0 {
		r.Deadline = *now + w.DeadlineMin
		if span := w.DeadlineMax - w.DeadlineMin; span > 0 {
			r.Deadline += int64(rng.Uint64n(uint64(span) + 1))
		}
	}
	if w.SizeMin > 0 && w.SizeMax >= w.SizeMin && w.Dims > 0 && w.Levels > 1 {
		var sum int64
		for _, l := range r.Priorities {
			sum += int64(l)
		}
		r.Size = w.SizeMin + (w.SizeMax-w.SizeMin)*sum/int64(w.Dims*(w.Levels-1))
	}
	if tzipf != nil {
		r.Tenant = tzipf.Draw()
		if w.Classes > 1 {
			r.Class = r.Tenant % w.Classes
		}
	}
	if w.Cylinders > 0 {
		if tzipf != nil && w.TenantZones {
			lo := r.Tenant * w.Cylinders / w.Tenants
			hi := (r.Tenant + 1) * w.Cylinders / w.Tenants
			if hi <= lo {
				hi = lo + 1
			}
			r.Cylinder = lo + rng.Intn(hi-lo)
		} else {
			r.Cylinder = rng.Intn(w.Cylinders)
		}
	}
	if w.WriteFrac > 0 && rng.Float64() < w.WriteFrac {
		r.Write = true
	}
	if w.ValueLevels > 0 {
		r.Value = 1 + rng.Intn(w.ValueLevels)
	}
}

// Generate builds the trace. It is deterministic in the configuration.
func (w Open) Generate() ([]*core.Request, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(w.Seed)
	var zipf *stats.Zipf
	if w.Dist == Zipf {
		zipf = stats.NewZipf(rng.Split(), w.Levels, 1.0)
	}
	tzipf := w.tenantZipf()
	reqs := make([]*core.Request, 0, w.Count)
	now := int64(0)
	for i := 0; i < w.Count; i++ {
		r := &core.Request{}
		if w.Dims > 0 {
			r.Priorities = make([]int, w.Dims)
		}
		w.genOne(i, &now, rng, zipf, tzipf, r)
		reqs = append(reqs, r)
	}
	return reqs, nil
}

// MustGenerate is Generate for static configurations.
func (w Open) MustGenerate() []*core.Request {
	reqs, err := w.Generate()
	if err != nil {
		panic(err)
	}
	return reqs
}

func (w Open) drawLevel(rng *stats.RNG, zipf *stats.Zipf) int {
	return drawLevel(rng, zipf, w.Dist, w.Levels)
}

// drawLevel draws one priority level under dist; zipf must be non-nil iff
// dist is Zipf. Shared by the Open and Spec generators so every trace uses
// the same level distributions.
func drawLevel(rng *stats.RNG, zipf *stats.Zipf, dist PriorityDist, levels int) int {
	switch dist {
	case Normal:
		return rng.NormalLevel(levels, 0.25)
	case Zipf:
		return zipf.Draw()
	default:
		return rng.Intn(levels)
	}
}

// Streams describes the §6 NewsByte5 workload: Users concurrent MPEG-1
// editing streams issuing periodic bursty block requests against one disk.
type Streams struct {
	Seed uint64
	// Users is the number of concurrent streams (the paper sweeps 68-91).
	Users int
	// Duration is the simulated wall time, µs.
	Duration int64
	// BitRate is the per-stream media rate, bits/s (paper: 1.5 Mbps).
	BitRate float64
	// BlockSize is the file block size, bytes (Table 1: 64 KB).
	BlockSize int64
	// Levels is the number of user priority levels (paper: 8), drawn from
	// a clamped normal per user.
	Levels int
	// DeadlineMin/Max bound the uniformly drawn relative deadline, µs
	// (paper: 750-1500 ms).
	DeadlineMin int64
	DeadlineMax int64
	// Cylinders is the disk size in cylinders; each stream walks its file
	// sequentially from a random start with occasional edit jumps.
	Cylinders int
	// WriteFrac is the fraction of streams that record rather than play
	// (non-linear editing supports real-time writes).
	WriteFrac float64
	// Burst is the number of requests issued back-to-back each period
	// (requests "arrive in bursts"; served in batches).
	Burst int
}

func (s Streams) validate() (burst int, err error) {
	if s.Users <= 0 || s.Duration <= 0 {
		return 0, fmt.Errorf("workload: Users and Duration must be positive")
	}
	if s.BitRate <= 0 || s.BlockSize <= 0 {
		return 0, fmt.Errorf("workload: BitRate and BlockSize must be positive")
	}
	if s.Levels < 1 || s.Cylinders < 1 {
		return 0, fmt.Errorf("workload: Levels and Cylinders must be positive")
	}
	if s.DeadlineMax < s.DeadlineMin || s.DeadlineMin <= 0 {
		return 0, fmt.Errorf("workload: invalid deadline range [%d,%d]", s.DeadlineMin, s.DeadlineMax)
	}
	burst = s.Burst
	if burst < 1 {
		burst = 1
	}
	return burst, nil
}

// generate runs the stream mix and hands every request to emit in
// generation (pre-sort) order, with its single priority level passed
// separately so callers choose where the priority vector lives. Both
// Generate forms funnel through here, so they consume the RNG stream
// identically draw for draw.
func (s Streams) generate(burst int, emit func(r core.Request, level int)) {
	rng := stats.NewRNG(s.Seed)
	// A stream consumes BitRate bits/s; each block lasts blockPeriod.
	blockPeriod := int64(float64(s.BlockSize*8) / s.BitRate * 1e6)
	period := blockPeriod * int64(burst)

	id := uint64(1)
	for u := 0; u < s.Users; u++ {
		urng := rng.Split()
		level := urng.NormalLevel(s.Levels, 0.25)
		write := urng.Float64() < s.WriteFrac
		cyl := urng.Intn(s.Cylinders)
		phase := int64(urng.Uint64n(uint64(period)))
		for t := phase; t < s.Duration; t += period {
			// Blocks fetched for one playback period share their deadline.
			dl := t + s.DeadlineMin
			if span := s.DeadlineMax - s.DeadlineMin; span > 0 {
				dl += int64(urng.Uint64n(uint64(span) + 1))
			}
			for b := 0; b < burst; b++ {
				emit(core.Request{
					ID:       id,
					Arrival:  t,
					Deadline: dl,
					Cylinder: cyl,
					Size:     s.BlockSize,
					Write:    write,
				}, level)
				id++
				// Sequential file layout: the next block sits on the same
				// or next cylinder; edits occasionally jump elsewhere.
				if urng.Float64() < 0.02 {
					cyl = urng.Intn(s.Cylinders)
				} else if urng.Float64() < 0.5 {
					cyl = (cyl + 1) % s.Cylinders
				}
			}
		}
	}
}

// Generate builds the trace sorted by arrival time.
func (s Streams) Generate() ([]*core.Request, error) {
	burst, err := s.validate()
	if err != nil {
		return nil, err
	}
	var reqs []*core.Request
	s.generate(burst, func(r core.Request, level int) {
		q := &core.Request{}
		*q = r
		q.Priorities = []int{level}
		reqs = append(reqs, q)
	})
	sortAndRenumber(reqs)
	return reqs, nil
}

// MustGenerate is Generate for static configurations.
func (s Streams) MustGenerate() []*core.Request {
	reqs, err := s.Generate()
	if err != nil {
		panic(err)
	}
	return reqs
}

// sortAndRenumber orders a generated trace by arrival time (stable, so
// same-time bursts keep generation order) and reassigns IDs 1..n in the
// final order.
func sortAndRenumber(reqs []*core.Request) {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	for i, r := range reqs {
		r.ID = uint64(i + 1)
	}
}
