package workload

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"sfcsched/internal/core"
)

// specVariants covers every draw path of the Spec generator, mirroring
// openVariants: each branch that consumes RNG draws must be exercised so
// a draw-order divergence between Generate and GenerateArena cannot hide.
func specVariants() []Spec {
	return []Spec{
		// Single Poisson client, the §5 shape.
		{Seed: 1, Clients: []Client{{
			Name: "steady", Count: 500, MeanInterarrival: 10_000, Dims: 3, Levels: 8,
			DeadlineMin: 100_000, DeadlineMax: 300_000, Cylinders: 3832,
			Size: 64 << 10, WriteFrac: 0.3, ValueLevels: 5,
		}}},
		// Gamma bursts with rate windows, Zipf levels, size scaling.
		{Seed: 2, Clients: []Client{{
			Name: "bursty", Count: 400, MeanInterarrival: 20_000,
			Process: GammaArrivals, Shape: 0.5, Burst: 4, Dims: 2, Levels: 8,
			Dist: Zipf, Cylinders: 1000, SizeMin: 4 << 10, SizeMax: 256 << 10,
			Windows: []Window{{From: 1_000_000, To: 3_000_000, Factor: 6}},
		}}},
		// Weibull pacing, sequential walk in a zone, normal levels, no deadlines.
		{Seed: 3, Clients: []Client{{
			Name: "scrub", Count: 300, MeanInterarrival: 15_000,
			Process: WeibullArrivals, Shape: 2, Dims: 2, Levels: 16, Dist: Normal,
			Cylinders: 2048, ZoneLo: 1024, ZoneHi: 2048, Sequential: true,
			Size: 128 << 10, Tenant: 2, Class: 2,
		}}},
		// Dimensionless requests with a late start.
		{Seed: 4, Clients: []Client{{
			Name: "flat", Count: 200, MeanInterarrival: 5_000, Dims: 0, Levels: 1,
			Start: 2_000_000, DeadlineMin: 50_000, DeadlineMax: 50_000,
		}}},
		// Three heterogeneous cohorts merged.
		{Seed: 5, Clients: []Client{
			{Name: "stream", Count: 250, MeanInterarrival: 25_000, Dims: 2, Levels: 8,
				DeadlineMin: 75_000, DeadlineMax: 150_000, Cylinders: 4096,
				ZoneLo: 0, ZoneHi: 2048, Size: 64 << 10},
			{Name: "edit", Count: 120, MeanInterarrival: 50_000,
				Process: GammaArrivals, Shape: 0.5, Burst: 4, Dims: 2, Levels: 8,
				Cylinders: 4096, ZoneLo: 0, ZoneHi: 2048, Size: 64 << 10,
				WriteFrac: 0.5, Tenant: 1, Class: 1},
			{Name: "scrub", Count: 130, MeanInterarrival: 40_000,
				Process: WeibullArrivals, Shape: 2, Dims: 2, Levels: 8,
				Cylinders: 4096, ZoneLo: 2048, ZoneHi: 4096, Sequential: true,
				Size: 64 << 10, Tenant: 2, Class: 2},
		}},
	}
}

func TestSpecGenerateArenaMatchesGenerate(t *testing.T) {
	for vi, s := range specVariants() {
		var a Arena
		sameTrace(t, fmt.Sprintf("variant %d", vi), s.MustGenerate(), s.MustGenerateArena(&a))
	}
}

func TestSpecDeterminism(t *testing.T) {
	s := specVariants()[4]
	sameTrace(t, "repeat", s.MustGenerate(), s.MustGenerate())
}

func TestSpecArenaSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	s := specVariants()[4]
	var a Arena
	s.MustGenerateArena(&a) // size the slabs
	allocs := testing.AllocsPerRun(10, func() {
		if got := s.MustGenerateArena(&a); len(got) != s.Count() {
			t.Fatal("short trace")
		}
	})
	if allocs > 2 {
		t.Errorf("spec arena regeneration allocates %v per trace, want <= 2", allocs)
	}
}

// Clients draw from private seed-offset streams, so a cohort's requests
// are identical whatever other cohorts share the spec.
func TestSpecClientStreamsAreIndependent(t *testing.T) {
	mixed := specVariants()[4]
	solo := Spec{Seed: mixed.Seed, Clients: mixed.Clients[:1]}
	want := solo.MustGenerate()
	var got []*core.Request
	for _, r := range mixed.MustGenerate() {
		if r.Tenant == 0 {
			got = append(got, r)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("client 0 contributed %d requests in the mix, %d alone", len(got), len(want))
	}
	for i := range want {
		a, b := *want[i], *got[i]
		a.ID, b.ID = 0, 0 // IDs renumber across the merged trace
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("request %d of client 0 changed when cohorts were added:\nalone: %+v\nmixed: %+v", i, a, b)
		}
	}
}

func TestSpecTraceIsSortedAndRenumbered(t *testing.T) {
	trace := specVariants()[4].MustGenerate()
	for i, r := range trace {
		if r.ID != uint64(i+1) {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if i > 0 && r.Arrival < trace[i-1].Arrival {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
}

func TestSpecValidationErrors(t *testing.T) {
	ok := Client{Name: "c", Count: 10, MeanInterarrival: 1000, Dims: 1, Levels: 4, Cylinders: 100}
	cases := []struct {
		name string
		mut  func(*Client)
		want string
	}{
		{"no-count", func(c *Client) { c.Count = 0 }, "Count"},
		{"no-mean", func(c *Client) { c.MeanInterarrival = 0 }, "MeanInterarrival"},
		{"bad-process", func(c *Client) { c.Process = arrivalProcessCount }, "arrival process"},
		{"bad-levels", func(c *Client) { c.Levels = 0 }, "priority shape"},
		{"bad-deadline", func(c *Client) { c.DeadlineMin = 10; c.DeadlineMax = 5 }, "DeadlineMax"},
		{"bad-start", func(c *Client) { c.Start = -1 }, "Start"},
		{"bad-zone", func(c *Client) { c.ZoneLo = 50; c.ZoneHi = 200 }, "zone"},
		{"bad-window", func(c *Client) { c.Windows = []Window{{From: 5, To: 5, Factor: 2}} }, "window"},
		{"bad-factor", func(c *Client) { c.Windows = []Window{{From: 0, To: 5, Factor: 0}} }, "window"},
	}
	for _, tc := range cases {
		c := ok
		tc.mut(&c)
		_, err := Spec{Seed: 1, Clients: []Client{c}}.Generate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if _, err := (Spec{Seed: 1}).Generate(); err == nil {
		t.Error("empty spec did not error")
	}
	mixedDims := Spec{Seed: 1, Clients: []Client{ok, {Name: "d", Count: 10, MeanInterarrival: 1000, Dims: 2, Levels: 4}}}
	if _, err := mixedDims.Generate(); err == nil || !strings.Contains(err.Error(), "Dims") {
		t.Errorf("mixed dims error = %v, want mention of Dims", err)
	}
}

// Statistical validation of the arrival processes as the Spec generator
// wires them: the realized inter-arrival gaps of each process must match
// the theoretical mean and coefficient of variation. The table iterates
// the ArrivalProcess enum exhaustively, so adding a process without a
// validation row fails the test.
func TestSpecArrivalProcessStatistics(t *testing.T) {
	type row struct {
		shape float64
		cv    float64 // theoretical stddev/mean of the gap
	}
	g := math.Gamma
	rows := map[ArrivalProcess]row{
		Poisson:         {shape: 0, cv: 1},
		GammaArrivals:   {shape: 0.5, cv: math.Sqrt2},
		WeibullArrivals: {shape: 2, cv: math.Sqrt(g(2)-g(1.5)*g(1.5)) / g(1.5)},
	}
	const mean = 10_000
	const n = 20_000
	for p := ArrivalProcess(0); p < arrivalProcessCount; p++ {
		r, okRow := rows[p]
		if !okRow {
			t.Fatalf("arrival process %v has no statistical validation row", p)
		}
		t.Run(p.String(), func(t *testing.T) {
			s := Spec{Seed: 11, Clients: []Client{{
				Name: "g", Count: n + 1, MeanInterarrival: mean,
				Process: p, Shape: r.shape, Dims: 0, Levels: 1,
			}}}
			trace := s.MustGenerate()
			gaps := make([]float64, n)
			sum := 0.0
			for i := 1; i <= n; i++ {
				gaps[i-1] = float64(trace[i].Arrival - trace[i-1].Arrival)
				sum += gaps[i-1]
			}
			m := sum / n
			var sq float64
			for _, x := range gaps {
				sq += (x - m) * (x - m)
			}
			cv := math.Sqrt(sq/(n-1)) / m
			// Gaps are truncated to whole microseconds, so allow the
			// integer bias on top of sampling error.
			if math.Abs(m-mean)/mean > 0.05 {
				t.Errorf("mean gap %.1f, want %d ±5%%", m, mean)
			}
			if math.Abs(cv-r.cv) > 0.06*math.Max(r.cv, 1) {
				t.Errorf("gap CV %.4f, want %.4f", cv, r.cv)
			}
		})
	}
}

// A rate window must scale the realized arrival rate by its factor.
func TestSpecRateWindowScalesArrivals(t *testing.T) {
	const mean = 10_000
	const factor = 4.0
	win := Window{From: 20_000_000, To: 40_000_000, Factor: factor}
	s := Spec{Seed: 13, Clients: []Client{{
		Name: "w", Count: 12_000, MeanInterarrival: mean, Dims: 0, Levels: 1,
		Windows: []Window{win},
	}}}
	trace := s.MustGenerate()
	inside, outside := 0, 0
	var outSpan int64
	last := trace[len(trace)-1].Arrival
	for _, r := range trace {
		if r.Arrival >= win.From && r.Arrival < win.To {
			inside++
		} else {
			outside++
		}
	}
	outSpan = last - (win.To - win.From)
	if outSpan <= 0 || inside == 0 || outside == 0 {
		t.Fatalf("degenerate split: inside %d outside %d span %d", inside, outside, outSpan)
	}
	rateIn := float64(inside) / float64(win.To-win.From)
	rateOut := float64(outside) / float64(outSpan)
	if ratio := rateIn / rateOut; ratio < factor*0.85 || ratio > factor*1.15 {
		t.Errorf("window rate ratio %.2f, want ~%.1f", ratio, factor)
	}
}

func TestScenarioSpecs(t *testing.T) {
	for _, name := range Scenarios() {
		t.Run(name, func(t *testing.T) {
			spec, err := ScenarioSpec(name, 7, 2000, 4096)
			if err != nil {
				t.Fatal(err)
			}
			trace := spec.MustGenerate()
			if len(trace) != 2000 {
				t.Fatalf("scenario %s generated %d requests, want 2000", name, len(trace))
			}
			var a Arena
			sameTrace(t, name, trace, spec.MustGenerateArena(&a))
		})
	}
	if _, err := ScenarioSpec("nope", 1, 1000, 1000); err == nil {
		t.Error("unknown scenario did not error")
	}
	if _, err := ScenarioSpec("steady", 1, 1, 1000); err == nil {
		t.Error("undersized scenario did not error")
	}
	if _, err := ScenarioSpec("steady", 1, 1000, 1); err == nil {
		t.Error("cylinder-less scenario did not error")
	}
}

// The mixed scenario must actually exercise cohort diversity: multiple
// classes, writes, a deadline-free scrub cohort confined to the upper
// zone.
func TestMixedScenarioComposition(t *testing.T) {
	trace := MustScenarioSpec("mixed", 3, 3000, 4096).MustGenerate()
	classes := map[int]int{}
	writes, noDeadline := 0, 0
	for _, r := range trace {
		classes[r.Class]++
		if r.Write {
			writes++
		}
		if r.Deadline == 0 {
			noDeadline++
			if r.Cylinder < 2048 {
				t.Fatalf("scrub request %d at cylinder %d, want upper zone", r.ID, r.Cylinder)
			}
		}
	}
	if len(classes) != 3 {
		t.Errorf("mixed scenario has %d classes, want 3", len(classes))
	}
	if writes == 0 {
		t.Error("mixed scenario generated no writes")
	}
	if noDeadline == 0 {
		t.Error("mixed scenario generated no deadline-free scrub requests")
	}
}
