package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	trace := Open{
		Seed: 9, Count: 200, MeanInterarrival: 10_000,
		Dims: 3, Levels: 8, DeadlineMin: 100_000, DeadlineMax: 300_000,
		Cylinders: 3832, SizeMin: 4 << 10, SizeMax: 64 << 10,
		WriteFrac: 0.3, ValueLevels: 5,
	}.MustGenerate()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trace, 3); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("read %d requests, want %d", len(got), len(trace))
	}
	for i, r := range trace {
		g := got[i]
		if g.ID != r.ID || g.Arrival != r.Arrival || g.Deadline != r.Deadline ||
			g.Cylinder != r.Cylinder || g.Size != r.Size || g.Write != r.Write ||
			g.Value != r.Value {
			t.Fatalf("request %d differs: %+v vs %+v", i, g, r)
		}
		for d := 0; d < 3; d++ {
			if g.Priorities[d] != r.Priorities[d] {
				t.Fatalf("request %d priority %d differs", i, d)
			}
		}
	}
}

func TestCSVZeroDims(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, Open{
		Seed: 1, Count: 5, MeanInterarrival: 1000, Levels: 1,
	}.MustGenerate(), 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Priorities != nil {
		t.Errorf("zero-dim round trip wrong: %+v", got[0])
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not,a,trace\n1,2,3\n",
		"id,arrival_us,deadline_us,cylinder,size,write,value\nx,0,0,0,0,false,0\n",
		"id,arrival_us,deadline_us,cylinder,size,write,value\n1,0,0,0,0,maybe,0\n",
		"id,arrival_us,deadline_us,cylinder,size,write,value,priority_0\n1,0,0,0,0,false,0\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
