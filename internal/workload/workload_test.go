package workload

import (
	"math"
	"testing"
)

func openCfg() Open {
	return Open{
		Seed: 1, Count: 5000, MeanInterarrival: 25_000,
		Dims: 3, Levels: 16, DeadlineMin: 500_000, DeadlineMax: 700_000,
		Cylinders: 3832, Size: 64 << 10,
	}
}

func TestOpenDeterministic(t *testing.T) {
	a := openCfg().MustGenerate()
	b := openCfg().MustGenerate()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Cylinder != b[i].Cylinder ||
			a[i].Deadline != b[i].Deadline || a[i].Priorities[2] != b[i].Priorities[2] {
			t.Fatalf("request %d differs between identical configs", i)
		}
	}
	c := openCfg()
	c.Seed = 2
	if d := c.MustGenerate(); d[0].Arrival == a[0].Arrival && d[1].Arrival == a[1].Arrival {
		t.Error("different seeds produced identical arrivals")
	}
}

func TestOpenArrivalsSortedAndExponential(t *testing.T) {
	reqs := openCfg().MustGenerate()
	var sum float64
	prev := int64(0)
	for _, r := range reqs {
		if r.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		sum += float64(r.Arrival - prev)
		prev = r.Arrival
	}
	mean := sum / float64(len(reqs))
	if math.Abs(mean-25_000) > 1500 {
		t.Errorf("mean interarrival = %.0f, want ~25000", mean)
	}
}

func TestOpenFieldsInRange(t *testing.T) {
	reqs := openCfg().MustGenerate()
	for _, r := range reqs {
		if len(r.Priorities) != 3 {
			t.Fatal("wrong priority dims")
		}
		for _, p := range r.Priorities {
			if p < 0 || p >= 16 {
				t.Fatalf("priority %d out of range", p)
			}
		}
		if r.Cylinder < 0 || r.Cylinder >= 3832 {
			t.Fatalf("cylinder %d out of range", r.Cylinder)
		}
		rel := r.Deadline - r.Arrival
		if rel < 500_000 || rel > 700_000 {
			t.Fatalf("relative deadline %d outside [500ms,700ms]", rel)
		}
	}
}

func TestOpenRelaxedDeadlines(t *testing.T) {
	cfg := openCfg()
	cfg.DeadlineMin, cfg.DeadlineMax = 0, 0
	for _, r := range cfg.MustGenerate() {
		if r.Deadline != 0 {
			t.Fatal("relaxed config should not set deadlines")
		}
	}
}

func TestOpenDistributions(t *testing.T) {
	for _, dist := range []PriorityDist{Uniform, Normal, Zipf} {
		cfg := openCfg()
		cfg.Dist = dist
		counts := make([]int, cfg.Levels)
		for _, r := range cfg.MustGenerate() {
			counts[r.Priorities[0]]++
		}
		switch dist {
		case Normal:
			if counts[8] <= counts[0] {
				t.Errorf("normal: center %d <= edge %d", counts[8], counts[0])
			}
		case Zipf:
			if counts[0] <= counts[15] {
				t.Errorf("zipf: first %d <= last %d", counts[0], counts[15])
			}
		}
	}
}

func TestOpenWritesAndValues(t *testing.T) {
	cfg := openCfg()
	cfg.WriteFrac = 0.3
	cfg.ValueLevels = 5
	writes := 0
	for _, r := range cfg.MustGenerate() {
		if r.Write {
			writes++
		}
		if r.Value < 1 || r.Value > 5 {
			t.Fatalf("value %d out of range", r.Value)
		}
	}
	frac := float64(writes) / float64(cfg.Count)
	if math.Abs(frac-0.3) > 0.03 {
		t.Errorf("write fraction = %.3f, want ~0.3", frac)
	}
}

func TestOpenValidation(t *testing.T) {
	bad := []Open{
		{},
		{Count: 10},
		{Count: 10, MeanInterarrival: 100, Levels: 0},
		{Count: 10, MeanInterarrival: 100, Levels: 4, DeadlineMin: 10, DeadlineMax: 5},
		{Count: 10, MeanInterarrival: 100, Levels: 4, Tenants: -1},
		{Count: 10, MeanInterarrival: 100, Levels: 4, Tenants: 4, TenantSkew: -0.5},
		{Count: 10, MeanInterarrival: 100, Levels: 4, Tenants: 8, Cylinders: 4, TenantZones: true},
	}
	for i, cfg := range bad {
		if _, err := cfg.Generate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestOpenTenantTagging(t *testing.T) {
	cfg := openCfg()
	cfg.Tenants = 10
	cfg.TenantSkew = 1.2
	cfg.Classes = 3
	cfg.TenantZones = true
	var perTenant [10]int
	for _, r := range cfg.MustGenerate() {
		if r.Tenant < 0 || r.Tenant >= cfg.Tenants {
			t.Fatalf("tenant %d out of [0,%d)", r.Tenant, cfg.Tenants)
		}
		if r.Class != r.Tenant%cfg.Classes {
			t.Fatalf("tenant %d has class %d, want %d", r.Tenant, r.Class, r.Tenant%cfg.Classes)
		}
		lo := r.Tenant * cfg.Cylinders / cfg.Tenants
		hi := (r.Tenant + 1) * cfg.Cylinders / cfg.Tenants
		if r.Cylinder < lo || r.Cylinder >= hi {
			t.Fatalf("tenant %d cylinder %d outside its zone [%d,%d)", r.Tenant, r.Cylinder, lo, hi)
		}
		perTenant[r.Tenant]++
	}
	// Zipf skew 1.2 concentrates traffic on the low tenants.
	if perTenant[0] <= perTenant[9] {
		t.Errorf("skew 1.2 gave tenant 0 %d requests vs tenant 9's %d", perTenant[0], perTenant[9])
	}
}

// Tenant tagging must not perturb the main RNG stream: the same config
// with Tenants on and off produces identical arrivals, priorities,
// deadlines, sizes and writes (cylinders differ only under TenantZones).
func TestOpenTenantTaggingPreservesStream(t *testing.T) {
	base := openCfg()
	base.WriteFrac = 0.3
	tagged := base
	tagged.Tenants = 7
	tagged.TenantSkew = 0.8
	tagged.Classes = 2
	a, b := base.MustGenerate(), tagged.MustGenerate()
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Deadline != b[i].Deadline ||
			a[i].Cylinder != b[i].Cylinder || a[i].Size != b[i].Size ||
			a[i].Write != b[i].Write || a[i].Priorities[1] != b[i].Priorities[1] {
			t.Fatalf("request %d diverged when tenant tagging was enabled:\noff: %+v\non:  %+v",
				i, *a[i], *b[i])
		}
	}
}

func streamCfg() Streams {
	return Streams{
		Seed: 1, Users: 75, Duration: 20_000_000,
		BitRate: 1.5e6, BlockSize: 64 << 10, Levels: 8,
		DeadlineMin: 750_000, DeadlineMax: 1_500_000,
		Cylinders: 3832, WriteFrac: 0.2, Burst: 3,
	}
}

func TestStreamsDeterministicAndSorted(t *testing.T) {
	a := streamCfg().MustGenerate()
	b := streamCfg().MustGenerate()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ or empty: %d vs %d", len(a), len(b))
	}
	prev := int64(0)
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Cylinder != b[i].Cylinder {
			t.Fatalf("request %d differs", i)
		}
		if a[i].Arrival < prev {
			t.Fatal("not sorted by arrival")
		}
		prev = a[i].Arrival
	}
}

func TestStreamsThroughputMatchesBitrate(t *testing.T) {
	cfg := streamCfg()
	reqs := cfg.MustGenerate()
	// Expected requests: users * duration / blockPeriod.
	blockPeriod := float64(cfg.BlockSize*8) / cfg.BitRate * 1e6
	want := float64(cfg.Users) * float64(cfg.Duration) / blockPeriod
	got := float64(len(reqs))
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("requests = %.0f, want ~%.0f", got, want)
	}
}

func TestStreamsBursty(t *testing.T) {
	reqs := streamCfg().MustGenerate()
	// With burst=3 many consecutive requests share an arrival timestamp.
	same := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival == reqs[i-1].Arrival {
			same++
		}
	}
	if float64(same)/float64(len(reqs)) < 0.4 {
		t.Errorf("only %d/%d shared timestamps; expected bursts", same, len(reqs))
	}
}

func TestStreamsPriorityAndDeadlineRanges(t *testing.T) {
	for _, r := range streamCfg().MustGenerate() {
		if r.Priorities[0] < 0 || r.Priorities[0] >= 8 {
			t.Fatalf("level %d out of range", r.Priorities[0])
		}
		rel := r.Deadline - r.Arrival
		if rel < 750_000 || rel > 1_500_000 {
			t.Fatalf("relative deadline %d out of range", rel)
		}
	}
}

func TestStreamsWriteMix(t *testing.T) {
	reqs := streamCfg().MustGenerate()
	writes := 0
	for _, r := range reqs {
		if r.Write {
			writes++
		}
	}
	frac := float64(writes) / float64(len(reqs))
	if frac < 0.05 || frac > 0.45 {
		t.Errorf("write fraction = %.3f, want around 0.2", frac)
	}
}

func TestStreamsMostlySequentialCylinders(t *testing.T) {
	cfg := streamCfg()
	cfg.Users = 1
	cfg.Burst = 1
	reqs := cfg.MustGenerate()
	small := 0
	for i := 1; i < len(reqs); i++ {
		d := reqs[i].Cylinder - reqs[i-1].Cylinder
		if d < 0 {
			d = -d
		}
		if d <= 1 {
			small++
		}
	}
	if float64(small)/float64(len(reqs)) < 0.8 {
		t.Errorf("single stream should be mostly sequential: %d/%d", small, len(reqs))
	}
}

func TestStreamsValidation(t *testing.T) {
	bad := []Streams{
		{},
		{Users: 5, Duration: 1000},
		{Users: 5, Duration: 1000, BitRate: 1e6, BlockSize: 1024, Levels: 8, Cylinders: 100},
		{Users: 5, Duration: 1000, BitRate: 1e6, BlockSize: 1024, Levels: 8, Cylinders: 100,
			DeadlineMin: 100, DeadlineMax: 50},
	}
	for i, cfg := range bad {
		if _, err := cfg.Generate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
