//go:build !race

package workload

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
