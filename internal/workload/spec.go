package workload

import (
	"fmt"
	"math"

	"sfcsched/internal/core"
	"sfcsched/internal/stats"
)

// ArrivalProcess selects the renewal process a client draws inter-arrival
// gaps from. All three are parameterized by the mean gap, so swapping the
// process changes burstiness without changing offered load.
type ArrivalProcess int

const (
	// Poisson draws exponential gaps (CV 1) — the paper's §5 arrivals.
	Poisson ArrivalProcess = iota
	// GammaArrivals draws gamma gaps with a client-chosen shape: shape < 1
	// clumps requests into bursts (CV 1/√k > 1), shape > 1 paces them.
	GammaArrivals
	// WeibullArrivals draws Weibull gaps: shape > 1 approximates periodic
	// issue (rising hazard), shape < 1 heavy-tailed silences.
	WeibullArrivals

	// arrivalProcessCount bounds the enum; the statistical validation test
	// iterates to it so an unvalidated new process fails the build of the
	// test table.
	arrivalProcessCount
)

// String names the process for experiment notes and error messages.
func (p ArrivalProcess) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case GammaArrivals:
		return "gamma"
	case WeibullArrivals:
		return "weibull"
	default:
		return fmt.Sprintf("ArrivalProcess(%d)", int(p))
	}
}

// Window scales a client's arrival rate inside [From, To): the drawn gap
// is divided by Factor, so Factor > 1 is a flash crowd (more arrivals)
// and Factor < 1 a lull. Windows are checked against the clock *before*
// the gap is added, first match wins.
type Window struct {
	From, To int64
	Factor   float64
}

// Client is one cohort of a multi-client Spec: an independent arrival
// process with its own request shape, drawn from a private seed-offset RNG
// stream so adding, removing, or reordering other clients never perturbs
// its draws.
type Client struct {
	// Name labels the cohort in scenario notes; it does not affect draws.
	Name string
	// Count is the number of requests this client issues.
	Count int
	// MeanInterarrival is the mean gap between arrival epochs, µs.
	MeanInterarrival int64
	// Process selects the gap distribution; Shape parameterizes Gamma and
	// Weibull gaps (values <= 0 default to 1, which degenerates both to
	// Poisson).
	Process ArrivalProcess
	Shape   float64
	// Start offsets the client's arrival clock, µs (a cohort that joins
	// late).
	Start int64
	// Burst issues this many requests back-to-back per arrival epoch
	// (values < 1 mean 1).
	Burst int
	// Windows scales the arrival rate over time (flash crowds, diurnal
	// steps).
	Windows []Window
	// Dims and Levels shape the priority vector; Dist selects the level
	// distribution. Every client of a Spec must agree on Dims (the
	// scheduler's parameter space is fixed per run), Levels may differ.
	Dims   int
	Levels int
	Dist   PriorityDist
	// DeadlineMin/Max bound the uniformly drawn relative deadline, µs.
	// Zero disables deadlines.
	DeadlineMin int64
	DeadlineMax int64
	// Cylinders is the disk size; ZoneLo/ZoneHi (when ZoneHi > ZoneLo)
	// confine this client to [ZoneLo, ZoneHi). Sequential replaces uniform
	// placement with a draw-free sequential walk from the zone start (a
	// batch scrub).
	Cylinders  int
	ZoneLo     int
	ZoneHi     int
	Sequential bool
	// Size is the transfer size; SizeMin/SizeMax, when both positive,
	// scale it with the mean priority level as in Open.
	Size    int64
	SizeMin int64
	SizeMax int64
	// WriteFrac is the fraction of writes; ValueLevels assigns uniform
	// application values in [1, ValueLevels] when positive.
	WriteFrac   float64
	ValueLevels int
	// Tenant and Class tag every request of this cohort for the cluster
	// layer's routing, admission, and per-class accounting.
	Tenant int
	Class  int
}

func (c Client) validate(i, dims int) error {
	if c.Count <= 0 {
		return fmt.Errorf("workload: client %d (%s): Count must be positive, got %d", i, c.Name, c.Count)
	}
	if c.MeanInterarrival <= 0 {
		return fmt.Errorf("workload: client %d (%s): MeanInterarrival must be positive", i, c.Name)
	}
	if c.Process < 0 || c.Process >= arrivalProcessCount {
		return fmt.Errorf("workload: client %d (%s): unknown arrival process %d", i, c.Name, c.Process)
	}
	if c.Dims < 0 || c.Levels < 1 {
		return fmt.Errorf("workload: client %d (%s): invalid priority shape dims=%d levels=%d", i, c.Name, c.Dims, c.Levels)
	}
	if c.Dims != dims {
		return fmt.Errorf("workload: client %d (%s): Dims %d differs from the spec's %d; all clients must agree", i, c.Name, c.Dims, dims)
	}
	if c.DeadlineMax < c.DeadlineMin {
		return fmt.Errorf("workload: client %d (%s): DeadlineMax < DeadlineMin", i, c.Name)
	}
	if c.Start < 0 {
		return fmt.Errorf("workload: client %d (%s): Start must be non-negative", i, c.Name)
	}
	if c.ZoneLo != 0 || c.ZoneHi != 0 {
		if c.ZoneHi <= c.ZoneLo || c.ZoneLo < 0 || c.ZoneHi > c.Cylinders {
			return fmt.Errorf("workload: client %d (%s): zone [%d,%d) outside [0,%d)", i, c.Name, c.ZoneLo, c.ZoneHi, c.Cylinders)
		}
	}
	for j, w := range c.Windows {
		if w.To <= w.From || w.Factor <= 0 {
			return fmt.Errorf("workload: client %d (%s): window %d invalid ([%d,%d) factor %g)", i, c.Name, j, w.From, w.To, w.Factor)
		}
	}
	return nil
}

// zone returns the client's cylinder range [lo, hi).
func (c Client) zone() (lo, hi int) {
	if c.ZoneHi > c.ZoneLo {
		return c.ZoneLo, c.ZoneHi
	}
	return 0, c.Cylinders
}

// rateFactor returns the arrival-rate multiplier in effect at time now.
func (c Client) rateFactor(now int64) float64 {
	for _, w := range c.Windows {
		if now >= w.From && now < w.To {
			return w.Factor
		}
	}
	return 1
}

// gap draws the next inter-arrival gap at clock now (window factors are
// evaluated at the pre-gap clock).
func (c Client) gap(rng *stats.RNG, now int64) int64 {
	mean := float64(c.MeanInterarrival)
	shape := c.Shape
	if shape <= 0 {
		shape = 1
	}
	var g float64
	switch c.Process {
	case GammaArrivals:
		g = rng.Gamma(shape, mean/shape)
	case WeibullArrivals:
		g = rng.Weibull(shape, mean/math.Gamma(1+1/shape))
	default:
		g = rng.Exponential(mean)
	}
	return int64(g / c.rateFactor(now))
}

// Spec is a multi-client workload: a set of independent cohorts merged
// into one arrival-ordered trace. Each client draws from its own RNG
// stream derived from Seed by a fixed per-index offset, so the spec is
// deterministic and compositional: client k's requests are identical
// whatever the other clients do.
type Spec struct {
	Seed    uint64
	Clients []Client
}

func (s Spec) validate() (dims int, err error) {
	if len(s.Clients) == 0 {
		return 0, fmt.Errorf("workload: Spec needs at least one client")
	}
	dims = s.Clients[0].Dims
	for i, c := range s.Clients {
		if err := c.validate(i, dims); err != nil {
			return 0, err
		}
	}
	return dims, nil
}

// Count returns the total number of requests the spec generates.
func (s Spec) Count() int {
	n := 0
	for _, c := range s.Clients {
		n += c.Count
	}
	return n
}

// Dims returns the shared priority dimensionality of all clients.
func (s Spec) Dims() int {
	if len(s.Clients) == 0 {
		return 0
	}
	return s.Clients[0].Dims
}

// clientRNG builds client i's private stream. The offset multiplies the
// SplitMix64 golden increment by the 1-based index, so streams are far
// apart for any seed and client 0's stream differs from NewRNG(Seed) —
// the spec never aliases the single-stream generators.
func (s Spec) clientRNG(i int) *stats.RNG {
	return stats.NewRNG(s.Seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15))
}

// generate fills client c's requests through fill, which must return the
// i-th request with its Priorities already sized to c.Dims. Both Generate
// forms funnel through here, so they consume the client stream identically
// draw for draw. Per request the draw order is: gap (first request of each
// burst epoch only), priority levels, deadline, cylinder (uniform
// placement only), write, value.
func (c Client) generate(rng *stats.RNG, fill func(i int) *core.Request) {
	var zipf *stats.Zipf
	if c.Dist == Zipf {
		zipf = stats.NewZipf(rng.Split(), c.Levels, 1.0)
	}
	burst := c.Burst
	if burst < 1 {
		burst = 1
	}
	lo, hi := c.zone()
	seq := lo // sequential walk position
	now := c.Start
	for i := 0; i < c.Count; i++ {
		if i%burst == 0 {
			now += c.gap(rng, now)
		}
		r := fill(i)
		r.Arrival = now
		r.Size = c.Size
		r.Tenant = c.Tenant
		r.Class = c.Class
		for k := range r.Priorities {
			r.Priorities[k] = drawLevel(rng, zipf, c.Dist, c.Levels)
		}
		if c.DeadlineMax > 0 {
			r.Deadline = now + c.DeadlineMin
			if span := c.DeadlineMax - c.DeadlineMin; span > 0 {
				r.Deadline += int64(rng.Uint64n(uint64(span) + 1))
			}
		}
		if c.SizeMin > 0 && c.SizeMax >= c.SizeMin && c.Dims > 0 && c.Levels > 1 {
			var sum int64
			for _, l := range r.Priorities {
				sum += int64(l)
			}
			r.Size = c.SizeMin + (c.SizeMax-c.SizeMin)*sum/int64(c.Dims*(c.Levels-1))
		}
		if hi > lo {
			if c.Sequential {
				r.Cylinder = seq
				seq++
				if seq >= hi {
					seq = lo
				}
			} else {
				r.Cylinder = lo + rng.Intn(hi-lo)
			}
		}
		if c.WriteFrac > 0 && rng.Float64() < c.WriteFrac {
			r.Write = true
		}
		if c.ValueLevels > 0 {
			r.Value = 1 + rng.Intn(c.ValueLevels)
		}
	}
}

// Generate builds the merged trace, sorted by arrival with IDs reassigned
// 1..n. It is deterministic in the spec.
func (s Spec) Generate() ([]*core.Request, error) {
	dims, err := s.validate()
	if err != nil {
		return nil, err
	}
	reqs := make([]*core.Request, 0, s.Count())
	for ci, c := range s.Clients {
		rng := s.clientRNG(ci)
		base := len(reqs)
		for i := 0; i < c.Count; i++ {
			r := &core.Request{}
			if dims > 0 {
				r.Priorities = make([]int, dims)
			}
			reqs = append(reqs, r)
		}
		c.generate(rng, func(i int) *core.Request { return reqs[base+i] })
	}
	sortAndRenumber(reqs)
	return reqs, nil
}

// MustGenerate is Generate for static configurations.
func (s Spec) MustGenerate() []*core.Request {
	reqs, err := s.Generate()
	if err != nil {
		panic(err)
	}
	return reqs
}

// GenerateArena builds the same trace as Generate — identical requests in
// identical order — into a's slabs. A nil arena falls back to Generate.
func (s Spec) GenerateArena(a *Arena) ([]*core.Request, error) {
	if a == nil {
		return s.Generate()
	}
	dims, err := s.validate()
	if err != nil {
		return nil, err
	}
	total := s.Count()
	reqs := a.requests(total)
	prio := a.priorities(total * dims)
	ptrs := a.pointers(total)
	base := 0
	for ci, c := range s.Clients {
		rng := s.clientRNG(ci)
		b := base
		c.generate(rng, func(i int) *core.Request {
			r := &reqs[b+i]
			if dims > 0 {
				r.Priorities = prio[(b+i)*dims : (b+i+1)*dims : (b+i+1)*dims]
			}
			return r
		})
		base += c.Count
	}
	for i := range reqs {
		ptrs[i] = &reqs[i]
	}
	sortAndRenumber(ptrs)
	return ptrs, nil
}

// MustGenerateArena is GenerateArena for static configurations.
func (s Spec) MustGenerateArena(a *Arena) []*core.Request {
	reqs, err := s.GenerateArena(a)
	if err != nil {
		panic(err)
	}
	return reqs
}
