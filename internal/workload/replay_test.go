package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sfcsched/internal/core"
)

// A hand-written dispatch trace: lines arrive in *dispatch* order (not
// arrival order), request 2 appears twice (a fault retry), and optional
// fields come and go per line. The JSON matches what sim.JSONLTrace
// emits; the byte-level equivalence of that writer is pinned in
// internal/sim.
const replayJSONL = `{"now":100,"id":2,"cyl":50,"arrival":40,"wait":60,"deadline":900,"prio":[1,3],"size":65536,"write":true,"value":4,"tenant":1,"class":1,"head":0,"seek":10,"service":60,"queue":2}

{"now":160,"id":1,"cyl":10,"arrival":5,"wait":155,"prio":[0,2],"size":4096,"head":50,"seek":4,"service":40,"queue":1}
{"now":200,"id":2,"cyl":50,"arrival":40,"wait":160,"deadline":900,"prio":[1,3],"size":65536,"write":true,"value":4,"tenant":1,"class":1,"head":10,"faulted":true,"queue":1}
{"now":260,"id":3,"cyl":70,"arrival":45,"wait":215,"prio":[2,2],"size":8192,"head":50,"dropped":true,"queue":0}
`

func TestLoadReplayJSONL(t *testing.T) {
	p, err := LoadReplay(strings.NewReader(replayJSONL))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 || p.Dims() != 2 {
		t.Fatalf("Len=%d Dims=%d, want 3 and 2", p.Len(), p.Dims())
	}
	want := []core.Request{
		{ID: 1, Arrival: 5, Cylinder: 10, Size: 4096, Priorities: []int{0, 2}},
		{ID: 2, Arrival: 40, Cylinder: 50, Size: 65536, Deadline: 900, Write: true,
			Value: 4, Tenant: 1, Class: 1, Priorities: []int{1, 3}},
		{ID: 3, Arrival: 45, Cylinder: 70, Size: 8192, Priorities: []int{2, 2}},
	}
	got := p.Generate()
	for i := range want {
		w := want[i]
		sameRequest(t, i, &w, got[i])
	}
}

func sameRequest(t *testing.T, i int, want, got *core.Request) {
	t.Helper()
	if got.ID != want.ID || got.Arrival != want.Arrival || got.Cylinder != want.Cylinder ||
		got.Deadline != want.Deadline || got.Size != want.Size || got.Write != want.Write ||
		got.Value != want.Value || got.Tenant != want.Tenant || got.Class != want.Class {
		t.Fatalf("request %d = %+v, want %+v", i, *got, *want)
	}
	if len(got.Priorities) != len(want.Priorities) {
		t.Fatalf("request %d has %d priorities, want %d", i, len(got.Priorities), len(want.Priorities))
	}
	for k := range want.Priorities {
		if got.Priorities[k] != want.Priorities[k] {
			t.Fatalf("request %d priority %d = %d, want %d", i, k, got.Priorities[k], want.Priorities[k])
		}
	}
}

// A recorded request CSV replays to the exact generated trace.
func TestLoadReplayCSV(t *testing.T) {
	w := openVariants()[0]
	trace := w.MustGenerate()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trace, w.Dims); err != nil {
		t.Fatal(err)
	}
	p, err := LoadReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != len(trace) || p.Dims() != w.Dims {
		t.Fatalf("Len=%d Dims=%d, want %d and %d", p.Len(), p.Dims(), len(trace), w.Dims)
	}
	sameTrace(t, "csv replay", trace, p.Generate())
}

func TestLoadReplayFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(replayJSONL), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len=%d, want 3", p.Len())
	}
	if _, err := LoadReplayFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestLoadReplayErrors(t *testing.T) {
	cases := []struct {
		name, input, want string
	}{
		{"empty", "", "empty"},
		{"blank", "  \n\t\n", "empty"},
		{"bad-json", `{"now":1,"id":1,"cyl":0,"arrival":0,"wait":1,"head":0,"queue":0}` + "\n{broken\n", "line 2"},
		{"array-trace", `{"now":1,"disk":2,"id":1,"cyl":0,"arrival":0,"wait":1,"head":0,"queue":0}` + "\n", "disk"},
		{"mixed-dims", `{"now":1,"id":1,"cyl":0,"arrival":0,"wait":1,"prio":[1],"head":0,"queue":0}` + "\n" +
			`{"now":2,"id":2,"cyl":0,"arrival":1,"wait":1,"prio":[1,2],"head":0,"queue":0}` + "\n", "dimensionalities"},
		{"bad-csv", "id,arrival_us,deadline_us,cylinder,size,write,value\nnope,0,0,0,0,false,0\n", "id"},
		{"wrong-header", "bogus,header\n1,2\n", "header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadReplay(strings.NewReader(tc.input))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestReplayGenerateArenaMatchesGenerate(t *testing.T) {
	p, err := LoadReplay(strings.NewReader(replayJSONL))
	if err != nil {
		t.Fatal(err)
	}
	var a Arena
	sameTrace(t, "replay arena", p.Generate(), p.GenerateArena(&a))
	sameTrace(t, "nil arena", p.Generate(), p.GenerateArena(nil))
	// A second generation through the same arena recycles the slabs.
	first := p.GenerateArena(&a)
	p0 := first[0]
	if second := p.GenerateArena(&a); second[0] != p0 {
		t.Error("replay regeneration reallocated the request slab")
	}
}

func TestReplayArenaSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	trace := openVariants()[0].MustGenerate()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trace, 3); err != nil {
		t.Fatal(err)
	}
	p, err := LoadReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a Arena
	p.GenerateArena(&a) // size the slabs
	allocs := testing.AllocsPerRun(10, func() {
		if got := p.GenerateArena(&a); len(got) != p.Len() {
			t.Fatal("short trace")
		}
	})
	if allocs > 0 {
		t.Errorf("replay arena regeneration allocates %v per trace, want 0", allocs)
	}
}
