package workload

import "fmt"

// Scenarios lists the built-in multi-client scenario names, in the order
// experiments sweep them.
func Scenarios() []string {
	return []string{"steady", "flash", "diurnal", "mixed"}
}

// ScenarioSpec builds one of the named multi-client scenarios, sized to
// about `requests` total requests against a disk of `cylinders` cylinders
// and seeded by seed. The scenarios stress exactly what single-stream
// Poisson cannot:
//
//   - steady: one Poisson cohort — the §5 baseline expressed as a Spec.
//   - flash: a steady Poisson background plus a bursty Gamma(0.5) cohort
//     whose rate jumps 8× inside a flash-crowd window.
//   - diurnal: one Poisson cohort stepped through peak/trough rate
//     windows (a compressed day).
//   - mixed: three cohorts against one disk — streaming playback
//     (Poisson, tight deadlines, class 0), interactive editing
//     (bursty Gamma(0.5), writes, class 1), and a batch scrub
//     (near-periodic Weibull(2), sequential walk over the upper half,
//     no deadlines, class 2).
//
// All scenarios use dims 2, levels 8, and carry tenant/class tags so the
// same specs drive single-disk, array, and cluster runs.
func ScenarioSpec(name string, seed uint64, requests, cylinders int) (Spec, error) {
	if requests < 4 {
		return Spec{}, fmt.Errorf("workload: scenario %q needs at least 4 requests, got %d", name, requests)
	}
	if cylinders < 4 {
		return Spec{}, fmt.Errorf("workload: scenario %q needs at least 4 cylinders, got %d", name, cylinders)
	}
	base := Client{
		MeanInterarrival: 25_000,
		Dims:             2,
		Levels:           8,
		DeadlineMin:      100_000,
		DeadlineMax:      400_000,
		Cylinders:        cylinders,
		Size:             64 << 10,
	}
	switch name {
	case "steady":
		c := base
		c.Name, c.Count = "steady", requests
		return Spec{Seed: seed, Clients: []Client{c}}, nil

	case "flash":
		bg := base
		bg.Name, bg.Count = "background", requests/2
		crowd := base
		crowd.Name, crowd.Count = "crowd", requests-requests/2
		crowd.Process, crowd.Shape = GammaArrivals, 0.5
		crowd.MeanInterarrival = 50_000
		// The crowd's offered load jumps 8× for a window in the middle of
		// the background's span.
		span := int64(requests/2) * bg.MeanInterarrival
		crowd.Windows = []Window{{From: span / 4, To: span / 2, Factor: 8}}
		return Spec{Seed: seed, Clients: []Client{bg, crowd}}, nil

	case "diurnal":
		c := base
		c.Name, c.Count = "diurnal", requests
		span := int64(requests) * c.MeanInterarrival
		// A compressed day: night trough, morning ramp, midday peak,
		// evening shoulder; outside the windows the base rate holds.
		c.Windows = []Window{
			{From: 0, To: span / 5, Factor: 0.5},
			{From: span / 5, To: 2 * span / 5, Factor: 1.5},
			{From: 2 * span / 5, To: 3 * span / 5, Factor: 3},
			{From: 3 * span / 5, To: 4 * span / 5, Factor: 1.5},
		}
		return Spec{Seed: seed, Clients: []Client{c}}, nil

	case "mixed":
		stream := base
		stream.Name, stream.Count = "stream", requests/2
		stream.DeadlineMin, stream.DeadlineMax = 75_000, 150_000
		stream.ZoneLo, stream.ZoneHi = 0, cylinders/2

		edit := base
		edit.Name, edit.Count = "edit", requests/4
		edit.Process, edit.Shape = GammaArrivals, 0.5
		edit.MeanInterarrival = 50_000
		edit.Burst = 4
		edit.WriteFrac = 0.5
		edit.Tenant, edit.Class = 1, 1
		edit.ZoneLo, edit.ZoneHi = 0, cylinders/2

		scrub := base
		scrub.Name, scrub.Count = "scrub", requests-requests/2-requests/4
		scrub.Process, scrub.Shape = WeibullArrivals, 2
		scrub.MeanInterarrival = 40_000
		scrub.DeadlineMin, scrub.DeadlineMax = 0, 0
		scrub.Sequential = true
		scrub.ZoneLo, scrub.ZoneHi = cylinders/2, cylinders
		scrub.Tenant, scrub.Class = 2, 2

		return Spec{Seed: seed, Clients: []Client{stream, edit, scrub}}, nil
	}
	return Spec{}, fmt.Errorf("workload: unknown scenario %q (have %v)", name, Scenarios())
}

// MustScenarioSpec is ScenarioSpec for static configurations.
func MustScenarioSpec(name string, seed uint64, requests, cylinders int) Spec {
	s, err := ScenarioSpec(name, seed, requests, cylinders)
	if err != nil {
		panic(err)
	}
	return s
}
