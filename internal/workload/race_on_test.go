//go:build race

package workload

// raceEnabled reports whether the race detector is active; allocation
// gates skip under it (instrumentation inflates allocation counts).
const raceEnabled = true
