package workload

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"reflect"
	"strconv"
	"testing"

	"sfcsched/internal/core"
)

// openVariants covers every draw path of the Open generator: each branch
// that consumes RNG draws must be exercised so a draw-order divergence
// between Generate and GenerateArena cannot hide.
func openVariants() []Open {
	return []Open{
		{Seed: 1, Count: 500, MeanInterarrival: 10_000, Dims: 3, Levels: 8,
			DeadlineMin: 100_000, DeadlineMax: 300_000, Cylinders: 3832,
			Size: 64 << 10, WriteFrac: 0.3, ValueLevels: 5},
		{Seed: 2, Count: 300, MeanInterarrival: 25_000, Dims: 4, Levels: 16, Dist: Normal},
		{Seed: 3, Count: 300, MeanInterarrival: 25_000, Dims: 2, Levels: 8, Dist: Zipf,
			Cylinders: 100, SizeMin: 4 << 10, SizeMax: 256 << 10},
		{Seed: 4, Count: 200, MeanInterarrival: 5_000, Dims: 0, Levels: 1,
			DeadlineMin: 50_000, DeadlineMax: 50_000},
		{Seed: 5, Count: 400, MeanInterarrival: 8_000, Dims: 2, Levels: 8,
			DeadlineMin: 100_000, DeadlineMax: 300_000, Cylinders: 4096,
			Size: 64 << 10, Tenants: 12, TenantSkew: 1.2, Classes: 3, TenantZones: true},
		{Seed: 6, Count: 300, MeanInterarrival: 8_000, Dims: 1, Levels: 4,
			Cylinders: 1000, Size: 32 << 10, Tenants: 5, Classes: 2, WriteFrac: 0.25},
	}
}

func sameTrace(t *testing.T, label string, plain, arena []*core.Request) {
	t.Helper()
	if len(plain) != len(arena) {
		t.Fatalf("%s: %d requests vs %d from arena", label, len(plain), len(arena))
	}
	for i := range plain {
		if !reflect.DeepEqual(*plain[i], *arena[i]) {
			t.Fatalf("%s: request %d diverges:\nplain: %+v\narena: %+v",
				label, i, *plain[i], *arena[i])
		}
	}
}

func TestOpenGenerateArenaMatchesGenerate(t *testing.T) {
	for vi, w := range openVariants() {
		var a Arena
		sameTrace(t, fmt.Sprintf("variant %d", vi), w.MustGenerate(), w.MustGenerateArena(&a))
	}
}

func TestStreamsGenerateArenaMatchesGenerate(t *testing.T) {
	s := Streams{
		Seed: 1, Users: 20, Duration: 5_000_000, BitRate: 1_500_000,
		BlockSize: 64 << 10, Levels: 8, DeadlineMin: 750_000, DeadlineMax: 1_500_000,
		Cylinders: 3832, WriteFrac: 0.2, Burst: 3,
	}
	var a Arena
	sameTrace(t, "streams", s.MustGenerate(), s.MustGenerateArena(&a))
}

// Regenerating into the same arena must recycle the slabs (same backing
// memory) and still produce the right trace — including after a switch to
// a different, smaller configuration whose stale slab contents must not
// bleed through.
func TestArenaRecyclesSlabs(t *testing.T) {
	w := openVariants()[0]
	var a Arena
	first := w.MustGenerateArena(&a)
	p0 := first[0]
	second := w.MustGenerateArena(&a)
	if second[0] != p0 {
		t.Error("regeneration reallocated the request slab for an identical config")
	}
	sameTrace(t, "regenerated", w.MustGenerate(), second)

	smaller := openVariants()[3] // dims 0, shorter: stale priorities must not leak
	sameTrace(t, "shrunk", smaller.MustGenerate(), smaller.MustGenerateArena(&a))
	sameTrace(t, "regrown", w.MustGenerate(), w.MustGenerateArena(&a))
}

func TestGenerateArenaSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	w := openVariants()[0]
	var a Arena
	w.MustGenerateArena(&a) // size the slabs
	allocs := testing.AllocsPerRun(10, func() {
		if got := w.MustGenerateArena(&a); len(got) != w.Count {
			t.Fatal("short trace")
		}
	})
	if allocs > 2 {
		t.Errorf("arena regeneration allocates %v per trace, want <= 2", allocs)
	}
}

// WriteCSV hand-appends its rows; the bytes must match encoding/csv
// exactly (same header, same "\n" endings, no quoting).
func TestWriteCSVMatchesEncodingCSV(t *testing.T) {
	trace := openVariants()[0].MustGenerate()
	trace = append(trace, &core.Request{}) // zero row
	dims := 3
	var got bytes.Buffer
	if err := WriteCSV(&got, trace, dims); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	cw := csv.NewWriter(&want)
	header := []string{"id", "arrival_us", "deadline_us", "cylinder", "size", "write", "value"}
	for d := 0; d < dims; d++ {
		header = append(header, fmt.Sprintf("priority_%d", d))
	}
	cw.Write(header)
	for _, r := range trace {
		row := []string{
			strconv.FormatUint(r.ID, 10), strconv.FormatInt(r.Arrival, 10),
			strconv.FormatInt(r.Deadline, 10), strconv.Itoa(r.Cylinder),
			strconv.FormatInt(r.Size, 10), strconv.FormatBool(r.Write), strconv.Itoa(r.Value),
		}
		for d := 0; d < dims; d++ {
			p := 0
			if d < len(r.Priorities) {
				p = r.Priorities[d]
			}
			row = append(row, strconv.Itoa(p))
		}
		cw.Write(row)
	}
	cw.Flush()
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("WriteCSV diverges from encoding/csv:\ngot:\n%s\nwant:\n%s", got.Bytes(), want.Bytes())
	}
}

func benchTrace100k(b *testing.B) []*core.Request {
	b.Helper()
	trace, err := Open{
		Seed: 1, Count: 100_000, MeanInterarrival: 1_000, Dims: 3, Levels: 8,
		DeadlineMin: 100_000, DeadlineMax: 300_000, Cylinders: 3832,
		Size: 64 << 10, WriteFrac: 0.2, ValueLevels: 4,
	}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	return trace
}

func BenchmarkCSVRoundTrip100k(b *testing.B) {
	trace := benchTrace100k(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteCSV(&buf, trace, 3); err != nil {
			b.Fatal(err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		if len(back) != len(trace) {
			b.Fatal("round trip lost rows")
		}
	}
	b.ReportMetric(float64(len(trace)*2*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkArenaGenerate(b *testing.B) {
	w := Open{
		Seed: 1, Count: 2000, MeanInterarrival: 10_000, Dims: 3, Levels: 8,
		DeadlineMin: 500_000, DeadlineMax: 700_000, Cylinders: 3832, Size: 64 << 10,
	}
	var a Arena
	w.MustGenerateArena(&a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := w.MustGenerateArena(&a); len(got) != w.Count {
			b.Fatal("short trace")
		}
	}
	b.ReportMetric(float64(w.Count*b.N)/b.Elapsed().Seconds(), "requests/s")
}

func BenchmarkPlainGenerate(b *testing.B) {
	w := Open{
		Seed: 1, Count: 2000, MeanInterarrival: 10_000, Dims: 3, Levels: 8,
		DeadlineMin: 500_000, DeadlineMax: 700_000, Cylinders: 3832, Size: 64 << 10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := w.MustGenerate(); len(got) != w.Count {
			b.Fatal("short trace")
		}
	}
	b.ReportMetric(float64(w.Count*b.N)/b.Elapsed().Seconds(), "requests/s")
}
