package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"sfcsched/internal/core"
)

// WriteCSV serializes a trace with dims priority columns. The format is
// the exchange format of cmd/tracegen:
//
//	id,arrival_us,deadline_us,cylinder,size,write,value,priority_0,...
func WriteCSV(w io.Writer, trace []*core.Request, dims int) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "arrival_us", "deadline_us", "cylinder", "size", "write", "value"}
	for d := 0; d < dims; d++ {
		header = append(header, fmt.Sprintf("priority_%d", d))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range trace {
		row := []string{
			strconv.FormatUint(r.ID, 10),
			strconv.FormatInt(r.Arrival, 10),
			strconv.FormatInt(r.Deadline, 10),
			strconv.Itoa(r.Cylinder),
			strconv.FormatInt(r.Size, 10),
			strconv.FormatBool(r.Write),
			strconv.Itoa(r.Value),
		}
		for d := 0; d < dims; d++ {
			p := 0
			if d < len(r.Priorities) {
				p = r.Priorities[d]
			}
			row = append(row, strconv.Itoa(p))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Priority dimensionality is
// inferred from the header.
func ReadCSV(r io.Reader) ([]*core.Request, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading CSV header: %w", err)
	}
	const fixed = 7
	if len(header) < fixed || header[0] != "id" || header[1] != "arrival_us" {
		return nil, fmt.Errorf("workload: unrecognized trace header %v", header)
	}
	dims := len(header) - fixed
	var trace []*core.Request
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if len(row) != fixed+dims {
			return nil, fmt.Errorf("workload: line %d: %d fields, want %d", line, len(row), fixed+dims)
		}
		req := &core.Request{}
		if req.ID, err = strconv.ParseUint(row[0], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d id: %w", line, err)
		}
		if req.Arrival, err = strconv.ParseInt(row[1], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d arrival: %w", line, err)
		}
		if req.Deadline, err = strconv.ParseInt(row[2], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d deadline: %w", line, err)
		}
		if req.Cylinder, err = strconv.Atoi(row[3]); err != nil {
			return nil, fmt.Errorf("workload: line %d cylinder: %w", line, err)
		}
		if req.Size, err = strconv.ParseInt(row[4], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d size: %w", line, err)
		}
		if req.Write, err = strconv.ParseBool(row[5]); err != nil {
			return nil, fmt.Errorf("workload: line %d write: %w", line, err)
		}
		if req.Value, err = strconv.Atoi(row[6]); err != nil {
			return nil, fmt.Errorf("workload: line %d value: %w", line, err)
		}
		if dims > 0 {
			req.Priorities = make([]int, dims)
			for d := 0; d < dims; d++ {
				if req.Priorities[d], err = strconv.Atoi(row[fixed+d]); err != nil {
					return nil, fmt.Errorf("workload: line %d priority %d: %w", line, d, err)
				}
			}
		}
		trace = append(trace, req)
	}
	return trace, nil
}
