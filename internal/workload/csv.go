package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"sfcsched/internal/core"
)

// WriteCSV serializes a trace with dims priority columns. The format is
// the exchange format of cmd/tracegen:
//
//	id,arrival_us,deadline_us,cylinder,size,write,value,priority_0,...
//
// Rows are appended with strconv into one chunked buffer instead of going
// through encoding/csv's per-record field slices — no field ever needs
// quoting (digits and true/false only), so the bytes are identical and a
// 100k-request trace writes with a handful of allocations (see
// BenchmarkWriteCSV).
func WriteCSV(w io.Writer, trace []*core.Request, dims int) error {
	const chunk = 64 << 10
	buf := make([]byte, 0, chunk)
	buf = append(buf, "id,arrival_us,deadline_us,cylinder,size,write,value"...)
	for d := 0; d < dims; d++ {
		buf = append(buf, ",priority_"...)
		buf = strconv.AppendInt(buf, int64(d), 10)
	}
	buf = append(buf, '\n')
	for _, r := range trace {
		buf = strconv.AppendUint(buf, r.ID, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, r.Arrival, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, r.Deadline, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Cylinder), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, r.Size, 10)
		buf = append(buf, ',')
		buf = strconv.AppendBool(buf, r.Write)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Value), 10)
		for d := 0; d < dims; d++ {
			p := 0
			if d < len(r.Priorities) {
				p = r.Priorities[d]
			}
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(p), 10)
		}
		buf = append(buf, '\n')
		// Flush near the chunk boundary so the buffer never grows past
		// one chunk (a row is far shorter than the slack left here).
		if len(buf) > chunk-1024 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses a trace written by WriteCSV. Priority dimensionality is
// inferred from the header.
//
// Requests and their priority vectors are carved out of chunked slabs
// (views into them, like Arena's) rather than allocated per row; the
// reader reuses one record buffer across rows.
func ReadCSV(r io.Reader) ([]*core.Request, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading CSV header: %w", err)
	}
	const fixed = 7
	if len(header) < fixed || header[0] != "id" || header[1] != "arrival_us" {
		return nil, fmt.Errorf("workload: unrecognized trace header %v", header)
	}
	dims := len(header) - fixed
	// Slab chunks are fixed-size and never grown in place, so pointers and
	// subslices into a full chunk stay valid when the next chunk starts.
	const slab = 1024
	var reqSlab []core.Request
	var prioSlab []int
	var trace []*core.Request
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if len(row) != fixed+dims {
			return nil, fmt.Errorf("workload: line %d: %d fields, want %d", line, len(row), fixed+dims)
		}
		if len(reqSlab) == cap(reqSlab) {
			reqSlab = make([]core.Request, 0, slab)
		}
		reqSlab = reqSlab[:len(reqSlab)+1]
		req := &reqSlab[len(reqSlab)-1]
		if req.ID, err = strconv.ParseUint(row[0], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d id: %w", line, err)
		}
		if req.Arrival, err = strconv.ParseInt(row[1], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d arrival: %w", line, err)
		}
		if req.Deadline, err = strconv.ParseInt(row[2], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d deadline: %w", line, err)
		}
		if req.Cylinder, err = strconv.Atoi(row[3]); err != nil {
			return nil, fmt.Errorf("workload: line %d cylinder: %w", line, err)
		}
		if req.Size, err = strconv.ParseInt(row[4], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: line %d size: %w", line, err)
		}
		if req.Write, err = strconv.ParseBool(row[5]); err != nil {
			return nil, fmt.Errorf("workload: line %d write: %w", line, err)
		}
		if req.Value, err = strconv.Atoi(row[6]); err != nil {
			return nil, fmt.Errorf("workload: line %d value: %w", line, err)
		}
		if dims > 0 {
			if len(prioSlab)+dims > cap(prioSlab) {
				n := slab * dims
				if n < dims {
					n = dims
				}
				prioSlab = make([]int, 0, n)
			}
			base := len(prioSlab)
			prioSlab = prioSlab[:base+dims]
			req.Priorities = prioSlab[base : base+dims : base+dims]
			for d := 0; d < dims; d++ {
				if req.Priorities[d], err = strconv.Atoi(row[fixed+d]); err != nil {
					return nil, fmt.Errorf("workload: line %d priority %d: %w", line, d, err)
				}
			}
		}
		trace = append(trace, req)
	}
	return trace, nil
}
