// Package runner executes independent simulation cells in parallel with
// deterministic results.
//
// A sweep (over fault rates, user counts, space-filling curves, …) is a
// grid of cells that share nothing but read-only inputs: each cell owns
// its RNG stream, its scheduler, its collector and (when it generates
// traces) its arena. Map farms the cells out to a bounded worker pool and
// returns the results indexed exactly as a sequential loop would have
// produced them, so every byte of downstream output — CSV series, golden
// traces, rendered figures — is identical for any worker count, including
// one. Only scheduling order and wall-clock time vary.
//
// The determinism argument is by construction: cell i writes only
// results[i] (and errs[i]); no cell observes another's progress; the
// merge order is the index order; and the reported error is the one the
// sequential loop would have hit first. Running under the race detector
// with workers > 1 (see the experiments determinism tests) checks the
// "share nothing" premise.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n itself when positive, else
// GOMAXPROCS (the parallelism actually available to the process).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(0..n-1) on min(Workers(workers), n) workers and
// returns the results in index order. fn must confine its writes to
// per-cell state; it may freely read shared inputs. A single worker (or
// n <= 1) degenerates to an in-order sequential loop with no goroutines.
//
// Every cell runs exactly once regardless of errors or worker count: a
// failing cell does not stop the sweep, so side effects (trace files,
// metrics, partial results) are identical whether the sweep ran on one
// worker or many. The error returned is the lowest-indexed one, with the
// results of every cell — including those after the failure — alongside
// it.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		var first error
		for i := 0; i < n; i++ {
			var err error
			results[i], err = fn(i)
			if err != nil && first == nil {
				first = err
			}
		}
		return results, first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
