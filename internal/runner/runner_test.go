package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// Every worker count must produce the same index-ordered result slice.
func TestMapOrderIndependentOfWorkers(t *testing.T) {
	const n = 100
	for _, w := range []int{1, 2, 3, 8, 64} {
		got, err := Map(w, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results", w, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapSingleWorkerIsSequential(t *testing.T) {
	var order []int
	_, err := Map(1, 5, func(i int) (int, error) {
		order = append(order, i) // safe: no goroutines with one worker
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order = %v, want ascending", order)
		}
	}
}

// The reported error is the lowest-indexed one, no matter which cell
// finishes (or fails) first under parallel scheduling.
func TestMapReturnsLowestIndexedError(t *testing.T) {
	errLow := errors.New("cell 3")
	for _, w := range []int{1, 8} {
		_, err := Map(w, 10, func(i int) (int, error) {
			if i == 3 {
				return 0, errLow
			}
			if i >= 7 {
				return 0, fmt.Errorf("cell %d", i)
			}
			return i, nil
		})
		if err != errLow {
			t.Errorf("workers=%d: err = %v, want %v", w, err, errLow)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) {
		t.Error("fn called for n=0")
		return 0, nil
	})
	if got != nil || err != nil {
		t.Errorf("Map(_, 0, _) = %v, %v", got, err)
	}
}

// A mid-sweep error must not stop later cells: both the sequential and
// the parallel path run every cell exactly once, so side effects after a
// failure do not depend on the worker count. Pre-fix, the sequential path
// aborted at the first error and cells 4..9 never ran.
func TestMapErrorStillRunsAllCells(t *testing.T) {
	errMid := errors.New("cell 3 failed")
	const n = 10
	for _, w := range []int{1, 4} {
		var counts [n]atomic.Int32
		got, err := Map(w, n, func(i int) (int, error) {
			counts[i].Add(1)
			if i == 3 {
				return 0, errMid
			}
			return i * 10, nil
		})
		if err != errMid {
			t.Errorf("workers=%d: err = %v, want %v", w, err, errMid)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: cell %d ran %d times, want 1", w, i, c)
			}
		}
		for i, v := range got {
			want := i * 10
			if i == 3 {
				want = 0
			}
			if v != want {
				t.Errorf("workers=%d: results[%d] = %d, want %d", w, i, v, want)
			}
		}
	}
}

// Each cell runs exactly once even when workers far outnumber cells.
func TestMapRunsEachCellOnce(t *testing.T) {
	const n = 7
	var counts [n]atomic.Int32
	if _, err := Map(32, n, func(i int) (int, error) {
		counts[i].Add(1)
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("cell %d ran %d times", i, c)
		}
	}
}
