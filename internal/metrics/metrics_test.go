package metrics

import (
	"math"
	"testing"

	"sfcsched/internal/core"
)

func TestInversionCounting(t *testing.T) {
	c := NewCollector(2, 8)
	served := &core.Request{Priorities: []int{4, 4}}
	pending := []*core.Request{
		{Priorities: []int{1, 7}}, // higher in dim 0 only
		{Priorities: []int{7, 2}}, // higher in dim 1 only
		{Priorities: []int{0, 0}}, // higher in both
		{Priorities: []int{6, 6}}, // higher in neither
	}
	c.OnDispatch(served, func(visit func(*core.Request)) {
		for _, r := range pending {
			visit(r)
		}
	})
	if c.InversionsPerDim[0] != 2 || c.InversionsPerDim[1] != 2 {
		t.Errorf("per-dim inversions = %v, want [2 2]", c.InversionsPerDim)
	}
	if c.TotalInversions() != 4 {
		t.Errorf("total = %d, want 4", c.TotalInversions())
	}
}

func TestEqualLevelsAreNotInversions(t *testing.T) {
	c := NewCollector(1, 8)
	served := &core.Request{Priorities: []int{3}}
	c.OnDispatch(served, func(visit func(*core.Request)) {
		visit(&core.Request{Priorities: []int{3}})
	})
	if c.TotalInversions() != 0 {
		t.Errorf("equal priority counted as inversion")
	}
}

func TestMissAccounting(t *testing.T) {
	c := NewCollector(1, 4)
	for l := 0; l < 4; l++ {
		r := &core.Request{Priorities: []int{l}}
		c.OnArrival(r)
		if l%2 == 0 {
			c.OnDropped(r)
		}
	}
	r := &core.Request{Priorities: []int{3}}
	c.OnArrival(r)
	c.OnLate(r)
	if c.Dropped != 2 || c.Late != 1 || c.TotalMisses() != 3 {
		t.Errorf("dropped=%d late=%d", c.Dropped, c.Late)
	}
	if c.MissesPerDimLevel[0][0] != 1 || c.MissesPerDimLevel[0][2] != 1 || c.MissesPerDimLevel[0][3] != 1 {
		t.Errorf("per-level misses = %v", c.MissesPerDimLevel[0])
	}
	if got := c.MissRatio(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("miss ratio = %v, want 0.6", got)
	}
}

func TestClampOutOfRangeLevels(t *testing.T) {
	c := NewCollector(1, 4)
	c.OnArrival(&core.Request{Priorities: []int{99}})
	c.OnArrival(&core.Request{Priorities: []int{-1}})
	if c.RequestsPerDimLevel[0][3] != 1 || c.RequestsPerDimLevel[0][0] != 1 {
		t.Errorf("clamping failed: %v", c.RequestsPerDimLevel[0])
	}
}

func TestFairnessStdDev(t *testing.T) {
	c := NewCollector(2, 8)
	c.InversionsPerDim[0] = 10
	c.InversionsPerDim[1] = 10
	if got := c.FairnessStdDev(); got != 0 {
		t.Errorf("equal dims should give 0 stddev, got %v", got)
	}
	c.InversionsPerDim[1] = 30
	if got := c.FairnessStdDev(); got != 10 {
		t.Errorf("stddev = %v, want 10", got)
	}
}

func TestFavoredDim(t *testing.T) {
	c := NewCollector(3, 8)
	c.InversionsPerDim[0] = 50
	c.InversionsPerDim[1] = 5
	c.InversionsPerDim[2] = 20
	dim, inv := c.FavoredDim()
	if dim != 1 || inv != 5 {
		t.Errorf("favored = (%d,%d), want (1,5)", dim, inv)
	}
	empty := NewCollector(0, 1)
	if dim, _ := empty.FavoredDim(); dim != -1 {
		t.Errorf("no dims should report -1, got %d", dim)
	}
}

func TestLinearWeights(t *testing.T) {
	w := LinearWeights(8, 11)
	if w[0] != 11 || w[7] != 1 {
		t.Errorf("endpoints = %v, %v, want 11, 1", w[0], w[7])
	}
	for i := 1; i < 8; i++ {
		if w[i] >= w[i-1] {
			t.Errorf("weights not decreasing at %d: %v", i, w)
		}
	}
	if one := LinearWeights(1, 11); one[0] != 11 {
		t.Errorf("single level weight = %v", one[0])
	}
}

// TestLinearWeightsEdgeCases pins the degenerate shapes. The levels == 1
// decision (weight is ratio, not 1) is deliberate: a single level is the
// highest priority level, and the weight stays continuous with the
// two-level case [ratio, 1] — see the LinearWeights doc comment.
func TestLinearWeightsEdgeCases(t *testing.T) {
	if w := LinearWeights(0, 11); len(w) != 0 {
		t.Errorf("0 levels gave %v, want empty", w)
	}
	if w := LinearWeights(1, 11); len(w) != 1 || w[0] != 11 {
		t.Errorf("1 level gave %v, want [11]", w)
	}
	if w := LinearWeights(2, 11); w[0] != 11 || w[1] != 1 {
		t.Errorf("2 levels gave %v, want [11 1]", w)
	}
	// ratio 1 flattens every level to weight 1 (the unweighted §6 cost).
	for _, w := range LinearWeights(5, 1) {
		if w != 1 {
			t.Errorf("ratio 1 gave non-unit weight %v", w)
		}
	}
	// The interior is exactly linear, not merely monotonic.
	w := LinearWeights(3, 11)
	if w[1] != 6 {
		t.Errorf("midpoint of [11,1] = %v, want 6", w[1])
	}
}

// TestWeightedLossCostErrors covers every rejection path.
func TestWeightedLossCostErrors(t *testing.T) {
	c := NewCollector(2, 3)
	ok := LinearWeights(3, 11)
	if _, err := c.WeightedLossCost(-1, ok); err == nil {
		t.Error("negative dimension accepted")
	}
	if _, err := c.WeightedLossCost(2, ok); err == nil {
		t.Error("out-of-range dimension accepted")
	}
	if _, err := c.WeightedLossCost(0, nil); err == nil {
		t.Error("nil weights accepted")
	}
	if _, err := c.WeightedLossCost(0, LinearWeights(4, 11)); err == nil {
		t.Error("wrong weight count accepted")
	}
	if got, err := c.WeightedLossCost(0, ok); err != nil || got != 0 {
		t.Errorf("empty collector cost = (%v, %v), want (0, nil)", got, err)
	}
}

func TestWeightedLossCost(t *testing.T) {
	c := NewCollector(1, 2)
	hi := &core.Request{Priorities: []int{0}}
	lo := &core.Request{Priorities: []int{1}}
	for i := 0; i < 10; i++ {
		c.OnArrival(hi)
		c.OnArrival(lo)
	}
	c.OnDropped(hi) // 1/10 high misses
	c.OnDropped(lo)
	c.OnDropped(lo) // 2/10 low misses
	w := []float64{11, 1}
	got, err := c.WeightedLossCost(0, w)
	if err != nil {
		t.Fatal(err)
	}
	want := 11*0.1 + 1*0.2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", got, want)
	}
	if _, err := c.WeightedLossCost(5, w); err == nil {
		t.Error("expected error for bad dimension")
	}
	if _, err := c.WeightedLossCost(0, []float64{1}); err == nil {
		t.Error("expected error for weight length mismatch")
	}
}

func TestServedAccounting(t *testing.T) {
	c := NewCollector(0, 1)
	r := &core.Request{Arrival: 100}
	c.OnServed(r, 500, 2000, 600)
	if c.Served != 1 || c.SeekTime != 500 || c.ServiceTime != 2000 {
		t.Errorf("served accounting wrong: %+v", c)
	}
	if c.WaitingTimes.Mean() != 500 {
		t.Errorf("waiting time = %v, want 500", c.WaitingTimes.Mean())
	}
}

func TestZeroDimCollectorSafe(t *testing.T) {
	c := NewCollector(0, 0)
	r := &core.Request{}
	c.OnArrival(r)
	c.OnDispatch(r, func(func(*core.Request)) {})
	c.OnDropped(r)
	if c.TotalInversions() != 0 || c.Arrived != 1 || c.Dropped != 1 {
		t.Error("zero-dim collector misbehaved")
	}
}
