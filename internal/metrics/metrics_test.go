package metrics

import (
	"math"
	"testing"

	"sfcsched/internal/core"
)

func TestInversionCounting(t *testing.T) {
	c := NewCollector(2, 8)
	served := &core.Request{Priorities: []int{4, 4}}
	pending := []*core.Request{
		{Priorities: []int{1, 7}}, // higher in dim 0 only
		{Priorities: []int{7, 2}}, // higher in dim 1 only
		{Priorities: []int{0, 0}}, // higher in both
		{Priorities: []int{6, 6}}, // higher in neither
	}
	c.OnDispatch(served, func(visit func(*core.Request)) {
		for _, r := range pending {
			visit(r)
		}
	})
	if c.InversionsPerDim[0] != 2 || c.InversionsPerDim[1] != 2 {
		t.Errorf("per-dim inversions = %v, want [2 2]", c.InversionsPerDim)
	}
	if c.TotalInversions() != 4 {
		t.Errorf("total = %d, want 4", c.TotalInversions())
	}
}

func TestEqualLevelsAreNotInversions(t *testing.T) {
	c := NewCollector(1, 8)
	served := &core.Request{Priorities: []int{3}}
	c.OnDispatch(served, func(visit func(*core.Request)) {
		visit(&core.Request{Priorities: []int{3}})
	})
	if c.TotalInversions() != 0 {
		t.Errorf("equal priority counted as inversion")
	}
}

func TestMissAccounting(t *testing.T) {
	c := NewCollector(1, 4)
	for l := 0; l < 4; l++ {
		r := &core.Request{Priorities: []int{l}}
		c.OnArrival(r)
		if l%2 == 0 {
			c.OnDropped(r)
		}
	}
	r := &core.Request{Priorities: []int{3}}
	c.OnArrival(r)
	c.OnLate(r)
	if c.Dropped != 2 || c.Late != 1 || c.TotalMisses() != 3 {
		t.Errorf("dropped=%d late=%d", c.Dropped, c.Late)
	}
	if c.MissesPerDimLevel[0][0] != 1 || c.MissesPerDimLevel[0][2] != 1 || c.MissesPerDimLevel[0][3] != 1 {
		t.Errorf("per-level misses = %v", c.MissesPerDimLevel[0])
	}
	if got := c.MissRatio(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("miss ratio = %v, want 0.6", got)
	}
}

func TestClampOutOfRangeLevels(t *testing.T) {
	c := NewCollector(1, 4)
	c.OnArrival(&core.Request{Priorities: []int{99}})
	c.OnArrival(&core.Request{Priorities: []int{-1}})
	if c.RequestsPerDimLevel[0][3] != 1 || c.RequestsPerDimLevel[0][0] != 1 {
		t.Errorf("clamping failed: %v", c.RequestsPerDimLevel[0])
	}
}

func TestFairnessStdDev(t *testing.T) {
	c := NewCollector(2, 8)
	c.InversionsPerDim[0] = 10
	c.InversionsPerDim[1] = 10
	if got := c.FairnessStdDev(); got != 0 {
		t.Errorf("equal dims should give 0 stddev, got %v", got)
	}
	c.InversionsPerDim[1] = 30
	if got := c.FairnessStdDev(); got != 10 {
		t.Errorf("stddev = %v, want 10", got)
	}
}

func TestFavoredDim(t *testing.T) {
	c := NewCollector(3, 8)
	c.InversionsPerDim[0] = 50
	c.InversionsPerDim[1] = 5
	c.InversionsPerDim[2] = 20
	dim, inv := c.FavoredDim()
	if dim != 1 || inv != 5 {
		t.Errorf("favored = (%d,%d), want (1,5)", dim, inv)
	}
	empty := NewCollector(0, 1)
	if dim, _ := empty.FavoredDim(); dim != -1 {
		t.Errorf("no dims should report -1, got %d", dim)
	}
}

func TestLinearWeights(t *testing.T) {
	w := LinearWeights(8, 11)
	if w[0] != 11 || w[7] != 1 {
		t.Errorf("endpoints = %v, %v, want 11, 1", w[0], w[7])
	}
	for i := 1; i < 8; i++ {
		if w[i] >= w[i-1] {
			t.Errorf("weights not decreasing at %d: %v", i, w)
		}
	}
	if one := LinearWeights(1, 11); one[0] != 11 {
		t.Errorf("single level weight = %v", one[0])
	}
}

func TestWeightedLossCost(t *testing.T) {
	c := NewCollector(1, 2)
	hi := &core.Request{Priorities: []int{0}}
	lo := &core.Request{Priorities: []int{1}}
	for i := 0; i < 10; i++ {
		c.OnArrival(hi)
		c.OnArrival(lo)
	}
	c.OnDropped(hi) // 1/10 high misses
	c.OnDropped(lo)
	c.OnDropped(lo) // 2/10 low misses
	w := []float64{11, 1}
	got, err := c.WeightedLossCost(0, w)
	if err != nil {
		t.Fatal(err)
	}
	want := 11*0.1 + 1*0.2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", got, want)
	}
	if _, err := c.WeightedLossCost(5, w); err == nil {
		t.Error("expected error for bad dimension")
	}
	if _, err := c.WeightedLossCost(0, []float64{1}); err == nil {
		t.Error("expected error for weight length mismatch")
	}
}

func TestServedAccounting(t *testing.T) {
	c := NewCollector(0, 1)
	r := &core.Request{Arrival: 100}
	c.OnServed(r, 500, 2000, 600)
	if c.Served != 1 || c.SeekTime != 500 || c.ServiceTime != 2000 {
		t.Errorf("served accounting wrong: %+v", c)
	}
	if c.WaitingTimes.Mean() != 500 {
		t.Errorf("waiting time = %v, want 500", c.WaitingTimes.Mean())
	}
}

func TestZeroDimCollectorSafe(t *testing.T) {
	c := NewCollector(0, 0)
	r := &core.Request{}
	c.OnArrival(r)
	c.OnDispatch(r, func(func(*core.Request)) {})
	c.OnDropped(r)
	if c.TotalInversions() != 0 || c.Arrived != 1 || c.Dropped != 1 {
		t.Error("zero-dim collector misbehaved")
	}
}
