// Package metrics collects the evaluation quantities of the paper's §5-6:
// per-dimension priority inversions (Figs. 5-7, 10a), deadline misses per
// priority level and dimension (Figs. 8-10b), seek time (Fig. 10c),
// fairness (stddev of per-dimension inversions, Fig. 7a) and the §6
// weighted-loss cost function (Fig. 11).
package metrics

import (
	"fmt"
	"sync"

	"sfcsched/internal/core"
	"sfcsched/internal/stats"
)

// Collector accumulates run metrics. Create one per simulation run.
type Collector struct {
	dims   int
	levels int

	// InversionsPerDim[k] counts, summed over every dispatch, the pending
	// requests that had strictly higher priority than the dispatched one
	// in dimension k (the paper's §5.1 definition).
	InversionsPerDim []uint64

	// MissesPerDimLevel[k][l] counts deadline misses of requests whose
	// priority in dimension k was level l.
	MissesPerDimLevel [][]uint64
	// RequestsPerDimLevel[k][l] counts all arrived requests by level.
	RequestsPerDimLevel [][]uint64

	Arrived uint64
	Served  uint64
	Dropped uint64 // deadline passed before service started
	Late    uint64 // served, but finished after the deadline

	// FaultAttempts counts service attempts that failed on an injected
	// fault; their seek and busy time still accrue to SeekTime and
	// ServiceTime (the head moved and the disk was occupied).
	FaultAttempts uint64
	// FaultDropped counts the subset of Dropped attributable to faults
	// (retry budget exhausted, deadline expired during a retry backoff, or
	// stranded on a failed disk). Dropped - FaultDropped is the share
	// attributable to load alone.
	FaultDropped uint64

	SeekTime     int64 // total head-movement time, µs
	ServiceTime  int64 // total busy time, µs
	Makespan     int64 // completion time of the run, µs
	WaitingTimes stats.Summary
}

// NewCollector returns a collector for requests with the given number of
// priority dimensions and levels per dimension.
func NewCollector(dims, levels int) *Collector {
	if dims < 0 {
		dims = 0
	}
	if levels < 1 {
		levels = 1
	}
	c := &Collector{
		dims:                dims,
		levels:              levels,
		InversionsPerDim:    make([]uint64, dims),
		MissesPerDimLevel:   make([][]uint64, dims),
		RequestsPerDimLevel: make([][]uint64, dims),
	}
	for k := 0; k < dims; k++ {
		c.MissesPerDimLevel[k] = make([]uint64, levels)
		c.RequestsPerDimLevel[k] = make([]uint64, levels)
	}
	return c
}

// Reset clears every counter in place, retaining the per-dimension slices
// and the waiting-time sample buffer, so a collector can be recycled
// across runs (sim.Reuse) instead of reallocated. The dims/levels shape is
// unchanged; a run needing a different shape needs a new collector.
func (c *Collector) Reset() {
	clear(c.InversionsPerDim)
	for k := range c.MissesPerDimLevel {
		clear(c.MissesPerDimLevel[k])
		clear(c.RequestsPerDimLevel[k])
	}
	c.Arrived, c.Served, c.Dropped, c.Late = 0, 0, 0, 0
	c.FaultAttempts, c.FaultDropped = 0, 0
	c.SeekTime, c.ServiceTime, c.Makespan = 0, 0, 0
	c.WaitingTimes.Reset()
}

// Dims returns the number of tracked priority dimensions.
func (c *Collector) Dims() int { return c.dims }

// Levels returns the number of priority levels per dimension.
func (c *Collector) Levels() int { return c.levels }

// clampLevel folds out-of-range levels into the tracked range.
func (c *Collector) clampLevel(l int) int {
	if l < 0 {
		return 0
	}
	if l >= c.levels {
		return c.levels - 1
	}
	return l
}

// OnArrival records an arriving request.
func (c *Collector) OnArrival(r *core.Request) {
	c.Arrived++
	for k := 0; k < c.dims && k < len(r.Priorities); k++ {
		c.RequestsPerDimLevel[k][c.clampLevel(r.Priorities[k])]++
	}
}

// dispatchVisitor is a reusable binding of (collector, dispatched request)
// for the OnDispatch queue walk. A closure literal capturing them would be
// heap-allocated on every dispatch — the simulator's dominant allocation —
// so the closure is built once per pooled visitor (capturing only the
// visitor itself) and rebound through the struct fields.
type dispatchVisitor struct {
	c     *Collector
	r     *core.Request
	visit func(*core.Request)
}

var visitorPool = sync.Pool{New: func() any {
	v := &dispatchVisitor{}
	v.visit = func(w *core.Request) {
		c, r := v.c, v.r
		for k := 0; k < c.dims && k < len(w.Priorities) && k < len(r.Priorities); k++ {
			if w.Priorities[k] < r.Priorities[k] {
				c.InversionsPerDim[k]++
			}
		}
	}
	return v
}}

// OnDispatch records the dispatch of r while the requests visited by
// pending are still queued; it accumulates the per-dimension priority
// inversions caused by serving r ahead of them.
func (c *Collector) OnDispatch(r *core.Request, pending func(func(*core.Request))) {
	if c.dims == 0 {
		return
	}
	v := visitorPool.Get().(*dispatchVisitor)
	v.c, v.r = c, r
	pending(v.visit)
	v.c, v.r = nil, nil
	visitorPool.Put(v)
}

// OnServed records a completed service.
func (c *Collector) OnServed(r *core.Request, seek, service, start int64) {
	c.Served++
	c.SeekTime += seek
	c.ServiceTime += service
	c.WaitingTimes.Add(float64(start - r.Arrival))
}

// OnFaultAttempt records a service attempt that failed on an injected
// fault: the attempt's seek and busy time are charged, but nothing is
// served.
func (c *Collector) OnFaultAttempt(seek, service int64) {
	c.FaultAttempts++
	c.SeekTime += seek
	c.ServiceTime += service
}

// OnFaultDropped attributes the latest drop to faults rather than load.
// Callers invoke it alongside OnDropped, so FaultDropped <= Dropped.
func (c *Collector) OnFaultDropped() {
	c.FaultDropped++
}

// OnDropped records a request whose deadline expired before service.
func (c *Collector) OnDropped(r *core.Request) {
	c.Dropped++
	c.recordMiss(r)
}

// OnLate records a request served past its deadline.
func (c *Collector) OnLate(r *core.Request) {
	c.Late++
	c.recordMiss(r)
}

func (c *Collector) recordMiss(r *core.Request) {
	for k := 0; k < c.dims && k < len(r.Priorities); k++ {
		c.MissesPerDimLevel[k][c.clampLevel(r.Priorities[k])]++
	}
}

// TotalInversions returns the inversion count summed over dimensions.
func (c *Collector) TotalInversions() uint64 {
	var t uint64
	for _, v := range c.InversionsPerDim {
		t += v
	}
	return t
}

// TotalMisses returns dropped plus late requests.
func (c *Collector) TotalMisses() uint64 { return c.Dropped + c.Late }

// MissRatio returns misses as a fraction of arrivals.
func (c *Collector) MissRatio() float64 {
	if c.Arrived == 0 {
		return 0
	}
	return float64(c.TotalMisses()) / float64(c.Arrived)
}

// FairnessStdDev returns the standard deviation of the per-dimension
// inversion counts — the paper's Fig. 7a fairness measure. Lower is fairer.
func (c *Collector) FairnessStdDev() float64 {
	vs := make([]float64, len(c.InversionsPerDim))
	for i, v := range c.InversionsPerDim {
		vs[i] = float64(v)
	}
	_, sd := stats.MeanStdDev(vs)
	return sd
}

// FavoredDim returns the dimension with the fewest inversions and its
// count — the paper's Fig. 7b "favored dimension".
func (c *Collector) FavoredDim() (dim int, inversions uint64) {
	if len(c.InversionsPerDim) == 0 {
		return -1, 0
	}
	dim = 0
	for k, v := range c.InversionsPerDim {
		if v < c.InversionsPerDim[dim] {
			dim = k
		}
	}
	return dim, c.InversionsPerDim[dim]
}

// LinearWeights returns the §6 cost weights for the collector's levels:
// decreasing linearly from ratio at level 0 (highest priority) to 1 at the
// lowest level. The paper uses ratio 11.
//
// The levels == 1 degenerate case returns [ratio], not [1]: a single level
// is the highest priority level, and pinning it to ratio keeps the cost of
// a miss continuous as a configuration collapses from 2 levels to 1
// (weights [ratio, 1] -> [ratio]) instead of snapping the only weight to
// the lowest-priority value. Absolute §6 costs for levels == 1 are scaled
// by ratio accordingly; comparisons across schedulers are unaffected.
func LinearWeights(levels int, ratio float64) []float64 {
	w := make([]float64, levels)
	for i := range w {
		if levels == 1 {
			w[i] = ratio
			continue
		}
		w[i] = 1 + (ratio-1)*float64(levels-1-i)/float64(levels-1)
	}
	return w
}

// WeightedLossCost returns the §6 cost function over dimension dim:
// sum_i w_i * m_i / r_i, with empty levels contributing zero.
func (c *Collector) WeightedLossCost(dim int, weights []float64) (float64, error) {
	if dim < 0 || dim >= c.dims {
		return 0, fmt.Errorf("metrics: dimension %d out of range [0,%d)", dim, c.dims)
	}
	if len(weights) != c.levels {
		return 0, fmt.Errorf("metrics: %d weights for %d levels", len(weights), c.levels)
	}
	var cost float64
	for l := 0; l < c.levels; l++ {
		r := c.RequestsPerDimLevel[dim][l]
		if r == 0 {
			continue
		}
		cost += weights[l] * float64(c.MissesPerDimLevel[dim][l]) / float64(r)
	}
	return cost, nil
}
