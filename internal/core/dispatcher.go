package core

import (
	"container/heap"
	"fmt"
)

// PreemptMode selects the dispatcher's queue discipline (paper §3).
type PreemptMode int

const (
	// NonPreemptive serves the current batch to completion: arrivals wait
	// in q' and the queues swap when q drains. Starvation-free, but higher
	// priority arrivals wait behind the whole batch.
	NonPreemptive PreemptMode = iota
	// FullyPreemptive keeps a single queue ordered by v_c. Maximally
	// responsive, but a stream of high-priority arrivals starves the rest.
	FullyPreemptive
	// ConditionallyPreemptive lets an arrival jump into the serving queue
	// only when its value beats the current request by more than the
	// blocking window w.
	ConditionallyPreemptive
)

// String implements fmt.Stringer.
func (m PreemptMode) String() string {
	switch m {
	case NonPreemptive:
		return "non-preemptive"
	case FullyPreemptive:
		return "fully-preemptive"
	case ConditionallyPreemptive:
		return "conditionally-preemptive"
	default:
		return fmt.Sprintf("PreemptMode(%d)", int(m))
	}
}

// DispatcherConfig configures the dispatcher ("Part 2" of Fig. 2).
type DispatcherConfig struct {
	Mode PreemptMode
	// Window is the blocking window w: an arrival preempts only if its
	// value is below the current request's value minus Window. 0 behaves
	// fully preemptively; a huge value behaves non-preemptively. Only
	// meaningful in ConditionallyPreemptive mode.
	Window uint64
	// SP enables the Serve-and-Promote policy (§3.2): before each
	// dispatch, waiting requests that now clear the window against the
	// next request are promoted into the serving queue.
	SP bool
	// ER enables the Expand-and-Reset starvation guard (§3.3): every
	// preemption multiplies the window by Expansion; dispatching a
	// non-preempting request resets it to Window.
	ER bool
	// Expansion is the ER growth factor e (> 1). Defaults to 2 when ER is
	// set and Expansion is zero.
	Expansion float64
}

// entry is one queued request with its characterization value.
type entry struct {
	v         uint64
	seq       uint64 // FIFO tie-break
	req       *Request
	preempter bool // entered q by preemption or promotion
}

// vheap is a min-heap of entries ordered by (v, seq).
type vheap []*entry

func (h vheap) Len() int { return len(h) }
func (h vheap) Less(i, j int) bool {
	if h[i].v != h[j].v {
		return h[i].v < h[j].v
	}
	return h[i].seq < h[j].seq
}
func (h vheap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *vheap) Push(x any)   { *h = append(*h, x.(*entry)) }
func (h *vheap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h vheap) peek() *entry { return h[0] }

// DispatchStats counts dispatcher policy events.
type DispatchStats struct {
	Preemptions uint64 // arrivals that jumped into the serving queue
	Promotions  uint64 // SP promotions from q' into q
	Swaps       uint64 // q/q' batch swaps
}

// Dispatcher drains requests in characterization-value order under the
// configured preemption policy. It is not safe for concurrent use.
type Dispatcher struct {
	cfg   DispatcherConfig
	q     vheap // serving queue
	qw    vheap // waiting queue q'
	cur   *entry
	w     uint64 // current window (ER may expand it)
	seq   uint64
	stats DispatchStats
}

// NewDispatcher returns a dispatcher for cfg.
func NewDispatcher(cfg DispatcherConfig) (*Dispatcher, error) {
	if cfg.Mode < NonPreemptive || cfg.Mode > ConditionallyPreemptive {
		return nil, fmt.Errorf("core: unknown preempt mode %d", cfg.Mode)
	}
	if cfg.ER {
		if cfg.Expansion == 0 {
			cfg.Expansion = 2
		}
		if cfg.Expansion <= 1 {
			return nil, fmt.Errorf("core: ER expansion must be > 1, got %v", cfg.Expansion)
		}
	}
	return &Dispatcher{cfg: cfg, w: cfg.Window}, nil
}

// MustDispatcher is NewDispatcher for static configurations.
func MustDispatcher(cfg DispatcherConfig) *Dispatcher {
	d, err := NewDispatcher(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Window returns the current blocking window (ER may have expanded it).
func (d *Dispatcher) Window() uint64 { return d.w }

// Stats returns the policy-event counters so far.
func (d *Dispatcher) Stats() DispatchStats { return d.stats }

// Len returns the number of queued (not yet dispatched) requests.
func (d *Dispatcher) Len() int { return len(d.q) + len(d.qw) }

// Add enqueues r with characterization value v.
func (d *Dispatcher) Add(r *Request, v uint64) {
	e := &entry{v: v, seq: d.seq, req: r}
	d.seq++
	switch d.cfg.Mode {
	case FullyPreemptive:
		heap.Push(&d.q, e)
	case NonPreemptive:
		heap.Push(&d.qw, e)
	case ConditionallyPreemptive:
		if d.cur != nil && d.clearsWindow(v, d.cur.v) {
			e.preempter = true
			d.notePreemption()
			heap.Push(&d.q, e)
		} else {
			heap.Push(&d.qw, e)
		}
	}
}

// clearsWindow reports whether value v is significantly higher priority
// than reference ref, i.e. v < ref - w without underflow.
func (d *Dispatcher) clearsWindow(v, ref uint64) bool {
	return ref > d.w && v < ref-d.w
}

// notePreemption applies the ER expansion and counts the event.
func (d *Dispatcher) notePreemption() {
	d.stats.Preemptions++
	if d.cfg.ER {
		nw := uint64(float64(d.w) * d.cfg.Expansion)
		if nw <= d.w { // w == 0 or float saturation
			nw = d.w + 1
		}
		d.w = nw
	}
}

// Next dispatches the highest-priority request, or nil when empty. The
// returned request is considered in service until the following Next call.
func (d *Dispatcher) Next() *Request {
	if len(d.q) == 0 {
		if len(d.qw) == 0 {
			d.cur = nil
			return nil
		}
		d.q, d.qw = d.qw, d.q
		d.stats.Swaps++
		// A swapped-in batch is the new serving set; none of its members
		// preempted anything.
		for _, e := range d.q {
			e.preempter = false
		}
	}
	if d.cfg.Mode == ConditionallyPreemptive && d.cfg.SP && len(d.qw) > 0 {
		d.promote()
	}
	e := heap.Pop(&d.q).(*entry)
	if d.cfg.ER && !e.preempter {
		d.w = d.cfg.Window
	}
	d.cur = e
	return e.req
}

// promote implements SP: any waiting request that clears the window
// against the next serving-queue request joins the serving queue.
func (d *Dispatcher) promote() {
	next := d.q.peek()
	for len(d.qw) > 0 && d.clearsWindow(d.qw.peek().v, next.v) {
		e := heap.Pop(&d.qw).(*entry)
		e.preempter = true
		d.stats.Promotions++
		if d.cfg.ER {
			d.noteERPromotion()
		}
		heap.Push(&d.q, e)
		next = d.q.peek()
	}
}

// noteERPromotion expands the window for a promotion without double
// counting it as an arrival preemption.
func (d *Dispatcher) noteERPromotion() {
	nw := uint64(float64(d.w) * d.cfg.Expansion)
	if nw <= d.w {
		nw = d.w + 1
	}
	d.w = nw
}

// Each visits every queued request (serving and waiting queues, not the
// in-service one). Metrics use it to sample priority inversions.
func (d *Dispatcher) Each(visit func(*Request)) {
	for _, e := range d.q {
		visit(e.req)
	}
	for _, e := range d.qw {
		visit(e.req)
	}
}
