package core

import (
	"fmt"
)

// PreemptMode selects the dispatcher's queue discipline (paper §3).
type PreemptMode int

const (
	// NonPreemptive serves the current batch to completion: arrivals wait
	// in q' and the queues swap when q drains. Starvation-free, but higher
	// priority arrivals wait behind the whole batch.
	NonPreemptive PreemptMode = iota
	// FullyPreemptive keeps a single queue ordered by v_c. Maximally
	// responsive, but a stream of high-priority arrivals starves the rest.
	FullyPreemptive
	// ConditionallyPreemptive lets an arrival jump into the serving queue
	// only when its value beats the current request by more than the
	// blocking window w.
	ConditionallyPreemptive
)

// String implements fmt.Stringer.
func (m PreemptMode) String() string {
	switch m {
	case NonPreemptive:
		return "non-preemptive"
	case FullyPreemptive:
		return "fully-preemptive"
	case ConditionallyPreemptive:
		return "conditionally-preemptive"
	default:
		return fmt.Sprintf("PreemptMode(%d)", int(m))
	}
}

// DispatcherConfig configures the dispatcher ("Part 2" of Fig. 2).
type DispatcherConfig struct {
	Mode PreemptMode
	// Window is the blocking window w: an arrival preempts only if its
	// value is below the current request's value minus Window. 0 behaves
	// fully preemptively; a huge value behaves non-preemptively. Only
	// meaningful in ConditionallyPreemptive mode.
	Window uint64
	// SP enables the Serve-and-Promote policy (§3.2): before each
	// dispatch, waiting requests that now clear the window against the
	// next request are promoted into the serving queue.
	SP bool
	// ER enables the Expand-and-Reset starvation guard (§3.3): every
	// preemption multiplies the window by Expansion; dispatching a
	// non-preempting request resets it to Window.
	ER bool
	// Expansion is the ER growth factor e (> 1). Defaults to 2 when ER is
	// set and Expansion is zero.
	Expansion float64
}

// entry is one queued request with its characterization value. Entries are
// stored by value inside the queue heaps: enqueueing boxes nothing.
type entry struct {
	v   uint64
	seq uint64 // FIFO tie-break
	req *Request
	// gen stamps preempters with the serving-queue epoch they preempted
	// into; a batch swap bumps the epoch, which retires every outstanding
	// preempter mark in O(1) instead of clearing flags across the queue.
	gen       uint32
	preempter bool // entered q by preemption or promotion in epoch gen
}

// entryCmp orders entries by (v, seq). It is a zero-size Comparer so the
// heap's sift comparisons compile to direct, inlinable code.
type entryCmp struct{}

// Less implements Comparer.
func (entryCmp) Less(a, b *entry) bool {
	if a.v != b.v {
		return a.v < b.v
	}
	return a.seq < b.seq
}

// DispatchStats counts dispatcher policy events.
type DispatchStats struct {
	Preemptions uint64 // arrivals that jumped into the serving queue
	Promotions  uint64 // SP promotions from q' into q
	Swaps       uint64 // q/q' batch swaps
}

// Dispatcher drains requests in characterization-value order under the
// configured preemption policy. It is not safe for concurrent use; see
// ShardedScheduler for a concurrent front-end.
type Dispatcher struct {
	cfg    DispatcherConfig
	q      Heap4[entry, entryCmp] // serving queue
	qw     Heap4[entry, entryCmp] // waiting queue q'
	curV   uint64                 // value of the in-service request
	hasCur bool
	w      uint64 // current window (ER may expand it)
	seq    uint64
	gen    uint32 // serving-queue epoch; see entry.gen
	stats  DispatchStats
	m      *Metrics // never nil; DefaultMetrics unless overridden
}

// NewDispatcher returns a dispatcher for cfg.
func NewDispatcher(cfg DispatcherConfig) (*Dispatcher, error) {
	if cfg.Mode < NonPreemptive || cfg.Mode > ConditionallyPreemptive {
		return nil, fmt.Errorf("core: unknown preempt mode %d", cfg.Mode)
	}
	if cfg.ER {
		if cfg.Expansion == 0 {
			cfg.Expansion = 2
		}
		if cfg.Expansion <= 1 {
			return nil, fmt.Errorf("core: ER expansion must be > 1, got %v", cfg.Expansion)
		}
	}
	return &Dispatcher{cfg: cfg, w: cfg.Window, m: DefaultMetrics}, nil
}

// MustDispatcher is NewDispatcher for static configurations.
func MustDispatcher(cfg DispatcherConfig) *Dispatcher {
	d, err := NewDispatcher(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Window returns the current blocking window (ER may have expanded it).
func (d *Dispatcher) Window() uint64 { return d.w }

// Stats returns the policy-event counters so far.
func (d *Dispatcher) Stats() DispatchStats { return d.stats }

// SetMetrics redirects the dispatcher's observability counters to m
// (per-instance instead of the process-wide DefaultMetrics). Must be called
// before the first Add; m must not be nil.
func (d *Dispatcher) SetMetrics(m *Metrics) { d.m = m }

// Metrics returns the metrics sink the dispatcher reports into.
func (d *Dispatcher) Metrics() *Metrics { return d.m }

// Len returns the number of queued (not yet dispatched) requests.
func (d *Dispatcher) Len() int { return d.q.Len() + d.qw.Len() }

// Add enqueues r with characterization value v.
func (d *Dispatcher) Add(r *Request, v uint64) {
	e := entry{v: v, seq: d.seq, req: r}
	d.seq++
	d.m.Adds.Inc()
	switch d.cfg.Mode {
	case FullyPreemptive:
		d.q.Push(e)
	case NonPreemptive:
		d.qw.Push(e)
	case ConditionallyPreemptive:
		if d.hasCur && d.clearsWindow(v, d.curV) {
			e.preempter = true
			e.gen = d.gen
			d.notePreemption()
			d.q.Push(e)
		} else {
			d.qw.Push(e)
		}
	}
	d.m.QueueDepthHiWater.Observe(int64(d.q.Len() + d.qw.Len()))
}

// AddBatch enqueues rs[i] with value vs[i] for every i, preserving Add's
// per-arrival semantics. In the fully- and non-preemptive modes an empty
// target queue is bulk-loaded and heapified once (Floyd build) instead of
// sifting each arrival up individually; the conditionally-preemptive mode
// must evaluate the blocking window per arrival and degenerates to a loop.
func (d *Dispatcher) AddBatch(rs []*Request, vs []uint64) {
	if len(rs) != len(vs) {
		panic(fmt.Sprintf("core: AddBatch length mismatch: %d requests, %d values", len(rs), len(vs)))
	}
	var target *Heap4[entry, entryCmp]
	switch d.cfg.Mode {
	case FullyPreemptive:
		target = &d.q
	case NonPreemptive:
		target = &d.qw
	default:
		for i, r := range rs {
			d.Add(r, vs[i])
		}
		return
	}
	if target.Len() > 0 {
		for i, r := range rs {
			d.Add(r, vs[i])
		}
		return
	}
	for i, r := range rs {
		target.Append(entry{v: vs[i], seq: d.seq, req: r})
		d.seq++
	}
	target.Build()
	d.m.Adds.Add(uint64(len(rs)))
	d.m.QueueDepthHiWater.Observe(int64(d.q.Len() + d.qw.Len()))
}

// clearsWindow reports whether value v is significantly higher priority
// than reference ref, i.e. v < ref - w without underflow.
func (d *Dispatcher) clearsWindow(v, ref uint64) bool {
	return ref > d.w && v < ref-d.w
}

// notePreemption applies the ER expansion and counts the event.
func (d *Dispatcher) notePreemption() {
	d.stats.Preemptions++
	d.m.Preemptions.Inc()
	if d.cfg.ER {
		d.expandWindow()
	}
}

// expandWindow applies one ER growth step to the blocking window: multiply
// by the expansion factor, always advancing by at least one so w == 0 and
// float saturation still make progress. Preemptions and SP promotions share
// this single implementation so a growth-rule fix cannot land in only one
// of the two paths.
func (d *Dispatcher) expandWindow() {
	nw := uint64(float64(d.w) * d.cfg.Expansion)
	if nw <= d.w { // w == 0 or float saturation
		nw = d.w + 1
	}
	d.w = nw
	d.m.WindowExpansions.Inc()
}

// Next dispatches the highest-priority request, or nil when empty. The
// returned request is considered in service until the following Next call.
func (d *Dispatcher) Next() *Request {
	if d.q.Len() == 0 {
		if d.qw.Len() == 0 {
			d.hasCur = false
			return nil
		}
		d.q.SwapWith(&d.qw)
		d.stats.Swaps++
		d.m.Swaps.Inc()
		// A swapped-in batch is the new serving set; none of its members
		// preempted anything. Advancing the epoch retires any stale
		// preempter marks without touching the batch.
		d.gen++
	}
	if d.cfg.Mode == ConditionallyPreemptive && d.cfg.SP && d.qw.Len() > 0 {
		d.promote()
	}
	e := d.q.Pop()
	if d.cfg.ER && !(e.preempter && e.gen == d.gen) {
		if d.w != d.cfg.Window {
			d.m.WindowResets.Inc()
		}
		d.w = d.cfg.Window
	}
	d.curV = e.v
	d.hasCur = true
	return e.req
}

// promote implements SP: any waiting request that clears the window
// against the next serving-queue request joins the serving queue.
func (d *Dispatcher) promote() {
	next := d.q.Peek().v
	for d.qw.Len() > 0 && d.clearsWindow(d.qw.Peek().v, next) {
		e := d.qw.Pop()
		e.preempter = true
		e.gen = d.gen
		d.stats.Promotions++
		d.m.Promotions.Inc()
		if d.cfg.ER {
			// A promotion expands the window like a preemption but is not
			// double counted as an arrival preemption.
			d.expandWindow()
		}
		d.q.Push(e)
		next = d.q.Peek().v
	}
}

// Each visits every queued request (serving and waiting queues, not the
// in-service one). Metrics use it to sample priority inversions.
func (d *Dispatcher) Each(visit func(*Request)) {
	for _, e := range d.q.Slice() {
		visit(e.req)
	}
	for _, e := range d.qw.Slice() {
		visit(e.req)
	}
}
