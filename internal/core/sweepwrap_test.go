package core

import (
	"testing"
)

// The packed sweep word gives progress 48 bits. Before the saturation
// guard, crossing 2^48 silently truncated the stored progress (the high
// bits fell off the prog<<16 shift), so the next observation read a
// near-zero timeline and new arrivals' v_c jumped ahead of everything
// queued. These tests pin the guarded behaviour at the boundary.

func TestShardedSweepProgressSaturatesAtBoundary(t *testing.T) {
	s := MustShardedScheduler("s", shardedTestConfig(), 2)
	m := &Metrics{}
	s.SetMetrics(m)

	// Seed the timeline 10 cylinders below the ceiling, head at 0.
	s.sweep.Store((maxSweepProgress - 10) << sweepHeadBits)

	p0 := s.SweepProgress()
	p1 := s.observeHead(100) // +100 crosses the ceiling: must clamp, not wrap
	if p1 < p0 {
		t.Fatalf("progress wrapped: %d -> %d", p0, p1)
	}
	if p1 != maxSweepProgress {
		t.Fatalf("progress = %d, want clamp at %d", p1, maxSweepProgress)
	}
	if !s.SweepSaturated() {
		t.Fatal("SweepSaturated = false after clamping")
	}
	if got := m.SweepSaturations.Load(); got != 1 {
		t.Fatalf("SweepSaturations = %d, want 1", got)
	}

	// Further observations must stay frozen at the ceiling — monotonic, no
	// wrap, and no second saturation count.
	for head := 200; head < 1000; head += 100 {
		if p := s.observeHead(head); p != maxSweepProgress {
			t.Fatalf("observeHead(%d) = %d after saturation, want %d", head, p, maxSweepProgress)
		}
	}
	if got := m.SweepSaturations.Load(); got != 1 {
		t.Fatalf("SweepSaturations = %d after frozen observations, want 1", got)
	}
}

// TestShardedSweepOrderStableAcrossBoundary checks the user-visible symptom:
// a request enqueued after the boundary crossing must not leapfrog an
// identical-priority request enqueued just before it.
func TestShardedSweepOrderStableAcrossBoundary(t *testing.T) {
	s := MustShardedScheduler("s", shardedTestConfig(), 2)
	s.sweep.Store((maxSweepProgress - 10) << sweepHeadBits)

	mk := func(id uint64, cyl int) *Request {
		return &Request{ID: id, Priorities: []int{0, 0, 0}, Deadline: 100, Cylinder: cyl}
	}
	// Request 1 is enqueued as the head crosses the ceiling (anchored ~100
	// cylinders ahead on the timeline); request 2 is enqueued a further
	// 1600 cylinders of head travel later, anchored ~1000 ahead of that.
	// On the absolute timeline request 1 comes first; with the pre-fix
	// wrap, request 1's anchor was astronomically large while request 2's
	// collapsed to near zero, reversing the order.
	s.Add(mk(1, 500), 0, 400)   // crossing observation: timeline clamps
	s.Add(mk(2, 3000), 0, 2000) // post-saturation: frozen anchor
	first := s.Next(0, 2000)
	if first == nil || first.ID != 1 {
		t.Fatalf("first dispatch = %+v, want ID 1", first)
	}
	second := s.Next(0, 2000)
	if second == nil || second.ID != 2 {
		t.Fatalf("second dispatch = %+v, want ID 2", second)
	}
}
