package core

import (
	"math/rand"
	"testing"
)

// drainIDs pops every request and returns the ID order.
func drainIDs(next func() *Request) []uint64 {
	var ids []uint64
	for r := next(); r != nil; r = next() {
		ids = append(ids, r.ID)
	}
	return ids
}

// TestAddBatchMatchesAddLoop checks that the bulk path dispatches in the
// exact order a one-by-one Add loop would, in every mode — including the
// conditionally preemptive one, where AddBatch must fall back to
// per-arrival window checks.
func TestAddBatchMatchesAddLoop(t *testing.T) {
	cfgs := []DispatcherConfig{
		{Mode: FullyPreemptive},
		{Mode: NonPreemptive},
		{Mode: ConditionallyPreemptive, Window: 100, SP: true},
	}
	rng := rand.New(rand.NewSource(21))
	for _, cfg := range cfgs {
		loop := MustDispatcher(cfg)
		bulk := MustDispatcher(cfg)
		n := 300
		rs := make([]*Request, n)
		vs := make([]uint64, n)
		for i := range rs {
			rs[i] = &Request{ID: uint64(i + 1)}
			vs[i] = uint64(rng.Intn(500))
		}
		for i := range rs {
			loop.Add(rs[i], vs[i])
		}
		bulk.AddBatch(rs, vs)
		a, b := drainIDs(loop.Next), drainIDs(bulk.Next)
		if len(a) != n || len(b) != n {
			t.Fatalf("%v: drained %d / %d of %d", cfg.Mode, len(a), len(b), n)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: order diverged at %d: loop %d, batch %d", cfg.Mode, i, a[i], b[i])
			}
		}
	}
}

// TestAddBatchOnNonEmptyQueue covers the incremental fallback when the
// target queue already holds requests.
func TestAddBatchOnNonEmptyQueue(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: FullyPreemptive})
	d.Add(&Request{ID: 100}, 50)
	d.AddBatch([]*Request{{ID: 1}, {ID: 2}}, []uint64{10, 90})
	want := []uint64{1, 100, 2}
	got := drainIDs(d.Next)
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestAddBatchLengthMismatchPanics(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: FullyPreemptive})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	d.AddBatch([]*Request{{ID: 1}}, []uint64{1, 2})
}

// TestSchedulerAddBatchMatchesAddLoop checks the scheduler-level wrapper:
// identical values (one observeHead per batch vs per call with the same
// head) and identical dispatch order.
func TestSchedulerAddBatchMatchesAddLoop(t *testing.T) {
	ecfg := shardedTestConfig()
	loop := MustScheduler("a", ecfg, DispatcherConfig{Mode: FullyPreemptive}, 0)
	bulk := MustScheduler("b", ecfg, DispatcherConfig{Mode: FullyPreemptive}, 0)
	rng := rand.New(rand.NewSource(22))
	rs := make([]*Request, 200)
	for i := range rs {
		rs[i] = randomRequest(rng, uint64(i+1))
	}
	for _, r := range rs {
		loop.Add(r, 5000, 77)
	}
	bulk.AddBatch(rs, 5000, 77)
	if bulk.Len() != loop.Len() {
		t.Fatalf("Len: bulk %d, loop %d", bulk.Len(), loop.Len())
	}
	for {
		a := loop.Next(6000, 77)
		b := bulk.Next(6000, 77)
		if a == nil || b == nil {
			if a != b {
				t.Fatalf("one scheduler drained early: %v vs %v", a, b)
			}
			break
		}
		if a.ID != b.ID {
			t.Fatalf("order diverged: loop %d, batch %d", a.ID, b.ID)
		}
	}
	// Empty batch is a no-op and must not disturb the sweep timeline.
	before := bulk.progress
	bulk.AddBatch(nil, 7000, 3000)
	if bulk.progress != before {
		t.Error("empty AddBatch advanced the sweep timeline")
	}
}
