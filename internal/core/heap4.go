package core

// Comparer is a strict-weak ordering over T. Implementations should be
// zero-size struct types: the comparator is then a type parameter rather
// than a stored func value, so comparisons dispatch statically instead of
// through a function pointer on every sift step.
type Comparer[T any] interface {
	Less(a, b *T) bool
}

// Heap4 is a non-interface generic 4-ary min-heap storing values of type
// T. It replaces container/heap on the dispatch hot path: elements are
// kept inline in one slice (no per-element boxing through `any`, no
// pointer chasing during sifts), the wider fan-out halves the sift depth,
// and the slice's spare capacity acts as a freelist, so steady-state
// Push/Pop perform no heap allocation. The zero value (with a zero-size
// comparator) is an empty heap ready for use.
type Heap4[T any, C Comparer[T]] struct {
	a   []T
	cmp C
}

// Len returns the number of elements.
func (h *Heap4[T, C]) Len() int { return len(h.a) }

// Peek returns a pointer to the minimum element; it is only valid until the
// next mutation. It panics on an empty heap.
func (h *Heap4[T, C]) Peek() *T { return &h.a[0] }

// Push inserts x.
func (h *Heap4[T, C]) Push(x T) {
	h.a = append(h.a, x)
	h.siftUp(len(h.a) - 1)
}

// Pop removes and returns the minimum element.
func (h *Heap4[T, C]) Pop() T {
	n := len(h.a) - 1
	top := h.a[0]
	h.a[0] = h.a[n]
	var zero T
	h.a[n] = zero // release references held by the vacated slot
	h.a = h.a[:n]
	if n > 0 {
		h.siftDown(0)
	}
	return top
}

// Append adds x without restoring heap order; callers must Build before the
// next Peek/Push/Pop. Bulk loads Append n elements and Build once, which is
// O(n) (Floyd) instead of n sift-ups.
func (h *Heap4[T, C]) Append(x T) { h.a = append(h.a, x) }

// Build restores heap order over the whole slice.
func (h *Heap4[T, C]) Build() {
	for i := (len(h.a) - 2) / 4; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Slice exposes the backing slice in heap (unspecified) order, for
// iteration and in-place flag updates. Reordering entries through it breaks
// the heap.
func (h *Heap4[T, C]) Slice() []T { return h.a }

// SwapWith exchanges the contents of h and o. Both heaps must share the
// same ordering; heap order is preserved.
func (h *Heap4[T, C]) SwapWith(o *Heap4[T, C]) { h.a, o.a = o.a, h.a }

func (h *Heap4[T, C]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.cmp.Less(&h.a[i], &h.a[parent]) {
			return
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *Heap4[T, C]) siftDown(i int) {
	n := len(h.a)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		last := first + 4
		if last > n {
			last = n
		}
		min := first
		for j := first + 1; j < last; j++ {
			if h.cmp.Less(&h.a[j], &h.a[min]) {
				min = j
			}
		}
		if !h.cmp.Less(&h.a[min], &h.a[i]) {
			return
		}
		h.a[i], h.a[min] = h.a[min], h.a[i]
		i = min
	}
}
