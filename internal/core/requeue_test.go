package core

import (
	"testing"

	"sfcsched/internal/stats"
)

// The fault injector re-enqueues a request after a transient error: the
// dispatcher sees the same request Added again after it was dispatched.
// These property tests re-prove the PR-4 window equivalences under that
// re-queue traffic: with Serve-and-Promote active, a conditional window
// of w = 0 dispatches exactly like the fully-preemptive mode, and a
// window too large for any value to clear dispatches exactly like the
// non-preemptive mode — on the same arrival/re-queue sequence.
//
// Values are drawn distinct (low bits carry the request ID) so the pairs
// cannot diverge on (v, seq) tie-breaks that the equivalence does not
// promise: promotion uses a strict v comparison, so two requests with
// equal v may legitimately dispatch in different orders across modes.

// lockstepOp is one scripted dispatcher operation.
type lockstepOp struct {
	kind int // 0 = Add, 1 = Next, 2 = re-Add a dispatched request
	id   uint64
	v    uint64
	pick int // index into the in-flight pool for re-adds
}

// requeueScript generates a deterministic op sequence with roughly half
// adds, a third dispatches, and the rest fault-style re-queues.
func requeueScript(seed uint64, n int) []lockstepOp {
	rng := stats.NewRNG(seed)
	ops := make([]lockstepOp, 0, n)
	var nextID uint64
	inflight := 0 // size of the dispatched-not-yet-requeued pool
	queued := 0
	for len(ops) < n {
		roll := rng.Intn(10)
		switch {
		case roll < 5:
			nextID++
			// Distinct per request: random high bits, ID low bits.
			// Stays far below the huge window used by the
			// non-preemptive pair.
			v := rng.Uint64n(1<<40)<<20 | nextID
			ops = append(ops, lockstepOp{kind: 0, id: nextID, v: v})
			queued++
		case roll < 8:
			ops = append(ops, lockstepOp{kind: 1})
			if queued > 0 {
				queued--
				inflight++
			}
		default:
			if inflight == 0 {
				continue
			}
			ops = append(ops, lockstepOp{kind: 2, pick: rng.Intn(inflight)})
			inflight--
			queued++
		}
	}
	return ops
}

// runLockstep drives a and b through the same script and fails the test
// at the first Next() whose dispatched request differs.
func runLockstep(t *testing.T, a, b *Dispatcher, ops []lockstepOp) {
	t.Helper()
	type flight struct {
		r *Request
		v uint64
	}
	var pool []flight // dispatched by a (== by b) and not yet re-added
	values := map[uint64]uint64{}
	step := func(i int) {
		ra, rb := a.Next(), b.Next()
		switch {
		case ra == nil && rb == nil:
			return
		case ra == nil || rb == nil:
			t.Fatalf("op %d: one dispatcher empty, the other not (a=%v b=%v)", i, ra, rb)
		case ra.ID != rb.ID:
			t.Fatalf("op %d: dispatch diverged: a served %d, b served %d", i, ra.ID, rb.ID)
		}
		// Track the request once; both dispatchers share the pointers.
		pool = append(pool, flight{r: ra, v: values[ra.ID]})
	}
	for i, op := range ops {
		switch op.kind {
		case 0:
			r := &Request{ID: op.id}
			values[op.id] = op.v
			a.Add(r, op.v)
			b.Add(r, op.v)
		case 1:
			step(i)
		case 2:
			f := pool[op.pick]
			pool = append(pool[:op.pick], pool[op.pick+1:]...)
			a.Add(f.r, f.v)
			b.Add(f.r, f.v)
		}
	}
	// Drain both to the end: every remaining dispatch must also match.
	for a.Len() > 0 || b.Len() > 0 {
		step(-1)
	}
	if a.Len() != b.Len() {
		t.Fatalf("drain left unequal queues: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestWindowZeroWithSPEqualsFullyPreemptiveUnderRequeues(t *testing.T) {
	for _, seed := range []uint64{1, 17, 42, 9001, 0xdeadbeef} {
		ops := requeueScript(seed, 4000)
		a := MustDispatcher(DispatcherConfig{Mode: FullyPreemptive})
		b := MustDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, Window: 0, SP: true})
		runLockstep(t, a, b, ops)
	}
}

func TestHugeWindowWithSPEqualsNonPreemptiveUnderRequeues(t *testing.T) {
	for _, seed := range []uint64{1, 17, 42, 9001, 0xdeadbeef} {
		ops := requeueScript(seed, 4000)
		a := MustDispatcher(DispatcherConfig{Mode: NonPreemptive})
		b := MustDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, Window: 1 << 63, SP: true})
		runLockstep(t, a, b, ops)
	}
}
