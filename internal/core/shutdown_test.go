package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func shutdownConfig() EncapsulatorConfig {
	return EncapsulatorConfig{
		Levels:      8,
		UseDeadline: true, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: 3832,
	}
}

// TestShardedCloseDrainNoLossNoDoubleDispatch is the shutdown contract of
// the serving layer: producers hammer TryAdd while a consumer drains via
// Next; Close lands mid-sweep; afterwards Drain hands back the remainder.
// Every request a producer saw accepted must come out of Next or Drain
// exactly once, and every rejected request must come out of neither.
func TestShardedCloseDrainNoLossNoDoubleDispatch(t *testing.T) {
	s := MustShardedScheduler("", shutdownConfig(), 8)
	s.SetMetrics(&Metrics{})

	const producers = 4
	const perProducer = 2000

	var accepted sync.Map // id -> true for requests TryAdd accepted
	var rejected atomic.Uint64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			<-start
			for i := 0; i < perProducer; i++ {
				id := uint64(p*perProducer + i + 1)
				r := &Request{
					ID:         id,
					Priorities: []int{int(id) % 8},
					Deadline:   int64(id%700_000) + 1,
					Cylinder:   int(id*37) % 3832,
				}
				if s.TryAdd(r, int64(i), int(id)%3832) {
					accepted.Store(id, true)
				} else {
					rejected.Add(1)
				}
			}
		}(p)
	}

	seen := make(map[uint64]int)
	var consumed int
	var consumerWG sync.WaitGroup
	stopConsumer := make(chan struct{})
	consumerWG.Add(1)
	go func() {
		defer consumerWG.Done()
		now := int64(0)
		for {
			select {
			case <-stopConsumer:
				return
			default:
			}
			if r := s.Next(now, int(now)%3832); r != nil {
				seen[r.ID]++
				consumed++
				now++
			} else {
				runtime.Gosched()
			}
		}
	}()

	close(start)
	// Let the mill turn, then slam the ingress shut mid-sweep.
	for s.Metrics().Adds.Load() < producers*perProducer/4 {
		runtime.Gosched()
	}
	s.Close()
	wg.Wait()
	close(stopConsumer)
	consumerWG.Wait()

	drained := 0
	s.Drain(func(r *Request) {
		seen[r.ID]++
		drained++
	})
	if s.Len() != 0 {
		t.Fatalf("scheduler still holds %d requests after Drain", s.Len())
	}
	if !s.Closed() {
		t.Fatal("scheduler not marked closed")
	}

	var nAccepted int
	accepted.Range(func(k, _ any) bool {
		nAccepted++
		if seen[k.(uint64)] != 1 {
			t.Fatalf("accepted request %d dispatched %d times, want exactly 1", k, seen[k.(uint64)])
		}
		return true
	})
	if len(seen) != nAccepted {
		t.Fatalf("%d distinct requests came out, but only %d were accepted", len(seen), nAccepted)
	}
	if consumed+drained != nAccepted {
		t.Fatalf("accounting broke: consumed %d + drained %d != accepted %d", consumed, drained, nAccepted)
	}
	if got := int(rejected.Load()); nAccepted+got != producers*perProducer {
		t.Fatalf("accepted %d + rejected %d != produced %d", nAccepted, got, producers*perProducer)
	}
	if rejected.Load() == 0 {
		t.Log("note: Close landed after every producer finished; rejection path untested this run")
	}
}

// TestShardedTryAddAfterCloseRejects pins the quiescent-state semantics.
func TestShardedTryAddAfterCloseRejects(t *testing.T) {
	s := MustShardedScheduler("", shutdownConfig(), 4)
	s.SetMetrics(&Metrics{})
	r := &Request{ID: 1, Priorities: []int{0}, Cylinder: 10}
	if !s.TryAdd(r, 0, 0) {
		t.Fatal("open scheduler rejected a request")
	}
	s.Close()
	if s.TryAdd(&Request{ID: 2, Priorities: []int{0}}, 0, 0) {
		t.Fatal("closed scheduler accepted a request")
	}
	// Add on a closed scheduler is a visible no-op, not a panic.
	s.Add(&Request{ID: 3, Priorities: []int{0}}, 0, 0)
	if s.Len() != 1 {
		t.Fatalf("closed scheduler queued an Add: len %d, want 1", s.Len())
	}
	// The queued request is still dispatchable after Close.
	if got := s.Next(0, 0); got == nil || got.ID != 1 {
		t.Fatalf("Next after Close = %v, want request 1", got)
	}
	// Drain is idempotent on an empty closed scheduler.
	if n := s.Drain(nil); n != 0 {
		t.Fatalf("Drain on empty scheduler returned %d", n)
	}
}

// TestShardedDrainOrder checks Drain hands back the remainder in the exact
// (value, sequence) order Next would have dispatched it.
func TestShardedDrainOrder(t *testing.T) {
	s := MustShardedScheduler("", shutdownConfig(), 4)
	s.SetMetrics(&Metrics{})
	ref := MustShardedScheduler("", shutdownConfig(), 4)
	ref.SetMetrics(&Metrics{})
	for i := 1; i <= 64; i++ {
		r := &Request{
			ID:         uint64(i),
			Priorities: []int{i % 8},
			Deadline:   int64(i*9000) + 1,
			Cylinder:   (i * 311) % 3832,
		}
		s.Add(r, 0, 0)
		ref.Add(r, 0, 0)
	}
	var got []uint64
	s.Drain(func(r *Request) { got = append(got, r.ID) })
	for i := 0; ; i++ {
		r := ref.Next(0, 0)
		if r == nil {
			if i != len(got) {
				t.Fatalf("Drain returned %d requests, Next %d", len(got), i)
			}
			break
		}
		if i >= len(got) || got[i] != r.ID {
			t.Fatalf("drain order diverges at %d: got %v, want %d", i, got[i:min(i+3, len(got))], r.ID)
		}
	}
}
