package core

import (
	"testing"

	"sfcsched/internal/sfc"
)

// Additional depth tests for cascade edge cases and stage interactions.

func TestStage3NonDividingR(t *testing.T) {
	// R = 5 does not divide the 4096-cell X axis; partition width rounds
	// up and the effective axis is ps*R.
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 8, UseCylinder: true, R: 5, Cylinders: 100,
	})
	if e.ps != (stage3Res+4)/5 {
		t.Errorf("partition size = %d, want ceil(%d/5)", e.ps, stage3Res)
	}
	if e.maxX != e.ps*5 {
		t.Errorf("effective X axis = %d, want %d", e.maxX, e.ps*5)
	}
	// Values stay coherent: the highest priority in the furthest cylinder
	// still computes, and partition precedence holds per sweep.
	v0 := e.Value(&Request{Priorities: []int{0}, Cylinder: 99}, 0, 0)
	v4 := e.Value(&Request{Priorities: []int{7}, Cylinder: 0}, 0, 0)
	if v0 >= v4 {
		t.Errorf("partition precedence broken: %d >= %d", v0, v4)
	}
}

func TestCascadeWindowFractionWithCylinderStage(t *testing.T) {
	s := MustScheduler("w", EncapsulatorConfig{
		Levels: 8, UseCylinder: true, R: 4, Cylinders: 1000,
	}, DispatcherConfig{Mode: ConditionallyPreemptive}, 0.1)
	want := uint64(0.1 * float64(s.Encapsulator().MaxValue()))
	if got := s.Dispatcher().Window(); got != want {
		t.Errorf("window = %d, want %d (10%% of one sweep cycle)", got, want)
	}
}

func TestShortPriorityVectorPadsWithHighest(t *testing.T) {
	// A request carrying fewer priority dimensions than the curve is
	// padded with level 0 (highest) in the missing dimensions.
	e := MustEncapsulator(EncapsulatorConfig{
		Curve1: sfc.MustNew("sweep", 3, 8), Levels: 8,
	})
	short := e.Value(&Request{Priorities: []int{3}}, 0, 0)
	full := e.Value(&Request{Priorities: []int{3, 0, 0}}, 0, 0)
	if short != full {
		t.Errorf("short vector value %d != padded vector value %d", short, full)
	}
}

func TestCurve1SideLargerThanLevels(t *testing.T) {
	// 8 levels on a 16-cell curve axis: levels scale onto even cells and
	// stay strictly ordered.
	e := MustEncapsulator(EncapsulatorConfig{
		Curve1: sfc.MustNew("sweep", 1, 16), Levels: 8,
	})
	prev := uint64(0)
	for l := 0; l < 8; l++ {
		v := e.Value(&Request{Priorities: []int{l}}, 0, 0)
		if l > 0 && v <= prev {
			t.Fatalf("levels not strictly ordered at %d: %d <= %d", l, v, prev)
		}
		prev = v
	}
}

func TestStage2Curve2RejectsNon2D(t *testing.T) {
	_, err := NewEncapsulator(EncapsulatorConfig{
		Levels: 8, UseDeadline: true, DeadlineHorizon: 1000,
		Curve2: sfc.MustNew("hilbert", 3, 8),
	})
	if err == nil {
		t.Error("expected error for 3-D Curve2")
	}
}

func TestDeadlineSpanValidation(t *testing.T) {
	if _, err := NewEncapsulator(EncapsulatorConfig{
		Levels: 8, UseDeadline: true, DeadlineHorizon: 1000, DeadlineSpan: 2000,
	}); err == nil {
		t.Error("expected error for span > horizon")
	}
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 8, UseDeadline: true, F: 1, DeadlineHorizon: 1000,
	})
	if e.cfg.DeadlineSpan != 1000 {
		t.Errorf("span should default to horizon, got %d", e.cfg.DeadlineSpan)
	}
}

func TestSweepTimelineWrapsAreForwardOnly(t *testing.T) {
	s := MustScheduler("x", EncapsulatorConfig{
		Levels: 1, UseCylinder: true, R: 1, Cylinders: 100,
	}, DispatcherConfig{Mode: FullyPreemptive}, 0)
	// Head 90 -> 10 counts as 20 forward (wrap), never -80.
	s.Add(&Request{ID: 1, Cylinder: 50}, 0, 90)
	if s.progress != 90 { // first observation from initial head 0
		t.Fatalf("progress = %d after first observation, want 90", s.progress)
	}
	s.Add(&Request{ID: 2, Cylinder: 50}, 0, 10)
	if s.progress != 110 {
		t.Errorf("progress = %d, want 110 (wrap counts forward)", s.progress)
	}
}

// TestCascadeStageOrderMatters: the same inputs through (priority-major)
// f=0 and (deadline-major) f=inf produce genuinely different orders —
// a sanity check that the balance knob is live end to end.
func TestCascadeStageOrderMatters(t *testing.T) {
	mk := func(f float64, tie TiePolicy) *Scheduler {
		return MustScheduler("x", EncapsulatorConfig{
			Levels: 8, UseDeadline: true, F: f, Tie: tie, DeadlineHorizon: 1_000_000,
		}, DispatcherConfig{Mode: FullyPreemptive}, 0)
	}
	reqs := []*Request{
		{ID: 1, Priorities: []int{7}, Deadline: 100_000},
		{ID: 2, Priorities: []int{0}, Deadline: 900_000},
	}
	p := mk(0, TieDeadline)
	d := MustFuncScheduler("edf", EmulateEDF().fn, DispatcherConfig{Mode: FullyPreemptive})
	for _, r := range reqs {
		p.Add(r, 0, 0)
		d.Add(r, 0, 0)
	}
	if p.Next(0, 0).ID != 2 {
		t.Error("f=0 should serve the high-priority request first")
	}
	if d.Next(0, 0).ID != 1 {
		t.Error("EDF should serve the tight deadline first")
	}
}

func TestWeightedSumOverflowRejected(t *testing.T) {
	_, err := NewEncapsulator(EncapsulatorConfig{
		Levels: 8, UseDeadline: true, F: 1e12,
		DeadlineHorizon: 1 << 40, DeadlineSpan: 1,
	})
	if err == nil {
		t.Error("expected overflow rejection for extreme F and span ratio")
	}
}
