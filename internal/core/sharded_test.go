package core

import (
	"math/rand"
	"sync"
	"testing"

	"sfcsched/internal/sfc"
)

// shardedTestConfig is a full three-stage cascade small enough for tests.
func shardedTestConfig() EncapsulatorConfig {
	return EncapsulatorConfig{
		Curve1: sfc.MustNew("hilbert", 3, 8), Levels: 8,
		UseDeadline: true, F: 1, DeadlineHorizon: 700_000, DeadlineSpan: 700_000, DeadlineSlack: true,
		UseCylinder: true, R: 3, Cylinders: 3832,
	}
}

func randomRequest(rng *rand.Rand, id uint64) *Request {
	return &Request{
		ID:         id,
		Priorities: []int{rng.Intn(8), rng.Intn(8), rng.Intn(8)},
		Deadline:   int64(rng.Intn(700_000)),
		Cylinder:   rng.Intn(3832),
	}
}

// TestShardedMatchesSchedulerSerialized feeds the identical (op, now, head)
// sequence to a ShardedScheduler and to a Scheduler with a fully preemptive
// dispatcher: the dispatch order must match bit for bit.
func TestShardedMatchesSchedulerSerialized(t *testing.T) {
	ecfg := shardedTestConfig()
	ss := MustShardedScheduler("s", ecfg, 4)
	ref := MustScheduler("r", ecfg, DispatcherConfig{Mode: FullyPreemptive}, 0)

	rng := rand.New(rand.NewSource(7))
	now, head := int64(0), 0
	id := uint64(0)
	for round := 0; round < 200; round++ {
		for i := rng.Intn(6); i > 0; i-- {
			r := randomRequest(rng, id)
			id++
			ss.Add(r, now, head)
			ref.Add(r, now, head)
			now += int64(rng.Intn(1000))
		}
		for i := rng.Intn(4); i > 0; i-- {
			a := ss.Next(now, head)
			b := ref.Next(now, head)
			switch {
			case a == nil && b == nil:
			case a == nil || b == nil:
				t.Fatalf("round %d: one scheduler empty (sharded=%v ref=%v)", round, a, b)
			case a.ID != b.ID:
				t.Fatalf("round %d: dispatch order diverged: sharded %d, ref %d", round, a.ID, b.ID)
			default:
				head = a.Cylinder
			}
			now += int64(rng.Intn(2000))
		}
	}
	// Drain the rest.
	for {
		a, b := ss.Next(now, head), ref.Next(now, head)
		if a == nil && b == nil {
			break
		}
		if a == nil || b == nil || a.ID != b.ID {
			t.Fatalf("drain diverged: sharded %v, ref %v", a, b)
		}
		head = a.Cylinder
	}
}

// TestShardedConcurrentConservation runs several producers against one
// consumer and checks every request is dispatched exactly once. Run under
// -race this also exercises the locking protocol.
func TestShardedConcurrentConservation(t *testing.T) {
	const producers, perProducer = 4, 500
	ss := MustShardedScheduler("s", shardedTestConfig(), 8)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < perProducer; i++ {
				id := uint64(p*perProducer + i + 1)
				ss.Add(randomRequest(rng, id), int64(i), i%3832)
			}
		}(p)
	}
	seen := make(map[uint64]bool, producers*perProducer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(seen) < producers*perProducer {
			if r := ss.Next(0, 0); r != nil {
				if seen[r.ID] {
					t.Errorf("request %d dispatched twice", r.ID)
					return
				}
				seen[r.ID] = true
			}
		}
	}()
	wg.Wait()
	<-done
	if len(seen) != producers*perProducer {
		t.Fatalf("dispatched %d of %d", len(seen), producers*perProducer)
	}
	if ss.Len() != 0 {
		t.Fatalf("queue not empty after drain: %d", ss.Len())
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewShardedScheduler("s", EncapsulatorConfig{
		Levels: 1, UseCylinder: true, R: 1, Cylinders: 1 << 16,
	}, 4); err == nil {
		t.Error("expected error for cylinder count beyond the packed sweep field")
	}
	if _, err := NewShardedScheduler("s", shardedTestConfig(), -1); err == nil {
		t.Error("expected error for negative shard count")
	}
	for _, tc := range []struct{ in, want int }{{0, 8}, {1, 1}, {3, 4}, {4, 4}, {5, 8}, {16, 16}} {
		s := MustShardedScheduler("s", shardedTestConfig(), tc.in)
		if s.Shards() != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.in, s.Shards(), tc.want)
		}
	}
	if MustShardedScheduler("", shardedTestConfig(), 1).Name() == "" {
		t.Error("default name missing")
	}
}

// TestShardedSweepForwardOnly mirrors the Scheduler test: head movement is
// cyclic forward progress, even across wraps, on the packed atomic word.
func TestShardedSweepForwardOnly(t *testing.T) {
	s := MustShardedScheduler("s", EncapsulatorConfig{
		Levels: 1, UseCylinder: true, R: 1, Cylinders: 100,
	}, 2)
	if got := s.observeHead(90); got != 90 {
		t.Fatalf("progress after head 90: %d", got)
	}
	if got := s.observeHead(10); got != 110 { // 90 -> 10 wraps: +20
		t.Fatalf("progress after wrap to 10: %d", got)
	}
	if got := s.observeHead(10); got != 110 { // stationary head: no movement
		t.Fatalf("progress after stationary observation: %d", got)
	}
}

// TestShardedEachAndLen checks the snapshot accessors.
func TestShardedEachAndLen(t *testing.T) {
	ss := MustShardedScheduler("s", shardedTestConfig(), 4)
	rng := rand.New(rand.NewSource(9))
	want := map[uint64]bool{}
	for i := uint64(1); i <= 40; i++ {
		ss.Add(randomRequest(rng, i), 0, 0)
		want[i] = true
	}
	if ss.Len() != 40 {
		t.Fatalf("Len = %d", ss.Len())
	}
	ss.Each(func(r *Request) { delete(want, r.ID) })
	if len(want) != 0 {
		t.Fatalf("Each missed %d requests", len(want))
	}
}
