package core

import "fmt"

// Scheduler couples an Encapsulator with a Dispatcher into the complete
// Cascaded-SFC disk scheduler. It satisfies the scheduler contract used by
// the simulator: values are computed at enqueue time (including the SFC3
// head-relative seek dimension, as in the paper).
type Scheduler struct {
	enc  *Encapsulator
	disp *Dispatcher
	name string

	// Scan-timeline tracking for the SFC3 stage: cumulative cylinders the
	// head has swept (cyclically) and the last head position observed.
	progress uint64
	lastHead int

	vbuf []uint64 // reusable AddBatch value buffer

	m *Metrics // never nil; shared with disp
}

// NewScheduler builds the full scheduler. If dcfg.Window is zero and
// windowFrac is positive, the blocking window is set to windowFrac of the
// encapsulator's value space — the unit the paper's experiments use.
func NewScheduler(name string, ecfg EncapsulatorConfig, dcfg DispatcherConfig, windowFrac float64) (*Scheduler, error) {
	enc, err := NewEncapsulator(ecfg)
	if err != nil {
		return nil, err
	}
	if windowFrac < 0 || windowFrac > 1 {
		return nil, fmt.Errorf("core: window fraction %v outside [0,1]", windowFrac)
	}
	if dcfg.Window == 0 && windowFrac > 0 {
		dcfg.Window = uint64(windowFrac * float64(enc.MaxValue()))
	}
	disp, err := NewDispatcher(dcfg)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = "cascaded-sfc"
	}
	return &Scheduler{enc: enc, disp: disp, name: name, m: disp.Metrics()}, nil
}

// MustScheduler is NewScheduler for static configurations.
func MustScheduler(name string, ecfg EncapsulatorConfig, dcfg DispatcherConfig, windowFrac float64) *Scheduler {
	s, err := NewScheduler(name, ecfg, dcfg, windowFrac)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the scheduler's display name.
func (s *Scheduler) Name() string { return s.name }

// Encapsulator exposes the value mapper (e.g. for window sizing).
func (s *Scheduler) Encapsulator() *Encapsulator { return s.enc }

// Dispatcher exposes the queue machinery (e.g. for policy stats).
func (s *Scheduler) Dispatcher() *Dispatcher { return s.disp }

// SetMetrics redirects the scheduler's (and its dispatcher's) observability
// counters to m instead of the process-wide DefaultMetrics. Must be called
// before the first Add; m must not be nil.
func (s *Scheduler) SetMetrics(m *Metrics) {
	s.m = m
	s.disp.SetMetrics(m)
}

// Metrics returns the metrics sink the scheduler reports into.
func (s *Scheduler) Metrics() *Metrics { return s.m }

// observeHead advances the sweep timeline to the given head position.
// Any movement counts as forward cyclic progress, which is exact while the
// scheduler itself drives the head in sweep order.
func (s *Scheduler) observeHead(head int) {
	c := s.enc.cfg.Cylinders
	if c <= 0 {
		return
	}
	if head < 0 {
		head = 0
	}
	if head >= c {
		head = c - 1
	}
	s.progress += uint64((head - s.lastHead + c) % c)
	s.lastHead = head
	s.m.SweepProgress.Set(int64(s.progress))
}

// Add enqueues r, computing its characterization value at time now with
// the disk head at cylinder head.
func (s *Scheduler) Add(r *Request, now int64, head int) {
	s.observeHead(head)
	s.disp.Add(r, s.enc.ValueAt(r, now, head, s.progress))
}

// AddBatch enqueues every request of rs at time now with the disk head at
// cylinder head. Values are computed once into a reused buffer and handed
// to the dispatcher's bulk insert, which heapifies an empty queue in one
// O(n) pass instead of n sift-ups.
func (s *Scheduler) AddBatch(rs []*Request, now int64, head int) {
	if len(rs) == 0 {
		return
	}
	s.observeHead(head)
	if cap(s.vbuf) < len(rs) {
		s.vbuf = make([]uint64, len(rs))
	}
	vs := s.vbuf[:len(rs)]
	for i, r := range rs {
		vs[i] = s.enc.ValueAt(r, now, head, s.progress)
	}
	s.disp.AddBatch(rs, vs)
}

// Next dispatches the next request, or nil when idle.
func (s *Scheduler) Next(now int64, head int) *Request {
	s.observeHead(head)
	r := s.disp.Next()
	if r != nil {
		s.m.noteDispatch(r, now)
	}
	return r
}

// RequestValue returns the characterization value the encapsulator would
// assign r at time now with the head at cylinder head, on the current
// sweep timeline. Read-only: neither the queues nor the sweep progress
// change, so observability layers (sim decision tracing) can rank queued
// candidates by v_c without perturbing the scheduler.
func (s *Scheduler) RequestValue(r *Request, now int64, head int) uint64 {
	return s.enc.ValueAt(r, now, head, s.progress)
}

// Window returns the dispatcher's current blocking window (ER may have
// expanded it beyond the configured width).
func (s *Scheduler) Window() uint64 { return s.disp.Window() }

// Len returns the number of queued requests.
func (s *Scheduler) Len() int { return s.disp.Len() }

// Each visits all queued requests.
func (s *Scheduler) Each(visit func(*Request)) { s.disp.Each(visit) }
