package core

import (
	"sfcsched/internal/obs"
)

// Metrics aggregates the scheduler's runtime observability counters. All
// fields are safe for concurrent update and may be scraped (via an
// obs.Registry) while dispatch loops are running; every record is a few
// atomic instructions, so the Add/Next zero-allocation gates hold with
// instrumentation enabled.
//
// By default every Dispatcher, Scheduler and ShardedScheduler reports into
// the process-wide DefaultMetrics aggregate, which needs no wiring: a
// binary can register it once (see Metrics.Register) and observe all
// scheduler activity in the process. Tests and multi-scheduler servers that
// need per-instance counts install their own instance with SetMetrics.
type Metrics struct {
	// Adds counts requests enqueued (Add and AddBatch items).
	Adds obs.Counter
	// Dispatches counts requests handed out by Next.
	Dispatches obs.Counter
	// QueueDepthHiWater tracks the largest queue depth seen at enqueue.
	QueueDepthHiWater obs.MaxGauge

	// Preemptions counts arrivals that jumped into the serving queue
	// (ConditionallyPreemptive mode).
	Preemptions obs.Counter
	// Promotions counts SP promotions from q' into q.
	Promotions obs.Counter
	// Swaps counts q/q' batch swaps.
	Swaps obs.Counter
	// WindowExpansions counts ER blocking-window growth events.
	WindowExpansions obs.Counter
	// WindowResets counts ER window resets back to the configured width.
	WindowResets obs.Counter

	// SweepProgress is the cumulative number of cylinders the head has
	// swept (cyclically) on the SFC3 scan timeline.
	SweepProgress obs.Gauge
	// SweepSaturations counts sweep-timeline saturation events: the packed
	// 48-bit progress field of ShardedScheduler reaching its ceiling (after
	// which progress clamps rather than wrapping; see observeHead).
	SweepSaturations obs.Counter

	// DispatchWait is the distribution of simulated queueing delay: the
	// time from a request's arrival to its dispatch, in the scheduler's
	// clock units (microseconds throughout this repo).
	DispatchWait obs.Histogram
}

// DefaultMetrics is the process-wide aggregate every scheduler reports into
// unless overridden with SetMetrics.
var DefaultMetrics = &Metrics{}

// Register registers every field of m under prefix (e.g. "sfcsched") in
// reg. Metric names follow Prometheus conventions; counters gain a _total
// suffix at export time.
func (m *Metrics) Register(reg *obs.Registry, prefix string) error {
	type entry struct {
		name, help string
		v          any
	}
	for _, e := range []entry{
		{"adds", "requests enqueued", &m.Adds},
		{"dispatches", "requests dispatched", &m.Dispatches},
		{"queue_depth_hiwater", "largest queue depth seen at enqueue", &m.QueueDepthHiWater},
		{"preemptions", "arrivals that preempted into the serving queue", &m.Preemptions},
		{"promotions", "SP promotions from the waiting queue", &m.Promotions},
		{"swaps", "serving/waiting queue batch swaps", &m.Swaps},
		{"window_expansions", "ER blocking-window growth events", &m.WindowExpansions},
		{"window_resets", "ER blocking-window resets", &m.WindowResets},
		{"sweep_progress_cylinders", "cumulative cylinders swept on the scan timeline", &m.SweepProgress},
		{"sweep_saturations", "sweep-timeline progress saturation events", &m.SweepSaturations},
		{"dispatch_wait_us", "arrival-to-dispatch delay, microseconds", &m.DispatchWait},
	} {
		if err := reg.Register(prefix+"_"+e.name, e.help, e.v); err != nil {
			return err
		}
	}
	return nil
}

// MustRegister is Register for static wiring.
func (m *Metrics) MustRegister(reg *obs.Registry, prefix string) {
	if err := m.Register(reg, prefix); err != nil {
		panic(err)
	}
}

// noteDispatch records a dispatch and its queueing delay at time now.
func (m *Metrics) noteDispatch(r *Request, now int64) {
	m.Dispatches.Inc()
	if w := now - r.Arrival; w >= 0 {
		m.DispatchWait.Observe(uint64(w))
	}
}
