package core

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"sfcsched/internal/sfc"
)

// stage2Res is the per-axis resolution of the SFC2 (priority x deadline)
// plane: stage-1 outputs and deadline coordinates are both renormalized
// onto [0, stage2Res) before being combined. 2^16 cells keep the deadline
// axis fine enough (a few ms per cell over a multi-minute run) that the
// f -> infinity limit really does order by deadline.
const stage2Res = 1 << 16

// stage3Res is the resolution of the priority-deadline axis entering SFC3.
const stage3Res = 4096

// TiePolicy selects how the SFC2 weighted sum breaks ties at the extreme
// balance-factor settings (paper §5.2).
type TiePolicy int

const (
	// TieNone quantizes the weighted sum with no secondary key.
	TieNone TiePolicy = iota
	// TieDeadline breaks ties by earliest deadline; with F == 0 this
	// realizes the priority-major sweep curve.
	TieDeadline
	// TiePriority breaks ties by highest priority; with F == +Inf this
	// realizes the deadline-major sweep curve.
	TiePriority
)

// EncapsulatorConfig configures the three cascaded stages. The zero value
// is not usable; at minimum Levels must be set.
type EncapsulatorConfig struct {
	// Curve1 is the D-dimensional SFC over the priority-like dimensions.
	// nil means requests carry a single priority that feeds stage 2
	// directly (the paper's "applications with only one priority type").
	Curve1 sfc.Curve
	// Levels is the number of priority levels per dimension.
	Levels int

	// UseDeadline enables the SFC2 stage.
	UseDeadline bool
	// F is the SFC2 balance factor: v2 = priority + F*deadline. F < 1
	// favors priority-inversion minimization, F > 1 favors deadlines.
	// math.Inf(1) is accepted and orders by deadline with priority ties.
	F float64
	// Tie selects the tie-break at extreme F values.
	Tie TiePolicy
	// DeadlineHorizon bounds the deadline axis, microseconds. Required when
	// UseDeadline is set. In the default (absolute) mode it is the largest
	// absolute deadline expected during the run; deadlines are clamped
	// into [0, DeadlineHorizon] and scaled onto the axis. In slack mode it
	// bounds the time-to-deadline instead.
	DeadlineHorizon int64
	// DeadlineSlack switches the deadline coordinate from the absolute
	// deadline to the slack (deadline - now) at enqueue time. Slack values
	// computed at different times are skewed against each other by the
	// arrival gap, which starves old requests under load — the absolute
	// mode is the default for that reason. Slack mode remains both as an
	// ablation and for the SFC3 cascade, whose seek dimension is already
	// insertion-relative.
	DeadlineSlack bool
	// DeadlineSpan calibrates the balance units of F: F = 1 weighs one
	// full priority range equal to one DeadlineSpan of deadline distance
	// (the local deadline window, e.g. the relative-deadline maximum).
	// Zero defaults to DeadlineHorizon, which makes F balance against the
	// whole horizon instead — only sensible when the horizon is the window.
	DeadlineSpan int64
	// Curve2, when non-nil, replaces the weighted sum with a true 2-D
	// space-filling curve over (deadline, priority). Used by the §6
	// experiments (Sweep-X, Sweep-Y, Hilbert, Peano).
	Curve2 sfc.Curve
	// Curve2PriorityOnY assigns priority to the curve's Y (most
	// significant, for lexicographic curves) axis instead of X.
	// With a sweep Curve2: false gives the EDF-like "Sweep-X", true gives
	// the multi-queue-like "Sweep-Y".
	Curve2PriorityOnY bool

	// UseCylinder enables the SFC3 stage.
	UseCylinder bool
	// R is the number of vertical partitions of the SFC3 plane; each
	// partition is served in one disk scan. R = 1 sorts on seek only;
	// large R sorts on priority-deadline only. Required >= 1 when
	// UseCylinder is set.
	R int
	// Cylinders is the disk's cylinder count. Required when UseCylinder.
	Cylinders int
}

// Encapsulator maps requests to characterization values v_c (paper Fig. 2,
// "Part 1"). It is safe for concurrent use after construction.
//
// The value computation is allocation-free: per-call working memory (curve
// points and scratch words) comes from an internal sync.Pool, small SFC1
// grids are served from a precomputed lookup table (sfc.Accelerate), and
// all axis rescaling is exact 128-bit integer arithmetic.
type Encapsulator struct {
	cfg EncapsulatorConfig

	c1       sfc.Curve // cfg.Curve1, possibly LUT-accelerated
	c2       sfc.Curve // cfg.Curve2, possibly LUT-accelerated
	lvl2cell []uint32  // clamped priority level -> Curve1 cell coordinate

	max1 uint64 // exclusive bound on stage-1 output
	max2 uint64 // exclusive bound on stage-2 output
	ps   uint64 // SFC3 partition size
	maxX uint64 // effective SFC3 X-axis bound (ps * R)
	max  uint64 // exclusive bound on v_c

	pool sync.Pool // *encScratch; nil New when no stage needs scratch
}

// encScratch is the pooled per-call working set of ValueAt. The stage-1
// memo rides along: multimedia workloads enqueue long runs of requests
// with identical priority vectors (one per stream), so remembering the last
// cell -> index mapping per pooled scratch skips the curve walk entirely on
// repeats. A miss costs one Dims()-word compare.
type encScratch struct {
	p  sfc.Point // stage-1 cell
	s  []uint32  // Curve1 IndexFast scratch
	p2 sfc.Point // stage-2 cell (always len 2)
	s2 []uint32  // Curve2 IndexFast scratch

	memoOK  bool
	memoVal uint64
	memoKey []uint32 // last stage-1 cell
}

// NewEncapsulator validates cfg and returns a ready encapsulator.
func NewEncapsulator(cfg EncapsulatorConfig) (*Encapsulator, error) {
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("core: Levels must be >= 1, got %d", cfg.Levels)
	}
	if cfg.Curve1 != nil && uint64(cfg.Levels) > uint64(cfg.Curve1.Side()) {
		return nil, fmt.Errorf("core: %d levels exceed curve side %d", cfg.Levels, cfg.Curve1.Side())
	}
	e := &Encapsulator{cfg: cfg}
	if cfg.Curve1 != nil {
		e.max1 = cfg.Curve1.MaxIndex()
		e.c1 = sfc.Accelerate(cfg.Curve1)
		side := uint64(cfg.Curve1.Side())
		e.lvl2cell = make([]uint32, cfg.Levels)
		for l := range e.lvl2cell {
			e.lvl2cell[l] = uint32(uint64(l) * side / uint64(cfg.Levels))
		}
	} else {
		e.max1 = uint64(cfg.Levels)
	}
	e.max2 = e.max1
	if cfg.UseDeadline {
		if cfg.DeadlineHorizon <= 0 {
			return nil, fmt.Errorf("core: DeadlineHorizon must be positive when UseDeadline is set")
		}
		if cfg.F < 0 {
			return nil, fmt.Errorf("core: F must be >= 0, got %v", cfg.F)
		}
		if cfg.DeadlineSpan < 0 || cfg.DeadlineSpan > cfg.DeadlineHorizon {
			return nil, fmt.Errorf("core: DeadlineSpan %d outside [0, DeadlineHorizon] (0 defaults to the horizon)", cfg.DeadlineSpan)
		}
		if cfg.DeadlineSpan == 0 {
			e.cfg.DeadlineSpan = cfg.DeadlineHorizon
		}
		switch {
		case cfg.Curve2 != nil:
			if cfg.Curve2.Dims() != 2 {
				return nil, fmt.Errorf("core: Curve2 must be 2-dimensional, got %d", cfg.Curve2.Dims())
			}
			e.max2 = cfg.Curve2.MaxIndex()
			e.c2 = sfc.Accelerate(cfg.Curve2)
		case cfg.F == 0 || math.IsInf(cfg.F, 1):
			// Lexicographic composition at the extremes.
			e.max2 = stage2Res * stage2Res
		default:
			// Weighted sum: majors span (1 + F*horizon/span) dimensionless
			// units at wScale resolution, each carrying tie bits.
			spans := float64(e.cfg.DeadlineHorizon) / float64(e.cfg.DeadlineSpan)
			majors := (1 + cfg.F*spans) * wScale
			if majors >= float64(math.MaxUint64/stage2Res-1) {
				return nil, fmt.Errorf("core: F=%v over %v horizon spans overflows the value space", cfg.F, spans)
			}
			e.max2 = (uint64(majors) + 1) * stage2Res
		}
	}
	if cfg.UseCylinder {
		if cfg.R < 1 {
			return nil, fmt.Errorf("core: R must be >= 1, got %d", cfg.R)
		}
		if cfg.Cylinders < 1 {
			return nil, fmt.Errorf("core: Cylinders must be set when UseCylinder is")
		}
		e.ps = (stage3Res + uint64(cfg.R) - 1) / uint64(cfg.R)
		e.maxX = e.ps * uint64(cfg.R)
		e.max = uint64(cfg.Cylinders) * e.ps * uint64(cfg.R)
	} else {
		e.max = e.max2
	}
	if e.c1 != nil || e.c2 != nil {
		e.pool.New = e.newScratch
	}
	return e, nil
}

// newScratch builds one pooled working set sized for the configured curves.
func (e *Encapsulator) newScratch() any {
	sc := &encScratch{p2: make(sfc.Point, 2)}
	if e.c1 != nil {
		sc.p = make(sfc.Point, e.c1.Dims())
		sc.s = make([]uint32, e.c1.ScratchLen())
		sc.memoKey = make([]uint32, e.c1.Dims())
	}
	if e.c2 != nil {
		sc.s2 = make([]uint32, e.c2.ScratchLen())
	}
	return sc
}

// MustEncapsulator is NewEncapsulator for static configurations.
func MustEncapsulator(cfg EncapsulatorConfig) *Encapsulator {
	e, err := NewEncapsulator(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// MaxValue returns the span of the characterization-value space;
// blocking-window sizes are naturally expressed as a fraction of it. For
// configurations without the cylinder stage it is an exclusive upper bound
// on Value results; with the cylinder stage it is the span of one full
// sweep cycle (Cylinders*Ps*R) — values advance beyond it along the sweep
// timeline, but only value differences matter to the dispatcher, and those
// stay within the span for co-queued requests.
func (e *Encapsulator) MaxValue() uint64 { return e.max }

// Value computes the characterization value v_c of r at time now with the
// disk head at cylinder head. Lower values dispatch earlier.
func (e *Encapsulator) Value(r *Request, now int64, head int) uint64 {
	return e.ValueAt(r, now, head, 0)
}

// ValueAt is Value with an explicit scan-progress anchor: progress is the
// cumulative number of cylinders the head has swept (cyclically) since the
// scheduler started. Stage-3 coordinates computed at different times remain
// comparable on this absolute sweep timeline; Scheduler tracks progress
// automatically. With UseCylinder unset, progress is ignored.
func (e *Encapsulator) ValueAt(r *Request, now int64, head int, progress uint64) uint64 {
	var sc *encScratch
	if e.pool.New != nil {
		sc = e.pool.Get().(*encScratch)
	}
	v := e.stage1(r, sc)
	if e.cfg.UseDeadline {
		v = e.stage2(v, r, now, sc)
	}
	if e.cfg.UseCylinder {
		v = e.stage3(v, r, head, progress)
	}
	if sc != nil {
		e.pool.Put(sc)
	}
	return v
}

// stage1 collapses the D priority dimensions through SFC1.
func (e *Encapsulator) stage1(r *Request, sc *encScratch) uint64 {
	c := e.c1
	if c == nil {
		if len(r.Priorities) == 0 {
			return 0
		}
		return uint64(clampLevel(r.Priorities[0], e.cfg.Levels))
	}
	p := sc.p
	for i := range p {
		var cell uint32
		if i < len(r.Priorities) {
			cell = e.lvl2cell[clampLevel(r.Priorities[i], e.cfg.Levels)]
		}
		p[i] = cell
	}
	if sc.memoOK && cellsEqual(p, sc.memoKey) {
		return sc.memoVal
	}
	v := c.IndexFast(p, sc.s)
	copy(sc.memoKey, p)
	sc.memoOK = true
	sc.memoVal = v
	return v
}

// cellsEqual reports whether two equal-length cells match.
func cellsEqual(a sfc.Point, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// stage2 combines the stage-1 value with the deadline.
func (e *Encapsulator) stage2(v1 uint64, r *Request, now int64, sc *encScratch) uint64 {
	pn := scale(v1, e.max1, stage2Res)
	d := r.Deadline
	if e.cfg.DeadlineSlack {
		d = r.Slack(now)
	} else if d == 0 {
		d = e.cfg.DeadlineHorizon // no deadline: least urgent
	}
	if d < 0 {
		d = 0
	}
	if d > e.cfg.DeadlineHorizon {
		d = e.cfg.DeadlineHorizon
	}
	dn := scale(uint64(d), uint64(e.cfg.DeadlineHorizon)+1, stage2Res)

	if c := e.c2; c != nil {
		side := uint64(c.Side())
		x := uint32(scale(dn, stage2Res, side))
		y := uint32(scale(pn, stage2Res, side))
		p2 := sc.p2
		if e.cfg.Curve2PriorityOnY {
			p2[0], p2[1] = x, y
		} else {
			p2[0], p2[1] = y, x
		}
		return c.IndexFast(p2, sc.s2)
	}

	switch {
	case e.cfg.F == 0:
		v := pn * stage2Res
		if e.cfg.Tie == TieDeadline {
			v += dn
		}
		return v
	case math.IsInf(e.cfg.F, 1):
		v := dn * stage2Res
		if e.cfg.Tie == TiePriority {
			v += pn
		}
		return v
	default:
		// Weighted sum in dimensionless units: one full priority range
		// weighs as much as F DeadlineSpans of deadline distance.
		sum := float64(pn)/stage2Res + e.cfg.F*float64(d)/float64(e.cfg.DeadlineSpan)
		major := uint64(sum * wScale)
		v := major * stage2Res
		switch e.cfg.Tie {
		case TieDeadline:
			v += dn
		case TiePriority:
			v += pn
		}
		if v >= e.max2 {
			v = e.max2 - 1
		}
		return v
	}
}

// wScale is the fractional resolution of the stage-2 weighted sum.
const wScale = 1 << 20

// stage3 combines the stage-2 value with the seek distance using the
// paper's R-partitioned sweep,
//
//	v_c = Maxy*Ps*Pn + Yv*Ps + (Xv - Ps*Pn)
//
// where Xv is the priority-deadline value, Yv the cylinder distance ahead
// of the head, Ps the partition width and Pn the partition number, with one
// adaptation: Yv is anchored to the absolute sweep timeline (progress +
// distance-ahead) rather than the enqueue-time head alone. The paper's
// batch scheduler computes all values against a near-stationary head; a
// continuously fed queue does not have one, and raw head-relative distances
// computed in different sweeps are mutually inconsistent (they cost a full
// extra sweep of seeking in practice). On the absolute timeline, partition
// Pn's term Maxy*Ps*Pn reads as "defer this band by Pn whole sweeps", which
// keeps the formula's R = 1 degeneration v_c = Yv*Maxx + Xv (one pure scan)
// exact while making cross-epoch comparisons coherent.
func (e *Encapsulator) stage3(v2 uint64, r *Request, head int, progress uint64) uint64 {
	xv := scale(v2, e.max2, e.maxX)
	cyl := r.Cylinder
	c := e.cfg.Cylinders
	if cyl < 0 {
		cyl = 0
	}
	if cyl >= c {
		cyl = c - 1
	}
	ahead := uint64((cyl - head + c) % c)
	pn := xv / e.ps
	yv := progress + ahead + pn*uint64(c)
	return yv*e.ps + (xv - e.ps*pn)
}

// scale maps v in [0, from) onto [0, to) preserving order. The mapping is
// the exact floor(v*to/from), computed with a 128-bit intermediate
// (math/bits.Mul64/Div64) so no grid size can lose order to floating-point
// rounding; power-of-two grids reduce to a shift.
func scale(v, from, to uint64) uint64 {
	if from == 0 {
		return 0
	}
	if v >= from {
		v = from - 1
	}
	if from&(from-1) == 0 && to&(to-1) == 0 {
		fb, tb := bits.Len64(from)-1, bits.Len64(to)-1
		if tb >= fb {
			return v << (tb - fb)
		}
		return v >> (fb - tb)
	}
	// v < from, so the 128-bit quotient v*to/from < to fits in 64 bits and
	// Div64 cannot trap.
	hi, lo := bits.Mul64(v, to)
	q, _ := bits.Div64(hi, lo, from)
	return q
}

// scaleFloat is the pre-integer float64 implementation of scale, kept as a
// test oracle: the exact path must agree with it on every grid whose
// products stay within float64's 53-bit mantissa (all grids the
// encapsulator uses).
func scaleFloat(v, from, to uint64) uint64 {
	if from == 0 {
		return 0
	}
	if v >= from {
		v = from - 1
	}
	return uint64(float64(v) * float64(to) / float64(from))
}

func clampLevel(l, levels int) int {
	if l < 0 {
		return 0
	}
	if l >= levels {
		return levels - 1
	}
	return l
}
