package core

import (
	"testing"

	"sfcsched/internal/stats"
)

func drainFunc(s *FuncScheduler, head int) []uint64 {
	var ids []uint64
	for r := s.Next(0, head); r != nil; r = s.Next(0, head) {
		ids = append(ids, r.ID)
		if r.Cylinder >= 0 {
			head = r.Cylinder
		}
	}
	return ids
}

func TestNewFuncSchedulerValidation(t *testing.T) {
	if _, err := NewFuncScheduler("x", nil, DispatcherConfig{Mode: FullyPreemptive}); err == nil {
		t.Error("expected error for nil value function")
	}
	s := MustFuncScheduler("", func(*Request, int64, int) uint64 { return 0 },
		DispatcherConfig{Mode: FullyPreemptive})
	if s.Name() != "func-scheduler" {
		t.Errorf("default name = %q", s.Name())
	}
}

func TestEmulateFCFSOrder(t *testing.T) {
	s := EmulateFCFS()
	for i := uint64(1); i <= 10; i++ {
		s.Add(&Request{ID: i}, 0, 0)
	}
	ids := drainFunc(s, 0)
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Fatalf("order = %v", ids)
		}
	}
}

func TestEmulateEDFOrder(t *testing.T) {
	s := EmulateEDF()
	rng := stats.NewRNG(1)
	deadlines := map[uint64]int64{}
	for i := uint64(1); i <= 50; i++ {
		d := int64(rng.Uint64n(1 << 30))
		deadlines[i] = d
		s.Add(&Request{ID: i, Deadline: d}, 0, 0)
	}
	s.Add(&Request{ID: 99}, 0, 0) // no deadline: dead last
	ids := drainFunc(s, 0)
	if ids[len(ids)-1] != 99 {
		t.Errorf("deadline-less request should dispatch last, got %v", ids[len(ids)-1])
	}
	prev := int64(-1)
	for _, id := range ids[:len(ids)-1] {
		if deadlines[id] < prev {
			t.Fatalf("deadline order violated at %d", id)
		}
		prev = deadlines[id]
	}
}

func TestEmulateSSTFPicksNearestAtInsertion(t *testing.T) {
	s := EmulateSSTF()
	s.Add(&Request{ID: 1, Cylinder: 900}, 0, 1000)
	s.Add(&Request{ID: 2, Cylinder: 990}, 0, 1000)
	s.Add(&Request{ID: 3, Cylinder: 2000}, 0, 1000)
	want := []uint64{2, 1, 3}
	ids := drainFunc(s, 1000)
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v, want %v", ids, want)
		}
	}
}

func TestEmulateCSCANSweepOrder(t *testing.T) {
	s := EmulateCSCAN(1000)
	s.Add(&Request{ID: 1, Cylinder: 800}, 0, 100)
	s.Add(&Request{ID: 2, Cylinder: 50}, 0, 100)
	s.Add(&Request{ID: 3, Cylinder: 400}, 0, 100)
	want := []uint64{3, 1, 2}
	ids := drainFunc(s, 100)
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v, want %v", ids, want)
		}
	}
}

func TestEmulateMultiQueueLevelsThenFIFO(t *testing.T) {
	s := EmulateMultiQueue(4)
	s.Add(&Request{ID: 1, Priorities: []int{2}}, 0, 0)
	s.Add(&Request{ID: 2, Priorities: []int{0}}, 0, 0)
	s.Add(&Request{ID: 3, Priorities: []int{0}}, 0, 0)
	s.Add(&Request{ID: 4, Priorities: []int{3}}, 0, 0)
	want := []uint64{2, 3, 1, 4}
	ids := drainFunc(s, 0)
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v, want %v", ids, want)
		}
	}
}

func TestFuncSchedulerContract(t *testing.T) {
	s := EmulateFCFS()
	if s.Next(0, 0) != nil {
		t.Error("empty scheduler should return nil")
	}
	s.Add(&Request{ID: 1}, 0, 0)
	s.Add(&Request{ID: 2}, 0, 0)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	n := 0
	s.Each(func(*Request) { n++ })
	if n != 2 {
		t.Errorf("Each visited %d", n)
	}
	if s.Dispatcher() == nil {
		t.Error("Dispatcher accessor broken")
	}
}
