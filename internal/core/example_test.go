package core_test

import (
	"fmt"

	"sfcsched/internal/core"
	"sfcsched/internal/sfc"
)

// ExampleScheduler builds the full three-stage cascade and dispatches a
// mixed batch: the high-priority tight-deadline request wins, the
// low-priority far-cylinder one goes last.
func ExampleScheduler() {
	s := core.MustScheduler("example",
		core.EncapsulatorConfig{
			Curve1: sfc.MustNew("hilbert", 2, 8),
			Levels: 8,

			UseDeadline:     true,
			F:               1,
			DeadlineHorizon: 1_000_000,
			DeadlineSpan:    1_000_000,
			DeadlineSlack:   true,

			UseCylinder: true,
			R:           3,
			Cylinders:   3832,
		},
		core.DispatcherConfig{Mode: core.FullyPreemptive},
		0,
	)
	s.Add(&core.Request{ID: 1, Priorities: []int{7, 7}, Deadline: 900_000, Cylinder: 3500}, 0, 0)
	s.Add(&core.Request{ID: 2, Priorities: []int{0, 0}, Deadline: 200_000, Cylinder: 200}, 0, 0)
	s.Add(&core.Request{ID: 3, Priorities: []int{3, 4}, Deadline: 600_000, Cylinder: 1500}, 0, 0)
	head := 0
	for r := s.Next(0, head); r != nil; r = s.Next(0, head) {
		fmt.Println("serve", r.ID)
		head = r.Cylinder
	}
	// Output:
	// serve 2
	// serve 3
	// serve 1
}

// ExampleDispatcher replays the paper's Figure 4 walk-through: with a
// blocking window of 20 and the Serve-and-Promote policy, requests
// T1..T7 are served in the order T1, T2, T5, T6, T3, T7, T4.
func ExampleDispatcher() {
	d := core.MustDispatcher(core.DispatcherConfig{
		Mode:   core.ConditionallyPreemptive,
		Window: 20,
		SP:     true,
	})
	vals := map[uint64]uint64{1: 55, 2: 40, 3: 45, 4: 90, 5: 5, 6: 22, 7: 30}
	d.Add(&core.Request{ID: 1}, vals[1])
	fmt.Println("serve", d.Next().ID)
	for _, id := range []uint64{2, 3, 4} {
		d.Add(&core.Request{ID: id}, vals[id])
	}
	fmt.Println("serve", d.Next().ID)
	for _, id := range []uint64{5, 6, 7} {
		d.Add(&core.Request{ID: id}, vals[id])
	}
	for r := d.Next(); r != nil; r = d.Next() {
		fmt.Println("serve", r.ID)
	}
	// Output:
	// serve 1
	// serve 2
	// serve 5
	// serve 6
	// serve 3
	// serve 7
	// serve 4
}

// ExampleEmulateEDF shows the §4.2 generalization: the framework acting
// as plain earliest-deadline-first.
func ExampleEmulateEDF() {
	s := core.EmulateEDF()
	s.Add(&core.Request{ID: 1, Deadline: 500}, 0, 0)
	s.Add(&core.Request{ID: 2, Deadline: 100}, 0, 0)
	s.Add(&core.Request{ID: 3, Deadline: 300}, 0, 0)
	for r := s.Next(0, 0); r != nil; r = s.Next(0, 0) {
		fmt.Println("serve", r.ID)
	}
	// Output:
	// serve 2
	// serve 3
	// serve 1
}
