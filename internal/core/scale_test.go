package core

import (
	"math/big"
	"math/bits"
	"math/rand"
	"strings"
	"testing"
)

// encapsulatorGrids are the (from, to) pairs the cascade actually rescales
// between: curve index spaces (powers of two and of three), the stage-2
// resolution, deadline horizons, and the SFC3 partition grid.
var encapsulatorGrids = [][2]uint64{
	{4096, 65536},           // hilbert 3d/16 -> stage2Res
	{19683, 65536},          // peano 9^3 -> stage2Res
	{65536, 65536},          // identity
	{700_001, 65536},        // deadline horizon+1 -> stage2Res
	{65536, 9},              // stage2Res -> curve2 side
	{4294967296, 4096},      // stage-2 lexicographic space -> stage3Res
	{68719476736, 1366 * 3}, // large weighted-sum space -> ps*R
	{1000, 64},              // legacy test grid
}

func TestScaleMatchesFloatOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, g := range encapsulatorGrids {
		from, to := g[0], g[1]
		// Only grids whose v*to products stay within float64's mantissa are
		// fair game for the oracle; all encapsulator grids qualify.
		if bits.Len64(from)+bits.Len64(to) > 53 {
			continue
		}
		for i := 0; i < 20000; i++ {
			v := rng.Uint64() % from
			if got, want := scale(v, from, to), scaleFloat(v, from, to); got != want {
				t.Fatalf("scale(%d, %d, %d) = %d, float oracle %d", v, from, to, got, want)
			}
		}
	}
}

// TestScaleExactAgainstBigInt checks the 128-bit path against math/big on
// grids large enough that v*to overflows uint64 — where the float oracle
// itself loses bits.
func TestScaleExactAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	grids := [][2]uint64{
		{1 << 62, 1<<62 - 3},
		{(1 << 63) - 25, 3486784401}, // 3^20
		{12157665459056928801, 65536},
		{18446744073709551557, 18446744073709551533},
	}
	for _, g := range grids {
		from, to := g[0], g[1]
		for i := 0; i < 5000; i++ {
			v := rng.Uint64() % from
			want := new(big.Int).Div(
				new(big.Int).Mul(new(big.Int).SetUint64(v), new(big.Int).SetUint64(to)),
				new(big.Int).SetUint64(from),
			).Uint64()
			if got := scale(v, from, to); got != want {
				t.Fatalf("scale(%d, %d, %d) = %d, want %d", v, from, to, got, want)
			}
		}
	}
}

// TestScaleOrderPreservingNonPow2 sweeps small grids exhaustively: the
// mapping must be monotone and land inside [0, to) for every ratio shape.
func TestScaleOrderPreservingNonPow2(t *testing.T) {
	for _, g := range [][2]uint64{{7, 5}, {5, 7}, {243, 65536}, {1000, 64}, {64, 1000}, {1, 1}, {3, 1}} {
		from, to := g[0], g[1]
		prev := uint64(0)
		for v := uint64(0); v < from; v++ {
			s := scale(v, from, to)
			if s >= to {
				t.Fatalf("scale(%d, %d, %d) = %d out of range", v, from, to, s)
			}
			if s < prev {
				t.Fatalf("scale(%d, %d, %d) = %d below prev %d", v, from, to, s, prev)
			}
			prev = s
		}
		// When downscaling, the top of the source range must reach the top
		// of the target (upscaling leaves gaps below to-1 by construction).
		if from >= to {
			if got := scale(from-1, from, to); got != to-1 {
				t.Fatalf("top of [0,%d) should map to %d, got %d", from, to-1, got)
			}
		}
	}
}

// TestDeadlineSpanBounds covers the corrected validation: zero defaults to
// the horizon, negative and over-horizon spans are rejected with a message
// describing the actual accepted interval.
func TestDeadlineSpanBounds(t *testing.T) {
	base := func(span int64) EncapsulatorConfig {
		return EncapsulatorConfig{
			Levels: 8, UseDeadline: true, F: 1, DeadlineHorizon: 1000, DeadlineSpan: span,
		}
	}
	e := MustEncapsulator(base(0))
	if e.cfg.DeadlineSpan != 1000 {
		t.Errorf("zero span should default to the horizon, got %d", e.cfg.DeadlineSpan)
	}
	for _, span := range []int64{-1, -1000, 1001, 1 << 40} {
		_, err := NewEncapsulator(base(span))
		if err == nil {
			t.Errorf("span %d: expected error", span)
			continue
		}
		if !strings.Contains(err.Error(), "[0, DeadlineHorizon]") {
			t.Errorf("span %d: error %q does not state the accepted interval", span, err)
		}
	}
}
