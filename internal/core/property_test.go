package core

import (
	"math"
	"testing"
	"testing/quick"

	"sfcsched/internal/sfc"
	"sfcsched/internal/stats"
)

// TestDispatcherConservation drives every dispatcher mode with random
// add/next interleavings and checks that no request is lost, duplicated,
// or dispatched out of thin air.
func TestDispatcherConservation(t *testing.T) {
	modes := []DispatcherConfig{
		{Mode: NonPreemptive},
		{Mode: FullyPreemptive},
		{Mode: ConditionallyPreemptive, Window: 100},
		{Mode: ConditionallyPreemptive, Window: 100, SP: true},
		{Mode: ConditionallyPreemptive, Window: 100, SP: true, ER: true, Expansion: 2},
	}
	for _, cfg := range modes {
		rng := stats.NewRNG(99)
		d := MustDispatcher(cfg)
		added := map[uint64]bool{}
		dispatched := map[uint64]bool{}
		var nextID uint64
		for step := 0; step < 5000; step++ {
			if rng.Float64() < 0.55 {
				nextID++
				added[nextID] = true
				d.Add(&Request{ID: nextID}, rng.Uint64n(1<<20))
			} else if r := d.Next(); r != nil {
				if dispatched[r.ID] {
					t.Fatalf("%v: request %d dispatched twice", cfg.Mode, r.ID)
				}
				if !added[r.ID] {
					t.Fatalf("%v: request %d dispatched but never added", cfg.Mode, r.ID)
				}
				dispatched[r.ID] = true
			}
			if want := len(added) - len(dispatched); d.Len() != want {
				t.Fatalf("%v: Len = %d, want %d", cfg.Mode, d.Len(), want)
			}
		}
		for r := d.Next(); r != nil; r = d.Next() {
			if dispatched[r.ID] {
				t.Fatalf("%v: request %d dispatched twice in drain", cfg.Mode, r.ID)
			}
			dispatched[r.ID] = true
		}
		if len(dispatched) != len(added) {
			t.Errorf("%v: %d added, %d dispatched", cfg.Mode, len(added), len(dispatched))
		}
	}
}

// TestFullyPreemptiveAlwaysMin: in fully-preemptive mode the dispatched
// request always carries the minimum value among those pending.
func TestFullyPreemptiveAlwaysMin(t *testing.T) {
	rng := stats.NewRNG(5)
	d := MustDispatcher(DispatcherConfig{Mode: FullyPreemptive})
	vals := map[uint64]uint64{}
	var id uint64
	for step := 0; step < 3000; step++ {
		if rng.Float64() < 0.6 || d.Len() == 0 {
			id++
			v := rng.Uint64n(1 << 16)
			vals[id] = v
			d.Add(&Request{ID: id}, v)
			continue
		}
		r := d.Next()
		min := uint64(math.MaxUint64)
		for _, v := range vals {
			if v < min {
				min = v
			}
		}
		if vals[r.ID] != min {
			t.Fatalf("dispatched value %d, pending min %d", vals[r.ID], min)
		}
		delete(vals, r.ID)
	}
}

// TestConditionalNeverBlocksForever: whatever the window, a drained input
// stream always leads to full dispatch (no request stuck between queues).
func TestConditionalNeverBlocksForever(t *testing.T) {
	f := func(windows uint16, n uint8) bool {
		d := MustDispatcher(DispatcherConfig{
			Mode: ConditionallyPreemptive, Window: uint64(windows), SP: true,
		})
		rng := stats.NewRNG(uint64(windows)*7919 + uint64(n))
		count := int(n)%64 + 1
		for i := 0; i < count; i++ {
			d.Add(&Request{ID: uint64(i)}, rng.Uint64n(1<<12))
			if rng.Float64() < 0.3 {
				d.Next()
			}
		}
		drained := 0
		for r := d.Next(); r != nil; r = d.Next() {
			drained++
			if drained > count {
				return false
			}
		}
		return d.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestERWindowNeverBelowBase: ER may expand the window but a reset always
// returns exactly to the configured base.
func TestERWindowNeverBelowBase(t *testing.T) {
	rng := stats.NewRNG(31)
	d := MustDispatcher(DispatcherConfig{
		Mode: ConditionallyPreemptive, Window: 50, ER: true, Expansion: 2,
	})
	var id uint64
	for step := 0; step < 4000; step++ {
		if rng.Float64() < 0.6 {
			id++
			d.Add(&Request{ID: id}, rng.Uint64n(1<<14))
		} else {
			d.Next()
		}
		if d.Window() < 50 {
			t.Fatalf("window %d fell below base 50", d.Window())
		}
	}
}

// TestEncapsulatorDeterministic: equal inputs give equal values, for every
// stage combination.
func TestEncapsulatorDeterministic(t *testing.T) {
	cfgs := []EncapsulatorConfig{
		{Levels: 8},
		{Curve1: sfc.MustNew("hilbert", 3, 8), Levels: 8},
		{Curve1: sfc.MustNew("peano", 3, 9), Levels: 8, UseDeadline: true, F: 1,
			DeadlineHorizon: 1_000_000, DeadlineSpan: 500_000},
		{Levels: 8, UseDeadline: true, F: 2, DeadlineHorizon: 1_000_000,
			UseCylinder: true, R: 3, Cylinders: 3832},
	}
	for _, cfg := range cfgs {
		e := MustEncapsulator(cfg)
		f := func(p1, p2, p3 uint8, dl uint32, cyl uint16, now uint32, head uint16) bool {
			r := &Request{
				Priorities: []int{int(p1 % 8), int(p2 % 8), int(p3 % 8)},
				Deadline:   int64(dl),
				Cylinder:   int(cyl) % 3832,
			}
			a := e.ValueAt(r, int64(now), int(head)%3832, 17)
			b := e.ValueAt(r, int64(now), int(head)%3832, 17)
			return a == b && a < e.MaxValue()+1<<40
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%+v: %v", cfg, err)
		}
	}
}

// TestStage1MonotoneForSweep: with a sweep SFC1, improving any single
// priority level (others fixed) never worsens the characterization value.
func TestStage1MonotoneForSweep(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Curve1: sfc.MustNew("sweep", 3, 8), Levels: 8,
	})
	f := func(a, b, c uint8, dim uint8) bool {
		p := []int{int(a % 8), int(b % 8), int(c % 8)}
		k := int(dim) % 3
		if p[k] == 0 {
			return true
		}
		better := append([]int(nil), p...)
		better[k]--
		return e.Value(&Request{Priorities: better}, 0, 0) < e.Value(&Request{Priorities: p}, 0, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStage2MonotoneInDeadline: with priorities fixed, an earlier deadline
// never yields a later dispatch position (absolute mode, any f > 0).
func TestStage2MonotoneInDeadline(t *testing.T) {
	for _, fv := range []float64{0.5, 1, 4, math.Inf(1)} {
		e := MustEncapsulator(EncapsulatorConfig{
			Levels: 8, UseDeadline: true, F: fv,
			DeadlineHorizon: 1 << 30, DeadlineSpan: 700_000,
		})
		f := func(lvl uint8, d1, d2 uint32) bool {
			if d1 == d2 {
				return true
			}
			lo, hi := int64(d1), int64(d2)
			if lo > hi {
				lo, hi = hi, lo
			}
			a := e.Value(&Request{Priorities: []int{int(lvl % 8)}, Deadline: lo + 1}, 0, 0)
			b := e.Value(&Request{Priorities: []int{int(lvl % 8)}, Deadline: hi + 1}, 0, 0)
			return a <= b
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("f=%v: %v", fv, err)
		}
	}
}

// TestSchedulerSweepTimelineMonotone: the scan-progress anchor never
// decreases, whatever head positions the simulator reports.
func TestSchedulerSweepTimelineMonotone(t *testing.T) {
	s := MustScheduler("x", EncapsulatorConfig{
		Levels: 4, UseCylinder: true, R: 2, Cylinders: 1000,
	}, DispatcherConfig{Mode: FullyPreemptive}, 0)
	rng := stats.NewRNG(8)
	prev := uint64(0)
	for i := 0; i < 2000; i++ {
		head := rng.Intn(1000)
		if rng.Float64() < 0.5 {
			s.Add(&Request{ID: uint64(i), Cylinder: rng.Intn(1000)}, int64(i), head)
		} else {
			s.Next(int64(i), head)
		}
		if s.progress < prev {
			t.Fatalf("progress went backward: %d -> %d", prev, s.progress)
		}
		prev = s.progress
	}
}

// TestValueIgnoresProgressWithoutCylinderStage: configurations without
// SFC3 must not depend on the sweep timeline.
func TestValueIgnoresProgressWithoutCylinderStage(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 8, UseDeadline: true, F: 1, DeadlineHorizon: 1_000_000,
	})
	r := &Request{Priorities: []int{3}, Deadline: 500_000}
	if e.ValueAt(r, 0, 0, 0) != e.ValueAt(r, 0, 0, 1<<40) {
		t.Error("progress leaked into a cascade without SFC3")
	}
}
