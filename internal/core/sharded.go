package core

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// sweepHeadBits is the width of the head-position field in the packed
// sweep-timeline word (progress<<sweepHeadBits | head).
const sweepHeadBits = 16

// maxSweepProgress is the ceiling of the packed 48-bit progress field.
// Progress saturates here instead of wrapping: a wrap would silently shear
// the sweep anchor back to near zero, making new arrivals' v_c incomparable
// with (and ordered ahead of) everything already queued. Saturation freezes
// the anchor instead, which degrades gracefully to enqueue-time
// head-relative ordering — every value computed after saturation still uses
// the same anchor, so the queue stays internally consistent. At one full
// sweep per 100 ms over a 2^16-cylinder disk, reaching the ceiling takes
// ~13 years; the saturation counter exists so such a run is visible, not
// silent.
const maxSweepProgress = 1<<(64-sweepHeadBits) - 1

// ShardedScheduler is a concurrent ingress front-end for the Cascaded-SFC
// scheduler: many producer goroutines may Add (and one consumer Next)
// without funneling through a single lock. Arrivals are hashed by request
// ID onto N mutex-protected sub-queues; Next merges by peeking every
// shard's minimum and popping the global (value, sequence) minimum, so one
// disk arm still drains a totally ordered stream.
//
// The queue discipline is fully preemptive (pure v_c order). The blocking
// window machinery of Dispatcher is inherently serial — every arrival must
// compare against the single in-service request — so the sharded front-end
// does not offer it; see Dispatcher for the windowed policies.
//
// Under a serialized feed (one goroutine alternating Add/Next) dispatch
// order is bit-for-bit identical to Scheduler with a FullyPreemptive
// Dispatcher: values are computed with the same sweep-timeline anchoring,
// and the global sequence counter reproduces the FIFO tie-break. Under
// concurrent feeds the order is linearized per shard by the mutexes; a
// request added concurrently with a Next call may be served on the
// following dispatch, which is the same slack any external queue in front
// of a single-threaded scheduler would introduce.
type ShardedScheduler struct {
	enc  *Encapsulator
	name string

	shards []ingressShard
	mask   uint64

	// seq is the global FIFO tie-break counter.
	seq atomic.Uint64
	// sweep packs the SFC3 scan timeline (progress<<16 | lastHead) into one
	// word so producers can advance it with a CAS instead of a lock.
	// Progress saturates at maxSweepProgress; see observeHead.
	sweep      atomic.Uint64
	trackSweep bool

	// depth approximates the queued-request count for the hi-water gauge
	// without touching every shard lock on the hot path.
	depth atomic.Int64

	// closed marks the ingress shut (Close). Producers observe it under
	// the shard lock inside TryAdd, which is what makes the Close/Drain
	// handoff lossless: every accepted request is visible to a subsequent
	// Drain, and every request racing past Close is visibly rejected.
	closed atomic.Bool

	m *Metrics // never nil; DefaultMetrics unless overridden
}

// ingressShard is one mutex-protected sub-queue, padded to a cache line so
// shards on adjacent slots do not false-share.
type ingressShard struct {
	mu sync.Mutex
	h  Heap4[entry, entryCmp]
	_  [64]byte
}

// NewShardedScheduler builds a sharded scheduler over ecfg with the given
// shard count (rounded up to a power of two; 0 picks 8). Configurations
// with the SFC3 stage must keep Cylinders below 2^16 — the packed sweep
// word has 16 bits for the head position — which every disk geometry in
// the repo satisfies by an order of magnitude.
func NewShardedScheduler(name string, ecfg EncapsulatorConfig, shards int) (*ShardedScheduler, error) {
	enc, err := NewEncapsulator(ecfg)
	if err != nil {
		return nil, err
	}
	if ecfg.UseCylinder && ecfg.Cylinders >= 1<<sweepHeadBits {
		return nil, fmt.Errorf("core: sharded scheduler supports at most %d cylinders, got %d", 1<<sweepHeadBits-1, ecfg.Cylinders)
	}
	if shards < 0 {
		return nil, fmt.Errorf("core: shard count must be >= 0, got %d", shards)
	}
	if shards == 0 {
		shards = 8
	}
	n := 1 << bits.Len(uint(shards-1)) // next power of two
	if name == "" {
		name = "cascaded-sfc-sharded"
	}
	s := &ShardedScheduler{
		enc:        enc,
		name:       name,
		shards:     make([]ingressShard, n),
		mask:       uint64(n - 1),
		trackSweep: ecfg.UseCylinder,
		m:          DefaultMetrics,
	}
	return s, nil
}

// MustShardedScheduler is NewShardedScheduler for static configurations.
func MustShardedScheduler(name string, ecfg EncapsulatorConfig, shards int) *ShardedScheduler {
	s, err := NewShardedScheduler(name, ecfg, shards)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the scheduler's display name.
func (s *ShardedScheduler) Name() string { return s.name }

// Encapsulator exposes the value mapper.
func (s *ShardedScheduler) Encapsulator() *Encapsulator { return s.enc }

// Shards returns the shard count.
func (s *ShardedScheduler) Shards() int { return len(s.shards) }

// SetMetrics redirects the scheduler's observability counters to m instead
// of the process-wide DefaultMetrics. Must be called before the first Add;
// m must not be nil.
func (s *ShardedScheduler) SetMetrics(m *Metrics) { s.m = m }

// Metrics returns the metrics sink the scheduler reports into.
func (s *ShardedScheduler) Metrics() *Metrics { return s.m }

// SweepProgress returns the current scan-timeline progress in cylinders.
func (s *ShardedScheduler) SweepProgress() uint64 {
	return s.sweep.Load() >> sweepHeadBits
}

// SweepSaturated reports whether the packed progress field has reached its
// 48-bit ceiling and stopped advancing (see maxSweepProgress).
func (s *ShardedScheduler) SweepSaturated() bool {
	return s.SweepProgress() >= maxSweepProgress
}

// observeHead advances the packed sweep timeline to the given head position
// (any movement counts as forward cyclic progress, as in Scheduler) and
// returns the resulting progress. Lock-free: concurrent observers race the
// CAS and the loser retries against the merged state.
func (s *ShardedScheduler) observeHead(head int) uint64 {
	if !s.trackSweep {
		return 0
	}
	c := s.enc.cfg.Cylinders
	if head < 0 {
		head = 0
	}
	if head >= c {
		head = c - 1
	}
	for {
		old := s.sweep.Load()
		prog := old >> sweepHeadBits
		last := int(old & (1<<sweepHeadBits - 1))
		if head == last {
			// The arm has not moved since the last observation; skip the
			// CAS so concurrent producers share the cache line read-only.
			return prog
		}
		if prog >= maxSweepProgress {
			// Saturated: the anchor is frozen (advancing further would wrap
			// the 48-bit field and corrupt v_c ordering). Skip the CAS too —
			// once frozen the word never changes again.
			return maxSweepProgress
		}
		np := prog + uint64((head-last+c)%c)
		if np > maxSweepProgress {
			np = maxSweepProgress
		}
		if s.sweep.CompareAndSwap(old, np<<sweepHeadBits|uint64(head)) {
			if np == maxSweepProgress {
				// Only the CAS winner that crossed the ceiling counts the
				// saturation, so the counter records the transition once.
				s.m.SweepSaturations.Inc()
			}
			s.m.SweepProgress.Set(int64(np))
			return np
		}
	}
}

// Add enqueues r, computing its characterization value at time now with
// the disk head at cylinder head. Safe for concurrent use. On a closed
// scheduler the request is rejected; callers that must know (serving
// ingress paths) use TryAdd.
func (s *ShardedScheduler) Add(r *Request, now int64, head int) {
	s.TryAdd(r, now, head)
}

// TryAdd enqueues r like Add and reports whether the scheduler accepted
// it. After Close every TryAdd returns false and the request is not
// queued, so a producer can account for (or re-route) it — requests are
// either visibly rejected or dispatched exactly once, never silently
// lost. Safe for concurrent use.
func (s *ShardedScheduler) TryAdd(r *Request, now int64, head int) bool {
	if s.closed.Load() {
		return false
	}
	prog := s.observeHead(head)
	e := entry{
		v:   s.enc.ValueAt(r, now, head, prog),
		seq: s.seq.Add(1) - 1,
		req: r,
	}
	// Fibonacci hash of the request ID spreads dense IDs across shards.
	sh := &s.shards[(r.ID*0x9E3779B97F4A7C15)>>32&s.mask]
	sh.mu.Lock()
	// Re-check under the lock: Close may have landed between the fast-path
	// check and the push. Drain acquires every shard lock after setting
	// closed, so a push that wins this lock with closed still false is
	// guaranteed to be seen by the drain; one that loses is rejected here.
	if s.closed.Load() {
		sh.mu.Unlock()
		return false
	}
	sh.h.Push(e)
	sh.mu.Unlock()
	s.m.Adds.Inc()
	s.m.QueueDepthHiWater.Observe(s.depth.Add(1))
	return true
}

// Next dispatches the globally minimum-value request, or nil when empty.
// Next is intended for a single consumer (the dispatch loop); it may run
// concurrently with producers calling Add.
func (s *ShardedScheduler) Next(now int64, head int) *Request {
	s.observeHead(head)
	best := -1
	var bv, bs uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.h.Len() > 0 {
			t := sh.h.Peek()
			if best < 0 || t.v < bv || (t.v == bv && t.seq < bs) {
				best, bv, bs = i, t.v, t.seq
			}
		}
		sh.mu.Unlock()
	}
	if best < 0 {
		return nil
	}
	sh := &s.shards[best]
	sh.mu.Lock()
	e := sh.h.Pop()
	sh.mu.Unlock()
	s.depth.Add(-1)
	s.m.noteDispatch(e.req, now)
	return e.req
}

// Len returns the number of queued requests.
func (s *ShardedScheduler) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.h.Len()
		sh.mu.Unlock()
	}
	return n
}

// Close shuts the ingress: every subsequent TryAdd returns false (and Add
// becomes a no-op) while Next, Len, Each and Drain keep working, so a
// serving loop can stop accepting work and still hand out — or hand back —
// everything already queued. Close is idempotent and safe to call
// concurrently with producers mid-Add: a racing request is either accepted
// (and then visible to Next/Drain) or visibly rejected, never stranded.
func (s *ShardedScheduler) Close() {
	s.closed.Store(true)
}

// Closed reports whether Close has been called.
func (s *ShardedScheduler) Closed() bool { return s.closed.Load() }

// Drain closes the scheduler and pops every remaining request in global
// (value, sequence) order — the order Next would have dispatched them —
// handing each to visit and returning the count. Unlike Next, drained
// requests are not counted as dispatches: they were never served, they are
// being handed back to the caller (for re-routing, persistence, or error
// reporting) as part of shutdown.
func (s *ShardedScheduler) Drain(visit func(*Request)) int {
	s.Close()
	n := 0
	for {
		best := -1
		var bv, bs uint64
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			if sh.h.Len() > 0 {
				t := sh.h.Peek()
				if best < 0 || t.v < bv || (t.v == bv && t.seq < bs) {
					best, bv, bs = i, t.v, t.seq
				}
			}
			sh.mu.Unlock()
		}
		if best < 0 {
			return n
		}
		sh := &s.shards[best]
		sh.mu.Lock()
		e := sh.h.Pop()
		sh.mu.Unlock()
		s.depth.Add(-1)
		n++
		if visit != nil {
			visit(e.req)
		}
	}
}

// Each visits every queued request. The snapshot is per-shard consistent;
// concurrent Adds may or may not be observed.
func (s *ShardedScheduler) Each(visit func(*Request)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.h.Slice() {
			visit(e.req)
		}
		sh.mu.Unlock()
	}
}
