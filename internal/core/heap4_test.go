package core

import (
	"math/rand"
	"testing"
)

// popAll drains h and returns the (v, seq) sequence.
func popAll(h *Heap4[entry, entryCmp]) []entry {
	out := make([]entry, 0, h.Len())
	for h.Len() > 0 {
		out = append(out, h.Pop())
	}
	return out
}

func checkSorted(t *testing.T, es []entry) {
	t.Helper()
	var cmp entryCmp
	for i := 1; i < len(es); i++ {
		if cmp.Less(&es[i], &es[i-1]) {
			t.Fatalf("pop %d: (%d,%d) after (%d,%d)", i, es[i].v, es[i].seq, es[i-1].v, es[i-1].seq)
		}
	}
}

func TestHeap4SortsRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Heap4[entry, entryCmp]
	const n = 2000
	counts := map[uint64]int{}
	for i := 0; i < n; i++ {
		v := uint64(rng.Intn(300)) // few distinct values: exercise seq ties
		counts[v]++
		h.Push(entry{v: v, seq: uint64(i)})
	}
	out := popAll(&h)
	if len(out) != n {
		t.Fatalf("popped %d of %d", len(out), n)
	}
	checkSorted(t, out)
	for _, e := range out {
		counts[e.v]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Fatalf("value %d count off by %d", v, c)
		}
	}
}

func TestHeap4BuildMatchesPush(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 5, 63, 64, 65, 1000} {
		var pushed, built Heap4[entry, entryCmp]
		for i := 0; i < n; i++ {
			e := entry{v: uint64(rng.Intn(100)), seq: uint64(i)}
			pushed.Push(e)
			built.Append(e)
		}
		built.Build()
		p, b := popAll(&pushed), popAll(&built)
		if len(p) != len(b) {
			t.Fatalf("n=%d: lengths differ: %d vs %d", n, len(p), len(b))
		}
		for i := range p {
			if p[i] != b[i] {
				t.Fatalf("n=%d: pop %d differs: %+v vs %+v", n, i, p[i], b[i])
			}
		}
	}
}

func TestHeap4MixedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Heap4[entry, entryCmp]
	seq := uint64(0)
	var drained []entry
	for round := 0; round < 50; round++ {
		for i := 0; i < rng.Intn(40); i++ {
			h.Push(entry{v: uint64(rng.Intn(50)), seq: seq})
			seq++
		}
		for i := rng.Intn(30); i > 0 && h.Len() > 0; i-- {
			drained = append(drained, h.Pop())
		}
		// Within one drain run order must hold; across runs it need not,
		// so only check the invariant that Peek is the minimum.
		if h.Len() > 0 {
			min := *h.Peek()
			var cmp entryCmp
			for i := range h.Slice() {
				if cmp.Less(&h.Slice()[i], &min) {
					t.Fatalf("round %d: Peek %+v not minimal", round, min)
				}
			}
		}
	}
}

func TestHeap4SwapWith(t *testing.T) {
	var a, b Heap4[entry, entryCmp]
	a.Push(entry{v: 1})
	a.Push(entry{v: 2})
	b.Push(entry{v: 7})
	a.SwapWith(&b)
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("lens after swap: %d, %d", a.Len(), b.Len())
	}
	if a.Peek().v != 7 || b.Peek().v != 1 {
		t.Fatalf("mins after swap: %d, %d", a.Peek().v, b.Peek().v)
	}
}

func TestHeap4PopReleasesSlot(t *testing.T) {
	var h Heap4[entry, entryCmp]
	r := &Request{ID: 9}
	h.Push(entry{v: 1, req: r})
	h.Push(entry{v: 2, req: r})
	h.Pop()
	// The vacated tail slot must not pin the request pointer.
	if tail := h.a[:cap(h.a)][h.Len()]; tail.req != nil {
		t.Error("popped slot still references the request")
	}
}
