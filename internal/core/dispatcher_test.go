package core

import (
	"testing"
)

// add enqueues a bare request with value v and returns it.
func add(d *Dispatcher, id uint64, v uint64) *Request {
	r := &Request{ID: id}
	d.Add(r, v)
	return r
}

// drain pops every remaining request and returns the ID order.
func drain(d *Dispatcher) []uint64 {
	var ids []uint64
	for r := d.Next(); r != nil; r = d.Next() {
		ids = append(ids, r.ID)
	}
	return ids
}

func eq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFullyPreemptiveGlobalOrder(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: FullyPreemptive})
	add(d, 1, 30)
	add(d, 2, 10)
	add(d, 3, 20)
	if got := drain(d); !eq(got, []uint64{2, 3, 1}) {
		t.Errorf("order = %v", got)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: FullyPreemptive})
	for id := uint64(1); id <= 5; id++ {
		add(d, id, 7)
	}
	if got := drain(d); !eq(got, []uint64{1, 2, 3, 4, 5}) {
		t.Errorf("equal values should dispatch FIFO, got %v", got)
	}
}

func TestNonPreemptiveBatches(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: NonPreemptive})
	add(d, 1, 50)
	add(d, 2, 40)
	// Start the batch.
	if r := d.Next(); r.ID != 2 {
		t.Fatalf("first dispatch = %d, want 2", r.ID)
	}
	// A much higher priority arrival must still wait for the batch.
	add(d, 3, 1)
	if r := d.Next(); r.ID != 1 {
		t.Fatalf("second dispatch = %d, want 1 (batch member)", r.ID)
	}
	if r := d.Next(); r.ID != 3 {
		t.Fatalf("third dispatch = %d, want 3", r.ID)
	}
	if d.Stats().Swaps < 2 {
		t.Errorf("swaps = %d, want >= 2", d.Stats().Swaps)
	}
}

func TestConditionalWindowBlocks(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, Window: 20})
	add(d, 1, 50)
	if d.Next().ID != 1 {
		t.Fatal("expected request 1")
	}
	add(d, 2, 40) // higher priority but inside the window: waits
	add(d, 3, 10) // significantly higher: preempts
	add(d, 4, 60) // lower priority: waits
	if r := d.Next(); r.ID != 3 {
		t.Fatalf("want preempter 3, got %d", r.ID)
	}
	if got := drain(d); !eq(got, []uint64{2, 4}) {
		t.Errorf("remaining order = %v", got)
	}
	if d.Stats().Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", d.Stats().Preemptions)
	}
}

// TestPaperFigure4 reproduces the worked example of the paper's Figure 4:
// requests T1..T7 under the conditionally-preemptive scheduler with SP must
// be served in the order T1, T2, T5, T6, T3, T7, T4.
func TestPaperFigure4(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, Window: 20, SP: true})
	vals := map[uint64]uint64{1: 55, 2: 40, 3: 45, 4: 90, 5: 5, 6: 22, 7: 30}

	d.Add(&Request{ID: 1}, vals[1])
	if d.Next().ID != 1 {
		t.Fatal("T1 should be served immediately")
	}
	// T2, T3, T4 arrive while T1 is served; none clears the window.
	for _, id := range []uint64{2, 3, 4} {
		d.Add(&Request{ID: id}, vals[id])
	}
	if r := d.Next(); r.ID != 2 {
		t.Fatalf("after T1 want T2, got T%d", r.ID)
	}
	// T5, T6, T7 arrive while T2 is served; only T5 clears the window.
	for _, id := range []uint64{5, 6, 7} {
		d.Add(&Request{ID: id}, vals[id])
	}
	want := []uint64{5, 6, 3, 7, 4}
	if got := drain(d); !eq(got, want) {
		t.Errorf("remaining order = %v, want %v", got, want)
	}
	if d.Stats().Promotions != 2 {
		t.Errorf("promotions = %d, want 2 (T6 and T7)", d.Stats().Promotions)
	}
}

func TestSPDisabledNoPromotion(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, Window: 20})
	add(d, 1, 55)
	d.Next()
	add(d, 2, 40)
	d.Next()     // serving 2; queue empty, swap brings in {2}... then 2 dispatched
	add(d, 3, 5) // would be promoted under SP once 2 finishes
	add(d, 4, 45)
	// 3 preempts (5 < 40-20), so it comes first regardless.
	if r := d.Next(); r.ID != 3 {
		t.Fatalf("want 3, got %d", r.ID)
	}
	if d.Stats().Promotions != 0 {
		t.Errorf("promotions = %d, want 0 without SP", d.Stats().Promotions)
	}
}

func TestWindowZeroIsFullyPreemptive(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, Window: 0})
	add(d, 1, 50)
	d.Next()
	add(d, 2, 49) // any improvement preempts when w = 0
	if r := d.Next(); r.ID != 2 {
		t.Errorf("w=0 should preempt on any improvement, got %d", r.ID)
	}
}

func TestHugeWindowIsNonPreemptive(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, Window: 1 << 62})
	add(d, 1, 50)
	d.Next()
	add(d, 2, 1)
	add(d, 3, 40)
	if got := drain(d); !eq(got, []uint64{2, 3}) {
		t.Errorf("order = %v (still value order within the next batch)", got)
	}
	if d.Stats().Preemptions != 0 {
		t.Errorf("preemptions = %d, want 0 with huge window", d.Stats().Preemptions)
	}
}

func TestERExpandsAndResets(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{
		Mode: ConditionallyPreemptive, Window: 10, ER: true, Expansion: 2,
	})
	add(d, 1, 100)
	d.Next()
	add(d, 2, 50) // preempts (50 < 90); window doubles to 20
	if d.Window() != 20 {
		t.Fatalf("window = %d, want 20 after one preemption", d.Window())
	}
	add(d, 3, 20) // preempts (20 < 50-20=30); window doubles to 40
	if d.Window() != 40 {
		t.Fatalf("window = %d, want 40", d.Window())
	}
	if d.Next().ID != 3 {
		t.Fatal("want preempter 3 first")
	}
	if d.Next().ID != 2 {
		t.Fatal("want preempter 2 next")
	}
	if d.Window() != 40 {
		t.Errorf("window should stay expanded while serving preempters, got %d", d.Window())
	}
	add(d, 4, 200)
	if d.Next().ID != 4 {
		t.Fatal("want 4")
	}
	if d.Window() != 10 {
		t.Errorf("window = %d, want reset to 10 after non-preempter dispatch", d.Window())
	}
}

func TestERGuardsAgainstAdversarialStream(t *testing.T) {
	// An adversary feeds requests that each clear the current window.
	// With ER, the window grows until arrivals stop preempting, bounding
	// how long the victim waits; without ER the victim waits for all of
	// them.
	const attackers = 50
	run := func(er bool) (victimPos int) {
		d := MustDispatcher(DispatcherConfig{
			Mode: ConditionallyPreemptive, Window: 5, ER: er, Expansion: 2,
		})
		add(d, 1, 100_000) // first attacker, enters service
		if d.Next().ID != 1 {
			t.Fatal("setup: attacker 1 should be in service")
		}
		add(d, 999, 200_000) // victim: lower priority than every attacker
		v := uint64(100_000)
		for i := 0; i < 10*attackers; i++ {
			// Each attacker undercuts the previous by just over the base
			// window, so with a fixed window every one of them preempts.
			if i < attackers {
				v -= 6
				add(d, uint64(i+2), v)
			}
			r := d.Next()
			if r == nil {
				t.Fatal("dispatcher drained unexpectedly")
			}
			if r.ID == 999 {
				return i + 2
			}
		}
		t.Fatal("victim never served")
		return 0
	}
	withER := run(true)
	withoutER := run(false)
	if withoutER <= attackers {
		t.Fatalf("setup broken: victim served at %d without ER", withoutER)
	}
	if withER >= withoutER/2 {
		t.Errorf("ER should serve the blocked request much sooner: with=%d without=%d", withER, withoutER)
	}
}

func TestEachVisitsAllQueued(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, Window: 5})
	add(d, 1, 10)
	d.Next()
	add(d, 2, 1) // preempts -> q
	add(d, 3, 50)
	add(d, 4, 60)
	seen := map[uint64]bool{}
	d.Each(func(r *Request) { seen[r.ID] = true })
	if len(seen) != 3 || !seen[2] || !seen[3] || !seen[4] {
		t.Errorf("Each visited %v", seen)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
}

func TestNextOnEmpty(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, Window: 5})
	if d.Next() != nil {
		t.Error("empty dispatcher should return nil")
	}
	add(d, 1, 10)
	if d.Next().ID != 1 {
		t.Error("want request 1")
	}
	if d.Next() != nil {
		t.Error("drained dispatcher should return nil")
	}
}

func TestDispatcherValidation(t *testing.T) {
	if _, err := NewDispatcher(DispatcherConfig{Mode: PreemptMode(9)}); err == nil {
		t.Error("expected error for unknown mode")
	}
	if _, err := NewDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, ER: true, Expansion: 0.5}); err == nil {
		t.Error("expected error for expansion <= 1")
	}
	d, err := NewDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, ER: true})
	if err != nil || d.cfg.Expansion != 2 {
		t.Errorf("default expansion = %v, err %v", d.cfg.Expansion, err)
	}
}

func TestPreemptModeString(t *testing.T) {
	for m, want := range map[PreemptMode]string{
		NonPreemptive:           "non-preemptive",
		FullyPreemptive:         "fully-preemptive",
		ConditionallyPreemptive: "conditionally-preemptive",
		PreemptMode(42):         "PreemptMode(42)",
	} {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(m), got, want)
		}
	}
}

func TestSchedulerEndToEnd(t *testing.T) {
	s := MustScheduler("test", EncapsulatorConfig{Levels: 8}, DispatcherConfig{Mode: FullyPreemptive}, 0)
	s.Add(&Request{ID: 1, Priorities: []int{5}}, 0, 0)
	s.Add(&Request{ID: 2, Priorities: []int{1}}, 0, 0)
	s.Add(&Request{ID: 3, Priorities: []int{3}}, 0, 0)
	want := []uint64{2, 3, 1}
	for _, id := range want {
		if r := s.Next(0, 0); r == nil || r.ID != id {
			t.Fatalf("want %d, got %v", id, r)
		}
	}
	if s.Name() != "test" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestSchedulerWindowFraction(t *testing.T) {
	s := MustScheduler("w", EncapsulatorConfig{Levels: 100},
		DispatcherConfig{Mode: ConditionallyPreemptive}, 0.1)
	if got := s.Dispatcher().Window(); got != 10 {
		t.Errorf("window = %d, want 10 (10%% of 100)", got)
	}
	if _, err := NewScheduler("bad", EncapsulatorConfig{Levels: 8},
		DispatcherConfig{Mode: FullyPreemptive}, 1.5); err == nil {
		t.Error("expected error for fraction > 1")
	}
}
