package core

import (
	"fmt"

	"sfcsched/internal/sfc"
)

// SingleStage is the predecessor design of the paper's reference [2]
// (Aref, El-Bassyouni, Kamel & Mokbel, IDEAS 2002): ONE space-filling
// curve over the full (D+2)-dimensional space — priorities, deadline and
// cylinder as equal axes of a single grid — instead of three cascaded
// stages. It exists here as the baseline that motivates the cascade: a
// single curve cannot give the deadline axis EDF semantics or the
// cylinder axis scan semantics, so it trades every goal against every
// other at the curve's mercy.
type SingleStage struct {
	curve  sfc.Curve
	levels int
	// Deadline axis bounds, absolute µs (0 disables the axis).
	deadlineHorizon int64
	// Cylinder axis size (0 disables the axis).
	cylinders int
	dims      int // priority dimensions = curve dims - extra axes
}

// NewSingleStage builds the single-curve scheduler core. The curve must
// have priorityDims (+1 per enabled extra axis) dimensions: priorities
// occupy the low axes, the deadline the next, the cylinder the last.
func NewSingleStage(curveName string, priorityDims, levels int, deadlineHorizon int64, cylinders int) (*SingleStage, error) {
	if priorityDims < 0 || levels < 1 {
		return nil, fmt.Errorf("core: invalid priority shape %d/%d", priorityDims, levels)
	}
	total := priorityDims
	if deadlineHorizon > 0 {
		total++
	}
	if cylinders > 0 {
		total++
	}
	if total == 0 {
		return nil, fmt.Errorf("core: single-stage scheduler needs at least one axis")
	}
	side := uint32(levels)
	if side < 64 && (deadlineHorizon > 0 || cylinders > 0) {
		// The deadline and cylinder axes need more resolution than a
		// handful of priority levels; a uniform grid must host the finest.
		side = 64
	}
	curve, err := sfc.New(curveName, total, side)
	if err != nil {
		return nil, err
	}
	return &SingleStage{
		curve:           curve,
		levels:          levels,
		deadlineHorizon: deadlineHorizon,
		cylinders:       cylinders,
		dims:            priorityDims,
	}, nil
}

// MaxValue returns the exclusive bound on Value results.
func (s *SingleStage) MaxValue() uint64 { return s.curve.MaxIndex() }

// Value maps the request onto the single curve.
func (s *SingleStage) Value(r *Request, now int64, head int) uint64 {
	p := make(sfc.Point, s.curve.Dims())
	side := uint64(s.curve.Side())
	axis := 0
	for ; axis < s.dims; axis++ {
		l := 0
		if axis < len(r.Priorities) {
			l = clampLevel(r.Priorities[axis], s.levels)
		}
		p[axis] = uint32(uint64(l) * side / uint64(s.levels))
	}
	if s.deadlineHorizon > 0 {
		d := r.Deadline
		if d == 0 || d > s.deadlineHorizon {
			d = s.deadlineHorizon
		}
		if d < 0 {
			d = 0
		}
		p[axis] = uint32(scale(uint64(d), uint64(s.deadlineHorizon)+1, side))
		axis++
	}
	if s.cylinders > 0 {
		cyl := r.Cylinder
		if cyl < 0 {
			cyl = 0
		}
		if cyl >= s.cylinders {
			cyl = s.cylinders - 1
		}
		ahead := uint64((cyl - head + s.cylinders) % s.cylinders)
		p[axis] = uint32(ahead * side / uint64(s.cylinders))
	}
	return s.curve.Index(p)
}

// NewSingleStageScheduler wraps the single-stage core in a FuncScheduler.
func NewSingleStageScheduler(name, curveName string, priorityDims, levels int, deadlineHorizon int64, cylinders int, dcfg DispatcherConfig) (*FuncScheduler, error) {
	ss, err := NewSingleStage(curveName, priorityDims, levels, deadlineHorizon, cylinders)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = "single-" + curveName
	}
	return NewFuncScheduler(name, ss.Value, dcfg)
}
