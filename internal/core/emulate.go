package core

import (
	"fmt"
	"math"
)

// ValueFunc computes a characterization value for a request: the paper's
// §4.2 observation that, with the SFC stages bypassed, the Cascaded-SFC
// machinery realizes "any one-dimensional disk scheduler" by choosing the
// insertion criterion. Lower values dispatch earlier.
type ValueFunc func(r *Request, now int64, head int) uint64

// FuncScheduler couples an arbitrary ValueFunc with a Dispatcher,
// providing the same interface as the full Scheduler.
type FuncScheduler struct {
	fn   ValueFunc
	disp *Dispatcher
	name string
}

// NewFuncScheduler builds a scheduler around fn.
func NewFuncScheduler(name string, fn ValueFunc, dcfg DispatcherConfig) (*FuncScheduler, error) {
	if fn == nil {
		return nil, fmt.Errorf("core: NewFuncScheduler needs a value function")
	}
	disp, err := NewDispatcher(dcfg)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = "func-scheduler"
	}
	return &FuncScheduler{fn: fn, disp: disp, name: name}, nil
}

// MustFuncScheduler is NewFuncScheduler for static configurations.
func MustFuncScheduler(name string, fn ValueFunc, dcfg DispatcherConfig) *FuncScheduler {
	s, err := NewFuncScheduler(name, fn, dcfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements the scheduler contract.
func (s *FuncScheduler) Name() string { return s.name }

// Add implements the scheduler contract.
func (s *FuncScheduler) Add(r *Request, now int64, head int) {
	s.disp.Add(r, s.fn(r, now, head))
}

// Next implements the scheduler contract.
func (s *FuncScheduler) Next(now int64, head int) *Request { return s.disp.Next() }

// Len implements the scheduler contract.
func (s *FuncScheduler) Len() int { return s.disp.Len() }

// Each implements the scheduler contract.
func (s *FuncScheduler) Each(visit func(*Request)) { s.disp.Each(visit) }

// Dispatcher exposes the queue machinery.
func (s *FuncScheduler) Dispatcher() *Dispatcher { return s.disp }

// The paper's §4.2 emulation presets. Each returns a FuncScheduler whose
// dispatch order reproduces the named classic (values computed at
// insertion, zero window, fully preemptive).

// EmulateFCFS orders by arrival sequence.
func EmulateFCFS() *FuncScheduler {
	var seq uint64
	return MustFuncScheduler("fcfs(emulated)",
		func(r *Request, now int64, head int) uint64 {
			seq++
			return seq
		},
		DispatcherConfig{Mode: FullyPreemptive})
}

// EmulateEDF orders by absolute deadline; requests without one go last.
func EmulateEDF() *FuncScheduler {
	return MustFuncScheduler("edf(emulated)",
		func(r *Request, now int64, head int) uint64 {
			if r.Deadline == 0 {
				return math.MaxUint64
			}
			return uint64(r.Deadline)
		},
		DispatcherConfig{Mode: FullyPreemptive})
}

// EmulateSSTF orders by seek distance from the head position at insertion.
// True SSTF re-evaluates at every dispatch; the emulation freezes the
// insertion-time distance, which the paper accepts as the cost of the
// unified framework.
func EmulateSSTF() *FuncScheduler {
	return MustFuncScheduler("sstf(emulated)",
		func(r *Request, now int64, head int) uint64 {
			d := r.Cylinder - head
			if d < 0 {
				d = -d
			}
			return uint64(d)
		},
		DispatcherConfig{Mode: FullyPreemptive})
}

// EmulateCSCAN orders by cyclic distance ahead of the head on the absolute
// sweep timeline (one pure scan, like the SFC3 stage at R = 1).
func EmulateCSCAN(cylinders int) *FuncScheduler {
	if cylinders < 1 {
		cylinders = 1
	}
	var progress uint64
	lastHead := 0
	return MustFuncScheduler("cscan(emulated)",
		func(r *Request, now int64, head int) uint64 {
			if head < 0 {
				head = 0
			}
			if head >= cylinders {
				head = cylinders - 1
			}
			progress += uint64((head - lastHead + cylinders) % cylinders)
			lastHead = head
			cyl := r.Cylinder
			if cyl < 0 {
				cyl = 0
			}
			if cyl >= cylinders {
				cyl = cylinders - 1
			}
			return progress + uint64((cyl-head+cylinders)%cylinders)
		},
		DispatcherConfig{Mode: FullyPreemptive})
}

// EmulateMultiQueue orders by the first priority level, FIFO within a
// level (the multi-queue scheduler with FIFO instead of scan inside each
// queue).
func EmulateMultiQueue(levels int) *FuncScheduler {
	if levels < 1 {
		levels = 1
	}
	var seq uint64
	return MustFuncScheduler("multi-queue(emulated)",
		func(r *Request, now int64, head int) uint64 {
			seq++
			l := 0
			if len(r.Priorities) > 0 {
				l = clampLevel(r.Priorities[0], levels)
			}
			return uint64(l)<<40 | seq
		},
		DispatcherConfig{Mode: FullyPreemptive})
}
