package core

import (
	"testing"
)

func TestSingleStageValidation(t *testing.T) {
	if _, err := NewSingleStage("hilbert", -1, 8, 0, 0); err == nil {
		t.Error("expected error for negative dims")
	}
	if _, err := NewSingleStage("hilbert", 0, 8, 0, 0); err == nil {
		t.Error("expected error for zero axes")
	}
	if _, err := NewSingleStage("nope", 2, 8, 0, 0); err == nil {
		t.Error("expected error for unknown curve")
	}
}

func TestSingleStageAxisLayout(t *testing.T) {
	ss, err := NewSingleStage("sweep", 2, 8, 1_000_000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ss.curve.Dims() != 4 {
		t.Fatalf("want 4 axes (2 priorities + deadline + cylinder), got %d", ss.curve.Dims())
	}
	// Sweep is lexicographic with the LAST axis most significant, which
	// for this layout is the cylinder: two requests differing only in
	// cylinder order by scan position.
	near := ss.Value(&Request{Priorities: []int{7, 7}, Deadline: 900_000, Cylinder: 10}, 0, 0)
	far := ss.Value(&Request{Priorities: []int{0, 0}, Deadline: 100_000, Cylinder: 990}, 0, 0)
	if near >= far {
		t.Errorf("sweep single-stage should be cylinder-major: %d >= %d", near, far)
	}
	if near >= ss.MaxValue() || far >= ss.MaxValue() {
		t.Error("values exceed MaxValue")
	}
}

func TestSingleStageDeadlineClamping(t *testing.T) {
	ss, err := NewSingleStage("hilbert", 1, 8, 500_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	past := ss.Value(&Request{Priorities: []int{3}, Deadline: -5}, 0, 0)
	zero := ss.Value(&Request{Priorities: []int{3}, Deadline: 1}, 0, 0)
	if past != zero {
		t.Error("negative deadline should clamp to the axis origin")
	}
	none := ss.Value(&Request{Priorities: []int{3}}, 0, 0)
	horizon := ss.Value(&Request{Priorities: []int{3}, Deadline: 500_000}, 0, 0)
	if none != horizon {
		t.Error("missing deadline should map to the horizon")
	}
}

func TestSingleStageSchedulerRuns(t *testing.T) {
	s, err := NewSingleStageScheduler("", "hilbert", 2, 8, 1_000_000, 3832,
		DispatcherConfig{Mode: FullyPreemptive})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "single-hilbert" {
		t.Errorf("name = %q", s.Name())
	}
	for i := uint64(1); i <= 20; i++ {
		s.Add(&Request{ID: i, Priorities: []int{int(i % 8), int(i % 3)},
			Deadline: int64(i) * 10_000, Cylinder: int(i * 100)}, 0, 0)
	}
	seen := 0
	for r := s.Next(0, 0); r != nil; r = s.Next(0, 0) {
		seen++
	}
	if seen != 20 {
		t.Errorf("dispatched %d of 20", seen)
	}
}

// TestCascadeBeatsSingleStage is the motivating comparison: under the same
// workload, the cascaded design meets more deadlines than the one-curve
// design at comparable priority fidelity, because only the cascade can
// give the deadline axis EDF-like semantics.
func TestCascadeBeatsSingleStage(t *testing.T) {
	// Direct value-ordering check on a static queue: the cascade with
	// f -> large orders tight deadlines first, while a hilbert single
	// stage interleaves them at the curve's mercy.
	cascade := MustEncapsulator(EncapsulatorConfig{
		Levels: 8, UseDeadline: true, F: 8, DeadlineHorizon: 1_000_000, DeadlineSpan: 700_000,
	})
	ss, err := NewSingleStage("hilbert", 1, 8, 1_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	violationsCascade, violationsSingle := 0, 0
	for lvl := 0; lvl < 8; lvl++ {
		for d1 := int64(20_000); d1 < 1_000_000; d1 += 90_000 {
			for d2 := d1 + 30_000; d2 < 1_000_000; d2 += 90_000 {
				urgent := &Request{Priorities: []int{lvl}, Deadline: d1}
				relaxed := &Request{Priorities: []int{lvl}, Deadline: d2}
				if cascade.Value(urgent, 0, 0) > cascade.Value(relaxed, 0, 0) {
					violationsCascade++
				}
				if ss.Value(urgent, 0, 0) > ss.Value(relaxed, 0, 0) {
					violationsSingle++
				}
			}
		}
	}
	if violationsCascade != 0 {
		t.Errorf("cascade inverted %d same-priority deadline pairs", violationsCascade)
	}
	if violationsSingle == 0 {
		t.Error("hilbert single stage unexpectedly deadline-perfect; the cascade would be unmotivated")
	}
}
