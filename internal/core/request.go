// Package core implements the Cascaded-SFC multimedia disk scheduler of
// Mokbel, Aref, Elbassioni and Kamel (ICDE 2004).
//
// A disk request carrying D priority-like parameters, a real-time deadline
// and a target cylinder is a point in a (D+2)-dimensional space. The
// Encapsulator collapses that point into one scalar characterization value
// v_c through up to three cascaded space-filling-curve stages; the
// Dispatcher serves requests in increasing v_c with a tunable preemption
// policy. Lower v_c means higher service priority.
package core

// Time values throughout the scheduler are absolute simulation clock
// readings in microseconds.

// Request is a multimedia disk request with multiple QoS parameters.
type Request struct {
	// ID identifies the request; the simulator assigns them densely.
	ID uint64
	// Priorities holds the D priority-like QoS levels. Level 0 is the
	// highest priority in every dimension.
	Priorities []int
	// Deadline is the absolute time by which the request must be serviced;
	// 0 means no deadline.
	Deadline int64
	// Cylinder is the target disk cylinder.
	Cylinder int
	// Size is the transfer size in bytes.
	Size int64
	// Arrival is the absolute arrival time.
	Arrival int64
	// Write marks write requests (used by the RAID-5 and §6 workloads).
	Write bool
	// Value is an optional application-assigned worth, used by value-based
	// baselines (BUCKET, SSEDV). Higher is worth more.
	Value int
	// Tenant identifies the issuing tenant in multi-tenant cluster runs;
	// single-disk and array workloads leave it 0.
	Tenant int
	// Class is the tenant's SLO class, 0 being the most stringent. The
	// cluster layer accounts admission drops, deadline losses and latency
	// per class.
	Class int
}

// HigherPriorityIn reports whether r has strictly higher priority than s in
// dimension dim (a lower level number).
func (r *Request) HigherPriorityIn(s *Request, dim int) bool {
	return r.Priorities[dim] < s.Priorities[dim]
}

// Slack returns time remaining until the deadline at time now; requests
// without a deadline report a very large slack.
func (r *Request) Slack(now int64) int64 {
	if r.Deadline == 0 {
		return 1 << 62
	}
	return r.Deadline - now
}
