package core

import (
	"math"
	"testing"

	"sfcsched/internal/sfc"
)

func req(priorities []int, deadline int64, cyl int) *Request {
	return &Request{Priorities: priorities, Deadline: deadline, Cylinder: cyl}
}

func TestStage1PassthroughWithoutCurve(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{Levels: 8})
	for l := 0; l < 8; l++ {
		if got := e.Value(req([]int{l}, 0, 0), 0, 0); got != uint64(l) {
			t.Errorf("level %d -> %d", l, got)
		}
	}
	if e.MaxValue() != 8 {
		t.Errorf("MaxValue = %d, want 8", e.MaxValue())
	}
}

func TestStage1ClampsLevels(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{Levels: 8})
	if got := e.Value(req([]int{99}, 0, 0), 0, 0); got != 7 {
		t.Errorf("overflow level -> %d, want 7", got)
	}
	if got := e.Value(req([]int{-3}, 0, 0), 0, 0); got != 0 {
		t.Errorf("negative level -> %d, want 0", got)
	}
	if got := e.Value(req(nil, 0, 0), 0, 0); got != 0 {
		t.Errorf("missing priorities -> %d, want 0", got)
	}
}

func TestStage1CurveBounds(t *testing.T) {
	c := sfc.MustNew("hilbert", 3, 16)
	e := MustEncapsulator(EncapsulatorConfig{Curve1: c, Levels: 16})
	for _, p := range [][]int{{0, 0, 0}, {15, 15, 15}, {7, 3, 12}} {
		v := e.Value(req(p, 0, 0), 0, 0)
		if v >= e.MaxValue() {
			t.Errorf("value %d >= MaxValue %d for %v", v, e.MaxValue(), p)
		}
	}
	if e.MaxValue() != c.MaxIndex() {
		t.Errorf("MaxValue = %d, want curve MaxIndex %d", e.MaxValue(), c.MaxIndex())
	}
}

func TestStage1SweepIsLexicographic(t *testing.T) {
	c := sfc.MustNew("sweep", 2, 16)
	e := MustEncapsulator(EncapsulatorConfig{Curve1: c, Levels: 16})
	// Dimension 1 is most significant: any difference there dominates.
	lo := e.Value(req([]int{15, 0}, 0, 0), 0, 0)
	hi := e.Value(req([]int{0, 1}, 0, 0), 0, 0)
	if lo >= hi {
		t.Errorf("sweep not lexicographic: %d >= %d", lo, hi)
	}
}

func TestStage2PriorityMajorAtFZero(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 8, UseDeadline: true, F: 0, Tie: TieDeadline,
		DeadlineHorizon: 1_000_000,
	})
	// Priority dominates regardless of deadline.
	urgent := e.Value(req([]int{3}, 1_000, 0), 0, 0)    // low priority, tight deadline
	relaxed := e.Value(req([]int{2}, 900_000, 0), 0, 0) // higher priority, slack deadline
	if relaxed >= urgent {
		t.Errorf("f=0 should order by priority: %d >= %d", relaxed, urgent)
	}
	// Equal priority: earlier deadline first.
	a := e.Value(req([]int{3}, 1_000, 0), 0, 0)
	b := e.Value(req([]int{3}, 900_000, 0), 0, 0)
	if a >= b {
		t.Errorf("tie should break by deadline: %d >= %d", a, b)
	}
}

func TestStage2DeadlineMajorAtFInf(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 8, UseDeadline: true, F: math.Inf(1), Tie: TiePriority,
		DeadlineHorizon: 1_000_000,
	})
	urgent := e.Value(req([]int{7}, 10_000, 0), 0, 0)
	relaxed := e.Value(req([]int{0}, 900_000, 0), 0, 0)
	if urgent >= relaxed {
		t.Errorf("f=inf should order by deadline: %d >= %d", urgent, relaxed)
	}
	// Equal slack: higher priority first.
	a := e.Value(req([]int{1}, 500_000, 0), 0, 0)
	b := e.Value(req([]int{6}, 500_000, 0), 0, 0)
	if a >= b {
		t.Errorf("tie should break by priority: %d >= %d", a, b)
	}
}

func TestStage2BalanceMonotoneInF(t *testing.T) {
	// As f grows, a tight-deadline low-priority request should overtake a
	// slack-deadline high-priority one.
	tight := req([]int{6}, 50_000, 0)
	slack := req([]int{1}, 900_000, 0)
	rank := func(f float64) bool { // true when tight wins
		e := MustEncapsulator(EncapsulatorConfig{
			Levels: 8, UseDeadline: true, F: f, DeadlineHorizon: 1_000_000,
		})
		return e.Value(tight, 0, 0) < e.Value(slack, 0, 0)
	}
	if rank(0.01) {
		t.Error("at tiny f, priority should dominate")
	}
	if !rank(100) {
		t.Error("at large f, deadline should dominate")
	}
}

func TestStage2AbsoluteDeadlineIgnoresArrivalSkew(t *testing.T) {
	// In the default absolute mode, the value of a request depends only on
	// its deadline, not on when it was enqueued — two computations of the
	// same request at different times agree, so no arrival-order bias.
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 1, UseDeadline: true, F: 1, DeadlineHorizon: 1_000_000,
	})
	r := req([]int{0}, 600_000, 0)
	if e.Value(r, 0, 0) != e.Value(r, 300_000, 0) {
		t.Error("absolute mode should be time-invariant")
	}
	// An earlier absolute deadline always wins, whatever the arrival gap.
	old := e.Value(req([]int{0}, 600_000, 0), 0, 0)
	fresh := e.Value(req([]int{0}, 700_000, 0), 300_000, 0)
	if old >= fresh {
		t.Errorf("earlier deadline should order first: %d >= %d", old, fresh)
	}
}

func TestStage2DeadlineClamping(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 1, UseDeadline: true, F: 1, DeadlineHorizon: 100_000,
	})
	distant := e.Value(req([]int{0}, 1<<40, 0), 0, 0)   // beyond horizon
	horizon := e.Value(req([]int{0}, 100_000, 0), 0, 0) // exactly horizon
	none := e.Value(req([]int{0}, 0, 0), 0, 0)          // no deadline
	if distant != horizon {
		t.Error("deadline beyond horizon should clamp")
	}
	if none != horizon {
		t.Error("missing deadline should map to the least urgent cell")
	}
}

func TestStage2SlackMode(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 1, UseDeadline: true, F: 1, DeadlineHorizon: 100_000,
		DeadlineSlack: true,
	})
	// In slack mode the value shrinks as the deadline approaches.
	r := req([]int{0}, 90_000, 0)
	early := e.Value(r, 0, 0)
	late := e.Value(r, 80_000, 0)
	if late >= early {
		t.Errorf("slack mode should grow more urgent over time: %d >= %d", late, early)
	}
	// Expired deadlines clamp to zero slack.
	if got := e.Value(req([]int{0}, 1_000, 0), 50_000, 0); got != e.Value(req([]int{0}, 50_000, 0), 50_000, 0) {
		t.Errorf("expired deadline should clamp to zero slack, got %d", got)
	}
}

func TestStage2CurveSweepAxes(t *testing.T) {
	// Sweep-X (priority on X, deadline on Y) orders by deadline;
	// Sweep-Y (priority on Y) orders by priority (multi-queue).
	sweep := sfc.MustNew("sweep", 2, 64)
	base := EncapsulatorConfig{
		Levels: 8, UseDeadline: true, Curve2: sweep, DeadlineHorizon: 1_000_000,
	}
	x := MustEncapsulator(base)
	urgentLow := req([]int{7}, 50_000, 0)
	slackHigh := req([]int{0}, 900_000, 0)
	if x.Value(urgentLow, 0, 0) >= x.Value(slackHigh, 0, 0) {
		t.Error("Sweep-X should behave like EDF")
	}
	baseY := base
	baseY.Curve2PriorityOnY = true
	y := MustEncapsulator(baseY)
	if y.Value(slackHigh, 0, 0) >= y.Value(urgentLow, 0, 0) {
		t.Error("Sweep-Y should behave like multi-queue (priority major)")
	}
}

func TestStage3PureScanAtR1(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 8, UseCylinder: true, R: 1, Cylinders: 1000,
	})
	head := 300
	// Cylinders ahead of the head order before cylinders behind it,
	// regardless of priority.
	ahead := e.Value(req([]int{7}, 0, 310), 0, head)
	behind := e.Value(req([]int{0}, 0, 290), 0, head)
	if ahead >= behind {
		t.Errorf("R=1 should order by scan position: %d >= %d", ahead, behind)
	}
	// Same cylinder: higher priority first.
	hp := e.Value(req([]int{0}, 0, 500), 0, head)
	lp := e.Value(req([]int{7}, 0, 500), 0, head)
	if hp >= lp {
		t.Errorf("same-cylinder tie should break by priority: %d >= %d", hp, lp)
	}
}

func TestStage3PriorityMajorAtLargeR(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 8, UseCylinder: true, R: stage3Res, Cylinders: 1000,
	})
	hpFar := e.Value(req([]int{0}, 0, 999), 0, 0)
	lpNear := e.Value(req([]int{7}, 0, 1), 0, 0)
	if hpFar >= lpNear {
		t.Errorf("large R should order by priority: %d >= %d", hpFar, lpNear)
	}
}

func TestStage3PartitionLayout(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 8, UseCylinder: true, R: 4, Cylinders: 100,
	})
	// All partition-0 values precede all partition-1 values.
	p0max := e.Value(req([]int{1}, 0, 99), 0, 0) // highest cylinder, partition 0
	p1min := e.Value(req([]int{2}, 0, 0), 0, 0)  // lowest cylinder, partition 1
	if p0max >= p1min {
		t.Errorf("partition order violated: %d >= %d", p0max, p1min)
	}
	if e.MaxValue() != uint64(100)*e.ps*4 {
		t.Errorf("MaxValue = %d", e.MaxValue())
	}
}

func TestStage3CylinderDistanceIsCyclic(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Levels: 1, UseCylinder: true, R: 1, Cylinders: 1000,
	})
	head := 900
	wrap := e.Value(req([]int{0}, 0, 100), 0, head)   // 200 ahead after wrap
	noWrap := e.Value(req([]int{0}, 0, 950), 0, head) // 50 ahead
	if noWrap >= wrap {
		t.Errorf("cyclic distance broken: %d >= %d", noWrap, wrap)
	}
}

func TestFullCascadeInBounds(t *testing.T) {
	e := MustEncapsulator(EncapsulatorConfig{
		Curve1: sfc.MustNew("hilbert", 3, 16), Levels: 16,
		UseDeadline: true, F: 1, DeadlineHorizon: 700_000,
		UseCylinder: true, R: 3, Cylinders: 3832,
	})
	reqs := []*Request{
		req([]int{0, 0, 0}, 100_000, 0),
		req([]int{15, 15, 15}, 700_000, 3831),
		req([]int{8, 2, 11}, 350_000, 1916),
	}
	for _, r := range reqs {
		v := e.Value(r, 0, 1000)
		if v >= e.MaxValue() {
			t.Errorf("v_c %d >= MaxValue %d", v, e.MaxValue())
		}
	}
}

func TestScaleOrderPreserving(t *testing.T) {
	prev := uint64(0)
	for v := uint64(0); v < 1000; v++ {
		s := scale(v, 1000, 64)
		if s < prev || s >= 64 {
			t.Fatalf("scale(%d) = %d (prev %d)", v, s, prev)
		}
		prev = s
	}
	if scale(999, 1000, 64) != 63 {
		t.Errorf("top of range should map to 63, got %d", scale(999, 1000, 64))
	}
	if scale(5, 0, 64) != 0 {
		t.Error("empty source range should map to 0")
	}
}

func TestEncapsulatorValidation(t *testing.T) {
	bad := []EncapsulatorConfig{
		{},
		{Levels: 32, Curve1: sfc.MustNew("sweep", 2, 16)},
		{Levels: 8, UseDeadline: true},
		{Levels: 8, UseDeadline: true, DeadlineHorizon: 1000, F: -1},
		{Levels: 8, UseDeadline: true, DeadlineHorizon: 1000, Curve2: sfc.MustNew("sweep", 3, 8)},
		{Levels: 8, UseCylinder: true, R: 0, Cylinders: 100},
		{Levels: 8, UseCylinder: true, R: 3},
	}
	for i, cfg := range bad {
		if _, err := NewEncapsulator(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}
