package core

import (
	"testing"
)

// The hot path of every dispatch cycle — value computation, enqueue,
// dequeue — must not touch the garbage collector in steady state. These
// gates pin that property so a regression shows up as a test failure, not
// as a benchmark drift someone has to notice.

// skipUnderRace skips allocation gates under the race detector, whose
// instrumentation forces sync.Pool to allocate on every Get.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
}

func TestValueAtNoAllocs(t *testing.T) {
	skipUnderRace(t)
	e := MustEncapsulator(shardedTestConfig())
	r := &Request{Priorities: []int{3, 1, 6}, Deadline: 600_000, Cylinder: 1200}
	e.ValueAt(r, 0, 0, 0) // warm the scratch pool
	allocs := testing.AllocsPerRun(1000, func() {
		e.ValueAt(r, 1, 7, 3)
	})
	if allocs != 0 {
		t.Errorf("ValueAt allocates %v per op", allocs)
	}
}

func TestDispatcherSteadyStateNoAllocs(t *testing.T) {
	skipUnderRace(t)
	d := MustDispatcher(DispatcherConfig{Mode: ConditionallyPreemptive, Window: 1000, SP: true})
	reqs := make([]*Request, 64)
	for i := range reqs {
		reqs[i] = &Request{ID: uint64(i)}
	}
	i := 0
	for ; i < 1024; i++ {
		d.Add(reqs[i%64], uint64(i*2654435761)%(1<<20))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		d.Add(reqs[i%64], uint64(i*2654435761)%(1<<20))
		d.Next()
		i++
	})
	if allocs != 0 {
		t.Errorf("Add+Next allocates %v per op in steady state", allocs)
	}
}

func TestSchedulerAddNoAllocs(t *testing.T) {
	skipUnderRace(t)
	s := MustScheduler("x", shardedTestConfig(), DispatcherConfig{Mode: FullyPreemptive}, 0)
	reqs := make([]*Request, 64)
	for i := range reqs {
		reqs[i] = &Request{ID: uint64(i), Priorities: []int{i % 8, (i * 3) % 8, 0}, Deadline: 500_000, Cylinder: (i * 37) % 3832}
	}
	// Grow the heap once, then drain: capacity stays as a freelist.
	for i := 0; i < 1024; i++ {
		s.Add(reqs[i%64], int64(i), 0)
	}
	for s.Next(0, 0) != nil {
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		s.Add(reqs[i%64], int64(i), i%3832)
		s.Next(int64(i), i%3832)
		i++
	})
	if allocs != 0 {
		t.Errorf("Scheduler Add+Next allocates %v per op in steady state", allocs)
	}
}

func TestShardedAddNextNoAllocs(t *testing.T) {
	skipUnderRace(t)
	ss := MustShardedScheduler("s", shardedTestConfig(), 4)
	reqs := make([]*Request, 64)
	for i := range reqs {
		reqs[i] = &Request{ID: uint64(i), Priorities: []int{i % 8, 0, 0}, Deadline: 500_000, Cylinder: (i * 37) % 3832}
	}
	for i := 0; i < 1024; i++ {
		ss.Add(reqs[i%64], int64(i), 0)
	}
	for ss.Next(0, 0) != nil {
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		// Vary the head so the sweep-timeline CAS (and its saturation
		// guard) runs inside the measured window, not just the fast path.
		ss.Add(reqs[i%64], int64(i), i%3832)
		ss.Next(int64(i), i%3832)
		i++
	})
	if allocs != 0 {
		t.Errorf("sharded Add+Next allocates %v per op in steady state", allocs)
	}
}

// TestInstrumentedPathsNoAllocs pins that the observability layer itself is
// allocation-free on the hot path: a per-instance Metrics sink (counters,
// hi-water gauge, dispatch-wait histogram all active) must leave the
// Add/Next gates at zero, and the counters must actually have recorded the
// traffic — instrumentation that silently no-ops would pass the gate
// vacuously.
func TestInstrumentedPathsNoAllocs(t *testing.T) {
	skipUnderRace(t)
	s := MustScheduler("x", shardedTestConfig(), DispatcherConfig{Mode: ConditionallyPreemptive, Window: 1 << 16, SP: true, ER: true}, 0)
	m := &Metrics{}
	s.SetMetrics(m)
	reqs := make([]*Request, 64)
	for i := range reqs {
		reqs[i] = &Request{ID: uint64(i), Priorities: []int{i % 8, (i * 3) % 8, 0}, Deadline: 500_000, Cylinder: (i * 37) % 3832}
	}
	for i := 0; i < 1024; i++ {
		s.Add(reqs[i%64], int64(i), 0)
	}
	for s.Next(0, 0) != nil {
	}
	before := m.Adds.Load()
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		s.Add(reqs[i%64], int64(i), i%3832)
		s.Next(int64(i), i%3832)
		i++
	})
	if allocs != 0 {
		t.Errorf("instrumented Add+Next allocates %v per op in steady state", allocs)
	}
	if m.Adds.Load() == before || m.Dispatches.Load() == 0 || m.DispatchWait.Count() == 0 {
		t.Errorf("instrumentation recorded nothing: adds=%d dispatches=%d waits=%d",
			m.Adds.Load(), m.Dispatches.Load(), m.DispatchWait.Count())
	}
}

func TestAddBatchSteadyStateNoAllocs(t *testing.T) {
	skipUnderRace(t)
	s := MustScheduler("x", shardedTestConfig(), DispatcherConfig{Mode: FullyPreemptive}, 0)
	batch := make([]*Request, 128)
	for i := range batch {
		batch[i] = &Request{ID: uint64(i), Priorities: []int{i % 8, 0, 0}, Deadline: 500_000, Cylinder: (i * 37) % 3832}
	}
	// One warm-up cycle sizes vbuf and the heap slice.
	s.AddBatch(batch, 0, 0)
	for s.Next(0, 0) != nil {
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.AddBatch(batch, 1, 7)
		for s.Next(1, 7) != nil {
		}
	})
	if allocs != 0 {
		t.Errorf("AddBatch cycle allocates %v per batch in steady state", allocs)
	}
}
