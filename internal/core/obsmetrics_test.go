package core

import (
	"io"
	"strings"
	"sync"
	"testing"

	"sfcsched/internal/obs"
)

// TestDispatcherMetricsMirrorStats drives a windowed dispatcher through
// preemptions, promotions, swaps and ER resets and checks the atomic
// counters agree with the (single-threaded) DispatchStats.
func TestDispatcherMetricsMirrorStats(t *testing.T) {
	d := MustDispatcher(DispatcherConfig{
		Mode: ConditionallyPreemptive, Window: 10, SP: true, ER: true, Expansion: 2,
	})
	m := &Metrics{}
	d.SetMetrics(m)

	adds := uint64(0)
	add := func(r *Request, v uint64) {
		d.Add(r, v)
		adds++
	}
	// Seed a batch and dispatch one to set the in-service value (100), then
	// force one preemption (50 clears the window against 100), one waiting
	// arrival (95, inside the expanded window against 100 but clearing it
	// against the eventual next request 200 — an SP promotion), and finally
	// a non-preempting dispatch of 200 that resets the expanded window.
	add(&Request{ID: 1}, 100)
	add(&Request{ID: 2}, 200)
	d.Next()                 // swap; serves 100
	add(&Request{ID: 3}, 50) // 50 < 100-10: preempts, window 10 -> 20
	add(&Request{ID: 4}, 95) // 95 >= 100-20: waits
	d.Next()                 // serves 50 (preempter: window stays expanded)
	d.Next()                 // SP promotes 95 (window 20 -> 40), serves it
	for d.Next() != nil {    // serves 200: non-preempter, window resets
	}

	st := d.Stats()
	if got := m.Preemptions.Load(); got != st.Preemptions {
		t.Errorf("Preemptions counter = %d, stats = %d", got, st.Preemptions)
	}
	if got := m.Promotions.Load(); got != st.Promotions {
		t.Errorf("Promotions counter = %d, stats = %d", got, st.Promotions)
	}
	if got := m.Swaps.Load(); got != st.Swaps {
		t.Errorf("Swaps counter = %d, stats = %d", got, st.Swaps)
	}
	if got := m.Adds.Load(); got != adds {
		t.Errorf("Adds counter = %d, want %d", got, adds)
	}
	if st.Preemptions == 0 || st.Promotions == 0 {
		t.Fatalf("scenario must exercise both paths: preemptions=%d promotions=%d",
			st.Preemptions, st.Promotions)
	}
	// Every preemption and promotion expands the ER window.
	if got, want := m.WindowExpansions.Load(), st.Preemptions+st.Promotions; got != want {
		t.Errorf("WindowExpansions = %d, want %d", got, want)
	}
	// The expanded window must have been reset by a non-preempting dispatch.
	if m.WindowResets.Load() == 0 {
		t.Error("WindowResets = 0, want > 0")
	}
	if m.QueueDepthHiWater.Load() < 2 {
		t.Errorf("QueueDepthHiWater = %d, want >= 2", m.QueueDepthHiWater.Load())
	}
}

func TestSchedulerMetrics(t *testing.T) {
	s := MustScheduler("x", shardedTestConfig(), DispatcherConfig{Mode: FullyPreemptive}, 0)
	m := &Metrics{}
	s.SetMetrics(m)
	if s.Metrics() != m || s.Dispatcher().Metrics() != m {
		t.Fatal("SetMetrics must rewire both scheduler and dispatcher")
	}

	for i := 0; i < 10; i++ {
		s.Add(&Request{ID: uint64(i), Priorities: []int{1, 2, 3}, Deadline: 500, Cylinder: i * 100, Arrival: int64(i)}, int64(i), 0)
	}
	n := 0
	for s.Next(100, 500) != nil {
		n++
	}
	if n != 10 {
		t.Fatalf("dispatched %d, want 10", n)
	}
	if got := m.Dispatches.Load(); got != 10 {
		t.Errorf("Dispatches = %d, want 10", got)
	}
	if got := m.DispatchWait.Count(); got != 10 {
		t.Errorf("DispatchWait count = %d, want 10", got)
	}
	// All 10 waits are 100-arrival in [91, 100]: mean must land there too.
	if mean := m.DispatchWait.Mean(); mean < 91 || mean > 100 {
		t.Errorf("DispatchWait mean = %v, want in [91, 100]", mean)
	}
	if m.QueueDepthHiWater.Load() != 10 {
		t.Errorf("QueueDepthHiWater = %d, want 10", m.QueueDepthHiWater.Load())
	}
	// The head moved 0 -> 500, so the sweep gauge must show 500.
	if got := m.SweepProgress.Load(); got != 500 {
		t.Errorf("SweepProgress = %d, want 500", got)
	}
}

func TestShardedSchedulerMetrics(t *testing.T) {
	s := MustShardedScheduler("s", shardedTestConfig(), 4)
	m := &Metrics{}
	s.SetMetrics(m)

	for i := 0; i < 8; i++ {
		s.Add(&Request{ID: uint64(i), Priorities: []int{1, 0, 0}, Deadline: 500, Cylinder: i * 10, Arrival: 0}, 0, 0)
	}
	for s.Next(50, 0) != nil {
	}
	if m.Adds.Load() != 8 || m.Dispatches.Load() != 8 {
		t.Errorf("Adds/Dispatches = %d/%d, want 8/8", m.Adds.Load(), m.Dispatches.Load())
	}
	if m.QueueDepthHiWater.Load() != 8 {
		t.Errorf("QueueDepthHiWater = %d, want 8", m.QueueDepthHiWater.Load())
	}
	if m.DispatchWait.Count() != 8 {
		t.Errorf("DispatchWait count = %d, want 8", m.DispatchWait.Count())
	}
}

// TestMetricsScrapeUnderConcurrentDispatch is the -race gate for the new
// concurrent path: a Prometheus scrape must be able to run while producer
// goroutines Add and a consumer drains, without a data race or a torn read
// crashing the exporter.
func TestMetricsScrapeUnderConcurrentDispatch(t *testing.T) {
	s := MustShardedScheduler("s", shardedTestConfig(), 4)
	m := &Metrics{}
	s.SetMetrics(m)
	reg := obs.NewRegistry()
	m.MustRegister(reg, "race")

	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				s.Add(&Request{
					ID:         uint64(p*perProducer + i),
					Priorities: []int{i % 8, 0, 0},
					Deadline:   500_000,
					Cylinder:   (i * 37) % 3832,
				}, int64(i), i%3832)
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { // scraper
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape failed: %v", err)
				return
			}
		}
	}()
	drained := 0
	for drained < producers*perProducer {
		if s.Next(1000, drained%3832) != nil {
			drained++
		}
	}
	wg.Wait()
	<-done
	if m.Adds.Load() != producers*perProducer || m.Dispatches.Load() != producers*perProducer {
		t.Errorf("adds/dispatches = %d/%d, want %d", m.Adds.Load(), m.Dispatches.Load(), producers*perProducer)
	}
	if s.Len() != 0 || m.QueueDepthHiWater.Load() < 1 {
		t.Errorf("len = %d, hiwater = %d", s.Len(), m.QueueDepthHiWater.Load())
	}
}

// TestMetricsRegister checks the full field set exports cleanly in both
// formats.
func TestMetricsRegister(t *testing.T) {
	reg := obs.NewRegistry()
	m := &Metrics{}
	if err := m.Register(reg, "sfcsched"); err != nil {
		t.Fatal(err)
	}
	// Duplicate prefix must fail, not silently shadow.
	if err := m.Register(reg, "sfcsched"); err == nil {
		t.Error("duplicate registration accepted")
	}
	m.Preemptions.Inc()
	m.DispatchWait.Observe(42)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"sfcsched_preemptions_total 1",
		"sfcsched_dispatch_wait_us_count 1",
		"sfcsched_queue_depth_hiwater 0",
		"sfcsched_sweep_progress_cylinders 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	snap := reg.Snapshot()
	if len(snap) != 11 {
		t.Errorf("snapshot has %d metrics, want 11", len(snap))
	}
}
