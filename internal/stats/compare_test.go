package stats

import (
	"math"
	"testing"
)

func TestMAPE(t *testing.T) {
	cases := []struct {
		name         string
		pred, actual []float64
		want         float64 // NaN for the undefined cases
	}{
		{"exact", []float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{"ten percent high", []float64{110, 220}, []float64{100, 200}, 10},
		{"mixed sign errors", []float64{90, 110}, []float64{100, 100}, 10},
		{"zero actual skipped", []float64{5, 110}, []float64{0, 100}, 10},
		{"all zero actuals", []float64{5, 6}, []float64{0, 0}, math.NaN()},
		{"length mismatch", []float64{1}, []float64{1, 2}, math.NaN()},
		{"empty", nil, nil, math.NaN()},
	}
	for _, tc := range cases {
		got := MAPE(tc.pred, tc.actual)
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: MAPE = %v, want NaN", tc.name, got)
			}
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: MAPE = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPearson(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
		want float64
	}{
		{"identical ranks", []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3}, 1},
		{"scaled and shifted", []float64{0, 1, 2, 3}, []float64{10, 12, 14, 16}, 1},
		{"reversed", []float64{0, 1, 2, 3}, []float64{3, 2, 1, 0}, -1},
		{"uncorrelated", []float64{1, -1, 1, -1}, []float64{1, 1, -1, -1}, 0},
		{"constant x", []float64{5, 5, 5}, []float64{1, 2, 3}, math.NaN()},
		{"too short", []float64{1}, []float64{2}, math.NaN()},
		{"length mismatch", []float64{1, 2}, []float64{1}, math.NaN()},
	}
	for _, tc := range cases {
		got := Pearson(tc.x, tc.y)
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: Pearson = %v, want NaN", tc.name, got)
			}
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Pearson = %v, want %v", tc.name, got, tc.want)
		}
	}
	// One swapped adjacent pair in a long rank vector stays close to 1 —
	// the property the dispatch-order score leans on.
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i], y[i] = float64(i), float64(i)
	}
	y[40], y[41] = y[41], y[40]
	if r := Pearson(x, y); r < 0.999 || r > 1 {
		t.Errorf("near-identical ranks: Pearson = %v, want just under 1", r)
	}
}
