// Package stats provides deterministic pseudo-random number generation,
// distribution samplers, and summary statistics for the simulator.
//
// The simulator must be reproducible across runs, platforms, and Go
// versions, so it does not use math/rand (whose stream is not guaranteed
// stable across releases). Instead it ships a small PCG64-style generator
// seeded explicitly by every experiment.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator built on the
// SplitMix64 mixing function (Steele, Lea & Flood 2014), whose output
// passes BigCrush. The zero value is not valid; use NewRNG.
type RNG struct {
	state uint64
}

// goldenGamma is the SplitMix64 state increment (2^64 / phi, odd).
const goldenGamma = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Two generators built from the
// same seed produce identical streams; the seed is scrambled so that nearby
// seeds land far apart in the underlying sequence.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets r in place to the stream NewRNG(seed) would produce, so
// pooled per-run state can recycle a generator without allocating.
func (r *RNG) Seed(seed uint64) {
	r.state = mix64(seed ^ 0x6a09e667f3bcc909)
}

// Split derives an independent generator from r's stream. The child stream
// is a deterministic function of r's state, so experiment components can be
// given private generators without coupling their draws.
func (r *RNG) Split() *RNG {
	return &RNG{state: mix64(r.Uint64() ^ 0xd1b54a32d192ed03)}
}

// Uint64 returns the next 64 uniform pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += goldenGamma
	return mix64(r.state)
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method, debiased.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("stats: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exponential returns a draw from the exponential distribution with the
// given mean (rate 1/mean). The mean must be positive.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exponential with non-positive mean")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Gamma returns a draw from the gamma distribution with the given shape k
// and scale θ (mean k·θ), using the Marsaglia-Tsang squeeze method; shapes
// below 1 are boosted through Gamma(k+1)·U^(1/k). Gamma inter-arrival gaps
// generalize the Poisson process: shape < 1 clumps arrivals into bursts
// (CV 1/√k > 1), shape > 1 smooths them toward a pacing clock.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Gamma with non-positive shape or scale")
	}
	if shape < 1 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		// Squeeze check first (cheap), exact log check second. log(0) is
		// -Inf, which correctly rejects a zero uniform draw.
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull returns a draw from the Weibull distribution with the given
// shape k and scale λ (mean λ·Γ(1+1/k)), by inversion of the CDF through
// an exponential draw. Weibull inter-arrival gaps model aging processes:
// shape > 1 gives a rising hazard (near-periodic arrivals), shape < 1 a
// heavy tail of long silences punctuated by clusters.
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Weibull with non-positive shape or scale")
	}
	return scale * math.Pow(r.Exponential(1), 1/shape)
}

// Normal returns a draw from the normal distribution N(mu, sigma^2),
// using the Marsaglia polar method.
func (r *RNG) Normal(mu, sigma float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mu + sigma*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormalLevel draws an integer level in [0, levels) from a discretized
// normal centered on the middle level with the given relative spread
// (sigma = spread * levels). Draws outside the range are clamped, which
// matches the paper's "normal distribution of requests across the different
// [priority] levels".
func (r *RNG) NormalLevel(levels int, spread float64) int {
	if levels <= 0 {
		panic("stats: NormalLevel with non-positive levels")
	}
	mu := float64(levels-1) / 2
	v := int(math.Round(r.Normal(mu, spread*float64(levels))))
	if v < 0 {
		v = 0
	}
	if v >= levels {
		v = levels - 1
	}
	return v
}

// Zipf draws an integer in [0, n) with probability proportional to
// 1/(k+1)^s, using inverse-CDF over precomputed weights held by z.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with exponent s >= 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next Zipf-distributed index.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
