package stats

import (
	"math"
	"sort"
	"testing"
)

// Table-driven statistical validation of every continuous sampler the
// workload generators draw inter-arrival gaps from. Each row pins, under a
// fixed seed: the sample mean and coefficient of variation against theory
// (5% relative tolerance), and the Kolmogorov-Smirnov distance against the
// closed-form CDF (bound 0.02 at n=20000, roughly twice the 5% critical
// value — loose enough to be seed-stable, tight enough to catch a wrong
// distribution or a broken transform). A new sampler must add a row.

type distRow struct {
	name   string
	draw   func(r *RNG) float64
	mean   float64                 // theoretical mean
	cv     float64                 // theoretical stddev/mean
	cdf    func(x float64) float64 // closed-form CDF for the KS check
	hasCDF bool
}

func distTable() []distRow {
	const m = 10_000.0 // scale everything near a 10 ms mean gap
	g15 := math.Gamma(1.5)
	return []distRow{
		{
			name: "exponential",
			draw: func(r *RNG) float64 { return r.Exponential(m) },
			mean: m, cv: 1,
			cdf: func(x float64) float64 { return 1 - math.Exp(-x/m) }, hasCDF: true,
		},
		{
			// Gamma with integer shape 2 has the Erlang closed form.
			name: "gamma-shape2",
			draw: func(r *RNG) float64 { return r.Gamma(2, m/2) },
			mean: m, cv: 1 / math.Sqrt2,
			cdf: func(x float64) float64 {
				t := x / (m / 2)
				return 1 - math.Exp(-t)*(1+t)
			},
			hasCDF: true,
		},
		{
			// Gamma with shape 1/2 exercises the small-shape boost path and
			// has the erf closed form: P(1/2, x/θ) = erf(√(x/θ)).
			name: "gamma-shape0.5",
			draw: func(r *RNG) float64 { return r.Gamma(0.5, 2*m) },
			mean: m, cv: math.Sqrt2,
			cdf:    func(x float64) float64 { return math.Erf(math.Sqrt(x / (2 * m))) },
			hasCDF: true,
		},
		{
			name: "weibull-shape2",
			draw: func(r *RNG) float64 { return r.Weibull(2, m/g15) },
			mean: m, cv: math.Sqrt(math.Gamma(2)-g15*g15) / g15,
			cdf: func(x float64) float64 {
				t := x / (m / g15)
				return 1 - math.Exp(-t*t)
			},
			hasCDF: true,
		},
		{
			name: "weibull-shape0.8",
			draw: func(r *RNG) float64 { return r.Weibull(0.8, m/math.Gamma(1+1/0.8)) },
			mean: m,
			cv:   math.Sqrt(math.Gamma(1+2/0.8)-math.Pow(math.Gamma(1+1/0.8), 2)) / math.Gamma(1+1/0.8),
			cdf: func(x float64) float64 {
				return 1 - math.Exp(-math.Pow(x/(m/math.Gamma(1+1/0.8)), 0.8))
			},
			hasCDF: true,
		},
		{
			name: "normal-level-free", // sanity row for Normal itself: mean m, sd m/4
			draw: func(r *RNG) float64 { return r.Normal(m, m/4) },
			mean: m, cv: 0.25,
			cdf: func(x float64) float64 {
				return 0.5 * (1 + math.Erf((x-m)/(m/4*math.Sqrt2)))
			},
			hasCDF: true,
		},
	}
}

// ksDistance computes the two-sided Kolmogorov-Smirnov statistic of the
// samples against cdf.
func ksDistance(samples []float64, cdf func(float64) float64) float64 {
	sort.Float64s(samples)
	n := float64(len(samples))
	d := 0.0
	for i, x := range samples {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

func TestSamplerDistributions(t *testing.T) {
	const n = 20_000
	for _, row := range distTable() {
		t.Run(row.name, func(t *testing.T) {
			rng := NewRNG(7)
			samples := make([]float64, n)
			sum := 0.0
			for i := range samples {
				samples[i] = row.draw(rng)
				sum += samples[i]
			}
			mean := sum / n
			var sq float64
			for _, x := range samples {
				sq += (x - mean) * (x - mean)
			}
			cv := math.Sqrt(sq/(n-1)) / mean

			if rel := math.Abs(mean-row.mean) / row.mean; rel > 0.05 {
				t.Errorf("mean %.1f, want %.1f (rel err %.3f)", mean, row.mean, rel)
			}
			if math.Abs(cv-row.cv) > 0.05*math.Max(row.cv, 1) {
				t.Errorf("CV %.4f, want %.4f", cv, row.cv)
			}
			if row.hasCDF {
				if d := ksDistance(samples, row.cdf); d > 0.02 {
					t.Errorf("KS distance %.4f exceeds 0.02", d)
				}
			}
		})
	}
}

// The samplers must be deterministic: the same seed replays the same
// stream, and draws must always be positive (a zero or negative gap would
// stall the arrival clock).
func TestSamplerDeterminismAndSupport(t *testing.T) {
	for _, row := range distTable() {
		a, b := NewRNG(3), NewRNG(3)
		for i := 0; i < 2000; i++ {
			x, y := row.draw(a), row.draw(b)
			if x != y {
				t.Fatalf("%s: draw %d diverged between identical seeds", row.name, i)
			}
			if row.name != "normal-level-free" && x <= 0 {
				t.Fatalf("%s: draw %d = %v, want positive", row.name, i, x)
			}
		}
	}
}

func TestGammaWeibullPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRNG(1).Gamma(0, 1) },
		func() { NewRNG(1).Gamma(1, 0) },
		func() { NewRNG(1).Weibull(0, 1) },
		func() { NewRNG(1).Weibull(1, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("non-positive shape/scale did not panic")
				}
			}()
			fn()
		}()
	}
}
