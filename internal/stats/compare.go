package stats

import "math"

// This file holds the prediction-accuracy scores of the calibration loop
// (internal/serve): how well the simulator's per-request predictions match
// what the live serving path measured.

// MAPE returns the mean absolute percentage error of pred against actual,
// in percent: mean over i of 100*|pred[i]-actual[i]|/|actual[i]|. Pairs
// whose actual value is zero are skipped (a percentage error against zero
// is undefined); if every pair is skipped, or the slices are empty or of
// unequal length, MAPE returns NaN.
func MAPE(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	var sum float64
	n := 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return 100 * sum / float64(n)
}

// Pearson returns the Pearson correlation coefficient of x and y, in
// [-1, 1]. It returns NaN for slices of unequal length, fewer than two
// points, or zero variance in either input (the coefficient is undefined
// there — a constant series carries no ordering information).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp rounding excursions so callers can rely on the [-1,1] contract.
	return math.Max(-1, math.Min(1, r))
}
