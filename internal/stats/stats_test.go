package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
}

func TestRNGSeedsIndependent(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d identical draws from different seeds", same)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	if parent.Uint64() == child.Uint64() {
		t.Error("split stream mirrors parent")
	}
}

func TestUint64nRange(t *testing.T) {
	r := NewRNG(3)
	f := func(n uint64) bool {
		n = n%1000 + 1
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", k, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if got := r.IntRange(7, 7); got != 7 {
		t.Errorf("degenerate range: got %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(13)
	const mean, n = 25.0, 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(mean)
	}
	got := sum / n
	if math.Abs(got-mean) > 0.5 {
		t.Errorf("exponential sample mean = %.3f, want ~%.1f", got, mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(17)
	const mu, sigma, n = 5.0, 2.0, 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(mu, sigma)
		sum += v
		sq += v * v
	}
	gotMu := sum / n
	gotSigma := math.Sqrt(sq/n - gotMu*gotMu)
	if math.Abs(gotMu-mu) > 0.05 || math.Abs(gotSigma-sigma) > 0.05 {
		t.Errorf("normal sample: mu=%.3f sigma=%.3f, want %v, %v", gotMu, gotSigma, mu, sigma)
	}
}

func TestNormalLevelClamped(t *testing.T) {
	r := NewRNG(19)
	counts := make([]int, 8)
	for i := 0; i < 50000; i++ {
		l := r.NormalLevel(8, 0.25)
		if l < 0 || l >= 8 {
			t.Fatalf("level out of range: %d", l)
		}
		counts[l]++
	}
	// Middle levels should dominate the extremes.
	if counts[3] <= counts[0] || counts[4] <= counts[7] {
		t.Errorf("normal levels not centered: %v", counts)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(r, 10, 1.0)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("zipf not skewed: first=%d last=%d", counts[0], counts[9])
	}
}

func TestZipfZeroExponentUniform(t *testing.T) {
	r := NewRNG(29)
	z := NewZipf(r, 4, 0)
	counts := make([]int, 4)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-draws/4) > 5*math.Sqrt(draws/4) {
			t.Errorf("bucket %d: %d draws, want ~%d", k, c, draws/4)
		}
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Errorf("N=%d Sum=%v Mean=%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min=%v Max=%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := s.StdDev(); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev = %v, want sqrt(2)", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummaryAddAfterSort(t *testing.T) {
	var s Summary
	s.Add(10)
	_ = s.Min() // forces sort
	s.Add(1)
	if s.Min() != 1 {
		t.Errorf("Min after late Add = %v, want 1", s.Min())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Summary
	s.Add(0)
	s.Add(10)
	if got := s.Percentile(25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("p25 = %v, want 2.5", got)
	}
	if s.Percentile(0) != 0 || s.Percentile(100) != 10 {
		t.Error("extreme percentiles wrong")
	}
}

func TestMeanStdDev(t *testing.T) {
	mean, sd := MeanStdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || sd != 2 {
		t.Errorf("mean=%v sd=%v, want 5, 2", mean, sd)
	}
	mean, sd = MeanStdDev(nil)
	if mean != 0 || sd != 0 {
		t.Error("nil slice should report zeros")
	}
}
