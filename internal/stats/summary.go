package stats

import (
	"math"
	"sort"
)

// Summary accumulates scalar observations and reports moments and order
// statistics. It keeps all samples; the simulator's sample counts are small
// enough (tens of thousands) that exact percentiles are affordable.
type Summary struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	s.sorted = false
}

// Reset discards every observation while keeping the sample buffer's
// capacity, so a summary can be reused across runs without reallocating.
func (s *Summary) Reset() {
	s.samples = s.samples[:0]
	s.sum = 0
	s.sorted = false
}

// N returns the number of observations recorded.
func (s *Summary) N() int { return len(s.samples) }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Variance returns the population variance, or 0 for fewer than two samples.
func (s *Summary) Variance() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.samples {
		d := v - m
		acc += d * d
	}
	return acc / float64(n)
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation between closest ranks, or 0 for an empty summary.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.samples[lo]
	}
	frac := rank - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// MeanStdDev returns the mean and population standard deviation of vs.
func MeanStdDev(vs []float64) (mean, stddev float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	mean = sum / float64(len(vs))
	var acc float64
	for _, v := range vs {
		d := v - mean
		acc += d * d
	}
	return mean, math.Sqrt(acc / float64(len(vs)))
}
