package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"sync"
)

// Registry is a named collection of metrics with snapshot exporters.
// Registration is cheap but takes a lock; do it at construction time, not
// on hot paths. Reading (WritePrometheus, Snapshot) may run concurrently
// with metric writers.
type Registry struct {
	mu   sync.RWMutex
	vars map[string]metricVar
}

// metricVar is one registered metric with its help string.
type metricVar struct {
	help string
	v    any // *Counter, *Gauge, *MaxGauge, *Histogram, or func() float64
}

// metricName constrains registered names to the Prometheus charset.
var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]metricVar)}
}

// Register adds metric v under name. v must be a *Counter, *Gauge,
// *MaxGauge, *Histogram, or a func() float64 (sampled at export time).
// Registering a duplicate or malformed name, or an unsupported type, is an
// error.
func (r *Registry) Register(name, help string, v any) error {
	if !metricName.MatchString(name) {
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	switch v.(type) {
	case *Counter, *Gauge, *MaxGauge, *Histogram, func() float64:
	default:
		return fmt.Errorf("obs: unsupported metric type %T for %q", v, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.vars[name]; dup {
		return fmt.Errorf("obs: duplicate metric %q", name)
	}
	r.vars[name] = metricVar{help: help, v: v}
	return nil
}

// MustRegister is Register for static wiring.
func (r *Registry) MustRegister(name, help string, v any) {
	if err := r.Register(name, help, v); err != nil {
		panic(err)
	}
}

// names returns the registered names in sorted order.
func (r *Registry) names() []string {
	ns := make([]string, 0, len(r.vars))
	for n := range r.vars {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4). Counters gain the conventional _total
// suffix; histograms emit cumulative _bucket/_sum/_count series with
// power-of-two le bounds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.names() {
		mv := r.vars[name]
		if err := writeProm(w, name, mv); err != nil {
			return err
		}
	}
	return nil
}

// promQuantiles is the fixed quantile set exported for every histogram:
// the operational p50/p95/p99 trio.
var promQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

func writeProm(w io.Writer, name string, mv metricVar) error {
	var err error
	header := func(n, typ string) {
		if err != nil {
			return
		}
		if mv.help != "" {
			_, err = fmt.Fprintf(w, "# HELP %s %s\n", n, mv.help)
		}
		if err == nil {
			_, err = fmt.Fprintf(w, "# TYPE %s %s\n", n, typ)
		}
	}
	switch v := mv.v.(type) {
	case *Counter:
		n := name + "_total"
		header(n, "counter")
		if err == nil {
			_, err = fmt.Fprintf(w, "%s %d\n", n, v.Load())
		}
	case *Gauge:
		header(name, "gauge")
		if err == nil {
			_, err = fmt.Fprintf(w, "%s %d\n", name, v.Load())
		}
	case *MaxGauge:
		header(name, "gauge")
		if err == nil {
			_, err = fmt.Fprintf(w, "%s %d\n", name, v.Load())
		}
	case *Histogram:
		header(name, "histogram")
		if err != nil {
			return err
		}
		s := v.Snapshot()
		var cum uint64
		for k, c := range s {
			cum += c
			if c == 0 && k != histBuckets-1 {
				continue // sparse: only non-empty buckets, plus +Inf
			}
			le := strconv.FormatUint(BucketBound(k), 10)
			if k == histBuckets-1 {
				le = "+Inf"
			}
			if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err = fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, v.Sum(), name, v.Count()); err != nil {
			return err
		}
		// Quantile estimates from the same snapshot, as a sibling gauge
		// family (mixing summary-style quantile lines into a histogram
		// family would be invalid exposition format).
		if _, err = fmt.Fprintf(w, "# TYPE %s_quantile gauge\n", name); err != nil {
			return err
		}
		for _, q := range promQuantiles {
			if _, err = fmt.Fprintf(w, "%s_quantile{quantile=%q} %d\n", name, q.label, quantileOf(&s, q.q)); err != nil {
				return err
			}
		}
	case func() float64:
		header(name, "gauge")
		if err == nil {
			_, err = fmt.Fprintf(w, "%s %v\n", name, v())
		}
	}
	return err
}

// Handler returns an http.Handler serving WritePrometheus — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Snapshot returns the current value of every metric as a plain map:
// counters and gauges as integers, funcs as floats, histograms as
// {count, sum, mean, p50, p95, p99}.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.vars))
	for name, mv := range r.vars {
		switch v := mv.v.(type) {
		case *Counter:
			out[name] = v.Load()
		case *Gauge:
			out[name] = v.Load()
		case *MaxGauge:
			out[name] = v.Load()
		case *Histogram:
			qs := v.Quantiles(0.50, 0.95, 0.99)
			out[name] = map[string]any{
				"count": v.Count(),
				"sum":   v.Sum(),
				"mean":  v.Mean(),
				"p50":   qs[0],
				"p95":   qs[1],
				"p99":   qs[2],
			}
		case func() float64:
			out[name] = v()
		}
	}
	return out
}

// PublishExpvar publishes the registry's Snapshot under the given expvar
// name, so /debug/vars includes it. Panics (from expvar) if the name is
// already published; call once per process per name.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
