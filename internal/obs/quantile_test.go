package obs

import (
	"math/bits"
	"strings"
	"testing"
)

// quantile estimates from log2 buckets are inclusive bucket upper bounds:
// for a value v the estimate is 2^bits.Len64(v) - 1, i.e. within 2x above
// the true quantile. These tests pin that contract on distributions whose
// true quantiles are known exactly.

// bucketCeil returns the estimate the histogram must report for a true
// quantile value v.
func bucketCeil(v uint64) uint64 { return BucketBound(bits.Len64(v)) }

func TestQuantilesUniform(t *testing.T) {
	// Uniform 1..1000: true p50 = 500, p95 = 950, p99 = 990.
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	qs := h.Quantiles(0.50, 0.95, 0.99)
	for i, want := range []uint64{bucketCeil(500), bucketCeil(950), bucketCeil(990)} {
		if qs[i] != want {
			t.Errorf("uniform quantile %d = %d, want bucket bound %d", i, qs[i], want)
		}
	}
	// The estimate must be an upper bound within 2x of the true value.
	for i, truth := range []uint64{500, 950, 990} {
		if qs[i] < truth || qs[i] >= 2*truth {
			t.Errorf("quantile %d estimate %d outside [%d, %d)", i, qs[i], truth, 2*truth)
		}
	}
}

func TestQuantilesPointMass(t *testing.T) {
	// All observations equal: every quantile lands in the same bucket.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(42)
	}
	for _, q := range h.Quantiles(0, 0.5, 0.99, 1) {
		if q != bucketCeil(42) {
			t.Errorf("point-mass quantile = %d, want %d", q, bucketCeil(42))
		}
	}
}

func TestQuantilesBimodal(t *testing.T) {
	// 90 fast observations (~10) and 10 slow ones (~100000): p50 sits in
	// the fast mode, p95 and p99 in the slow mode — the shape quantile
	// export exists to expose and a mean hides.
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100_000)
	}
	qs := h.Quantiles(0.50, 0.95, 0.99)
	if qs[0] != bucketCeil(10) {
		t.Errorf("bimodal p50 = %d, want fast-mode bound %d", qs[0], bucketCeil(10))
	}
	for i, q := range qs[1:] {
		if q != bucketCeil(100_000) {
			t.Errorf("bimodal tail quantile %d = %d, want slow-mode bound %d", i, q, bucketCeil(100_000))
		}
	}
	if m := h.Mean(); m > 20_000 {
		t.Fatalf("sanity: bimodal mean %v unexpectedly above 20000", m)
	}
}

// Nearest-rank boundary behavior: the estimate is the value at rank
// ceil(q·total), 1-based, clamped to [1, total]. The distributions place
// neighboring ranks in different log2 buckets, so the old floor-based
// rank produces a different bucket bound and these cases fail pre-fix.
func TestQuantileNearestRankBoundaries(t *testing.T) {
	cases := []struct {
		name string
		obs  []uint64 // value repeated count times, as {value, count} pairs
		q    float64
		want uint64 // true nearest-rank value; estimate is its bucket bound
	}{
		// Even-count median: rank ceil(0.5·2)=1 is the LOWER element.
		// 63 and 64 straddle a bucket boundary (63 | 64..127).
		{"even-median-lower", []uint64{63, 1, 64, 1}, 0.5, 63},
		// p99 of exactly 100 samples is the 99th value, not the 100th.
		{"p99-of-100", []uint64{10, 99, 1000, 1}, 0.99, 10},
		// q=0 clamps to rank 1: the minimum.
		{"q0-min", []uint64{63, 1, 64, 1}, 0, 63},
		// q=1 is rank total: the maximum.
		{"q1-max", []uint64{63, 1, 64, 1}, 1, 64},
		// total=1: every q returns the single value.
		{"single-q0", []uint64{64, 1}, 0, 64},
		{"single-q50", []uint64{64, 1}, 0.5, 64},
		{"single-q1", []uint64{64, 1}, 1, 64},
		// total=100 uniform over a bucket boundary: values 28..127, so
		// p50 is the 50th value 77, p99 the 99th value 126.
		{"hundred-p50", uniformPairs(28, 127), 0.5, 77},
		{"hundred-p99", uniformPairs(28, 127), 0.99, 126},
		// Out-of-range probes clamp like q=0 / q=1.
		{"q-below-zero", []uint64{63, 1, 64, 1}, -0.5, 63},
		{"q-above-one", []uint64{63, 1, 64, 1}, 1.5, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for i := 0; i+1 < len(tc.obs); i += 2 {
				for n := uint64(0); n < tc.obs[i+1]; n++ {
					h.Observe(tc.obs[i])
				}
			}
			if got, want := h.Quantile(tc.q), bucketCeil(tc.want); got != want {
				t.Errorf("Quantile(%v) = %d, want bucket bound %d of nearest-rank value %d",
					tc.q, got, want, tc.want)
			}
		})
	}
}

// uniformPairs builds {value, 1} pairs for every value in [lo, hi].
func uniformPairs(lo, hi uint64) []uint64 {
	var out []uint64
	for v := lo; v <= hi; v++ {
		out = append(out, v, 1)
	}
	return out
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	var h Histogram
	for v := uint64(0); v < 300; v += 7 {
		h.Observe(v * v)
	}
	probes := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1}
	qs := h.Quantiles(probes...)
	for i, p := range probes {
		if single := h.Quantile(p); single != qs[i] {
			t.Errorf("Quantiles(%v) = %d, Quantile = %d", p, qs[i], single)
		}
	}
}

func TestQuantilesEmpty(t *testing.T) {
	var h Histogram
	for _, q := range h.Quantiles(0.5, 0.99) {
		if q != 0 {
			t.Errorf("empty histogram quantile = %d, want 0", q)
		}
	}
}

func TestPrometheusQuantileExport(t *testing.T) {
	reg := NewRegistry()
	var h Histogram
	reg.MustRegister("lat_us", "latency", &h)
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_us_quantile gauge",
		`lat_us_quantile{quantile="0.5"} ` + itoa(bucketCeil(50)),
		`lat_us_quantile{quantile="0.95"} ` + itoa(bucketCeil(95)),
		`lat_us_quantile{quantile="0.99"} ` + itoa(bucketCeil(99)),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
