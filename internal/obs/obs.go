// Package obs is the runtime observability layer: allocation-free atomic
// counters, gauges and log-bucketed histograms for the scheduler hot paths,
// plus a registry that exports snapshots in expvar and Prometheus text
// format.
//
// Design constraints, in order:
//
//  1. Recording must be legal from the Add/Next hot paths, which are pinned
//     to zero allocations by the gates in internal/core. Every Record/Inc/
//     Observe below is a handful of atomic instructions on pre-allocated
//     memory — no maps, no interfaces, no locks.
//  2. Reading must be safe while writers are running (a scrape of /metrics
//     races live dispatch loops), so all state is atomic and snapshots are
//     per-field consistent rather than globally consistent — the standard
//     contract of production metric systems.
//  3. No external dependencies: the Prometheus text exposition format is
//     simple enough to emit directly.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, sweep progress). The zero
// value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement) and returns the new level.
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// MaxGauge tracks the high-water mark of an observed level. The zero value
// is ready to use and reports 0 until the first observation.
type MaxGauge struct {
	v atomic.Int64
}

// Observe raises the high-water mark to v if v exceeds it. Lock-free:
// concurrent observers race a CAS and the loser rereads the merged maximum.
func (m *MaxGauge) Observe(v int64) {
	for {
		cur := m.v.Load()
		if v <= cur || m.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark.
func (m *MaxGauge) Load() int64 { return m.v.Load() }

// histBuckets is the bucket count of Histogram: bits.Len64 of the observed
// value, so bucket 0 holds exact zeros and bucket k holds values in
// [2^(k-1), 2^k).
const histBuckets = 65

// Histogram is a log2-bucketed distribution of non-negative integer
// observations (latencies in microseconds, queue lengths, ...). Observe is
// allocation-free and wait-free: one Add per bucket, count and sum. The
// zero value is ready to use.
//
// Bucket k counts observations v with bits.Len64(v) == k, i.e. bucket 0 is
// v == 0 and bucket k >= 1 spans [2^(k-1), 2^k). Powers of two keep the
// bucket index a single instruction while bounding the relative
// quantile-estimation error by 2x — the resolution operational latency
// monitoring actually uses.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the average observed value, or 0 before any observation.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Snapshot copies the bucket counts. Index k corresponds to upper bound
// BucketBound(k); the copy is per-bucket consistent with respect to
// concurrent writers.
func (h *Histogram) Snapshot() [histBuckets]uint64 {
	var s [histBuckets]uint64
	for i := range h.buckets {
		s[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// recorded distribution: the inclusive upper bound of the bucket containing
// that rank. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	s := h.Snapshot()
	return quantileOf(&s, q)
}

// Quantiles estimates several quantiles from one consistent bucket
// snapshot, so p50/p95/p99 of a concurrently-written histogram come from
// the same set of observations. Each estimate is the inclusive upper bound
// of the log2 bucket containing that rank — an upper bound within 2x of
// the true value. Returns zeros when the histogram is empty.
func (h *Histogram) Quantiles(qs ...float64) []uint64 {
	s := h.Snapshot()
	out := make([]uint64, len(qs))
	for i, q := range qs {
		out[i] = quantileOf(&s, q)
	}
	return out
}

// quantileOf estimates the q-quantile of a bucket snapshot using the
// nearest-rank convention: the value at rank ceil(q·total) (1-based),
// clamped to [1, total]. A floor here would bias even-count medians to
// the upper element and make p99 of exactly 100 samples return the 100th
// rather than the 99th value.
func quantileOf(s *[histBuckets]uint64, q float64) uint64 {
	var total uint64
	for _, c := range s {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for k, c := range s {
		seen += c
		if seen >= rank {
			return BucketBound(k)
		}
	}
	return BucketBound(histBuckets - 1)
}

// BucketBound returns the inclusive upper bound of bucket k: 0 for k == 0,
// 2^k - 1 otherwise (MaxUint64 for the last bucket).
func BucketBound(k int) uint64 {
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(k) - 1
}
