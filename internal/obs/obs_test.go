package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero value = %d, want 0", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	if g.Add(-10) != -3 || g.Load() != -3 {
		t.Fatalf("gauge arithmetic wrong: %d", g.Load())
	}
}

func TestMaxGauge(t *testing.T) {
	var m MaxGauge
	m.Observe(5)
	m.Observe(3) // lower: must not regress
	if m.Load() != 5 {
		t.Fatalf("hi-water = %d, want 5", m.Load())
	}
	m.Observe(9)
	if m.Load() != 9 {
		t.Fatalf("hi-water = %d, want 9", m.Load())
	}
}

func TestMaxGaugeConcurrent(t *testing.T) {
	var m MaxGauge
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				m.Observe(base + i)
			}
		}(int64(g) * 1000)
	}
	wg.Wait()
	if m.Load() != 8*1000-1 {
		t.Fatalf("concurrent hi-water = %d, want %d", m.Load(), 8*1000-1)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1023, 1024, math.MaxUint64} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := map[int]uint64{
		0:  1, // 0
		1:  1, // 1
		2:  2, // 2,3
		3:  1, // 4
		10: 1, // 1023
		11: 1, // 1024
		64: 1, // MaxUint64
	}
	for k, c := range s {
		if c != want[k] {
			t.Errorf("bucket %d = %d, want %d", k, c, want[k])
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile must be 0")
	}
	// 90 small values, 10 big ones: p50 lands in the small bucket, p99 in
	// the big one.
	for i := 0; i < 90; i++ {
		h.Observe(3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if q := h.Quantile(0.5); q != BucketBound(2) {
		t.Errorf("p50 = %d, want %d", q, BucketBound(2))
	}
	if q := h.Quantile(0.99); q != BucketBound(10) {
		t.Errorf("p99 = %d, want %d", q, BucketBound(10))
	}
	if m := h.Mean(); m != (90*3+10*1000)/100.0 {
		t.Errorf("mean = %v", m)
	}
}

func TestBucketBound(t *testing.T) {
	cases := map[int]uint64{
		-1: 0, 0: 0, 1: 1, 2: 3, 10: 1023, 64: math.MaxUint64, 99: math.MaxUint64,
	}
	for k, want := range cases {
		if got := BucketBound(k); got != want {
			t.Errorf("BucketBound(%d) = %d, want %d", k, got, want)
		}
	}
}

// The record paths are called from the scheduler's zero-allocation Add/Next
// hot paths; pin that they never allocate.
func TestRecordPathsNoAllocs(t *testing.T) {
	var (
		c Counter
		g Gauge
		m MaxGauge
		h Histogram
	)
	i := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(i)
		g.Add(1)
		m.Observe(i)
		h.Observe(uint64(i))
		i++
	})
	if allocs != 0 {
		t.Errorf("record path allocates %v per op", allocs)
	}
}
