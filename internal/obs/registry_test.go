package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("ok_name", "", &Counter{}); err != nil {
		t.Fatalf("valid register failed: %v", err)
	}
	if err := r.Register("ok_name", "", &Counter{}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := r.Register("bad name", "", &Counter{}); err == nil {
		t.Error("malformed name accepted")
	}
	if err := r.Register("bad_type", "", 42); err == nil {
		t.Error("unsupported type accepted")
	}
	if err := r.Register("fn", "", func() float64 { return 1.5 }); err != nil {
		t.Errorf("func metric rejected: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	var g Gauge
	g.Set(-2)
	var m MaxGauge
	m.Observe(31)
	var h Histogram
	h.Observe(0)
	h.Observe(5)
	h.Observe(5)
	r.MustRegister("events", "number of events", &c)
	r.MustRegister("depth", "current depth", &g)
	r.MustRegister("depth_hiwater", "", &m)
	r.MustRegister("wait_us", "dispatch wait", &h)
	r.MustRegister("ratio", "", func() float64 { return 0.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP events_total number of events",
		"# TYPE events_total counter",
		"events_total 7",
		"# TYPE depth gauge",
		"depth -2",
		"depth_hiwater 31",
		"# TYPE wait_us histogram",
		`wait_us_bucket{le="0"} 1`,
		`wait_us_bucket{le="7"} 3`, // cumulative: bucket 3 covers [4,8)
		`wait_us_bucket{le="+Inf"} 3`,
		"wait_us_sum 10",
		"wait_us_count 3",
		"ratio 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerAndSnapshot(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(3)
	var h Histogram
	h.Observe(9)
	r.MustRegister("c", "", &c)
	r.MustRegister("h", "", &h)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 3") {
		t.Errorf("handler body missing counter:\n%s", rec.Body.String())
	}

	// Snapshot must be JSON-serializable (it backs the expvar export).
	snap := r.Snapshot()
	bs, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(bs, &back); err != nil {
		t.Fatal(err)
	}
	if back["c"].(float64) != 3 {
		t.Errorf("snapshot counter = %v", back["c"])
	}
	hm := back["h"].(map[string]any)
	if hm["count"].(float64) != 1 || hm["sum"].(float64) != 9 {
		t.Errorf("snapshot histogram = %v", hm)
	}
}
