package disk

import (
	"math"
	"testing"
	"testing/quick"

	"sfcsched/internal/stats"
)

func xp() *Model { return MustModel(QuantumXP32150Params()) }

func TestTable1Geometry(t *testing.T) {
	m := xp()
	if m.Cylinders != 3832 {
		t.Errorf("cylinders = %d, want 3832", m.Cylinders)
	}
	if len(m.Zones) != 16 {
		t.Errorf("zones = %d, want 16", len(m.Zones))
	}
	if m.SectorSize != 512 {
		t.Errorf("sector = %d, want 512", m.SectorSize)
	}
	if m.RPM != 7200 {
		t.Errorf("rpm = %d, want 7200", m.RPM)
	}
	if got := m.RevolutionTime(); got != 8333 {
		t.Errorf("revolution = %d us, want 8333", got)
	}
}

func TestCapacityNearTable1(t *testing.T) {
	m := xp()
	gb := float64(m.Capacity()) / 1e9
	if gb < 1.9 || gb > 2.3 {
		t.Errorf("capacity = %.2f GB, want ~2.1 GB", gb)
	}
}

func TestSeekCalibration(t *testing.T) {
	m := xp()
	if got := m.SeekTime(0, 0); got != 0 {
		t.Errorf("zero-distance seek = %d", got)
	}
	if got := m.SeekTime(0, m.Cylinders-1); got != m.MaxSeek {
		t.Errorf("max seek = %d, want %d", got, m.MaxSeek)
	}
	if got := m.SeekTime(100, 101); got < m.MinSeek || got > m.MinSeek+m.MinSeek/10 {
		t.Errorf("track-to-track seek = %d, want within 10%% above %d", got, m.MinSeek)
	}
	mean := m.MeanSeek()
	if math.Abs(mean-float64(m.AvgSeek)) > float64(m.AvgSeek)*0.01 {
		t.Errorf("mean seek = %.0f us, want ~%d us", mean, m.AvgSeek)
	}
}

func TestSeekSymmetricMonotone(t *testing.T) {
	m := xp()
	f := func(a, b uint16) bool {
		x := int(a) % m.Cylinders
		y := int(b) % m.Cylinders
		return m.SeekTime(x, y) == m.SeekTime(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	prev := int64(-1)
	for d := 0; d < m.Cylinders; d += 13 {
		s := m.SeekTime(0, d)
		if s < prev {
			t.Fatalf("seek not monotone at distance %d: %d < %d", d, s, prev)
		}
		prev = s
	}
}

func TestZonesCoverAllCylinders(t *testing.T) {
	m := xp()
	total := 0
	for zi, z := range m.Zones {
		total += z.Cylinders
		for c := z.FirstCyl; c < z.FirstCyl+z.Cylinders; c++ {
			if m.ZoneOf(c) != zi {
				t.Fatalf("cylinder %d maps to zone %d, want %d", c, m.ZoneOf(c), zi)
			}
		}
	}
	if total != m.Cylinders {
		t.Errorf("zones cover %d cylinders, want %d", total, m.Cylinders)
	}
}

func TestOuterZonesFaster(t *testing.T) {
	m := xp()
	outer := m.TransferTime(0, 64<<10)
	inner := m.TransferTime(m.Cylinders-1, 64<<10)
	if outer >= inner {
		t.Errorf("outer transfer %d us not faster than inner %d us", outer, inner)
	}
	if m.Zones[0].SectorsPerTrack != 128 || m.Zones[15].SectorsPerTrack != 86 {
		t.Errorf("zone SPT endpoints = %d, %d", m.Zones[0].SectorsPerTrack, m.Zones[15].SectorsPerTrack)
	}
}

func TestTransferTimeScalesLinearly(t *testing.T) {
	m := xp()
	one := m.TransferTime(0, 64<<10)
	two := m.TransferTime(0, 128<<10)
	if math.Abs(float64(two)-2*float64(one)) > 2 {
		t.Errorf("transfer not linear: %d vs 2*%d", two, one)
	}
	if m.TransferTime(0, 0) != 0 {
		t.Error("zero-size transfer should cost nothing")
	}
}

func TestAvgTransferRatePlausible(t *testing.T) {
	m := xp()
	mbps := m.AvgTransferRate() / 1e6
	if mbps < 4 || mbps > 9 {
		t.Errorf("avg transfer rate = %.2f MB/s, want mid-1990s 4-9 MB/s", mbps)
	}
}

func TestRotationalLatencyBounded(t *testing.T) {
	m := xp()
	rng := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		l := m.RotationalLatency(rng)
		if l < 0 || l >= m.RevolutionTime() {
			t.Fatalf("latency %d outside [0,%d)", l, m.RevolutionTime())
		}
	}
	if m.AvgRotationalLatency() != m.RevolutionTime()/2 {
		t.Error("average latency should be half a revolution")
	}
}

func TestServiceTimeComposition(t *testing.T) {
	m := xp()
	got := m.ServiceTime(0, 1000, 64<<10)
	want := m.SeekTime(0, 1000) + m.AvgRotationalLatency() + m.TransferTime(1000, 64<<10)
	if got != want {
		t.Errorf("service = %d, want %d", got, want)
	}
}

func TestNewModelValidation(t *testing.T) {
	bad := []Params{
		{},
		func() Params { p := QuantumXP32150Params(); p.Cylinders = 1; return p }(),
		func() Params { p := QuantumXP32150Params(); p.AvgSeek = 20000; return p }(),
		func() Params { p := QuantumXP32150Params(); p.InnerSPT = 200; return p }(),
		func() Params { p := QuantumXP32150Params(); p.ZoneCount = 0; return p }(),
	}
	for i, p := range bad {
		if _, err := NewModel(p); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestRAID5ParityRotates(t *testing.T) {
	r, err := NewRAID5(5, 64<<10, xp())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for s := int64(0); s < 5; s++ {
		p := r.ParityDisk(s)
		if p < 0 || p >= 5 {
			t.Fatalf("parity disk %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 5 {
		t.Errorf("parity visits %d disks over 5 stripes, want 5", len(seen))
	}
}

func TestRAID5ReadSingleOp(t *testing.T) {
	r, _ := NewRAID5(5, 64<<10, xp())
	for b := int64(0); b < 100; b++ {
		ops := r.Read(b)
		if len(ops) != 1 || ops[0].Write {
			t.Fatalf("read block %d: %+v", b, ops)
		}
		if ops[0].Disk == r.ParityDisk(b/4) {
			t.Fatalf("read block %d landed on parity disk", b)
		}
	}
}

func TestRAID5WriteReadModifyWrite(t *testing.T) {
	r, _ := NewRAID5(5, 64<<10, xp())
	ops := r.Write(7)
	if len(ops) != 4 {
		t.Fatalf("write ops = %d, want 4", len(ops))
	}
	reads, writes := 0, 0
	disks := map[int]bool{}
	for _, op := range ops {
		if op.Write {
			writes++
		} else {
			reads++
		}
		disks[op.Disk] = true
	}
	if reads != 2 || writes != 2 || len(disks) != 2 {
		t.Errorf("want 2 reads + 2 writes on 2 disks, got %d/%d on %d", reads, writes, len(disks))
	}
}

func TestRAID5StripeSpreadsDisks(t *testing.T) {
	r, _ := NewRAID5(5, 64<<10, xp())
	disks := map[int]bool{}
	for b := int64(0); b < 4; b++ {
		disks[r.Read(b)[0].Disk] = true
	}
	if len(disks) != 4 {
		t.Errorf("stripe 0 data lands on %d disks, want 4", len(disks))
	}
}

func TestRAID5CylinderMappingInRange(t *testing.T) {
	r, _ := NewRAID5(5, 64<<10, xp())
	max := r.Model.Capacity() / r.BlockSize
	for _, b := range []int64{0, 1, max / 2, max - 1} {
		c := r.CylinderOf(b)
		if c < 0 || c >= r.Model.Cylinders {
			t.Errorf("block %d -> cylinder %d out of range", b, c)
		}
	}
	if r.CylinderOf(0) >= r.CylinderOf(max-1) {
		t.Error("low addresses should map to outer (lower) cylinders")
	}
}

func TestRAID5Validation(t *testing.T) {
	if _, err := NewRAID5(2, 64<<10, xp()); err == nil {
		t.Error("expected error for 2 disks")
	}
	if _, err := NewRAID5(5, 0, xp()); err == nil {
		t.Error("expected error for zero block size")
	}
	if _, err := NewRAID5(5, 64<<10, nil); err == nil {
		t.Error("expected error for nil model")
	}
}

func TestSqrtSeekFromMax(t *testing.T) {
	s, err := NewSqrtSeekFromMax(3832, 1500, 18000)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Time(0, 1); got != 1500 {
		t.Errorf("track-to-track = %d, want 1500", got)
	}
	if got := s.Max(); got < 17999 || got > 18000 {
		t.Errorf("max = %d, want ~18000", got)
	}
	if s.Time(5, 5) != 0 {
		t.Error("zero distance should cost nothing")
	}
	// The sqrt shape overshoots Table 1's 8.5 ms mean — the documented
	// reason the default model uses the calibrated power curve instead.
	if s.Mean() < 9000 {
		t.Errorf("sqrt-from-max mean = %.0f, expected above 9 ms", s.Mean())
	}
}

func TestSqrtSeekFromMean(t *testing.T) {
	s, err := NewSqrtSeekFromMean(3832, 1500, 8500)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Mean(); got < 8400 || got > 8600 {
		t.Errorf("mean = %.0f, want ~8500", got)
	}
	if got := s.Time(0, 1); got != 1500 {
		t.Errorf("track-to-track = %d, want 1500", got)
	}
	// ... at the cost of undershooting the 18 ms max.
	if s.Max() >= 18000 {
		t.Errorf("sqrt-from-mean max = %d, expected below 18 ms", s.Max())
	}
}

func TestSqrtSeekValidation(t *testing.T) {
	if _, err := NewSqrtSeekFromMax(1, 100, 200); err == nil {
		t.Error("expected error for 1 cylinder")
	}
	if _, err := NewSqrtSeekFromMax(100, 200, 100); err == nil {
		t.Error("expected error for max < track-to-track")
	}
	if _, err := NewSqrtSeekFromMean(100, 0, 100); err == nil {
		t.Error("expected error for zero track-to-track")
	}
}

func TestModelUseSqrtSeek(t *testing.T) {
	m := xp()
	s, _ := NewSqrtSeekFromMax(m.Cylinders, 1500, 18000)
	m.UseSqrtSeek(s)
	if got := m.SeekTime(0, 1); got != 1500 {
		t.Errorf("swapped model track-to-track = %d, want 1500", got)
	}
	if got, want := m.SeekTime(100, 2100), s.Time(100, 2100); got != want {
		t.Errorf("swapped model seek = %d, want %d", got, want)
	}
	// Zones and transfer are untouched.
	if m.TransferTime(0, 64<<10) != xp().TransferTime(0, 64<<10) {
		t.Error("transfer time changed by seek swap")
	}
}
