package disk

import (
	"fmt"
	"math"
)

// SqrtSeek is the literal seek model of the paper's Table 1 row,
// seek(d) = a + b*sqrt(d) (microseconds, d in cylinders). It is provided
// as an alternative to the calibrated power curve of Model: the sqrt form
// cannot satisfy Table 1's 8.5 ms mean *and* 18 ms max simultaneously
// (fitting both forces a negative intercept), so the constructor lets the
// caller pick which pair of anchors to honor.
type SqrtSeek struct {
	A, B      float64
	Cylinders int
}

// NewSqrtSeekFromMax fits a + b*sqrt(d) through a track-to-track time at
// d = 1 and the maximum seek at d = cylinders-1.
func NewSqrtSeekFromMax(cylinders int, trackToTrack, maxSeek int64) (*SqrtSeek, error) {
	if cylinders < 2 {
		return nil, fmt.Errorf("disk: need at least 2 cylinders, got %d", cylinders)
	}
	if trackToTrack <= 0 || maxSeek <= trackToTrack {
		return nil, fmt.Errorf("disk: need 0 < trackToTrack < maxSeek, got %d/%d", trackToTrack, maxSeek)
	}
	dm := math.Sqrt(float64(cylinders - 1))
	b := (float64(maxSeek) - float64(trackToTrack)) / (dm - 1)
	a := float64(trackToTrack) - b
	return &SqrtSeek{A: a, B: b, Cylinders: cylinders}, nil
}

// NewSqrtSeekFromMean fits a + b*sqrt(d) through a track-to-track time at
// d = 1 and the mean seek over uniformly random request pairs, whose
// distance density is f(u) = 2(1-u): E[sqrt(d)] = (8/15)*sqrt(C).
func NewSqrtSeekFromMean(cylinders int, trackToTrack, meanSeek int64) (*SqrtSeek, error) {
	if cylinders < 2 {
		return nil, fmt.Errorf("disk: need at least 2 cylinders, got %d", cylinders)
	}
	if trackToTrack <= 0 || meanSeek <= trackToTrack {
		return nil, fmt.Errorf("disk: need 0 < trackToTrack < meanSeek, got %d/%d", trackToTrack, meanSeek)
	}
	es := 8.0 / 15.0 * math.Sqrt(float64(cylinders-1))
	b := (float64(meanSeek) - float64(trackToTrack)) / (es - 1)
	a := float64(trackToTrack) - b
	return &SqrtSeek{A: a, B: b, Cylinders: cylinders}, nil
}

// Time returns the seek time between two cylinders, µs.
func (s *SqrtSeek) Time(from, to int) int64 {
	d := from - to
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	return int64(s.A + s.B*math.Sqrt(float64(d)))
}

// Mean returns the model's mean seek over uniformly random request pairs.
func (s *SqrtSeek) Mean() float64 {
	return s.A + s.B*8.0/15.0*math.Sqrt(float64(s.Cylinders-1))
}

// Max returns the full-stroke seek time.
func (s *SqrtSeek) Max() int64 { return s.Time(0, s.Cylinders-1) }

// UseSqrtSeek swaps the model's seek curve for the sqrt model: SeekTime
// calls delegate to it while everything else (zones, rotation, transfer)
// is unchanged. It returns the model for chaining.
func (m *Model) UseSqrtSeek(s *SqrtSeek) *Model {
	m.sqrtSeek = s
	return m
}
