package disk

import (
	"testing"

	"sfcsched/internal/stats"
)

// TestServiceModelMatchesModel pins ServiceModel.Times to the Model
// primitives it composes: the golden differential suites in internal/sim
// depend on the station path through ServiceModel reproducing the legacy
// loops bit for bit.
func TestServiceModelMatchesModel(t *testing.T) {
	m := MustModel(QuantumXP32150Params())
	cases := []struct {
		head, cyl int
		size      int64
	}{
		{0, 0, 64 << 10},
		{0, 3831, 64 << 10},
		{1200, 1200, 4 << 10},
		{3000, 17, 256 << 10},
	}
	for _, tc := range cases {
		sm := ServiceModel{Disk: m}
		seek, total := sm.Times(tc.head, tc.cyl, tc.size, nil)
		wantSeek := m.SeekTime(tc.head, tc.cyl)
		wantTotal := wantSeek + m.AvgRotationalLatency() + m.TransferTime(tc.cyl, tc.size)
		if seek != wantSeek || total != wantTotal {
			t.Errorf("Times(%d,%d,%d) = (%d,%d), want (%d,%d)",
				tc.head, tc.cyl, tc.size, seek, total, wantSeek, wantTotal)
		}
	}
}

func TestServiceModelPolicies(t *testing.T) {
	m := MustModel(QuantumXP32150Params())

	fixed := ServiceModel{Disk: m, FixedService: 777}
	if seek, total := fixed.Times(0, 3000, 64<<10, nil); seek != 0 || total != 777 {
		t.Errorf("FixedService: got (%d,%d), want (0,777)", seek, total)
	}
	// FixedService needs no disk at all.
	fixed.Disk = nil
	if seek, total := fixed.Times(0, 3000, 64<<10, nil); seek != 0 || total != 777 {
		t.Errorf("FixedService without disk: got (%d,%d), want (0,777)", seek, total)
	}

	xfer := ServiceModel{Disk: m, TransferOnly: true}
	if seek, total := xfer.Times(0, 3000, 64<<10, nil); seek != 0 || total != m.TransferTime(3000, 64<<10) {
		t.Errorf("TransferOnly: got (%d,%d), want (0,%d)", seek, total, m.TransferTime(3000, 64<<10))
	}
}

// TestServiceModelSampledRotation checks the RNG contract: exactly one
// draw per sampled call, and a nil RNG falls back to the deterministic
// average (the real-clock serving path has no simulation RNG stream).
func TestServiceModelSampledRotation(t *testing.T) {
	m := MustModel(QuantumXP32150Params())
	sm := ServiceModel{Disk: m, SampleRotation: true}

	a := stats.NewRNG(7)
	b := stats.NewRNG(7)
	_, gotTotal := sm.Times(10, 2000, 64<<10, a)
	wantRot := b.Uint64() // RotationalLatency consumes exactly one draw
	_ = wantRot
	if a.Uint64() != b.Uint64() {
		t.Error("sampled call consumed more than one RNG draw")
	}
	seek := m.SeekTime(10, 2000)
	lo := seek + m.TransferTime(2000, 64<<10)
	hi := lo + m.RevolutionTime()
	if gotTotal < lo || gotTotal >= hi {
		t.Errorf("sampled total %d outside [%d,%d)", gotTotal, lo, hi)
	}

	_, avgTotal := sm.Times(10, 2000, 64<<10, nil)
	want := seek + m.AvgRotationalLatency() + m.TransferTime(2000, 64<<10)
	if avgTotal != want {
		t.Errorf("nil RNG: got %d, want deterministic average %d", avgTotal, want)
	}
}

func TestServiceModelValidate(t *testing.T) {
	if err := (ServiceModel{}).Validate(); err == nil {
		t.Error("zero ServiceModel validated")
	}
	if err := (ServiceModel{FixedService: 1}).Validate(); err != nil {
		t.Errorf("fixed-service model rejected: %v", err)
	}
	m := MustModel(QuantumXP32150Params())
	if err := (ServiceModel{Disk: m}).Validate(); err != nil {
		t.Errorf("disk-backed model rejected: %v", err)
	}
	if (ServiceModel{Disk: m}).Cylinders() != m.Cylinders {
		t.Error("Cylinders() did not expose the geometry")
	}
	if (ServiceModel{FixedService: 1}).Cylinders() != 0 {
		t.Error("diskless Cylinders() not 0")
	}
}
