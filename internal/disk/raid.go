package disk

import "fmt"

// RAID5 maps logical file blocks onto a rotating-parity array, the "4 data
// + 1 parity" layout of Table 1. Stripe s places its parity unit on disk
// (disks-1 - s mod disks) (left-symmetric rotation) and its data units on
// the remaining disks in order.
type RAID5 struct {
	Disks     int   // total disks, data + 1 parity per stripe
	BlockSize int64 // stripe unit == file block size, bytes
	Model     *Model
}

// NewRAID5 returns a RAID-5 mapper over disks identical drives.
func NewRAID5(disks int, blockSize int64, m *Model) (*RAID5, error) {
	if disks < 3 {
		return nil, fmt.Errorf("disk: RAID-5 needs at least 3 disks, got %d", disks)
	}
	if blockSize < 1 {
		return nil, fmt.Errorf("disk: invalid block size %d", blockSize)
	}
	if m == nil {
		return nil, fmt.Errorf("disk: RAID-5 needs a disk model")
	}
	return &RAID5{Disks: disks, BlockSize: blockSize, Model: m}, nil
}

// DataDisks returns the number of data units per stripe.
func (r *RAID5) DataDisks() int { return r.Disks - 1 }

// PhysOp is one physical disk operation produced by mapping a logical
// block access.
type PhysOp struct {
	Disk     int
	Cylinder int
	Size     int64
	Write    bool
}

// ParityDisk returns the parity disk of stripe s (left-symmetric layout).
func (r *RAID5) ParityDisk(s int64) int {
	return r.Disks - 1 - int(s%int64(r.Disks))
}

// locate maps logical block b to its stripe, data disk and per-disk block
// offset.
func (r *RAID5) locate(block int64) (stripe int64, disk int, diskBlock int64) {
	stripe = block / int64(r.DataDisks())
	lane := int(block % int64(r.DataDisks()))
	parity := r.ParityDisk(stripe)
	disk = lane
	if disk >= parity {
		disk++ // skip the parity disk in this stripe
	}
	return stripe, disk, stripe
}

// CylinderOf converts a per-disk block number to a cylinder by walking the
// zoned capacity (blocks near the start of the address space land on outer
// cylinders, like real LBA layouts).
func (r *RAID5) CylinderOf(diskBlock int64) int {
	byteOff := diskBlock * r.BlockSize
	var acc int64
	for _, z := range r.Model.Zones {
		zoneBytes := int64(z.Cylinders) * int64(r.Model.TracksPer) * int64(z.SectorsPerTrack) * int64(r.Model.SectorSize)
		if byteOff < acc+zoneBytes {
			perCyl := int64(r.Model.TracksPer) * int64(z.SectorsPerTrack) * int64(r.Model.SectorSize)
			return z.FirstCyl + int((byteOff-acc)/perCyl)
		}
		acc += zoneBytes
	}
	// Wrap addresses beyond capacity; simulation workloads may exceed the
	// 2.1 GB drive and real servers would span multiple stripes anyway.
	return r.CylinderOf(diskBlock % (acc / r.BlockSize))
}

// MaxBlocks returns the number of logical data blocks the array holds.
func (r *RAID5) MaxBlocks() int64 {
	perDisk := r.Model.Capacity() / r.BlockSize
	return perDisk * int64(r.DataDisks())
}

// Layout exposes the logical-to-physical mapping of a block: its stripe,
// the data disk holding it, and the cylinder of its per-disk block.
func (r *RAID5) Layout(block int64) (stripe int64, dataDisk, cylinder int) {
	s, d, db := r.locate(block)
	return s, d, r.CylinderOf(db)
}

// Read maps a logical block read to physical operations: a single-disk
// read.
func (r *RAID5) Read(block int64) []PhysOp {
	_, d, db := r.locate(block)
	return []PhysOp{{Disk: d, Cylinder: r.CylinderOf(db), Size: r.BlockSize}}
}

// Write maps a logical block write to its read-modify-write sequence: read
// old data, read old parity, write new data, write new parity — two
// operations on each of two disks.
func (r *RAID5) Write(block int64) []PhysOp {
	s, d, db := r.locate(block)
	cyl := r.CylinderOf(db)
	p := r.ParityDisk(s)
	return []PhysOp{
		{Disk: d, Cylinder: cyl, Size: r.BlockSize},
		{Disk: p, Cylinder: cyl, Size: r.BlockSize},
		{Disk: d, Cylinder: cyl, Size: r.BlockSize, Write: true},
		{Disk: p, Cylinder: cyl, Size: r.BlockSize, Write: true},
	}
}

// DegradedRead maps a logical block read with disk failed down. A block
// on a surviving disk reads normally; a block on the failed disk is
// reconstructed from the same stripe row of every survivor (data units
// XOR parity), one read per surviving disk.
func (r *RAID5) DegradedRead(block int64, failed int) []PhysOp {
	_, d, db := r.locate(block)
	if d != failed {
		return []PhysOp{{Disk: d, Cylinder: r.CylinderOf(db), Size: r.BlockSize}}
	}
	return r.RebuildStripe(db, failed)
}

// DegradedWrite maps a logical block write with disk failed down. With
// the data disk lost the new parity is computed from the other data
// units (N-2 reads) and written; the data itself is absorbed — it is
// recoverable from parity and rewritten by rebuild. With the parity
// disk lost the data unit is written unprotected. Otherwise the normal
// read-modify-write applies.
func (r *RAID5) DegradedWrite(block int64, failed int) []PhysOp {
	s, d, db := r.locate(block)
	cyl := r.CylinderOf(db)
	p := r.ParityDisk(s)
	switch failed {
	case d:
		ops := make([]PhysOp, 0, r.Disks-1)
		for dd := 0; dd < r.Disks; dd++ {
			if dd == d || dd == p {
				continue
			}
			ops = append(ops, PhysOp{Disk: dd, Cylinder: cyl, Size: r.BlockSize})
		}
		return append(ops, PhysOp{Disk: p, Cylinder: cyl, Size: r.BlockSize, Write: true})
	case p:
		return []PhysOp{{Disk: d, Cylinder: cyl, Size: r.BlockSize, Write: true}}
	default:
		return r.Write(block)
	}
}

// RebuildStripe returns the reads that reconstruct per-disk block db of
// the failed disk: one read of the same stripe row on every survivor.
func (r *RAID5) RebuildStripe(db int64, failed int) []PhysOp {
	cyl := r.CylinderOf(db)
	ops := make([]PhysOp, 0, r.Disks-1)
	for d := 0; d < r.Disks; d++ {
		if d == failed {
			continue
		}
		ops = append(ops, PhysOp{Disk: d, Cylinder: cyl, Size: r.BlockSize})
	}
	return ops
}
