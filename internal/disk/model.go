// Package disk models the storage substrate of the paper's evaluation: the
// Quantum XP32150 drive of Table 1 (zoned geometry, square-root-calibrated
// seek curve, rotational latency) and the PanaViss RAID-5 layout
// (4 data + 1 parity disks with 64 KB file blocks).
//
// All times are in microseconds (int64), the simulator's clock unit.
package disk

import (
	"fmt"
	"math"

	"sfcsched/internal/stats"
)

// Zone describes one recording zone: a contiguous cylinder range with a
// fixed sectors-per-track count (outer zones hold more sectors and
// therefore transfer faster).
type Zone struct {
	FirstCyl        int // first cylinder of the zone
	Cylinders       int // number of cylinders in the zone
	SectorsPerTrack int
}

// Model is a single-disk performance model.
type Model struct {
	// Geometry (Table 1).
	Cylinders  int
	TracksPer  int // tracks (heads) per cylinder
	SectorSize int // bytes
	RPM        int
	Zones      []Zone

	// Seek curve seek(d) = MinSeek + (MaxSeek-MinSeek) * (d/(C-1))^gamma for
	// d >= 1, calibrated so the mean seek over uniformly random request
	// pairs matches AvgSeek. All three in microseconds.
	MinSeek int64
	MaxSeek int64
	AvgSeek int64
	gamma   float64

	zoneOfCyl []int16 // cylinder -> zone lookup

	// sqrtSeek, when set via UseSqrtSeek, replaces the power curve with
	// the paper's literal a + b*sqrt(d) model.
	sqrtSeek *SqrtSeek
}

// Params bundles the calibration inputs for NewModel.
type Params struct {
	Cylinders  int
	TracksPer  int
	SectorSize int
	RPM        int
	ZoneCount  int
	// OuterSPT and InnerSPT are the sectors-per-track of the outermost and
	// innermost zones; intermediate zones interpolate linearly.
	OuterSPT int
	InnerSPT int
	// Seek calibration, microseconds.
	MinSeek int64
	MaxSeek int64
	AvgSeek int64
}

// QuantumXP32150Params returns the Table 1 disk: 3832 cylinders, 10 tracks
// per cylinder, 16 zones, 512-byte sectors, 7200 RPM, average seek 8.5 ms,
// maximum seek 18 ms. The sectors-per-track range is chosen so total
// capacity lands at the quoted 2.1 GB and the average media rate at the
// quoted handful of MB/s.
func QuantumXP32150Params() Params {
	return Params{
		Cylinders:  3832,
		TracksPer:  10,
		SectorSize: 512,
		RPM:        7200,
		ZoneCount:  16,
		OuterSPT:   128,
		InnerSPT:   86,
		MinSeek:    1500,
		MaxSeek:    18000,
		AvgSeek:    8500,
	}
}

// NewModel builds a disk model from p, calibrating the seek-curve exponent
// so that the expected seek over uniformly random (from, to) cylinder pairs
// equals p.AvgSeek.
func NewModel(p Params) (*Model, error) {
	if p.Cylinders < 2 {
		return nil, fmt.Errorf("disk: need at least 2 cylinders, got %d", p.Cylinders)
	}
	if p.TracksPer < 1 || p.SectorSize < 1 || p.RPM < 1 {
		return nil, fmt.Errorf("disk: invalid geometry %+v", p)
	}
	if p.ZoneCount < 1 || p.ZoneCount > p.Cylinders {
		return nil, fmt.Errorf("disk: invalid zone count %d", p.ZoneCount)
	}
	if p.OuterSPT < p.InnerSPT || p.InnerSPT < 1 {
		return nil, fmt.Errorf("disk: invalid sectors-per-track range [%d,%d]", p.InnerSPT, p.OuterSPT)
	}
	if !(p.MinSeek > 0 && p.MinSeek < p.AvgSeek && p.AvgSeek < p.MaxSeek) {
		return nil, fmt.Errorf("disk: seek times must satisfy 0 < min < avg < max, got %d/%d/%d",
			p.MinSeek, p.AvgSeek, p.MaxSeek)
	}
	m := &Model{
		Cylinders:  p.Cylinders,
		TracksPer:  p.TracksPer,
		SectorSize: p.SectorSize,
		RPM:        p.RPM,
		MinSeek:    p.MinSeek,
		MaxSeek:    p.MaxSeek,
		AvgSeek:    p.AvgSeek,
	}
	m.gamma = calibrateGamma(p.MinSeek, p.MaxSeek, p.AvgSeek)
	m.buildZones(p.ZoneCount, p.OuterSPT, p.InnerSPT)
	return m, nil
}

// MustModel is NewModel for static configurations; it panics on error.
func MustModel(p Params) *Model {
	m, err := NewModel(p)
	if err != nil {
		panic(err)
	}
	return m
}

// calibrateGamma solves E[(U)^g] = (avg-min)/(max-min) for g, where U is
// the normalized seek distance of a uniformly random cylinder pair. The
// distance density is f(u) = 2(1-u), so E[U^g] = 2/((g+1)(g+2)) and g has a
// closed form; bisection keeps the code robust to future density changes.
func calibrateGamma(min, max, avg int64) float64 {
	target := float64(avg-min) / float64(max-min)
	expect := func(g float64) float64 { return 2 / ((g + 1) * (g + 2)) }
	lo, hi := 1e-6, 64.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if expect(mid) > target {
			lo = mid // larger exponent lowers the expectation
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// buildZones lays out zoneCount zones of near-equal cylinder counts with
// linearly interpolated sectors-per-track from outer to inner.
func (m *Model) buildZones(zoneCount, outerSPT, innerSPT int) {
	m.Zones = make([]Zone, zoneCount)
	m.zoneOfCyl = make([]int16, m.Cylinders)
	base := m.Cylinders / zoneCount
	extra := m.Cylinders % zoneCount
	cyl := 0
	for z := 0; z < zoneCount; z++ {
		n := base
		if z < extra {
			n++
		}
		spt := outerSPT
		if zoneCount > 1 {
			spt = outerSPT - (outerSPT-innerSPT)*z/(zoneCount-1)
		}
		m.Zones[z] = Zone{FirstCyl: cyl, Cylinders: n, SectorsPerTrack: spt}
		for i := 0; i < n; i++ {
			m.zoneOfCyl[cyl+i] = int16(z)
		}
		cyl += n
	}
}

// ZoneOf returns the zone index containing cylinder cyl.
func (m *Model) ZoneOf(cyl int) int {
	m.checkCyl(cyl)
	return int(m.zoneOfCyl[cyl])
}

func (m *Model) checkCyl(cyl int) {
	if cyl < 0 || cyl >= m.Cylinders {
		panic(fmt.Sprintf("disk: cylinder %d out of range [0,%d)", cyl, m.Cylinders))
	}
}

// SeekTime returns the head-movement time from cylinder from to cylinder
// to, in microseconds. Zero distance costs nothing.
func (m *Model) SeekTime(from, to int) int64 {
	m.checkCyl(from)
	m.checkCyl(to)
	if m.sqrtSeek != nil {
		return m.sqrtSeek.Time(from, to)
	}
	d := from - to
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	u := float64(d) / float64(m.Cylinders-1)
	return m.MinSeek + int64(float64(m.MaxSeek-m.MinSeek)*math.Pow(u, m.gamma))
}

// RevolutionTime returns the time of one full platter revolution.
func (m *Model) RevolutionTime() int64 {
	return int64(60_000_000 / m.RPM)
}

// AvgRotationalLatency returns half a revolution, the expected latency.
func (m *Model) AvgRotationalLatency() int64 { return m.RevolutionTime() / 2 }

// RotationalLatency samples a uniform rotational latency in
// [0, RevolutionTime()).
func (m *Model) RotationalLatency(rng *stats.RNG) int64 {
	return int64(rng.Uint64n(uint64(m.RevolutionTime())))
}

// TrackCapacity returns the bytes held by one track of cylinder cyl.
func (m *Model) TrackCapacity(cyl int) int64 {
	z := m.Zones[m.ZoneOf(cyl)]
	return int64(z.SectorsPerTrack) * int64(m.SectorSize)
}

// TransferTime returns the media transfer time of size bytes starting at
// cylinder cyl (the whole transfer is charged at that zone's rate).
func (m *Model) TransferTime(cyl int, size int64) int64 {
	if size <= 0 {
		return 0
	}
	perTrack := m.TrackCapacity(cyl)
	// One revolution reads one track.
	return int64(float64(m.RevolutionTime()) * float64(size) / float64(perTrack))
}

// ServiceTime returns the expected total service time of a request: seek
// from the current head cylinder, average rotational latency, and media
// transfer. Schedulers use it as their feasibility estimator.
func (m *Model) ServiceTime(head, cyl int, size int64) int64 {
	return m.SeekTime(head, cyl) + m.AvgRotationalLatency() + m.TransferTime(cyl, size)
}

// SampledServiceTime is ServiceTime with the rotational latency drawn from
// rng instead of averaged; the simulator uses it for service realism.
func (m *Model) SampledServiceTime(head, cyl int, size int64, rng *stats.RNG) int64 {
	return m.SeekTime(head, cyl) + m.RotationalLatency(rng) + m.TransferTime(cyl, size)
}

// Capacity returns the formatted capacity of the disk in bytes.
func (m *Model) Capacity() int64 {
	var total int64
	for _, z := range m.Zones {
		total += int64(z.Cylinders) * int64(m.TracksPer) * int64(z.SectorsPerTrack) * int64(m.SectorSize)
	}
	return total
}

// AvgTransferRate returns the capacity-weighted mean media rate in bytes/s.
func (m *Model) AvgTransferRate() float64 {
	var bytes float64
	for _, z := range m.Zones {
		bytes += float64(z.Cylinders) * float64(m.TracksPer) * float64(z.SectorsPerTrack) * float64(m.SectorSize)
	}
	// One track per revolution across all tracks: total time = tracks * rev.
	tracks := float64(m.Cylinders * m.TracksPer)
	secs := tracks * float64(m.RevolutionTime()) / 1e6
	return bytes / secs
}

// MeanSeek estimates the model's mean seek time over uniformly random
// request pairs by direct integration of the distance density; exposed so
// tests can confirm the calibration hit Params.AvgSeek.
func (m *Model) MeanSeek() float64 {
	const steps = 100000
	var acc, wsum float64
	for i := 1; i <= steps; i++ {
		u := float64(i) / steps
		w := 2 * (1 - u)
		acc += w * (float64(m.MinSeek) + float64(m.MaxSeek-m.MinSeek)*math.Pow(u, m.gamma))
		wsum += w
	}
	return acc / wsum
}
