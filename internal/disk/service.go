package disk

import (
	"fmt"

	"sfcsched/internal/stats"
)

// ServiceModel is the service-time policy layered over a Model: the three
// knobs every topology shares (charge transfer only, override with a fixed
// constant, sample or average the rotational latency) folded into one value
// so the simulator's stations and the real-clock serving backends of
// internal/serve compute service times through exactly one code path.
//
// The zero value is invalid; Disk must be set unless FixedService is
// positive.
type ServiceModel struct {
	// Disk models seek/rotation/transfer times. Nil requires FixedService.
	Disk *Model
	// TransferOnly charges only media transfer time (the §5.1-5.2
	// assumption that "the transfer time dominates the seek time").
	TransferOnly bool
	// FixedService, when positive, overrides the disk model with a
	// constant service time (pure queueing experiments).
	FixedService int64
	// SampleRotation draws the rotational latency from the caller's RNG
	// instead of charging the deterministic average. Ignored when the
	// caller passes a nil RNG (real-clock backends have no simulation RNG
	// stream and always charge the average).
	SampleRotation bool
}

// Validate reports whether the model can compute a service time at all.
func (m ServiceModel) Validate() error {
	if m.Disk == nil && m.FixedService <= 0 {
		return fmt.Errorf("disk: ServiceModel needs a Disk model or a positive FixedService")
	}
	return nil
}

// Cylinders returns the cylinder count of the underlying geometry, or 0
// for a fixed-service model with no disk.
func (m ServiceModel) Cylinders() int {
	if m.Disk == nil {
		return 0
	}
	return m.Disk.Cylinders
}

// Times returns (seekTime, totalServiceTime) for a service of size bytes
// at cylinder cyl with the head at cylinder head, both in microseconds.
// Exactly one RNG draw happens per sampled-rotation call (and none
// otherwise), which keeps simulation runs reproducible draw for draw.
func (m ServiceModel) Times(head, cyl int, size int64, rng *stats.RNG) (int64, int64) {
	if m.FixedService > 0 {
		return 0, m.FixedService
	}
	if m.TransferOnly {
		return 0, m.Disk.TransferTime(cyl, size)
	}
	seek := m.Disk.SeekTime(head, cyl)
	rot := m.Disk.AvgRotationalLatency()
	if m.SampleRotation && rng != nil {
		rot = m.Disk.RotationalLatency(rng)
	}
	return seek, seek + rot + m.Disk.TransferTime(cyl, size)
}
